package lsm

import (
	"fmt"

	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

// RegisterMetrics exports the DB's internal shape into r as callback gauges,
// evaluated at scrape/snapshot time. Alongside the kv.Stats counters this
// surfaces what only the LSM itself knows: per-level table counts and bytes,
// compaction debt (bytes over each level's target — how far behind the
// background worker is running), flush-queue depth, and the degraded latch.
// labels are appended to every series (e.g. store="lsm").
//
// The callbacks take db.mu.RLock; obs.Registry.Snapshot evaluates them
// outside its own lock, so there is no lock-order coupling.
func (db *DB) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	kv.RegisterStatsMetrics(r, db, labels...)

	maxLevels := db.opts.MaxLevels
	for level := 0; level < maxLevels; level++ {
		level := level
		ll := append([]string{"level", fmt.Sprintf("%d", level)}, labels...)
		r.GaugeFunc(obs.Name("ethkv_lsm_level_tables", ll...), func() float64 {
			tables, _ := db.levelShape(level)
			return float64(tables)
		})
		r.GaugeFunc(obs.Name("ethkv_lsm_level_bytes", ll...), func() float64 {
			_, bytes := db.levelShape(level)
			return float64(bytes)
		})
	}
	r.GaugeFunc(obs.Name("ethkv_lsm_compaction_debt_bytes", labels...), func() float64 {
		return float64(db.compactionDebt())
	})
	r.GaugeFunc(obs.Name("ethkv_lsm_flush_queue_depth", labels...), func() float64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return float64(len(db.imm))
	})
	r.GaugeFunc(obs.Name("ethkv_lsm_compactions_inflight", labels...), func() float64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return float64(db.compactInFlight)
	})
	r.GaugeFunc(obs.Name("ethkv_lsm_open_tables", labels...), func() float64 {
		db.openMu.Lock()
		defer db.openMu.Unlock()
		return float64(len(db.open))
	})
	r.GaugeFunc(obs.Name("ethkv_lsm_block_cache_bytes", labels...), func() float64 {
		return float64(db.cache.usedBytes())
	})
	r.GaugeFunc(obs.Name("ethkv_lsm_block_cache_capacity_bytes", labels...), func() float64 {
		return float64(db.cache.capacityBytes())
	})
}

// levelShape returns the table count and total bytes of one level.
func (db *DB) levelShape(level int) (tables int, bytes int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if level >= len(db.levels) {
		return 0, 0
	}
	for _, m := range db.levels[level] {
		bytes += m.size
	}
	return len(db.levels[level]), bytes
}

// compactionDebt estimates the bytes the background worker still owes: L0
// bytes once the table count passes the compaction trigger, plus each deeper
// level's overshoot past its size target. Zero means the tree is in shape.
func (db *DB) compactionDebt() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.compactionDebtLocked()
}

// compactionDebtLocked is compactionDebt for callers already holding db.mu
// (either mode); the scheduler uses it as the pool's priority key.
func (db *DB) compactionDebtLocked() int64 {
	var debt int64
	if len(db.levels) == 0 {
		return 0
	}
	if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
		for _, m := range db.levels[0] {
			debt += m.size
		}
	}
	target := db.opts.LevelBaseBytes
	for level := 1; level < len(db.levels)-1; level++ {
		var size int64
		for _, m := range db.levels[level] {
			size += m.size
		}
		if size > target {
			debt += size - target
		}
		target *= db.opts.LevelMultiplier
	}
	return debt
}
