package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// schedOpts shrinks every threshold so small workloads produce multi-level
// trees, multi-table runs, and split merges.
func schedOpts(workers int) Options {
	return Options{
		MemtableBytes:         4 << 10,
		MaxImmutableMemtables: 4,
		L0CompactionTrigger:   2,
		LevelBaseBytes:        8 << 10,
		LevelMultiplier:       4,
		MaxLevels:             5,
		CompactionTableBytes:  4 << 10,
		SubCompactionBytes:    8 << 10,
		CompactionWorkers:     workers,
	}
}

// applySchedWorkload runs a fixed seeded mix of puts, overwrites, and
// deletes and returns the expected final state.
func applySchedWorkload(t *testing.T, db *DB) map[string]string {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	model := make(map[string]string)
	for i := 0; i < 2500; i++ {
		key := fmt.Sprintf("key-%04d", rng.Intn(400))
		if i%4 == 3 {
			if err := db.Delete([]byte(key)); err != nil {
				t.Fatal(err)
			}
			delete(model, key)
			continue
		}
		val := fmt.Sprintf("val-%06d-%s", i, bytes.Repeat([]byte{'x'}, rng.Intn(64)))
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		model[key] = val
	}
	return model
}

// dumpDB materializes the full store content through a scan.
func dumpDB(t *testing.T, db *DB) map[string]string {
	t.Helper()
	out := make(map[string]string)
	it := db.NewIterator(nil, nil)
	defer it.Release()
	for it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCompactionWorkerInvariance runs the identical delete-heavy workload
// under the serial scheduler and under 4 concurrent workers and requires
// the same live-key set and values after a full drain-to-bottom. Worker
// width is a pure scheduling knob: it may change which merges run when,
// never what the tree contains.
func TestCompactionWorkerInvariance(t *testing.T) {
	var base map[string]string
	for _, workers := range []int{1, 4} {
		db := openTestDB(t, schedOpts(workers))
		model := applySchedWorkload(t, db)
		if err := db.CompactAll(); err != nil {
			t.Fatalf("workers=%d: CompactAll: %v", workers, err)
		}
		got := dumpDB(t, db)
		if len(got) != len(model) {
			t.Fatalf("workers=%d: %d live keys, model has %d", workers, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("workers=%d: key %q = %q, want %q", workers, k, got[k], v)
			}
		}
		if base == nil {
			base = got
			continue
		}
		if len(base) != len(got) {
			t.Fatalf("workers=%d: live-key count diverged from serial run", workers)
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("workers=%d: key %q diverged from serial run", workers, k)
			}
		}
	}
}

// TestSubCompactionEquivalence proves the tentpole's merge property
// directly: one planned compaction, run with its key-range sub-compactions
// fanned across 1, 2, and 4 goroutines, must produce byte-identical output
// tables in the same order. The split boundaries come from the plan alone,
// so only file numbers — assigned at write time, not stored in the table
// format — may differ between runs.
func TestSubCompactionEquivalence(t *testing.T) {
	db := openTestDB(t, schedOpts(1))
	applySchedWorkload(t, db)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Quiesce, then force-plan one merge without installing it.
	db.mu.Lock()
	if err := db.settleLocked(); err != nil {
		db.mu.Unlock()
		t.Fatal(err)
	}
	db.forceCompact = true
	plan, ok := db.planNextCompactionLocked()
	db.forceCompact = false
	bounds := db.subCompactionBounds(plan)
	db.mu.Unlock()
	if !ok {
		t.Fatal("no compaction plannable after settle")
	}
	if len(bounds) == 0 {
		t.Fatalf("plan of %d+%d tables produced no sub-compaction split",
			len(plan.srcMetas), len(plan.dstIn))
	}

	var want [][]byte
	for _, workers := range []int{1, 2, 4} {
		db.mu.Lock()
		db.opts.CompactionWorkers = workers
		db.mu.Unlock()
		metas, _, err := db.runCompaction(plan, nil)
		if err != nil {
			t.Fatalf("workers=%d: runCompaction: %v", workers, err)
		}
		var files [][]byte
		for _, m := range metas {
			b, err := os.ReadFile(tablePath(db.dir, m.num))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			files = append(files, b)
		}
		if want == nil {
			want = files
			continue
		}
		if len(files) != len(want) {
			t.Fatalf("workers=%d: %d output tables, serial merge wrote %d",
				workers, len(files), len(want))
		}
		for i := range files {
			if !bytes.Equal(files[i], want[i]) {
				t.Fatalf("workers=%d: output table %d differs from serial merge", workers, i)
			}
		}
	}
}

// TestConcurrentCompactionsOverlap drives a workload wide enough that the
// scheduler runs range-disjoint merges simultaneously, and checks the new
// concurrency counters observe it: a peak of >= 2 compactions in flight,
// wall time attributed to the overlap, and split merges fanning into
// sub-compactions. A slow compaction hook widens each merge window so the
// overlap is reliably observable rather than a timing accident.
func TestConcurrentCompactionsOverlap(t *testing.T) {
	db := openTestDB(t, schedOpts(4))
	db.mu.Lock()
	db.compactionHook = func() { time.Sleep(2 * time.Millisecond) }
	db.mu.Unlock()

	rng := rand.New(rand.NewSource(7))
	model := make(map[string]string)
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; db.Stats().MaxConcurrentCompactions < 2; round++ {
		if time.Now().After(deadline) {
			t.Fatalf("no concurrent compactions after %d rounds (peak=%d)",
				round, db.Stats().MaxConcurrentCompactions)
		}
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("key-%06d", rng.Intn(30000))
			val := fmt.Sprintf("r%04d-%06d", round, i)
			if err := db.Put([]byte(key), []byte(val)); err != nil {
				t.Fatal(err)
			}
			model[key] = val
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	s := db.Stats()
	if s.MaxConcurrentCompactions < 2 {
		t.Fatalf("MaxConcurrentCompactions = %d, want >= 2", s.MaxConcurrentCompactions)
	}
	if s.CompactionParallelNanos == 0 {
		t.Fatal("CompactionParallelNanos = 0 despite overlapping compactions")
	}
	if s.SubCompactions == 0 {
		t.Fatal("SubCompactions = 0: no merge split into ranges")
	}
	// Concurrency must not have corrupted the data: spot-check the model.
	checked := 0
	for k, v := range model {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v, want %q", k, got, err, v)
		}
		if checked++; checked >= 200 {
			break
		}
	}
}

// TestDrainStopsCompactions checks the shutdown path: Drain returns with
// the flush queue empty and no compaction in flight, suppresses new merges
// afterward, and leaves the store writable.
func TestDrainStopsCompactions(t *testing.T) {
	db := openTestDB(t, schedOpts(4))
	applySchedWorkload(t, db)
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	if db.inFlight != 0 || db.compactInFlight != 0 || len(db.imm) > 0 {
		db.mu.Unlock()
		t.Fatalf("after Drain: inFlight=%d compactInFlight=%d imm=%d",
			db.inFlight, db.compactInFlight, len(db.imm))
	}
	if !db.draining {
		db.mu.Unlock()
		t.Fatal("Drain did not latch draining mode")
	}
	db.mu.Unlock()
	// The drained store still accepts reads and writes (flushes keep
	// running; only compaction scheduling is suppressed).
	if err := db.Put([]byte("post-drain"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("post-drain"))
	if err != nil || string(got) != "ok" {
		t.Fatalf("Get after Drain = %q, %v", got, err)
	}
}
