package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
)

func TestBlockCacheBasics(t *testing.T) {
	c := newBlockCache(64 << 10)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	blk := []byte("block-zero-payload")
	c.put(1, 0, blk)
	got, ok := c.get(1, 0)
	if !ok || !bytes.Equal(got, blk) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	c.dropTable(1)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("hit after dropTable")
	}
	if c.evictions.Load() != 0 {
		t.Fatal("dropTable counted as eviction")
	}
}

func TestBlockCacheNilIsInert(t *testing.T) {
	var c *blockCache
	if c := newBlockCache(0); c != nil {
		t.Fatal("zero capacity should disable the cache")
	}
	c.put(1, 0, []byte("x"))
	if _, ok := c.get(1, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.dropTable(1)
	c.addPinned(100)
	if c.usedBytes() != 0 || c.capacityBytes() != 0 || c.pinnedBytes() != 0 {
		t.Fatal("nil cache reports nonzero sizes")
	}
}

// TestBlockCacheBudgetBound inserts 4x the cache capacity in blocks smaller
// than one shard's share and checks the byte budget holds throughout.
func TestBlockCacheBudgetBound(t *testing.T) {
	capacity := int64(1 << 20)
	c := newBlockCache(capacity)
	blk := make([]byte, 4<<10)
	for i := 0; i < 1024; i++ {
		c.put(uint64(i%8), i, blk)
		if used := c.usedBytes(); used > capacity {
			t.Fatalf("insert %d: usedBytes %d exceeds capacity %d", i, used, capacity)
		}
	}
	if c.evictions.Load() == 0 {
		t.Fatal("4x overcommit evicted nothing")
	}
}

// TestBlockCacheOversizedEntries covers blocks bigger than a shard's share:
// each shard retains at most one oversized entry, so total usage stays
// bounded even when the budget is absurdly small.
func TestBlockCacheOversizedEntries(t *testing.T) {
	c := newBlockCache(4 << 10) // 256 B/shard, far below one block
	blk := make([]byte, 4<<10)
	for i := 0; i < 256; i++ {
		c.put(uint64(i), 0, blk)
	}
	bound := int64(cacheShardCount) * int64(len(blk))
	if used := c.usedBytes(); used > bound {
		t.Fatalf("usedBytes %d exceeds oversized bound %d", used, bound)
	}
}

// TestTableFormatV1Compat writes a table in the legacy un-checksummed v1
// format and checks the reader still serves it: format detection by footer
// magic, keccak-based bloom, no CRC stripping.
func TestTableFormatV1Compat(t *testing.T) {
	for _, format := range []int{tableFormatV1, tableFormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			dir := t.TempDir()
			var ents []entry
			for i := 0; i < 500; i++ {
				ents = append(ents, entry{
					key:   []byte(fmt.Sprintf("key-%04d", i)),
					value: []byte(fmt.Sprintf("value-%04d", i)),
				})
			}
			meta, err := writeTableFormat(faultfs.OS, dir, 1, 0, ents, format)
			if err != nil {
				t.Fatal(err)
			}
			r, err := openTable(faultfs.OS, dir, meta, nil, nil, noRetry)
			if err != nil {
				t.Fatal(err)
			}
			defer r.unref()
			if wantCRC := format == tableFormatV2; r.hasCRC != wantCRC {
				t.Fatalf("hasCRC = %v for format %d", r.hasCRC, format)
			}
			for _, e := range ents {
				v, found, deleted, _, err := r.get(e.key)
				if err != nil || !found || deleted || !bytes.Equal(v, e.value) {
					t.Fatalf("get(%q) = %q found=%v deleted=%v err=%v", e.key, v, found, deleted, err)
				}
			}
			it := r.iterator(nil)
			n := 0
			for it.next() {
				if !bytes.Equal(it.cur.key, ents[n].key) {
					t.Fatalf("scan entry %d = %q, want %q", n, it.cur.key, ents[n].key)
				}
				n++
			}
			if it.err != nil || n != len(ents) {
				t.Fatalf("scan: %d entries, err=%v", n, it.err)
			}
		})
	}
}

// TestBlockCacheStatsThroughDB checks the whole wiring: misses on first
// contact, hits on repeat reads, pinned index+bloom bytes, and bloom
// negative short-circuits, all visible through kv.Stats.
func TestBlockCacheStatsThroughDB(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = 1 << 20
	db := openTestDB(t, opts)
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < 300; i += 10 {
			if _, err := db.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.Stats()
	if st.BlockCacheMisses == 0 {
		t.Fatal("no cache misses after cold reads")
	}
	if st.BlockCacheHits == 0 {
		t.Fatal("no cache hits after repeat reads")
	}
	if st.BlockCachePinnedBytes == 0 {
		t.Fatal("no pinned index/bloom bytes with open tables")
	}
	// Absent keys inside the table's key range (so the range check cannot
	// exclude them): the bloom filter should short-circuit nearly all.
	for i := 0; i < 50; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("key-%04d-absent", i))); err != kv.ErrNotFound {
			t.Fatalf("absent get: %v", err)
		}
	}
	if st = db.Stats(); st.BloomNegatives == 0 {
		t.Fatal("bloom short-circuited no absent lookups")
	}
}

// TestReadTransientFaultsRetried injects transient read faults underneath
// the demand-paged read path and checks the store's retry policy absorbs
// them: every read succeeds and the retry counter moves.
func TestReadTransientFaultsRetried(t *testing.T) {
	mem := faultfs.NewMemFS()
	plan := faultfs.NewPlan(7)
	opts := smallOpts()
	opts.FS = faultfs.Inject(mem, plan)
	opts.DisableWAL = true
	opts.RetryAttempts = 8
	opts.RetryBackoff = 10 * time.Microsecond
	opts.BlockCacheBytes = -1 // no cache: every read touches the faulty FS
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	plan.SetReadTransientProb(0.05)
	for i := 0; i < 300; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("get under read faults: %v", err)
		}
		if want := fmt.Sprintf("val-%04d", i); string(v) != want {
			t.Fatalf("get = %q, want %q", v, want)
		}
	}
	plan.SetReadTransientProb(0)
	if st := db.Stats(); st.IORetries == 0 {
		t.Fatal("no retries recorded under 5% transient read faults")
	}
}

// TestConcurrentReadsDuringCompactionTinyCache races point reads and scans
// against a writer that keeps the flush/compaction machinery busy, with a
// cache small enough that blocks are evicted constantly. Run under -race
// this exercises reader refcounts vs. table removal and shared cache slices.
func TestConcurrentReadsDuringCompactionTinyCache(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = 8 << 10
	db := openTestDB(t, opts)
	const stable = 2000 // ~50 data blocks of stable keys vs an 8 KiB cache
	val := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("val-%04d-", i)), 10)
	}
	for i := 0; i < stable; i++ {
		if err := db.Put([]byte(fmt.Sprintf("stable-%04d", i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	// Writer: churn a disjoint key space to drive flushes and compactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("churn-%06d", i%2000))
			if err := db.Put(k, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Readers: stable keys must stay readable with the right values.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(stable)
				v, err := db.Get([]byte(fmt.Sprintf("stable-%04d", i)))
				if err != nil {
					errc <- fmt.Errorf("reader get: %w", err)
					return
				}
				if !bytes.Equal(v, val(i)) {
					errc <- fmt.Errorf("reader got %q for stable-%04d", v, i)
					return
				}
			}
		}(int64(r))
	}
	// Scanner: iterate the stable prefix repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it := db.NewIterator([]byte("stable-"), nil)
			n := 0
			for it.Next() {
				n++
			}
			err := it.Error()
			it.Release()
			if err != nil {
				errc <- fmt.Errorf("scan: %w", err)
				return
			}
			if n != stable {
				errc <- fmt.Errorf("scan saw %d stable keys, want %d", n, stable)
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st := db.Stats(); st.BlockCacheEvictions == 0 {
		t.Fatalf("tiny cache evicted nothing (hits=%d misses=%d)", st.BlockCacheHits, st.BlockCacheMisses)
	}
}
