package lsm

// Regression tests for the silent-scan-truncation bug: a data block whose
// entry framing is damaged used to end iteration quietly, so a scan over a
// corrupt table looked identical to a scan over a short table. These tests
// pin the fixed behaviour: corruption latches errTableCorrupt and every
// layer — tableIterator, mergeIterator, dbIterator.Error(), Get, compaction
// — surfaces it instead of returning a truncated result.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ethkv/internal/faultfs"
)

// multiBlockEntries builds enough entries to span several 4 KiB data blocks.
func multiBlockEntries(n int) []entry {
	ents := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		ents = append(ents, entry{
			key:   []byte(fmt.Sprintf("key-%05d", i)),
			value: bytes.Repeat([]byte{byte(i)}, 64),
		})
	}
	return ents
}

// corruptSecondBlock stomps continuation-bit bytes over the key-length
// varint at the start of the table's second data block, breaking entry
// framing mid-table while leaving the footer, index, and first block intact.
// It returns the damaged image and the last key of the corrupted block (a
// key whose point lookup must now fail).
func corruptSecondBlock(t *testing.T, raw []byte) ([]byte, []byte) {
	t.Helper()
	r, err := newTableReader(append([]byte(nil), raw...), tableMeta{num: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.index) < 2 {
		t.Fatalf("need a multi-block table, got %d blocks", len(r.index))
	}
	blk := r.index[1]
	mut := append([]byte(nil), raw...)
	for i := uint64(1); i < 11 && i < blk.length; i++ {
		mut[blk.offset+i] = 0xFF // uvarint that never terminates
	}
	return mut, append([]byte(nil), blk.lastKey...)
}

func TestTableIteratorCorruptBlock(t *testing.T) {
	m := faultfs.NewMemFS()
	ents := multiBlockEntries(500)
	meta, err := writeTable(m, "d", 1, 0, ents)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", 1))
	if err != nil {
		t.Fatal(err)
	}
	mut, badKey := corruptSecondBlock(t, raw)

	r, err := newTableReader(mut, meta)
	if err != nil {
		t.Fatalf("footer is intact, open must succeed: %v", err)
	}
	it := r.iterator(nil)
	n := 0
	for {
		if _, ok := it.nextEntry(); !ok {
			break
		}
		n++
	}
	if n == 0 || n >= len(ents) {
		t.Fatalf("walked %d of %d entries, want a proper prefix", n, len(ents))
	}
	if !errors.Is(it.err, errTableCorrupt) {
		t.Fatalf("iterator err = %v, want errTableCorrupt", it.err)
	}
	// The latched error is sticky: further calls stay failed.
	if _, ok := it.nextEntry(); ok {
		t.Fatal("iterator yielded entries after latching corruption")
	}

	// Point lookup landing in the corrupt block errors too.
	if _, _, _, _, err := r.get(badKey); !errors.Is(err, errTableCorrupt) {
		t.Fatalf("get in corrupt block = %v, want errTableCorrupt", err)
	}
	// Lookups served by the intact first block still succeed.
	v, found, _, _, err := r.get(ents[0].key)
	if err != nil || !found || !bytes.Equal(v, ents[0].value) {
		t.Fatalf("get in intact block = %q, %v, %v", v, found, err)
	}
}

func TestMergeIteratorSurfacesSourceError(t *testing.T) {
	m := faultfs.NewMemFS()
	meta, err := writeTable(m, "d", 1, 0, multiBlockEntries(500))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", 1))
	if err != nil {
		t.Fatal(err)
	}
	mut, _ := corruptSecondBlock(t, raw)
	r, err := newTableReader(mut, meta)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy memtable merged with the corrupt table: the merge must stop
	// with an error rather than continue serving the healthy source.
	mt := newMemtable(7)
	mt.put([]byte("zzz"), []byte("v"))
	merged := newMergeIterator([]source{
		newMemSource(mt, nil),
		newTableSource(r, nil),
	})
	for merged.next() {
	}
	if !errors.Is(merged.err(), errTableCorrupt) {
		t.Fatalf("merge err = %v, want errTableCorrupt", merged.err())
	}
	if merged.next() {
		t.Fatal("merge advanced after latching an error")
	}
}

func TestDBScanCorruptTableSurfacesError(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MemtableBytes: 8 << 10, Seed: 1}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Put(key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-flip a mid-table block in every multi-block table on disk. The
	// footer stays valid, so reopening succeeds; only a scan that actually
	// walks the damaged block can notice.
	paths, err := filepath.Glob(filepath.Join(dir, "*.sst"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no tables on disk (err=%v)", err)
	}
	corrupted := 0
	var badKey []byte
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := newTableReader(append([]byte(nil), raw...), tableMeta{num: 1})
		if err != nil || len(r.index) < 2 {
			continue
		}
		mut, bk := corruptSecondBlock(t, raw)
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		badKey = bk
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no multi-block table to corrupt; shrink MemtableBytes")
	}

	db, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	it := db.NewIterator(nil, nil)
	n := 0
	for it.Next() {
		n++
	}
	it.Release()
	if !errors.Is(it.Error(), errTableCorrupt) {
		t.Fatalf("scan over corrupt table: Error() = %v after %d/%d keys, want errTableCorrupt",
			it.Error(), n, total)
	}
	if n >= total {
		t.Fatalf("scan returned %d keys from a corrupt tree", n)
	}

	// Point lookup in the corrupted block reports the corruption as well.
	if _, err := db.Get(badKey); !errors.Is(err, errTableCorrupt) {
		t.Fatalf("Get(%q) = %v, want errTableCorrupt", badKey, err)
	}
}

func TestCompactionAbortsOnCorruptInput(t *testing.T) {
	m := faultfs.NewMemFS()
	meta, err := writeTable(m, "d", 1, 0, multiBlockEntries(500))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", 1))
	if err != nil {
		t.Fatal(err)
	}
	mut, _ := corruptSecondBlock(t, raw)
	if err := faultfs.WriteFileSync(m, tablePath("d", 1), mut); err != nil {
		t.Fatal(err)
	}

	db := &DB{dir: "d", fs: m, opts: Options{FS: m}.withDefaults(), open: map[uint64]*tableReader{}}
	db.next.Store(2)
	_, _, err = db.runCompaction(compactionPlan{
		level:    0,
		dst:      1,
		srcMetas: []tableMeta{meta},
	}, nil)
	if !errors.Is(err, errTableCorrupt) {
		t.Fatalf("compaction over corrupt input = %v, want errTableCorrupt", err)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{nil, nil},
		{[]byte{}, nil},
		{[]byte{0xFF}, nil},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte("a"), []byte("b")},
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0x00, 0xFF}, []byte{0xFF, 0x01}},
	}
	for _, c := range cases {
		if got := prefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("prefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	// The successor bounds exactly the prefixed keyspace.
	p := []byte("acct-")
	succ := prefixSuccessor(p)
	if bytes.Compare(append(append([]byte(nil), p...), 0xFF), succ) >= 0 {
		t.Error("successor does not bound prefixed keys")
	}
	if bytes.Compare(succ, p) <= 0 {
		t.Error("successor not greater than prefix")
	}
}

func TestIteratorPrunesNonOverlappingTables(t *testing.T) {
	dir := t.TempDir()
	// Tiny compaction output tables force L1+ to hold many small tables,
	// so a prefix scan has something to prune.
	opts := Options{
		MemtableBytes:        8 << 10,
		CompactionTableBytes: 4 << 10,
		Seed:                 1,
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		key := []byte(fmt.Sprintf("aaa-%05d", i))
		if err := db.Put(key, bytes.Repeat([]byte{1}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i++ {
		key := []byte(fmt.Sprintf("zzz-%05d", i))
		if err := db.Put(key, bytes.Repeat([]byte{2}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen so the reader cache is cold: db.open then counts exactly the
	// tables a scan had to touch.
	db, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	totalTables := 0
	for _, s := range db.LevelSizes() {
		totalTables += s.Tables
	}
	if totalTables < 4 {
		t.Fatalf("want a multi-table tree, got %d tables", totalTables)
	}

	it := db.NewIterator([]byte("zzz-"), nil)
	n := 0
	for it.Next() {
		n++
	}
	it.Release()
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if n != 1500 {
		t.Fatalf("prefix scan returned %d keys, want 1500", n)
	}

	db.openMu.Lock()
	opened := len(db.open)
	db.openMu.Unlock()
	if opened >= totalTables {
		t.Fatalf("prefix scan opened %d of %d tables; upper-bound pruning is not working",
			opened, totalTables)
	}
	t.Logf("prefix scan opened %d of %d tables", opened, totalTables)
}
