package crashtest

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
)

// seedCount returns how many seeds the suite sweeps. ETHKV_CRASHTEST_SEEDS
// overrides the default (the Makefile crashtest target sets 200+); -short
// trims it for quick iteration.
func seedCount(t *testing.T, def int) int {
	if s := os.Getenv("ETHKV_CRASHTEST_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad ETHKV_CRASHTEST_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 4
	}
	return def
}

// TestCrashRecoverySeeds is the main sweep: every seed runs the full
// workload-crash-reopen-verify cycle. Width and fault mix rotate with the
// seed so one sweep covers single-writer determinism, concurrent writers,
// and recovery under transient-fault retry. ETHKV_CRASHTEST_SEED replays
// one failing seed in isolation.
func TestCrashRecoverySeeds(t *testing.T) {
	if s := os.Getenv("ETHKV_CRASHTEST_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ETHKV_CRASHTEST_SEED=%q", s)
		}
		res := Run(configFor(seed), t.Fatalf)
		t.Logf("seed %d: crashed=%v units=%d retries=%d",
			seed, res.Crashed, res.UnitsRun, res.IORetries)
		return
	}
	n := seedCount(t, 60)
	var crashed, retries atomic.Int64
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			res := Run(configFor(seed), t.Fatalf)
			if res.Crashed {
				crashed.Add(1)
			}
			if res.IORetries > 0 {
				retries.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		t.Logf("%d seeds: %d crashed mid-workload, %d exercised retries",
			n, crashed.Load(), retries.Load())
	})
}

// configFor spreads the seed space over concurrency widths and fault
// mixes: a third single-writer, a third 2-way, a third 4-way; every other
// seed adds transient write faults on top of the crash. The block-cache
// budget rotates orthogonally (default, tiny, disabled), every fourth
// seed injects transient read faults, and the compaction scheduler width
// rotates through 1/2/4 workers — so the sweep also proves recovery is
// cache-size-independent, read-retry-safe, and holds when the crash lands
// while multiple range-disjoint compactions are in flight.
func configFor(seed int64) Config {
	cfg := Config{
		Seed:              seed,
		Workers:           []int{1, 2, 4}[seed%3],
		Units:             40,
		BlockCacheBytes:   []int64{0, 4 << 10, -1}[(seed/3)%3],
		CompactionWorkers: []int{1, 2, 4}[(seed/4)%3],
	}
	if seed%2 == 0 {
		cfg.TransientProb = 0.05
	}
	if seed%4 == 1 {
		cfg.ReadTransientProb = 0.02
	}
	return cfg
}

// TestCrashRecoveryDeterministic replays single-writer seeds twice and
// requires bit-identical recovered states — the property that makes any
// sweep failure reproducible from its seed alone.
func TestCrashRecoveryDeterministic(t *testing.T) {
	for seed := int64(101); seed < 106; seed++ {
		cfg := Config{Seed: seed, Workers: 1, Units: 30, TransientProb: 0.1}
		a := capture(t, cfg)
		b := capture(t, cfg)
		if a != b {
			t.Fatalf("seed %d diverged between runs:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// TestCrashRecoveryTinyCacheDeterministic replays seeds whose store runs a
// cache smaller than one table while transient read faults fire. Read
// faults draw from an rng separate from the write schedule, so replays must
// stay bit-identical — the invariant that keeps sweep failures reproducible
// now that reads are demand-paged.
func TestCrashRecoveryTinyCacheDeterministic(t *testing.T) {
	for seed := int64(201); seed < 206; seed++ {
		cfg := Config{
			Seed: seed, Workers: 1, Units: 30,
			TransientProb: 0.05, ReadTransientProb: 0.05,
			BlockCacheBytes: 4 << 10,
		}
		a := capture(t, cfg)
		b := capture(t, cfg)
		if a != b {
			t.Fatalf("seed %d diverged between runs:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// capture runs one cycle and fingerprints its observable outcome.
func capture(t *testing.T, cfg Config) string {
	t.Helper()
	res := Run(cfg, t.Fatalf)
	return fmt.Sprintf("crashed=%v units=%d", res.Crashed, res.UnitsRun)
}

// TestCrashRecoveryWideBatches leans on large batches so group records
// routinely straddle the torn-tail boundary, stressing the all-or-nothing
// guarantee specifically.
func TestCrashRecoveryWideBatches(t *testing.T) {
	n := seedCount(t, 20)
	for seed := int64(501); seed < 501+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			Run(Config{Seed: seed, Workers: 2, Units: 60}, t.Fatalf)
		})
	}
}

// TestCrashRecoveryFlatSeeds sweeps the same workload-crash-reopen-verify
// cycle over the flat single-seek backend. The flat store's ack discipline
// matches the verifier's model — batches commit as one synced group
// record, single ops are un-synced appends — and its tiny compaction
// threshold here makes generation rewrites and CURRENT swaps routine
// events inside the crash window. ETHKV_CRASHTEST_SEED replays one seed.
func TestCrashRecoveryFlatSeeds(t *testing.T) {
	if s := os.Getenv("ETHKV_CRASHTEST_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ETHKV_CRASHTEST_SEED=%q", s)
		}
		cfg := configFor(seed)
		cfg.Backend = "flat"
		res := Run(cfg, t.Fatalf)
		t.Logf("flat seed %d: crashed=%v units=%d retries=%d",
			seed, res.Crashed, res.UnitsRun, res.IORetries)
		return
	}
	n := seedCount(t, 60)
	var crashed, retries atomic.Int64
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := configFor(seed)
			cfg.Backend = "flat"
			res := Run(cfg, t.Fatalf)
			if res.Crashed {
				crashed.Add(1)
			}
			if res.IORetries > 0 {
				retries.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		t.Logf("flat: %d seeds: %d crashed mid-workload, %d exercised retries",
			n, crashed.Load(), retries.Load())
	})
}

// TestCrashRecoveryFlatDeterministic replays single-writer flat-backend
// seeds twice, requiring identical outcomes: compaction iterates its index
// in sorted key order precisely so the injected write schedule stays
// seed-reproducible.
func TestCrashRecoveryFlatDeterministic(t *testing.T) {
	for seed := int64(301); seed < 306; seed++ {
		cfg := Config{
			Seed: seed, Workers: 1, Units: 30,
			TransientProb: 0.1, Backend: "flat",
		}
		a := capture(t, cfg)
		b := capture(t, cfg)
		if a != b {
			t.Fatalf("flat seed %d diverged between runs:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// TestCrashRecoveryShardedSeeds sweeps the crash cycle over a sharded
// router: shard width, backend kind, concurrency, and fault mix all rotate
// with the seed, one seeded victim shard crashes mid-workload, and
// recovery is verified per (writer, shard) — the granularity at which
// cross-shard batches are atomic. ETHKV_CRASHTEST_SEED replays one seed.
func TestCrashRecoveryShardedSeeds(t *testing.T) {
	if s := os.Getenv("ETHKV_CRASHTEST_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ETHKV_CRASHTEST_SEED=%q", s)
		}
		res := Run(shardedConfigFor(seed), t.Fatalf)
		t.Logf("sharded seed %d: crashed=%v units=%d retries=%d",
			seed, res.Crashed, res.UnitsRun, res.IORetries)
		return
	}
	n := seedCount(t, 60)
	var crashed, retries atomic.Int64
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			res := Run(shardedConfigFor(seed), t.Fatalf)
			if res.Crashed {
				crashed.Add(1)
			}
			if res.IORetries > 0 {
				retries.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		t.Logf("sharded: %d seeds: %d crashed mid-workload, %d exercised retries",
			n, crashed.Load(), retries.Load())
	})
}

// shardedConfigFor layers shard width and backend rotation on top of the
// unsharded sweep's concurrency and fault mix: widths 2, 3, and 5 (odd
// widths catch modulo mistakes evens mask), with every third seed running
// flat children instead of lsm.
func shardedConfigFor(seed int64) Config {
	cfg := configFor(seed)
	cfg.Shards = []int{2, 3, 5}[(seed/2)%3]
	if seed%3 == 2 {
		cfg.Backend = "flat"
	}
	return cfg
}

// TestCrashRecoveryShardedDeterministic replays single-writer sharded
// seeds twice and requires identical outcomes: per-shard plans derive from
// (run seed, shard index) alone, so a sweep failure replays from its seed
// even though the crash lands on one shard of several.
func TestCrashRecoveryShardedDeterministic(t *testing.T) {
	for seed := int64(401); seed < 406; seed++ {
		cfg := Config{Seed: seed, Workers: 1, Units: 30, TransientProb: 0.1, Shards: 3}
		a := capture(t, cfg)
		b := capture(t, cfg)
		if a != b {
			t.Fatalf("sharded seed %d diverged between runs:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// TestCrashRecoveryShardedWideBatches leans on large batches against a
// sharded router, so nearly every unit straddles shards and the per-shard
// group-commit discipline — shards before the crash point committed,
// shards after it untouched — is what the verifier exercises.
func TestCrashRecoveryShardedWideBatches(t *testing.T) {
	n := seedCount(t, 20)
	for seed := int64(901); seed < 901+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			Run(Config{Seed: seed, Workers: 2, Units: 60, Shards: 4}, t.Fatalf)
		})
	}
}

// TestCrashRecoveryConcurrentCompactions pins the widest compaction
// scheduler (4 workers, tiny sub-compaction threshold) under transient
// write faults, so the seeded crash routinely lands while flushes and
// multiple range-disjoint compactions race on the injected filesystem.
// Prefix consistency must hold no matter which of the concurrent merges
// the power loss tears.
func TestCrashRecoveryConcurrentCompactions(t *testing.T) {
	n := seedCount(t, 20)
	for seed := int64(1101); seed < 1101+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%04d", seed), func(t *testing.T) {
			t.Parallel()
			Run(Config{
				Seed: seed, Workers: 2, Units: 60,
				CompactionWorkers: 4, TransientProb: 0.05,
			}, t.Fatalf)
		})
	}
}

// TestCrashRecoveryFlatWideBatches leans on large batches against the flat
// backend so group records routinely straddle the torn-tail boundary: a
// cut or damaged group must drop the whole batch, never a partial one.
func TestCrashRecoveryFlatWideBatches(t *testing.T) {
	n := seedCount(t, 20)
	for seed := int64(701); seed < 701+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			Run(Config{Seed: seed, Workers: 2, Units: 60, Backend: "flat"}, t.Fatalf)
		})
	}
}
