// Package crashtest is a deterministic crash-recovery test driver for the
// repository's durable backends (the LSM store and the flat single-seek
// store). Each run executes a seeded random workload against a store
// whose filesystem is a fault-injecting in-memory VFS, crashes it at a
// seeded point (hard-failing all subsequent I/O and discarding or tearing
// every un-synced byte), reopens the store from the surviving bytes, and
// checks the recovered state against an in-memory model.
//
// The correctness condition is prefix consistency per writer: the recovered
// state must equal the model after some prefix P of that writer's op
// sequence, where P is at least the last synced-acknowledged unit (so no
// acknowledged write is ever lost and no acknowledged delete ever
// resurrects) and units — single ops or whole batches — apply
// all-or-nothing (so a torn group never leaks a partial batch).
//
// With Config.Shards > 1 the same cycle runs against a shard.Router over N
// children, each on its own fault-injected filesystem with its own seeded
// plan: one seeded victim shard crashes mid-workload, power loss tears
// every shard independently, and — because cross-shard batches commit
// per-shard groups — the verifier checks prefix consistency per
// (writer, shard) across the reopened router.
package crashtest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/flatstore"
	"ethkv/internal/kv"
	"ethkv/internal/lsm"
	"ethkv/internal/shard"
)

// Config parameterizes one crash-recovery run. Everything random derives
// from Seed, so a single-writer run replays bit-identically.
type Config struct {
	Seed    int64
	Workers int // concurrent writers, each on a disjoint keyspace
	Units   int // workload units (single ops or batches) per worker
	// Backend selects the store under test: "lsm" (default) or "flat".
	// Both share the ack discipline the verifier assumes: batches
	// group-commit synced, single ops are buffered un-acked.
	Backend string
	// TransientProb injects retryable write faults at this rate, proving
	// recovery holds while the retry path is being exercised.
	TransientProb float64
	// ReadTransientProb injects retryable read faults at this rate into
	// the demand-paged block read path (drawn from an rng separate from
	// the write schedule, so crash-point replay stays deterministic).
	ReadTransientProb float64
	// BlockCacheBytes sets both stores' block-cache budget: 0 keeps the
	// store default, negative disables. Recovery must verify identically
	// at any cache size.
	BlockCacheBytes int64
	// Shards > 1 runs the workload against a shard.Router over that many
	// children of the Backend kind, each on its own fault-injected
	// filesystem with its own seeded plan. One seeded victim shard carries
	// the mid-workload crash point; power loss then tears every shard's
	// un-synced tail independently. Cross-shard batches commit per-shard
	// groups, so the verifier checks prefix consistency per (writer, shard)
	// rather than per writer.
	Shards int
	// CompactionWorkers sets the LSM's background compaction width (0 = 1,
	// the serial scheduler). At 1 the flush/compaction write schedule is
	// deterministic, so single-writer replays stay bit-identical; at 2+
	// the crash point lands while flushes and multiple range-disjoint
	// compactions race on the injected filesystem, which is exactly the
	// window where concurrent-compaction durability bugs would live.
	// Ignored by the flat backend.
	CompactionWorkers int
}

// op is one modelled mutation.
type op struct {
	del        bool
	key, value string
}

// unit is one atomic workload step: a single op or a whole batch. Batches
// group-commit (synced), so a successful batch is acknowledged-durable;
// single ops are buffered and may be lost by a crash without violating
// consistency.
type unit struct {
	ops   []op
	acked bool // synced and acknowledged: must survive any crash
}

// workerLog is the per-writer model: the attempted units in order, and the
// index just past the last acknowledged-durable one (the recovery floor).
type workerLog struct {
	worker int
	units  []unit
	floor  int
}

// Result carries what a run observed, for reporting.
type Result struct {
	Crashed   bool // the seeded crash point tripped mid-workload
	UnitsRun  int  // total units attempted across workers
	IORetries uint64
}

// Run executes one seeded crash-recovery cycle and verifies the recovered
// state. The failure callback receives a formatted violation; tests pass
// t.Fatalf.
func Run(cfg Config, fail func(format string, args ...any)) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Units <= 0 {
		cfg.Units = 40
	}
	if cfg.Shards > 1 {
		return runSharded(cfg, fail)
	}
	mem := faultfs.NewMemFS()
	plan := faultfs.NewPlan(cfg.Seed)
	plan.TransientProb = cfg.TransientProb
	plan.SetReadTransientProb(cfg.ReadTransientProb)
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	// Some seeds crash mid-workload, some run to completion and crash at
	// the end; both phases of the space matter.
	plan.CrashAfterWrites = 1 + seedRng.Int63n(300)

	db, err := openBackend(cfg, faultfs.Inject(mem, plan))
	if err != nil {
		// The crash point can land inside Open itself; with nothing
		// acknowledged, any recoverable state is consistent.
		if !plan.Crashed() && !faultfs.IsTransient(err) {
			fail("seed %d: open failed without a crash: %v", cfg.Seed, err)
			return Result{}
		}
		db = nil
	}

	logs := make([]*workerLog, cfg.Workers)
	if db != nil {
		done := make(chan *workerLog, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			go func(w int) {
				done <- runWorker(db, cfg, w)
			}(w)
		}
		for range logs {
			l := <-done
			logs[l.worker] = l
		}
		plan.TripCrash() // end-of-run crash if the scheduled one never hit
		db.Close()       // the "dead" process's close attempts all fail
	} else {
		for w := range logs {
			logs[w] = &workerLog{worker: w}
		}
	}

	// Power loss: un-synced bytes tear away per the seeded schedule.
	mem.Crash(plan.TornTail())

	// Reboot on the surviving bytes — no fault injection this time.
	re, err := openBackend(cfg, mem)
	if err != nil {
		fail("seed %d: reopen after crash failed: %v", cfg.Seed, err)
		return Result{}
	}
	defer re.Close()

	recovered := dumpStore(re, cfg.Seed, fail)
	var total int
	for w, l := range logs {
		verifyWorker(cfg.Seed, w, l, recovered, fail)
		total += len(l.units)
	}
	// Every recovered key must belong to some worker's keyspace: recovery
	// must not invent data.
	for key := range recovered {
		if workerOf(key) < 0 || workerOf(key) >= cfg.Workers {
			fail("seed %d: recovered alien key %q", cfg.Seed, key)
		}
	}

	res := Result{Crashed: plan.Crashed(), UnitsRun: total}
	if sp, ok := db.(kv.StatsProvider); ok && db != nil {
		res.IORetries = sp.Stats().IORetries
	}
	return res
}

// runSharded executes one seeded crash-recovery cycle against a
// shard.Router. Each shard's filesystem carries its own seeded fault plan;
// a seeded victim shard trips the mid-workload crash, and power loss tears
// every shard's un-synced tail independently. Because a cross-shard batch
// commits per-shard groups (atomic within a shard, not across shards),
// recovery is verified per (writer, shard): each shard's slice of a
// writer's keyspace must match a prefix of that writer's shard-local unit
// sequence.
func runSharded(cfg Config, fail func(format string, args ...any)) Result {
	n := cfg.Shards
	mems := make([]*faultfs.MemFS, n)
	plans := make([]*faultfs.Plan, n)
	for i := range mems {
		mems[i] = faultfs.NewMemFS()
		plans[i] = faultfs.NewPlan(cfg.Seed*7919 + int64(i))
		plans[i].TransientProb = cfg.TransientProb
		plans[i].SetReadTransientProb(cfg.ReadTransientProb)
	}
	tripAll := func() {
		for _, p := range plans {
			p.TripCrash()
		}
	}
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	victim := seedRng.Intn(n)
	plans[victim].CrashAfterWrites = 1 + seedRng.Int63n(300)

	var db *shard.Router
	children := make([]kv.Store, n)
	for i := range children {
		child, err := openBackend(cfg, faultfs.Inject(mems[i], plans[i]))
		if err != nil {
			// The victim's crash point can land inside its Open; with
			// nothing acknowledged anywhere, any recoverable state is
			// consistent. Kill the run before closing the shards that did
			// open, so their closes cannot sync state the dead process
			// never acknowledged.
			if !plans[i].Crashed() && !faultfs.IsTransient(err) {
				fail("seed %d: shard %d open failed without a crash: %v", cfg.Seed, i, err)
				return Result{}
			}
			tripAll()
			for _, c := range children[:i] {
				c.Close()
			}
			children = nil
			break
		}
		children[i] = child
	}
	if children != nil {
		r, err := shard.New(children, shard.Options{})
		if err != nil {
			fail("seed %d: shard router: %v", cfg.Seed, err)
			return Result{}
		}
		db = r
	}

	logs := make([]*workerLog, cfg.Workers)
	if db != nil {
		done := make(chan *workerLog, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			go func(w int) {
				done <- runWorker(db, cfg, w)
			}(w)
		}
		for range logs {
			l := <-done
			logs[l.worker] = l
		}
		tripAll() // end-of-run power loss hits every shard at once
		db.Close()
	} else {
		for w := range logs {
			logs[w] = &workerLog{worker: w}
		}
	}

	// Power loss: every shard's un-synced bytes tear away independently,
	// per its own seeded schedule.
	for i := range mems {
		mems[i].Crash(plans[i].TornTail())
	}

	// Reboot every shard on its surviving bytes — no fault injection.
	reChildren := make([]kv.Store, n)
	for i := range reChildren {
		c, err := openBackend(cfg, mems[i])
		if err != nil {
			fail("seed %d: shard %d reopen after crash failed: %v", cfg.Seed, i, err)
			for _, rc := range reChildren[:i] {
				rc.Close()
			}
			return Result{}
		}
		reChildren[i] = c
	}
	re, err := shard.New(reChildren, shard.Options{})
	if err != nil {
		fail("seed %d: shard router reopen: %v", cfg.Seed, err)
		return Result{}
	}
	defer re.Close()

	recovered := dumpStore(re, cfg.Seed, fail)
	var total int
	for w, l := range logs {
		for s := 0; s < n; s++ {
			verifyWorkerShard(cfg.Seed, w, s, l, re, recovered, fail)
		}
		total += len(l.units)
	}
	for key := range recovered {
		if workerOf(key) < 0 || workerOf(key) >= cfg.Workers {
			fail("seed %d: recovered alien key %q", cfg.Seed, key)
		}
	}

	res := Result{Crashed: plans[victim].Crashed(), UnitsRun: total}
	if db != nil {
		res.IORetries = db.Stats().IORetries
	}
	return res
}

// openBackend opens cfg.Backend over fsys with thresholds tiny enough
// that a small workload exercises the structural paths where durability
// bugs live: rotation, flush, and compaction for the LSM; generation
// compaction and the CURRENT swap for the flat store.
func openBackend(cfg Config, fsys faultfs.FS) (kv.Store, error) {
	switch cfg.Backend {
	case "", "lsm":
		// Default to the serial scheduler: crash-point replay is only
		// bit-identical when flushes and compactions share one write
		// schedule. Concurrent widths opt in per seed.
		cw := cfg.CompactionWorkers
		if cw == 0 {
			cw = 1
		}
		return lsm.Open("crashdb", lsm.Options{
			MemtableBytes:         2 << 10,
			MaxImmutableMemtables: 2,
			L0CompactionTrigger:   2,
			LevelBaseBytes:        8 << 10,
			LevelMultiplier:       4,
			MaxLevels:             4,
			Seed:                  cfg.Seed,
			FS:                    fsys,
			RetryAttempts:         10,
			RetryBackoff:          time.Microsecond,
			BlockCacheBytes:       cfg.BlockCacheBytes,
			CompactionWorkers:     cw,
			// Tiny split threshold so even this workload's compactions
			// fan into range sub-compactions under the fault plan.
			SubCompactionBytes: 4 << 10,
		})
	case "flat":
		return flatstore.Open("crashdb", flatstore.Options{
			FS:                    fsys,
			RetryAttempts:         10,
			RetryBackoff:          time.Microsecond,
			CompactAfterDeadBytes: 2 << 10,
		})
	default:
		return nil, fmt.Errorf("crashtest: unknown backend %q", cfg.Backend)
	}
}

// runWorker drives one writer over its disjoint keyspace until its unit
// budget is spent or the store fails (crash point, degraded mode).
func runWorker(db kv.Store, cfg Config, w int) *workerLog {
	l := &workerLog{worker: w}
	rng := rand.New(rand.NewSource(cfg.Seed*1009 + int64(w)))
	for i := 0; i < cfg.Units; i++ {
		if rng.Intn(10) < 6 {
			// Batch: group commit, synced, acknowledged-durable on success.
			n := 1 + rng.Intn(6)
			u := unit{}
			b := db.NewBatch()
			for j := 0; j < n; j++ {
				o := genOp(rng, w, i*10+j)
				u.ops = append(u.ops, o)
				if o.del {
					b.Delete([]byte(o.key))
				} else {
					b.Put([]byte(o.key), []byte(o.value))
				}
			}
			err := b.Write()
			l.units = append(l.units, u)
			if err != nil {
				return l // crash or degrade: the tail unit stays un-acked
			}
			l.units[len(l.units)-1].acked = true
			l.floor = len(l.units)
		} else {
			// Single op: accepted into WAL buffer + memtable, not synced.
			o := genOp(rng, w, i*10)
			var err error
			if o.del {
				err = db.Delete([]byte(o.key))
			} else {
				err = db.Put([]byte(o.key), []byte(o.value))
			}
			l.units = append(l.units, unit{ops: []op{o}})
			if err != nil {
				return l
			}
		}
	}
	return l
}

// genOp draws one op in worker w's keyspace. Values encode (worker, step)
// so every overwrite changes the state and misordered recovery is visible.
func genOp(rng *rand.Rand, w, step int) op {
	key := fmt.Sprintf("w%02d-k%03d", w, rng.Intn(40))
	if rng.Intn(4) == 0 {
		return op{del: true, key: key}
	}
	pad := strings.Repeat("x", rng.Intn(48))
	return op{key: key, value: fmt.Sprintf("v-%d-%d-%s", w, step, pad)}
}

// workerOf parses the owning worker from a key, or -1.
func workerOf(key string) int {
	var w int
	if _, err := fmt.Sscanf(key, "w%02d-", &w); err != nil {
		return -1
	}
	return w
}

// dumpStore materializes the recovered store through a full scan, checking
// the iterator is strictly ascending and agrees with point reads.
func dumpStore(db kv.Store, seed int64, fail func(string, ...any)) map[string]string {
	out := make(map[string]string)
	it := db.NewIterator(nil, nil)
	defer it.Release()
	prev := ""
	for it.Next() {
		k, v := string(it.Key()), string(it.Value())
		if prev != "" && k <= prev {
			fail("seed %d: iterator out of order: %q after %q", seed, k, prev)
		}
		prev = k
		out[k] = v
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			fail("seed %d: Get(%q) = %q, %v disagrees with scan %q",
				seed, k, got, err, v)
		}
	}
	if err := it.Error(); err != nil {
		fail("seed %d: recovered iterator error: %v", seed, err)
	}
	return out
}

// verifyWorker checks prefix consistency for one writer: the recovered
// slice of its keyspace must equal the model after P whole units, for some
// P between the acknowledged floor and the end of its attempt log.
func verifyWorker(seed int64, w int, l *workerLog, recovered map[string]string, fail func(string, ...any)) {
	prefix := fmt.Sprintf("w%02d-", w)
	got := make(map[string]string)
	for k, v := range recovered {
		if strings.HasPrefix(k, prefix) {
			got[k] = v
		}
	}
	if model, ok := checkPrefix(l.units, l.floor, got); !ok {
		fail("seed %d worker %d: recovered state matches no prefix in [%d, %d]\n%s",
			seed, w, l.floor, len(l.units), diffState(model, got))
	}
}

// verifyWorkerShard checks prefix consistency for one (writer, shard)
// pair. A cross-shard batch commits per-shard groups, so atomicity — and
// with it prefix consistency — holds per shard: the recovered slice of
// worker w's keyspace living on shard s must equal the model after some
// prefix of the writer's shard-s sub-units. An acked batch syncs only the
// shards it actually wrote, so the durability floor on shard s advances
// only past acked units that touched s.
func verifyWorkerShard(seed int64, w, s int, l *workerLog, r *shard.Router, recovered map[string]string, fail func(string, ...any)) {
	prefix := fmt.Sprintf("w%02d-", w)
	got := make(map[string]string)
	for k, v := range recovered {
		if strings.HasPrefix(k, prefix) && r.ShardOf([]byte(k)) == s {
			got[k] = v
		}
	}
	var units []unit
	floor := 0
	for _, u := range l.units {
		var ops []op
		for _, o := range u.ops {
			if r.ShardOf([]byte(o.key)) == s {
				ops = append(ops, o)
			}
		}
		if len(ops) == 0 {
			continue
		}
		units = append(units, unit{ops: ops, acked: u.acked})
		if u.acked {
			floor = len(units)
		}
	}
	if model, ok := checkPrefix(units, floor, got); !ok {
		fail("seed %d worker %d shard %d: recovered state matches no shard-local prefix in [%d, %d]\n%s",
			seed, w, s, floor, len(units), diffState(model, got))
	}
}

// checkPrefix searches for a prefix P in [floor, len(units)] whose model
// equals got. On failure it returns the full model (every unit applied),
// the most useful diff anchor.
func checkPrefix(units []unit, floor int, got map[string]string) (map[string]string, bool) {
	model := make(map[string]string)
	apply := func(u unit) {
		for _, o := range u.ops {
			if o.del {
				delete(model, o.key)
			} else {
				model[o.key] = o.value
			}
		}
	}
	for i := 0; i < floor; i++ {
		apply(units[i])
	}
	for p := floor; ; p++ {
		if mapsEqual(model, got) {
			return model, true
		}
		if p >= len(units) {
			return model, false
		}
		apply(units[p])
	}
}

// mapsEqual reports deep equality of two string maps.
func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// diffState renders a compact model-vs-recovered diff (against the full
// model, the most useful anchor) for failure messages.
func diffState(model, got map[string]string) string {
	var keys []string
	seen := map[string]bool{}
	for k := range model {
		keys, seen[k] = append(keys, k), true
	}
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		mv, mok := model[k]
		gv, gok := got[k]
		if mok && gok && mv == gv {
			continue
		}
		fmt.Fprintf(&sb, "  %q: model=%q(%v) recovered=%q(%v)\n", k, mv, mok, gv, gok)
	}
	return sb.String()
}
