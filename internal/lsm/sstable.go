package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync/atomic"

	"ethkv/internal/faultfs"
)

// SSTable file layout (all integers little-endian):
//
//	data block 0 | data block 1 | ... | index block | bloom block | footer
//
// Format v2 (current): every data block, the index block, and the bloom
// block carry a crc32(payload) trailer appended to the payload; index and
// footer extents cover payload+trailer. A bit flip anywhere in a block is
// detected by the checksum at read time, not just by entry-framing luck.
// Format v1 (still readable) has no per-section checksums and hashes bloom
// probes with Keccak-256; the footer magic selects the format.
//
// Each data block holds consecutive entries:
//
//	flags byte (bit0 = tombstone) | keyLen uvarint | key | valueLen uvarint | value
//
// The index block records, per data block: lastKeyLen uvarint | lastKey |
// offset uvarint | length uvarint (length spans the stored extent,
// including the v2 checksum trailer). Point lookups binary-search the
// index by last key, fetch one data block — through the shared block cache
// — and scan it linearly.
//
// The footer is fixed-size and identical across formats:
//
//	indexOff u64 | indexLen u64 | bloomOff u64 | bloomLen u64 | bloomK u32 |
//	entryCount u64 | crc32-of-footer-prefix u32 | magic u64
const (
	footerSize   = 8*5 + 4 + 4 + 8
	tableMagicV1 = 0x657468_6b760001 // "ethkv" + version 1: no section CRCs, keccak bloom
	tableMagicV2 = 0x657468_6b760002 // version 2: CRC32 trailers, fast bloom hash
	targetBlock  = 4 << 10           // 4 KiB data blocks
	blockCRCSize = 4                 // crc32 trailer appended to each v2 section

	// readaheadBytes is the span one iterator fetch covers: sequential
	// scans and compactions read runs of contiguous blocks in one ReadAt
	// into a private buffer instead of thrashing the block cache.
	readaheadBytes = 256 << 10
)

// Table formats accepted by the reader; the writer emits v2. Tests use
// writeTableFormat to produce v1 images with the real writer code.
const (
	tableFormatV1 = 1
	tableFormatV2 = 2
)

// errTableCorrupt marks structural damage detected while opening or reading
// an SSTable.
var errTableCorrupt = errors.New("lsm: corrupt sstable")

// tableMeta identifies one on-disk table within the LSM tree.
type tableMeta struct {
	num      uint64 // file number
	level    int
	size     int64
	smallest []byte
	largest  []byte
	entries  uint64
}

// tablePath names the SSTable file for number num inside dir.
func tablePath(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.sst", dir, num)
}

// writeTable persists sorted entries to an SSTable file (current format)
// and returns its metadata. Entries must be strictly ascending by key. The
// file is synced before writeTable returns — table installs (and the WAL
// deletions that follow them) may only happen once the table is
// crash-durable — and write, sync, and close errors all propagate.
func writeTable(fsys faultfs.FS, dir string, num uint64, level int, ents []entry) (tableMeta, error) {
	return writeTableFormat(fsys, dir, num, level, ents, tableFormatV2)
}

// writeTableFormat is writeTable with an explicit format selector, so
// compatibility tests can produce v1 images through the real writer.
func writeTableFormat(fsys faultfs.FS, dir string, num uint64, level int, ents []entry, format int) (tableMeta, error) {
	if len(ents) == 0 {
		return tableMeta{}, errors.New("lsm: refusing to write empty table")
	}
	withCRC := format >= tableFormatV2
	var (
		buf      bytes.Buffer
		block    bytes.Buffer
		indexBuf bytes.Buffer
		lastKey  []byte
		blockOff uint64
		scratch  [binary.MaxVarintLen64]byte
		putUvar  = func(dst *bytes.Buffer, v uint64) { dst.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
		// appendSection writes payload (plus the v2 checksum trailer) to buf
		// and returns the stored extent length.
		appendSection = func(payload []byte) uint64 {
			buf.Write(payload)
			if !withCRC {
				return uint64(len(payload))
			}
			var crc [blockCRCSize]byte
			binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
			buf.Write(crc[:])
			return uint64(len(payload) + blockCRCSize)
		}
		flushBlok = func() {
			if block.Len() == 0 {
				return
			}
			extent := appendSection(block.Bytes())
			putUvar(&indexBuf, uint64(len(lastKey)))
			indexBuf.Write(lastKey)
			putUvar(&indexBuf, blockOff)
			putUvar(&indexBuf, extent)
			blockOff += extent
			block.Reset()
		}
	)
	bloom := newBloomFilter(len(ents), withCRC)
	for _, e := range ents {
		flags := byte(0)
		if e.tombstone {
			flags = 1
		}
		block.WriteByte(flags)
		putUvar(&block, uint64(len(e.key)))
		block.Write(e.key)
		putUvar(&block, uint64(len(e.value)))
		block.Write(e.value)
		lastKey = e.key
		bloom.add(e.key)
		if block.Len() >= targetBlock {
			flushBlok()
		}
	}
	flushBlok()

	indexOff := uint64(buf.Len())
	indexLen := appendSection(indexBuf.Bytes())
	bloomOff := uint64(buf.Len())
	bloomLen := appendSection(bloom.bits)

	magic := uint64(tableMagicV2)
	if !withCRC {
		magic = tableMagicV1
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint64(footer[8:], indexLen)
	binary.LittleEndian.PutUint64(footer[16:], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:], bloomLen)
	binary.LittleEndian.PutUint32(footer[32:], uint32(bloom.k))
	binary.LittleEndian.PutUint64(footer[36:], uint64(len(ents)))
	binary.LittleEndian.PutUint32(footer[44:], crc32.ChecksumIEEE(footer[:44]))
	binary.LittleEndian.PutUint64(footer[48:], magic)
	buf.Write(footer[:])

	path := tablePath(dir, num)
	if err := faultfs.WriteFileSync(fsys, path, buf.Bytes()); err != nil {
		return tableMeta{}, err
	}
	return tableMeta{
		num:      num,
		level:    level,
		size:     int64(buf.Len()),
		smallest: append([]byte(nil), ents[0].key...),
		largest:  append([]byte(nil), ents[len(ents)-1].key...),
		entries:  uint64(len(ents)),
	}, nil
}

// indexEntry locates one data block's stored extent (payload plus the v2
// checksum trailer).
type indexEntry struct {
	lastKey []byte
	offset  uint64
	length  uint64
}

// tableReader serves point and range reads from one SSTable by demand
// paging: only the index and bloom sections are resident (pinned for the
// reader's lifetime); data blocks are fetched individually through the
// shared block cache, so a store much larger than memory stays readable
// within the cache budget.
//
// Readers are reference-counted. The DB's open map holds one reference;
// every in-flight consumer (Get, iterator, compaction) takes its own, so a
// compaction deleting the file under a live scan is safe: the OS keeps
// unlinked files readable through open descriptors (MemFS handles hold a
// snapshot), and the last unref closes the handle and purges the table's
// cached blocks.
type tableReader struct {
	meta   tableMeta
	src    io.ReaderAt
	closer func() error // nil for byte-backed readers
	size   int64
	index  []indexEntry
	bloom  *bloomFilter
	hasCRC bool // v2: per-section crc32 trailers
	cache  *blockCache
	stats  *dbStats // bloom effectiveness counters; nil for unit readers
	retry  retryFn
	pinned int64 // index+bloom bytes accounted against the cache
	refs   atomic.Int32
}

// passRetry is the identity retry policy for readers outside a DB (fuzz
// and unit constructions).
func passRetry(op func() error) error { return op() }

// ref takes one reference.
func (t *tableReader) ref() { t.refs.Add(1) }

// unref releases one reference; the last release closes the file handle
// and drops the table's cache footprint.
func (t *tableReader) unref() {
	if t.refs.Add(-1) > 0 {
		return
	}
	if t.closer != nil {
		t.closer()
	}
	t.cache.dropTable(t.meta.num)
	t.cache.addPinned(-t.pinned)
}

// openTable opens the SSTable file for meta and validates its footer,
// index, and bloom sections (the only parts read eagerly). Individual
// reads go through retry so transient faults are absorbed by the store's
// backoff policy.
func openTable(fsys faultfs.FS, dir string, meta tableMeta, cache *blockCache, stats *dbStats, retry retryFn) (*tableReader, error) {
	if retry == nil {
		retry = passRetry
	}
	path := tablePath(dir, meta.num)
	var f faultfs.File
	if err := retry(func() error {
		var err error
		f, err = fsys.Open(path)
		return err
	}); err != nil {
		return nil, err
	}
	var size int64
	if err := retry(func() error {
		var err error
		size, err = f.Size()
		return err
	}); err != nil {
		f.Close()
		return nil, err
	}
	t, err := openTableReader(f, f.Close, size, meta, cache, stats, retry)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// newTableReader builds a reader over an in-memory SSTable image — the
// byte-backed constructor fuzz targets and corruption tests use. No cache,
// no retry policy.
func newTableReader(data []byte, meta tableMeta) (*tableReader, error) {
	return openTableReader(bytes.NewReader(data), nil, int64(len(data)), meta, nil, nil, passRetry)
}

// openTableReader validates an SSTable through its positional-read source
// and builds a reader. Every structural field is bounds-checked before
// use: arbitrary (fuzzed, torn, bit-flipped) input must produce
// errTableCorrupt, never a panic or an out-of-range access.
func openTableReader(src io.ReaderAt, closer func() error, size int64, meta tableMeta, cache *blockCache, stats *dbStats, retry retryFn) (*tableReader, error) {
	t := &tableReader{
		meta: meta, src: src, closer: closer, size: size,
		cache: cache, stats: stats, retry: retry,
	}
	if size < footerSize {
		return nil, fmt.Errorf("%w: file shorter than footer", errTableCorrupt)
	}
	var footer [footerSize]byte
	if err := t.readAt(footer[:], size-footerSize); err != nil {
		return nil, err
	}
	switch binary.LittleEndian.Uint64(footer[48:]) {
	case tableMagicV2:
		t.hasCRC = true
	case tableMagicV1:
	default:
		return nil, fmt.Errorf("%w: bad magic", errTableCorrupt)
	}
	if crc32.ChecksumIEEE(footer[:44]) != binary.LittleEndian.Uint32(footer[44:]) {
		return nil, fmt.Errorf("%w: footer checksum", errTableCorrupt)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	indexLen := binary.LittleEndian.Uint64(footer[8:])
	bloomOff := binary.LittleEndian.Uint64(footer[16:])
	bloomLen := binary.LittleEndian.Uint64(footer[24:])
	bloomK := int(binary.LittleEndian.Uint32(footer[32:]))
	// Overflow-safe section bounds: compare lengths against the remainder,
	// never the sum of two attacker-controlled u64s.
	dlen := uint64(size)
	if indexOff > dlen || indexLen > dlen-indexOff ||
		bloomOff > dlen || bloomLen > dlen-bloomOff {
		return nil, fmt.Errorf("%w: section out of range", errTableCorrupt)
	}
	if bloomK < 0 || bloomK > 64 {
		return nil, fmt.Errorf("%w: bloom probe count", errTableCorrupt)
	}

	// Data blocks live strictly before the index block.
	indexRaw, err := t.readSection(indexOff, indexLen, "index")
	if err != nil {
		return nil, err
	}
	t.index, err = parseIndex(indexRaw, indexOff, t.hasCRC)
	if err != nil {
		return nil, err
	}
	bloomBits, err := t.readSection(bloomOff, bloomLen, "bloom")
	if err != nil {
		return nil, err
	}
	t.bloom = bloomFromBytes(bloomBits, bloomK, t.hasCRC)
	// Index and bloom stay pinned for the reader's lifetime; account them
	// so observability reports the true memory footprint.
	t.pinned = int64(indexLen + bloomLen)
	t.cache.addPinned(t.pinned)
	t.refs.Store(1)
	return t, nil
}

// readAt fills p from offset off, retrying transient faults. A short read
// (a truncated file) surfaces as errTableCorrupt.
func (t *tableReader) readAt(p []byte, off int64) error {
	return t.retry(func() error {
		n, err := t.src.ReadAt(p, off)
		if n == len(p) {
			return nil
		}
		if err == nil || errors.Is(err, io.EOF) {
			return fmt.Errorf("%w: short read (%d of %d bytes at %d)", errTableCorrupt, n, len(p), off)
		}
		return err
	})
}

// readSection fetches one pinned section (index or bloom) and, on v2
// tables, verifies and strips its checksum trailer.
func (t *tableReader) readSection(off, length uint64, what string) ([]byte, error) {
	buf := make([]byte, length)
	if err := t.readAt(buf, int64(off)); err != nil {
		return nil, err
	}
	if !t.hasCRC {
		return buf, nil
	}
	if length < blockCRCSize {
		return nil, fmt.Errorf("%w: %s shorter than checksum", errTableCorrupt, what)
	}
	payload := buf[:length-blockCRCSize]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[length-blockCRCSize:]) {
		return nil, fmt.Errorf("%w: %s checksum", errTableCorrupt, what)
	}
	return payload, nil
}

// blockPayload verifies extent's checksum trailer (v2) and returns the
// entry payload. A bit flip anywhere in the stored block fails here with
// errTableCorrupt — corruption can never be served as data.
func (t *tableReader) blockPayload(extent []byte, blockIdx int) ([]byte, error) {
	if !t.hasCRC {
		return extent, nil
	}
	// parseIndex guarantees v2 extents exceed the trailer size.
	payload := extent[:len(extent)-blockCRCSize]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(extent[len(extent)-blockCRCSize:]) {
		return nil, fmt.Errorf("%w: block checksum (table %06d, block %d)",
			errTableCorrupt, t.meta.num, blockIdx)
	}
	return payload, nil
}

// readBlock returns the payload of data block i. useCache selects the
// shared-cache path (point reads): a hit costs no I/O, a miss fetches the
// extent and inserts the verified payload. diskBytes reports the bytes
// actually fetched from the file — 0 on a cache hit — so physical-read
// accounting reflects true I/O, not logical block touches.
func (t *tableReader) readBlock(i int, useCache bool) (payload []byte, diskBytes int, err error) {
	if useCache {
		if b, ok := t.cache.get(t.meta.num, i); ok {
			return b, 0, nil
		}
	}
	blk := t.index[i]
	buf := make([]byte, blk.length)
	if err := t.readAt(buf, int64(blk.offset)); err != nil {
		return nil, 0, err
	}
	payload, err = t.blockPayload(buf, i)
	if err != nil {
		return nil, int(blk.length), err
	}
	if useCache {
		t.cache.put(t.meta.num, i, payload)
	}
	return payload, int(blk.length), nil
}

// parseIndex decodes the index block. dataLimit is the exclusive upper
// bound for block extents (the index's own offset): every referenced data
// block must lie entirely within [0, dataLimit). withCRC additionally
// requires each extent to exceed the checksum trailer.
func parseIndex(raw []byte, dataLimit uint64, withCRC bool) ([]indexEntry, error) {
	var index []indexEntry
	for len(raw) > 0 {
		klen, n := binary.Uvarint(raw)
		if n <= 0 || uint64(len(raw)-n) < klen {
			return nil, fmt.Errorf("%w: index key", errTableCorrupt)
		}
		raw = raw[n:]
		key := raw[:klen]
		raw = raw[klen:]
		off, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index offset", errTableCorrupt)
		}
		raw = raw[n:]
		length, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index length", errTableCorrupt)
		}
		raw = raw[n:]
		if off > dataLimit || length > dataLimit-off {
			return nil, fmt.Errorf("%w: block extent out of range", errTableCorrupt)
		}
		if withCRC && length <= blockCRCSize {
			return nil, fmt.Errorf("%w: block extent shorter than checksum", errTableCorrupt)
		}
		// Structural monotonicity: blocks ascend by last key and do not
		// overlap. Catches shuffled or duplicated index entries cheaply;
		// block payloads are then guarded by their own checksums (v2).
		if n := len(index); n > 0 {
			prev := index[n-1]
			if bytes.Compare(key, prev.lastKey) <= 0 || off < prev.offset+prev.length {
				return nil, fmt.Errorf("%w: index not monotonic", errTableCorrupt)
			}
		}
		index = append(index, indexEntry{lastKey: key, offset: off, length: length})
	}
	return index, nil
}

// get looks up key. bytesRead reports bytes fetched from disk (0 when the
// block was cached), so the DB accounts physical read I/O. A block whose
// checksum or framing is damaged surfaces errTableCorrupt — a corrupt
// block must not masquerade as key-not-found. Bloom effectiveness is
// counted on the way: negatives that skip the table entirely, and false
// positives where the filter passed but the block held no match.
func (t *tableReader) get(key []byte) (value []byte, found, deleted bool, bytesRead int, err error) {
	if !t.bloom.mayContain(key) {
		if t.stats != nil {
			t.stats.bloomNegatives.Add(1)
		}
		return nil, false, false, 0, nil
	}
	// Binary search the first block whose last key >= key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].lastKey, key) >= 0
	})
	if i == len(t.index) {
		if t.stats != nil {
			t.stats.bloomFalsePositives.Add(1)
		}
		return nil, false, false, 0, nil
	}
	block, bytesRead, err := t.readBlock(i, true)
	if err != nil {
		return nil, false, false, bytesRead, err
	}
	err = walkBlock(block, func(ent entry) bool {
		c := bytes.Compare(ent.key, key)
		if c == 0 {
			value, found, deleted = ent.value, true, ent.tombstone
			return false
		}
		return c < 0
	})
	if err != nil {
		err = fmt.Errorf("%w: table %06d block at %d", err, t.meta.num, t.index[i].offset)
		return nil, false, false, bytesRead, err
	}
	if !found && t.stats != nil {
		t.stats.bloomFalsePositives.Add(1)
	}
	return value, found, deleted, bytesRead, err
}

// walkBlock yields the entries of one data block in order until yield
// returns false. Damaged framing returns errTableCorrupt; corrupt lengths
// must never index past the block.
func walkBlock(block []byte, yield func(entry) bool) error {
	for len(block) > 0 {
		flags := block[0]
		block = block[1:]
		klen, n := binary.Uvarint(block)
		if n <= 0 || uint64(len(block)-n) < klen {
			return fmt.Errorf("%w: entry key framing", errTableCorrupt)
		}
		block = block[n:]
		key := block[:klen]
		block = block[klen:]
		vlen, n := binary.Uvarint(block)
		if n <= 0 || uint64(len(block)-n) < vlen {
			return fmt.Errorf("%w: entry value framing", errTableCorrupt)
		}
		block = block[n:]
		value := block[:vlen]
		block = block[vlen:]
		if !yield(entry{key: key, value: value, tombstone: flags&1 != 0}) {
			return nil
		}
	}
	return nil
}

// tableIterator walks the full table in key order, including tombstones.
// Blocks stream through a private readahead buffer — one ReadAt covers a
// run of contiguous extents — which is never inserted into the shared
// cache: a sequential scan must not evict the point-read working set
// (scan resistance). Cached blocks are still used when present
// (checkCache); the compaction bypass walk skips the cache entirely.
// Damaged checksums or block framing latch err and end the walk: a scan
// over a corrupt table yields a clean prefix and a non-nil error, never a
// silently truncated result.
type tableIterator struct {
	t          *tableReader
	blockIdx   int    // next block index to load
	block      []byte // remaining payload of the current block
	cur        entry
	valid      bool
	pending    bool  // cur holds a seek result not yet surfaced by nextEntry
	read       int   // bytes fetched from disk so far (cache hits cost 0)
	err        error // first corruption or I/O failure encountered
	checkCache bool

	ra      []byte // private readahead buffer of raw contiguous extents
	raFirst int    // block index of the first extent in ra
	raCount int    // extents held in ra
}

// iterator returns a fresh cache-aware iterator positioned before the
// first entry, or at the first entry with key >= start when start is
// non-nil.
func (t *tableReader) iterator(start []byte) *tableIterator {
	return t.iteratorOpts(start, true)
}

// iteratorOpts selects the cache policy: checkCache=false is the
// compaction bypass — the walk neither consults nor populates the shared
// cache, so a background merge cannot disturb the hot read set.
func (t *tableReader) iteratorOpts(start []byte, checkCache bool) *tableIterator {
	it := &tableIterator{t: t, checkCache: checkCache}
	if start != nil {
		it.blockIdx = sort.Search(len(t.index), func(i int) bool {
			return bytes.Compare(t.index[i].lastKey, start) >= 0
		})
		// Advance within the block to the first key >= start.
		for it.next() {
			if bytes.Compare(it.cur.key, start) >= 0 {
				it.pending = true
				break
			}
		}
	}
	return it
}

// pending marks that next() already holds the entry to surface first (set
// by seek positioning).
func (it *tableIterator) nextEntry() (entry, bool) {
	if it.pending {
		it.pending = false
		return it.cur, it.valid
	}
	ok := it.next()
	return it.cur, ok
}

// next advances the raw cursor one entry. Bad framing latches it.err and
// terminates the walk.
func (it *tableIterator) next() bool {
	if it.err != nil {
		it.valid = false
		return false
	}
	for {
		if len(it.block) == 0 {
			if it.blockIdx >= len(it.t.index) {
				it.valid = false
				return false
			}
			block, err := it.loadBlock(it.blockIdx)
			if err != nil {
				return it.failErr(err)
			}
			it.block = block
			it.blockIdx++
			// Re-check: a corrupt v1 index may frame a zero-length block.
			continue
		}
		flags := it.block[0]
		it.block = it.block[1:]
		klen, n := binary.Uvarint(it.block)
		if n <= 0 || uint64(len(it.block)-n) < klen {
			return it.fail("entry key framing")
		}
		it.block = it.block[n:]
		key := it.block[:klen]
		it.block = it.block[klen:]
		vlen, n := binary.Uvarint(it.block)
		if n <= 0 || uint64(len(it.block)-n) < vlen {
			return it.fail("entry value framing")
		}
		it.block = it.block[n:]
		value := it.block[:vlen]
		it.block = it.block[vlen:]
		it.cur = entry{key: key, value: value, tombstone: flags&1 != 0}
		it.valid = true
		return true
	}
}

// loadBlock returns block i's payload: from the shared cache when allowed,
// else from the private readahead span, fetching the next span when the
// current one is exhausted.
func (it *tableIterator) loadBlock(i int) ([]byte, error) {
	t := it.t
	if it.checkCache {
		if b, ok := t.cache.get(t.meta.num, i); ok {
			return b, nil
		}
	}
	if i < it.raFirst || i >= it.raFirst+it.raCount {
		if err := it.fetchSpan(i); err != nil {
			return nil, err
		}
	}
	blk := t.index[i]
	base := t.index[it.raFirst].offset
	extent := it.ra[blk.offset-base : blk.offset-base+blk.length]
	return t.blockPayload(extent, i)
}

// fetchSpan reads one readahead span of contiguous block extents starting
// at block i into the iterator's private buffer: one positional read
// serves many subsequent blocks.
func (it *tableIterator) fetchSpan(i int) error {
	t := it.t
	start := t.index[i].offset
	end, total := i, uint64(0)
	for end < len(t.index) &&
		t.index[end].offset == start+total && // corrupt v1 indexes may leave gaps
		(end == i || total+t.index[end].length <= readaheadBytes) {
		total += t.index[end].length
		end++
	}
	buf := make([]byte, total)
	if err := t.readAt(buf, int64(start)); err != nil {
		return err
	}
	it.ra, it.raFirst, it.raCount = buf, i, end-i
	it.read += int(total)
	return nil
}

// fail latches a framing-corruption error and invalidates the cursor.
func (it *tableIterator) fail(what string) bool {
	return it.failErr(fmt.Errorf("%w: %s (table %06d, block %d)",
		errTableCorrupt, what, it.t.meta.num, it.blockIdx-1))
}

// failErr latches err (corruption or I/O failure) and invalidates the
// cursor; the latch is sticky.
func (it *tableIterator) failErr(err error) bool {
	it.err = err
	it.valid = false
	it.block = nil
	return false
}
