package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"ethkv/internal/faultfs"
)

// SSTable file layout (all integers little-endian):
//
//	data block 0 | data block 1 | ... | index block | bloom block | footer
//
// Each data block holds consecutive entries:
//
//	flags byte (bit0 = tombstone) | keyLen uvarint | key | valueLen uvarint | value
//
// The index block records, per data block: lastKeyLen uvarint | lastKey |
// offset uvarint | length uvarint. Point lookups binary-search the index by
// last key, read one data block, and scan it linearly.
//
// The footer is fixed-size:
//
//	indexOff u64 | indexLen u64 | bloomOff u64 | bloomLen u64 | bloomK u32 |
//	entryCount u64 | crc32-of-footer-prefix u32 | magic u64
const (
	footerSize  = 8*5 + 4 + 4 + 8
	tableMagic  = 0x657468_6b760001 // "ethkv" + version
	targetBlock = 4 << 10           // 4 KiB data blocks
)

// errTableCorrupt marks structural damage detected while opening or reading
// an SSTable.
var errTableCorrupt = errors.New("lsm: corrupt sstable")

// tableMeta identifies one on-disk table within the LSM tree.
type tableMeta struct {
	num      uint64 // file number
	level    int
	size     int64
	smallest []byte
	largest  []byte
	entries  uint64
}

// tablePath names the SSTable file for number num inside dir.
func tablePath(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.sst", dir, num)
}

// writeTable persists sorted entries to an SSTable file and returns its
// metadata. Entries must be strictly ascending by key. The file is synced
// before writeTable returns — table installs (and the WAL deletions that
// follow them) may only happen once the table is crash-durable — and
// write, sync, and close errors all propagate.
func writeTable(fsys faultfs.FS, dir string, num uint64, level int, ents []entry) (tableMeta, error) {
	if len(ents) == 0 {
		return tableMeta{}, errors.New("lsm: refusing to write empty table")
	}
	var (
		buf       bytes.Buffer
		block     bytes.Buffer
		indexBuf  bytes.Buffer
		lastKey   []byte
		blockOff  uint64
		scratch   [binary.MaxVarintLen64]byte
		putUvar   = func(dst *bytes.Buffer, v uint64) { dst.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
		flushBlok = func() {
			if block.Len() == 0 {
				return
			}
			putUvar(&indexBuf, uint64(len(lastKey)))
			indexBuf.Write(lastKey)
			putUvar(&indexBuf, blockOff)
			putUvar(&indexBuf, uint64(block.Len()))
			blockOff += uint64(block.Len())
			buf.Write(block.Bytes())
			block.Reset()
		}
	)
	bloom := newBloomFilter(len(ents))
	for _, e := range ents {
		flags := byte(0)
		if e.tombstone {
			flags = 1
		}
		block.WriteByte(flags)
		putUvar(&block, uint64(len(e.key)))
		block.Write(e.key)
		putUvar(&block, uint64(len(e.value)))
		block.Write(e.value)
		lastKey = e.key
		bloom.add(e.key)
		if block.Len() >= targetBlock {
			flushBlok()
		}
	}
	flushBlok()

	indexOff := uint64(buf.Len())
	buf.Write(indexBuf.Bytes())
	bloomOff := uint64(buf.Len())
	buf.Write(bloom.bits)

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint64(footer[8:], uint64(indexBuf.Len()))
	binary.LittleEndian.PutUint64(footer[16:], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(bloom.bits)))
	binary.LittleEndian.PutUint32(footer[32:], uint32(bloom.k))
	binary.LittleEndian.PutUint64(footer[36:], uint64(len(ents)))
	binary.LittleEndian.PutUint32(footer[44:], crc32.ChecksumIEEE(footer[:44]))
	binary.LittleEndian.PutUint64(footer[48:], tableMagic)
	buf.Write(footer[:])

	path := tablePath(dir, num)
	if err := faultfs.WriteFileSync(fsys, path, buf.Bytes()); err != nil {
		return tableMeta{}, err
	}
	return tableMeta{
		num:      num,
		level:    level,
		size:     int64(buf.Len()),
		smallest: append([]byte(nil), ents[0].key...),
		largest:  append([]byte(nil), ents[len(ents)-1].key...),
		entries:  uint64(len(ents)),
	}, nil
}

// indexEntry locates one data block.
type indexEntry struct {
	lastKey []byte
	offset  uint64
	length  uint64
}

// tableReader serves point and range reads from one SSTable. The whole file
// is mapped into memory on open (tables are small at simulator scale); the
// bytesRead counter still accounts each block access so amplification
// numbers remain meaningful.
type tableReader struct {
	meta  tableMeta
	data  []byte
	index []indexEntry
	bloom *bloomFilter
}

// openTable reads and validates the SSTable file for meta.
func openTable(fsys faultfs.FS, dir string, meta tableMeta) (*tableReader, error) {
	data, err := fsys.ReadFile(tablePath(dir, meta.num))
	if err != nil {
		return nil, err
	}
	return newTableReader(data, meta)
}

// newTableReader validates an SSTable image and builds a reader over it.
// Every structural field is bounds-checked before use: arbitrary (fuzzed,
// torn, bit-flipped) input must produce errTableCorrupt, never a panic or
// an out-of-range access.
func newTableReader(data []byte, meta tableMeta) (*tableReader, error) {
	dlen := uint64(len(data))
	if dlen < footerSize {
		return nil, fmt.Errorf("%w: file shorter than footer", errTableCorrupt)
	}
	footer := data[len(data)-footerSize:]
	if binary.LittleEndian.Uint64(footer[48:]) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", errTableCorrupt)
	}
	if crc32.ChecksumIEEE(footer[:44]) != binary.LittleEndian.Uint32(footer[44:]) {
		return nil, fmt.Errorf("%w: footer checksum", errTableCorrupt)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	indexLen := binary.LittleEndian.Uint64(footer[8:])
	bloomOff := binary.LittleEndian.Uint64(footer[16:])
	bloomLen := binary.LittleEndian.Uint64(footer[24:])
	bloomK := int(binary.LittleEndian.Uint32(footer[32:]))
	// Overflow-safe section bounds: compare lengths against the remainder,
	// never the sum of two attacker-controlled u64s.
	if indexOff > dlen || indexLen > dlen-indexOff ||
		bloomOff > dlen || bloomLen > dlen-bloomOff {
		return nil, fmt.Errorf("%w: section out of range", errTableCorrupt)
	}
	if bloomK < 0 || bloomK > 64 {
		return nil, fmt.Errorf("%w: bloom probe count", errTableCorrupt)
	}

	// Data blocks live strictly before the index block.
	index, err := parseIndex(data[indexOff:indexOff+indexLen], indexOff)
	if err != nil {
		return nil, err
	}
	return &tableReader{
		meta:  meta,
		data:  data,
		index: index,
		bloom: bloomFromBytes(data[bloomOff:bloomOff+bloomLen], bloomK),
	}, nil
}

// parseIndex decodes the index block. dataLimit is the exclusive upper
// bound for block extents (the index's own offset): every referenced data
// block must lie entirely within [0, dataLimit).
func parseIndex(raw []byte, dataLimit uint64) ([]indexEntry, error) {
	var index []indexEntry
	for len(raw) > 0 {
		klen, n := binary.Uvarint(raw)
		if n <= 0 || uint64(len(raw)-n) < klen {
			return nil, fmt.Errorf("%w: index key", errTableCorrupt)
		}
		raw = raw[n:]
		key := raw[:klen]
		raw = raw[klen:]
		off, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index offset", errTableCorrupt)
		}
		raw = raw[n:]
		length, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index length", errTableCorrupt)
		}
		raw = raw[n:]
		if off > dataLimit || length > dataLimit-off {
			return nil, fmt.Errorf("%w: block extent out of range", errTableCorrupt)
		}
		// Structural monotonicity: blocks ascend by last key and do not
		// overlap. Catches shuffled or duplicated index entries cheaply;
		// block payloads themselves are only validated by their framing.
		if n := len(index); n > 0 {
			prev := index[n-1]
			if bytes.Compare(key, prev.lastKey) <= 0 || off < prev.offset+prev.length {
				return nil, fmt.Errorf("%w: index not monotonic", errTableCorrupt)
			}
		}
		index = append(index, indexEntry{lastKey: key, offset: off, length: length})
	}
	return index, nil
}

// get looks up key. bytesRead reports the block bytes touched, so the DB can
// account physical read I/O. A block whose framing is damaged surfaces
// errTableCorrupt — a corrupt block must not masquerade as key-not-found.
func (t *tableReader) get(key []byte) (value []byte, found, deleted bool, bytesRead int, err error) {
	if !t.bloom.mayContain(key) {
		return nil, false, false, 0, nil
	}
	// Binary search the first block whose last key >= key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].lastKey, key) >= 0
	})
	if i == len(t.index) {
		return nil, false, false, 0, nil
	}
	blk := t.index[i]
	block := t.data[blk.offset : blk.offset+blk.length]
	bytesRead = len(block)
	err = walkBlock(block, func(ent entry) bool {
		c := bytes.Compare(ent.key, key)
		if c == 0 {
			value, found, deleted = ent.value, true, ent.tombstone
			return false
		}
		return c < 0
	})
	if err != nil {
		err = fmt.Errorf("%w: table %06d block at %d", err, t.meta.num, blk.offset)
	}
	return value, found, deleted, bytesRead, err
}

// walkBlock yields the entries of one data block in order until yield
// returns false. Damaged framing returns errTableCorrupt; corrupt lengths
// must never index past the block.
func walkBlock(block []byte, yield func(entry) bool) error {
	for len(block) > 0 {
		flags := block[0]
		block = block[1:]
		klen, n := binary.Uvarint(block)
		if n <= 0 || uint64(len(block)-n) < klen {
			return fmt.Errorf("%w: entry key framing", errTableCorrupt)
		}
		block = block[n:]
		key := block[:klen]
		block = block[klen:]
		vlen, n := binary.Uvarint(block)
		if n <= 0 || uint64(len(block)-n) < vlen {
			return fmt.Errorf("%w: entry value framing", errTableCorrupt)
		}
		block = block[n:]
		value := block[:vlen]
		block = block[vlen:]
		if !yield(entry{key: key, value: value, tombstone: flags&1 != 0}) {
			return nil
		}
	}
	return nil
}

// tableIterator walks the full table in key order, including tombstones.
// Damaged block framing latches err and ends the walk: a scan over a
// corrupt table yields a clean prefix and a non-nil error, never a silently
// truncated result.
type tableIterator struct {
	t        *tableReader
	blockIdx int
	block    []byte
	cur      entry
	valid    bool
	pending  bool  // cur holds a seek result not yet surfaced by nextEntry
	read     int   // block bytes consumed so far
	err      error // first framing corruption encountered
}

// iterator returns a fresh iterator positioned before the first entry, or
// at the first entry with key >= start when start is non-nil.
func (t *tableReader) iterator(start []byte) *tableIterator {
	it := &tableIterator{t: t}
	if start != nil {
		it.blockIdx = sort.Search(len(t.index), func(i int) bool {
			return bytes.Compare(t.index[i].lastKey, start) >= 0
		})
		// Advance within the block to the first key >= start.
		for it.next() {
			if bytes.Compare(it.cur.key, start) >= 0 {
				it.pending = true
				break
			}
		}
	}
	return it
}

// pending marks that next() already holds the entry to surface first (set
// by seek positioning).
func (it *tableIterator) nextEntry() (entry, bool) {
	if it.pending {
		it.pending = false
		return it.cur, it.valid
	}
	ok := it.next()
	return it.cur, ok
}

// next advances the raw cursor one entry. Bad framing latches it.err and
// terminates the walk.
func (it *tableIterator) next() bool {
	if it.err != nil {
		it.valid = false
		return false
	}
	for {
		if len(it.block) == 0 {
			if it.blockIdx >= len(it.t.index) {
				it.valid = false
				return false
			}
			blk := it.t.index[it.blockIdx]
			it.block = it.t.data[blk.offset : blk.offset+blk.length]
			it.read += len(it.block)
			it.blockIdx++
			// Re-check: a corrupt index may frame a zero-length block.
			continue
		}
		flags := it.block[0]
		it.block = it.block[1:]
		klen, n := binary.Uvarint(it.block)
		if n <= 0 || uint64(len(it.block)-n) < klen {
			return it.fail("entry key framing")
		}
		it.block = it.block[n:]
		key := it.block[:klen]
		it.block = it.block[klen:]
		vlen, n := binary.Uvarint(it.block)
		if n <= 0 || uint64(len(it.block)-n) < vlen {
			return it.fail("entry value framing")
		}
		it.block = it.block[n:]
		value := it.block[:vlen]
		it.block = it.block[vlen:]
		it.cur = entry{key: key, value: value, tombstone: flags&1 != 0}
		it.valid = true
		return true
	}
}

// fail latches a corruption error and invalidates the cursor.
func (it *tableIterator) fail(what string) bool {
	it.err = fmt.Errorf("%w: %s (table %06d, block %d)",
		errTableCorrupt, what, it.t.meta.num, it.blockIdx-1)
	it.valid = false
	it.block = nil
	return false
}
