package lsm

import "ethkv/internal/keccak"

// bloomFilter is a fixed-width Bloom filter attached to each SSTable to
// short-circuit point lookups for absent keys. We use ~10 bits per key and
// 7 hash probes (k = m/n * ln2), the classic LevelDB parameters.
//
// The probe hash is versioned by the table format (selected via the footer
// magic): v2 tables use fastHash64, a non-cryptographic FNV-1a/splitmix64
// combination — a full Keccak-256 permutation per point-read probe was
// pure waste on the hot path — while v1 tables keep the original keccak
// hashing so filters written by older code still answer correctly.
type bloomFilter struct {
	bits []byte
	k    int
	fast bool // v2: fastHash64 probes; v1: keccak
}

// bloomBitsPerKey controls the filter size; 10 gives ~1% false positives.
const bloomBitsPerKey = 10

// newBloomFilter sizes a filter for n expected keys. fast selects the
// table format's probe hash and must match the format the filter is
// serialized into.
func newBloomFilter(n int, fast bool) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: 7, fast: fast}
}

// bloomFromBytes wraps a serialized filter (as written by the sstable
// writer); fast must reflect the table format it was read from.
func bloomFromBytes(bits []byte, k int, fast bool) *bloomFilter {
	return &bloomFilter{bits: bits, k: k, fast: fast}
}

// fastHash64 is an FNV-1a 64-bit pass with a splitmix64 finalizer: the
// multiply-xor chain gives full avalanche, so the two 32-bit halves are
// independent enough for double hashing. No allocation, a few ns per key.
func fastHash64(key []byte) uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211 // FNV prime
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashPair derives two independent 32-bit hashes for double hashing,
// using the filter's versioned probe hash.
func (f *bloomFilter) hashPair(key []byte) (uint32, uint32) {
	if f.fast {
		h := fastHash64(key)
		return uint32(h), uint32(h >> 32)
	}
	d := keccak.Hash256(key)
	h1 := uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	h2 := uint32(d[4]) | uint32(d[5])<<8 | uint32(d[6])<<16 | uint32(d[7])<<24
	return h1, h2
}

// add inserts key into the filter.
func (f *bloomFilter) add(key []byte) {
	h1, h2 := f.hashPair(key)
	nbits := uint32(len(f.bits) * 8)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
	}
}

// mayContain reports whether key might be in the set (false positives
// possible, false negatives impossible).
func (f *bloomFilter) mayContain(key []byte) bool {
	if len(f.bits) == 0 {
		return true
	}
	h1, h2 := f.hashPair(key)
	nbits := uint32(len(f.bits) * 8)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % nbits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}
