package lsm

import "ethkv/internal/keccak"

// bloomFilter is a fixed-width Bloom filter attached to each SSTable to
// short-circuit point lookups for absent keys. We use ~10 bits per key and
// 7 hash probes (k = m/n * ln2), the classic LevelDB parameters.
type bloomFilter struct {
	bits []byte
	k    int
}

// bloomBitsPerKey controls the filter size; 10 gives ~1% false positives.
const bloomBitsPerKey = 10

// newBloomFilter sizes a filter for n expected keys.
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: 7}
}

// bloomFromBytes wraps a serialized filter (as written by sstable writer).
func bloomFromBytes(bits []byte, k int) *bloomFilter {
	return &bloomFilter{bits: bits, k: k}
}

// hashPair derives two independent 32-bit hashes for double hashing.
// Keccak is already in the dependency tree and is plenty fast at these key
// sizes; first 8 digest bytes provide both hashes.
func hashPair(key []byte) (uint32, uint32) {
	d := keccak.Hash256(key)
	h1 := uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	h2 := uint32(d[4]) | uint32(d[5])<<8 | uint32(d[6])<<16 | uint32(d[7])<<24
	return h1, h2
}

// add inserts key into the filter.
func (f *bloomFilter) add(key []byte) {
	h1, h2 := hashPair(key)
	nbits := uint32(len(f.bits) * 8)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
	}
}

// mayContain reports whether key might be in the set (false positives
// possible, false negatives impossible).
func (f *bloomFilter) mayContain(key []byte) bool {
	if len(f.bits) == 0 {
		return true
	}
	h1, h2 := hashPair(key)
	nbits := uint32(len(f.bits) * 8)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint32(i)*h2) % nbits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}
