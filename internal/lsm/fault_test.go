package lsm

// Fault-injection regression tests for the error paths hardened in this
// package: WAL close durability, permanent-failure degradation, and
// transient-fault retry. These run the store against faultfs.MemFS so crash
// semantics (un-synced bytes vanish) are exact and deterministic.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
)

// faultOpts returns small-store options wired to fsys with a fast retry
// policy so failure tests do not sleep for real.
func faultOpts(fsys faultfs.FS) Options {
	o := smallOpts()
	o.FS = fsys
	o.RetryAttempts = 8
	o.RetryBackoff = time.Microsecond
	return o
}

// TestWALCloseSyncsBufferedRecords is the regression test for the rotation
// durability barrier: close() must sync, not merely flush. Before the fix,
// records buffered in the WAL reached the OS (volatile) on close but were
// never fsynced, so a crash after rotation — but before the rotated
// memtable flushed to an SSTable — lost them even though a LATER WAL
// generation could hold synced records: a hole in the op sequence, not a
// prefix.
func TestWALCloseSyncsBufferedRecords(t *testing.T) {
	m := faultfs.NewMemFS()
	w, err := openWAL(m, "wal.log", noRetry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.appendRecord(walOpPut, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// No explicit sync: close() itself must be the durability barrier.
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	m.Crash(nil) // drop everything that was not fsynced
	var got int
	err = replayWAL(m, "wal.log", func(op byte, key, value []byte) error {
		got++
		if op != walOpPut || string(key) != "k" || string(value) != "v" {
			t.Fatalf("replayed op=%d key=%q value=%q", op, key, value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("replayed %d records after crash, want 1 (close did not sync)", got)
	}
}

// TestRotationBarrierSurvivesCrash drives the same property through the DB:
// every record in a closed (rotated-away) WAL generation survives a crash,
// even though the writer never called Flush and the background flush may
// not have installed an SSTable yet.
func TestRotationBarrierSurvivesCrash(t *testing.T) {
	m := faultfs.NewMemFS()
	plan := faultfs.NewPlan(11)
	opts := faultOpts(faultfs.Inject(m, plan))
	opts.MemtableBytes = 2 << 10
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Write until the first rotation: all keys accepted while generation 1
	// was active are sealed by the rotation's close-sync.
	val := bytes.Repeat([]byte{7}, 64)
	var sealed []string
	for i := 0; ; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if err := db.Put([]byte(key), val); err != nil {
			t.Fatal(err)
		}
		if db.activeWALPath() != db.walFile(1) {
			break // key i triggered the rotation; it is in generation 1 too
		}
		sealed = append(sealed, key)
	}
	// Crash: the dead process's I/O all fails, then the un-synced tail of
	// every file is discarded.
	plan.TripCrash()
	db.Close() // error expected and irrelevant: the process is "dead"
	m.Crash(plan.TornTail())

	re, err := Open("db", faultOpts(m))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, key := range sealed {
		if _, err := re.Get([]byte(key)); err != nil {
			t.Fatalf("key %q lost across rotation crash: %v", key, err)
		}
	}
}

// TestPermanentFailureDegrades proves the dying-disk path: a permanent
// write fault surfaces to the committing batch, latches the store into
// read-only degraded mode (sticky, reported in Stats), and leaves reads
// serving the surviving state.
func TestPermanentFailureDegrades(t *testing.T) {
	m := faultfs.NewMemFS()
	plan := faultfs.NewPlan(13)
	db, err := Open("db", faultOpts(faultfs.Inject(m, plan)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// From the next write-path op on, the disk rejects all writes.
	plan.SetFailWritesAfter(plan.Writes() + 1)

	b := db.NewBatch()
	b.Put([]byte("b"), []byte("2"))
	err = b.Write() // group commit syncs, so the fault fires here
	if err == nil {
		t.Fatal("batch commit succeeded on a dead disk")
	}
	if faultfs.IsTransient(err) || errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("first failure should surface the root cause, got %v", err)
	}

	// Sticky: every further write path reports degraded mode.
	if err := db.Put([]byte("c"), []byte("3")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("Put after degrade = %v, want ErrDegraded", err)
	}
	if err := db.Delete([]byte("a")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("Delete after degrade = %v, want ErrDegraded", err)
	}
	b2 := db.NewBatch()
	b2.Put([]byte("d"), []byte("4"))
	if err := b2.Write(); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("batch after degrade = %v, want ErrDegraded", err)
	}
	if err := db.Flush(); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("Flush after degrade = %v, want ErrDegraded", err)
	}

	// Reads keep being served from the surviving state.
	if v, err := db.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("read in degraded mode = %q, %v", v, err)
	}
	if s := db.Stats(); s.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", s.Degraded)
	}
}

// TestFlushFailureDegrades drives the permanent fault through the
// background path: with the WAL disabled, the first FS writes after Open
// are the memtable flush, so the failure lands in bgWork and must still
// degrade the store and wake stalled callers instead of wedging them.
func TestFlushFailureDegrades(t *testing.T) {
	m := faultfs.NewMemFS()
	plan := faultfs.NewPlan(17)
	opts := faultOpts(faultfs.Inject(m, plan))
	opts.DisableWAL = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	plan.SetFailWritesAfter(plan.Writes() + 1)
	if err := db.Flush(); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("Flush with failing table writes = %v, want ErrDegraded", err)
	}
	// The un-flushed memtable still serves reads.
	if v, err := db.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("read after background degrade = %q, %v", v, err)
	}
	if s := db.Stats(); s.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", s.Degraded)
	}
}

// TestTransientFaultsAbsorbedByRetry proves the other half of the fault
// taxonomy: retryable faults are absorbed by bounded backoff, the workload
// completes, every write survives, and the retries are visible in Stats.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	m := faultfs.NewMemFS()
	plan := faultfs.NewPlan(19)
	plan.TransientProb = 0.25
	db, err := Open("db", faultOpts(faultfs.Inject(m, plan)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b := db.NewBatch()
		b.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 32))
		if err := b.Write(); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The flaky disk heals; everything acknowledged must still be there.
	re, err := Open("db", faultOpts(m))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 50; i++ {
		v, err := re.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("key %d after flaky run: %q, %v", i, v, err)
		}
	}
	if s := db.Stats(); s.IORetries == 0 {
		t.Fatal("Stats.IORetries = 0 with TransientProb = 0.25")
	} else if s.Degraded != 0 {
		t.Fatal("store degraded on purely transient faults")
	}
}
