package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"ethkv/internal/faultfs"
)

// Write-ahead log format: a sequence of records, each
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//
// where payload is one of:
//
//	opByte (0=put, 1=delete) | keyLen uvarint | key |
//	    [valueLen uvarint | value]                      (value only for puts)
//	opByte 2 (group) | count uvarint | count sub-ops, each encoded as above
//
// A group record frames one write batch: because the whole batch shares a
// single CRC, a crash replays it all-or-nothing — a torn group drops every
// op in it, never a prefix. Replay stops cleanly at the first torn or
// corrupt record, which models crash recovery: everything before the tear
// is durable.

const (
	walOpPut    = 0
	walOpDelete = 1
	walOpGroup  = 2

	// walFlushThreshold bounds the record buffer before it is written
	// through to the file.
	walFlushThreshold = 1 << 16
)

// errWALCorrupt marks a record that fails its checksum; replay treats it as
// the end of the durable prefix.
var errWALCorrupt = errors.New("lsm: corrupt wal record")

// retryFn wraps one I/O operation with the store's bounded
// retry-with-backoff policy for transient faults.
type retryFn func(op func() error) error

// wal is an append-only write-ahead log. Records accumulate in an internal
// buffer that is written through on sync, close, or when it exceeds
// walFlushThreshold. The buffer is record-aligned and only cleared after a
// successful write, so a transiently failed flush (which has no effect on
// the file) can be retried wholesale without tearing or duplicating
// records.
type wal struct {
	f     faultfs.File
	buf   []byte // records not yet written to f
	len   int64
	retry retryFn
}

// openWAL opens (creating if needed) the log at path for appending.
func openWAL(fsys faultfs.FS, path string, retry retryFn) (*wal, error) {
	var f faultfs.File
	if err := retry(func() error {
		var err error
		f, err = fsys.OpenAppend(path)
		return err
	}); err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, retry: retry, len: size}, nil
}

// appendOp encodes one put/delete into payload.
func appendOp(payload []byte, op byte, key, value []byte) []byte {
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	if op == walOpPut {
		payload = binary.AppendUvarint(payload, uint64(len(value)))
		payload = append(payload, value...)
	}
	return payload
}

// appendRecord writes one put/delete record. Returns bytes appended.
func (l *wal) appendRecord(op byte, key, value []byte) (int, error) {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	payload = appendOp(payload, op, key, value)
	return l.appendPayload(payload)
}

// appendGroup writes one batch as a single framed group record and syncs
// the log — group commit: one WAL emission and one durability barrier per
// batch instead of one per op. Returns bytes appended.
func (l *wal) appendGroup(ops []batchOp) (int, error) {
	size := 1 + binary.MaxVarintLen64
	for _, op := range ops {
		size += 1 + 2*binary.MaxVarintLen64 + len(op.key) + len(op.value)
	}
	payload := make([]byte, 0, size)
	payload = append(payload, walOpGroup)
	payload = binary.AppendUvarint(payload, uint64(len(ops)))
	for _, op := range ops {
		if op.delete {
			payload = appendOp(payload, walOpDelete, op.key, nil)
		} else {
			payload = appendOp(payload, walOpPut, op.key, op.value)
		}
	}
	n, err := l.appendPayload(payload)
	if err != nil {
		return n, err
	}
	return n, l.sync()
}

// appendPayload frames payload with its checksum and length.
func (l *wal) appendPayload(payload []byte) (int, error) {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(head[4:], uint32(len(payload)))
	l.buf = append(l.buf, head[:]...)
	l.buf = append(l.buf, payload...)
	n := len(head) + len(payload)
	l.len += int64(n)
	if len(l.buf) >= walFlushThreshold {
		if err := l.flushBuf(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// flushBuf writes the buffered records through to the file. Only a
// successful write clears the buffer, so retries re-attempt the whole
// record-aligned run.
func (l *wal) flushBuf() error {
	if len(l.buf) == 0 {
		return nil
	}
	if err := l.retry(func() error {
		_, err := l.f.Write(l.buf)
		return err
	}); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// sync is the durability barrier: buffered records are written through and
// the file is synced. Records appended before a successful sync survive a
// crash.
func (l *wal) sync() error {
	if err := l.flushBuf(); err != nil {
		return err
	}
	return l.retry(l.f.Sync)
}

// close makes the log durable and closes it. The sync-before-close is
// load-bearing: rotation closes a generation and then deletes it only
// after its memtable flushes, so every record in a closed generation must
// survive a crash that happens in between. Close errors propagate — a log
// we cannot finish writing is a log we cannot rely on.
func (l *wal) close() error {
	err := l.sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// size returns the logical length of the log in bytes.
func (l *wal) size() int64 { return l.len }

// replayWAL streams the durable records of the log at path into apply.
func replayWAL(fsys faultfs.FS, path string, apply func(op byte, key, value []byte) error) error {
	f, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return replayWALStream(f, apply)
}

// replayWALStream decodes records from r into apply. Group records replay
// as their constituent ops, in batch order. A torn or corrupt tail
// terminates replay without error: everything before the tear is the
// durable prefix, everything after it never happened.
func replayWALStream(rd io.Reader, apply func(op byte, key, value []byte) error) error {
	r := bufio.NewReaderSize(rd, 1<<16)
	for {
		payload, err := readWALPayload(r)
		if errors.Is(err, io.EOF) || errors.Is(err, errWALCorrupt) ||
			errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := applyWALPayload(payload, apply); err != nil {
			if errors.Is(err, errWALCorrupt) {
				return nil
			}
			return err
		}
	}
}

// readWALPayload reads one checksummed record body from r.
func readWALPayload(r *bufio.Reader) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	wantCRC := binary.LittleEndian.Uint32(head[0:])
	plen := binary.LittleEndian.Uint32(head[4:])
	if plen == 0 || plen > 1<<30 {
		return nil, errWALCorrupt
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, errWALCorrupt
	}
	return payload, nil
}

// applyWALPayload dispatches a record body: single ops apply directly,
// groups apply every framed sub-op in order.
func applyWALPayload(payload []byte, apply func(op byte, key, value []byte) error) error {
	if payload[0] != walOpGroup {
		op, key, value, _, err := decodeWALOp(payload)
		if err != nil {
			return err
		}
		return apply(op, key, value)
	}
	rest := payload[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return errWALCorrupt
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		op, key, value, used, err := decodeWALOp(rest)
		if err != nil {
			return err
		}
		if err := apply(op, key, value); err != nil {
			return err
		}
		rest = rest[used:]
	}
	if len(rest) != 0 {
		return errWALCorrupt
	}
	return nil
}

// decodeWALOp parses one op encoding, returning how many bytes it consumed.
func decodeWALOp(raw []byte) (op byte, key, value []byte, used int, err error) {
	if len(raw) == 0 {
		return 0, nil, nil, 0, errWALCorrupt
	}
	op = raw[0]
	rest := raw[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return 0, nil, nil, 0, errWALCorrupt
	}
	rest = rest[n:]
	key = rest[:klen]
	rest = rest[klen:]
	used = 1 + n + int(klen)
	if op == walOpPut {
		vlen, vn := binary.Uvarint(rest)
		if vn <= 0 || uint64(len(rest)-vn) < vlen {
			return 0, nil, nil, 0, errWALCorrupt
		}
		value = rest[vn : vn+int(vlen)]
		used += vn + int(vlen)
	} else if op != walOpDelete {
		return 0, nil, nil, 0, fmt.Errorf("%w: unknown op %d", errWALCorrupt, op)
	}
	return op, key, value, used, nil
}
