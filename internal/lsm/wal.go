package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log format: a sequence of records, each
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//
// where payload is: opByte (0=put, 1=delete) | keyLen uvarint | key |
// [valueLen uvarint | value] (value only for puts).
//
// Replay stops cleanly at the first torn or corrupt record, which models
// crash recovery: everything before the tear is durable.

const (
	walOpPut    = 0
	walOpDelete = 1
)

// errWALCorrupt marks a record that fails its checksum; replay treats it as
// the end of the durable prefix.
var errWALCorrupt = errors.New("lsm: corrupt wal record")

// wal is an append-only write-ahead log.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

// openWAL opens (creating if needed) the log at path for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<16), len: st.Size()}, nil
}

// appendRecord writes one put/delete record. Returns bytes appended.
func (l *wal) appendRecord(op byte, key, value []byte) (int, error) {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	if op == walOpPut {
		payload = binary.AppendUvarint(payload, uint64(len(value)))
		payload = append(payload, value...)
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(head[4:], uint32(len(payload)))
	if _, err := l.w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, err
	}
	n := len(head) + len(payload)
	l.len += int64(n)
	return n, nil
}

// sync flushes buffered records to the OS. (We do not fsync by default —
// the simulator favours throughput; Sync is exposed for tests.)
func (l *wal) sync() error { return l.w.Flush() }

// close flushes and closes the log file.
func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// size returns the logical length of the log in bytes.
func (l *wal) size() int64 { return l.len }

// replayWAL streams the durable records of the log at path into apply.
// A torn or corrupt tail terminates replay without error.
func replayWAL(path string, apply func(op byte, key, value []byte) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	for {
		op, key, value, err := readWALRecord(r)
		if errors.Is(err, io.EOF) || errors.Is(err, errWALCorrupt) ||
			errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := apply(op, key, value); err != nil {
			return err
		}
	}
}

// readWALRecord parses one record from r.
func readWALRecord(r *bufio.Reader) (op byte, key, value []byte, err error) {
	var head [8]byte
	if _, err = io.ReadFull(r, head[:]); err != nil {
		return 0, nil, nil, err
	}
	wantCRC := binary.LittleEndian.Uint32(head[0:])
	plen := binary.LittleEndian.Uint32(head[4:])
	if plen == 0 || plen > 1<<30 {
		return 0, nil, nil, errWALCorrupt
	}
	payload := make([]byte, plen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, nil, errWALCorrupt
	}
	op = payload[0]
	rest := payload[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return 0, nil, nil, errWALCorrupt
	}
	rest = rest[n:]
	key = rest[:klen]
	rest = rest[klen:]
	if op == walOpPut {
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < vlen {
			return 0, nil, nil, errWALCorrupt
		}
		value = rest[n : n+int(vlen)]
	} else if op != walOpDelete {
		return 0, nil, nil, fmt.Errorf("%w: unknown op %d", errWALCorrupt, op)
	}
	return op, key, value, nil
}
