// Package lsm implements a log-structured merge-tree key-value store: the
// repository's stand-in for Pebble, the store Geth uses by default.
//
// Architecture: writes land in a WAL and a skiplist memtable; full memtables
// rotate into an immutable queue that a background goroutine flushes to
// level-0 SSTables and compacts into non-overlapping runs on L1+ with
// exponentially growing level capacities — Put/Delete never block on table
// I/O, they only stall when the flush queue is full (write-stall
// backpressure, counted in Stats). Deletes write tombstones that survive
// until they compact into the bottom level — exactly the cost model the
// paper's Finding 5 critiques. The store tracks logical vs physical I/O so
// experiments can report write/read amplification.
package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
)

// Options tunes a DB. The zero value is usable; unset fields assume
// defaults scaled for simulator workloads.
type Options struct {
	// MemtableBytes is the rotation threshold for the write buffer.
	MemtableBytes int
	// MaxImmutableMemtables bounds the flush queue; writers stall when a
	// rotation would exceed it.
	MaxImmutableMemtables int
	// L0CompactionTrigger is the number of L0 tables that triggers a
	// compaction into L1.
	L0CompactionTrigger int
	// LevelBaseBytes is the target size of L1; each deeper level is
	// LevelMultiplier times larger.
	LevelBaseBytes int64
	// LevelMultiplier is the size ratio between adjacent levels.
	LevelMultiplier int64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// DisableWAL skips write-ahead logging (pure benchmarks).
	DisableWAL bool
	// Seed makes skiplist heights deterministic across runs.
	Seed int64
	// FS is the filesystem seam all durable I/O goes through. Nil means
	// the real OS filesystem; tests substitute faultfs.MemFS (with fault
	// injection) to exercise crash recovery deterministically.
	FS faultfs.FS
	// RetryAttempts bounds the retry-with-backoff loop for transient I/O
	// faults (faultfs.IsTransient); the attempt that exhausts the budget
	// surfaces the error and degrades the store.
	RetryAttempts int
	// RetryBackoff is the first retry's sleep; each subsequent retry
	// doubles it.
	RetryBackoff time.Duration
	// CompactionTableBytes caps the size of tables a compaction writes on
	// L1+. Smaller caps mean more, finer-grained tables per level — tests
	// shrink it to exercise multi-table levels cheaply.
	CompactionTableBytes int
	// BlockCacheBytes is the byte budget of the DB-wide sharded block
	// cache serving demand-paged SSTable reads. 0 selects the 32 MiB
	// default; negative disables caching entirely (every block read goes
	// to the filesystem). Index and bloom sections are pinned per open
	// table outside this budget.
	BlockCacheBytes int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxImmutableMemtables == 0 {
		o.MaxImmutableMemtables = 2
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.LevelBaseBytes == 0 {
		o.LevelBaseBytes = 16 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	if o.RetryAttempts == 0 {
		o.RetryAttempts = 4
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.CompactionTableBytes == 0 {
		// Target ~2 MiB output tables so L1+ stays granular.
		o.CompactionTableBytes = 2 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 32 << 20
	}
	return o
}

// flushTask is one frozen memtable awaiting background flush, paired with
// the WAL generation that made it durable (0 when the WAL is disabled). The
// WAL file is deleted only after the flush installs its SSTable.
type flushTask struct {
	mem    *memtable
	walSeq uint64
}

// DB is the LSM store. It implements kv.Store and kv.StatsProvider.
type DB struct {
	mu     sync.RWMutex
	cond   *sync.Cond // signalled by the background worker; L is &mu
	opts   Options
	dir    string
	fs     faultfs.FS // all durable I/O goes through this seam
	wal    *wal       // active log, paired with mem
	walSeq uint64     // generation of the active log
	mem    *memtable
	memSeq int64 // memtable generation, perturbs the skiplist seed
	// imm holds frozen memtables awaiting flush, oldest first. The read
	// path consults them newest-first between mem and L0.
	imm    []flushTask
	levels [][]tableMeta
	// open caches tableReaders. Guarded by openMu, not mu: Get (holding
	// only the read lock) opens tables lazily, and concurrent readers must
	// not race on the map. The map holds one reference per reader; every
	// consumer takes its own via db.reader and unrefs when done.
	openMu sync.Mutex
	open   map[uint64]*tableReader
	// cache is the DB-wide sharded block cache all demand-paged table
	// reads go through; nil when Options.BlockCacheBytes is negative.
	cache  *blockCache
	next   atomic.Uint64 // next file number
	closed bool

	// Background worker plumbing: bgC (capacity 1) kicks the worker, which
	// drains the flush queue and runs due compactions, broadcasting on cond
	// after each install. bgErr latches the first background failure;
	// writers surface it.
	bgC      chan struct{}
	bgWG     sync.WaitGroup
	bgActive bool
	bgErr    error
	// degradedErr latches the first permanent storage failure; once set
	// the store is read-only: writes return kv.ErrDegraded, reads keep
	// serving whatever state survives. Guarded by mu; mirrored into
	// stats.degraded for lock-free Stats().
	degradedErr error
	// forceCompact makes pickCompaction drain every level to the bottom
	// (CompactAll).
	forceCompact bool
	// compactionHook, when set (tests), runs during the merge phase of each
	// background compaction — outside db.mu, proving readers stay live.
	compactionHook func()

	// I/O counters. Atomics: Get mutates them under the read lock, which
	// many readers hold concurrently.
	stats dbStats
}

// dbStats mirrors kv.Stats with atomic fields.
type dbStats struct {
	gets, puts, deletes, scans            atomic.Uint64
	logicalBytesRead, logicalBytesWritten atomic.Uint64
	physicalBytesRead, physicalBytesWrite atomic.Uint64
	compactionCount, tombstonesLive       atomic.Uint64
	flushCount                            atomic.Uint64
	writeStalls, writeStallNanos          atomic.Uint64
	ioRetries, degraded                   atomic.Uint64
	bloomNegatives, bloomFalsePositives   atomic.Uint64
}

var _ kv.Store = (*DB)(nil)
var _ kv.StatsProvider = (*DB)(nil)

// Open creates or reopens an LSM database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{
		opts:   opts,
		dir:    dir,
		fs:     opts.FS,
		mem:    newMemtable(opts.Seed),
		levels: make([][]tableMeta, opts.MaxLevels),
		open:   make(map[uint64]*tableReader),
		cache:  newBlockCache(opts.BlockCacheBytes),
		bgC:    make(chan struct{}, 1),
	}
	if err := db.retryIO(func() error { return db.fs.MkdirAll(dir) }); err != nil {
		return nil, err
	}
	db.cond = sync.NewCond(&db.mu)
	db.next.Store(1)
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	if !opts.DisableWAL {
		if err := db.recoverWALs(); err != nil {
			return nil, err
		}
		db.walSeq = 1
		w, err := openWAL(db.fs, db.walFile(db.walSeq), db.retryIO)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	db.bgWG.Add(1)
	go db.background()
	db.kickLocked() // pick up any compaction debt left by recovery
	return db, nil
}

// retryIO runs one I/O operation under the store's bounded
// retry-with-backoff policy: transient faults (faultfs.IsTransient) are
// retried with doubling sleeps up to Options.RetryAttempts; any other
// error — and the transient fault that exhausts the budget — returns to
// the caller, which treats it as permanent.
func (db *DB) retryIO(op func() error) error {
	backoff := db.opts.RetryBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !faultfs.IsTransient(err) || attempt >= db.opts.RetryAttempts {
			return err
		}
		db.stats.ioRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// setDegradedLocked latches the store into read-only degraded mode after a
// permanent storage failure. Called with db.mu held. Sticky: the first
// cause is kept, later failures are consequences.
func (db *DB) setDegradedLocked(err error) {
	if db.degradedErr != nil || err == nil {
		return
	}
	db.degradedErr = err
	db.stats.degraded.Store(1)
	db.cond.Broadcast() // release stalled writers
}

// writeGateLocked is the common admission check for Put/Delete/batch
// commits. Called with db.mu held.
func (db *DB) writeGateLocked() error {
	if db.closed {
		return kv.ErrClosed
	}
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	return nil
}

// writeTableRetrying persists one SSTable with the retry policy applied to
// the whole create-write-sync-close sequence (a failed attempt leaves no
// partial durable state to clean up: Create truncates).
func (db *DB) writeTableRetrying(num uint64, level int, ents []entry) (tableMeta, error) {
	var meta tableMeta
	err := db.retryIO(func() error {
		var err error
		meta, err = writeTable(db.fs, db.dir, num, level, ents)
		return err
	})
	return meta, err
}

// recoverWALs replays every log left by the previous run into the memtable
// (oldest generation first), synchronously flushes the recovered state to
// L0, and deletes the stale logs.
func (db *DB) recoverWALs() error {
	paths := []string{db.legacyWALPath()}
	seqs, err := db.walSeqsOnDisk()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		paths = append(paths, db.walFile(seq))
	}
	replay := func(op byte, key, value []byte) error {
		if op == walOpDelete {
			db.mem.del(key)
		} else {
			db.mem.put(key, value)
		}
		return nil
	}
	for _, p := range paths {
		if err := replayWAL(db.fs, p, replay); err != nil {
			return err
		}
	}
	if db.mem.count() > 0 {
		num := db.next.Add(1) - 1
		meta, err := db.writeTableRetrying(num, 0, db.mem.entries())
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		db.stats.flushCount.Add(1)
		db.levels[0] = append(db.levels[0], meta)
		db.memSeq++
		db.mem = newMemtable(db.opts.Seed + db.memSeq)
		if err := db.saveManifest(); err != nil {
			return err
		}
	}
	for _, p := range paths {
		if err := db.fs.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// walSeqsOnDisk lists the numbered WAL generations present in dir, sorted.
func (db *DB) walSeqsOnDisk() ([]uint64, error) {
	matches, err := db.fs.Glob(filepath.Join(db.dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, m := range matches {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "wal-%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (db *DB) walFile(seq uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("wal-%06d.log", seq))
}
func (db *DB) legacyWALPath() string { return filepath.Join(db.dir, "wal.log") }
func (db *DB) manifestPath() string  { return filepath.Join(db.dir, "MANIFEST") }

// activeWALPath returns the path of the log currently receiving records;
// crash-recovery tests truncate it to simulate torn writes.
func (db *DB) activeWALPath() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walFile(db.walSeq)
}

// kickLocked wakes the background worker (non-blocking; the channel holds
// one pending token). Callers hold db.mu, except Open before the DB is
// shared.
func (db *DB) kickLocked() {
	select {
	case db.bgC <- struct{}{}:
	default:
	}
}

// Put implements kv.Writer.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpPut, key, value)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.put(key, value)
	db.stats.puts.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key) + len(value)))
	return db.maybeRotateLocked()
}

// Delete implements kv.Writer: it writes a tombstone.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpDelete, key, nil)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.del(key)
	db.stats.deletes.Add(1)
	db.stats.tombstonesLive.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key)))
	return db.maybeRotateLocked()
}

// Get implements kv.Reader.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, kv.ErrClosed
	}
	db.stats.gets.Add(1)
	// Memtable, then frozen memtables newest-first.
	if v, found, deleted := db.mem.get(key); found {
		return db.finishGet(v, deleted)
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if v, found, deleted := db.imm[i].mem.get(key); found {
			return db.finishGet(v, deleted)
		}
	}
	// L0 newest-first (files may overlap).
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		v, found, deleted, err := db.tableGet(l0[i], key)
		if err != nil {
			return nil, err
		}
		if found {
			return db.finishGet(v, deleted)
		}
	}
	// Deeper levels: at most one candidate file per level.
	for level := 1; level < len(db.levels); level++ {
		metas := db.levels[level]
		i := sort.Search(len(metas), func(i int) bool {
			return bytes.Compare(metas[i].largest, key) >= 0
		})
		if i == len(metas) || bytes.Compare(metas[i].smallest, key) > 0 {
			continue
		}
		v, found, deleted, err := db.tableGet(metas[i], key)
		if err != nil {
			return nil, err
		}
		if found {
			return db.finishGet(v, deleted)
		}
	}
	return nil, kv.ErrNotFound
}

// tableGet performs one table probe with reference bracketing and physical
// I/O accounting. The value is safe to use after unref: block payloads are
// heap slices, not views of a mapped file.
func (db *DB) tableGet(meta tableMeta, key []byte) (v []byte, found, deleted bool, err error) {
	t, err := db.reader(meta)
	if err != nil {
		return nil, false, false, err
	}
	v, found, deleted, br, err := t.get(key)
	t.unref()
	db.stats.physicalBytesRead.Add(uint64(br))
	return v, found, deleted, err
}

// finishGet translates an internal lookup result and accounts logical I/O.
func (db *DB) finishGet(v []byte, deleted bool) ([]byte, error) {
	if deleted {
		return nil, kv.ErrNotFound
	}
	db.stats.logicalBytesRead.Add(uint64(len(v)))
	return append([]byte(nil), v...), nil
}

// Has implements kv.Reader.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if errors.Is(err, kv.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// reader returns (opening if needed) the cached tableReader for meta, with
// a reference taken for the caller — who must unref when done with it. The
// open map holds its own reference until removeObsolete or Close drops it.
func (db *DB) reader(meta tableMeta) (*tableReader, error) {
	db.openMu.Lock()
	defer db.openMu.Unlock()
	if t, ok := db.open[meta.num]; ok {
		t.ref()
		return t, nil
	}
	// openTable applies retryIO to each individual read itself, so
	// transient faults are absorbed without reopening from scratch.
	t, err := openTable(db.fs, db.dir, meta, db.cache, &db.stats, db.retryIO)
	if err != nil {
		return nil, err
	}
	db.open[meta.num] = t
	t.ref()
	return t, nil
}

// maybeRotateLocked rotates a full memtable into the flush queue, stalling
// first if the queue is at capacity. Called with db.mu held.
func (db *DB) maybeRotateLocked() error {
	if db.mem.size() < db.opts.MemtableBytes {
		return nil
	}
	if len(db.imm) >= db.opts.MaxImmutableMemtables {
		db.stats.writeStalls.Add(1)
		start := time.Now()
		for len(db.imm) >= db.opts.MaxImmutableMemtables &&
			db.bgErr == nil && db.degradedErr == nil && !db.closed {
			db.kickLocked()
			db.cond.Wait()
		}
		db.stats.writeStallNanos.Add(uint64(time.Since(start)))
		if db.degradedErr != nil {
			return kv.ErrDegraded
		}
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return kv.ErrClosed
		}
	}
	return db.rotateLocked()
}

// rotateLocked freezes the current memtable into the flush queue, starts a
// fresh WAL generation for its successor, and kicks the background worker.
func (db *DB) rotateLocked() error {
	if db.mem.count() == 0 {
		return nil
	}
	task := flushTask{mem: db.mem}
	if db.wal != nil {
		// close syncs first: generation N must be fully durable before
		// generation N+1 opens, or a crash in the gap could surface
		// later-synced writes while losing earlier ones (a hole in the
		// op sequence, not a prefix). A failure here is a permanent loss
		// of the write path — degrade rather than limp on with a log in
		// an unknown state.
		if err := db.wal.close(); err != nil {
			db.wal = nil
			db.setDegradedLocked(err)
			return err
		}
		task.walSeq = db.walSeq
		db.walSeq++
		w, err := openWAL(db.fs, db.walFile(db.walSeq), db.retryIO)
		if err != nil {
			db.wal = nil
			db.setDegradedLocked(err)
			return err
		}
		db.wal = w
	}
	db.imm = append(db.imm, task)
	db.memSeq++
	db.mem = newMemtable(db.opts.Seed + db.memSeq)
	db.kickLocked()
	return nil
}

// background is the worker goroutine: each token on bgC triggers one pass
// of bgWork. It exits when bgC closes (Close).
func (db *DB) background() {
	defer db.bgWG.Done()
	for range db.bgC {
		db.bgWork()
	}
}

// bgWork drains the flush queue, then runs compactions until every level
// invariant holds. Table I/O (flush writes, compaction merges) happens with
// db.mu released so readers and writers proceed concurrently; only the
// version installs take the exclusive lock.
func (db *DB) bgWork() {
	db.mu.Lock()
	db.bgActive = true
	for db.bgErr == nil && db.degradedErr == nil && !db.closed {
		if len(db.imm) > 0 {
			task := db.imm[0]
			num := db.next.Add(1) - 1
			db.mu.Unlock()
			meta, err := db.writeTableRetrying(num, 0, task.mem.entries())
			db.mu.Lock()
			if err != nil {
				db.bgErr = err
				db.setDegradedLocked(err)
				break
			}
			db.stats.physicalBytesWrite.Add(uint64(meta.size))
			db.stats.flushCount.Add(1)
			db.levels[0] = append(db.levels[0], meta)
			db.imm = db.imm[1:]
			if err := db.saveManifest(); err != nil {
				db.bgErr = err
				db.setDegradedLocked(err)
				break
			}
			db.cond.Broadcast()
			if task.walSeq != 0 {
				// The flushed state is durable in the SSTable; its log is
				// obsolete. A failed removal is NOT ignorable: a stale
				// generation would replay on the next open, so a log we
				// cannot retire is a storage failure like any other.
				db.mu.Unlock()
				rerr := db.retryIO(func() error {
					err := db.fs.Remove(db.walFile(task.walSeq))
					if errors.Is(err, os.ErrNotExist) {
						return nil
					}
					return err
				})
				db.mu.Lock()
				if rerr != nil {
					db.bgErr = rerr
					db.setDegradedLocked(rerr)
					break
				}
			}
			continue
		}
		level := db.pickCompaction()
		if level < 0 {
			break
		}
		plan, ok := db.planCompactionLocked(level)
		if !ok {
			break
		}
		hook := db.compactionHook
		db.mu.Unlock()
		newMetas, readBytes, err := db.runCompaction(plan, hook)
		db.mu.Lock()
		if err != nil {
			db.bgErr = err
			db.setDegradedLocked(err)
			break
		}
		obsolete := db.installCompactionLocked(plan, newMetas, readBytes)
		if err := db.saveManifest(); err != nil {
			db.bgErr = err
			db.setDegradedLocked(err)
			break
		}
		db.cond.Broadcast()
		db.mu.Unlock()
		db.removeObsolete(obsolete)
		db.mu.Lock()
	}
	db.bgActive = false
	db.cond.Broadcast()
	db.mu.Unlock()
}

// settleLocked rotates any pending writes into the flush queue and waits
// for the background worker to drain every flush and due compaction.
// Called with db.mu held.
func (db *DB) settleLocked() error {
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	if err := db.rotateLocked(); err != nil {
		return err
	}
	for db.bgErr == nil && db.degradedErr == nil &&
		(len(db.imm) > 0 || db.bgActive || db.pickCompaction() >= 0) {
		db.kickLocked()
		db.cond.Wait()
	}
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	return db.bgErr
}

// Flush forces buffered writes to disk and waits for background work to
// settle; exposed for tests and checkpoints.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	return db.settleLocked()
}

// pickCompaction returns the most urgent level to compact, or -1.
func (db *DB) pickCompaction() int {
	if db.forceCompact {
		for level := 0; level < len(db.levels)-1; level++ {
			if len(db.levels[level]) > 0 {
				return level
			}
		}
		return -1
	}
	if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
		return 0
	}
	target := db.opts.LevelBaseBytes
	for level := 1; level < len(db.levels)-1; level++ {
		var size int64
		for _, m := range db.levels[level] {
			size += m.size
		}
		if size > target {
			return level
		}
		target *= db.opts.LevelMultiplier
	}
	return -1
}

// compactionPlan captures, under db.mu, everything a merge needs so the
// merge itself can run with the lock released. Only the background worker
// mutates levels, so the planned tables cannot change underneath the merge.
type compactionPlan struct {
	level, dst     int
	srcMetas       []tableMeta // all tables of the source level
	dstIn          []tableMeta // destination tables joining the merge
	dstOut         []tableMeta // destination tables outside the key range
	dropTombstones bool
}

// planCompactionLocked prepares the merge of level into level+1.
func (db *DB) planCompactionLocked(level int) (compactionPlan, bool) {
	dst := level + 1
	if dst >= len(db.levels) || len(db.levels[level]) == 0 {
		return compactionPlan{}, false
	}
	plan := compactionPlan{
		level:    level,
		dst:      dst,
		srcMetas: append([]tableMeta(nil), db.levels[level]...),
	}
	// Key range of the source level.
	lo := plan.srcMetas[0].smallest
	hi := plan.srcMetas[0].largest
	for _, m := range plan.srcMetas[1:] {
		if bytes.Compare(m.smallest, lo) < 0 {
			lo = m.smallest
		}
		if bytes.Compare(m.largest, hi) > 0 {
			hi = m.largest
		}
	}
	// Overlapping destination tables join the merge.
	for _, m := range db.levels[dst] {
		if bytes.Compare(m.largest, lo) < 0 || bytes.Compare(m.smallest, hi) > 0 {
			plan.dstOut = append(plan.dstOut, m)
		} else {
			plan.dstIn = append(plan.dstIn, m)
		}
	}
	plan.dropTombstones = db.bottomMostLocked(dst, lo, hi)
	return plan, true
}

// runCompaction merges the planned tables into new non-overlapping tables
// on the destination level. Runs WITHOUT db.mu: reads and writes proceed
// concurrently with the merge I/O. Compacting into the bottom level drops
// tombstones.
func (db *DB) runCompaction(plan compactionPlan, hook func()) (newMetas []tableMeta, readBytes int64, err error) {
	if hook != nil {
		hook()
	}
	// Build merge sources newest-first: L0 files are newest-last on disk,
	// so reverse them; destination tables are oldest. Sources bypass the
	// block cache (newTableSourceBypass): a merge streams every block of
	// its inputs exactly once, and letting that walk touch the cache would
	// wipe out the hot point-read set. References are held until the merge
	// finishes so a concurrent removeObsolete cannot close files mid-read.
	var (
		sources []source
		readers []*tableReader
	)
	defer func() {
		for _, t := range readers {
			t.unref()
		}
	}()
	for i := len(plan.srcMetas) - 1; i >= 0; i-- {
		t, err := db.reader(plan.srcMetas[i])
		if err != nil {
			return nil, 0, err
		}
		readers = append(readers, t)
		sources = append(sources, newTableSourceBypass(t, nil))
	}
	for _, m := range plan.dstIn {
		t, err := db.reader(m)
		if err != nil {
			return nil, 0, err
		}
		readers = append(readers, t)
		sources = append(sources, newTableSourceBypass(t, nil))
	}

	merged := newMergeIterator(sources)
	var (
		out      []entry
		outBytes int
		maxOut   = db.opts.CompactionTableBytes
	)
	flushOut := func() error {
		if len(out) == 0 {
			return nil
		}
		num := db.next.Add(1) - 1
		meta, err := db.writeTableRetrying(num, plan.dst, out)
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		newMetas = append(newMetas, meta)
		out = out[:0]
		outBytes = 0
		return nil
	}
	for merged.next() {
		e := merged.entry()
		if e.tombstone && plan.dropTombstones {
			// Saturating decrement: compaction may drop tombstones
			// recovered from disk that this process never counted.
			for {
				cur := db.stats.tombstonesLive.Load()
				if cur == 0 || db.stats.tombstonesLive.CompareAndSwap(cur, cur-1) {
					break
				}
			}
			continue
		}
		// Copy: entries alias table data whose files we are about to delete.
		out = append(out, entry{
			key:       append([]byte(nil), e.key...),
			value:     append([]byte(nil), e.value...),
			tombstone: e.tombstone,
		})
		outBytes += len(e.key) + len(e.value)
		if outBytes >= maxOut {
			if err := flushOut(); err != nil {
				return nil, 0, err
			}
		}
	}
	// A corrupt input table must abort the compaction: writing out the
	// partial merge would silently drop every entry past the bad block.
	if err := merged.err(); err != nil {
		return nil, 0, fmt.Errorf("compaction aborted: %w", err)
	}
	if err := flushOut(); err != nil {
		return nil, 0, err
	}
	for _, s := range sources {
		readBytes += int64(s.(*tableSource).bytesConsumed())
	}
	return newMetas, readBytes, nil
}

// installCompactionLocked swaps the merged tables into the version and
// returns the tables made obsolete. Called with db.mu held.
func (db *DB) installCompactionLocked(plan compactionPlan, newMetas []tableMeta, readBytes int64) []tableMeta {
	db.stats.physicalBytesRead.Add(uint64(readBytes))
	db.stats.compactionCount.Add(1)
	db.levels[plan.level] = nil
	newLevel := append(append([]tableMeta(nil), plan.dstOut...), newMetas...)
	sort.Slice(newLevel, func(i, j int) bool {
		return bytes.Compare(newLevel[i].smallest, newLevel[j].smallest) < 0
	})
	db.levels[plan.dst] = newLevel
	return append(append([]tableMeta(nil), plan.srcMetas...), plan.dstIn...)
}

// removeObsolete drops the open map's references and deletes the files of
// compacted-away tables. Runs without db.mu: in-flight readers (gets,
// scans, merges) hold their own references, so the last unref — not this
// call — closes the handle and purges the table's cached blocks. Deleting
// the file under a live handle is safe: the OS keeps unlinked files
// readable through open descriptors, and MemFS read handles snapshot.
func (db *DB) removeObsolete(obsolete []tableMeta) {
	for _, m := range obsolete {
		db.openMu.Lock()
		t, ok := db.open[m.num]
		if ok {
			delete(db.open, m.num)
		}
		db.openMu.Unlock()
		if ok {
			t.unref()
		}
		// Best-effort: an orphaned table is dead weight, not a hazard — the
		// manifest no longer references it, so recovery never reads it.
		db.fs.Remove(tablePath(db.dir, m.num))
	}
}

// CompactAll forces every level's data down to the bottom of the tree,
// purging all droppable tombstones — the equivalent of Pebble's manual
// whole-range compaction.
func (db *DB) CompactAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	db.forceCompact = true
	err := db.settleLocked()
	db.forceCompact = false
	return err
}

// bottomMostLocked reports whether no level below dst holds keys in
// [lo, hi]; if so, tombstones can be dropped during compaction into dst.
func (db *DB) bottomMostLocked(dst int, lo, hi []byte) bool {
	for level := dst + 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lo) >= 0 && bytes.Compare(m.smallest, hi) <= 0 {
				return false
			}
		}
	}
	return true
}

// prefixSuccessor returns the smallest key greater than every key with the
// given prefix, or nil when no such bound exists (empty or all-0xFF prefix).
// It is the exclusive upper bound of a prefix scan.
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			upper := append([]byte(nil), prefix[:i+1]...)
			upper[i]++
			return upper
		}
	}
	return nil
}

// NewIterator implements kv.Iterable: a merged scan over the entire tree.
func (db *DB) NewIterator(prefix, start []byte) kv.Iterator {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.scans.Add(1)
	lower := append(append([]byte(nil), prefix...), start...)
	// Exclusive upper bound: a table whose smallest key is at or past the
	// prefix successor cannot contribute and need not be opened at all.
	upper := prefixSuccessor(prefix)

	// Table references live until Release: a compaction may delete source
	// files mid-scan, and the iterator's refs keep the handles (and the OS
	// file contents) alive until the walk finishes.
	var (
		sources []source
		readers []*tableReader
	)
	fail := func(err error) kv.Iterator {
		for _, t := range readers {
			t.unref()
		}
		return &errIterator{err: err}
	}
	sources = append(sources, newMemSource(db.mem, lower))
	for i := len(db.imm) - 1; i >= 0; i-- {
		sources = append(sources, newMemSource(db.imm[i].mem, lower))
	}
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		m := l0[i]
		if bytes.Compare(m.largest, lower) < 0 ||
			(upper != nil && bytes.Compare(m.smallest, upper) >= 0) {
			continue
		}
		t, err := db.reader(m)
		if err != nil {
			return fail(err)
		}
		readers = append(readers, t)
		sources = append(sources, newTableSource(t, lower))
	}
	for level := 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lower) < 0 ||
				(upper != nil && bytes.Compare(m.smallest, upper) >= 0) {
				continue
			}
			t, err := db.reader(m)
			if err != nil {
				return fail(err)
			}
			readers = append(readers, t)
			sources = append(sources, newTableSource(t, lower))
		}
	}
	return &dbIterator{
		db:      db,
		merged:  newMergeIterator(sources),
		prefix:  append([]byte(nil), prefix...),
		readers: readers,
	}
}

// dbIterator adapts mergeIterator to kv.Iterator, hiding tombstones and
// enforcing the prefix bound.
type dbIterator struct {
	db       *DB
	merged   *mergeIterator
	prefix   []byte
	key      []byte
	value    []byte
	done     bool
	released bool
	readers  []*tableReader // table references released at Release
}

func (it *dbIterator) Next() bool {
	if it.done {
		return false
	}
	for it.merged.next() {
		e := it.merged.entry()
		if !bytes.HasPrefix(e.key, it.prefix) {
			it.done = true
			return false
		}
		if e.tombstone {
			continue
		}
		it.key = append(it.key[:0], e.key...)
		it.value = append(it.value[:0], e.value...)
		return true
	}
	it.done = true
	return false
}

func (it *dbIterator) Key() []byte   { return it.key }
func (it *dbIterator) Value() []byte { return it.value }

// Release drops the iterator's table references (idempotent); files a
// compaction obsoleted mid-scan close here on the last reference. The
// scan's disk fetches land in the physical-read counter here — block-cache
// hits cost zero, so a fully cached scan adds nothing.
func (it *dbIterator) Release() {
	if !it.released {
		it.released = true
		var read uint64
		for _, s := range it.merged.sources {
			if ts, ok := s.(*tableSource); ok {
				read += uint64(ts.bytesConsumed())
			}
		}
		it.db.stats.physicalBytesRead.Add(read)
	}
	for _, t := range it.readers {
		t.unref()
	}
	it.readers = nil
}

// Error surfaces corruption detected mid-scan. A scan that stopped early
// because a table's block framing was broken reports it here rather than
// masquerading as a clean short result.
func (it *dbIterator) Error() error { return it.merged.err() }

// errIterator reports a construction failure through the Iterator API.
type errIterator struct{ err error }

func (it *errIterator) Next() bool    { return false }
func (it *errIterator) Key() []byte   { return nil }
func (it *errIterator) Value() []byte { return nil }
func (it *errIterator) Release()      {}
func (it *errIterator) Error() error  { return it.err }

// NewBatch implements kv.Batcher.
func (db *DB) NewBatch() kv.Batch { return &dbBatch{db: db} }

// dbBatch buffers writes and commits them under one lock acquisition with a
// single framed WAL group record — group commit: one log emission and one
// flush per batch, and crash recovery replays the batch all-or-nothing.
type dbBatch struct {
	db   *DB
	ops  []batchOp
	size int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *dbBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *dbBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *dbBatch) ValueSize() int { return b.size }

func (b *dbBatch) Write() error {
	if len(b.ops) == 0 {
		return nil
	}
	db := b.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendGroup(b.ops)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	for _, op := range b.ops {
		if op.delete {
			db.mem.del(op.key)
			db.stats.deletes.Add(1)
			db.stats.tombstonesLive.Add(1)
			db.stats.logicalBytesWritten.Add(uint64(len(op.key)))
		} else {
			db.mem.put(op.key, op.value)
			db.stats.puts.Add(1)
			db.stats.logicalBytesWritten.Add(uint64(len(op.key) + len(op.value)))
		}
	}
	return db.maybeRotateLocked()
}

func (b *dbBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

func (b *dbBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements kv.StatsProvider.
func (db *DB) Stats() kv.Stats {
	s := kv.Stats{
		Gets:                db.stats.gets.Load(),
		Puts:                db.stats.puts.Load(),
		Deletes:             db.stats.deletes.Load(),
		Scans:               db.stats.scans.Load(),
		LogicalBytesRead:    db.stats.logicalBytesRead.Load(),
		LogicalBytesWritten: db.stats.logicalBytesWritten.Load(),
		PhysicalBytesRead:   db.stats.physicalBytesRead.Load(),
		PhysicalBytesWrite:  db.stats.physicalBytesWrite.Load(),
		CompactionCount:     db.stats.compactionCount.Load(),
		TombstonesLive:      db.stats.tombstonesLive.Load(),
		FlushCount:          db.stats.flushCount.Load(),
		WriteStalls:         db.stats.writeStalls.Load(),
		WriteStallNanos:     db.stats.writeStallNanos.Load(),
		IORetries:           db.stats.ioRetries.Load(),
		Degraded:            db.stats.degraded.Load(),
		BloomNegatives:      db.stats.bloomNegatives.Load(),
		BloomFalsePositives: db.stats.bloomFalsePositives.Load(),
	}
	if db.cache != nil {
		s.BlockCacheHits = db.cache.hits.Load()
		s.BlockCacheMisses = db.cache.misses.Load()
		s.BlockCacheEvictions = db.cache.evictions.Load()
		s.BlockCachePinnedBytes = uint64(db.cache.pinnedBytes())
	}
	return s
}

// LevelSizes returns per-level table counts and byte sizes, for diagnostics.
func (db *DB) LevelSizes() []struct {
	Tables int
	Bytes  int64
} {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]struct {
		Tables int
		Bytes  int64
	}, len(db.levels))
	for i, metas := range db.levels {
		out[i].Tables = len(metas)
		for _, m := range metas {
			out[i].Bytes += m.size
		}
	}
	return out
}

// Close flushes buffered writes, stops the background worker, and releases
// resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	err := db.settleLocked()
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	close(db.bgC)
	db.bgWG.Wait()
	// Drop the open map's table references; outstanding iterators keep
	// theirs and the handles close on their Release.
	db.openMu.Lock()
	for num, t := range db.open {
		delete(db.open, num)
		t.unref()
	}
	db.openMu.Unlock()
	if db.wal != nil {
		if werr := db.wal.close(); err == nil {
			err = werr
		}
	}
	return err
}

// Manifest format: version u32, next u64, then per table:
// level uvarint | num uvarint | size uvarint | entries uvarint |
// smallestLen uvarint | smallest | largestLen uvarint | largest.
// saveManifest writes to a temp file and renames for atomicity.

func (db *DB) saveManifest() error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(1) // version
	put(db.next.Load())
	for level, metas := range db.levels {
		for _, m := range metas {
			put(uint64(level))
			put(m.num)
			put(uint64(m.size))
			put(m.entries)
			put(uint64(len(m.smallest)))
			buf.Write(m.smallest)
			put(uint64(len(m.largest)))
			buf.Write(m.largest)
		}
	}
	tmpPath := db.manifestPath() + ".tmp"
	if err := db.retryIO(func() error {
		return faultfs.WriteFileSync(db.fs, tmpPath, buf.Bytes())
	}); err != nil {
		return err
	}
	return db.retryIO(func() error {
		return db.fs.Rename(tmpPath, db.manifestPath())
	})
}

func (db *DB) loadManifest() error {
	raw, err := db.fs.ReadFile(db.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	get := func() (uint64, error) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, fmt.Errorf("lsm: corrupt manifest")
		}
		raw = raw[n:]
		return v, nil
	}
	if _, err := get(); err != nil { // version
		return err
	}
	next, err := get()
	if err != nil {
		return err
	}
	db.next.Store(next)
	for len(raw) > 0 {
		level, err := get()
		if err != nil {
			return err
		}
		num, err := get()
		if err != nil {
			return err
		}
		size, err := get()
		if err != nil {
			return err
		}
		entries, err := get()
		if err != nil {
			return err
		}
		slen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < slen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		smallest := append([]byte(nil), raw[:slen]...)
		raw = raw[slen:]
		llen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < llen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		largest := append([]byte(nil), raw[:llen]...)
		raw = raw[llen:]
		if int(level) >= len(db.levels) {
			return fmt.Errorf("lsm: manifest level %d out of range", level)
		}
		db.levels[level] = append(db.levels[level], tableMeta{
			num: num, level: int(level), size: int64(size),
			entries: entries, smallest: smallest, largest: largest,
		})
	}
	return nil
}
