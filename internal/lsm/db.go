// Package lsm implements a log-structured merge-tree key-value store: the
// repository's stand-in for Pebble, the store Geth uses by default.
//
// Architecture: writes land in a WAL and a skiplist memtable; full memtables
// rotate into an immutable queue that background jobs flush to level-0
// SSTables and compact into non-overlapping runs on L1+ with exponentially
// growing level capacities — Put/Delete never block on table I/O, they only
// stall when the flush queue is full (write-stall backpressure, counted in
// Stats). Deletes write tombstones that survive until they compact into the
// bottom level — exactly the cost model the paper's Finding 5 critiques. The
// store tracks logical vs physical I/O so experiments can report write/read
// amplification.
//
// Background work runs on a compaction scheduler (see maybeScheduleLocked):
// flushes and compactions occupy separate jobs so a long merge never blocks
// memtable rotation, range- and level-disjoint compactions run concurrently
// with per-table claims, large merges split into key-range sub-compactions,
// and all jobs draw goroutines from a compaction.Pool that may be shared
// across DB instances for a process-wide concurrency budget.
package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ethkv/internal/compaction"
	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
)

// Options tunes a DB. The zero value is usable; unset fields assume
// defaults scaled for simulator workloads.
type Options struct {
	// MemtableBytes is the rotation threshold for the write buffer.
	MemtableBytes int
	// MaxImmutableMemtables bounds the flush queue; writers stall when a
	// rotation would exceed it.
	MaxImmutableMemtables int
	// L0CompactionTrigger is the number of L0 tables that triggers a
	// compaction into L1.
	L0CompactionTrigger int
	// LevelBaseBytes is the target size of L1; each deeper level is
	// LevelMultiplier times larger.
	LevelBaseBytes int64
	// LevelMultiplier is the size ratio between adjacent levels.
	LevelMultiplier int64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// DisableWAL skips write-ahead logging (pure benchmarks).
	DisableWAL bool
	// Seed makes skiplist heights deterministic across runs.
	Seed int64
	// FS is the filesystem seam all durable I/O goes through. Nil means
	// the real OS filesystem; tests substitute faultfs.MemFS (with fault
	// injection) to exercise crash recovery deterministically.
	FS faultfs.FS
	// RetryAttempts bounds the retry-with-backoff loop for transient I/O
	// faults (faultfs.IsTransient); the attempt that exhausts the budget
	// surfaces the error and degrades the store.
	RetryAttempts int
	// RetryBackoff is the first retry's sleep; each subsequent retry
	// doubles it.
	RetryBackoff time.Duration
	// CompactionTableBytes caps the size of tables a compaction writes on
	// L1+. Smaller caps mean more, finer-grained tables per level — tests
	// shrink it to exercise multi-table levels cheaply.
	CompactionTableBytes int
	// BlockCacheBytes is the byte budget of the DB-wide sharded block
	// cache serving demand-paged SSTable reads. 0 selects the 32 MiB
	// default; negative disables caching entirely (every block read goes
	// to the filesystem). Index and bloom sections are pinned per open
	// table outside this budget.
	BlockCacheBytes int64
	// CompactionWorkers caps how many compactions this DB runs
	// concurrently, and how many goroutines a split merge fans its
	// sub-compactions across. 0 selects the default (4). 1 restores the
	// fully serial pre-scheduler behavior: one background job at a time,
	// flushes prioritized over compactions — crash tests rely on that
	// mode for a deterministic filesystem write order. At 2+, one flush
	// job additionally runs alongside the compactions so memtable
	// rotation never waits behind a long merge.
	CompactionWorkers int
	// L0StallTrigger is the L0 table count at which writers stall until
	// compaction catches up (the write-stop backpressure of leveled
	// stores). Every L0 table widens point reads and lets the store defer
	// unbounded compaction debt, so ingest must not outrun the scheduler
	// indefinitely. 0 selects 4x L0CompactionTrigger; negative disables
	// the stall. Ignored while draining (shutdown must not block writers
	// on merges that will never be scheduled).
	L0StallTrigger int
	// SubCompactionBytes is the input-size threshold past which one
	// compaction splits into key-range sub-compactions (one range per
	// SubCompactionBytes of input, capped). 0 selects 4x
	// CompactionTableBytes. The split boundaries depend only on the
	// planned inputs — never on worker count — so the concatenated
	// outputs are byte-identical no matter how many goroutines ran.
	SubCompactionBytes int64
	// Pool, when set, shares a process-wide background worker budget
	// across DB instances: all flushes and compactions of every DB on the
	// pool compete for its slots, highest compaction debt first. Nil
	// gives this DB a private pool of CompactionWorkers slots.
	Pool *compaction.Pool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxImmutableMemtables == 0 {
		o.MaxImmutableMemtables = 2
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.LevelBaseBytes == 0 {
		o.LevelBaseBytes = 16 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	if o.RetryAttempts == 0 {
		o.RetryAttempts = 4
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.CompactionTableBytes == 0 {
		// Target ~2 MiB output tables so L1+ stays granular.
		o.CompactionTableBytes = 2 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 32 << 20
	}
	if o.CompactionWorkers == 0 {
		o.CompactionWorkers = compaction.DefaultWorkers
	}
	if o.CompactionWorkers < 1 {
		o.CompactionWorkers = 1
	}
	if o.SubCompactionBytes == 0 {
		o.SubCompactionBytes = 4 * int64(o.CompactionTableBytes)
	}
	if o.L0StallTrigger == 0 {
		o.L0StallTrigger = 4 * o.L0CompactionTrigger
	}
	return o
}

// flushTask is one frozen memtable awaiting background flush, paired with
// the WAL generation that made it durable (0 when the WAL is disabled). The
// WAL file is deleted only after the flush installs its SSTable.
type flushTask struct {
	mem    *memtable
	walSeq uint64
}

// DB is the LSM store. It implements kv.Store and kv.StatsProvider.
type DB struct {
	mu     sync.RWMutex
	cond   *sync.Cond // signalled by the background worker; L is &mu
	opts   Options
	dir    string
	fs     faultfs.FS // all durable I/O goes through this seam
	wal    *wal       // active log, paired with mem
	walSeq uint64     // generation of the active log
	mem    *memtable
	memSeq int64 // memtable generation, perturbs the skiplist seed
	// imm holds frozen memtables awaiting flush, oldest first. The read
	// path consults them newest-first between mem and L0.
	imm    []flushTask
	levels [][]tableMeta
	// open caches tableReaders. Guarded by openMu, not mu: Get (holding
	// only the read lock) opens tables lazily, and concurrent readers must
	// not race on the map. The map holds one reference per reader; every
	// consumer takes its own via db.reader and unrefs when done.
	openMu sync.Mutex
	open   map[uint64]*tableReader
	// cache is the DB-wide sharded block cache all demand-paged table
	// reads go through; nil when Options.BlockCacheBytes is negative.
	cache  *blockCache
	next   atomic.Uint64 // next file number
	closed bool

	// Background scheduler state, guarded by mu. maybeScheduleLocked
	// submits flush and compaction jobs to pool; each job broadcasts on
	// cond when it installs. bgErr latches the first background failure;
	// writers surface it.
	pool     *compaction.Pool
	bgWG     sync.WaitGroup // tracks every submitted job to its very end
	flushing bool           // a flush job is submitted or running
	// claimed marks tables (by file number) owned by an in-flight
	// compaction; plan selection never touches a claimed table.
	claimed map[uint64]struct{}
	// jobs holds the key range and level pair of every in-flight
	// compaction, for the disjointness admission check.
	jobs   map[int]compactJob
	jobSeq int
	// inFlight counts submitted-but-unfinished background jobs (the flush
	// job plus compactions); settleLocked waits for it to reach zero.
	inFlight        int
	compactInFlight int
	// parallelSince is the instant compactInFlight last rose to 2; the
	// elapsed span lands in CompactionParallelNanos when it drops back.
	parallelSince time.Time
	// draining suppresses new compaction scheduling (Drain/shutdown);
	// flushes and already-running compactions still complete.
	draining bool
	bgErr    error
	// degradedErr latches the first permanent storage failure; once set
	// the store is read-only: writes return kv.ErrDegraded, reads keep
	// serving whatever state survives. Guarded by mu; mirrored into
	// stats.degraded for lock-free Stats().
	degradedErr error
	// forceCompact makes pickCompaction drain every level to the bottom
	// (CompactAll).
	forceCompact bool
	// compactionHook, when set (tests), runs during the merge phase of each
	// background compaction — outside db.mu, proving readers stay live.
	compactionHook func()

	// I/O counters. Atomics: Get mutates them under the read lock, which
	// many readers hold concurrently.
	stats dbStats
}

// dbStats mirrors kv.Stats with atomic fields.
type dbStats struct {
	gets, puts, deletes, scans            atomic.Uint64
	logicalBytesRead, logicalBytesWritten atomic.Uint64
	physicalBytesRead, physicalBytesWrite atomic.Uint64
	compactionCount, tombstonesLive       atomic.Uint64
	flushCount                            atomic.Uint64
	writeStalls, writeStallNanos          atomic.Uint64
	ioRetries, degraded                   atomic.Uint64
	bloomNegatives, bloomFalsePositives   atomic.Uint64
	subCompactions                        atomic.Uint64
	compactionParallelNanos               atomic.Uint64
	maxConcurrentCompactions              atomic.Uint64
	compactionDebtPeak                    atomic.Uint64
}

var _ kv.Store = (*DB)(nil)
var _ kv.StatsProvider = (*DB)(nil)

// Open creates or reopens an LSM database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{
		opts:    opts,
		dir:     dir,
		fs:      opts.FS,
		mem:     newMemtable(opts.Seed),
		levels:  make([][]tableMeta, opts.MaxLevels),
		open:    make(map[uint64]*tableReader),
		cache:   newBlockCache(opts.BlockCacheBytes),
		claimed: make(map[uint64]struct{}),
		jobs:    make(map[int]compactJob),
		pool:    opts.Pool,
	}
	if db.pool == nil {
		db.pool = compaction.NewPool(opts.CompactionWorkers)
	}
	if err := db.retryIO(func() error { return db.fs.MkdirAll(dir) }); err != nil {
		return nil, err
	}
	db.cond = sync.NewCond(&db.mu)
	db.next.Store(1)
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	if !opts.DisableWAL {
		if err := db.recoverWALs(); err != nil {
			return nil, err
		}
		db.walSeq = 1
		w, err := openWAL(db.fs, db.walFile(db.walSeq), db.retryIO)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	// Pick up any compaction debt left by recovery.
	db.mu.Lock()
	db.maybeScheduleLocked()
	db.mu.Unlock()
	return db, nil
}

// retryIO runs one I/O operation under the store's bounded
// retry-with-backoff policy: transient faults (faultfs.IsTransient) are
// retried with doubling sleeps up to Options.RetryAttempts; any other
// error — and the transient fault that exhausts the budget — returns to
// the caller, which treats it as permanent.
func (db *DB) retryIO(op func() error) error {
	backoff := db.opts.RetryBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !faultfs.IsTransient(err) || attempt >= db.opts.RetryAttempts {
			return err
		}
		db.stats.ioRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// setDegradedLocked latches the store into read-only degraded mode after a
// permanent storage failure. Called with db.mu held. Sticky: the first
// cause is kept, later failures are consequences.
func (db *DB) setDegradedLocked(err error) {
	if db.degradedErr != nil || err == nil {
		return
	}
	db.degradedErr = err
	db.stats.degraded.Store(1)
	db.cond.Broadcast() // release stalled writers
}

// writeGateLocked is the common admission check for Put/Delete/batch
// commits. Called with db.mu held.
func (db *DB) writeGateLocked() error {
	if db.closed {
		return kv.ErrClosed
	}
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	return nil
}

// writeTableRetrying persists one SSTable with the retry policy applied to
// the whole create-write-sync-close sequence (a failed attempt leaves no
// partial durable state to clean up: Create truncates).
func (db *DB) writeTableRetrying(num uint64, level int, ents []entry) (tableMeta, error) {
	var meta tableMeta
	err := db.retryIO(func() error {
		var err error
		meta, err = writeTable(db.fs, db.dir, num, level, ents)
		return err
	})
	return meta, err
}

// recoverWALs replays every log left by the previous run into the memtable
// (oldest generation first), synchronously flushes the recovered state to
// L0, and deletes the stale logs.
func (db *DB) recoverWALs() error {
	paths := []string{db.legacyWALPath()}
	seqs, err := db.walSeqsOnDisk()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		paths = append(paths, db.walFile(seq))
	}
	replay := func(op byte, key, value []byte) error {
		if op == walOpDelete {
			db.mem.del(key)
		} else {
			db.mem.put(key, value)
		}
		return nil
	}
	for _, p := range paths {
		if err := replayWAL(db.fs, p, replay); err != nil {
			return err
		}
	}
	if db.mem.count() > 0 {
		num := db.next.Add(1) - 1
		meta, err := db.writeTableRetrying(num, 0, db.mem.entries())
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		db.stats.flushCount.Add(1)
		db.levels[0] = append(db.levels[0], meta)
		db.memSeq++
		db.mem = newMemtable(db.opts.Seed + db.memSeq)
		if err := db.saveManifest(); err != nil {
			return err
		}
	}
	for _, p := range paths {
		if err := db.fs.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// walSeqsOnDisk lists the numbered WAL generations present in dir, sorted.
func (db *DB) walSeqsOnDisk() ([]uint64, error) {
	matches, err := db.fs.Glob(filepath.Join(db.dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, m := range matches {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "wal-%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (db *DB) walFile(seq uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("wal-%06d.log", seq))
}
func (db *DB) legacyWALPath() string { return filepath.Join(db.dir, "wal.log") }
func (db *DB) manifestPath() string  { return filepath.Join(db.dir, "MANIFEST") }

// activeWALPath returns the path of the log currently receiving records;
// crash-recovery tests truncate it to simulate torn writes.
func (db *DB) activeWALPath() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walFile(db.walSeq)
}

// compactJob is the admission-control record of one in-flight compaction:
// which adjacent level pair it reads and writes, and the key span (source
// tables plus overlapping destination tables) it owns.
type compactJob struct {
	level, dst int
	lo, hi     []byte
}

// flushPriority outranks any realistic compaction debt so a queued flush
// always drains before queued merges: flushes are what unblock stalled
// writers.
const flushPriority = math.MaxUint64

// maybeScheduleLocked is the compaction scheduler: it launches background
// jobs for all currently runnable work and returns without blocking. Called
// with db.mu held at every state transition that can create or unblock work
// (rotation, job completion, Open, settle).
//
// Scheduling rules:
//   - at most one flush job, looping until the immutable queue empties;
//   - up to Options.CompactionWorkers concurrent compactions, each planned
//     by tryPlanLevelLocked under the disjointness rule;
//   - with CompactionWorkers == 1 the flush job and compactions additionally
//     exclude each other, restoring the serial single-worker write order
//     (flushes first) that deterministic crash tests depend on.
func (db *DB) maybeScheduleLocked() {
	if db.closed || db.bgErr != nil || db.degradedErr != nil {
		return
	}
	db.noteDebtLocked()
	serial := db.opts.CompactionWorkers <= 1
	if !db.flushing && len(db.imm) > 0 && !(serial && db.compactInFlight > 0) {
		db.flushing = true
		db.inFlight++
		db.bgWG.Add(1)
		db.pool.Submit(flushPriority, db.runFlushJob)
	}
	if db.draining && !db.forceCompact {
		return
	}
	for db.compactInFlight < db.opts.CompactionWorkers && !(serial && db.flushing) {
		plan, ok := db.planNextCompactionLocked()
		if !ok {
			return
		}
		db.startCompactionLocked(plan)
	}
}

// failLocked latches the first background failure and degrades the store.
func (db *DB) failLocked(err error) {
	if db.bgErr == nil {
		db.bgErr = err
	}
	db.setDegradedLocked(err)
}

// noteDebtLocked records the current compaction debt into its high-water
// stat and returns it (the pool's priority key).
func (db *DB) noteDebtLocked() uint64 {
	debt := uint64(db.compactionDebtLocked())
	for {
		cur := db.stats.compactionDebtPeak.Load()
		if debt <= cur || db.stats.compactionDebtPeak.CompareAndSwap(cur, debt) {
			return debt
		}
	}
}

// runFlushJob drains the immutable memtable queue, oldest first: write L0
// table, install, save manifest, retire the flushed WAL generation. Table
// I/O happens with db.mu released so readers and writers proceed
// concurrently; only the installs take the exclusive lock. One instance
// runs at a time (db.flushing).
func (db *DB) runFlushJob() {
	defer db.bgWG.Done()
	db.mu.Lock()
	for db.bgErr == nil && db.degradedErr == nil && !db.closed && len(db.imm) > 0 {
		task := db.imm[0]
		num := db.next.Add(1) - 1
		db.mu.Unlock()
		meta, err := db.writeTableRetrying(num, 0, task.mem.entries())
		db.mu.Lock()
		if err != nil {
			db.failLocked(err)
			break
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		db.stats.flushCount.Add(1)
		db.levels[0] = append(db.levels[0], meta)
		db.imm = db.imm[1:]
		if err := db.saveManifest(); err != nil {
			db.failLocked(err)
			break
		}
		db.cond.Broadcast()
		if task.walSeq != 0 {
			// The flushed state is durable in the SSTable; its log is
			// obsolete. A failed removal is NOT ignorable: a stale
			// generation would replay on the next open, so a log we
			// cannot retire is a storage failure like any other.
			db.mu.Unlock()
			rerr := db.retryIO(func() error {
				err := db.fs.Remove(db.walFile(task.walSeq))
				if errors.Is(err, os.ErrNotExist) {
					return nil
				}
				return err
			})
			db.mu.Lock()
			if rerr != nil {
				db.failLocked(rerr)
				break
			}
		}
	}
	db.flushing = false
	db.inFlight--
	db.maybeScheduleLocked()
	db.cond.Broadcast()
	db.mu.Unlock()
}

// startCompactionLocked registers plan as an in-flight job — claiming its
// tables, recording its level pair and key span for admission checks — and
// submits it to the worker pool at the store's current debt priority.
func (db *DB) startCompactionLocked(plan compactionPlan) {
	db.jobSeq++
	id := db.jobSeq
	db.jobs[id] = compactJob{level: plan.level, dst: plan.dst, lo: plan.lo, hi: plan.hi}
	for _, m := range plan.srcMetas {
		db.claimed[m.num] = struct{}{}
	}
	for _, m := range plan.dstIn {
		db.claimed[m.num] = struct{}{}
	}
	db.inFlight++
	db.compactInFlight++
	if n := uint64(db.compactInFlight); n > db.stats.maxConcurrentCompactions.Load() {
		db.stats.maxConcurrentCompactions.Store(n)
	}
	if db.compactInFlight == 2 {
		db.parallelSince = time.Now()
	}
	debt := db.noteDebtLocked()
	db.bgWG.Add(1)
	db.pool.Submit(debt, func() { db.runCompactionJob(id, plan) })
}

// finishCompactionLocked unwinds startCompactionLocked's bookkeeping.
func (db *DB) finishCompactionLocked(id int, plan compactionPlan) {
	delete(db.jobs, id)
	for _, m := range plan.srcMetas {
		delete(db.claimed, m.num)
	}
	for _, m := range plan.dstIn {
		delete(db.claimed, m.num)
	}
	db.inFlight--
	db.compactInFlight--
	if db.compactInFlight == 1 {
		db.stats.compactionParallelNanos.Add(uint64(time.Since(db.parallelSince)))
	}
}

// runCompactionJob executes one planned compaction on a pool goroutine:
// merge with the lock released, then install + manifest save under db.mu.
func (db *DB) runCompactionJob(id int, plan compactionPlan) {
	defer db.bgWG.Done()
	db.mu.Lock()
	if db.bgErr != nil || db.degradedErr != nil || db.closed {
		db.finishCompactionLocked(id, plan)
		db.cond.Broadcast()
		db.mu.Unlock()
		return
	}
	hook := db.compactionHook
	db.mu.Unlock()

	newMetas, readBytes, err := db.runCompaction(plan, hook)

	db.mu.Lock()
	if err != nil {
		db.failLocked(err)
		db.finishCompactionLocked(id, plan)
		db.cond.Broadcast()
		db.mu.Unlock()
		return
	}
	obsolete := db.installCompactionLocked(plan, newMetas, readBytes)
	db.finishCompactionLocked(id, plan)
	if err := db.saveManifest(); err != nil {
		db.failLocked(err)
		db.cond.Broadcast()
		db.mu.Unlock()
		return
	}
	db.maybeScheduleLocked()
	db.cond.Broadcast()
	db.mu.Unlock()
	db.removeObsolete(obsolete)
}

// Drain latches the store into draining mode — no new compactions are
// scheduled (flushes still run) — and waits for the flush queue and every
// in-flight compaction to finish. Servers call this before Close so
// shutdown is bounded by the merges already running, not by the full
// compaction debt. The latch persists: a subsequent Close settles promptly
// and the next Open picks the remaining debt back up.
func (db *DB) Drain() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	db.draining = true
	return db.settleLocked()
}

// Put implements kv.Writer.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpPut, key, value)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.put(key, value)
	db.stats.puts.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key) + len(value)))
	return db.maybeRotateLocked()
}

// Delete implements kv.Writer: it writes a tombstone.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpDelete, key, nil)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.del(key)
	db.stats.deletes.Add(1)
	db.stats.tombstonesLive.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key)))
	return db.maybeRotateLocked()
}

// Get implements kv.Reader.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, kv.ErrClosed
	}
	db.stats.gets.Add(1)
	// Memtable, then frozen memtables newest-first.
	if v, found, deleted := db.mem.get(key); found {
		return db.finishGet(v, deleted)
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if v, found, deleted := db.imm[i].mem.get(key); found {
			return db.finishGet(v, deleted)
		}
	}
	// L0 newest-first (files may overlap).
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		v, found, deleted, err := db.tableGet(l0[i], key)
		if err != nil {
			return nil, err
		}
		if found {
			return db.finishGet(v, deleted)
		}
	}
	// Deeper levels: at most one candidate file per level.
	for level := 1; level < len(db.levels); level++ {
		metas := db.levels[level]
		i := sort.Search(len(metas), func(i int) bool {
			return bytes.Compare(metas[i].largest, key) >= 0
		})
		if i == len(metas) || bytes.Compare(metas[i].smallest, key) > 0 {
			continue
		}
		v, found, deleted, err := db.tableGet(metas[i], key)
		if err != nil {
			return nil, err
		}
		if found {
			return db.finishGet(v, deleted)
		}
	}
	return nil, kv.ErrNotFound
}

// tableGet performs one table probe with reference bracketing and physical
// I/O accounting. The value is safe to use after unref: block payloads are
// heap slices, not views of a mapped file.
func (db *DB) tableGet(meta tableMeta, key []byte) (v []byte, found, deleted bool, err error) {
	t, err := db.reader(meta)
	if err != nil {
		return nil, false, false, err
	}
	v, found, deleted, br, err := t.get(key)
	t.unref()
	db.stats.physicalBytesRead.Add(uint64(br))
	return v, found, deleted, err
}

// finishGet translates an internal lookup result and accounts logical I/O.
func (db *DB) finishGet(v []byte, deleted bool) ([]byte, error) {
	if deleted {
		return nil, kv.ErrNotFound
	}
	db.stats.logicalBytesRead.Add(uint64(len(v)))
	return append([]byte(nil), v...), nil
}

// Has implements kv.Reader.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if errors.Is(err, kv.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// reader returns (opening if needed) the cached tableReader for meta, with
// a reference taken for the caller — who must unref when done with it. The
// open map holds its own reference until removeObsolete or Close drops it.
func (db *DB) reader(meta tableMeta) (*tableReader, error) {
	db.openMu.Lock()
	defer db.openMu.Unlock()
	if t, ok := db.open[meta.num]; ok {
		t.ref()
		return t, nil
	}
	// openTable applies retryIO to each individual read itself, so
	// transient faults are absorbed without reopening from scratch.
	t, err := openTable(db.fs, db.dir, meta, db.cache, &db.stats, db.retryIO)
	if err != nil {
		return nil, err
	}
	db.open[meta.num] = t
	t.ref()
	return t, nil
}

// maybeRotateLocked rotates a full memtable into the flush queue, stalling
// first if the queue is at capacity. Called with db.mu held.
func (db *DB) maybeRotateLocked() error {
	if db.mem.size() < db.opts.MemtableBytes {
		return nil
	}
	if len(db.imm) >= db.opts.MaxImmutableMemtables {
		db.stats.writeStalls.Add(1)
		start := time.Now()
		for len(db.imm) >= db.opts.MaxImmutableMemtables &&
			db.bgErr == nil && db.degradedErr == nil && !db.closed {
			db.maybeScheduleLocked()
			db.cond.Wait()
		}
		db.stats.writeStallNanos.Add(uint64(time.Since(start)))
		if db.degradedErr != nil {
			return kv.ErrDegraded
		}
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return kv.ErrClosed
		}
	}
	// L0 write stop: an overfull L0 means ingest has outrun compaction;
	// stalling here bounds the debt a fast writer can defer (and keeps L0
	// point-read fan-out bounded). Skipped while draining — shutdown
	// suppresses the very compactions that would clear the stall.
	if stop := db.opts.L0StallTrigger; stop > 0 && len(db.levels[0]) >= stop && !db.draining {
		db.stats.writeStalls.Add(1)
		start := time.Now()
		for len(db.levels[0]) >= stop && !db.draining &&
			db.bgErr == nil && db.degradedErr == nil && !db.closed {
			db.maybeScheduleLocked()
			db.cond.Wait()
		}
		db.stats.writeStallNanos.Add(uint64(time.Since(start)))
		if db.degradedErr != nil {
			return kv.ErrDegraded
		}
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return kv.ErrClosed
		}
	}
	return db.rotateLocked()
}

// rotateLocked freezes the current memtable into the flush queue, starts a
// fresh WAL generation for its successor, and schedules a flush job.
func (db *DB) rotateLocked() error {
	if db.mem.count() == 0 {
		return nil
	}
	task := flushTask{mem: db.mem}
	if db.wal != nil {
		// close syncs first: generation N must be fully durable before
		// generation N+1 opens, or a crash in the gap could surface
		// later-synced writes while losing earlier ones (a hole in the
		// op sequence, not a prefix). A failure here is a permanent loss
		// of the write path — degrade rather than limp on with a log in
		// an unknown state.
		if err := db.wal.close(); err != nil {
			db.wal = nil
			db.setDegradedLocked(err)
			return err
		}
		task.walSeq = db.walSeq
		db.walSeq++
		w, err := openWAL(db.fs, db.walFile(db.walSeq), db.retryIO)
		if err != nil {
			db.wal = nil
			db.setDegradedLocked(err)
			return err
		}
		db.wal = w
	}
	db.imm = append(db.imm, task)
	db.memSeq++
	db.mem = newMemtable(db.opts.Seed + db.memSeq)
	db.maybeScheduleLocked()
	return nil
}

// settleLocked rotates any pending writes into the flush queue and waits
// for the scheduler to drain every flush, every in-flight job, and all due
// compaction work. Called with db.mu held.
func (db *DB) settleLocked() error {
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	if err := db.rotateLocked(); err != nil {
		return err
	}
	for db.bgErr == nil && db.degradedErr == nil &&
		(len(db.imm) > 0 || db.inFlight > 0 || db.hasCompactionWorkLocked()) {
		db.maybeScheduleLocked()
		db.cond.Wait()
	}
	if db.degradedErr != nil {
		return kv.ErrDegraded
	}
	return db.bgErr
}

// Flush forces buffered writes to disk and waits for background work to
// settle; exposed for tests and checkpoints.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	return db.settleLocked()
}

// unclaimedLocked reports whether no in-flight compaction owns table m.
func (db *DB) unclaimedLocked(m tableMeta) bool {
	_, claimed := db.claimed[m.num]
	return !claimed
}

// levelNeedsCompactionLocked reports whether level's unclaimed tables put it
// over its invariant. Claimed tables are excluded on both sides: they are
// already being compacted away, so counting them would schedule jobs that
// cannot pick any input.
func (db *DB) levelNeedsCompactionLocked(level int) bool {
	unclaimed := 0
	var size int64
	for _, m := range db.levels[level] {
		if db.unclaimedLocked(m) {
			unclaimed++
			size += m.size
		}
	}
	if db.forceCompact {
		return unclaimed > 0
	}
	if level == 0 {
		return unclaimed >= db.opts.L0CompactionTrigger
	}
	target := db.opts.LevelBaseBytes
	for l := 1; l < level; l++ {
		target *= db.opts.LevelMultiplier
	}
	return size > target
}

// hasCompactionWorkLocked reports whether any level currently warrants a
// compaction (ignoring admission: claimed-table conflicts resolve as the
// owning jobs finish, and settleLocked re-checks on every broadcast).
func (db *DB) hasCompactionWorkLocked() bool {
	if db.draining && !db.forceCompact {
		return false
	}
	for level := 0; level < len(db.levels)-1; level++ {
		if db.levelNeedsCompactionLocked(level) {
			return true
		}
	}
	return false
}

// compactionPlan captures, under db.mu, everything a merge needs so the
// merge itself can run with the lock released. The planned tables are
// claimed until the job finishes, so no other job mutates or re-reads them
// underneath the merge.
type compactionPlan struct {
	level, dst     int
	srcMetas       []tableMeta // source-level tables joining the merge
	dstIn          []tableMeta // destination tables joining the merge
	lo, hi         []byte      // key span of srcMetas + dstIn (admission range)
	dropTombstones bool
}

// maxCompactionSrcBytes bounds one job's source-run size (in units of
// CompactionTableBytes) so an overflowing level drains in several
// range-disjoint jobs that can proceed in parallel rather than one
// monolithic merge.
const maxCompactionSrcTables = 8

// planNextCompactionLocked finds the next admissible compaction, scanning
// levels most-urgent-first (L0, then shallow to deep).
func (db *DB) planNextCompactionLocked() (compactionPlan, bool) {
	for level := 0; level < len(db.levels)-1; level++ {
		if !db.levelNeedsCompactionLocked(level) {
			continue
		}
		if plan, ok := db.tryPlanLevelLocked(level); ok {
			return plan, true
		}
	}
	return compactionPlan{}, false
}

// tryPlanLevelLocked prepares a merge of (part of) level into level+1,
// subject to the concurrency admission rules:
//
//   - Source tables must be unclaimed. L0 jobs take every unclaimed L0
//     table (keeping recency order); Ln jobs take the first contiguous run
//     of unclaimed tables, capped at maxCompactionSrcTables times the
//     output table size.
//   - Every destination table overlapping the source span must be
//     unclaimed; they join the merge (dstIn).
//   - Disjointness rule: the job's key span (sources + dstIn) must not
//     overlap the span of any in-flight job that shares a level with it.
//     Jobs on disjoint level pairs may overlap in keyspace; jobs touching a
//     common level must be range-disjoint, which keeps installs commutative
//     and prevents a deeper merge from re-exposing keys whose tombstones a
//     shallower merge is concurrently dropping.
func (db *DB) tryPlanLevelLocked(level int) (compactionPlan, bool) {
	dst := level + 1
	if dst >= len(db.levels) {
		return compactionPlan{}, false
	}
	var src []tableMeta
	if level == 0 {
		for _, m := range db.levels[0] {
			if db.unclaimedLocked(m) {
				src = append(src, m)
			}
		}
	} else {
		maxBytes := int64(db.opts.CompactionTableBytes) * maxCompactionSrcTables
		var run []tableMeta
		var runBytes int64
		for _, m := range db.levels[level] {
			if !db.unclaimedLocked(m) {
				if len(run) > 0 {
					break
				}
				continue
			}
			run = append(run, m)
			runBytes += m.size
			if runBytes >= maxBytes {
				break
			}
		}
		src = run
	}
	if len(src) == 0 {
		return compactionPlan{}, false
	}
	// Key span of the sources.
	lo := src[0].smallest
	hi := src[0].largest
	for _, m := range src[1:] {
		if bytes.Compare(m.smallest, lo) < 0 {
			lo = m.smallest
		}
		if bytes.Compare(m.largest, hi) > 0 {
			hi = m.largest
		}
	}
	// Destination tables overlapping the source span join the merge; a
	// claimed one means another job owns part of our key range on dst.
	var dstIn []tableMeta
	for _, m := range db.levels[dst] {
		if bytes.Compare(m.largest, lo) < 0 || bytes.Compare(m.smallest, hi) > 0 {
			continue
		}
		if !db.unclaimedLocked(m) {
			return compactionPlan{}, false
		}
		dstIn = append(dstIn, m)
		if bytes.Compare(m.smallest, lo) < 0 {
			lo = m.smallest
		}
		if bytes.Compare(m.largest, hi) > 0 {
			hi = m.largest
		}
	}
	// Disjointness against every in-flight job sharing a level.
	for _, j := range db.jobs {
		sharesLevel := j.level == level || j.level == dst || j.dst == level || j.dst == dst
		if sharesLevel && bytes.Compare(j.lo, hi) <= 0 && bytes.Compare(lo, j.hi) <= 0 {
			return compactionPlan{}, false
		}
	}
	return compactionPlan{
		level:          level,
		dst:            dst,
		srcMetas:       src,
		dstIn:          dstIn,
		lo:             append([]byte(nil), lo...),
		hi:             append([]byte(nil), hi...),
		dropTombstones: db.bottomMostLocked(dst, lo, hi),
	}, true
}

// runCompaction merges the planned tables into new non-overlapping tables
// on the destination level. Runs WITHOUT db.mu: reads and writes proceed
// concurrently with the merge I/O. Compacting into the bottom level drops
// tombstones.
//
// Large inputs split into key-range sub-compactions. The split boundaries
// are a pure function of the plan (subCompactionBounds), and every range
// merge is independent and deterministic, so the concatenated outputs are
// byte-for-byte identical whether the ranges run on one goroutine or many —
// only the file numbers (assigned at write time) differ. The ranges fan out
// across at most Options.CompactionWorkers goroutines.
func (db *DB) runCompaction(plan compactionPlan, hook func()) (newMetas []tableMeta, readBytes int64, err error) {
	if hook != nil {
		hook()
	}
	bounds := db.subCompactionBounds(plan)
	if len(bounds) == 0 {
		return db.compactRange(plan, nil, nil)
	}
	ranges := len(bounds) + 1
	db.stats.subCompactions.Add(uint64(ranges))
	type rangeResult struct {
		metas []tableMeta
		read  int64
		err   error
	}
	results := make([]rangeResult, ranges)
	workers := db.opts.CompactionWorkers
	if workers > ranges {
		workers = ranges
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < ranges; i++ {
		var lo, hi []byte
		if i > 0 {
			lo = bounds[i-1]
		}
		if i < len(bounds) {
			hi = bounds[i]
		}
		wg.Add(1)
		go func(i int, lo, hi []byte) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &results[i]
			r.metas, r.read, r.err = db.compactRange(plan, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, 0, r.err
		}
		newMetas = append(newMetas, r.metas...)
		readBytes += r.read
	}
	return newMetas, readBytes, nil
}

// subCompactionBounds returns the interior key boundaries splitting plan
// into sub-compaction ranges: range i covers [bounds[i-1], bounds[i])
// (unbounded at the ends). Empty means run unsplit. Boundaries are drawn
// from the input tables' smallest keys — deterministic plan metadata —
// never from worker count or timing.
func (db *DB) subCompactionBounds(plan compactionPlan) [][]byte {
	const maxSubCompactions = 16
	span := db.opts.SubCompactionBytes
	if span <= 0 {
		return nil
	}
	inputs := make([]tableMeta, 0, len(plan.srcMetas)+len(plan.dstIn))
	inputs = append(inputs, plan.srcMetas...)
	inputs = append(inputs, plan.dstIn...)
	var total int64
	for _, m := range inputs {
		total += m.size
	}
	want := int(total / span)
	if want <= 1 {
		return nil
	}
	if want > maxSubCompactions {
		want = maxSubCompactions
	}
	// Candidate boundaries: distinct table start keys past the global
	// minimum (a boundary at the minimum would make the first range empty).
	starts := make([][]byte, 0, len(inputs))
	for _, m := range inputs {
		starts = append(starts, m.smallest)
	}
	sort.Slice(starts, func(i, j int) bool { return bytes.Compare(starts[i], starts[j]) < 0 })
	var cands [][]byte
	for i := 1; i < len(starts); i++ {
		if !bytes.Equal(starts[i], starts[i-1]) {
			cands = append(cands, starts[i])
		}
	}
	if len(cands) == 0 {
		return nil
	}
	if want > len(cands)+1 {
		want = len(cands) + 1
	}
	// want ranges need want-1 boundaries, spaced evenly over the candidates.
	var bounds [][]byte
	for i := 1; i < want; i++ {
		b := cands[i*len(cands)/want]
		if len(bounds) > 0 && bytes.Equal(bounds[len(bounds)-1], b) {
			continue
		}
		bounds = append(bounds, append([]byte(nil), b...))
	}
	return bounds
}

// compactRange merges the plan's inputs restricted to keys in [lo, hi) —
// nil bounds are unbounded. Output tables cut at CompactionTableBytes and,
// by construction, at the range boundary.
func (db *DB) compactRange(plan compactionPlan, lo, hi []byte) (newMetas []tableMeta, readBytes int64, err error) {
	// Build merge sources newest-first: L0 files are newest-last on disk,
	// so reverse them; destination tables are oldest. Sources bypass the
	// block cache (newTableSourceBypass): a merge streams every block of
	// its inputs exactly once, and letting that walk touch the cache would
	// wipe out the hot point-read set. References are held until the merge
	// finishes so a concurrent removeObsolete cannot close files mid-read.
	var (
		sources []source
		readers []*tableReader
	)
	defer func() {
		for _, t := range readers {
			t.unref()
		}
	}()
	addSource := func(m tableMeta) error {
		// Skip tables entirely outside the range: every key of a skipped
		// table belongs to (and is read by) some other range's merge.
		if hi != nil && bytes.Compare(m.smallest, hi) >= 0 {
			return nil
		}
		if lo != nil && bytes.Compare(m.largest, lo) < 0 {
			return nil
		}
		t, err := db.reader(m)
		if err != nil {
			return err
		}
		readers = append(readers, t)
		sources = append(sources, newTableSourceBypass(t, lo))
		return nil
	}
	for i := len(plan.srcMetas) - 1; i >= 0; i-- {
		if err := addSource(plan.srcMetas[i]); err != nil {
			return nil, 0, err
		}
	}
	for _, m := range plan.dstIn {
		if err := addSource(m); err != nil {
			return nil, 0, err
		}
	}

	merged := newMergeIterator(sources)
	var (
		out      []entry
		outBytes int
		maxOut   = db.opts.CompactionTableBytes
	)
	flushOut := func() error {
		if len(out) == 0 {
			return nil
		}
		num := db.next.Add(1) - 1
		meta, err := db.writeTableRetrying(num, plan.dst, out)
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		newMetas = append(newMetas, meta)
		out = out[:0]
		outBytes = 0
		return nil
	}
	for merged.next() {
		e := merged.entry()
		if hi != nil && bytes.Compare(e.key, hi) >= 0 {
			break
		}
		if e.tombstone && plan.dropTombstones {
			// Saturating decrement: compaction may drop tombstones
			// recovered from disk that this process never counted.
			for {
				cur := db.stats.tombstonesLive.Load()
				if cur == 0 || db.stats.tombstonesLive.CompareAndSwap(cur, cur-1) {
					break
				}
			}
			continue
		}
		// Copy: entries alias table data whose files we are about to delete.
		out = append(out, entry{
			key:       append([]byte(nil), e.key...),
			value:     append([]byte(nil), e.value...),
			tombstone: e.tombstone,
		})
		outBytes += len(e.key) + len(e.value)
		if outBytes >= maxOut {
			if err := flushOut(); err != nil {
				return nil, 0, err
			}
		}
	}
	// A corrupt input table must abort the compaction: writing out the
	// partial merge would silently drop every entry past the bad block.
	if err := merged.err(); err != nil {
		return nil, 0, fmt.Errorf("compaction aborted: %w", err)
	}
	if err := flushOut(); err != nil {
		return nil, 0, err
	}
	for _, s := range sources {
		readBytes += int64(s.(*tableSource).bytesConsumed())
	}
	return newMetas, readBytes, nil
}

// installCompactionLocked swaps the merged tables into the version and
// returns the tables made obsolete. Called with db.mu held. The edit is
// incremental — exactly the job's inputs leave, its outputs enter — so the
// installs of concurrent range-disjoint jobs commute.
func (db *DB) installCompactionLocked(plan compactionPlan, newMetas []tableMeta, readBytes int64) []tableMeta {
	db.stats.physicalBytesRead.Add(uint64(readBytes))
	db.stats.compactionCount.Add(1)
	db.levels[plan.level] = removeTables(db.levels[plan.level], plan.srcMetas)
	newDst := append(removeTables(db.levels[plan.dst], plan.dstIn), newMetas...)
	sort.Slice(newDst, func(i, j int) bool {
		return bytes.Compare(newDst[i].smallest, newDst[j].smallest) < 0
	})
	db.levels[plan.dst] = newDst
	return append(append([]tableMeta(nil), plan.srcMetas...), plan.dstIn...)
}

// removeTables returns level without the tables in gone, preserving order
// (L0 recency order matters).
func removeTables(level, gone []tableMeta) []tableMeta {
	if len(gone) == 0 {
		return level
	}
	goneNums := make(map[uint64]struct{}, len(gone))
	for _, m := range gone {
		goneNums[m.num] = struct{}{}
	}
	kept := make([]tableMeta, 0, len(level))
	for _, m := range level {
		if _, ok := goneNums[m.num]; !ok {
			kept = append(kept, m)
		}
	}
	return kept
}

// removeObsolete drops the open map's references and deletes the files of
// compacted-away tables. Runs without db.mu: in-flight readers (gets,
// scans, merges) hold their own references, so the last unref — not this
// call — closes the handle and purges the table's cached blocks. Deleting
// the file under a live handle is safe: the OS keeps unlinked files
// readable through open descriptors, and MemFS read handles snapshot.
func (db *DB) removeObsolete(obsolete []tableMeta) {
	for _, m := range obsolete {
		db.openMu.Lock()
		t, ok := db.open[m.num]
		if ok {
			delete(db.open, m.num)
		}
		db.openMu.Unlock()
		if ok {
			t.unref()
		}
		// Best-effort: an orphaned table is dead weight, not a hazard — the
		// manifest no longer references it, so recovery never reads it.
		db.fs.Remove(tablePath(db.dir, m.num))
	}
}

// CompactAll forces every level's data down to the bottom of the tree,
// purging all droppable tombstones — the equivalent of Pebble's manual
// whole-range compaction.
func (db *DB) CompactAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	db.forceCompact = true
	err := db.settleLocked()
	db.forceCompact = false
	return err
}

// bottomMostLocked reports whether no level below dst holds keys in
// [lo, hi]; if so, tombstones can be dropped during compaction into dst.
func (db *DB) bottomMostLocked(dst int, lo, hi []byte) bool {
	for level := dst + 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lo) >= 0 && bytes.Compare(m.smallest, hi) <= 0 {
				return false
			}
		}
	}
	return true
}

// prefixSuccessor returns the smallest key greater than every key with the
// given prefix, or nil when no such bound exists (empty or all-0xFF prefix).
// It is the exclusive upper bound of a prefix scan.
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			upper := append([]byte(nil), prefix[:i+1]...)
			upper[i]++
			return upper
		}
	}
	return nil
}

// NewIterator implements kv.Iterable: a merged scan over the entire tree.
func (db *DB) NewIterator(prefix, start []byte) kv.Iterator {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.scans.Add(1)
	lower := append(append([]byte(nil), prefix...), start...)
	// Exclusive upper bound: a table whose smallest key is at or past the
	// prefix successor cannot contribute and need not be opened at all.
	upper := prefixSuccessor(prefix)

	// Table references live until Release: a compaction may delete source
	// files mid-scan, and the iterator's refs keep the handles (and the OS
	// file contents) alive until the walk finishes.
	var (
		sources []source
		readers []*tableReader
	)
	fail := func(err error) kv.Iterator {
		for _, t := range readers {
			t.unref()
		}
		return &errIterator{err: err}
	}
	sources = append(sources, newMemSource(db.mem, lower))
	for i := len(db.imm) - 1; i >= 0; i-- {
		sources = append(sources, newMemSource(db.imm[i].mem, lower))
	}
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		m := l0[i]
		if bytes.Compare(m.largest, lower) < 0 ||
			(upper != nil && bytes.Compare(m.smallest, upper) >= 0) {
			continue
		}
		t, err := db.reader(m)
		if err != nil {
			return fail(err)
		}
		readers = append(readers, t)
		sources = append(sources, newTableSource(t, lower))
	}
	for level := 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lower) < 0 ||
				(upper != nil && bytes.Compare(m.smallest, upper) >= 0) {
				continue
			}
			t, err := db.reader(m)
			if err != nil {
				return fail(err)
			}
			readers = append(readers, t)
			sources = append(sources, newTableSource(t, lower))
		}
	}
	return &dbIterator{
		db:      db,
		merged:  newMergeIterator(sources),
		prefix:  append([]byte(nil), prefix...),
		readers: readers,
	}
}

// dbIterator adapts mergeIterator to kv.Iterator, hiding tombstones and
// enforcing the prefix bound.
type dbIterator struct {
	db       *DB
	merged   *mergeIterator
	prefix   []byte
	key      []byte
	value    []byte
	done     bool
	released bool
	readers  []*tableReader // table references released at Release
}

func (it *dbIterator) Next() bool {
	if it.done {
		return false
	}
	for it.merged.next() {
		e := it.merged.entry()
		if !bytes.HasPrefix(e.key, it.prefix) {
			it.done = true
			return false
		}
		if e.tombstone {
			continue
		}
		it.key = append(it.key[:0], e.key...)
		it.value = append(it.value[:0], e.value...)
		return true
	}
	it.done = true
	return false
}

func (it *dbIterator) Key() []byte   { return it.key }
func (it *dbIterator) Value() []byte { return it.value }

// Release drops the iterator's table references (idempotent); files a
// compaction obsoleted mid-scan close here on the last reference. The
// scan's disk fetches land in the physical-read counter here — block-cache
// hits cost zero, so a fully cached scan adds nothing.
func (it *dbIterator) Release() {
	if !it.released {
		it.released = true
		var read uint64
		for _, s := range it.merged.sources {
			if ts, ok := s.(*tableSource); ok {
				read += uint64(ts.bytesConsumed())
			}
		}
		it.db.stats.physicalBytesRead.Add(read)
	}
	for _, t := range it.readers {
		t.unref()
	}
	it.readers = nil
}

// Error surfaces corruption detected mid-scan. A scan that stopped early
// because a table's block framing was broken reports it here rather than
// masquerading as a clean short result.
func (it *dbIterator) Error() error { return it.merged.err() }

// errIterator reports a construction failure through the Iterator API.
type errIterator struct{ err error }

func (it *errIterator) Next() bool    { return false }
func (it *errIterator) Key() []byte   { return nil }
func (it *errIterator) Value() []byte { return nil }
func (it *errIterator) Release()      {}
func (it *errIterator) Error() error  { return it.err }

// NewBatch implements kv.Batcher.
func (db *DB) NewBatch() kv.Batch { return &dbBatch{db: db} }

// dbBatch buffers writes and commits them under one lock acquisition with a
// single framed WAL group record — group commit: one log emission and one
// flush per batch, and crash recovery replays the batch all-or-nothing.
type dbBatch struct {
	db   *DB
	ops  []batchOp
	size int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *dbBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *dbBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *dbBatch) ValueSize() int { return b.size }

func (b *dbBatch) Write() error {
	if len(b.ops) == 0 {
		return nil
	}
	db := b.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeGateLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		n, err := db.wal.appendGroup(b.ops)
		if err != nil {
			db.setDegradedLocked(err)
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	for _, op := range b.ops {
		if op.delete {
			db.mem.del(op.key)
			db.stats.deletes.Add(1)
			db.stats.tombstonesLive.Add(1)
			db.stats.logicalBytesWritten.Add(uint64(len(op.key)))
		} else {
			db.mem.put(op.key, op.value)
			db.stats.puts.Add(1)
			db.stats.logicalBytesWritten.Add(uint64(len(op.key) + len(op.value)))
		}
	}
	return db.maybeRotateLocked()
}

func (b *dbBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

func (b *dbBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements kv.StatsProvider.
func (db *DB) Stats() kv.Stats {
	s := kv.Stats{
		Gets:                db.stats.gets.Load(),
		Puts:                db.stats.puts.Load(),
		Deletes:             db.stats.deletes.Load(),
		Scans:               db.stats.scans.Load(),
		LogicalBytesRead:    db.stats.logicalBytesRead.Load(),
		LogicalBytesWritten: db.stats.logicalBytesWritten.Load(),
		PhysicalBytesRead:   db.stats.physicalBytesRead.Load(),
		PhysicalBytesWrite:  db.stats.physicalBytesWrite.Load(),
		CompactionCount:     db.stats.compactionCount.Load(),
		TombstonesLive:      db.stats.tombstonesLive.Load(),
		FlushCount:          db.stats.flushCount.Load(),
		WriteStalls:         db.stats.writeStalls.Load(),
		WriteStallNanos:     db.stats.writeStallNanos.Load(),
		IORetries:           db.stats.ioRetries.Load(),
		Degraded:            db.stats.degraded.Load(),
		BloomNegatives:      db.stats.bloomNegatives.Load(),
		BloomFalsePositives: db.stats.bloomFalsePositives.Load(),
		SubCompactions:      db.stats.subCompactions.Load(),

		CompactionParallelNanos:  db.stats.compactionParallelNanos.Load(),
		MaxConcurrentCompactions: db.stats.maxConcurrentCompactions.Load(),
		CompactionDebtPeak:       db.stats.compactionDebtPeak.Load(),
	}
	if db.cache != nil {
		s.BlockCacheHits = db.cache.hits.Load()
		s.BlockCacheMisses = db.cache.misses.Load()
		s.BlockCacheEvictions = db.cache.evictions.Load()
		s.BlockCachePinnedBytes = uint64(db.cache.pinnedBytes())
	}
	return s
}

// LevelSizes returns per-level table counts and byte sizes, for diagnostics.
func (db *DB) LevelSizes() []struct {
	Tables int
	Bytes  int64
} {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]struct {
		Tables int
		Bytes  int64
	}, len(db.levels))
	for i, metas := range db.levels {
		out[i].Tables = len(metas)
		for _, m := range metas {
			out[i].Bytes += m.size
		}
	}
	return out
}

// Close flushes buffered writes, waits for background jobs to finish, and
// releases resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	err := db.settleLocked()
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	// settleLocked left no runnable work; wait out the job tails (obsolete
	// file removal runs after the install broadcast).
	db.bgWG.Wait()
	// Drop the open map's table references; outstanding iterators keep
	// theirs and the handles close on their Release.
	db.openMu.Lock()
	for num, t := range db.open {
		delete(db.open, num)
		t.unref()
	}
	db.openMu.Unlock()
	if db.wal != nil {
		if werr := db.wal.close(); err == nil {
			err = werr
		}
	}
	return err
}

// Manifest format: version u32, next u64, then per table:
// level uvarint | num uvarint | size uvarint | entries uvarint |
// smallestLen uvarint | smallest | largestLen uvarint | largest.
// saveManifest writes to a temp file and renames for atomicity.

func (db *DB) saveManifest() error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(1) // version
	put(db.next.Load())
	for level, metas := range db.levels {
		for _, m := range metas {
			put(uint64(level))
			put(m.num)
			put(uint64(m.size))
			put(m.entries)
			put(uint64(len(m.smallest)))
			buf.Write(m.smallest)
			put(uint64(len(m.largest)))
			buf.Write(m.largest)
		}
	}
	tmpPath := db.manifestPath() + ".tmp"
	if err := db.retryIO(func() error {
		return faultfs.WriteFileSync(db.fs, tmpPath, buf.Bytes())
	}); err != nil {
		return err
	}
	return db.retryIO(func() error {
		return db.fs.Rename(tmpPath, db.manifestPath())
	})
}

func (db *DB) loadManifest() error {
	raw, err := db.fs.ReadFile(db.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	get := func() (uint64, error) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, fmt.Errorf("lsm: corrupt manifest")
		}
		raw = raw[n:]
		return v, nil
	}
	if _, err := get(); err != nil { // version
		return err
	}
	next, err := get()
	if err != nil {
		return err
	}
	db.next.Store(next)
	for len(raw) > 0 {
		level, err := get()
		if err != nil {
			return err
		}
		num, err := get()
		if err != nil {
			return err
		}
		size, err := get()
		if err != nil {
			return err
		}
		entries, err := get()
		if err != nil {
			return err
		}
		slen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < slen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		smallest := append([]byte(nil), raw[:slen]...)
		raw = raw[slen:]
		llen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < llen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		largest := append([]byte(nil), raw[:llen]...)
		raw = raw[llen:]
		if int(level) >= len(db.levels) {
			return fmt.Errorf("lsm: manifest level %d out of range", level)
		}
		db.levels[level] = append(db.levels[level], tableMeta{
			num: num, level: int(level), size: int64(size),
			entries: entries, smallest: smallest, largest: largest,
		})
	}
	return nil
}
