// Package lsm implements a log-structured merge-tree key-value store: the
// repository's stand-in for Pebble, the store Geth uses by default.
//
// Architecture: writes land in a WAL and a skiplist memtable; full memtables
// flush to level-0 SSTables; a leveled compactor merges L0 into
// non-overlapping runs on L1+ with exponentially growing level capacities.
// Deletes write tombstones that survive until they compact into the bottom
// level — exactly the cost model the paper's Finding 5 critiques. The store
// tracks logical vs physical I/O so experiments can report write/read
// amplification.
package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ethkv/internal/kv"
)

// Options tunes a DB. The zero value is usable; unset fields assume
// defaults scaled for simulator workloads.
type Options struct {
	// MemtableBytes is the flush threshold for the write buffer.
	MemtableBytes int
	// L0CompactionTrigger is the number of L0 tables that triggers a
	// compaction into L1.
	L0CompactionTrigger int
	// LevelBaseBytes is the target size of L1; each deeper level is
	// LevelMultiplier times larger.
	LevelBaseBytes int64
	// LevelMultiplier is the size ratio between adjacent levels.
	LevelMultiplier int64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// DisableWAL skips write-ahead logging (pure benchmarks).
	DisableWAL bool
	// Seed makes skiplist heights deterministic across runs.
	Seed int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.LevelBaseBytes == 0 {
		o.LevelBaseBytes = 16 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DB is the LSM store. It implements kv.Store and kv.StatsProvider.
type DB struct {
	mu   sync.RWMutex
	opts Options
	dir  string
	wal  *wal
	mem  *memtable
	// imm holds frozen memtables awaiting flush (newest last). Flushes are
	// currently synchronous, so this stays empty; the read path already
	// consults it so an async flusher can be added without touching reads.
	imm    []*memtable
	levels [][]tableMeta
	// open caches tableReaders. Guarded by openMu, not mu: Get (holding
	// only the read lock) opens tables lazily, and concurrent readers must
	// not race on the map.
	openMu sync.Mutex
	open   map[uint64]*tableReader
	next   uint64 // next file number
	closed bool

	// I/O counters. Atomics: Get mutates them under the read lock, which
	// many readers hold concurrently.
	stats dbStats
}

// dbStats mirrors kv.Stats with atomic fields.
type dbStats struct {
	gets, puts, deletes, scans            atomic.Uint64
	logicalBytesRead, logicalBytesWritten atomic.Uint64
	physicalBytesRead, physicalBytesWrite atomic.Uint64
	compactionCount, tombstonesLive       atomic.Uint64
}

var _ kv.Store = (*DB)(nil)
var _ kv.StatsProvider = (*DB)(nil)

// Open creates or reopens an LSM database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		opts:   opts,
		dir:    dir,
		mem:    newMemtable(opts.Seed),
		levels: make([][]tableMeta, opts.MaxLevels),
		open:   make(map[uint64]*tableReader),
		next:   1,
	}
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	if !opts.DisableWAL {
		// Recover the durable tail of the previous run into the memtable.
		if err := replayWAL(db.walPath(), func(op byte, key, value []byte) error {
			if op == walOpDelete {
				db.mem.del(key)
			} else {
				db.mem.put(key, value)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		w, err := openWAL(db.walPath())
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	return db, nil
}

func (db *DB) walPath() string      { return filepath.Join(db.dir, "wal.log") }
func (db *DB) manifestPath() string { return filepath.Join(db.dir, "MANIFEST") }

// Put implements kv.Writer.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpPut, key, value)
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.put(key, value)
	db.stats.puts.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key) + len(value)))
	return db.maybeFlushLocked()
}

// Delete implements kv.Writer: it writes a tombstone.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	if db.wal != nil {
		n, err := db.wal.appendRecord(walOpDelete, key, nil)
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(n))
	}
	db.mem.del(key)
	db.stats.deletes.Add(1)
	db.stats.tombstonesLive.Add(1)
	db.stats.logicalBytesWritten.Add(uint64(len(key)))
	return db.maybeFlushLocked()
}

// Get implements kv.Reader.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, kv.ErrClosed
	}
	db.stats.gets.Add(1)
	// Memtable, then frozen memtables newest-first.
	if v, found, deleted := db.mem.get(key); found {
		return db.finishGet(v, deleted)
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if v, found, deleted := db.imm[i].get(key); found {
			return db.finishGet(v, deleted)
		}
	}
	// L0 newest-first (files may overlap).
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		t, err := db.reader(l0[i])
		if err != nil {
			return nil, err
		}
		v, found, deleted, br := t.get(key)
		db.stats.physicalBytesRead.Add(uint64(br))
		if found {
			return db.finishGet(v, deleted)
		}
	}
	// Deeper levels: at most one candidate file per level.
	for level := 1; level < len(db.levels); level++ {
		metas := db.levels[level]
		i := sort.Search(len(metas), func(i int) bool {
			return bytes.Compare(metas[i].largest, key) >= 0
		})
		if i == len(metas) || bytes.Compare(metas[i].smallest, key) > 0 {
			continue
		}
		t, err := db.reader(metas[i])
		if err != nil {
			return nil, err
		}
		v, found, deleted, br := t.get(key)
		db.stats.physicalBytesRead.Add(uint64(br))
		if found {
			return db.finishGet(v, deleted)
		}
	}
	return nil, kv.ErrNotFound
}

// finishGet translates an internal lookup result and accounts logical I/O.
func (db *DB) finishGet(v []byte, deleted bool) ([]byte, error) {
	if deleted {
		return nil, kv.ErrNotFound
	}
	db.stats.logicalBytesRead.Add(uint64(len(v)))
	return append([]byte(nil), v...), nil
}

// Has implements kv.Reader.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if errors.Is(err, kv.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// reader returns (opening if needed) the cached tableReader for meta.
func (db *DB) reader(meta tableMeta) (*tableReader, error) {
	db.openMu.Lock()
	defer db.openMu.Unlock()
	if t, ok := db.open[meta.num]; ok {
		return t, nil
	}
	t, err := openTable(db.dir, meta)
	if err != nil {
		return nil, err
	}
	db.open[meta.num] = t
	return t, nil
}

// maybeFlushLocked freezes a full memtable and flushes it, then runs any
// due compactions. Called with db.mu held.
func (db *DB) maybeFlushLocked() error {
	if db.mem.size() < db.opts.MemtableBytes {
		return nil
	}
	return db.flushLocked()
}

// flushLocked flushes the current memtable (if non-empty) to an L0 table.
func (db *DB) flushLocked() error {
	if db.mem.count() == 0 {
		return nil
	}
	ents := db.mem.entries()
	num := db.next
	db.next++
	meta, err := writeTable(db.dir, num, 0, ents)
	if err != nil {
		return err
	}
	db.stats.physicalBytesWrite.Add(uint64(meta.size))
	db.levels[0] = append(db.levels[0], meta)
	db.mem = newMemtable(db.opts.Seed + int64(num))
	// The WAL contents are now durable in the SSTable; start a fresh log.
	if db.wal != nil {
		if err := db.wal.close(); err != nil {
			return err
		}
		if err := os.Remove(db.walPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		w, err := openWAL(db.walPath())
		if err != nil {
			return err
		}
		db.wal = w
	}
	if err := db.saveManifest(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// Flush forces the memtable to disk; exposed for tests and checkpoints.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	return db.flushLocked()
}

// maybeCompactLocked runs compactions until all level invariants hold.
func (db *DB) maybeCompactLocked() error {
	for {
		level := db.pickCompaction()
		if level < 0 {
			return nil
		}
		if err := db.compactLocked(level); err != nil {
			return err
		}
	}
}

// pickCompaction returns the most urgent level to compact, or -1.
func (db *DB) pickCompaction() int {
	if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
		return 0
	}
	target := db.opts.LevelBaseBytes
	for level := 1; level < len(db.levels)-1; level++ {
		var size int64
		for _, m := range db.levels[level] {
			size += m.size
		}
		if size > target {
			return level
		}
		target *= db.opts.LevelMultiplier
	}
	return -1
}

// compactLocked merges all of level's tables (plus the overlapping tables
// of level+1) into new non-overlapping tables on level+1. Compacting into
// the bottom level drops tombstones.
func (db *DB) compactLocked(level int) error {
	dst := level + 1
	if dst >= len(db.levels) {
		return nil
	}
	srcMetas := db.levels[level]
	if len(srcMetas) == 0 {
		return nil
	}
	// Key range of the source level.
	lo := srcMetas[0].smallest
	hi := srcMetas[0].largest
	for _, m := range srcMetas[1:] {
		if bytes.Compare(m.smallest, lo) < 0 {
			lo = m.smallest
		}
		if bytes.Compare(m.largest, hi) > 0 {
			hi = m.largest
		}
	}
	// Overlapping destination tables join the merge.
	var dstIn, dstOut []tableMeta
	for _, m := range db.levels[dst] {
		if bytes.Compare(m.largest, lo) < 0 || bytes.Compare(m.smallest, hi) > 0 {
			dstOut = append(dstOut, m)
		} else {
			dstIn = append(dstIn, m)
		}
	}

	// Build merge sources newest-first: L0 files are newest-last on disk,
	// so reverse them; destination tables are oldest.
	var sources []source
	for i := len(srcMetas) - 1; i >= 0; i-- {
		t, err := db.reader(srcMetas[i])
		if err != nil {
			return err
		}
		sources = append(sources, newTableSource(t, nil))
	}
	for _, m := range dstIn {
		t, err := db.reader(m)
		if err != nil {
			return err
		}
		sources = append(sources, newTableSource(t, nil))
	}

	dropTombstones := db.bottomMostLocked(dst, lo, hi)
	merged := newMergeIterator(sources)
	var (
		out      []entry
		outBytes int
		newMetas []tableMeta
		// Target ~2 MiB output tables so L1+ stays granular.
		maxOut = 2 << 20
	)
	flushOut := func() error {
		if len(out) == 0 {
			return nil
		}
		num := db.next
		db.next++
		meta, err := writeTable(db.dir, num, dst, out)
		if err != nil {
			return err
		}
		db.stats.physicalBytesWrite.Add(uint64(meta.size))
		newMetas = append(newMetas, meta)
		out = out[:0]
		outBytes = 0
		return nil
	}
	for merged.next() {
		e := merged.entry()
		if e.tombstone {
			if dropTombstones {
				// Saturating decrement: compaction may drop tombstones
				// recovered from disk that this process never counted.
				for {
					cur := db.stats.tombstonesLive.Load()
					if cur == 0 || db.stats.tombstonesLive.CompareAndSwap(cur, cur-1) {
						break
					}
				}
				continue
			}
		}
		// Copy: entries alias mapped table data that we are about to delete.
		out = append(out, entry{
			key:       append([]byte(nil), e.key...),
			value:     append([]byte(nil), e.value...),
			tombstone: e.tombstone,
		})
		outBytes += len(e.key) + len(e.value)
		if outBytes >= maxOut {
			if err := flushOut(); err != nil {
				return err
			}
		}
	}
	if err := flushOut(); err != nil {
		return err
	}

	// Account the physical read cost of the merge.
	for _, s := range sources {
		db.stats.physicalBytesRead.Add(uint64(s.(*tableSource).bytesConsumed()))
	}
	db.stats.compactionCount.Add(1)

	// Install the new version and delete obsolete files.
	obsolete := append(append([]tableMeta(nil), srcMetas...), dstIn...)
	db.levels[level] = nil
	newLevel := append(dstOut, newMetas...)
	sort.Slice(newLevel, func(i, j int) bool {
		return bytes.Compare(newLevel[i].smallest, newLevel[j].smallest) < 0
	})
	db.levels[dst] = newLevel
	for _, m := range obsolete {
		db.openMu.Lock()
		delete(db.open, m.num)
		db.openMu.Unlock()
		if err := os.Remove(tablePath(db.dir, m.num)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return db.saveManifest()
}

// CompactAll forces every level's data down to the bottom of the tree,
// purging all droppable tombstones — the equivalent of Pebble's manual
// whole-range compaction.
func (db *DB) CompactAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	for level := 0; level < len(db.levels)-1; level++ {
		if len(db.levels[level]) == 0 {
			continue
		}
		if err := db.compactLocked(level); err != nil {
			return err
		}
	}
	return nil
}

// bottomMostLocked reports whether no level below dst holds keys in
// [lo, hi]; if so, tombstones can be dropped during compaction into dst.
func (db *DB) bottomMostLocked(dst int, lo, hi []byte) bool {
	for level := dst + 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lo) >= 0 && bytes.Compare(m.smallest, hi) <= 0 {
				return false
			}
		}
	}
	return true
}

// NewIterator implements kv.Iterable: a merged scan over the entire tree.
func (db *DB) NewIterator(prefix, start []byte) kv.Iterator {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.scans.Add(1)
	lower := append(append([]byte(nil), prefix...), start...)

	var sources []source
	sources = append(sources, newMemSource(db.mem, lower))
	for i := len(db.imm) - 1; i >= 0; i-- {
		sources = append(sources, newMemSource(db.imm[i], lower))
	}
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		t, err := db.reader(l0[i])
		if err != nil {
			return &errIterator{err: err}
		}
		sources = append(sources, newTableSource(t, lower))
	}
	for level := 1; level < len(db.levels); level++ {
		for _, m := range db.levels[level] {
			if bytes.Compare(m.largest, lower) < 0 {
				continue
			}
			t, err := db.reader(m)
			if err != nil {
				return &errIterator{err: err}
			}
			sources = append(sources, newTableSource(t, lower))
		}
	}
	return &dbIterator{
		db:     db,
		merged: newMergeIterator(sources),
		prefix: append([]byte(nil), prefix...),
	}
}

// dbIterator adapts mergeIterator to kv.Iterator, hiding tombstones and
// enforcing the prefix bound.
type dbIterator struct {
	db     *DB
	merged *mergeIterator
	prefix []byte
	key    []byte
	value  []byte
	done   bool
}

func (it *dbIterator) Next() bool {
	if it.done {
		return false
	}
	for it.merged.next() {
		e := it.merged.entry()
		if !bytes.HasPrefix(e.key, it.prefix) {
			it.done = true
			return false
		}
		if e.tombstone {
			continue
		}
		it.key = append(it.key[:0], e.key...)
		it.value = append(it.value[:0], e.value...)
		return true
	}
	it.done = true
	return false
}

func (it *dbIterator) Key() []byte   { return it.key }
func (it *dbIterator) Value() []byte { return it.value }
func (it *dbIterator) Release()      {}
func (it *dbIterator) Error() error  { return nil }

// errIterator reports a construction failure through the Iterator API.
type errIterator struct{ err error }

func (it *errIterator) Next() bool    { return false }
func (it *errIterator) Key() []byte   { return nil }
func (it *errIterator) Value() []byte { return nil }
func (it *errIterator) Release()      {}
func (it *errIterator) Error() error  { return it.err }

// NewBatch implements kv.Batcher.
func (db *DB) NewBatch() kv.Batch { return &dbBatch{db: db} }

// dbBatch buffers writes and applies them through Put/Delete on commit.
// Application is atomic with respect to crash recovery at WAL granularity.
type dbBatch struct {
	db   *DB
	ops  []batchOp
	size int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *dbBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *dbBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *dbBatch) ValueSize() int { return b.size }

func (b *dbBatch) Write() error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = b.db.Delete(op.key)
		} else {
			err = b.db.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *dbBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

func (b *dbBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements kv.StatsProvider.
func (db *DB) Stats() kv.Stats {
	return kv.Stats{
		Gets:                db.stats.gets.Load(),
		Puts:                db.stats.puts.Load(),
		Deletes:             db.stats.deletes.Load(),
		Scans:               db.stats.scans.Load(),
		LogicalBytesRead:    db.stats.logicalBytesRead.Load(),
		LogicalBytesWritten: db.stats.logicalBytesWritten.Load(),
		PhysicalBytesRead:   db.stats.physicalBytesRead.Load(),
		PhysicalBytesWrite:  db.stats.physicalBytesWrite.Load(),
		CompactionCount:     db.stats.compactionCount.Load(),
		TombstonesLive:      db.stats.tombstonesLive.Load(),
	}
}

// LevelSizes returns per-level table counts and byte sizes, for diagnostics.
func (db *DB) LevelSizes() []struct {
	Tables int
	Bytes  int64
} {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]struct {
		Tables int
		Bytes  int64
	}, len(db.levels))
	for i, metas := range db.levels {
		out[i].Tables = len(metas)
		for _, m := range metas {
			out[i].Bytes += m.size
		}
	}
	return out
}

// Close flushes the memtable and releases resources.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	db.closed = true
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Manifest format: version u32, next u64, then per table:
// level uvarint | num uvarint | size uvarint | entries uvarint |
// smallestLen uvarint | smallest | largestLen uvarint | largest.
// A trailing CRC allows detecting torn writes; saveManifest writes to a
// temp file and renames for atomicity.

func (db *DB) saveManifest() error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(1) // version
	put(db.next)
	for level, metas := range db.levels {
		for _, m := range metas {
			put(uint64(level))
			put(m.num)
			put(uint64(m.size))
			put(m.entries)
			put(uint64(len(m.smallest)))
			buf.Write(m.smallest)
			put(uint64(len(m.largest)))
			buf.Write(m.largest)
		}
	}
	tmpPath := db.manifestPath() + ".tmp"
	if err := os.WriteFile(tmpPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmpPath, db.manifestPath())
}

func (db *DB) loadManifest() error {
	raw, err := os.ReadFile(db.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	get := func() (uint64, error) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, fmt.Errorf("lsm: corrupt manifest")
		}
		raw = raw[n:]
		return v, nil
	}
	if _, err := get(); err != nil { // version
		return err
	}
	next, err := get()
	if err != nil {
		return err
	}
	db.next = next
	for len(raw) > 0 {
		level, err := get()
		if err != nil {
			return err
		}
		num, err := get()
		if err != nil {
			return err
		}
		size, err := get()
		if err != nil {
			return err
		}
		entries, err := get()
		if err != nil {
			return err
		}
		slen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < slen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		smallest := append([]byte(nil), raw[:slen]...)
		raw = raw[slen:]
		llen, err := get()
		if err != nil {
			return err
		}
		if uint64(len(raw)) < llen {
			return fmt.Errorf("lsm: corrupt manifest")
		}
		largest := append([]byte(nil), raw[:llen]...)
		raw = raw[llen:]
		if int(level) >= len(db.levels) {
			return fmt.Errorf("lsm: manifest level %d out of range", level)
		}
		db.levels[level] = append(db.levels[level], tableMeta{
			num: num, level: int(level), size: int64(size),
			entries: entries, smallest: smallest, largest: largest,
		})
	}
	return nil
}
