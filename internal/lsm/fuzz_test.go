package lsm

// Fuzz targets for the two on-disk decoders that crash recovery feeds with
// arbitrary surviving bytes: WAL replay and SSTable opening. The invariant
// is that no input — torn, bit-flipped, or adversarial — makes recovery
// panic; corruption must surface as a clean stop (WAL) or an error
// (SSTable).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"ethkv/internal/faultfs"
)

// walBytes builds a well-formed log in memory for the seed corpus.
func walBytes(f *testing.F, build func(w *wal)) []byte {
	f.Helper()
	m := faultfs.NewMemFS()
	w, err := openWAL(m, "w", noRetry)
	if err != nil {
		f.Fatal(err)
	}
	build(w)
	if err := w.close(); err != nil {
		f.Fatal(err)
	}
	raw, err := m.ReadFile("w")
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(walBytes(f, func(w *wal) {
		w.appendRecord(walOpPut, []byte("key"), []byte("value"))
		w.appendRecord(walOpDelete, []byte("gone"), nil)
	}))
	f.Add(walBytes(f, func(w *wal) {
		w.appendGroup([]batchOp{
			{key: []byte("a"), value: bytes.Repeat([]byte{1}, 300)},
			{key: []byte("b"), delete: true},
		})
	}))
	// A record torn mid-payload and one with a flipped CRC byte.
	whole := walBytes(f, func(w *wal) {
		w.appendRecord(walOpPut, []byte("kk"), bytes.Repeat([]byte{2}, 64))
	})
	f.Add(whole[:len(whole)/2])
	flipped := append([]byte(nil), whole...)
	flipped[0] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		var applied int
		err := replayWALStream(bytes.NewReader(data), func(op byte, key, value []byte) error {
			if op != walOpPut && op != walOpDelete {
				t.Fatalf("replay surfaced unknown op %d", op)
			}
			applied++
			return nil
		})
		// Replay never fails on corrupt input — it stops at the tear — and
		// never applies more ops than the input could possibly frame.
		if err != nil {
			t.Fatalf("replay error on arbitrary input: %v", err)
		}
		if applied > len(data) {
			t.Fatalf("replayed %d ops from %d bytes", applied, len(data))
		}
	})
}

func FuzzSSTableOpen(f *testing.F) {
	// Seed with a real table, its truncations, and targeted corruptions of
	// the footer region (offsets, lengths, bloom parameters).
	m := faultfs.NewMemFS()
	meta, err := writeTable(m, "d", 1, 0, []entry{
		{key: []byte("alpha"), value: bytes.Repeat([]byte{3}, 100)},
		{key: []byte("beta"), tombstone: true},
		{key: []byte("gamma"), value: []byte("v")},
	})
	if err != nil {
		f.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", meta.num))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-footerSize/2])
	f.Add(raw[:footerSize])
	for _, off := range []int{0, footerSize - 9, footerSize - 20, footerSize - 40} {
		mut := append([]byte(nil), raw...)
		mut[len(mut)-1-off] ^= 0x55
		f.Add(mut)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := newTableReader(append([]byte(nil), data...), tableMeta{num: 1})
		if err != nil {
			return // rejecting corrupt input is the correct outcome
		}
		// An accepted table must be fully traversable without panicking and
		// with bounded output. Entry ORDER is not asserted: legacy v1 block
		// payloads are framed but not checksummed, so a footer-valid v1
		// table can hold garbage entries — for that format, recovery
		// integrity rests on the WAL CRCs and the sync-before-manifest
		// protocol. v2 tables add per-block CRCs; FuzzBlockRead pins down
		// that corruption there is always detected, never misread.
		it := r.iterator(nil)
		for n := 0; ; n++ {
			_, ok := it.nextEntry()
			if !ok {
				break
			}
			if n > len(data) {
				t.Fatalf("iterator yielded %d entries from %d bytes", n, len(data))
			}
		}
		// Point lookups on arbitrary keys must also be panic-free.
		r.get([]byte("alpha"))
		r.get([]byte{})
	})
}

// FuzzSSTableScan targets the scan path specifically: tables whose footer
// and index validate but whose block payloads are damaged. The invariant is
// the silent-truncation fix — an iterator that stops before yielding the
// footer's entry count must carry a non-nil error. (Garbage blocks can also
// frame MORE entries than the footer claims; that direction walks cleanly
// and is bounded by the input-size check, so only under-counts are
// asserted.)
func FuzzSSTableScan(f *testing.F) {
	m := faultfs.NewMemFS()
	var ents []entry
	for i := 0; i < 400; i++ {
		ents = append(ents, entry{
			key:   []byte(fmt.Sprintf("scan-%04d", i)),
			value: bytes.Repeat([]byte{byte(i)}, 48),
		})
	}
	meta, err := writeTable(m, "d", 1, 0, ents)
	if err != nil {
		f.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", meta.num))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	// Mid-block damage at several depths: entry flags, length varints, and
	// the boundary between two blocks.
	for _, off := range []int{1, 100, targetBlock / 2, targetBlock, targetBlock + 5, 2 * targetBlock} {
		if off >= len(raw)-footerSize {
			continue
		}
		mut := append([]byte(nil), raw...)
		mut[off] = 0xFF
		f.Add(mut)
		run := append([]byte(nil), raw...)
		for i := 0; i < 10 && off+i < len(run)-footerSize; i++ {
			run[off+i] = 0xFF
		}
		f.Add(run)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := newTableReader(append([]byte(nil), data...), tableMeta{num: 1})
		if err != nil {
			return // rejected at open; nothing to scan
		}
		it := r.iterator(nil)
		n := uint64(0)
		for {
			if _, ok := it.nextEntry(); !ok {
				break
			}
			n++
			if n > uint64(len(data)) {
				t.Fatalf("iterator yielded %d entries from %d bytes", n, len(data))
			}
		}
		entryCount := binary.LittleEndian.Uint64(data[len(data)-footerSize+36:])
		if n < entryCount && it.err == nil {
			t.Fatalf("scan yielded %d of %d entries with nil error: silent truncation", n, entryCount)
		}
		// A latched error must be sticky and the iterator must stay dead.
		if it.err != nil {
			if _, ok := it.nextEntry(); ok {
				t.Fatal("iterator revived after latching an error")
			}
		}
		// Seek from an arbitrary position must be equally panic-free.
		sit := r.iterator([]byte("scan-0200"))
		for {
			if _, ok := sit.nextEntry(); !ok {
				break
			}
		}
	})
}

// FuzzBlockRead pins down the v2 per-block checksum guarantee: flip any
// byte inside the data region of a checksummed table and every access path
// — point read, cache-aware scan, compaction bypass scan — must either
// return correct data (blocks the flip missed) or errTableCorrupt. Wrong
// data must never escape.
func FuzzBlockRead(f *testing.F) {
	m := faultfs.NewMemFS()
	var ents []entry
	want := map[string]string{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("blk-%04d", i)
		v := fmt.Sprintf("val-%04d-%s", i, bytes.Repeat([]byte{'x'}, 40))
		ents = append(ents, entry{key: []byte(k), value: []byte(v)})
		want[k] = v
	}
	meta, err := writeTable(m, "d", 1, 0, ents)
	if err != nil {
		f.Fatal(err)
	}
	raw, err := m.ReadFile(tablePath("d", meta.num))
	if err != nil {
		f.Fatal(err)
	}
	// Data region = [0, indexOff): everything before the index is block
	// extents (payload + CRC trailer), laid out back to back.
	dataLimit := binary.LittleEndian.Uint64(raw[len(raw)-footerSize:])
	if dataLimit == 0 || dataLimit > uint64(len(raw)) {
		f.Fatalf("implausible index offset %d", dataLimit)
	}
	f.Add(uint32(0), byte(0x01))
	f.Add(uint32(targetBlock/2), byte(0xFF))
	f.Add(uint32(dataLimit-1), byte(0x80))

	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		if xor == 0 {
			xor = 0xA5 // a zero xor is the identity; force a real flip
		}
		mut := append([]byte(nil), raw...)
		mut[uint64(pos)%dataLimit] ^= xor
		r, err := newTableReader(mut, tableMeta{num: 1})
		if err != nil {
			t.Fatalf("open rejected a table with only data-block damage: %v", err)
		}
		// Point reads: correct value or errTableCorrupt, nothing else.
		for _, e := range ents {
			v, found, deleted, _, err := r.get(e.key)
			if err != nil {
				if !errors.Is(err, errTableCorrupt) {
					t.Fatalf("get(%q): unexpected error %v", e.key, err)
				}
				continue
			}
			if !found || deleted || string(v) != want[string(e.key)] {
				t.Fatalf("get(%q) returned wrong data from a damaged table: %q found=%v deleted=%v",
					e.key, v, found, deleted)
			}
		}
		// Both scan flavours: every yielded entry must be correct, and a
		// short walk must carry errTableCorrupt.
		for _, checkCache := range []bool{true, false} {
			it := r.iteratorOpts(nil, checkCache)
			n := 0
			for it.next() {
				if got, ok := want[string(it.cur.key)]; !ok || string(it.cur.value) != got {
					t.Fatalf("scan yielded wrong entry %q=%q (checkCache=%v)",
						it.cur.key, it.cur.value, checkCache)
				}
				n++
			}
			if n < len(ents) && !errors.Is(it.err, errTableCorrupt) {
				t.Fatalf("scan stopped at %d/%d with err=%v (checkCache=%v)",
					n, len(ents), it.err, checkCache)
			}
			if n == len(ents) && it.err != nil {
				t.Fatalf("full scan with err=%v (checkCache=%v)", it.err, checkCache)
			}
		}
	})
}
