package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
)

// noRetry is a pass-through retryFn for unit tests that construct WAL and
// table objects directly.
func noRetry(op func() error) error { return op() }

// smallOpts forces frequent flushes and compactions so small tests exercise
// the full machinery.
func smallOpts() Options {
	return Options{
		MemtableBytes:       4 << 10,
		L0CompactionTrigger: 2,
		LevelBaseBytes:      16 << 10,
		LevelMultiplier:     4,
		MaxLevels:           5,
	}
}

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist(42)
	keys := []string{"m", "a", "z", "c", "b", "y"}
	for _, k := range keys {
		s.set([]byte(k), []byte("v"+k), false)
	}
	var got []string
	for it := s.iterator(); it.next(); {
		got = append(got, string(it.key()))
	}
	want := []string{"a", "b", "c", "m", "y", "z"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestSkiplistOverwriteAndTombstone(t *testing.T) {
	s := newSkiplist(1)
	s.set([]byte("k"), []byte("v1"), false)
	s.set([]byte("k"), []byte("v2"), false)
	if v, found, del := s.get([]byte("k")); !found || del || string(v) != "v2" {
		t.Fatalf("overwrite: %q %v %v", v, found, del)
	}
	if s.length != 1 {
		t.Fatalf("length = %d after overwrite", s.length)
	}
	s.set([]byte("k"), nil, true)
	if _, found, del := s.get([]byte("k")); !found || !del {
		t.Fatal("tombstone not recorded")
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := newSkiplist(7)
	for i := 0; i < 100; i += 2 {
		s.set([]byte(fmt.Sprintf("%03d", i)), nil, false)
	}
	it := s.iterator()
	it.seekGE([]byte("013"))
	if !it.valid() || string(it.key()) != "014" {
		t.Fatalf("seekGE(013) landed on %q", it.key())
	}
	it.seekGE([]byte("200"))
	if it.valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestSkiplistModelProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		s := newSkiplist(seed)
		model := map[string]string{}
		for _, raw := range opsRaw {
			key := fmt.Sprintf("k%02d", raw%50)
			if raw%3 == 0 {
				s.set([]byte(key), nil, true)
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", raw)
				s.set([]byte(key), []byte(val), false)
				model[key] = val
			}
		}
		for key, want := range model {
			v, found, del := s.get([]byte(key))
			if !found || del || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilter(t *testing.T) {
	// Both probe hashes must hold the filter contract: the fast v2 hash and
	// the keccak v1 hash old tables still carry.
	for _, fast := range []bool{true, false} {
		f := newBloomFilter(1000, fast)
		for i := 0; i < 1000; i++ {
			f.add([]byte(fmt.Sprintf("key-%d", i)))
		}
		for i := 0; i < 1000; i++ {
			if !f.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
				t.Fatalf("fast=%v: false negative for key-%d", fast, i)
			}
		}
		fp := 0
		for i := 0; i < 10000; i++ {
			if f.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
				fp++
			}
		}
		if rate := float64(fp) / 10000; rate > 0.05 {
			t.Fatalf("fast=%v: false positive rate %.3f too high", fast, rate)
		}
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var ents []entry
	for i := 0; i < 500; i++ {
		ents = append(ents, entry{
			key:       []byte(fmt.Sprintf("key-%04d", i)),
			value:     bytes.Repeat([]byte{byte(i)}, i%64),
			tombstone: i%7 == 0,
		})
	}
	meta, err := writeTable(faultfs.OS, dir, 1, 0, ents)
	if err != nil {
		t.Fatal(err)
	}
	if string(meta.smallest) != "key-0000" || string(meta.largest) != "key-0499" {
		t.Fatalf("bounds %q..%q", meta.smallest, meta.largest)
	}
	r, err := openTable(faultfs.OS, dir, meta, nil, nil, noRetry)
	if err != nil {
		t.Fatal(err)
	}
	defer r.unref()
	for i, e := range ents {
		v, found, deleted, _, err := r.get(e.key)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !found {
			t.Fatalf("entry %d not found", i)
		}
		if deleted != e.tombstone || !bytes.Equal(v, e.value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if _, found, _, _, _ := r.get([]byte("nope")); found {
		t.Fatal("found absent key")
	}
	// Full iteration returns everything in order.
	it := r.iterator(nil)
	n := 0
	for {
		e, ok := it.nextEntry()
		if !ok {
			break
		}
		if !bytes.Equal(e.key, ents[n].key) {
			t.Fatalf("iter entry %d: key %q want %q", n, e.key, ents[n].key)
		}
		n++
	}
	if n != len(ents) {
		t.Fatalf("iterated %d entries, want %d", n, len(ents))
	}
	// Seek positions correctly.
	it = r.iterator([]byte("key-0100"))
	e, ok := it.nextEntry()
	if !ok || string(e.key) != "key-0100" {
		t.Fatalf("seek landed on %q", e.key)
	}
}

func TestSSTableCorruption(t *testing.T) {
	dir := t.TempDir()
	meta, err := writeTable(faultfs.OS, dir, 1, 0, []entry{{key: []byte("k"), value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	path := tablePath(dir, 1)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff // corrupt magic
	os.WriteFile(path, raw, 0o644)
	if _, err := openTable(faultfs.OS, dir, meta, nil, nil, noRetry); !errors.Is(err, errTableCorrupt) {
		t.Fatalf("want corrupt error, got %v", err)
	}
}

func TestDBBasicOps(t *testing.T) {
	db := openTestDB(t, smallOpts())
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	ok, err := db.Has([]byte("a"))
	if err != nil || ok {
		t.Fatalf("Has deleted = %v, %v", ok, err)
	}
}

func TestDBFlushAndRead(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Put(key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Settle background work: many flushes and compactions must have happened.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	sizes := db.LevelSizes()
	total := 0
	for _, s := range sizes {
		total += s.Tables
	}
	if total == 0 {
		t.Fatal("expected flushed tables")
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, err := db.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("value mismatch at %d", i)
		}
	}
	st := db.Stats()
	if st.CompactionCount == 0 {
		t.Error("expected compactions")
	}
	if st.WriteAmplification() <= 1 {
		t.Errorf("write amplification %.2f should exceed 1 with compaction", st.WriteAmplification())
	}
}

func TestDBOverwriteAcrossFlush(t *testing.T) {
	db := openTestDB(t, smallOpts())
	db.Put([]byte("k"), []byte("old"))
	db.Flush()
	db.Put([]byte("k"), []byte("new"))
	db.Flush()
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "new" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestDBDeleteAcrossFlush(t *testing.T) {
	db := openTestDB(t, smallOpts())
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Delete([]byte("k"))
	db.Flush()
	if _, err := db.Get([]byte("k")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("tombstone in newer table must shadow older put: %v", err)
	}
}

func TestDBIterator(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("p/%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Put([]byte("q/other"), []byte("x"))
	db.Delete([]byte("p/00100"))
	db.Flush()

	it := db.NewIterator([]byte("p/"), nil)
	defer it.Release()
	var last []byte
	n := 0
	for it.Next() {
		if last != nil && bytes.Compare(it.Key(), last) <= 0 {
			t.Fatal("iterator keys not strictly ascending")
		}
		if string(it.Key()) == "p/00100" {
			t.Fatal("iterator surfaced deleted key")
		}
		if !bytes.HasPrefix(it.Key(), []byte("p/")) {
			t.Fatalf("iterator escaped prefix: %q", it.Key())
		}
		last = append(last[:0], it.Key()...)
		n++
	}
	if n != 299 {
		t.Fatalf("iterated %d keys, want 299", n)
	}
}

func TestDBIteratorStart(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("p%02d", i)), []byte("v"))
	}
	it := db.NewIterator([]byte("p"), []byte("90"))
	defer it.Release()
	n := 0
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("got %d keys from start p90, want 10", n)
	}
}

func TestDBBatch(t *testing.T) {
	db := openTestDB(t, smallOpts())
	db.Put([]byte("victim"), []byte("x"))
	b := db.NewBatch()
	b.Put([]byte("b1"), []byte("v1"))
	b.Put([]byte("b2"), []byte("v2"))
	b.Delete([]byte("victim"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get([]byte("b1")); string(v) != "v1" {
		t.Fatalf("b1 = %q", v)
	}
	if _, err := db.Get([]byte("victim")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("batch delete ineffective")
	}
	// Replay into a memstore.
	ms := kv.NewMemStore()
	if err := b.Replay(ms); err != nil {
		t.Fatal(err)
	}
	if v, _ := ms.Get([]byte("b2")); string(v) != "v2" {
		t.Fatal("replay missed b2")
	}
}

func TestDBReopenDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	db.Delete([]byte("key-0042"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%04d", i)
		v, err := db2.Get([]byte(key))
		if i == 42 {
			if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("deleted key resurrected: %v", err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("%s after reopen: %q, %v", key, v, err)
		}
	}
}

// TestDBCrashRecovery simulates a crash: write without Close, then reopen
// and verify the WAL restores the memtable contents.
func TestDBCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemtableBytes = 1 << 20 // keep everything in the memtable
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))
	// Flush WAL buffers but do NOT close (simulated crash).
	if err := db.wal.sync(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, err := db2.Get([]byte(key))
		if i == 50 {
			if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("tombstone lost in crash recovery: %v", err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s after crash: %q, %v", key, v, err)
		}
	}
}

// TestDBTornWAL appends garbage to the WAL tail; recovery must keep the
// valid prefix and ignore the tear.
func TestDBTornWAL(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemtableBytes = 1 << 20
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("good"), []byte("yes"))
	db.wal.sync()

	// Tear: append a partial record.
	f, err := os.OpenFile(db.activeWALPath(), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("good")); err != nil || string(v) != "yes" {
		t.Fatalf("valid prefix lost: %q, %v", v, err)
	}
}

// TestDBModelProperty runs randomized op sequences against a map model,
// with aggressive flush settings, verifying point reads and full scans.
func TestDBModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		db := openTestDB(t, smallOpts())
		model := map[string]string{}
		for i := 0; i < 3000; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(400))
			switch rng.Intn(10) {
			case 0, 1, 2:
				db.Delete([]byte(k))
				delete(model, k)
			default:
				v := fmt.Sprintf("val-%d-%d", round, i)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		// Point reads.
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil || string(v) != want {
				t.Fatalf("round %d: Get(%s) = %q, %v; want %q", round, k, v, err, want)
			}
		}
		// Scan must match the model exactly.
		it := db.NewIterator([]byte("key-"), nil)
		seen := map[string]string{}
		for it.Next() {
			seen[string(it.Key())] = string(it.Value())
		}
		it.Release()
		if len(seen) != len(model) {
			t.Fatalf("round %d: scan %d keys, model %d", round, len(seen), len(model))
		}
		for k, want := range model {
			if seen[k] != want {
				t.Fatalf("round %d: scan[%s] = %q, want %q", round, k, seen[k], want)
			}
		}
	}
}

func TestDBTombstoneDropAtBottom(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{1}, 64))
	}
	for i := 0; i < 500; i++ {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	// Force everything to the bottom level.
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Deletes != 500 {
		t.Fatalf("Deletes = %d", st.Deletes)
	}
	// Bottom-level compaction must purge all tombstones.
	if st.TombstonesLive != 0 {
		t.Errorf("%d tombstones survived full compaction", st.TombstonesLive)
	}
	// And the deleted keys must stay deleted.
	if _, err := db.Get([]byte("k0000")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key resurrected after compaction: %v", err)
	}
}

func TestDBClosed(t *testing.T) {
	db := openTestDB(t, smallOpts())
	db.Close()
	if err := db.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
	// Double close is fine.
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDBDisableWAL(t *testing.T) {
	opts := smallOpts()
	opts.DisableWAL = true
	db := openTestDB(t, opts)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if v, err := db.Get([]byte("k5")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.wal")
	w, err := openWAL(faultfs.OS, path, noRetry)
	if err != nil {
		t.Fatal(err)
	}
	w.appendRecord(walOpPut, []byte("k1"), []byte("v1"))
	w.appendRecord(walOpDelete, []byte("k2"), nil)
	w.appendRecord(walOpPut, []byte("k3"), bytes.Repeat([]byte{7}, 1000))
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		op   byte
		key  string
		vlen int
	}
	var got []rec
	err = replayWAL(faultfs.OS, path, func(op byte, key, value []byte) error {
		got = append(got, rec{op, string(key), len(value)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{{walOpPut, "k1", 2}, {walOpDelete, "k2", 0}, {walOpPut, "k3", 1000}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
}

func TestWALMissingFile(t *testing.T) {
	err := replayWAL(faultfs.OS, filepath.Join(t.TempDir(), "absent.wal"), func(byte, []byte, []byte) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDBPut(b *testing.B) {
	db, err := Open(b.TempDir(), Options{DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	key := make([]byte, 32)
	val := bytes.Repeat([]byte{1}, 100)
	b.SetBytes(132)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i))
		db.Put(key, val)
	}
}

func BenchmarkDBGet(b *testing.B) {
	db, err := Open(b.TempDir(), Options{DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	key := make([]byte, 32)
	for i := 0; i < 10000; i++ {
		binaryPut(key, uint64(i))
		db.Put(key, bytes.Repeat([]byte{1}, 100))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i%10000))
		db.Get(key)
	}
}

// binaryPut writes v big-endian into the first 8 bytes of key.
func binaryPut(key []byte, v uint64) {
	for i := 0; i < 8; i++ {
		key[i] = byte(v >> (56 - 8*i))
	}
}

// TestConcurrentReadersAndWriter: a writer and several readers race over
// the same key space; readers may see old or new values, never corruption.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("initial"))
	}
	done := make(chan error, 5)
	go func() {
		for i := 0; i < 2000; i++ {
			k := []byte(fmt.Sprintf("k%03d", i%200))
			if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("k%03d", i%200))
				v, err := db.Get(k)
				if err != nil {
					done <- fmt.Errorf("Get(%s): %w", k, err)
					return
				}
				if len(v) == 0 {
					done <- fmt.Errorf("Get(%s) returned empty value", k)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestIteratorSnapshotStability: an iterator opened before a burst of
// writes must not observe keys written after it started (it iterates a
// merged view pinned at open time).
func TestIteratorSnapshotStability(t *testing.T) {
	db := openTestDB(t, smallOpts())
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("v"))
	}
	db.Flush()
	it := db.NewIterator([]byte("a"), nil)
	defer it.Release()

	// Mutate heavily while iterating.
	n := 0
	for it.Next() {
		if n == 10 {
			for i := 100; i < 200; i++ {
				db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("new"))
			}
		}
		n++
	}
	// The iterator's sources were fixed at creation; post-open writes that
	// only exist in the new memtable may or may not surface depending on
	// timing, but the iteration must terminate and cover at least the
	// original keys.
	if n < 100 {
		t.Fatalf("iterator lost original keys: saw %d", n)
	}
}

// TestLevelsReportAndStatsProgress exercises the observability surface.
func TestLevelsReportAndStatsProgress(t *testing.T) {
	db := openTestDB(t, smallOpts())
	var lastWrite uint64
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte{byte(i)}, 40))
		if i%1000 == 999 {
			st := db.Stats()
			if st.PhysicalBytesWrite < lastWrite {
				t.Fatal("physical write counter went backwards")
			}
			lastWrite = st.PhysicalBytesWrite
		}
	}
	sizes := db.LevelSizes()
	var totalBytes int64
	for _, lvl := range sizes {
		totalBytes += lvl.Bytes
	}
	if totalBytes == 0 {
		t.Fatal("LevelSizes reports empty tree after 3000 puts")
	}
}

// TestEmptyKeyAndBinaryKeys: keys with zero length and embedded zero bytes
// must round-trip.
func TestEmptyKeyAndBinaryKeys(t *testing.T) {
	db := openTestDB(t, smallOpts())
	keys := [][]byte{
		{},
		{0x00},
		{0x00, 0x00, 0x01},
		{0xff, 0x00, 0xff},
		bytes.Repeat([]byte{0xab}, 500), // long key
	}
	for i, k := range keys {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%x): %v", k, err)
		}
	}
	db.Flush()
	for i, k := range keys {
		v, err := db.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%x) = %q, %v", k, v, err)
		}
	}
}

// TestManifestCorruptionRejected: a truncated manifest must fail Open
// rather than silently losing tables.
func TestManifestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{1}, 64))
	}
	db.Close()

	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 10 {
		t.Skip("manifest too small to truncate meaningfully")
	}
	// Truncate mid-record.
	os.WriteFile(filepath.Join(dir, "MANIFEST"), raw[:len(raw)-3], 0o644)
	if _, err := Open(dir, smallOpts()); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// TestDBTornWALGroup: a batch commits as one framed WAL group; tearing the
// group's record must drop ALL of its ops on recovery (all-or-nothing),
// while records before the group survive.
func TestDBTornWALGroup(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemtableBytes = 1 << 20 // keep everything in the memtable
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("pre"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	b.Put([]byte("g1"), []byte("v1"))
	b.Put([]byte("g2"), []byte("v2"))
	b.Delete([]byte("pre"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if err := db.wal.sync(); err != nil {
		t.Fatal(err)
	}
	// Crash without Close, with the group's record torn mid-payload.
	walPath := db.activeWALPath()
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// None of the torn group's ops may replay — not even a prefix.
	if _, err := db2.Get([]byte("g1")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("torn group replayed g1: %v", err)
	}
	if _, err := db2.Get([]byte("g2")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("torn group replayed g2: %v", err)
	}
	// The group's delete must not have applied, and earlier records survive.
	if v, err := db2.Get([]byte("pre")); err != nil || string(v) != "1" {
		t.Fatalf("record before torn group lost: %q, %v", v, err)
	}
}

// TestWALGroupRecovery: an intact group record replays every op, in batch
// order, across a simulated crash.
func TestWALGroupRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemtableBytes = 1 << 20
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("victim"), []byte("x"))
	b := db.NewBatch()
	b.Put([]byte("g1"), []byte("v1"))
	b.Delete([]byte("victim"))
	b.Put([]byte("g2"), []byte("v2"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if err := db.wal.sync(); err != nil {
		t.Fatal(err)
	}
	// Crash without Close.
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("g1")); err != nil || string(v) != "v1" {
		t.Fatalf("g1 = %q, %v", v, err)
	}
	if v, err := db2.Get([]byte("g2")); err != nil || string(v) != "v2" {
		t.Fatalf("g2 = %q, %v", v, err)
	}
	if _, err := db2.Get([]byte("victim")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("group delete lost: %v", err)
	}
}

// TestGetDuringCompaction: with compaction running in the background, a
// reader must complete while the merge is in flight — the regression this
// guards against is Put/Delete holding the exclusive lock across the whole
// compaction.
func TestGetDuringCompaction(t *testing.T) {
	opts := smallOpts()
	db := openTestDB(t, opts)
	var once sync.Once
	result := make(chan error, 1)
	db.mu.Lock()
	db.compactionHook = func() {
		// Runs inside the merge phase, with db.mu released.
		once.Do(func() {
			done := make(chan error, 1)
			go func() {
				_, err := db.Get([]byte("k0001"))
				done <- err
			}()
			select {
			case err := <-done:
				result <- err
			case <-time.After(10 * time.Second):
				result <- fmt.Errorf("Get blocked while compaction in flight")
			}
		})
	}
	db.mu.Unlock()

	db.Put([]byte("k0001"), []byte("present"))
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Put(key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().CompactionCount == 0 {
		t.Fatal("workload did not trigger a compaction")
	}
	if err := <-result; err != nil {
		t.Fatalf("concurrent Get during compaction: %v", err)
	}
}

// TestBatchValueSizeAndReset on the LSM batch implementation.
func TestLSMBatchAccounting(t *testing.T) {
	db := openTestDB(t, smallOpts())
	b := db.NewBatch()
	b.Put([]byte("abc"), []byte("defg"))
	if b.ValueSize() != 7 {
		t.Fatalf("ValueSize = %d, want 7", b.ValueSize())
	}
	b.Delete([]byte("xy"))
	if b.ValueSize() != 9 {
		t.Fatalf("ValueSize = %d, want 9", b.ValueSize())
	}
	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset")
	}
}
