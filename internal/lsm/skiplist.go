package lsm

import (
	"bytes"
	"math/rand"
)

// maxHeight bounds skiplist tower height; 2^12 entries per memtable is
// typical at our flush sizes, so 12 levels keeps searches O(log n).
const maxHeight = 12

// skipNode is one skiplist entry. A nil value paired with tombstone=true
// records a deletion marker.
type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      [maxHeight]*skipNode
}

// skiplist is a sorted map from keys to (value, tombstone) pairs.
// It is not safe for concurrent use; the memtable wraps it with a lock.
type skiplist struct {
	head   *skipNode
	height int
	length int
	bytes  int // approximate memory footprint of keys+values
	rng    *rand.Rand
}

// newSkiplist returns an empty skiplist with a deterministic height source
// seeded per-list (determinism matters for reproducible traces).
func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// randomHeight draws a tower height with P(h >= k) = 4^-(k-1), the
// LevelDB-style branching factor of 4.
func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual locates the first node with key >= target, filling
// prev with the rightmost node before the target at every level.
func (s *skiplist) findGreaterOrEqual(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// set inserts or overwrites key. tombstone=true records a delete marker.
func (s *skiplist) set(key, value []byte, tombstone bool) {
	var prev [maxHeight]*skipNode
	if node := s.findGreaterOrEqual(key, &prev); node != nil && bytes.Equal(node.key, key) {
		s.bytes += len(value) - len(node.value)
		node.value = value
		node.tombstone = tombstone
		return
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	node := &skipNode{key: key, value: value, tombstone: tombstone}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.length++
	s.bytes += len(key) + len(value)
}

// get returns the value for key. found reports presence of any entry
// (including tombstones); deleted reports the entry is a tombstone.
func (s *skiplist) get(key []byte) (value []byte, found, deleted bool) {
	node := s.findGreaterOrEqual(key, nil)
	if node == nil || !bytes.Equal(node.key, key) {
		return nil, false, false
	}
	return node.value, true, node.tombstone
}

// first returns the first node at level 0 (nil if empty).
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// seek returns the first node with key >= target.
func (s *skiplist) seek(key []byte) *skipNode {
	return s.findGreaterOrEqual(key, nil)
}

// skipIterator walks skiplist entries in key order, including tombstones.
type skipIterator struct {
	node *skipNode
	list *skiplist
	init bool
}

func (s *skiplist) iterator() *skipIterator { return &skipIterator{list: s} }

// seekGE positions the iterator at the first key >= target.
func (it *skipIterator) seekGE(key []byte) {
	it.node = it.list.seek(key)
	it.init = true
}

// next advances the iterator; the first call positions at the first entry
// unless seekGE was used.
func (it *skipIterator) next() bool {
	if !it.init {
		it.node = it.list.first()
		it.init = true
	} else if it.node != nil {
		it.node = it.node.next[0]
	}
	return it.node != nil
}

// valid reports whether the iterator is positioned on an entry.
func (it *skipIterator) valid() bool { return it.node != nil }

func (it *skipIterator) key() []byte     { return it.node.key }
func (it *skipIterator) value() []byte   { return it.node.value }
func (it *skipIterator) tombstone() bool { return it.node.tombstone }
