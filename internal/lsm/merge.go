package lsm

import "bytes"

// source is a uniform cursor over one level of the LSM tree (memtable or
// table). Sources are ordered by recency: source 0 shadows source 1, etc.
type source interface {
	// peek returns the current entry without advancing. ok=false means
	// exhausted — or failed; callers distinguish via err.
	peek() (entry, bool)
	// advance moves past the current entry.
	advance()
	// err reports why the source stopped: nil for clean exhaustion,
	// non-nil for corruption detected mid-walk.
	err() error
}

// memSource adapts a frozen skiplist iterator.
type memSource struct {
	it  *skipIterator
	cur entry
	ok  bool
}

// newMemSource returns a source over mt's entries with key >= start.
func newMemSource(mt *memtable, start []byte) *memSource {
	mt.mu.RLock()
	it := mt.list.iterator()
	mt.mu.RUnlock()
	s := &memSource{it: it}
	if start != nil {
		it.seekGE(start)
		if it.valid() {
			s.cur = entry{key: it.key(), value: it.value(), tombstone: it.tombstone()}
			s.ok = true
		}
		return s
	}
	s.advance()
	return s
}

func (s *memSource) peek() (entry, bool) { return s.cur, s.ok }

// err is always nil: memtable walks cannot fail.
func (s *memSource) err() error { return nil }

func (s *memSource) advance() {
	if s.it.next() {
		s.cur = entry{key: s.it.key(), value: s.it.value(), tombstone: s.it.tombstone()}
		s.ok = true
	} else {
		s.ok = false
	}
}

// tableSource adapts a tableIterator.
type tableSource struct {
	it  *tableIterator
	cur entry
	ok  bool
}

func newTableSource(t *tableReader, start []byte) *tableSource {
	s := &tableSource{it: t.iterator(start)}
	s.advance()
	return s
}

// newTableSourceBypass is the compaction variant: the walk streams through
// private readahead only, never consulting or populating the shared block
// cache, so a background merge cannot evict the hot point-read set.
func newTableSourceBypass(t *tableReader, start []byte) *tableSource {
	s := &tableSource{it: t.iteratorOpts(start, false)}
	s.advance()
	return s
}

func (s *tableSource) peek() (entry, bool) { return s.cur, s.ok }

// err surfaces block-framing corruption detected by the table iterator.
func (s *tableSource) err() error { return s.it.err }

func (s *tableSource) advance() {
	s.cur, s.ok = s.it.nextEntry()
}

// bytesConsumed reports block bytes this source has touched.
func (s *tableSource) bytesConsumed() int { return s.it.read }

// mergeIterator merges sources by key, resolving duplicates in favour of
// the lowest-indexed (newest) source. Tombstones are surfaced as entries
// with tombstone=true; callers decide whether to skip or keep them.
type mergeIterator struct {
	sources []source
	cur     entry
	ok      bool
	failed  error
}

func newMergeIterator(sources []source) *mergeIterator {
	return &mergeIterator{sources: sources}
}

// err reports the first source failure the merge encountered. A truncated
// source with a non-nil err poisons the whole merge: returning the surviving
// sources' entries would present a silently incomplete view.
func (m *mergeIterator) err() error { return m.failed }

// next advances to the next distinct key and reports availability.
func (m *mergeIterator) next() bool {
	if m.failed != nil {
		m.ok = false
		return false
	}
	// Find the smallest key among sources; ties resolved by source order.
	best := -1
	var bestEnt entry
	for i, s := range m.sources {
		e, ok := s.peek()
		if !ok {
			if err := s.err(); err != nil {
				m.failed = err
				m.ok = false
				return false
			}
			continue
		}
		if best == -1 || bytes.Compare(e.key, bestEnt.key) < 0 {
			best, bestEnt = i, e
		}
	}
	if best == -1 {
		m.ok = false
		return false
	}
	// Consume the winner and every older duplicate of the same key.
	for _, s := range m.sources {
		for {
			e, ok := s.peek()
			if !ok || !bytes.Equal(e.key, bestEnt.key) {
				break
			}
			s.advance()
		}
	}
	m.cur, m.ok = bestEnt, true
	return true
}

func (m *mergeIterator) entry() entry { return m.cur }
