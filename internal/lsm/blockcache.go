package lsm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// blockCache is the DB-wide cache behind demand-paged SSTable reads: point
// lookups fetch single 4 KiB data blocks through it instead of keeping
// whole tables resident. It is sharded to keep lock hold times short under
// concurrent readers — each shard is an independent LRU list with its own
// mutex and a slice of the total byte budget, and a key's shard is fixed by
// a hash of (table number, block index), so two readers of different
// blocks rarely contend.
//
// What the cache deliberately does NOT hold: iterator readahead spans
// (scans stream through private buffers so one sequential walk cannot
// evict the point-read working set) and compaction reads (the bypass walk
// never touches the cache at all). Index and bloom sections are pinned in
// their tableReaders for the reader's lifetime and only accounted here
// (pinned), never evicted.
//
// All methods tolerate a nil receiver, reading as a disabled cache:
// Options.BlockCacheBytes < 0 disables caching without a second code path
// at every call site.
type blockCache struct {
	shardCap int64 // byte budget per shard
	shards   [cacheShardCount]cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	pinned    atomic.Int64 // index+bloom bytes held by open tableReaders
}

const cacheShardCount = 16

type cacheKey struct {
	table uint64
	block int
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	table map[cacheKey]*list.Element
	bytes int64
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// newBlockCache sizes a cache for capacity total bytes; capacity <= 0
// returns nil (the disabled cache).
func newBlockCache(capacity int64) *blockCache {
	if capacity <= 0 {
		return nil
	}
	c := &blockCache{shardCap: (capacity + cacheShardCount - 1) / cacheShardCount}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].table = make(map[cacheKey]*list.Element)
	}
	return c
}

// shard maps a key to its home shard via a mixed multiplicative hash:
// adjacent blocks of one table land on different shards, so a hot scan
// range does not serialize on one mutex.
func (c *blockCache) shard(k cacheKey) *cacheShard {
	h := k.table*0x9E3779B97F4A7C15 + uint64(k.block)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &c.shards[h%cacheShardCount]
}

// get returns block's cached payload and promotes it to most recently
// used. The returned slice is shared and must be treated as read-only.
func (c *blockCache) get(table uint64, block int) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	k := cacheKey{table: table, block: block}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.table[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	data := el.Value.(*cacheEntry).data
	s.mu.Unlock()
	c.hits.Add(1)
	return data, true
}

// put inserts (or refreshes) a block payload and evicts from the cold end
// until the shard is back under budget. A single block larger than a whole
// shard is kept as the shard's only entry rather than thrashed — the
// overshoot is bounded by one block per shard.
func (c *blockCache) put(table uint64, block int, data []byte) {
	if c == nil {
		return
	}
	k := cacheKey{table: table, block: block}
	s := c.shard(k)
	var evicted uint64
	s.mu.Lock()
	if el, ok := s.table[k]; ok {
		ent := el.Value.(*cacheEntry)
		s.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		s.lru.MoveToFront(el)
	} else {
		s.table[k] = s.lru.PushFront(&cacheEntry{key: k, data: data})
		s.bytes += int64(len(data))
	}
	for s.bytes > c.shardCap && s.lru.Len() > 1 {
		back := s.lru.Back()
		ent := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.table, ent.key)
		s.bytes -= int64(len(ent.data))
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// dropTable invalidates every cached block of one table — called when the
// last reference to its tableReader is released (the table was compacted
// away and no reader can request its blocks again). Invalidations are not
// counted as evictions: they reflect table lifecycle, not cache pressure.
func (c *blockCache) dropTable(table uint64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.table {
			if k.table == table {
				s.bytes -= int64(len(el.Value.(*cacheEntry).data))
				s.lru.Remove(el)
				delete(s.table, k)
			}
		}
		s.mu.Unlock()
	}
}

// addPinned accounts index/bloom bytes pinned by an open tableReader
// (negative on release). Pinned bytes sit outside the LRU budget.
func (c *blockCache) addPinned(n int64) {
	if c == nil {
		return
	}
	c.pinned.Add(n)
}

// usedBytes reports the bytes currently held across all shards.
func (c *blockCache) usedBytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// capacityBytes reports the configured byte budget.
func (c *blockCache) capacityBytes() int64 {
	if c == nil {
		return 0
	}
	return c.shardCap * cacheShardCount
}

// pinnedBytes reports index/bloom bytes held by open tableReaders.
func (c *blockCache) pinnedBytes() int64 {
	if c == nil {
		return 0
	}
	if n := c.pinned.Load(); n > 0 {
		return n
	}
	return 0
}
