package lsm

import "sync"

// memtable is the mutable in-memory write buffer of the LSM tree. Writes go
// to a skiplist; once the footprint exceeds the flush threshold the table is
// frozen and drained to an SSTable.
type memtable struct {
	mu   sync.RWMutex
	list *skiplist
}

func newMemtable(seed int64) *memtable {
	return &memtable{list: newSkiplist(seed)}
}

// put inserts a value. Copies are taken, so callers may reuse buffers.
func (m *memtable) put(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	m.mu.Lock()
	m.list.set(k, v, false)
	m.mu.Unlock()
}

// del records a tombstone for key.
func (m *memtable) del(key []byte) {
	k := append([]byte(nil), key...)
	m.mu.Lock()
	m.list.set(k, nil, true)
	m.mu.Unlock()
}

// get looks up key. found reports any entry (live or tombstone).
func (m *memtable) get(key []byte) (value []byte, found, deleted bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.get(key)
}

// size returns the approximate byte footprint.
func (m *memtable) size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.bytes
}

// count returns the number of entries (including tombstones).
func (m *memtable) count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.length
}

// entries returns all entries in key order. The returned slices alias the
// memtable's internal buffers; callers must not mutate them. Safe because a
// memtable is frozen (no further writes) before entries is used for flush.
func (m *memtable) entries() []entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]entry, 0, m.list.length)
	for it := m.list.iterator(); it.next(); {
		out = append(out, entry{key: it.key(), value: it.value(), tombstone: it.tombstone()})
	}
	return out
}

// entry is one key-value record flowing between LSM components.
type entry struct {
	key       []byte
	value     []byte
	tombstone bool
}
