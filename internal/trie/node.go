package trie

import (
	"fmt"

	"ethkv/internal/keccak"
	"ethkv/internal/rlp"
)

// node is one trie node. Concrete types:
//
//   - *branchNode: 16 children indexed by nibble plus a value slot.
//   - *shortNode: a key segment leading to one child (extension) or to a
//     value (leaf, key has terminator).
//   - valueNode: raw stored bytes.
//   - refNode: an unresolved child persisted in the database, remembered by
//     hash; traversal resolves it by path.
type node interface{}

// nodeFlag carries the bookkeeping every interior node needs.
type nodeFlag struct {
	hash []byte // cached hash of the node's encoding (nil if dirty)
	enc  []byte // cached encoding (nil if dirty) — keeps commit and
	// proof generation O(dirty nodes): without it, encoding a parent
	// re-encodes every clean descendant subtree recursively.
	dirty     bool // node differs from its persisted form
	persisted bool // a node at this path exists in the database
}

// branchNode is a 17-slot full node.
type branchNode struct {
	children [17]node // index 16 is the value slot
	flags    nodeFlag
}

// shortNode is an extension (child is interior) or a leaf (key has the
// terminator and child is a valueNode).
type shortNode struct {
	key   []byte // HEX encoding
	child node
	flags nodeFlag
}

// valueNode holds stored bytes at a leaf or in a branch's value slot.
type valueNode []byte

// refNode is a lazy child reference: its content lives in the database at
// the path where it is encountered.
type refNode struct {
	hash []byte // 32-byte keccak of the persisted encoding
}

// encodeNode RLP-encodes n, replacing large children by their hashes
// (standard MPT node composition rule: children under 32 bytes embed).
// Interior-node encodings are memoized on the node; mutation clears them
// via markDirty.
func encodeNode(n node) []byte {
	switch n := n.(type) {
	case *shortNode:
		if n.flags.enc != nil {
			return n.flags.enc
		}
		enc := rlp.EncodeList(
			rlp.EncodeString(hexToCompact(n.key)),
			encodeChild(n.child),
		)
		n.flags.enc = enc
		return enc
	case *branchNode:
		if n.flags.enc != nil {
			return n.flags.enc
		}
		items := make([][]byte, 17)
		for i := 0; i < 16; i++ {
			if n.children[i] == nil {
				items[i] = rlp.EncodeString(nil)
			} else {
				items[i] = encodeChild(n.children[i])
			}
		}
		if v, ok := n.children[16].(valueNode); ok {
			items[16] = rlp.EncodeString(v)
		} else {
			items[16] = rlp.EncodeString(nil)
		}
		enc := rlp.EncodeList(items...)
		n.flags.enc = enc
		return enc
	case valueNode:
		return rlp.EncodeString(n)
	default:
		panic(fmt.Sprintf("trie: cannot encode %T", n))
	}
}

// encodeChild produces the reference encoding of a child: the embedded
// encoding if it is under 32 bytes, else the RLP string of its hash.
func encodeChild(child node) []byte {
	switch c := child.(type) {
	case refNode:
		return rlp.EncodeString(c.hash)
	case valueNode:
		return rlp.EncodeString(c)
	default:
		enc := encodeNode(child)
		if len(enc) < 32 {
			return enc
		}
		return rlp.EncodeString(cachedHash(child))
	}
}

// hashNode returns the canonical 32-byte hash of a node's encoding.
func hashNode(n node) [32]byte {
	return keccak.Hash256(encodeNode(n))
}

// cachedHash returns (computing and caching if needed) the node's hash.
func cachedHash(n node) []byte {
	switch n := n.(type) {
	case *shortNode:
		if n.flags.hash == nil {
			h := hashNode(n)
			n.flags.hash = h[:]
		}
		return n.flags.hash
	case *branchNode:
		if n.flags.hash == nil {
			h := hashNode(n)
			n.flags.hash = h[:]
		}
		return n.flags.hash
	case refNode:
		return n.hash
	default:
		h := hashNode(n)
		return h[:]
	}
}

// decodeNode parses a persisted node encoding. Embedded children decode
// inline; hashed children become refNodes.
func decodeNode(blob []byte) (node, error) {
	items, err := rlp.SplitList(blob)
	if err != nil {
		return nil, fmt.Errorf("trie: undecodable node: %w", err)
	}
	switch len(items) {
	case 2:
		compact, err := rlp.DecodeString(items[0])
		if err != nil {
			return nil, fmt.Errorf("trie: short node key: %w", err)
		}
		key := compactToHex(compact)
		var child node
		if hasTerm(key) {
			v, err := rlp.DecodeString(items[1])
			if err != nil {
				return nil, fmt.Errorf("trie: leaf value: %w", err)
			}
			child = valueNode(append([]byte(nil), v...))
		} else {
			child, err = decodeChild(items[1])
			if err != nil {
				return nil, err
			}
			if child == nil {
				return nil, fmt.Errorf("trie: extension node with empty child")
			}
		}
		return &shortNode{
			key:   key,
			child: child,
			flags: nodeFlag{persisted: true},
		}, nil
	case 17:
		bn := &branchNode{flags: nodeFlag{persisted: true}}
		for i := 0; i < 16; i++ {
			child, err := decodeChild(items[i])
			if err != nil {
				return nil, err
			}
			bn.children[i] = child
		}
		v, err := rlp.DecodeString(items[16])
		if err != nil {
			return nil, fmt.Errorf("trie: branch value: %w", err)
		}
		if len(v) > 0 {
			bn.children[16] = valueNode(append([]byte(nil), v...))
		}
		return bn, nil
	default:
		return nil, fmt.Errorf("trie: invalid node arity %d", len(items))
	}
}

// decodeChild parses one child reference inside a persisted node.
func decodeChild(raw []byte) (node, error) {
	d := rlp.NewDecoder(raw)
	kind, err := d.Kind()
	if err != nil {
		return nil, err
	}
	if kind == rlp.KindList {
		// Embedded small node.
		return decodeNode(raw)
	}
	s, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	switch len(s) {
	case 0:
		return nil, nil
	case 32:
		return refNode{hash: append([]byte(nil), s...)}, nil
	default:
		return nil, fmt.Errorf("trie: child reference of %d bytes", len(s))
	}
}
