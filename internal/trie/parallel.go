package trie

import "sync"

// Parallel commit and hash: the expensive part of committing a trie is
// keccak-hashing and RLP-encoding the dirty region, which is pure CPU work
// over a proper tree — the root branch's 16 subtrees are disjoint node sets,
// so they hash concurrently without synchronization (the same decomposition
// Geth's hasher uses). None of this touches the NodeReader: all database
// resolution happened during Update/Delete, so parallel commit leaves the
// KV-op stream untouched.

// interiorNode reports whether n carries commit/hash work of its own.
func interiorNode(n node) bool {
	switch n.(type) {
	case *shortNode, *branchNode:
		return true
	default:
		return false
	}
}

// forEachRootSubtree fans fn over the root branch's non-trivial children on
// up to workers goroutines and waits for completion. The caller must have
// checked that the root is a branch node.
func forEachRootSubtree(b *branchNode, workers int, fn func(idx int, child node)) {
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		child := b.children[i]
		if child == nil || !interiorNode(child) {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, c node) {
			defer wg.Done()
			fn(idx, c)
			<-sem
		}(i, child)
	}
	wg.Wait()
}

// HashParallel returns the root hash, fanning the keccak work of the root
// branch's subtrees across up to workers goroutines. workers <= 1 (or a
// non-branch root) is exactly Hash.
func (t *Trie) HashParallel(workers int) [32]byte {
	b, ok := t.root.(*branchNode)
	if workers <= 1 || !ok || b.flags.hash != nil {
		return t.Hash()
	}
	forEachRootSubtree(b, workers, func(_ int, c node) {
		cachedHash(c)
	})
	return t.Hash()
}

// CommitParallel is Commit with the dirty-subtree encoding fanned across up
// to workers goroutines. Each subtree commits into a private NodeSet shard;
// the shards merge before the root and dead-path bookkeeping run, so the
// resulting NodeSet holds exactly the same writes and deletes as the
// sequential walk (Deletes may be ordered differently; every consumer
// treats them as a set). workers <= 1 is exactly Commit.
func (t *Trie) CommitParallel(workers int) (*NodeSet, [32]byte) {
	b, ok := t.root.(*branchNode)
	if workers <= 1 || !ok || !b.flags.dirty {
		return t.Commit()
	}
	var shards [16]*NodeSet
	forEachRootSubtree(b, workers, func(idx int, c node) {
		shard := &NodeSet{Writes: make(map[string][]byte)}
		t.commitNode(c, []byte{byte(idx)}, shard)
		shards[idx] = shard
	})
	set := &NodeSet{Writes: make(map[string][]byte)}
	for _, shard := range shards {
		if shard == nil {
			continue
		}
		for path, enc := range shard.Writes {
			set.Writes[path] = enc
		}
		set.Deletes = append(set.Deletes, shard.Deletes...)
	}
	// The subtrees are clean now; this encodes the root (and any trivial
	// children) exactly like the tail of the sequential walk.
	t.commitNode(t.root, nil, set)
	for path := range t.dead {
		if _, rewritten := set.Writes[path]; !rewritten {
			set.Deletes = append(set.Deletes, path)
		}
	}
	t.dead = make(map[string]struct{})
	return set, t.Hash()
}

// CommitHashedParallel is CommitHashed with the same subtree fan-out as
// CommitParallel. workers <= 1 is exactly CommitHashed.
func (t *Trie) CommitHashedParallel(workers int) (map[string][]byte, [32]byte) {
	b, ok := t.root.(*branchNode)
	if workers <= 1 || !ok || !b.flags.dirty {
		return t.CommitHashed()
	}
	var shards [16]map[string][]byte
	forEachRootSubtree(b, workers, func(idx int, c node) {
		shard := make(map[string][]byte)
		t.commitHashedNode(c, shard)
		shards[idx] = shard
	})
	writes := make(map[string][]byte)
	for _, shard := range shards {
		for h, enc := range shard {
			writes[h] = enc
		}
	}
	t.commitHashedNode(t.root, writes)
	t.dead = make(map[string]struct{})
	return writes, t.Hash()
}
