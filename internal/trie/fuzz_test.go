package trie

import "testing"

// FuzzDecodeNode: persisted-node parsing must never panic.
func FuzzDecodeNode(f *testing.F) {
	leaf := &shortNode{key: keybytesToHex([]byte{0xab}), child: valueNode("v")}
	f.Add(encodeNode(leaf))
	bn := &branchNode{}
	bn.children[16] = valueNode("x")
	f.Add(encodeNode(bn))
	f.Add([]byte{0xc1, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodeNode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking.
		_ = encodeNode(n)
	})
}
