package trie

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathStore is a minimal path-keyed node database for tests.
type pathStore struct {
	nodes map[string][]byte
}

func newPathStore() *pathStore { return &pathStore{nodes: make(map[string][]byte)} }

func (s *pathStore) ReadNode(path []byte) ([]byte, error) {
	blob, ok := s.nodes[string(path)]
	if !ok {
		return nil, ErrNodeNotFound
	}
	return blob, nil
}

// apply commits a NodeSet into the store.
func (s *pathStore) apply(set *NodeSet) {
	for path, blob := range set.Writes {
		s.nodes[path] = blob
	}
	for _, path := range set.Deletes {
		delete(s.nodes, path)
	}
}

func TestHexCompactRoundTrip(t *testing.T) {
	f := func(raw []byte, leaf bool) bool {
		if len(raw) == 0 {
			return true
		}
		// Build a hex key of arbitrary nibble length.
		hexKey := keybytesToHex(raw)
		if !leaf {
			hexKey = hexKey[:len(hexKey)-1] // strip terminator
		}
		// Odd-length variant.
		for _, k := range [][]byte{hexKey, hexKey[1:]} {
			if len(k) == 0 {
				continue
			}
			back := compactToHex(hexToCompact(k))
			if !bytes.Equal(back, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeybytesHexRoundTrip(t *testing.T) {
	f := func(key []byte) bool {
		return bytes.Equal(hexToKeybytes(keybytesToHex(key)), key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTrieRoot(t *testing.T) {
	tr := NewEmpty()
	// keccak256(rlp("")) — the canonical empty MPT root.
	want := "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
	if got := hex.EncodeToString(h32(tr.Hash())); got != want {
		t.Fatalf("empty root = %s, want %s", got, want)
	}
}

func h32(h [32]byte) []byte { return h[:] }

func TestGetUpdateDelete(t *testing.T) {
	tr := NewEmpty()
	if err := tr.Update([]byte("key1"), []byte("val1")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("key1"))
	if err != nil || string(v) != "val1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if v, _ := tr.Get([]byte("absent")); v != nil {
		t.Fatalf("absent key returned %q", v)
	}
	tr.Update([]byte("key1"), []byte("val2"))
	if v, _ := tr.Get([]byte("key1")); string(v) != "val2" {
		t.Fatalf("after update: %q", v)
	}
	tr.Delete([]byte("key1"))
	if v, _ := tr.Get([]byte("key1")); v != nil {
		t.Fatalf("after delete: %q", v)
	}
	if tr.Hash() != EmptyRoot {
		t.Fatal("deleting the only key must restore the empty root")
	}
}

// TestRootOrderIndependence: the MPT root must depend only on content.
func TestRootOrderIndependence(t *testing.T) {
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("account-%02d", i))
	}
	build := func(perm []int) [32]byte {
		tr := NewEmpty()
		for _, i := range perm {
			tr.Update(keys[i], []byte(fmt.Sprintf("balance-%d", i)))
		}
		return tr.Hash()
	}
	base := make([]int, len(keys))
	for i := range base {
		base[i] = i
	}
	want := build(base)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 5; round++ {
		perm := rng.Perm(len(keys))
		if got := build(perm); got != want {
			t.Fatalf("root differs for permutation %d", round)
		}
	}
}

// TestInsertDeleteRestoresRoot: adding then removing keys must restore the
// exact prior root (Merkle structure is canonical).
func TestInsertDeleteRestoresRoot(t *testing.T) {
	tr := NewEmpty()
	for i := 0; i < 30; i++ {
		tr.Update([]byte(fmt.Sprintf("base-%d", i)), []byte("v"))
	}
	before := tr.Hash()
	for i := 0; i < 20; i++ {
		tr.Update([]byte(fmt.Sprintf("extra-%d", i)), []byte("x"))
	}
	if tr.Hash() == before {
		t.Fatal("root should change after inserts")
	}
	for i := 0; i < 20; i++ {
		tr.Delete([]byte(fmt.Sprintf("extra-%d", i)))
	}
	if tr.Hash() != before {
		t.Fatal("root not restored after deleting the inserted keys")
	}
}

// TestCommitReloadRoundTrip: committed tries must reload from the path
// store with identical content and root.
func TestCommitReloadRoundTrip(t *testing.T) {
	store := newPathStore()
	tr, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := fmt.Sprintf("value-%d", i*7)
		tr.Update([]byte(k), []byte(v))
		model[k] = v
	}
	set, root := tr.Commit()
	store.apply(set)

	tr2, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Hash() != root {
		t.Fatalf("reloaded root %x != committed %x", tr2.Hash(), root)
	}
	for k, want := range model {
		v, err := tr2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("reload Get(%s) = %q, %v", k, v, err)
		}
	}
	if tr2.Resolves() == 0 {
		t.Fatal("reload should have resolved nodes from the store")
	}
}

// TestIncrementalEqualsFreshBuild is the core path-based storage invariant:
// a store maintained through arbitrary incremental commits (with deletions)
// must end up byte-identical to a store built fresh from the final content.
// Any stale or missing path breaks this.
func TestIncrementalEqualsFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := newPathStore()
	tr, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for round := 0; round < 20; round++ {
		for op := 0; op < 50; op++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(300))
			if rng.Intn(3) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%d-%d", round, op)
				tr.Update([]byte(k), []byte(v))
				model[k] = v
			}
		}
		set, _ := tr.Commit()
		store.apply(set)
	}

	// Fresh build from the final model.
	freshStore := newPathStore()
	fresh, _ := New(freshStore)
	for k, v := range model {
		fresh.Update([]byte(k), []byte(v))
	}
	set, freshRoot := fresh.Commit()
	freshStore.apply(set)

	// Reload incremental trie; roots must agree.
	reloaded, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Hash() != freshRoot {
		t.Fatalf("incremental root %x != fresh root %x", reloaded.Hash(), freshRoot)
	}
	// Store contents must be identical path-for-path.
	if len(store.nodes) != len(freshStore.nodes) {
		t.Fatalf("incremental store has %d paths, fresh has %d",
			len(store.nodes), len(freshStore.nodes))
	}
	for path, blob := range freshStore.nodes {
		got, ok := store.nodes[path]
		if !ok {
			t.Fatalf("path %x missing from incremental store", path)
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("path %x differs between stores", path)
		}
	}
}

// TestModelProperty compares trie reads against a map model after random
// op sequences with intermediate commits.
func TestModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := newPathStore()
		tr, _ := New(store)
		model := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(80))
			if rng.Intn(4) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				tr.Update([]byte(k), []byte(v))
				model[k] = v
			}
			if i%37 == 0 {
				set, _ := tr.Commit()
				store.apply(set)
				tr, _ = New(store) // reload from disk
			}
		}
		for k, want := range model {
			v, err := tr.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitProducesUpdatesNotDuplicates(t *testing.T) {
	store := newPathStore()
	tr, _ := New(store)
	tr.Update([]byte("alpha"), []byte("1"))
	set, _ := tr.Commit()
	store.apply(set)
	before := len(store.nodes)

	// Updating the same key must overwrite paths, not add new ones.
	tr2, _ := New(store)
	tr2.Update([]byte("alpha"), []byte("2"))
	set2, _ := tr2.Commit()
	store.apply(set2)
	if len(store.nodes) != before {
		t.Fatalf("update grew the store from %d to %d paths", before, len(store.nodes))
	}
}

func TestLargeValues(t *testing.T) {
	tr := NewEmpty()
	big := bytes.Repeat([]byte{0x7e}, 10000)
	tr.Update([]byte("big"), big)
	v, err := tr.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value round-trip: %v", err)
	}
}

func TestDeleteAbsentKeyNoChange(t *testing.T) {
	tr := NewEmpty()
	tr.Update([]byte("exists"), []byte("v"))
	before := tr.Hash()
	tr.Delete([]byte("absent"))
	if tr.Hash() != before {
		t.Fatal("deleting an absent key changed the root")
	}
}

func TestEmptyValueDeletes(t *testing.T) {
	tr := NewEmpty()
	tr.Update([]byte("k"), []byte("v"))
	tr.Update([]byte("k"), nil) // empty value = delete per Ethereum semantics
	if tr.Hash() != EmptyRoot {
		t.Fatal("empty-value update must delete")
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	// Leaf.
	leaf := &shortNode{key: keybytesToHex([]byte{0xab, 0xcd}), child: valueNode("hello")}
	dec, err := decodeNode(encodeNode(leaf))
	if err != nil {
		t.Fatal(err)
	}
	decLeaf, ok := dec.(*shortNode)
	if !ok || !bytes.Equal(decLeaf.key, leaf.key) || string(decLeaf.child.(valueNode)) != "hello" {
		t.Fatalf("leaf round-trip mismatch: %#v", dec)
	}
	// Branch with value and two hashed children.
	bn := &branchNode{}
	bn.children[3] = refNode{hash: bytes.Repeat([]byte{1}, 32)}
	bn.children[7] = refNode{hash: bytes.Repeat([]byte{2}, 32)}
	bn.children[16] = valueNode("val")
	dec, err = decodeNode(encodeNode(bn))
	if err != nil {
		t.Fatal(err)
	}
	decBn, ok := dec.(*branchNode)
	if !ok {
		t.Fatalf("branch decoded to %T", dec)
	}
	if r, ok := decBn.children[3].(refNode); !ok || r.hash[0] != 1 {
		t.Fatal("child 3 ref lost")
	}
	if v, ok := decBn.children[16].(valueNode); !ok || string(v) != "val" {
		t.Fatal("branch value lost")
	}
	if decBn.children[0] != nil {
		t.Fatal("empty child decoded as non-nil")
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, blob := range [][]byte{nil, {0x00}, {0xc1, 0x80}, bytes.Repeat([]byte{0xff}, 40)} {
		if _, err := decodeNode(blob); err == nil {
			t.Errorf("decodeNode(%x) succeeded on garbage", blob)
		}
	}
}

func TestResolveCountsReads(t *testing.T) {
	store := newPathStore()
	tr, _ := New(store)
	for i := 0; i < 100; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%03d", i)), []byte("value"))
	}
	set, _ := tr.Commit()
	store.apply(set)

	tr2, _ := New(store)
	base := tr2.Resolves()
	tr2.Get([]byte("key-050"))
	if tr2.Resolves() <= base {
		t.Fatal("Get on cold trie should resolve nodes")
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	tr := NewEmpty()
	key := make([]byte, 20)
	val := bytes.Repeat([]byte{1}, 80)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		tr.Update(key, val)
	}
}

func BenchmarkTrieGetCommitted(b *testing.B) {
	store := newPathStore()
	tr, _ := New(store)
	for i := 0; i < 10000; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte{1}, 80))
	}
	set, _ := tr.Commit()
	store.apply(set)
	tr2, _ := New(store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr2.Get([]byte(fmt.Sprintf("key-%06d", i%10000)))
	}
}

// TestHashKeyedVsPathKeyedGrowth is the storage-model ablation of §II-A:
// over repeated commits of the same mutating key set, hash-keyed storage
// accumulates redundant node versions while path-keyed storage stays flat.
func TestHashKeyedVsPathKeyedGrowth(t *testing.T) {
	// Path-keyed: incremental commits into one store.
	pathStoreDB := newPathStore()
	pathTrie, _ := New(pathStoreDB)
	// Hash-keyed: accumulate hash-keyed writes (no deletion mechanism).
	hashStore := map[string][]byte{}
	hashTrie := NewEmpty()

	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			k := []byte(fmt.Sprintf("acct-%03d", i))
			v := []byte(fmt.Sprintf("balance-%d-%d", round, i))
			pathTrie.Update(k, v)
			hashTrie.Update(k, v)
		}
		set, pathRoot := pathTrie.Commit()
		pathStoreDB.apply(set)
		writes, hashRoot := hashTrie.CommitHashed()
		for k, v := range writes {
			hashStore[k] = v
		}
		if pathRoot != hashRoot {
			t.Fatalf("round %d: roots diverged", round)
		}
	}
	// The path store holds exactly the live nodes; the hash store holds
	// every version ever written.
	if len(hashStore) <= len(pathStoreDB.nodes)*3 {
		t.Fatalf("hash-keyed store (%d nodes) should far exceed path-keyed (%d): the PBSS redundancy claim",
			len(hashStore), len(pathStoreDB.nodes))
	}
	t.Logf("after 10 rounds: path-keyed %d nodes, hash-keyed %d nodes (%.1fx redundancy)",
		len(pathStoreDB.nodes), len(hashStore), float64(len(hashStore))/float64(len(pathStoreDB.nodes)))
}

// TestCommitHashedRootMatchesPathCommit: both storage models must agree on
// the Merkle root (they persist the same logical trie).
func TestCommitHashedRootMatchesPathCommit(t *testing.T) {
	a := NewEmpty()
	b := NewEmpty()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		a.Update(k, []byte("v"))
		b.Update(k, []byte("v"))
	}
	_, rootA := a.Commit()
	_, rootB := b.CommitHashed()
	if rootA != rootB {
		t.Fatal("storage model changed the Merkle root")
	}
}

func TestLeavesWalk(t *testing.T) {
	store := newPathStore()
	tr, _ := New(store)
	model := map[string]string{}
	for i := 0; i < 150; i++ {
		k := fmt.Sprintf("acct-%03d", i)
		v := fmt.Sprintf("val-%d", i)
		tr.Update([]byte(k), []byte(v))
		model[k] = v
	}
	set, _ := tr.Commit()
	store.apply(set)

	// Walk from a cold reload: resolution runs through the store.
	cold, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	var paths [][]byte
	seen := map[string]bool{}
	err = cold.Leaves(func(hexPath, value []byte) bool {
		paths = append(paths, append([]byte(nil), hexPath...))
		seen[string(value)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 150 {
		t.Fatalf("walked %d leaves, want 150", len(paths))
	}
	// Values all observed.
	for _, v := range model {
		if !seen[v] {
			t.Fatalf("value %q missing from walk", v)
		}
	}
	// Paths ascend lexicographically (trie order).
	for i := 1; i < len(paths); i++ {
		if bytes.Compare(paths[i-1], paths[i]) >= 0 {
			t.Fatalf("leaf paths out of order at %d", i)
		}
	}
	// Every path is a full 64-nibble hashed key.
	for _, p := range paths {
		if len(p) != 64 {
			t.Fatalf("leaf path length %d, want 64 nibbles", len(p))
		}
	}

	if n, err := cold.LeafCount(); err != nil || n != 150 {
		t.Fatalf("LeafCount = %d, %v", n, err)
	}
}

func TestLeavesEarlyStop(t *testing.T) {
	tr := NewEmpty()
	for i := 0; i < 50; i++ {
		tr.Update([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	n := 0
	err := tr.Leaves(func([]byte, []byte) bool {
		n++
		return n < 7
	})
	if err != nil || n != 7 {
		t.Fatalf("early stop at %d, %v", n, err)
	}
	// Empty trie walks nothing.
	if n, err := NewEmpty().LeafCount(); err != nil || n != 0 {
		t.Fatalf("empty LeafCount = %d, %v", n, err)
	}
}
