package trie

import "fmt"

// Leaves walks every leaf of the trie in ascending (hashed-key) order,
// resolving nodes from the reader as needed, and calls fn with each leaf's
// full hex path (without terminator) and value. fn returning false stops
// the walk early. This is the traversal Geth's snapshot generator performs
// when it builds the flat layer from the trie.
func (t *Trie) Leaves(fn func(hexPath []byte, value []byte) bool) error {
	if t.root == nil {
		return nil
	}
	_, err := t.walkLeaves(t.root, nil, fn)
	return err
}

// walkLeaves recursively visits leaves under n at the given path prefix.
// It returns false when the walk should stop.
func (t *Trie) walkLeaves(n node, prefix []byte, fn func([]byte, []byte) bool) (bool, error) {
	switch n := n.(type) {
	case nil:
		return true, nil
	case valueNode:
		return fn(append([]byte(nil), prefix...), n), nil
	case *shortNode:
		childPrefix := append(append([]byte(nil), prefix...), n.key...)
		if hasTerm(n.key) {
			v, ok := n.child.(valueNode)
			if !ok {
				return false, fmt.Errorf("trie: leaf without value at %x", childPrefix)
			}
			// Strip the terminator from the reported path.
			return fn(childPrefix[:len(childPrefix)-1], v), nil
		}
		return t.walkLeaves(n.child, childPrefix, fn)
	case *branchNode:
		for i := 0; i < 16; i++ {
			if n.children[i] == nil {
				continue
			}
			cont, err := t.walkLeaves(n.children[i], append(append([]byte(nil), prefix...), byte(i)), fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		if v, ok := n.children[16].(valueNode); ok {
			return fn(append([]byte(nil), prefix...), v), nil
		}
		return true, nil
	case refNode:
		resolved, err := t.resolve(n, prefix)
		if err != nil {
			return false, err
		}
		return t.walkLeaves(resolved, prefix, fn)
	default:
		return false, fmt.Errorf("trie: walk on %T", n)
	}
}

// LeafCount walks the whole trie and returns the number of stored values.
func (t *Trie) LeafCount() (int, error) {
	n := 0
	err := t.Leaves(func([]byte, []byte) bool {
		n++
		return true
	})
	return n, err
}
