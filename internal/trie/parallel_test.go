package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// workerCounts are the fan-out widths every equivalence test exercises.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// buildDirtyTrie produces a trie with a committed base plus a dirty delta
// (updates and deletes), the shape every block commit has: persisted nodes,
// dead paths, and fresh writes all present.
func buildDirtyTrie(t *testing.T, seed int64) (*Trie, *pathStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store := newPathStore()
	tr, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	set, _ := tr.Commit()
	store.apply(set)
	// Dirty delta over the committed base.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(500))
		if rng.Intn(4) == 0 {
			tr.Delete([]byte(k))
		} else {
			tr.Update([]byte(k), []byte(fmt.Sprintf("new-%d-%d", seed, i)))
		}
	}
	return tr, store
}

func sortedDeletes(set *NodeSet) []string {
	out := append([]string(nil), set.Deletes...)
	sort.Strings(out)
	return out
}

// TestCommitParallelEquivalence: CommitParallel at every worker count must
// produce the identical root hash and NodeSet contents as the sequential
// Commit on an identically-built trie.
func TestCommitParallelEquivalence(t *testing.T) {
	for _, workers := range workerCounts() {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seqTrie, seqStore := buildDirtyTrie(t, 7)
			parTrie, parStore := buildDirtyTrie(t, 7)

			seqSet, seqRoot := seqTrie.Commit()
			parSet, parRoot := parTrie.CommitParallel(workers)

			if seqRoot != parRoot {
				t.Fatalf("root mismatch: seq %x par %x", seqRoot, parRoot)
			}
			if len(seqSet.Writes) != len(parSet.Writes) {
				t.Fatalf("writes: seq %d paths, par %d", len(seqSet.Writes), len(parSet.Writes))
			}
			for path, enc := range seqSet.Writes {
				got, ok := parSet.Writes[path]
				if !ok {
					t.Fatalf("path %x missing from parallel writes", path)
				}
				if !bytes.Equal(got, enc) {
					t.Fatalf("path %x encoding differs", path)
				}
			}
			sd, pd := sortedDeletes(seqSet), sortedDeletes(parSet)
			if fmt.Sprint(sd) != fmt.Sprint(pd) {
				t.Fatalf("deletes differ:\nseq %x\npar %x", sd, pd)
			}
			// Applying both deltas must leave identical stores, and both
			// tries must be reloadable to the same root.
			seqStore.apply(seqSet)
			parStore.apply(parSet)
			if len(seqStore.nodes) != len(parStore.nodes) {
				t.Fatalf("store sizes differ: %d vs %d", len(seqStore.nodes), len(parStore.nodes))
			}
			reloaded, err := New(parStore)
			if err != nil {
				t.Fatal(err)
			}
			if reloaded.Hash() != seqRoot {
				t.Fatalf("reloaded parallel store root %x != %x", reloaded.Hash(), seqRoot)
			}
		})
	}
}

// TestCommitHashedParallelEquivalence mirrors the path-keyed test for the
// hash-keyed (pre-PBSS) commit used by the storage-model ablation.
func TestCommitHashedParallelEquivalence(t *testing.T) {
	for _, workers := range workerCounts() {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seqTrie, _ := buildDirtyTrie(t, 13)
			parTrie, _ := buildDirtyTrie(t, 13)

			seqWrites, seqRoot := seqTrie.CommitHashed()
			parWrites, parRoot := parTrie.CommitHashedParallel(workers)

			if seqRoot != parRoot {
				t.Fatalf("root mismatch: seq %x par %x", seqRoot, parRoot)
			}
			if len(seqWrites) != len(parWrites) {
				t.Fatalf("writes: seq %d, par %d", len(seqWrites), len(parWrites))
			}
			for h, enc := range seqWrites {
				got, ok := parWrites[h]
				if !ok {
					t.Fatalf("hash %x missing from parallel writes", h)
				}
				if !bytes.Equal(got, enc) {
					t.Fatalf("hash %x encoding differs", h)
				}
			}
		})
	}
}

// TestHashParallelEquivalence: the fanned-out hash must equal the
// sequential one on dirty tries of several shapes.
func TestHashParallelEquivalence(t *testing.T) {
	for _, workers := range workerCounts() {
		seqTrie, _ := buildDirtyTrie(t, 21)
		parTrie, _ := buildDirtyTrie(t, 21)
		if seq, par := seqTrie.Hash(), parTrie.HashParallel(workers); seq != par {
			t.Fatalf("workers=%d: hash mismatch %x vs %x", workers, seq, par)
		}
	}
	// Degenerate shapes: empty trie and single-leaf root (non-branch root).
	empty := NewEmpty()
	if empty.HashParallel(4) != empty.Hash() {
		t.Fatal("empty trie parallel hash differs")
	}
	leaf := NewEmpty()
	leaf.Update([]byte("only"), []byte("one"))
	leafSeq := NewEmpty()
	leafSeq.Update([]byte("only"), []byte("one"))
	if leaf.HashParallel(4) != leafSeq.Hash() {
		t.Fatal("single-leaf parallel hash differs")
	}
}

// TestCommitParallelThenIncremental: a trie committed in parallel must keep
// working for further updates and commits (flags fully settled).
func TestCommitParallelThenIncremental(t *testing.T) {
	tr, store := buildDirtyTrie(t, 33)
	set, _ := tr.CommitParallel(4)
	store.apply(set)
	for i := 0; i < 50; i++ {
		tr.Update([]byte(fmt.Sprintf("post-%03d", i)), []byte("x"))
	}
	set2, root2 := tr.CommitParallel(4)
	store.apply(set2)
	reloaded, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Hash() != root2 {
		t.Fatalf("reloaded root %x != %x after incremental parallel commits", reloaded.Hash(), root2)
	}
}
