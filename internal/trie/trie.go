// Package trie implements Ethereum's Merkle Patricia Trie with the
// path-based storage model Geth adopted in its PBSS rework: persisted nodes
// are keyed by their traversal path rather than their hash, which removes
// redundant entries (one slot per path, updates overwrite in place) and
// makes obsolete-node deletion cheap. Both properties shape the KV workload
// the paper measures (low delete rates in TrieNode* classes, Finding 5).
//
// Keys are hashed with Keccak-256 before insertion ("secure trie"), exactly
// as Geth stores accounts and contract slots.
package trie

import (
	"errors"
	"fmt"

	"ethkv/internal/keccak"
)

// NodeReader loads the persisted encoding of the node at a nibble path.
// Implementations return ErrNodeNotFound for absent paths.
type NodeReader interface {
	ReadNode(path []byte) ([]byte, error)
}

// ErrNodeNotFound is returned by NodeReader for paths with no node.
var ErrNodeNotFound = errors.New("trie: node not found")

// NodeSet is the output of Commit: the persisted-node delta of one trie.
type NodeSet struct {
	// Writes maps nibble paths to new node encodings. A path already in
	// the database is an update; a fresh path is an insert.
	Writes map[string][]byte
	// Deletes lists paths whose nodes became obsolete.
	Deletes []string
}

// Trie is a mutable Merkle Patricia Trie bound to a node reader.
type Trie struct {
	root   node
	reader NodeReader
	// dead accumulates paths of persisted nodes removed by restructuring,
	// to be deleted at commit (unless re-written).
	dead map[string]struct{}
	// resolves counts database node loads, for instrumentation.
	resolves int
}

// New opens a trie. If the reader holds a node at the empty path, it
// becomes the root; otherwise the trie starts empty.
func New(reader NodeReader) (*Trie, error) {
	t := &Trie{reader: reader, dead: make(map[string]struct{})}
	blob, err := reader.ReadNode(nil)
	if errors.Is(err, ErrNodeNotFound) {
		return t, nil
	}
	if err != nil {
		return nil, err
	}
	t.resolves++
	root, err := decodeNode(blob)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// NewEmpty returns a fresh in-memory trie with no backing nodes.
func NewEmpty() *Trie {
	return &Trie{reader: emptyReader{}, dead: make(map[string]struct{})}
}

// emptyReader is a NodeReader with no nodes.
type emptyReader struct{}

func (emptyReader) ReadNode([]byte) ([]byte, error) { return nil, ErrNodeNotFound }

// Resolves reports how many nodes were loaded from the reader so far.
func (t *Trie) Resolves() int { return t.resolves }

// Get returns the value stored under key (nil, ErrNodeNotFound if absent...
// actually nil,nil). The key is hashed per the secure-trie convention.
func (t *Trie) Get(key []byte) ([]byte, error) {
	hex := securePath(key)
	v, newRoot, err := t.get(t.root, nil, hex)
	if err != nil {
		return nil, err
	}
	t.root = newRoot
	return v, nil
}

// get walks down from n at path prefix looking for the remaining key.
// It returns a possibly-updated node (refs resolve in place).
func (t *Trie) get(n node, prefix, key []byte) ([]byte, node, error) {
	switch n := n.(type) {
	case nil:
		return nil, nil, nil
	case valueNode:
		return n, n, nil
	case *shortNode:
		if len(key) < len(n.key) || !bytesEqual(key[:len(n.key)], n.key) {
			return nil, n, nil
		}
		v, child, err := t.get(n.child, append(prefix, n.key...), key[len(n.key):])
		if err != nil {
			return nil, n, err
		}
		n.child = child
		return v, n, nil
	case *branchNode:
		if len(key) == 0 {
			if v, ok := n.children[16].(valueNode); ok {
				return v, n, nil
			}
			return nil, n, nil
		}
		idx := key[0]
		v, child, err := t.get(n.children[idx], append(prefix, idx), key[1:])
		if err != nil {
			return nil, n, err
		}
		n.children[idx] = child
		return v, n, nil
	case refNode:
		resolved, err := t.resolve(n, prefix)
		if err != nil {
			return nil, n, err
		}
		return t.get(resolved, prefix, key)
	default:
		panic(fmt.Sprintf("trie: get on %T", n))
	}
}

// resolve loads the node behind a refNode from the database by path.
func (t *Trie) resolve(ref refNode, path []byte) (node, error) {
	blob, err := t.reader.ReadNode(path)
	if err != nil {
		return nil, fmt.Errorf("trie: resolving %x: %w", path, err)
	}
	t.resolves++
	return decodeNode(blob)
}

// Update stores value under key. An empty value deletes the key.
func (t *Trie) Update(key, value []byte) error {
	hex := securePath(key)
	if len(value) == 0 {
		newRoot, _, err := t.del(t.root, nil, hex)
		if err != nil {
			return err
		}
		t.root = newRoot
		return nil
	}
	newRoot, _, err := t.insert(t.root, nil, hex, valueNode(append([]byte(nil), value...)))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// Delete removes key from the trie.
func (t *Trie) Delete(key []byte) error {
	return t.Update(key, nil)
}

// insert adds value at key below n (path prefix). Returns the new subtree
// root and whether it changed.
func (t *Trie) insert(n node, prefix, key []byte, value valueNode) (node, bool, error) {
	switch n := n.(type) {
	case nil:
		return &shortNode{key: key, child: value, flags: nodeFlag{dirty: true}}, true, nil

	case *shortNode:
		match := prefixLen(key, n.key)
		if match == len(n.key) {
			// Descend into the child.
			if hasTerm(n.key) && match == len(key) {
				// Same leaf: overwrite value.
				if bytesEqual(n.child.(valueNode), value) {
					return n, false, nil
				}
				n.child = value
				n.markDirty()
				return n, true, nil
			}
			child, changed, err := t.insert(n.child, append(prefix, n.key...), key[match:], value)
			if err != nil {
				return n, false, err
			}
			if changed {
				n.child = child
				n.markDirty()
			}
			return n, changed, nil
		}
		// Split: the short node forks into a branch at prefix+key[:match].
		branch := &branchNode{flags: nodeFlag{dirty: true}}
		// Old content moves one level down.
		oldKey := n.key[match:]
		if len(oldKey) == 1 && hasTerm(oldKey) {
			branch.children[16] = n.child
		} else if len(oldKey) == 1 {
			// Extension of length 1: the child takes the branch slot
			// directly. Its path is unchanged (prefix+match nibbles+old
			// nibble), so no dead path arises.
			branch.children[oldKey[0]] = n.child
		} else {
			branch.children[oldKey[0]] = &shortNode{
				key:   oldKey[1:],
				child: n.child,
				flags: nodeFlag{dirty: true},
			}
		}
		// New value goes into its slot.
		newKey := key[match:]
		if len(newKey) == 1 && hasTerm(newKey) {
			branch.children[16] = value
		} else {
			branch.children[newKey[0]] = &shortNode{
				key:   newKey[1:],
				child: value,
				flags: nodeFlag{dirty: true},
			}
		}
		// The node replacing the old short at this path usually overwrites
		// its slot at commit; if the replacement ends up embedded in its
		// parent instead, the stale slot must be deleted. markDead covers
		// both: commit drops the path from Deletes when it re-writes it.
		t.markDead(prefix, n)
		if match == 0 {
			return branch, true, nil
		}
		// An extension covers the shared prefix; branch sits below it.
		return &shortNode{
			key:   key[:match],
			child: branch,
			flags: nodeFlag{dirty: true},
		}, true, nil

	case *branchNode:
		if len(key) == 0 {
			if v, ok := n.children[16].(valueNode); ok && bytesEqual(v, value) {
				return n, false, nil
			}
			n.children[16] = value
			n.markDirty()
			return n, true, nil
		}
		idx := key[0]
		child, changed, err := t.insert(n.children[idx], append(prefix, idx), key[1:], value)
		if err != nil {
			return n, false, err
		}
		if changed {
			n.children[idx] = child
			n.markDirty()
		}
		return n, changed, nil

	case refNode:
		resolved, err := t.resolve(n, prefix)
		if err != nil {
			return n, false, err
		}
		return t.insert(resolved, prefix, key, value)

	default:
		panic(fmt.Sprintf("trie: insert into %T", n))
	}
}

// del removes key below n. Returns the replacement subtree and whether a
// change happened.
func (t *Trie) del(n node, prefix, key []byte) (node, bool, error) {
	switch n := n.(type) {
	case nil:
		return nil, false, nil

	case *shortNode:
		match := prefixLen(key, n.key)
		if match < len(n.key) {
			return n, false, nil // not present
		}
		if hasTerm(n.key) && match == len(key) {
			// This leaf is the target: it disappears.
			t.markDead(prefix, n)
			return nil, true, nil
		}
		child, changed, err := t.del(n.child, append(prefix, n.key...), key[match:])
		if err != nil || !changed {
			return n, changed, err
		}
		switch child := child.(type) {
		case nil:
			// Child vanished entirely: so does this extension.
			t.markDead(prefix, n)
			return nil, true, nil
		case *shortNode:
			// Merge consecutive short nodes; the child's slot at
			// prefix+n.key dies because its content fuses upward.
			t.markDead(append(prefix, n.key...), child)
			merged := &shortNode{
				key:   concat(n.key, child.key...),
				child: child.child,
				flags: nodeFlag{dirty: true, persisted: n.flags.persisted},
			}
			return merged, true, nil
		default:
			n.child = child
			n.markDirty()
			return n, true, nil
		}

	case *branchNode:
		var (
			idx     int
			changed bool
			err     error
		)
		if len(key) == 0 {
			if n.children[16] == nil {
				return n, false, nil
			}
			n.children[16] = nil
			n.markDirty()
			changed = true
		} else {
			idx = int(key[0])
			var child node
			child, changed, err = t.del(n.children[idx], append(prefix, byte(idx)), key[1:])
			if err != nil || !changed {
				return n, changed, err
			}
			n.children[idx] = child
			n.markDirty()
		}
		// Count remaining occupants; a branch with one child collapses.
		pos := -1
		count := 0
		for i, child := range n.children {
			if child != nil {
				count++
				pos = i
			}
		}
		if count > 1 {
			return n, true, nil
		}
		// Exactly one occupant remains.
		if pos == 16 {
			// Only the value: branch becomes a leaf.
			t.markDead(prefix, n)
			return &shortNode{
				key:   []byte{terminator},
				child: n.children[16],
				flags: nodeFlag{dirty: true},
			}, true, nil
		}
		// Only one child subtree: fuse. Resolve it if needed — this is the
		// extra read delete operations incur in MPTs.
		child := n.children[pos]
		if ref, ok := child.(refNode); ok {
			resolved, err := t.resolve(ref, append(prefix, byte(pos)))
			if err != nil {
				return n, false, err
			}
			child = resolved
		}
		t.markDead(prefix, n)
		if short, ok := child.(*shortNode); ok {
			// The child moves up; its old slot dies.
			t.markDead(append(prefix, byte(pos)), short)
			return &shortNode{
				key:   concat([]byte{byte(pos)}, short.key...),
				child: short.child,
				flags: nodeFlag{dirty: true},
			}, true, nil
		}
		return &shortNode{
			key:   []byte{byte(pos)},
			child: child,
			flags: nodeFlag{dirty: true},
		}, true, nil

	case valueNode:
		return nil, true, nil

	case refNode:
		resolved, err := t.resolve(n, prefix)
		if err != nil {
			return n, false, err
		}
		return t.del(resolved, prefix, key)

	default:
		panic(fmt.Sprintf("trie: delete from %T", n))
	}
}

// markDead records that the persisted node at path is obsolete.
func (t *Trie) markDead(path []byte, n node) {
	if persisted(n) {
		t.dead[string(path)] = struct{}{}
	}
}

// persisted reports whether a node (or the node a ref points to) has a
// database slot at its current path.
func persisted(n node) bool {
	switch n := n.(type) {
	case *shortNode:
		return n.flags.persisted
	case *branchNode:
		return n.flags.persisted
	case refNode:
		return true
	default:
		return false
	}
}

func (n *shortNode) markDirty() {
	n.flags.dirty = true
	n.flags.hash = nil
	n.flags.enc = nil
}

func (n *branchNode) markDirty() {
	n.flags.dirty = true
	n.flags.hash = nil
	n.flags.enc = nil
}

// Hash returns the root hash of the trie. The empty trie hashes to
// keccak256(rlp("")) per the Yellow Paper.
func (t *Trie) Hash() [32]byte {
	if t.root == nil {
		return EmptyRoot
	}
	var h [32]byte
	copy(h[:], cachedHash(t.root))
	return h
}

// EmptyRoot is the hash of the empty trie: keccak256(rlp(0x80)).
var EmptyRoot = func() [32]byte {
	return hashNode(valueNode(nil))
}()

// Commit encodes every dirty node, assembles the NodeSet delta, and marks
// the trie clean. Writes are keyed by path; dead paths not re-written are
// emitted as deletes.
func (t *Trie) Commit() (*NodeSet, [32]byte) {
	set := &NodeSet{Writes: make(map[string][]byte)}
	if t.root != nil {
		t.commitNode(t.root, nil, set)
	}
	for path := range t.dead {
		if _, rewritten := set.Writes[path]; !rewritten {
			set.Deletes = append(set.Deletes, path)
		}
	}
	t.dead = make(map[string]struct{})
	return set, t.Hash()
}

// commitNode recursively persists dirty nodes below n at the given path.
func (t *Trie) commitNode(n node, path []byte, set *NodeSet) {
	switch n := n.(type) {
	case *shortNode:
		if !n.flags.dirty {
			return
		}
		// Children first, so parent encodings see settled hashes.
		if !hasTerm(n.key) {
			t.commitNode(n.child, append(path, n.key...), set)
		}
		enc := encodeNode(n)
		// Small nodes embed in their parent and have no own database slot
		// — except the root, which always persists.
		if len(enc) >= 32 || len(path) == 0 {
			set.Writes[string(path)] = enc
			n.flags.persisted = true
		} else if n.flags.persisted {
			// Node shrank below the embedding threshold: its slot dies.
			set.Deletes = append(set.Deletes, string(path))
			n.flags.persisted = false
		}
		n.flags.dirty = false
		n.flags.hash = nil
	case *branchNode:
		if !n.flags.dirty {
			return
		}
		for i := 0; i < 16; i++ {
			if n.children[i] != nil {
				t.commitNode(n.children[i], append(path, byte(i)), set)
			}
		}
		enc := encodeNode(n)
		if len(enc) >= 32 || len(path) == 0 {
			set.Writes[string(path)] = enc
			n.flags.persisted = true
		} else if n.flags.persisted {
			set.Deletes = append(set.Deletes, string(path))
			n.flags.persisted = false
		}
		n.flags.dirty = false
		n.flags.hash = nil
	}
}

// CommitHashed encodes every dirty node keyed by its HASH rather than its
// path — the pre-PBSS storage model of older Geth versions (§II-A,
// "Evolution of Geth"). Hash keying never overwrites (every new version of
// a node gets a fresh key) and never deletes (old versions are unreachable
// garbage until an offline prune), which is exactly the redundancy the
// path-based model eliminated. Exposed for the storage-model ablation.
func (t *Trie) CommitHashed() (map[string][]byte, [32]byte) {
	writes := make(map[string][]byte)
	if t.root != nil {
		t.commitHashedNode(t.root, writes)
	}
	t.dead = make(map[string]struct{})
	return writes, t.Hash()
}

// commitHashedNode persists the dirty subtree under hash keys.
func (t *Trie) commitHashedNode(n node, writes map[string][]byte) {
	switch n := n.(type) {
	case *shortNode:
		if !n.flags.dirty {
			return
		}
		if !hasTerm(n.key) {
			t.commitHashedNode(n.child, writes)
		}
		enc := encodeNode(n)
		if len(enc) >= 32 {
			h := keccak.Hash256(enc)
			writes[string(h[:])] = enc
		}
		n.flags.dirty = false
		n.flags.hash = nil
	case *branchNode:
		if !n.flags.dirty {
			return
		}
		for i := 0; i < 16; i++ {
			if n.children[i] != nil {
				t.commitHashedNode(n.children[i], writes)
			}
		}
		enc := encodeNode(n)
		if len(enc) >= 32 {
			h := keccak.Hash256(enc)
			writes[string(h[:])] = enc
		}
		n.flags.dirty = false
		n.flags.hash = nil
	}
}

// securePath hashes the key and converts to HEX encoding (secure trie).
func securePath(key []byte) []byte {
	h := hashKey(key)
	return keybytesToHex(h[:])
}

// hashKey is the secure-trie key derivation.
func hashKey(key []byte) [32]byte {
	return keccak.Hash256(key)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// concat returns a fresh slice holding a followed by b.
func concat(a []byte, b ...byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
