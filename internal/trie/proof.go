package trie

import (
	"bytes"
	"errors"
	"fmt"

	"ethkv/internal/keccak"
)

// Merkle proofs: the authenticated-read capability that makes the MPT an
// authenticated data structure (the "deep traversals for proof generation"
// of §II-A). A proof for a key is the list of node encodings on the path
// from the root to the key's leaf; a verifier replays the traversal,
// checking each node hashes to the reference held by its parent.

// ErrBadProof is returned when a proof fails verification.
var ErrBadProof = errors.New("trie: invalid proof")

// Prove collects the proof for key: the encodings of every persisted-size
// node on the key's path, root first. Embedded (<32 byte) nodes are part of
// their parent's encoding and do not appear separately, matching the
// canonical MPT proof format.
func (t *Trie) Prove(key []byte) ([][]byte, error) {
	hex := securePath(key)
	var proof [][]byte
	n := t.root
	prefix := []byte{}
	for {
		switch node := n.(type) {
		case nil:
			return proof, nil
		case valueNode:
			return proof, nil
		case refNode:
			resolved, err := t.resolve(node, prefix)
			if err != nil {
				return nil, err
			}
			n = resolved
		case *shortNode:
			enc := encodeNode(node)
			if len(enc) >= 32 || len(prefix) == 0 {
				proof = append(proof, enc)
			}
			if len(hex) < len(node.key) || !bytesEqual(hex[:len(node.key)], node.key) {
				return proof, nil // absence proof: path diverges
			}
			prefix = append(prefix, node.key...)
			hex = hex[len(node.key):]
			if hasTerm(node.key) {
				return proof, nil
			}
			n = node.child
		case *branchNode:
			enc := encodeNode(node)
			if len(enc) >= 32 || len(prefix) == 0 {
				proof = append(proof, enc)
			}
			if len(hex) == 0 {
				return proof, nil
			}
			idx := hex[0]
			prefix = append(prefix, idx)
			hex = hex[1:]
			n = node.children[idx]
		default:
			return nil, fmt.Errorf("trie: prove on %T", n)
		}
	}
}

// VerifyProof checks a proof against a root hash and returns the proven
// value (nil for a valid absence proof).
func VerifyProof(root [32]byte, key []byte, proof [][]byte) ([]byte, error) {
	hex := securePath(key)
	want := root[:]
	for i, blob := range proof {
		h := keccak.Hash256(blob)
		if !bytes.Equal(h[:], want) {
			return nil, fmt.Errorf("%w: node %d hash mismatch", ErrBadProof, i)
		}
		n, err := decodeNode(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d undecodable", ErrBadProof, i)
		}
		value, next, rest, err := stepProof(n, hex)
		if err != nil {
			return nil, err
		}
		if next == nil {
			// Terminal: either a value or a proven absence.
			if i != len(proof)-1 {
				return nil, fmt.Errorf("%w: trailing proof nodes", ErrBadProof)
			}
			return value, nil
		}
		hex = rest
		want = next
	}
	return nil, fmt.Errorf("%w: proof exhausted before terminal node", ErrBadProof)
}

// stepProof walks one proof node. It returns either the terminal value
// (next == nil) or the expected hash of the next node plus the remaining
// key nibbles. Embedded children are walked inline.
func stepProof(n node, hex []byte) (value []byte, next []byte, rest []byte, err error) {
	for {
		switch node := n.(type) {
		case nil:
			return nil, nil, nil, nil // absence
		case valueNode:
			if len(hex) == 0 {
				return node, nil, nil, nil
			}
			return nil, nil, nil, nil
		case refNode:
			return nil, node.hash, hex, nil
		case *shortNode:
			if len(hex) < len(node.key) || !bytesEqual(hex[:len(node.key)], node.key) {
				return nil, nil, nil, nil // divergence: absence
			}
			hex = hex[len(node.key):]
			if hasTerm(node.key) {
				v, ok := node.child.(valueNode)
				if !ok {
					return nil, nil, nil, fmt.Errorf("%w: leaf without value", ErrBadProof)
				}
				return v, nil, nil, nil
			}
			n = node.child
		case *branchNode:
			if len(hex) == 0 {
				if v, ok := node.children[16].(valueNode); ok {
					return v, nil, nil, nil
				}
				return nil, nil, nil, nil
			}
			idx := hex[0]
			hex = hex[1:]
			if node.children[idx] == nil {
				return nil, nil, nil, nil // absence
			}
			n = node.children[idx]
		default:
			return nil, nil, nil, fmt.Errorf("%w: unexpected node %T", ErrBadProof, n)
		}
	}
}
