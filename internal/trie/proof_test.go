package trie

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func buildProofTrie(t *testing.T, n int) (*Trie, map[string]string) {
	t.Helper()
	tr := NewEmpty()
	model := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%d", i*3)
		tr.Update([]byte(k), []byte(v))
		model[k] = v
	}
	return tr, model
}

func TestProveAndVerifyPresent(t *testing.T) {
	tr, model := buildProofTrie(t, 200)
	root := tr.Hash()
	for k, want := range model {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%s): %v", k, err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%s): %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("proof for %s yielded %q, want %q", k, got, want)
		}
	}
}

func TestProveAbsence(t *testing.T) {
	tr, _ := buildProofTrie(t, 100)
	root := tr.Hash()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("missing-%04d", i)
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("absence proof for %s rejected: %v", k, err)
		}
		if got != nil {
			t.Fatalf("absence proof for %s yielded value %q", k, got)
		}
	}
}

func TestVerifyProofRejectsTampering(t *testing.T) {
	tr, _ := buildProofTrie(t, 100)
	root := tr.Hash()
	proof, err := tr.Prove([]byte("key-0042"))
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 {
		t.Fatal("empty proof")
	}
	// Tamper with the last node.
	tampered := make([][]byte, len(proof))
	copy(tampered, proof)
	last := append([]byte(nil), tampered[len(tampered)-1]...)
	last[len(last)-1] ^= 0x01
	tampered[len(tampered)-1] = last
	if _, err := VerifyProof(root, []byte("key-0042"), tampered); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered proof accepted: %v", err)
	}
	// Wrong root.
	var badRoot [32]byte
	if _, err := VerifyProof(badRoot, []byte("key-0042"), proof); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong root accepted: %v", err)
	}
	// Truncated proof.
	if len(proof) > 1 {
		if _, err := VerifyProof(root, []byte("key-0042"), proof[:len(proof)-1]); !errors.Is(err, ErrBadProof) {
			t.Fatalf("truncated proof accepted: %v", err)
		}
	}
	// Proof for a different key must not verify as key-0042's value.
	otherProof, _ := tr.Prove([]byte("key-0007"))
	got, err := VerifyProof(root, []byte("key-0042"), otherProof)
	if err == nil && got != nil && string(got) == "value-126" {
		t.Fatal("foreign proof produced the right value without the right path")
	}
}

func TestProveOnCommittedTrie(t *testing.T) {
	store := newPathStore()
	tr, _ := New(store)
	for i := 0; i < 150; i++ {
		tr.Update([]byte(fmt.Sprintf("acct-%03d", i)), []byte(fmt.Sprintf("bal-%d", i)))
	}
	set, root := tr.Commit()
	store.apply(set)

	// Prove from a cold reload: resolution happens through the store.
	reloaded, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := reloaded.Prove([]byte("acct-077"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyProof(root, []byte("acct-077"), proof)
	if err != nil || string(got) != "bal-77" {
		t.Fatalf("cold proof: %q, %v", got, err)
	}
}

func TestProofRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := NewEmpty()
	model := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(400))
		if rng.Intn(5) == 0 {
			tr.Delete([]byte(k))
			delete(model, k)
		} else {
			v := fmt.Sprintf("v%d", i)
			tr.Update([]byte(k), []byte(v))
			model[k] = v
		}
	}
	root := tr.Hash()
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%03d", i)
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("verify %s: %v", k, err)
		}
		want, present := model[k]
		if present && string(got) != want {
			t.Fatalf("%s: got %q want %q", k, got, want)
		}
		if !present && got != nil {
			t.Fatalf("%s: absent key proved with value %q", k, got)
		}
	}
}

func TestEmptyTrieProof(t *testing.T) {
	tr := NewEmpty()
	proof, err := tr.Prove([]byte("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 0 {
		t.Fatalf("empty trie proof has %d nodes", len(proof))
	}
}

func TestSingleLeafProof(t *testing.T) {
	tr := NewEmpty()
	tr.Update([]byte("only"), []byte("one"))
	root := tr.Hash()
	proof, err := tr.Prove([]byte("only"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyProof(root, []byte("only"), proof)
	if err != nil || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("single-leaf proof: %q, %v", got, err)
	}
}

func BenchmarkProve(b *testing.B) {
	tr := NewEmpty()
	for i := 0; i < 10000; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte{1}, 80))
	}
	tr.Hash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Prove([]byte(fmt.Sprintf("key-%05d", i%10000)))
	}
}

func BenchmarkVerifyProof(b *testing.B) {
	tr := NewEmpty()
	for i := 0; i < 10000; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte{1}, 80))
	}
	root := tr.Hash()
	proof, _ := tr.Prove([]byte("key-05000"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VerifyProof(root, []byte("key-05000"), proof)
	}
}
