package trie

// Trie keys use three encodings, following Geth's conventions:
//
//   - KEYBYTES: the raw key as the caller supplies it.
//   - HEX: one nibble per byte, with an optional terminator nibble 16
//     marking a key that ends at a value (leaf).
//   - COMPACT (hex-prefix): the Yellow Paper's space-efficient encoding used
//     inside persisted short nodes; the first nibble carries the leaf flag
//     and odd-length bit.

// terminator is the HEX-encoding sentinel nibble for leaf keys.
const terminator = 16

// keybytesToHex converts raw key bytes to HEX encoding with terminator.
func keybytesToHex(key []byte) []byte {
	out := make([]byte, len(key)*2+1)
	for i, b := range key {
		out[i*2] = b / 16
		out[i*2+1] = b % 16
	}
	out[len(out)-1] = terminator
	return out
}

// hexToKeybytes converts a terminated HEX key back to raw bytes.
// The input must have even nibble count after removing the terminator.
func hexToKeybytes(hex []byte) []byte {
	if hasTerm(hex) {
		hex = hex[:len(hex)-1]
	}
	if len(hex)%2 != 0 {
		panic("trie: odd-length hex key")
	}
	out := make([]byte, len(hex)/2)
	for i := range out {
		out[i] = hex[i*2]<<4 | hex[i*2+1]
	}
	return out
}

// hasTerm reports whether the HEX key ends with the terminator nibble.
func hasTerm(hex []byte) bool {
	return len(hex) > 0 && hex[len(hex)-1] == terminator
}

// hexToCompact converts a HEX key to COMPACT (hex-prefix) encoding.
func hexToCompact(hex []byte) []byte {
	term := byte(0)
	if hasTerm(hex) {
		term = 1
		hex = hex[:len(hex)-1]
	}
	buf := make([]byte, len(hex)/2+1)
	buf[0] = term << 5 // flags: bit5 = leaf
	if len(hex)%2 == 1 {
		buf[0] |= 1 << 4 // odd flag
		buf[0] |= hex[0] // first nibble rides in the prefix byte
		hex = hex[1:]
	}
	for i := 0; i < len(hex); i += 2 {
		buf[i/2+1] = hex[i]<<4 | hex[i+1]
	}
	return buf
}

// compactToHex converts a COMPACT key back to HEX encoding.
func compactToHex(compact []byte) []byte {
	if len(compact) == 0 {
		return nil
	}
	base := keybytesToHex(compact)
	// The flags nibble is 2*leaf + odd. keybytesToHex appended a
	// terminator; keep it only for leaf keys.
	if base[0] < 2 {
		base = base[:len(base)-1]
	}
	// Skip the flag nibbles: two for even-length keys, one for odd (the
	// second flag position holds the first real nibble).
	chop := 2 - base[0]&1
	return base[chop:]
}

// prefixLen returns the length of the common prefix of a and b.
func prefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
