package kvnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"ethkv/internal/kv"
)

// TestFrameRoundTrip pins the framing layer's happy path.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 10000)}
	for _, b := range bodies {
		if err := writeFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := readFrame(&buf, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := readFrame(&buf, DefaultMaxFrameBytes); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// TestTruncatedFrameSurfaces cuts a valid frame at every possible byte
// boundary and asserts the reader reports truncation — never a clean EOF
// that a caller could mistake for end-of-stream, and never a short body.
func TestTruncatedFrameSurfaces(t *testing.T) {
	var full bytes.Buffer
	if err := writeFrame(&full, []byte("the quick brown fox")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, err := readFrame(bytes.NewReader(raw[:cut]), DefaultMaxFrameBytes)
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut at %d/%d bytes: err = %v, want ErrTruncatedFrame", cut, len(raw), err)
		}
	}
}

// TestBitFlippedFrameSurfaces flips every bit of a frame in turn; every
// flip must yield a protocol error (CRC mismatch, length corruption, or
// truncation) — silent acceptance of a damaged frame is the bug class this
// test exists for.
func TestBitFlippedFrameSurfaces(t *testing.T) {
	body := []byte("payload that must not be silently altered")
	var full bytes.Buffer
	if err := writeFrame(&full, body); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for bit := 0; bit < len(raw)*8; bit++ {
		damaged := append([]byte(nil), raw...)
		damaged[bit/8] ^= 1 << (bit % 8)
		got, err := readFrame(bytes.NewReader(damaged), DefaultMaxFrameBytes)
		if err == nil {
			// The only acceptable "success" would be a read that still
			// returns the exact original body — impossible here because
			// every flipped bit is inside the frame.
			t.Fatalf("bit %d: corrupt frame accepted (body %q)", bit, got)
		}
		if !errors.Is(err, ErrCorruptFrame) && !errors.Is(err, ErrTruncatedFrame) &&
			!errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("bit %d: unexpected error class %v", bit, err)
		}
	}
}

// TestOversizedFrameRejected checks a wild length prefix cannot trigger an
// arbitrary allocation.
func TestOversizedFrameRejected(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31)
	_, err := readFrame(bytes.NewReader(hdr[:]), DefaultMaxFrameBytes)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestHandshakeRejected checks the server drops connections that don't
// speak the protocol.
func TestHandshakeRejected(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bytes []byte
	}{
		{"http", []byte("GET / HTTP/1.1\r\n\r\n")},
		{"bad-version", append(append([]byte{}, handshakeMagic[:]...), 99)},
		{"short", []byte("eth")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := readHandshake(bytes.NewReader(tc.bytes))
			if !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("err = %v, want ErrBadHandshake", err)
			}
		})
	}
}

// TestServerDropsCorruptStream connects raw TCP, completes the handshake,
// then streams a bit-flipped frame: the server must drop the connection
// (observed as EOF on our side), not execute anything.
func TestServerDropsCorruptStream(t *testing.T) {
	store := kv.NewMemStore()
	addr, _ := startServer(t, store, silentOpts())

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeHandshake(nc); err != nil {
		t.Fatal(err)
	}
	// A valid opOps frame with one put, then flip a payload bit but keep
	// the stale CRC.
	body := makeOpsBody(1, kindPut, []byte("k"), []byte("v"))
	var frame bytes.Buffer
	if err := writeFrame(&frame, body); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	raw[frameHeaderLen+9] ^= 0x40 // inside the body, past reqID
	if _, err := nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("waiting for server close: %v", err)
	}
	if store.Len() != 0 {
		t.Fatal("server executed an op from a corrupt frame")
	}
}

// makeOpsBody builds an opOps request body.
func makeOpsBody(reqID uint64, kind byte, key, val []byte) []byte {
	body := binary.LittleEndian.AppendUint64(nil, reqID)
	body = append(body, opOps)
	body = appendUvarint(body, 1)
	body = append(body, kind)
	body = appendBytes(body, key)
	if kind == kindPut {
		body = appendBytes(body, val)
	}
	return body
}

// fakeServer accepts one kvnet connection and hands the test raw control
// of the stream, for injecting malformed responses into a real client.
func fakeServer(t *testing.T, handle func(t *testing.T, nc net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if err := readHandshake(nc); err != nil {
			t.Errorf("fake server handshake: %v", err)
			return
		}
		handle(t, nc)
	}()
	return ln.Addr().String()
}

// readOneFrame reads a request frame off the raw connection.
func readOneFrame(t *testing.T, nc net.Conn) []byte {
	t.Helper()
	body, err := readFrame(nc, DefaultMaxFrameBytes)
	if err != nil {
		t.Errorf("fake server read: %v", err)
		return nil
	}
	return body
}

// TestClientSurfacesBitFlippedResponse has a fake server answer a Get with
// a CRC-corrupt frame: the client must fail the op with a protocol error
// and latch, never deliver data from the damaged frame.
func TestClientSurfacesBitFlippedResponse(t *testing.T) {
	addr := fakeServer(t, func(t *testing.T, nc net.Conn) {
		req := readOneFrame(t, nc)
		if req == nil {
			return
		}
		reqID := binary.LittleEndian.Uint64(req[:8])
		// Well-formed ops response: 1 result, get found, value "v".
		resp := binary.LittleEndian.AppendUint64(nil, reqID)
		resp = append(resp, statusOK)
		resp = appendUvarint(resp, 1)
		resp = append(resp, rcOK)
		resp = appendBytes(resp, []byte("v"))
		var frame bytes.Buffer
		writeFrame(&frame, resp)
		raw := frame.Bytes()
		raw[len(raw)-1] ^= 0x01 // flip a value bit, CRC now stale
		nc.Write(raw)
		// Hold the conn open so the failure comes from the CRC, not EOF.
		time.Sleep(2 * time.Second)
	})
	c := dialT(t, addr, ClientOptions{})
	defer c.Close()

	_, err := c.Get([]byte("k"))
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("Get over corrupt response: %v, want ErrCorruptFrame", err)
	}
	// The client must have latched: subsequent ops fail fast.
	if err := c.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("client accepted ops after a protocol error")
	}
}

// TestClientSurfacesTruncatedResponse has the fake server die mid-frame:
// the pending op must fail with a truncation error.
func TestClientSurfacesTruncatedResponse(t *testing.T) {
	addr := fakeServer(t, func(t *testing.T, nc net.Conn) {
		req := readOneFrame(t, nc)
		if req == nil {
			return
		}
		reqID := binary.LittleEndian.Uint64(req[:8])
		resp := binary.LittleEndian.AppendUint64(nil, reqID)
		resp = append(resp, statusOK)
		resp = appendUvarint(resp, 1)
		resp = append(resp, rcOK)
		resp = appendBytes(resp, bytes.Repeat([]byte("x"), 1024))
		var frame bytes.Buffer
		writeFrame(&frame, resp)
		nc.Write(frame.Bytes()[:20]) // header + a sliver of body
		// Close tears the stream mid-frame.
	})
	c := dialT(t, addr, ClientOptions{})
	defer c.Close()

	_, err := c.Get([]byte("k"))
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("Get over truncated response: %v, want ErrTruncatedFrame", err)
	}
}

// TestClientRejectsShortBatchResponse has the fake server return a valid,
// CRC-clean frame that answers only 2 of 3 coalesced ops. The client must
// treat the count mismatch as a protocol error for the whole frame — the
// wire-level version of the silent-scan-truncation bug PR 4 killed.
func TestClientRejectsShortBatchResponse(t *testing.T) {
	addr := fakeServer(t, func(t *testing.T, nc net.Conn) {
		for {
			req, err := readFrame(nc, DefaultMaxFrameBytes)
			if err != nil {
				return
			}
			r := &payloadReader{b: req}
			reqID := r.U64()
			opcode := r.U8()
			if opcode != opOps {
				continue
			}
			n := r.Uvarint()
			// Answer one fewer result than requested, all "not found".
			resp := binary.LittleEndian.AppendUint64(nil, reqID)
			resp = append(resp, statusOK)
			short := n
			if short > 1 {
				short--
			}
			resp = appendUvarint(resp, short)
			for i := uint64(0); i < short; i++ {
				resp = append(resp, rcNotFound)
			}
			writeFrame(nc, resp)
		}
	})
	// Force all three gets into one frame: saturate the window with a
	// first op, queue the rest, then release.
	c := dialT(t, addr, ClientOptions{Conns: 1, Window: 1, BatchLinger: 100 * time.Millisecond})
	defer c.Close()

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := c.Get([]byte(fmt.Sprintf("k%d", i)))
			errs <- err
		}(i)
	}
	protoErrs := 0
	for i := 0; i < 3; i++ {
		err := <-errs
		if errors.Is(err, ErrBadPayload) {
			protoErrs++
		} else if err == nil || errors.Is(err, kv.ErrNotFound) {
			// Singleton frames (the ops that didn't coalesce) are
			// answered correctly by the fake server when n==1.
			continue
		} else if !errors.Is(err, ErrBadPayload) && err != nil {
			// Latched-protocol-error failures for later ops are fine.
			continue
		}
	}
	if protoErrs == 0 {
		t.Fatal("short batch response was not surfaced as a protocol error")
	}
}

// FuzzServerRequestDecode throws arbitrary bodies at the server's request
// handler: it must never panic, returning either a response or a protocol
// error.
func FuzzServerRequestDecode(f *testing.F) {
	f.Add(makeOpsBody(1, kindPut, []byte("k"), []byte("v")))
	f.Add(makeOpsBody(2, kindGet, []byte("k"), nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	srv := NewServer(kv.NewMemStore(), silentOpts())
	f.Fuzz(func(t *testing.T, body []byte) {
		st := &connState{owned: make(map[uint64]struct{})}
		resp, err := srv.handle(st, body)
		if err == nil && resp == nil {
			t.Fatal("handle returned neither response nor error")
		}
		srv.releaseConnIters(st)
	})
}
