package kvnet

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ethkv/internal/kv"
	"ethkv/internal/kv/kvtest"
	"ethkv/internal/lsm"
	"ethkv/internal/obs"
)

// silentOpts returns server options that don't spam test logs: the torn
// frame tests make the server see deliberately corrupt streams.
func silentOpts() ServerOptions {
	return ServerOptions{Logf: func(string, ...any) {}}
}

// startServer serves store on a loopback port for the test's lifetime.
func startServer(t *testing.T, store kv.Store, opts ServerOptions) (string, *Server) {
	t.Helper()
	srv := NewServer(store, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// dialT dials addr or fails the test.
func dialT(t *testing.T, addr string, opts ClientOptions) *Client {
	t.Helper()
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return c
}

// TestConformanceMemBackend runs the full kv.Store conformance suite —
// including ConcurrentReaders and RandomizedModel — against a kvnet.Client
// backed by a live in-process server over a MemStore. Reopen closes the
// client and dials a fresh one: served state must survive a client
// generation, which is the network analogue of reopen persistence.
func TestConformanceMemBackend(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) kv.Store {
		store := kv.NewMemStore()
		addr, _ := startServer(t, store, silentOpts())
		c := dialT(t, addr, ClientOptions{Conns: 2})
		t.Cleanup(func() { c.Close() })
		return clientWithAddr{Client: c, t: t, addr: addr}
	}, kvtest.Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			cw := s.(clientWithAddr)
			if err := cw.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			c := dialT(t, cw.addr, ClientOptions{})
			t.Cleanup(func() { c.Close() })
			return clientWithAddr{Client: c, t: t, addr: cw.addr}
		},
	})
}

// clientWithAddr lets the Reopen hook re-dial the same server.
type clientWithAddr struct {
	*Client
	t    *testing.T
	addr string
}

// TestConformanceLSMBackend runs the suite against a served LSM store —
// the production pairing — with small client batches so coalescing paths
// (not just singleton frames) are exercised by every check.
func TestConformanceLSMBackend(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) kv.Store {
		db, err := lsm.Open(filepath.Join(t.TempDir(), "lsm"), lsm.Options{
			MemtableBytes:       64 << 10,
			L0CompactionTrigger: 2,
			LevelBaseBytes:      256 << 10,
		})
		if err != nil {
			t.Fatalf("lsm: %v", err)
		}
		t.Cleanup(func() { db.Close() })
		addr, _ := startServer(t, db, silentOpts())
		c := dialT(t, addr, ClientOptions{Conns: 2, BatchMaxOps: 8, Window: 4})
		t.Cleanup(func() { c.Close() })
		return c
	}, kvtest.Options{OrderedScans: true})
}

// TestConformanceUnbatched pins the batching-off configuration (one op per
// frame) to the same contract as the coalescing one.
func TestConformanceUnbatched(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) kv.Store {
		store := kv.NewMemStore()
		addr, _ := startServer(t, store, silentOpts())
		c := dialT(t, addr, ClientOptions{BatchMaxOps: 1, Window: 16})
		t.Cleanup(func() { c.Close() })
		return c
	}, kvtest.Options{OrderedScans: true})
}

// TestCoalescingHappens drives many concurrent writers through one client
// and checks ops actually shared frames — the mechanism the serving layer
// exists for, asserted at the client's own transport counters.
func TestCoalescingHappens(t *testing.T) {
	store := kv.NewMemStore()
	addr, srv := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{Conns: 1, Window: 1})
	defer c.Close()

	const workers = 32
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := c.Put(key, key); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	ns := c.NetStats()
	if ns.OpsSent != workers*perWorker {
		t.Fatalf("ops sent = %d, want %d", ns.OpsSent, workers*perWorker)
	}
	if ns.MeanBatch() < 2 {
		t.Fatalf("mean batch = %.2f; 32 concurrent writers over window=1 must coalesce", ns.MeanBatch())
	}
	// The server must have observed multi-op frames too.
	if srv.metrics.coalescedOps.Load() == 0 {
		t.Fatal("server saw no coalesced ops")
	}
	if got := store.Len(); got != workers*perWorker {
		t.Fatalf("store holds %d keys, want %d", got, workers*perWorker)
	}
}

// TestSequentialLatencyNoLinger checks a lone sequential caller does not
// pay the linger: 200 ops through a quiet client should complete far
// faster than 200 × BatchLinger.
func TestSequentialLatencyNoLinger(t *testing.T) {
	store := kv.NewMemStore()
	addr, _ := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{BatchLinger: 50 * time.Millisecond})
	defer c.Close()

	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("200 sequential ops took %v; linger is being charged to an idle pipe", elapsed)
	}
}

// TestAtomicBatchOverNetwork checks kv.Batch semantics survive the wire:
// all-or-nothing application and replayability.
func TestAtomicBatchOverNetwork(t *testing.T) {
	store := kv.NewMemStore()
	addr, _ := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{})
	defer c.Close()

	if err := c.Put([]byte("victim"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := c.NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), bytes.Repeat([]byte("z"), 4096))
	b.Delete([]byte("victim"))
	if err := b.Write(); err != nil {
		t.Fatalf("batch write: %v", err)
	}
	if v, err := c.Get([]byte("b")); err != nil || len(v) != 4096 {
		t.Fatalf("Get(b) = %d bytes, %v", len(v), err)
	}
	if ok, _ := c.Has([]byte("victim")); ok {
		t.Fatal("batched delete lost over the wire")
	}
}

// TestRemoteStats checks the Stats opcode round-trips the server store's
// counters.
func TestRemoteStats(t *testing.T) {
	db, err := lsm.Open(filepath.Join(t.TempDir(), "lsm"), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, _ := startServer(t, db, silentOpts())
	c := dialT(t, addr, ClientOptions{})
	defer c.Close()

	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get([]byte("s001")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Puts != 50 {
		t.Fatalf("remote stats puts = %d, want 50", st.Puts)
	}
	if st.Gets == 0 {
		t.Fatal("remote stats gets = 0")
	}
}

// TestServerMetricsExported checks the serving metrics land in a caller
// registry in Prometheus-scrapable form.
func TestServerMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	store := kv.NewMemStore()
	opts := silentOpts()
	opts.Registry = reg
	addr, _ := startServer(t, store, opts)
	c := dialT(t, addr, ClientOptions{})
	defer c.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Put([]byte(fmt.Sprintf("m%d-%d", w, i)), []byte("v"))
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Counters["ethkv_server_frames_total"] == 0 {
		t.Fatal("no frames counted")
	}
	h, ok := snap.Histograms[obs.Name("ethkv_server_op_latency_ns", "op", "put")]
	if !ok || h.Count != 800 {
		t.Fatalf("put latency histogram count = %d, want 800", h.Count)
	}
	if _, ok := snap.Histograms["ethkv_server_batch_ops"]; !ok {
		t.Fatal("batch size histogram missing")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("ethkv_server_op_latency_ns_bucket")) {
		t.Fatal("prometheus exposition missing server latency buckets")
	}
}

// TestScanSurfacesServerIteratorError mirrors the PR 4 scan-truncation
// discipline across the wire: a backend iterator that dies mid-scan must
// reach the network client as Error(), never as a clean short scan.
func TestScanSurfacesServerIteratorError(t *testing.T) {
	inner := kv.NewMemStore()
	for i := 0; i < 100; i++ {
		inner.Put([]byte(fmt.Sprintf("e/%03d", i)), []byte("v"))
	}
	store := &faultyScanStore{Store: inner, failAfter: 40}
	addr, _ := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{IterPageOps: 16})
	defer c.Close()

	it := c.NewIterator([]byte("e/"), nil)
	defer it.Release()
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Error(); err == nil {
		t.Fatalf("scan over faulty backend: %d keys and Error() == nil", n)
	}
	if n >= 100 {
		t.Fatalf("scan returned all %d keys from a faulty backend", n)
	}
}

// faultyScanStore yields iterators that error out after failAfter entries.
type faultyScanStore struct {
	kv.Store
	failAfter int
}

func (f *faultyScanStore) NewIterator(prefix, start []byte) kv.Iterator {
	return &faultyIterator{Iterator: f.Store.NewIterator(prefix, start), limit: f.failAfter}
}

type faultyIterator struct {
	kv.Iterator
	n     int
	limit int
}

func (it *faultyIterator) Next() bool {
	if it.n >= it.limit {
		return false
	}
	it.n++
	return it.Iterator.Next()
}

func (it *faultyIterator) Error() error {
	if it.n >= it.limit {
		return errors.New("injected mid-scan corruption")
	}
	return it.Iterator.Error()
}
