package kvnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ethkv/internal/kv"
)

// ClientOptions tunes a Client.
type ClientOptions struct {
	// Conns is the number of TCP connections to multiplex over. Default 1.
	Conns int
	// BatchMaxOps caps how many point ops coalesce into one request
	// frame. 1 disables coalescing (every op is its own frame — the
	// "batching off" baseline). Default 1024.
	BatchMaxOps int
	// BatchMaxBytes caps the encoded payload of one coalesced frame, so
	// a run of large values cannot push a frame past the server's limit.
	// Default 1 MiB.
	BatchMaxBytes int
	// BatchLinger is the longest a sender waits to top up a non-full
	// batch while at least one other frame is already in flight (the
	// in-flight frame hides the wait). Closed-loop callers are clocked
	// by the window itself — while it is saturated they pile into the
	// queue and the next free slot ships them as one frame — so the
	// default is 0 (no timer): a linger only helps open-loop workloads
	// on pipes whose RTT dwarfs the timer. With nothing else in flight,
	// ops ship immediately — a sequential caller never pays the linger.
	BatchLinger time.Duration
	// Window is the maximum number of in-flight frames per connection.
	// Pipelining hides RTT; the coalescing sweet spot is small — each
	// returning response releases the next, larger batch. Default 2.
	Window int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// MaxFrameBytes bounds response frames. Default DefaultMaxFrameBytes.
	MaxFrameBytes int
	// IterPageOps is how many entries one iterator page requests.
	// Default 512.
	IterPageOps int
	// RedialAttempts is how many consecutive reconnect attempts a pool
	// connection makes after an I/O failure before the client latches
	// fail-stop. 0 (the default) keeps the strict fail-stop model: the
	// first connection error is fatal. Ops in flight when a connection
	// dies always fail with the outage — a redial never re-ships an op
	// the server may have executed, so every op completes exactly once —
	// but ops issued afterwards proceed on the fresh session. The budget
	// is per outage: a successful reconnect resets it, so a long-lived
	// client survives any number of distinct server restarts.
	RedialAttempts int
	// RedialBackoff is the wait before each reconnect attempt.
	// Default 100ms.
	RedialBackoff time.Duration
}

func (o *ClientOptions) withDefaults() ClientOptions {
	v := *o
	if v.Conns <= 0 {
		v.Conns = 1
	}
	if v.BatchMaxOps <= 0 {
		v.BatchMaxOps = 1024
	}
	if v.BatchMaxBytes <= 0 {
		v.BatchMaxBytes = 1 << 20
	}
	if v.Window <= 0 {
		v.Window = 2
	}
	if v.DialTimeout <= 0 {
		v.DialTimeout = 5 * time.Second
	}
	if v.MaxFrameBytes <= 0 {
		v.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if v.IterPageOps <= 0 {
		v.IterPageOps = 512
	}
	if v.RedialBackoff <= 0 {
		v.RedialBackoff = 100 * time.Millisecond
	}
	return v
}

// NetStats are client-side transport counters, for load generators that
// want to report achieved coalescing.
type NetStats struct {
	FramesSent uint64 // request frames written (all opcodes)
	OpFrames   uint64 // coalesced point-op frames among them
	OpsSent    uint64 // point ops carried by those frames
	BytesSent  uint64 // request body bytes
	BytesRecv  uint64 // response body bytes
}

// MeanBatch returns point ops per coalesced frame (0 with no traffic).
func (n NetStats) MeanBatch() float64 {
	if n.OpFrames == 0 {
		return 0
	}
	return float64(n.OpsSent) / float64(n.OpFrames)
}

// call is one pending operation: either a point op destined for a
// coalesced frame (kind in kindGet..kindDelete) or a standalone request
// carrying a pre-encoded payload (opcode != 0).
type call struct {
	kind     byte
	key, val []byte

	opcode  byte   // nonzero → standalone request
	payload []byte // standalone opcode-specific payload

	done chan struct{}
	err  error
	// point-op results
	found bool
	value []byte
	// standalone result
	resp []byte
}

func (cl *call) finish(err error) {
	cl.err = err
	close(cl.done)
}

// Client implements kv.Store over a kvnet connection pool. All methods are
// safe for concurrent use; concurrent callers' point operations coalesce
// into shared request frames.
//
// Failure model is fail-stop: the first connection-fatal error (protocol
// violation, peer gone) latches the client; every pending and future
// operation returns the latched error. A lab client prefers a loud,
// deterministic failure over silent retries that could reorder writes.
// RedialAttempts > 0 relaxes only the peer-gone half: an I/O outage is
// retried by reconnecting, while ops in flight at the moment of the
// outage still fail (exactly-once completion) and protocol violations
// still latch immediately.
type Client struct {
	opts ClientOptions

	// opq is the shared op queue. Senders drain it; it is closed exactly
	// once, by Close, under qmu.
	opq   chan *call
	qmu   sync.RWMutex
	conns []*clientConn

	closed atomic.Bool // user called Close
	errMu  sync.Mutex
	err    error // first fatal transport error, latched

	frames   atomic.Uint64
	opFrames atomic.Uint64
	ops      atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64

	wg sync.WaitGroup
}

var _ kv.Store = (*Client)(nil)
var _ kv.StatsProvider = (*Client)(nil)

// Dial connects to a kvnet server at addr.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	o := opts.withDefaults()
	c := &Client{
		opts: o,
		opq:  make(chan *call, 4*o.BatchMaxOps),
	}
	for i := 0; i < o.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
		if err == nil {
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			if herr := writeHandshake(nc); herr != nil {
				nc.Close()
				err = herr
			}
		}
		if err != nil {
			c.closed.Store(true)
			for _, cc := range c.conns {
				cc.closeSession()
			}
			return nil, err
		}
		cc := &clientConn{client: c, addr: addr}
		cc.sess = newSession(nc, o.Window)
		c.conns = append(c.conns, cc)
	}
	for _, cc := range c.conns {
		c.wg.Add(1)
		go func(cc *clientConn) { defer c.wg.Done(); cc.run(cc.sess) }(cc)
	}
	return c, nil
}

// latchedErr returns the fatal transport error, or nil.
func (c *Client) latchedErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// fail latches err as the client's fatal error and closes the sockets.
// The first caller's error wins; later calls only re-close.
func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	for _, cc := range c.conns {
		cc.closeSession()
	}
}

// deathErr is what operations fail with once the client is unusable.
func (c *Client) deathErr() error {
	if err := c.latchedErr(); err != nil {
		return err
	}
	return kv.ErrClosed
}

// dead reports whether the client can no longer make progress.
func (c *Client) dead() bool {
	return c.closed.Load() || c.latchedErr() != nil
}

// enqueue submits a call to the shared op queue. The read-lock excludes
// the channel close in Close, so a racing send can never panic; a call
// stranded in the queue after a fatal error is failed by a draining
// sender.
func (c *Client) enqueue(cl *call) error {
	c.qmu.RLock()
	defer c.qmu.RUnlock()
	if c.closed.Load() {
		return kv.ErrClosed
	}
	if err := c.latchedErr(); err != nil {
		return err
	}
	c.opq <- cl
	return nil
}

// do runs one point op to completion.
func (c *Client) do(kind byte, key, val []byte) (*call, error) {
	cl := &call{kind: kind, key: key, val: val, done: make(chan struct{})}
	if err := c.enqueue(cl); err != nil {
		return nil, err
	}
	<-cl.done
	return cl, cl.err
}

// doRequest runs one standalone request to completion.
func (c *Client) doRequest(opcode byte, payload []byte) ([]byte, error) {
	cl := &call{opcode: opcode, payload: payload, done: make(chan struct{})}
	if err := c.enqueue(cl); err != nil {
		return nil, err
	}
	<-cl.done
	return cl.resp, cl.err
}

// Get implements kv.Reader.
func (c *Client) Get(key []byte) ([]byte, error) {
	cl, err := c.do(kindGet, key, nil)
	if err != nil {
		return nil, err
	}
	if !cl.found {
		return nil, kv.ErrNotFound
	}
	return cl.value, nil
}

// Has implements kv.Reader.
func (c *Client) Has(key []byte) (bool, error) {
	cl, err := c.do(kindHas, key, nil)
	if err != nil {
		return false, err
	}
	return cl.found, nil
}

// Put implements kv.Writer.
func (c *Client) Put(key, value []byte) error {
	_, err := c.do(kindPut, key, value)
	return err
}

// Delete implements kv.Writer.
func (c *Client) Delete(key []byte) error {
	_, err := c.do(kindDelete, key, nil)
	return err
}

// Stats implements kv.StatsProvider by fetching the server-side store's
// counters. A dead client reports zeros.
func (c *Client) Stats() kv.Stats {
	resp, err := c.doRequest(opStats, nil)
	if err != nil {
		return kv.Stats{}
	}
	r := &payloadReader{b: resp}
	blob := r.Bytes()
	if r.Err() != nil {
		return kv.Stats{}
	}
	var stats kv.Stats
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&stats); err != nil {
		return kv.Stats{}
	}
	return stats
}

// Ping round-trips an empty frame — a liveness check.
func (c *Client) Ping() error {
	_, err := c.doRequest(opPing, nil)
	return err
}

// NetStats returns the client's transport counters.
func (c *Client) NetStats() NetStats {
	return NetStats{
		FramesSent: c.frames.Load(),
		OpFrames:   c.opFrames.Load(),
		OpsSent:    c.ops.Load(),
		BytesSent:  c.bytesOut.Load(),
		BytesRecv:  c.bytesIn.Load(),
	}
}

// Close implements kv.Store. In-flight operations fail with kv.ErrClosed;
// the remote store stays open (the server owns it).
func (c *Client) Close() error {
	c.qmu.Lock()
	if c.closed.Swap(true) {
		c.qmu.Unlock()
		return nil
	}
	close(c.opq)
	c.qmu.Unlock()
	for _, cc := range c.conns {
		cc.closeSession()
	}
	c.wg.Wait()
	return nil
}

// NewBatch implements kv.Batcher. The batch commits as one atomic frame.
func (c *Client) NewBatch() kv.Batch {
	return &netBatch{client: c}
}

// NewIterator implements kv.Iterable via server-side iterator paging. An
// open failure is reported through the iterator's Error, matching the
// local backends' corrupt-open behaviour.
func (c *Client) NewIterator(prefix, start []byte) kv.Iterator {
	var payload []byte
	payload = appendBytes(payload, prefix)
	payload = appendBytes(payload, start)
	resp, err := c.doRequest(opIterOpen, payload)
	if err != nil {
		return &netIterator{err: err, done: true}
	}
	r := &payloadReader{b: resp}
	id := r.U64()
	if r.Err() != nil {
		return &netIterator{err: fmt.Errorf("%w: iter open response", ErrBadPayload), done: true}
	}
	return &netIterator{client: c, id: id}
}

// inflight is one request frame awaiting its response.
type inflight struct {
	calls      []*call // point ops, in frame order (nil for standalone)
	standalone *call
}

func (fl *inflight) fail(err error) {
	if fl.standalone != nil {
		fl.standalone.finish(err)
	}
	for _, cl := range fl.calls {
		cl.finish(err)
	}
}

// clientConn is one pool slot: a supervisor owning a sequence of TCP
// sessions. Under the default fail-stop model the first session is the
// slot's whole life; with RedialAttempts > 0 the supervisor replaces a
// session that died on an I/O error with a freshly dialed one.
type clientConn struct {
	client *Client
	addr   string

	mu   sync.Mutex
	sess *session // current session, so Close/fail can cut the socket
}

// session is one TCP connection's lifetime: the socket, its in-flight
// window, and the waiters keyed by request ID.
type session struct {
	nc  net.Conn
	sem chan struct{} // in-flight window slots

	down     chan struct{} // closed when the session is torn down
	downOnce sync.Once

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]*inflight
	ioErr   error // first I/O error, for the supervisor
}

func newSession(nc net.Conn, window int) *session {
	return &session{
		nc:      nc,
		sem:     make(chan struct{}, window),
		down:    make(chan struct{}),
		waiters: make(map[uint64]*inflight),
	}
}

// shutdown marks the session dead, waking any sender blocked on a window
// slot. Idempotent.
func (s *session) shutdown() {
	s.downOnce.Do(func() { close(s.down) })
}

// fail records the session's first I/O error, tears it down, and fails
// every waiter with err. In-flight ops die with the outage rather than
// being re-shipped: the server may have executed them, and completing an
// op twice is worse than failing it once.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.ioErr == nil {
		s.ioErr = err
	}
	s.mu.Unlock()
	s.shutdown()
	s.abort(err)
}

// err returns the session's first I/O error, or nil.
func (s *session) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ioErr
}

// abort fails every waiter on this session with err.
func (s *session) abort(err error) {
	s.mu.Lock()
	waiters := s.waiters
	s.waiters = make(map[uint64]*inflight)
	s.mu.Unlock()
	for _, fl := range waiters {
		fl.fail(err)
	}
}

// closeSession cuts the current session's socket (Close/fail teardown).
func (cc *clientConn) closeSession() {
	cc.mu.Lock()
	if cc.sess != nil {
		cc.sess.nc.Close()
	}
	cc.mu.Unlock()
}

// errQueueClosed signals a clean sendLoop exit: Close closed the op queue.
var errQueueClosed = errors.New("kvnet: op queue closed")

// run supervises one pool slot: sessions run until the client closes, a
// protocol error latches it, or an I/O outage outlives the redial budget.
// An op pulled from the queue but never shipped carries over to the next
// session — the server never saw it, so re-shipping it preserves
// exactly-once completion; ops that reached the wire are never retried.
func (cc *clientConn) run(sess *session) {
	c := cc.client
	var held *call
	for {
		var err error
		held, err = cc.runSession(sess, held)
		if errors.Is(err, errQueueClosed) {
			return
		}
		next := cc.redial()
		if next == nil {
			// Budget exhausted (or zero: strict fail-stop). Latch the
			// outage client-wide and fail everything still queued; the
			// drain also keeps enqueuers from blocking until Close.
			if !c.closed.Load() {
				c.fail(err)
			}
			if held != nil {
				held.finish(c.deathErr())
				held = nil
			}
			for cl := range c.opq {
				cl.finish(c.deathErr())
			}
			return
		}
		sess = next
	}
}

// runSession drives one session to its end: the reader runs beside the
// sender, and whichever dies first tears the session down. Returns the op
// pulled past the session's death (never shipped) and why the session
// ended — errQueueClosed for a clean client Close.
func (cc *clientConn) runSession(sess *session, held *call) (*call, error) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		cc.readLoop(sess)
	}()
	held, err := cc.sendLoop(sess, held)
	// Unblock the reader and finish the teardown before the supervisor
	// decides what comes next.
	sess.nc.Close()
	<-done
	if err == nil {
		err = sess.err()
	}
	if err == nil {
		err = errors.New("kvnet: connection down")
	}
	return held, err
}

// redial tries to replace a dead session, sleeping RedialBackoff before
// each attempt. Returns nil once the budget is spent, the client closed,
// or a fatal error latched. The budget is per outage — each call starts
// fresh — so a successful reconnect buys the full budget again.
func (cc *clientConn) redial() *session {
	c := cc.client
	o := c.opts
	for attempt := 0; attempt < o.RedialAttempts && !c.dead(); attempt++ {
		time.Sleep(o.RedialBackoff)
		nc, err := net.DialTimeout("tcp", cc.addr, o.DialTimeout)
		if err != nil {
			continue
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if err := writeHandshake(nc); err != nil {
			nc.Close()
			continue
		}
		sess := newSession(nc, o.Window)
		cc.mu.Lock()
		if c.dead() {
			cc.mu.Unlock()
			nc.Close()
			return nil
		}
		cc.sess = sess
		cc.mu.Unlock()
		return sess
	}
	return nil
}

// sendLoop owns the socket's write side: it pulls calls off the shared
// queue, coalesces point ops up to the batch caps, and writes frames
// subject to the in-flight window. Coalescing is self-clocking: the window
// slot is acquired BEFORE the queue is drained, so while the window is
// saturated callers pile into the queue, and the freed slot ships the
// whole accumulation as one frame. Concurrency alone drives batch size —
// no timer sits on the hot path.
func (cc *clientConn) sendLoop(sess *session, held *call) (*call, error) {
	c := cc.client
	o := c.opts
	bw := bufio.NewWriterSize(sess.nc, 256<<10)
	for {
		// Session dead: hand the un-shipped op back to the supervisor.
		select {
		case <-sess.down:
			return held, nil
		default:
		}
		var first *call
		if held != nil {
			first, held = held, nil
		} else {
			var ok bool
			first, ok = <-c.opq
			if !ok {
				return nil, errQueueClosed // Close drained the queue
			}
		}
		if c.dead() {
			first.finish(c.deathErr())
			continue
		}
		// Acquire the window slot before forming the batch: this is
		// where a saturated window blocks, letting the op queue fill.
		select {
		case sess.sem <- struct{}{}: // released by readLoop
			// A select with both cases ready picks randomly, so re-check
			// down with priority: an op pulled long after this session
			// died must carry to the next session, not ship into a dead
			// socket just to fail.
			select {
			case <-sess.down:
				return first, nil
			default:
			}
		case <-sess.down: // reader gone; nothing will ever free a slot
			return first, nil // never shipped; the next session may carry it
		}
		if first.opcode != 0 {
			cc.ship(bw, sess, nil, first)
			continue
		}
		batch := []*call{first}
		size := pointOpSize(first)
		var qClosed bool
		held, batch, size, qClosed = cc.drain(batch, size)
		// Optional linger for open-loop workloads: top the batch up as
		// long as another frame is in flight to hide the wait.
		if !qClosed && held == nil && o.BatchLinger > 0 &&
			len(batch) < o.BatchMaxOps && size < o.BatchMaxBytes && len(sess.sem) > 1 {
			timer := time.NewTimer(o.BatchLinger)
		lingering:
			for len(batch) < o.BatchMaxOps && size < o.BatchMaxBytes {
				select {
				case cl, ok := <-c.opq:
					if !ok {
						break lingering
					}
					if cl.opcode != 0 {
						held = cl
						break lingering
					}
					batch = append(batch, cl)
					size += pointOpSize(cl)
				case <-timer.C:
					break lingering
				}
			}
			timer.Stop()
		}
		cc.ship(bw, sess, batch, nil)
	}
}

// drain tops batch up from the queue without blocking, stopping at the
// batch caps, a standalone call (returned as held), or queue closure.
func (cc *clientConn) drain(batch []*call, size int) (held *call, _ []*call, _ int, qClosed bool) {
	c := cc.client
	o := c.opts
	for len(batch) < o.BatchMaxOps && size < o.BatchMaxBytes {
		select {
		case cl, ok := <-c.opq:
			if !ok {
				return nil, batch, size, true
			}
			if cl.opcode != 0 {
				return cl, batch, size, false
			}
			batch = append(batch, cl)
			size += pointOpSize(cl)
		default:
			return nil, batch, size, false
		}
	}
	return nil, batch, size, false
}

// pointOpSize estimates an op's encoded size for the byte cap.
func pointOpSize(cl *call) int {
	return 12 + len(cl.key) + len(cl.val)
}

// ship encodes and writes one frame (either a coalesced point-op batch or
// a standalone request). The caller has already acquired a window slot.
func (cc *clientConn) ship(bw *bufio.Writer, sess *session, batch []*call, standalone *call) {
	c := cc.client
	sess.mu.Lock()
	sess.nextID++
	id := sess.nextID
	sess.waiters[id] = &inflight{calls: batch, standalone: standalone}
	sess.mu.Unlock()

	body := make([]byte, 0, 512)
	body = binary.LittleEndian.AppendUint64(body, id)
	if standalone != nil {
		body = append(body, standalone.opcode)
		body = append(body, standalone.payload...)
	} else {
		body = append(body, opOps)
		body = appendUvarint(body, uint64(len(batch)))
		for _, cl := range batch {
			body = append(body, cl.kind)
			body = appendBytes(body, cl.key)
			if cl.kind == kindPut {
				body = appendBytes(body, cl.val)
			}
		}
		c.opFrames.Add(1)
		c.ops.Add(uint64(len(batch)))
	}
	c.frames.Add(1)
	c.bytesOut.Add(uint64(len(body)))

	if err := writeFrame(bw, body); err != nil {
		sess.fail(fmt.Errorf("kvnet: write: %w", err))
		return
	}
	if err := bw.Flush(); err != nil {
		sess.fail(fmt.Errorf("kvnet: flush: %w", err))
		return
	}
	// The reader may have exited between our waiter registration and now
	// (its final abort ran too early to see this frame). Every reader exit
	// path closes down before its final abort, so if down is still open
	// here the reader is guaranteed to see this waiter; if it is closed,
	// abort ourselves. abort swaps the waiter map, so a waiter is failed
	// at most once even when both sides race into it.
	select {
	case <-sess.down:
		err := sess.err()
		if err == nil {
			err = c.deathErr()
		}
		sess.abort(err)
	default:
	}
}

// fatal propagates a connection-fatal error — a protocol violation no
// reconnect can repair: latch it client-wide and kill the session.
func (cc *clientConn) fatal(sess *session, err error) {
	cc.client.fail(err)
	sess.fail(err)
}

// readLoop owns the socket's read side: it matches response frames to
// waiters by reqID and decodes per-op results.
func (cc *clientConn) readLoop(sess *session) {
	c := cc.client
	defer sess.shutdown()
	br := bufio.NewReaderSize(sess.nc, 256<<10)
	for {
		body, err := readFrame(br, c.opts.MaxFrameBytes)
		if err != nil {
			// A read error during user-initiated Close is teardown,
			// not a protocol failure. Close down before the abort so a
			// racing ship() can detect that this abort missed it.
			// A peer-gone error kills only the session — the supervisor
			// decides whether it latches the client or redials.
			if c.closed.Load() {
				sess.shutdown()
				sess.abort(kv.ErrClosed)
			} else if err == io.EOF {
				sess.fail(errors.New("kvnet: server closed the connection"))
			} else {
				sess.fail(fmt.Errorf("kvnet: read: %w", err))
			}
			return
		}
		c.bytesIn.Add(uint64(len(body)))

		r := &payloadReader{b: body}
		id := r.U64()
		status := r.U8()
		if r.Err() != nil {
			cc.fatal(sess, fmt.Errorf("%w: short response header", ErrBadPayload))
			return
		}
		sess.mu.Lock()
		fl, ok := sess.waiters[id]
		delete(sess.waiters, id)
		sess.mu.Unlock()
		if !ok {
			cc.fatal(sess, fmt.Errorf("%w: response for unknown request %d", ErrBadPayload, id))
			return
		}
		<-sess.sem // release window slot

		if status == statusError {
			msg := r.Bytes()
			if r.Err() != nil {
				cc.fatal(sess, fmt.Errorf("%w: error response", ErrBadPayload))
				return
			}
			fl.fail(errors.New("kvnet: server: " + string(msg)))
			continue
		}
		if fl.standalone != nil {
			fl.standalone.resp = body[r.off:]
			fl.standalone.finish(nil)
			continue
		}
		if err := decodeOpsResponse(r, fl.calls); err != nil {
			// fl was already unregistered above, so fatal's abort
			// cannot reach it — fail its calls explicitly.
			fl.fail(err)
			cc.fatal(sess, err)
			return
		}
	}
}

// decodeOpsResponse delivers per-op results to the calls of one coalesced
// frame. A count mismatch — the wire-level version of a silently short
// batch — is a protocol error, never a partial delivery. The whole frame
// is decoded before any call is finished, so a mid-frame decode failure
// leaves every call unfinished for the caller to fail exactly once.
func decodeOpsResponse(r *payloadReader, calls []*call) error {
	n := r.Uvarint()
	if r.Err() != nil || n != uint64(len(calls)) {
		return fmt.Errorf("%w: ops response carries %d results, want %d", ErrBadPayload, n, len(calls))
	}
	perOp := make([]error, len(calls))
	for i, cl := range calls {
		rc := r.U8()
		switch rc {
		case rcOK:
			switch cl.kind {
			case kindGet:
				v := r.Bytes()
				if r.Err() != nil {
					return fmt.Errorf("%w: get result", ErrBadPayload)
				}
				cl.found = true
				cl.value = append([]byte(nil), v...)
			case kindHas:
				cl.found = r.U8() == 1
			}
			if r.Err() != nil {
				return fmt.Errorf("%w: op result", ErrBadPayload)
			}
		case rcNotFound:
			cl.found = false
		case rcError:
			msg := r.Bytes()
			if r.Err() != nil {
				return fmt.Errorf("%w: op error result", ErrBadPayload)
			}
			perOp[i] = errors.New("kvnet: server: " + string(msg))
		default:
			return fmt.Errorf("%w: op result code %d", ErrBadPayload, rc)
		}
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in ops response", ErrBadPayload, r.Remaining())
	}
	for i, cl := range calls {
		cl.finish(perOp[i])
	}
	return nil
}

// netBatch implements kv.Batch; Write ships one atomic frame.
type netBatch struct {
	client *Client
	ops    []batchEntry
	size   int
}

type batchEntry struct {
	kind byte
	key  []byte
	val  []byte
}

func (b *netBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchEntry{
		kind: kindPut,
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *netBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchEntry{kind: kindDelete, key: append([]byte(nil), key...)})
	b.size += len(key)
	return nil
}

func (b *netBatch) ValueSize() int { return b.size }

func (b *netBatch) Write() error {
	payload := make([]byte, 0, b.size+16*len(b.ops)+8)
	payload = appendUvarint(payload, uint64(len(b.ops)))
	for _, e := range b.ops {
		payload = append(payload, e.kind)
		payload = appendBytes(payload, e.key)
		if e.kind == kindPut {
			payload = appendBytes(payload, e.val)
		}
	}
	_, err := b.client.doRequest(opAtomic, payload)
	return err
}

func (b *netBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

func (b *netBatch) Replay(w kv.Writer) error {
	for _, e := range b.ops {
		var err error
		if e.kind == kindDelete {
			err = w.Delete(e.key)
		} else {
			err = w.Put(e.key, e.val)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// netIterator pages a server-side iterator. A server-side iterator error
// latches here exactly like a local corrupt-scan error: Next() goes false
// and Error() reports it — never a clean-looking short scan.
type netIterator struct {
	client *Client
	id     uint64

	page     [][2][]byte // decoded (key, value) pairs of the current page
	pos      int
	done     bool // server exhausted (and released) the iterator
	err      error
	key, val []byte
	released bool
}

func (it *netIterator) Next() bool {
	for it.pos >= len(it.page) {
		if it.done || it.err != nil || it.released {
			return false
		}
		it.fetch()
	}
	it.key = it.page[it.pos][0]
	it.val = it.page[it.pos][1]
	it.pos++
	return true
}

// fetch pulls the next page into it.page (possibly empty on exhaustion).
func (it *netIterator) fetch() {
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, it.id)
	payload = appendUvarint(payload, uint64(it.client.opts.IterPageOps))
	resp, err := it.client.doRequest(opIterNext, payload)
	if err != nil {
		it.err = err
		it.done = true
		return
	}
	r := &payloadReader{b: resp}
	done := r.U8() == 1
	hasErr := r.U8() == 1
	var iterErr error
	if hasErr {
		msg := r.Bytes()
		if r.Err() == nil {
			iterErr = errors.New("kvnet: server iterator: " + string(msg))
		}
	}
	n := r.Uvarint()
	if r.Err() != nil {
		it.err = fmt.Errorf("%w: iter page", ErrBadPayload)
		it.done = true
		return
	}
	it.page = it.page[:0]
	it.pos = 0
	for i := uint64(0); i < n; i++ {
		k := r.Bytes()
		v := r.Bytes()
		if r.Err() != nil {
			it.err = fmt.Errorf("%w: iter entry", ErrBadPayload)
			it.done = true
			return
		}
		it.page = append(it.page, [2][]byte{k, v})
	}
	it.done = done
	if iterErr != nil {
		it.err = iterErr
	}
}

func (it *netIterator) Key() []byte   { return it.key }
func (it *netIterator) Value() []byte { return it.val }
func (it *netIterator) Error() error  { return it.err }

func (it *netIterator) Release() {
	if it.released {
		return
	}
	it.released = true
	it.page = nil
	if it.client == nil || it.done {
		return // never opened, or already released server-side
	}
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, it.id)
	it.client.doRequest(opIterClose, payload)
}
