// Package kvnet is the network serving layer: a length-framed binary wire
// protocol over TCP exposing the full kv.Store surface, a Server that
// fronts any backend with per-connection worker goroutines, and a Client
// that implements kv.Store by coalescing concurrent callers' operations
// into batched round-trips.
//
// The protocol exists to amortize per-operation network cost: a point op
// is tens of bytes, so at cloud-KV rates the syscall + framing + dispatch
// overhead of one-request-per-op dominates throughput. The client's batch
// buffers aggregate up to ~1k ops into one frame, self-clocked by a
// pipelined in-flight window: while the window is saturated, concurrent
// callers pile into the op queue, and each freed slot ships the
// accumulation as one frame. An optional linger timer can top batches up
// further for open-loop workloads.
//
// Wire format. Every frame, in both directions, is:
//
//	u32 bodyLen (LE) | u32 crc32c(body) | body
//
// The CRC makes torn or bit-flipped frames a detected protocol error, never
// a silently short batch — the same discipline PR 4 established for scans
// over corrupt SSTables. Request bodies are:
//
//	u64 reqID | u8 opcode | opcode-specific payload
//
// and response bodies are:
//
//	u64 reqID | u8 status | payload (status==statusError: error message)
//
// Frames may be answered out of order; reqID is the correlation key. A
// connection starts with a 9-byte handshake (8 magic bytes + version) so a
// stray client of some other protocol fails fast instead of feeding the
// frame reader garbage.
package kvnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// handshakeMagic opens every connection, followed by protocolVersion.
var handshakeMagic = [8]byte{'e', 't', 'h', 'k', 'v', 'n', 'e', 't'}

// protocolVersion is bumped on any incompatible wire change.
const protocolVersion = 1

// frameHeaderLen is bodyLen + crc.
const frameHeaderLen = 8

// DefaultMaxFrameBytes bounds a single frame body. Large enough for a
// coalesced batch of big values or an atomic import batch, small enough
// that a corrupt length prefix cannot trigger a multi-GiB allocation.
const DefaultMaxFrameBytes = 64 << 20

// Request opcodes.
const (
	opOps       = 1 // coalesced non-atomic get/has/put/delete batch
	opAtomic    = 2 // atomic write batch (kv.Batch.Write)
	opIterOpen  = 3 // open a server-side iterator
	opIterNext  = 4 // fetch the next page of an open iterator
	opIterClose = 5 // release a server-side iterator
	opStats     = 6 // kv.Stats snapshot of the backing store
	opPing      = 7 // liveness / handshake probe
)

// Sub-operation kinds inside opOps and opAtomic payloads.
const (
	kindGet    = 0
	kindHas    = 1
	kindPut    = 2
	kindDelete = 3
)

// Response statuses.
const (
	statusOK    = 0
	statusError = 1 // request-level failure; payload is the message
)

// Per-op result codes inside an opOps response.
const (
	rcOK       = 0
	rcNotFound = 1
	rcError    = 2
)

// Protocol errors surfaced by the frame reader. Both sides treat any of
// these as fatal for the connection: once framing is suspect, nothing
// later on the stream can be trusted.
var (
	// ErrCorruptFrame reports a CRC mismatch between header and body —
	// a bit flip, overwrite, or desynchronized stream.
	ErrCorruptFrame = errors.New("kvnet: corrupt frame (crc mismatch)")
	// ErrFrameTooLarge reports a length prefix beyond the frame budget,
	// which in practice means a desynchronized or malicious stream.
	ErrFrameTooLarge = errors.New("kvnet: frame exceeds size limit")
	// ErrTruncatedFrame reports a stream that ended mid-frame.
	ErrTruncatedFrame = errors.New("kvnet: truncated frame")
	// ErrBadHandshake reports a connection that did not open with the
	// protocol magic and a supported version.
	ErrBadHandshake = errors.New("kvnet: bad handshake")
	// ErrBadPayload reports a frame whose CRC checked out but whose
	// payload does not decode — a peer speaking a broken dialect.
	ErrBadPayload = errors.New("kvnet: malformed frame payload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame emits one frame to w. The body is not retained.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame body from r. A clean EOF before any header
// byte returns io.EOF; an EOF mid-frame returns ErrTruncatedFrame. The
// returned slice is freshly allocated and owned by the caller.
func readFrame(r io.Reader, maxBytes int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if int64(n) > int64(maxBytes) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrCorruptFrame
	}
	return body, nil
}

// writeHandshake sends the magic + version that opens a client connection.
func writeHandshake(w io.Writer) error {
	var buf [9]byte
	copy(buf[:8], handshakeMagic[:])
	buf[8] = protocolVersion
	_, err := w.Write(buf[:])
	return err
}

// readHandshake validates the 9 opening bytes of a server-side connection.
func readHandshake(r io.Reader) error {
	var buf [9]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if [8]byte(buf[:8]) != handshakeMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadHandshake, buf[:8])
	}
	if buf[8] != protocolVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadHandshake, buf[8], protocolVersion)
	}
	return nil
}

// appendUvarint appends v in uvarint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendBytes appends a uvarint length prefix followed by p.
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// payloadReader decodes a frame body with bounds checking. Every method
// latches the first error; callers check Err once at the end (or wherever
// a decoded value gates further decoding).
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = ErrBadPayload
	}
}

// Err returns the latched decode error, if any.
func (r *payloadReader) Err() error { return r.err }

// Remaining reports how many undecoded bytes are left.
func (r *payloadReader) Remaining() int { return len(r.b) - r.off }

// U8 decodes one byte.
func (r *payloadReader) U8() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U64 decodes a fixed-width little-endian u64.
func (r *payloadReader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Uvarint decodes a varint-encoded unsigned integer.
func (r *payloadReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bytes decodes a uvarint-prefixed byte string. The returned slice aliases
// the frame body, which is immutable once handed to the decoder.
func (r *payloadReader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v
}
