package kvnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// Workers is the number of request-executing goroutines per
	// connection. Coalesced frames from one client are already a unit of
	// parallelism-free work, so a handful of workers per connection is
	// enough to overlap store latency with decode/encode. Default 4.
	Workers int
	// MaxFrameBytes bounds a single request frame. Default
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Registry receives server metrics (per-op latency histograms,
	// batch-size histogram, frame/byte counters). Nil disables export;
	// the server still runs.
	Registry *obs.Registry
	// IterPageBytes caps the payload of one iterator page. Default 1 MiB.
	IterPageBytes int
	// Logf logs connection-fatal protocol errors. Default log.Printf;
	// tests silence it.
	Logf func(format string, args ...any)
}

func (o *ServerOptions) withDefaults() ServerOptions {
	v := *o
	if v.Workers <= 0 {
		v.Workers = 4
	}
	if v.MaxFrameBytes <= 0 {
		v.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if v.IterPageBytes <= 0 {
		v.IterPageBytes = 1 << 20
	}
	if v.Logf == nil {
		v.Logf = log.Printf
	}
	return v
}

// serverMetrics is the hot-path metric handle bundle, resolved once.
type serverMetrics struct {
	frames       *obs.Counter   // request frames handled
	bytesIn      *obs.Counter   // request body bytes
	bytesOut     *obs.Counter   // response body bytes
	coalescedOps *obs.Counter   // ops arriving in frames carrying ≥2 ops
	batchOps     *obs.Histogram // ops per opOps frame
	conns        *obs.Gauge     // live connections
	opLat        [4]*obs.Histogram
	scanLat      *obs.Histogram // iterator page fetches
	atomicLat    *obs.Histogram // atomic batch commits
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	if r == nil {
		// A private registry keeps the hot path branch-free; nothing
		// reads it, and obs metrics are cheap atomics.
		r = obs.NewRegistry()
	}
	m := &serverMetrics{
		frames:       r.Counter("ethkv_server_frames_total"),
		bytesIn:      r.Counter("ethkv_server_bytes_in_total"),
		bytesOut:     r.Counter("ethkv_server_bytes_out_total"),
		coalescedOps: r.Counter("ethkv_server_coalesced_ops_total"),
		batchOps:     r.Histogram("ethkv_server_batch_ops"),
		conns:        r.Gauge("ethkv_server_connections"),
	}
	for kind, op := range map[int]string{kindGet: "get", kindHas: "has", kindPut: "put", kindDelete: "delete"} {
		m.opLat[kind] = r.Histogram(obs.Name("ethkv_server_op_latency_ns", "op", op))
	}
	m.scanLat = r.Histogram(obs.Name("ethkv_server_op_latency_ns", "op", "scan"))
	m.atomicLat = r.Histogram(obs.Name("ethkv_server_op_latency_ns", "op", "batch"))
	return m
}

// Server serves a kv.Store over the kvnet wire protocol. One Server may
// serve many connections; each connection gets a frame-reader goroutine, a
// pool of worker goroutines executing requests against the store, and a
// response-writer goroutine that coalesces adjacent responses into one
// buffered flush.
type Server struct {
	store   kv.Store
	opts    ServerOptions
	metrics *serverMetrics

	// Iterators are registered server-wide, not per connection: a client
	// multiplexing one logical store over several TCP connections may
	// open an iterator through one connection and page it through
	// another. Each handle remembers its owning connection so connection
	// teardown still releases everything that connection opened.
	itersMu sync.Mutex
	iters   map[uint64]*iterHandle
	iterSeq uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns a Server fronting store.
func NewServer(store kv.Store, opts ServerOptions) *Server {
	o := opts.withDefaults()
	return &Server{
		store:     store,
		opts:      o,
		metrics:   newServerMetrics(o.Registry),
		iters:     make(map[uint64]*iterHandle),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting on addr in a background goroutine and returns
// the bound address (useful with a ":0" port).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Serve accepts connections on l until l is closed or the server shuts
// down. It returns nil on server shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return kv.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.listeners, l)
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. The backing store is not closed;
// the caller owns it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// iterHandle is one open server-side iterator. Pages for the same iterator
// serialize on mu; distinct iterators proceed in parallel across workers.
// released guards against a close racing a final page: whichever side wins
// releases the backend iterator exactly once.
type iterHandle struct {
	mu       sync.Mutex
	it       kv.Iterator
	owner    *connState
	released bool
}

// release releases the backend iterator exactly once.
func (h *iterHandle) release() {
	h.mu.Lock()
	if !h.released {
		h.released = true
		h.it.Release()
	}
	h.mu.Unlock()
}

// registerIter assigns a server-wide ID to a fresh iterator and records st
// as its owner for teardown.
func (s *Server) registerIter(st *connState, it kv.Iterator) uint64 {
	h := &iterHandle{it: it, owner: st}
	s.itersMu.Lock()
	s.iterSeq++
	id := s.iterSeq
	s.iters[id] = h
	st.owned[id] = struct{}{}
	s.itersMu.Unlock()
	return id
}

// lookupIter returns the handle for id, or nil if unknown.
func (s *Server) lookupIter(id uint64) *iterHandle {
	s.itersMu.Lock()
	h := s.iters[id]
	s.itersMu.Unlock()
	return h
}

// takeIter removes id from the registry and its owner's set, returning the
// handle (nil if already gone). Exactly one caller wins a racing take.
func (s *Server) takeIter(id uint64) *iterHandle {
	s.itersMu.Lock()
	h := s.iters[id]
	if h != nil {
		delete(s.iters, id)
		delete(h.owner.owned, id)
	}
	s.itersMu.Unlock()
	return h
}

// releaseConnIters releases every iterator st still owns. Called on
// connection teardown so a dead client cannot strand backend iterators.
func (s *Server) releaseConnIters(st *connState) {
	s.itersMu.Lock()
	hs := make([]*iterHandle, 0, len(st.owned))
	for id := range st.owned {
		if h := s.iters[id]; h != nil {
			hs = append(hs, h)
			delete(s.iters, id)
		}
		delete(st.owned, id)
	}
	s.itersMu.Unlock()
	for _, h := range hs {
		h.release()
	}
}

// serveConn runs one connection to completion.
func (s *Server) serveConn(c net.Conn) {
	m := s.metrics
	m.conns.Add(1)
	defer m.conns.Add(-1)
	defer c.Close()

	br := bufio.NewReaderSize(c, 256<<10)
	if err := readHandshake(br); err != nil {
		s.opts.Logf("kvnet: %s: %v", c.RemoteAddr(), err)
		return
	}

	st := &connState{owned: make(map[uint64]struct{})}
	// Release any iterators still open when the connection dies.
	defer s.releaseConnIters(st)

	work := make(chan []byte, s.opts.Workers*2)
	out := make(chan []byte, s.opts.Workers*4)

	var workers sync.WaitGroup
	for i := 0; i < s.opts.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for body := range work {
				resp, err := s.handle(st, body)
				if err != nil {
					// Protocol violation: the stream can't be
					// trusted. Kill the connection; in-flight
					// frames fail with it.
					s.opts.Logf("kvnet: %s: %v", c.RemoteAddr(), err)
					c.Close()
					continue
				}
				out <- resp
			}
		}()
	}
	// Writer: drain out, coalescing adjacent responses into one flush.
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bw := bufio.NewWriterSize(c, 256<<10)
		for body := range out {
			m.bytesOut.Add(uint64(len(body)))
			if err := writeFrame(bw, body); err != nil {
				c.Close()
				continue
			}
			// Opportunistically fold queued responses into this flush.
			for {
				select {
				case more, ok := <-out:
					if !ok {
						bw.Flush()
						return
					}
					m.bytesOut.Add(uint64(len(more)))
					if err := writeFrame(bw, more); err != nil {
						c.Close()
					}
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.Close()
			}
		}
	}()

	for {
		body, err := readFrame(br, s.opts.MaxFrameBytes)
		if err != nil {
			// A clean EOF is the client hanging up; anything else —
			// truncation, CRC mismatch, oversized length — is a
			// protocol error worth logging before the teardown, unless
			// it is just our own Close tearing the socket down.
			s.mu.Lock()
			closing := s.closed
			s.mu.Unlock()
			if err != io.EOF && !closing {
				s.opts.Logf("kvnet: %s: %v", c.RemoteAddr(), err)
			}
			break
		}
		m.frames.Inc()
		m.bytesIn.Add(uint64(len(body)))
		work <- body
	}
	close(work)
	workers.Wait()
	close(out)
	writer.Wait()
}

// connState is per-connection request-independent state: the set of
// iterator IDs this connection opened, guarded by the server's itersMu.
type connState struct {
	owned map[uint64]struct{}
}

// handle executes one decoded request frame and returns the encoded
// response body. A non-nil error is a protocol violation fatal to the
// connection; store-level failures are encoded into the response instead.
func (s *Server) handle(st *connState, body []byte) ([]byte, error) {
	r := &payloadReader{b: body}
	reqID := r.U64()
	opcode := r.U8()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: short request header", ErrBadPayload)
	}

	resp := make([]byte, 0, 256)
	resp = binary.LittleEndian.AppendUint64(resp, reqID)
	resp = append(resp, statusOK)

	fail := func(err error) []byte {
		resp = resp[:8]
		resp = append(resp, statusError)
		return appendBytes(resp, []byte(err.Error()))
	}

	switch opcode {
	case opOps:
		return s.handleOps(r, resp)
	case opAtomic:
		start := time.Now()
		b := s.store.NewBatch()
		n := r.Uvarint()
		for i := uint64(0); i < n; i++ {
			kind := r.U8()
			key := r.Bytes()
			switch kind {
			case kindPut:
				val := r.Bytes()
				if r.Err() == nil {
					b.Put(key, val)
				}
			case kindDelete:
				if r.Err() == nil {
					b.Delete(key)
				}
			default:
				return nil, fmt.Errorf("%w: atomic batch kind %d", ErrBadPayload, kind)
			}
			if r.Err() != nil {
				return nil, fmt.Errorf("%w: atomic batch entry", ErrBadPayload)
			}
		}
		if err := b.Write(); err != nil {
			return fail(err), nil
		}
		s.metrics.atomicLat.Observe(uint64(time.Since(start)))
		return resp, nil
	case opIterOpen:
		prefix := r.Bytes()
		startKey := r.Bytes()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: iter open", ErrBadPayload)
		}
		it := s.store.NewIterator(cloneBytes(prefix), cloneBytes(startKey))
		id := s.registerIter(st, it)
		return binary.LittleEndian.AppendUint64(resp, id), nil
	case opIterNext:
		id := r.U64()
		max := r.Uvarint()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: iter next", ErrBadPayload)
		}
		h := s.lookupIter(id)
		if h == nil {
			// Paging an iterator the server does not know is a broken
			// client, not an empty scan: answering with a clean done
			// page would be exactly the silent truncation the protocol
			// exists to prevent.
			return fail(fmt.Errorf("kvnet: unknown iterator %d", id)), nil
		}
		return s.handleIterNext(h, id, resp, int(max)), nil
	case opIterClose:
		id := r.U64()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: iter close", ErrBadPayload)
		}
		// Close is idempotent: the server may already have auto-released
		// the iterator on exhaustion or error.
		if h := s.takeIter(id); h != nil {
			h.release()
		}
		return resp, nil
	case opStats:
		var stats kv.Stats
		if sp, ok := s.store.(kv.StatsProvider); ok {
			stats = sp.Stats()
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(stats); err != nil {
			return fail(err), nil
		}
		return appendBytes(resp, buf.Bytes()), nil
	case opPing:
		return resp, nil
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", ErrBadPayload, opcode)
	}
}

// handleOps executes a coalesced batch of point operations in order.
// Per-op failures are encoded per op; the frame itself always succeeds
// unless malformed.
func (s *Server) handleOps(r *payloadReader, resp []byte) ([]byte, error) {
	m := s.metrics
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: ops count", ErrBadPayload)
	}
	m.batchOps.Observe(n)
	if n >= 2 {
		m.coalescedOps.Add(n)
	}
	resp = appendUvarint(resp, n)
	for i := uint64(0); i < n; i++ {
		kind := r.U8()
		key := r.Bytes()
		var val []byte
		if kind == kindPut {
			val = r.Bytes()
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: op %d/%d", ErrBadPayload, i, n)
		}
		start := time.Now()
		switch kind {
		case kindGet:
			v, err := s.store.Get(key)
			switch {
			case err == nil:
				resp = append(resp, rcOK)
				resp = appendBytes(resp, v)
			case errors.Is(err, kv.ErrNotFound):
				resp = append(resp, rcNotFound)
			default:
				resp = append(resp, rcError)
				resp = appendBytes(resp, []byte(err.Error()))
			}
		case kindHas:
			ok, err := s.store.Has(key)
			if err != nil {
				resp = append(resp, rcError)
				resp = appendBytes(resp, []byte(err.Error()))
			} else {
				resp = append(resp, rcOK)
				if ok {
					resp = append(resp, 1)
				} else {
					resp = append(resp, 0)
				}
			}
		case kindPut:
			if err := s.store.Put(key, val); err != nil {
				resp = append(resp, rcError)
				resp = appendBytes(resp, []byte(err.Error()))
			} else {
				resp = append(resp, rcOK)
			}
		case kindDelete:
			if err := s.store.Delete(key); err != nil {
				resp = append(resp, rcError)
				resp = appendBytes(resp, []byte(err.Error()))
			} else {
				resp = append(resp, rcOK)
			}
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrBadPayload, kind)
		}
		m.opLat[kind].Observe(uint64(time.Since(start)))
	}
	return resp, nil
}

// handleIterNext pages one open iterator. A page ends at max entries, the
// byte budget, or iterator exhaustion; exhaustion (or an iterator error)
// releases the iterator server-side — the client's explicit close then
// becomes a no-op.
func (s *Server) handleIterNext(h *iterHandle, id uint64, resp []byte, max int) []byte {
	start := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released {
		// A concurrent close won the race for this handle; the backend
		// iterator is gone, so report it as a scan error, not an empty page.
		resp = append(resp, 1, 1) // done, error
		resp = appendBytes(resp, []byte("kvnet: iterator released during page fetch"))
		return appendUvarint(resp, 0)
	}

	if max <= 0 {
		max = 1
	}
	// Reserve space for flags; entries appended after.
	entries := make([]byte, 0, 4<<10)
	count := 0
	done := false
	for count < max && len(entries) < s.opts.IterPageBytes {
		if !h.it.Next() {
			done = true
			break
		}
		entries = appendBytes(entries, h.it.Key())
		entries = appendBytes(entries, h.it.Value())
		count++
	}
	var iterErr error
	if done {
		iterErr = h.it.Error()
		h.released = true
		h.it.Release()
		s.takeIter(id)
	}
	s.metrics.scanLat.Observe(uint64(time.Since(start)))

	if done {
		resp = append(resp, 1)
	} else {
		resp = append(resp, 0)
	}
	if iterErr != nil {
		resp = append(resp, 1)
		resp = appendBytes(resp, []byte(iterErr.Error()))
	} else {
		resp = append(resp, 0)
	}
	resp = appendUvarint(resp, uint64(count))
	return append(resp, entries...)
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
