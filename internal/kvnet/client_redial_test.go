package kvnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ethkv/internal/kv"
)

// TestClientFailStopExactlyOnce is the regression test for op completion
// during connection death under the default fail-stop model: when the
// server dies mid-traffic, every outstanding op must complete exactly once
// — returning an error, never hanging (a lost completion would park its
// caller forever) and never finishing twice (a double finish panics on the
// second close of the op's done channel, which -race and this test would
// surface). Afterwards the client must be latched: every future op fails
// immediately with the fatal error.
func TestClientFailStopExactlyOnce(t *testing.T) {
	store := kv.NewMemStore()
	addr, srv := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{Conns: 2, Window: 4})
	defer c.Close()

	const workers = 8
	var wg sync.WaitGroup
	var sawError atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := c.Put(key, []byte("v")); err != nil {
					sawError.Add(1)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let concurrent traffic build
	srv.Close()                       // cut every connection mid-window
	wg.Wait()                         // hangs here if any op never completes

	if sawError.Load() != workers {
		t.Fatalf("%d/%d workers observed the failure", sawError.Load(), workers)
	}
	// The latch: ops after the death fail fast, they do not block.
	start := time.Now()
	if err := c.Put([]byte("after"), []byte("v")); err == nil {
		t.Fatal("client accepted an op after fail-stop latch")
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a latched client")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("latched client took %v to fail ops", d)
	}
}

// TestClientRedialSurvivesRestart exercises bounded redial-on-reconnect:
// with RedialAttempts set, a server restart is an outage the client rides
// out, not a fatal error. Ops in flight during the outage fail (they are
// never re-shipped — the dead server may have executed them), but ops
// issued afterwards complete on the fresh session and see all state the
// store held before the restart.
func TestClientRedialSurvivesRestart(t *testing.T) {
	store := kv.NewMemStore()
	addr, srv := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{
		Conns:          2,
		RedialAttempts: 200,
		RedialBackoff:  2 * time.Millisecond,
	})
	defer c.Close()

	if err := c.Put([]byte("before"), []byte("1")); err != nil {
		t.Fatalf("put before restart: %v", err)
	}
	srv.Close()

	// Restart: a new server for the same store on the same address.
	srv2 := NewServer(store, silentOpts())
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })

	// An op racing the outage may fail exactly once; retried, it must
	// complete on the redialed session. If the client wrongly latched,
	// every retry fails and the deadline trips.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Get([]byte("before"))
		if err == nil {
			if string(v) != "1" {
				t.Fatalf("state lost across restart: got %q", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("get never succeeded after server restart: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Put([]byte("after"), []byte("2")); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	if v, err := c.Get([]byte("after")); err != nil || string(v) != "2" {
		t.Fatalf("get after restart = %q, %v", v, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("client latched despite successful redial: %v", err)
	}
}

// TestClientRedialBudgetExhausted checks the bound: when the server never
// comes back, the redial budget runs out and the client latches fail-stop
// exactly as if redial were disabled — future ops fail immediately rather
// than blocking behind endless reconnect attempts.
func TestClientRedialBudgetExhausted(t *testing.T) {
	store := kv.NewMemStore()
	addr, srv := startServer(t, store, silentOpts())
	c := dialT(t, addr, ClientOptions{
		RedialAttempts: 3,
		RedialBackoff:  time.Millisecond,
	})
	defer c.Close()

	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	srv.Close() // and never restart

	deadline := time.Now().Add(10 * time.Second)
	var err error
	for err == nil {
		if time.Now().After(deadline) {
			t.Fatal("ops kept succeeding after server death")
		}
		err = c.Put([]byte("k"), []byte("v"))
	}
	// Give the budget time to drain, then require a fast-failing latch.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after redial budget exhaustion")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("latched client took %v to fail ops", d)
	}
}
