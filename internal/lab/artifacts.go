package lab

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ethkv/internal/analysis"
	"ethkv/internal/trace"
)

// WriteArtifacts renders the analysis outputs in the paper artifact's file
// layout (§A.5 of the artifact appendix):
//
//	dir/
//	  mergedKVOpDistribution/
//	    <class>_<op>_with_key_dis.txt     per-key frequency distributions
//	  readCorrelationOutput/
//	    freq-category-<distance>.log      class-pair counts at a distance
//	    Dist-<distance>-<A>-<B>-freq.log  per-pair frequency distribution
//	  updateCorrelationOutput/
//	    (same structure as read correlations)
//	  kvSizeDistribution/
//	    <class>.txt                       "size count" rows per class
//
// Each size/frequency file holds "value count" rows, matching the formats
// the artifact's analysis tools emit.
func WriteArtifacts(dir string, res *Result) error {
	ops := analysis.CollectOpDistSlice(res.Ops, nil)

	// KV size distribution: one file per class with "size count" rows.
	sizeDir := filepath.Join(dir, "kvSizeDistribution")
	if err := os.MkdirAll(sizeDir, 0o755); err != nil {
		return err
	}
	for class, cs := range res.Store.PerClass {
		var sb strings.Builder
		for _, p := range res.Store.ValueSizeSeries(class) {
			fmt.Fprintf(&sb, "%d %d\n", p.Size, p.Count)
		}
		name := filepath.Join(sizeDir, sanitize(class.String())+".txt")
		if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		_ = cs
	}

	// Op distribution: per (class, op) frequency files.
	opDir := filepath.Join(dir, "mergedKVOpDistribution")
	if err := os.MkdirAll(opDir, 0o755); err != nil {
		return err
	}
	for class, co := range ops.PerClass {
		for kind, freq := range map[string]map[string]uint32{
			"read":   co.ReadFreq,
			"write":  co.WriteFreq,
			"delete": co.DeleteFreq,
		} {
			if len(freq) == 0 {
				continue
			}
			var sb strings.Builder
			for _, p := range analysis.FrequencyDistribution(freq) {
				fmt.Fprintf(&sb, "%d %d\n", p.Freq, p.Keys)
			}
			name := filepath.Join(opDir,
				fmt.Sprintf("%s_%s_with_key_dis.txt", sanitize(class.String()), kind))
			if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
				return err
			}
		}
	}

	// Correlation outputs, read and update.
	for _, pass := range []struct {
		sub string
		op  trace.OpType
	}{
		{"readCorrelationOutput", trace.OpRead},
		{"updateCorrelationOutput", trace.OpUpdate},
	} {
		corr := analysis.CollectCorrelationsSlice(res.Ops, analysis.CorrConfig{Op: pass.op})
		corrDir := filepath.Join(dir, pass.sub)
		if err := os.MkdirAll(corrDir, 0o755); err != nil {
			return err
		}
		for _, d := range corr.Distances() {
			var sb strings.Builder
			for _, intra := range []bool{true, false} {
				for _, series := range corr.TopPairs(d, 10, intra) {
					fmt.Fprintf(&sb, "%s %d\n", series.Pair, series.Counts[d])
				}
			}
			name := filepath.Join(corrDir, fmt.Sprintf("freq-category-%d.log", d))
			if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
				return err
			}
		}
		// Per-pair frequency distributions at the tracked distances.
		for _, d := range []int{0, 1024} {
			for _, intra := range []bool{true, false} {
				for _, series := range corr.TopPairs(d, 3, intra) {
					points := corr.FrequencyDistribution(d, series.Pair)
					if len(points) == 0 {
						continue
					}
					var sb strings.Builder
					for _, p := range points {
						fmt.Fprintf(&sb, "%d %d\n", p.Freq, p.Keys)
					}
					name := filepath.Join(corrDir, fmt.Sprintf("Dist-%d-%s-%s-freq.log",
						d, sanitize(series.Pair.A.String()), sanitize(series.Pair.B.String())))
					if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// sanitize makes a class name filesystem-safe.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ':
			return '_'
		}
		return r
	}, name)
}
