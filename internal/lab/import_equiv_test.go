package lab

import (
	"bytes"
	"testing"
)

// TestImportWorkersEquivalence: a lab run must emit the byte-identical
// trace — and identical import/KV counters — at any import-pipeline width.
// This is the end-to-end version of the chain package's pipelined
// equivalence suite: it covers the full Run path (genesis, traced store,
// freezer, census) rather than a bare processor.
func TestImportWorkersEquivalence(t *testing.T) {
	workload := testWorkload()
	for _, mode := range []Mode{Bare, Cached} {
		t.Run(mode.String(), func(t *testing.T) {
			seq, err := Run(Config{Mode: mode, Blocks: 20, Workload: workload, ImportWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				par, err := Run(Config{Mode: mode, Blocks: 20, Workload: workload, ImportWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Stats != seq.Stats {
					t.Fatalf("workers=%d: stats %+v != sequential %+v", workers, par.Stats, seq.Stats)
				}
				if len(par.Ops) != len(seq.Ops) {
					t.Fatalf("workers=%d: %d ops vs %d sequential", workers, len(par.Ops), len(seq.Ops))
				}
				for i := range seq.Ops {
					a, b := seq.Ops[i], par.Ops[i]
					if a.Type != b.Type || a.Class != b.Class || !bytes.Equal(a.Key, b.Key) ||
						a.ValueSize != b.ValueSize || a.Hit != b.Hit {
						t.Fatalf("workers=%d: op %d diverged:\nseq %+v\npar %+v", workers, i, a, b)
					}
				}
			}
		})
	}
}
