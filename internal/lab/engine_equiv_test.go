package lab

import (
	"reflect"
	"testing"

	"ethkv/internal/analysis"
	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// seqAnalyze is the fully sequential reference: one Observe loop per
// collector, no engine.
func seqAnalyze(ops []trace.Op, cfg analysis.CorrConfig) (*analysis.OpDist, *analysis.Correlator) {
	d := analysis.NewOpDist(nil)
	c := analysis.NewCorrelator(cfg)
	for _, op := range ops {
		d.Observe(op)
		c.Observe(op)
	}
	return d, c
}

// requireSameAnalysis compares the report-facing surface of both
// collectors: the census maps and the correlator's counts, top pairs, and
// frequency distributions.
func requireSameAnalysis(t *testing.T, mode string, wantD, gotD *analysis.OpDist, wantC, gotC *analysis.Correlator, cfg analysis.CorrConfig) {
	t.Helper()
	if wantD.Total != gotD.Total || wantD.Truncated != gotD.Truncated ||
		!reflect.DeepEqual(wantD.PerClass, gotD.PerClass) {
		t.Fatalf("%s: census diverged", mode)
	}
	if wantC.TrackedOps() != gotC.TrackedOps() {
		t.Fatalf("%s: tracked ops = %d, want %d", mode, gotC.TrackedOps(), wantC.TrackedOps())
	}
	classes := rawdb.AllClasses()
	for _, d := range wantC.Distances() {
		for _, a := range classes {
			for _, b := range classes {
				cp := analysis.MakeClassPair(a, b)
				if wantC.Counts(d, cp) != gotC.Counts(d, cp) {
					t.Fatalf("%s: Counts(%d, %v) = %d, want %d",
						mode, d, cp, gotC.Counts(d, cp), wantC.Counts(d, cp))
				}
			}
		}
		if !reflect.DeepEqual(wantC.TopPairs(d, 10, true), gotC.TopPairs(d, 10, true)) {
			t.Fatalf("%s: TopPairs(%d) diverged", mode, d)
		}
	}
}

// TestLabEngineEquivalence runs both trace modes end to end and checks
// that the parallel engine reproduces the sequential analysis byte for
// byte on real bare and cached traces — the acceptance gate for routing
// the lab pipeline through the engine.
func TestLabEngineEquivalence(t *testing.T) {
	bare, cached, err := RunBoth(12, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	cfg := analysis.CorrConfig{Op: trace.OpRead, Distances: []int{0, 7, 100}, TrackPairsAt: []int{7}}
	t.Setenv("ETHKV_ANALYSIS_WORKERS", "4")
	for _, tc := range []struct {
		mode string
		ops  []trace.Op
	}{
		{"bare", bare.Ops},
		{"cached", cached.Ops},
	} {
		if len(tc.ops) == 0 {
			t.Fatalf("%s: empty trace", tc.mode)
		}
		wantD, wantC := seqAnalyze(tc.ops, cfg)
		gotD := analysis.CollectOpDistSlice(tc.ops, nil)
		gotC := analysis.CollectCorrelationsSlice(tc.ops, cfg)
		requireSameAnalysis(t, tc.mode, wantD, gotD, wantC, gotC, cfg)
	}
}

// TestLabEngineEquivalenceFile repeats the check against a file-backed
// trace: the engine's batched reader path must match a per-op ForEach
// scan of the same file.
func TestLabEngineEquivalenceFile(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Mode: Cached, Blocks: 10, Workload: testWorkload(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Path == "" {
		t.Fatal("no trace file produced")
	}
	cfg := analysis.CorrConfig{Op: trace.OpUpdate, IncludeWrites: true}

	// Sequential reference: per-op scan.
	r, err := trace.OpenFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	wantD := analysis.NewOpDist(nil)
	wantC := analysis.NewCorrelator(cfg)
	if err := r.ForEach(func(op trace.Op) error {
		wantD.Observe(op)
		wantC.Observe(op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Engine path: batched single-pass scan at 4 workers.
	t.Setenv("ETHKV_ANALYSIS_WORKERS", "4")
	r2, err := trace.OpenFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	e := analysis.NewEngine(analysis.EngineConfig{})
	hd := e.AddOpDist(nil)
	hc := e.AddCorrelator(cfg)
	if err := e.RunReader(r2); err != nil {
		t.Fatal(err)
	}
	requireSameAnalysis(t, "file", wantD, hd.Result(), wantC, hc.Result(), cfg)
}
