// Package lab orchestrates end-to-end experiments: build a genesis state,
// import blocks through the instrumented storage stack in bare or cached
// mode, collect the trace, and run the paper's analyses. It is the shared
// engine behind the command-line tools, the examples, and the benchmark
// harness.
package lab

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ethkv/internal/analysis"
	"ethkv/internal/backends"
	"ethkv/internal/chain"
	"ethkv/internal/kv"
	"ethkv/internal/obs"
	"ethkv/internal/policy"
	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// Mode selects the trace configuration.
type Mode int

// The two trace configurations of §III-A.
const (
	// Bare reproduces BareTrace: no caching, no snapshot acceleration.
	Bare Mode = iota
	// Cached reproduces CacheTrace: caching + snapshot acceleration.
	Cached
)

func (m Mode) String() string {
	if m == Cached {
		return "CacheTrace"
	}
	return "BareTrace"
}

// Config parameterizes one run.
type Config struct {
	Mode     Mode
	Blocks   int
	Workload chain.WorkloadConfig
	// Dir is the working directory for the store, freezer, and trace
	// file. Empty = in-memory store, in-memory trace.
	Dir string
	// Backend selects the store behind the run: "" or "mem" is the
	// in-memory reference store, "lsm" the write-optimized LSM tree,
	// "flat" the single-seek flat store, "hash" the hash-indexed segment
	// store, "log" the compacting value log, "hybrid" the policy-driven
	// class-routed store (see Policy). Persistent backends are slower and
	// used for I/O-cost experiments.
	Backend string
	// Policy configures the hybrid backend's routes (nil = the factory's
	// built-in default). Ignored by other backends.
	Policy *policy.Policy
	// TraceBootstrap routes the genesis state build through the tracer,
	// modelling the bulk state-download phase of snap synchronization
	// (§II-A): the trace then opens with the write burst a snap-syncing
	// node issues before block-by-block full sync takes over. The paper's
	// traces use full sync (bootstrap untraced), the default here.
	TraceBootstrap bool
	// Processor overrides the default processor configuration when set.
	Processor *chain.ProcessorConfig
	// ImportWorkers is the import pipeline's fan-out width. 0 defers to
	// ETHKV_IMPORT_WORKERS / GOMAXPROCS (chain.DefaultImportWorkers); 1
	// forces the plain sequential import loop. The emitted trace is
	// byte-identical at every width.
	ImportWorkers int
	// BlockCacheBytes sets the LSM block-cache byte budget for lsm-backend
	// runs:
	// 0 keeps the lsm.Options default, negative disables the cache. The
	// cache only changes where block bytes are fetched from, so the trace
	// and every analysis output are identical at any setting.
	BlockCacheBytes int64
	// Metrics, when set, instruments the backing store (per-op latency
	// histograms, store gauges) and records post-run cache hit rates into
	// the registry. Series carry a trace=<mode> label so the bare and
	// cached runs of RunBothConfigs share one registry without colliding.
	Metrics *obs.Registry
	// Shards partitions the backing store across this many child stores of
	// the same backend kind behind a shard.Router (0 or 1 = unsharded).
	// Sharding changes where pairs live, never what the trace or census
	// contains.
	Shards int
	// ShardMode selects the shard partition function: "hash" (default) or
	// "class" (key-class routing; a class's range scans stay shard-local).
	ShardMode string
	// CompactionWorkers is the process-wide background compaction budget
	// shared by every LSM instance of the run (0 = store default). Purely
	// a scheduling knob: the trace and census are identical at any width.
	CompactionWorkers int
}

// DefaultConfig returns a laptop-scale run mirroring the artifact's
// 1000-block sampled traces.
func DefaultConfig(mode Mode, blocks int) Config {
	return Config{
		Mode:     mode,
		Blocks:   blocks,
		Workload: chain.DefaultWorkload(),
	}
}

// Result is everything one run produces.
type Result struct {
	Mode  Mode
	Ops   []trace.Op         // in-memory trace (nil when traced to file)
	Path  string             // trace file path (when Dir set)
	Store *analysis.SizeDist // post-run store census
	Stats chain.Stats        // import counters
	// KVStats reports the backing store's I/O counters (persistent
	// backends).
	KVStats kv.Stats
}

// Run executes one full trace collection: genesis (untraced, mirroring the
// pre-existing 20.5M blocks), then traced block import, then the store
// census.
func Run(cfg Config) (*Result, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("lab: block count must be positive")
	}
	// Backing store. A persistent run without a Dir keeps the trace in
	// memory and puts only the store itself in a throwaway temp directory.
	storeDir := cfg.Dir
	if storeDir == "" && cfg.Backend != "" && cfg.Backend != "mem" && cfg.Backend != "log" {
		tmp, err := os.MkdirTemp("", "ethkv-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	inner, err := openBackend(cfg, storeDir)
	if err != nil {
		return nil, err
	}
	defer inner.Close()

	// Tracing sink: file when Dir set, else in-memory.
	var (
		sink      trace.Sink
		slice     *trace.SliceSink
		writer    *trace.Writer
		tracePath string
	)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		tracePath = filepath.Join(cfg.Dir, cfg.Mode.String()+".bin")
		writer, err = trace.Create(tracePath)
		if err != nil {
			return nil, err
		}
		sink = writer
	} else {
		slice = &trace.SliceSink{}
		sink = slice
	}
	// Observability sits between tracing and the raw store so op latencies
	// measure the store, not the trace encoder. Instrument is the identity
	// when Metrics is nil.
	backing := kv.Instrument(inner, cfg.Metrics, "trace", cfg.Mode.String())

	// Batched emit: ops buffer inside the traced store and reach the sink
	// as sequence-ordered batches, cutting per-op sink overhead.
	traced := trace.WrapStoreBuffered(backing, sink, 512)

	// Genesis: by default below the tracer — pre-existing state is not
	// traced (§III-B: the traces cover the 1M-block window over prior
	// state). With TraceBootstrap the state build itself is traced,
	// modelling snap sync's download phase.
	var genesisStore kv.Store = inner
	if cfg.TraceBootstrap {
		genesisStore = traced
	}
	genesis, err := (&chain.Genesis{
		Config:       cfg.Workload,
		SeedSnapshot: cfg.Mode == Cached,
	}).Commit(genesisStore)
	if err != nil {
		return nil, err
	}

	freezerDir := cfg.Dir
	if freezerDir == "" {
		freezerDir, err = os.MkdirTemp("", "ethkv-freezer-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(freezerDir)
	}
	freezer, err := rawdb.OpenFreezer(filepath.Join(freezerDir, "ancient"))
	if err != nil {
		return nil, err
	}
	defer freezer.Close()

	pcfg := chain.DefaultProcessorConfig(cfg.Mode == Cached)
	if cfg.Processor != nil {
		pcfg = *cfg.Processor
		pcfg.CachingEnabled = cfg.Mode == Cached
	}
	proc, err := chain.NewProcessor(traced, freezer, genesis, chain.NewWorkload(cfg.Workload), pcfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.ImportWorkers
	if workers == 0 {
		workers = chain.DefaultImportWorkers()
	}
	if err := proc.ImportBlocksPipelined(cfg.Blocks, workers); err != nil {
		return nil, err
	}
	if err := proc.Shutdown(); err != nil {
		return nil, err
	}
	if err := traced.Flush(); err != nil {
		return nil, err
	}
	if writer != nil {
		if err := writer.Close(); err != nil {
			return nil, err
		}
	}

	// Settle the backing store before the census (LSM: flush the memtable
	// so amplification counters include the final flush).
	if flusher, ok := inner.(interface{ Flush() error }); ok {
		if err := flusher.Flush(); err != nil {
			return nil, err
		}
	}

	// Cache effectiveness lands in the registry after the pipeline has
	// quiesced: the class LRUs are not safe for concurrent readers, so the
	// per-class counters are captured once here rather than exposed live.
	if cfg.Metrics != nil {
		if cm := proc.Caches(); cm != nil {
			mode := cfg.Mode.String()
			for _, cs := range cm.Stats() {
				cs := cs
				class := cs.Class.String()
				cfg.Metrics.GaugeFunc(obs.Name("ethkv_cache_hit_rate", "class", class, "trace", mode),
					func() float64 { return cs.HitRate })
				cfg.Metrics.GaugeFunc(obs.Name("ethkv_cache_hits", "class", class, "trace", mode),
					func() float64 { return float64(cs.Hits) })
				cfg.Metrics.GaugeFunc(obs.Name("ethkv_cache_misses", "class", class, "trace", mode),
					func() float64 { return float64(cs.Misses) })
				cfg.Metrics.GaugeFunc(obs.Name("ethkv_cache_bytes", "class", class, "trace", mode),
					func() float64 { return float64(cs.Bytes) })
			}
		}
	}
	result := &Result{
		Mode:  cfg.Mode,
		Path:  tracePath,
		Store: analysis.CollectSizeDist(inner),
		Stats: proc.Stats(),
	}
	if slice != nil {
		result.Ops = slice.Ops
	}
	if sp, ok := inner.(kv.StatsProvider); ok {
		result.KVStats = sp.Stats()
	}
	return result, nil
}

// openBackend constructs the store named by backend under dir through the
// shared internal/backends factory ("" = the in-memory reference store),
// so every factory kind — including the policy-driven hybrid — is
// runnable from the lab pipeline.
func openBackend(cfg Config, dir string) (kv.Store, error) {
	kind := cfg.Backend
	if kind == "" {
		kind = "mem"
	}
	s, err := backends.Open(kind, dir, backends.Options{
		BlockCacheBytes:   cfg.BlockCacheBytes,
		Shards:            cfg.Shards,
		ShardMode:         cfg.ShardMode,
		Policy:            cfg.Policy,
		CompactionWorkers: cfg.CompactionWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	return s, nil
}

// RunBoth executes the bare and cached configurations over the same
// workload, the setup every comparative finding needs.
func RunBoth(blocks int, workload chain.WorkloadConfig) (bare, cached *Result, err error) {
	return RunBothConfigs(
		Config{Mode: Bare, Blocks: blocks, Workload: workload},
		Config{Mode: Cached, Blocks: blocks, Workload: workload})
}

// RunBothConfigs executes a bare and a cached configuration. The two runs
// are fully independent (separate stores, freezers, and sinks), so they
// execute concurrently.
func RunBothConfigs(bareCfg, cachedCfg Config) (bare, cached *Result, err error) {
	var (
		wg         sync.WaitGroup
		bErr, cErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		bare, bErr = Run(bareCfg)
	}()
	go func() {
		defer wg.Done()
		cached, cErr = Run(cachedCfg)
	}()
	wg.Wait()
	if bErr != nil {
		return nil, nil, fmt.Errorf("lab: bare run: %w", bErr)
	}
	if cErr != nil {
		return nil, nil, fmt.Errorf("lab: cached run: %w", cErr)
	}
	return bare, cached, nil
}

// BuildFindings assembles the Findings checker input from two in-memory
// runs.
func BuildFindings(bare, cached *Result) []analysis.Finding {
	input := analysis.BuildFindingsInput(cached.Ops, bare.Ops, cached.Store, bare.Store)
	return analysis.CheckFindings(input)
}
