package lab

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ethkv/internal/analysis"
)

// The golden-trace regression test pins the per-class operation counts of a
// fixed-seed lab run. The workload RNG, block import, and trace emission are
// all deterministic (the pipelined importer emits a byte-identical trace at
// every worker width), so any drift in these counts means a behavioral
// change in the chain/trace stack — intended or not — and must be reviewed.
// Regenerate the fixture with:
//
//	ETHKV_UPDATE_GOLDEN=1 go test ./internal/lab/ -run TestGoldenOpDistribution

const goldenFixture = "testdata/golden_opdist.json"

type goldenClassOps struct {
	Reads   uint64 `json:"reads"`
	Writes  uint64 `json:"writes"`
	Updates uint64 `json:"updates"`
	Deletes uint64 `json:"deletes"`
	Scans   uint64 `json:"scans"`
}

type goldenOpDist struct {
	Blocks   int                       `json:"blocks"`
	Seed     int64                     `json:"seed"`
	Total    uint64                    `json:"total"`
	PerClass map[string]goldenClassOps `json:"per_class"`
}

func collectGolden(t *testing.T) goldenOpDist {
	t.Helper()
	cfg := Config{Mode: Bare, Blocks: 25, Workload: testWorkload()}
	cfg.Workload.Seed = 1337
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist := analysis.CollectOpDistSlice(res.Ops, nil)
	got := goldenOpDist{
		Blocks:   cfg.Blocks,
		Seed:     cfg.Workload.Seed,
		Total:    dist.Total,
		PerClass: make(map[string]goldenClassOps, len(dist.PerClass)),
	}
	for class, co := range dist.PerClass {
		got.PerClass[class.String()] = goldenClassOps{
			Reads:   co.Reads,
			Writes:  co.Writes,
			Updates: co.Updates,
			Deletes: co.Deletes,
			Scans:   co.Scans,
		}
	}
	return got
}

func TestGoldenOpDistribution(t *testing.T) {
	got := collectGolden(t)

	if os.Getenv("ETHKV_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFixture, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture rewritten: %s", goldenFixture)
		return
	}

	raw, err := os.ReadFile(goldenFixture)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with ETHKV_UPDATE_GOLDEN=1): %v", err)
	}
	var want goldenOpDist
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden fixture: %v", err)
	}
	if got.Blocks != want.Blocks || got.Seed != want.Seed {
		t.Fatalf("fixture was generated for blocks=%d seed=%d, test runs blocks=%d seed=%d",
			want.Blocks, want.Seed, got.Blocks, got.Seed)
	}
	if got.Total != want.Total {
		t.Errorf("total ops drifted: got %d, fixture %d", got.Total, want.Total)
	}
	names := make([]string, 0, len(want.PerClass)+len(got.PerClass))
	for name := range want.PerClass {
		names = append(names, name)
	}
	for name := range got.PerClass {
		if _, ok := want.PerClass[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		g, gok := got.PerClass[name]
		w, wok := want.PerClass[name]
		switch {
		case !gok:
			t.Errorf("class %s present in fixture but absent from run: %+v", name, w)
		case !wok:
			t.Errorf("class %s appeared in run but not in fixture: %+v", name, g)
		case g != w:
			t.Errorf("class %s drifted:\n  got     %+v\n  fixture %+v", name, g, w)
		}
	}
}

// TestGoldenRunDeterministic guards the premise of the golden fixture: two
// identically-seeded runs must produce identical censuses.
func TestGoldenRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full lab run")
	}
	a := collectGolden(t)
	b := collectGolden(t)
	ar, _ := json.Marshal(a)
	br, _ := json.Marshal(b)
	if string(ar) != string(br) {
		t.Errorf("identically-seeded runs diverged:\n  run1 %s\n  run2 %s", ar, br)
	}
}
