package lab

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ethkv/internal/analysis"
	"ethkv/internal/chain"
	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// testWorkload shrinks the default population so the end-to-end tests run
// in seconds while still exhibiting the findings' shapes.
func testWorkload() chain.WorkloadConfig {
	cfg := chain.DefaultWorkload()
	cfg.Accounts = 2000
	cfg.Contracts = 200
	cfg.SlotsPerContract = 20
	cfg.TxPerBlock = 60
	return cfg
}

func TestRunBareProducesTrace(t *testing.T) {
	res, err := Run(Config{Mode: Bare, Blocks: 15, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) == 0 {
		t.Fatal("no ops collected")
	}
	if res.Stats.Blocks != 15 {
		t.Fatalf("blocks = %d", res.Stats.Blocks)
	}
	if res.Store.Total == 0 {
		t.Fatal("empty store census")
	}
	// A bare run has no snapshot pairs beyond genesis seeding... genesis
	// seeds them but the bare processor never updates them. Verify trie
	// pairs dominate.
	trie := res.Store.PerClass[rawdb.ClassTrieNodeStorage]
	if trie == nil || trie.Pairs == 0 {
		t.Fatal("no storage trie nodes in store")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Mode: Bare, Blocks: 0}); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

// TestRunLSMWithoutDir checks that an LSM run with no Dir keeps the trace in
// memory (Ops populated) while backing the store with a throwaway temp dir.
func TestRunLSMWithoutDir(t *testing.T) {
	res, err := Run(Config{Mode: Bare, Blocks: 3, Workload: testWorkload(), Backend: "lsm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) == 0 {
		t.Fatal("no in-memory ops from dirless LSM run")
	}
	if res.KVStats.FlushCount == 0 {
		t.Fatal("LSM store never flushed; run was not LSM-backed")
	}
}

func TestRunToFile(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Mode: Cached, Blocks: 5, Workload: testWorkload(), Dir: dir}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path == "" {
		t.Fatal("no trace path")
	}
	r, err := trace.OpenFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	if err := r.ForEach(func(trace.Op) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("trace file empty")
	}
}

func TestRunWithLSMBackend(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Mode: Bare, Blocks: 5, Workload: testWorkload(), Dir: dir, Backend: "lsm"})
	if err != nil {
		t.Fatal(err)
	}
	if res.KVStats.Puts == 0 {
		t.Fatal("LSM backend recorded no puts")
	}
	// Physical writes must be accounted. (Write amplification can dip
	// below 1 on short runs: the memtable coalesces overwrites before its
	// single flush.)
	if res.KVStats.PhysicalBytesWrite == 0 {
		t.Fatal("LSM backend recorded no physical writes")
	}
}

// TestEndToEndFindings is the repository's headline integration test: a
// full bare+cached run at reduced scale must reproduce the qualitative
// shape of all 11 findings.
func TestEndToEndFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	bare, cached, err := RunBoth(60, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	findings := BuildFindings(bare, cached)
	if len(findings) != 11 {
		t.Fatalf("%d findings checked", len(findings))
	}
	failed := 0
	for _, f := range findings {
		if !f.Holds {
			failed++
			t.Errorf("Finding %d (%s) does not hold: %s", f.ID, f.Title, f.Evidence)
		} else {
			t.Logf("Finding %d holds: %s", f.ID, f.Evidence)
		}
	}
	if failed > 2 {
		t.Fatalf("%d findings failed; workload shape is off", failed)
	}
}

// TestDominantClassesEmerge asserts Table I's headline on the cached run.
func TestDominantClassesEmerge(t *testing.T) {
	res, err := Run(Config{Mode: Cached, Blocks: 20, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	share := res.Store.DominantShare()
	if share < 0.9 {
		t.Fatalf("dominant-5 share %.3f; want > 0.9 (paper: 0.992)", share)
	}
	if s := res.Store.SingletonClasses(); s < 8 {
		t.Errorf("only %d singleton classes (paper: 15)", s)
	}
	// All five dominant classes must actually exist.
	for _, class := range []rawdb.Class{
		rawdb.ClassTrieNodeStorage, rawdb.ClassSnapshotStorage,
		rawdb.ClassTxLookup, rawdb.ClassTrieNodeAccount, rawdb.ClassSnapshotAccount,
	} {
		if cs := res.Store.PerClass[class]; cs == nil || cs.Pairs == 0 {
			t.Errorf("dominant class %v missing from store", class)
		}
	}
}

// TestOpMixShapes asserts Table II's qualitative shapes on a cached run.
func TestOpMixShapes(t *testing.T) {
	res, err := Run(Config{Mode: Cached, Blocks: 40, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	dist := analysis.CollectOpDistSlice(res.Ops, nil)

	// TxLookup: writes and deletes, zero reads.
	tx := dist.PerClass[rawdb.ClassTxLookup]
	if tx == nil || tx.Reads != 0 {
		t.Fatalf("TxLookup reads = %v (paper: zero)", tx)
	}
	if tx.Deletes == 0 {
		t.Error("TxLookup has no deletes")
	}
	// Scans confined to the three classes.
	for _, class := range dist.ScanningClasses() {
		switch class {
		case rawdb.ClassSnapshotAccount, rawdb.ClassSnapshotStorage, rawdb.ClassBlockHeader:
		default:
			t.Errorf("unexpected scanning class %v", class)
		}
	}
	// Code: read-dominated.
	if code := dist.PerClass[rawdb.ClassCode]; code != nil {
		if code.Reads <= code.Writes {
			t.Errorf("Code reads (%d) not above writes (%d); paper: 87%% reads",
				code.Reads, code.Writes)
		}
	}
	// Head markers are pure updates.
	for _, class := range []rawdb.Class{rawdb.ClassLastHeader, rawdb.ClassLastFast} {
		co := dist.PerClass[class]
		if co == nil {
			t.Errorf("%v absent from trace", class)
			continue
		}
		if co.Updates == 0 || co.Writes > 0 {
			t.Errorf("%v: updates=%d writes=%d (paper: 100%% updates)",
				class, co.Updates, co.Writes)
		}
	}
}

// TestUpdateCorrelationMetaPairs asserts Finding 10's mechanism: the head
// markers update adjacently every block.
func TestUpdateCorrelationMetaPairs(t *testing.T) {
	res, err := Run(Config{Mode: Cached, Blocks: 30, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	corr := analysis.CollectCorrelationsSlice(res.Ops, analysis.CorrConfig{
		Op: trace.OpUpdate,
	})
	pair := analysis.MakeClassPair(rawdb.ClassLastFast, rawdb.ClassLastHeader)
	at0 := corr.Counts(0, pair)
	if at0 == 0 {
		t.Fatal("no LastFast-LastHeader adjacency at d=0")
	}
	at16 := corr.Counts(16, pair)
	if at16 >= at0 {
		t.Fatalf("meta pair not clustered: d=0 %d vs d=16 %d", at0, at16)
	}
}

func TestModeString(t *testing.T) {
	if Bare.String() != "BareTrace" || Cached.String() != "CacheTrace" {
		t.Fatal("Mode.String")
	}
}

// TestPipelineDeterminism: identical configs must produce identical op
// streams — the reproducibility guarantee EXPERIMENTS.md promises.
func TestPipelineDeterminism(t *testing.T) {
	run := func() []trace.Op {
		res, err := Run(Config{Mode: Cached, Blocks: 10, Workload: testWorkload()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ops
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Class != b[i].Class ||
			string(a[i].Key) != string(b[i].Key) || a[i].ValueSize != b[i].ValueSize {
			t.Fatalf("op %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestTraceBootstrap: snap-sync-style runs open the trace with the state
// download's write burst.
func TestTraceBootstrap(t *testing.T) {
	res, err := Run(Config{
		Mode: Bare, Blocks: 3, Workload: testWorkload(), TraceBootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The very first ops must be world-state writes (the bulk download),
	// not block processing.
	var bootstrapWrites int
	for _, op := range res.Ops[:1000] {
		if (op.Type == trace.OpWrite || op.Type == trace.OpUpdate) && op.Class.IsWorldState() {
			bootstrapWrites++
		}
	}
	if bootstrapWrites < 500 {
		t.Fatalf("bootstrap write burst missing: %d world-state writes in first 1000 ops", bootstrapWrites)
	}
	// Default runs must NOT trace the bootstrap.
	res2, err := Run(Config{Mode: Bare, Blocks: 3, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Ops) >= len(res.Ops) {
		t.Fatalf("untraced bootstrap should yield fewer ops: %d vs %d", len(res2.Ops), len(res.Ops))
	}
}

// TestWriteArtifacts: the artifact-layout export must produce the file
// tree the paper's analysis scripts emit.
func TestWriteArtifacts(t *testing.T) {
	res, err := Run(Config{Mode: Cached, Blocks: 10, Workload: testWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"kvSizeDistribution", "mergedKVOpDistribution",
		"readCorrelationOutput", "updateCorrelationOutput",
	} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s is empty", sub)
		}
	}
	// Size files hold "size count" rows.
	raw, err := os.ReadFile(filepath.Join(dir, "kvSizeDistribution", "TrieNodeStorage.txt"))
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.SplitN(string(raw), "\n", 2)[0])
	if len(fields) != 2 {
		t.Fatalf("size row format: %q", string(raw[:40]))
	}
	// Per-key frequency files exist for the world-state classes.
	if _, err := os.Stat(filepath.Join(dir, "mergedKVOpDistribution",
		"TrieNodeStorage_read_with_key_dis.txt")); err != nil {
		t.Fatal(err)
	}
	// Distance logs exist for d=0.
	if _, err := os.Stat(filepath.Join(dir, "readCorrelationOutput",
		"freq-category-0.log")); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedConfigsRobust: the pipeline must survive arbitrary small
// workload shapes without error (robustness, not calibration).
func TestRandomizedConfigsRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run robustness test")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		cfg := chain.DefaultWorkload()
		cfg.Seed = rng.Int63()
		cfg.Accounts = 100 + rng.Intn(2000)
		cfg.Contracts = 10 + rng.Intn(200)
		cfg.SlotsPerContract = 1 + rng.Intn(30)
		cfg.TxPerBlock = 1 + rng.Intn(80)
		cfg.ZipfS = 1.01 + rng.Float64()*1.5
		cfg.DestructChance = rng.Float64() * 0.2
		mode := Bare
		if i%2 == 1 {
			mode = Cached
		}
		res, err := Run(Config{Mode: mode, Blocks: 5 + rng.Intn(15), Workload: cfg})
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg, err)
		}
		if len(res.Ops) == 0 {
			t.Fatalf("config %d produced no ops", i)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(Cached, 50)
	if cfg.Mode != Cached || cfg.Blocks != 50 {
		t.Fatalf("DefaultConfig: %+v", cfg)
	}
	if cfg.Workload.TxPerBlock == 0 {
		t.Fatal("workload not populated")
	}
}

// TestLSMCacheSizeInvariance runs the same deterministic workload over the
// LSM store at three block-cache budgets — smaller than one table, disabled,
// and everything-fits — and checks the emitted trace and store census are
// byte-identical. The cache may only change where block bytes are fetched
// from, never what any read returns.
func TestLSMCacheSizeInvariance(t *testing.T) {
	run := func(cacheBytes int64) *Result {
		t.Helper()
		res, err := Run(Config{
			Mode: Cached, Blocks: 5, Workload: testWorkload(),
			Backend: "lsm", BlockCacheBytes: cacheBytes,
		})
		if err != nil {
			t.Fatalf("cache=%d: %v", cacheBytes, err)
		}
		return res
	}
	tiny := run(4 << 10)
	disabled := run(-1)
	huge := run(256 << 20)

	for _, other := range []*Result{disabled, huge} {
		if len(other.Ops) != len(tiny.Ops) {
			t.Fatalf("op count diverged: %d vs %d", len(other.Ops), len(tiny.Ops))
		}
		for i := range tiny.Ops {
			if !reflect.DeepEqual(tiny.Ops[i], other.Ops[i]) {
				t.Fatalf("op %d diverged: %+v vs %+v", i, tiny.Ops[i], other.Ops[i])
			}
		}
		if !reflect.DeepEqual(tiny.Store, other.Store) {
			t.Fatal("store census diverged across cache sizes")
		}
	}
	// The tiny-cache run must actually have churned the cache for the
	// comparison to mean anything.
	if tiny.KVStats.BlockCacheEvictions == 0 && tiny.KVStats.BlockCacheMisses == 0 {
		t.Fatal("tiny-cache run never touched the block cache")
	}
	if disabled.KVStats.BlockCacheHits != 0 || disabled.KVStats.BlockCacheMisses != 0 {
		t.Fatal("disabled cache recorded traffic")
	}
}

// TestRunWithFlatBackend runs the import pipeline over the single-seek
// flat store and checks the store actually carried the workload.
func TestRunWithFlatBackend(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Mode: Bare, Blocks: 5, Workload: testWorkload(), Dir: dir, Backend: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	if res.KVStats.Puts == 0 {
		t.Fatal("flat backend recorded no puts")
	}
	if res.KVStats.PhysicalBytesWrite == 0 {
		t.Fatal("flat backend recorded no physical writes")
	}
	if res.KVStats.LiveDataBytes == 0 {
		t.Fatal("flat backend reports no live data after import")
	}
}

// TestBackendTraceAndCensusInvariance runs the same deterministic workload
// over the reference store, the LSM, and the flat store: the emitted op
// stream and the post-run store census must be identical. The backend may
// only change I/O cost, never what the chain reads or what state remains.
func TestBackendTraceAndCensusInvariance(t *testing.T) {
	run := func(backend string) *Result {
		t.Helper()
		res, err := Run(Config{Mode: Cached, Blocks: 5, Workload: testWorkload(), Backend: backend})
		if err != nil {
			t.Fatalf("backend=%s: %v", backend, err)
		}
		return res
	}
	ref := run("mem")
	for _, backend := range []string{"lsm", "flat"} {
		other := run(backend)
		if len(other.Ops) != len(ref.Ops) {
			t.Fatalf("%s: op count diverged: %d vs %d", backend, len(other.Ops), len(ref.Ops))
		}
		for i := range ref.Ops {
			if !reflect.DeepEqual(ref.Ops[i], other.Ops[i]) {
				t.Fatalf("%s: op %d diverged: %+v vs %+v", backend, i, ref.Ops[i], other.Ops[i])
			}
		}
		if !reflect.DeepEqual(ref.Store, other.Store) {
			t.Fatalf("%s: store census diverged from reference", backend)
		}
	}
}

// TestRunRejectsUnknownBackend: a typo must fail loudly, not silently fall
// back to the in-memory store.
func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := Run(Config{Mode: Bare, Blocks: 1, Workload: testWorkload(), Backend: "rocks"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
