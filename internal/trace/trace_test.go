package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ops := []Op{
		{Type: OpRead, Class: rawdb.ClassTrieNodeAccount, Key: []byte("Akey"), ValueSize: 115},
		{Type: OpWrite, Class: rawdb.ClassTxLookup, Key: nil},
		{Type: OpUpdate, Class: rawdb.ClassSnapshotAccount, Key: []byte("a123"), ValueSize: 16, Hit: false},
		{Type: OpDelete, Class: rawdb.ClassBlockHeader, Key: []byte("h000")},
		{Type: OpScan, Class: rawdb.ClassSnapshotStorage, Key: []byte("o")},
		{Type: OpRead, Class: rawdb.ClassCode, Key: []byte("c456"), ValueSize: 6732, Hit: true},
	}
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(ops)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for i, want := range ops {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got.Seq != uint64(i) {
			t.Errorf("op %d: seq %d", i, got.Seq)
		}
		if got.Type != want.Type || got.Class != want.Class ||
			!bytes.Equal(got.Key, want.Key) || got.ValueSize != want.ValueSize ||
			got.Hit != want.Hit {
			t.Errorf("op %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w.Append(Op{
			Type:      OpType(i % 5),
			Class:     rawdb.Class(i%29 + 1),
			Key:       []byte(fmt.Sprintf("key-%d", i)),
			ValueSize: uint32(i),
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	err = r.ForEach(func(op Op) error {
		if op.Seq != uint64(n) {
			t.Fatalf("seq %d at position %d", op.Seq, n)
		}
		n++
		return nil
	})
	if err != nil || n != 1000 {
		t.Fatalf("ForEach: n=%d, %v", n, err)
	}
}

func TestCodecProperty(t *testing.T) {
	f := func(keys [][]byte, types []uint8, sizes []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		n := len(keys)
		if len(types) < n {
			n = len(types)
		}
		if len(sizes) < n {
			n = len(sizes)
		}
		var want []Op
		for i := 0; i < n; i++ {
			op := Op{
				Type:      OpType(types[i] % 5),
				Class:     rawdb.Class(int(types[i])%29 + 1),
				Key:       keys[i],
				ValueSize: sizes[i],
				Hit:       types[i]%2 == 0,
			}
			w.Append(op)
			want = append(want, op)
		}
		w.Close()
		r := NewReader(&buf)
		for i := 0; i < n; i++ {
			got, err := r.Next()
			if err != nil {
				return false
			}
			if got.Type != want[i].Type || !bytes.Equal(got.Key, want[i].Key) ||
				got.ValueSize != want[i].ValueSize || got.Hit != want[i].Hit {
				return false
			}
		}
		_, err := r.Next()
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTracedStoreOpClassification(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStore(kv.NewMemStore(), sink)
	defer ts.Close()

	var hash rawdb.Hash
	key := rawdb.TxLookupKey(hash)

	ts.Put(key, []byte("1"))                                     // fresh key -> write
	ts.Put(key, []byte("2"))                                     // existing -> update
	ts.Get(key)                                                  // read
	ts.Delete(key)                                               // delete
	ts.Put(key, []byte("3"))                                     // write again (was deleted)
	it := ts.NewIterator(rawdb.SnapshotStoragePrefix(hash), nil) // scan
	it.Release()

	wantTypes := []OpType{OpWrite, OpUpdate, OpRead, OpDelete, OpWrite, OpScan}
	if len(sink.Ops) != len(wantTypes) {
		t.Fatalf("traced %d ops, want %d", len(sink.Ops), len(wantTypes))
	}
	for i, want := range wantTypes {
		if sink.Ops[i].Type != want {
			t.Errorf("op %d type = %v, want %v", i, sink.Ops[i].Type, want)
		}
	}
	if sink.Ops[0].Class != rawdb.ClassTxLookup {
		t.Errorf("op class = %v", sink.Ops[0].Class)
	}
	if sink.Ops[5].Class != rawdb.ClassSnapshotStorage {
		t.Errorf("scan class = %v", sink.Ops[5].Class)
	}
	if sink.Ops[2].ValueSize != 1 {
		t.Errorf("read value size = %d", sink.Ops[2].ValueSize)
	}
}

// TestTracedStorePreexistingKeyIsUpdate: keys written before tracing began
// must classify as updates (they exist in the store).
func TestTracedStorePreexistingKeyIsUpdate(t *testing.T) {
	inner := kv.NewMemStore()
	inner.Put([]byte("old"), []byte("v"))
	sink := &SliceSink{}
	ts := WrapStore(inner, sink)
	defer ts.Close()
	ts.Put([]byte("old"), []byte("v2"))
	if len(sink.Ops) != 1 || sink.Ops[0].Type != OpUpdate {
		t.Fatalf("pre-existing key write traced as %v", sink.Ops[0].Type)
	}
}

func TestTracedBatchEmitsOnCommit(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStore(kv.NewMemStore(), sink)
	defer ts.Close()

	b := ts.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	if len(sink.Ops) != 0 {
		t.Fatal("batch ops traced before commit")
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Ops) != 2 {
		t.Fatalf("traced %d ops after commit", len(sink.Ops))
	}
	if sink.Ops[0].Type != OpWrite || sink.Ops[1].Type != OpDelete {
		t.Fatalf("batch op types: %v, %v", sink.Ops[0].Type, sink.Ops[1].Type)
	}
	if v, err := ts.Get([]byte("k1")); err != nil || string(v) != "v1" {
		t.Fatalf("batch content: %q, %v", v, err)
	}
}

func TestRecordCacheHit(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStore(kv.NewMemStore(), sink)
	defer ts.Close()
	ts.RecordCacheHit([]byte("Akey"), 100)
	if len(sink.Ops) != 1 || !sink.Ops[0].Hit || sink.Ops[0].Type != OpRead {
		t.Fatalf("cache hit op: %+v", sink.Ops[0])
	}
}

func TestSeqMonotonic(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStore(kv.NewMemStore(), sink)
	defer ts.Close()
	for i := 0; i < 100; i++ {
		ts.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i, op := range sink.Ops {
		if op.Seq != uint64(i) {
			t.Fatalf("seq %d at index %d", op.Seq, i)
		}
	}
	if ts.Seq() != 100 {
		t.Fatalf("Seq = %d", ts.Seq())
	}
}

func TestWriterToFileSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bin")
	w, _ := Create(path)
	// A 33-byte-key op should encode in ~40 bytes, far below a text format.
	w.Append(Op{Type: OpRead, Class: rawdb.ClassTxLookup, Key: make([]byte, 33), ValueSize: 4})
	w.Close()
	st, _ := os.Stat(path)
	if st.Size() > 45 {
		t.Fatalf("encoded op takes %d bytes", st.Size())
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := NewSummary()
	ops := []Op{
		{Type: OpRead, Class: rawdb.ClassCode, Key: []byte("c1"), ValueSize: 6000},
		{Type: OpWrite, Class: rawdb.ClassTxLookup, Key: []byte("t1"), ValueSize: 4},
		{Type: OpUpdate, Class: rawdb.ClassCode, Key: []byte("c1"), ValueSize: 6000},
		{Type: OpDelete, Class: rawdb.ClassTxLookup, Key: []byte("t1")},
		{Type: OpScan, Class: rawdb.ClassBlockHeader, Key: []byte("h")},
		{Type: OpRead, Class: rawdb.ClassCode, Key: []byte("c1"), Hit: true},
	}
	for _, op := range ops {
		s.Observe(op)
	}
	if s.Total != 5 || s.Hits != 1 {
		t.Fatalf("Total=%d Hits=%d", s.Total, s.Hits)
	}
	code := s.ByClass[rawdb.ClassCode]
	if code.Reads != 1 || code.Updates != 1 || code.ValueBytes != 12000 {
		t.Fatalf("code row: %+v", code)
	}
	tx := s.ByClass[rawdb.ClassTxLookup]
	if tx.Writes != 1 || tx.Deletes != 1 || tx.Total() != 2 {
		t.Fatalf("tx row: %+v", tx)
	}
	var buf bytes.Buffer
	s.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("Code")) ||
		!bytes.Contains(buf.Bytes(), []byte("total ops: 5")) {
		t.Fatalf("summary rendering:\n%s", buf.String())
	}
}

func TestSummarizeFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.bin")
	w, _ := Create(path)
	for i := 0; i < 500; i++ {
		w.Append(Op{Type: OpType(i % 5), Class: rawdb.ClassTxLookup,
			Key: []byte("k"), ValueSize: 10})
	}
	w.Close()
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s, err := Summarize(r)
	if err != nil || s.Total != 500 {
		t.Fatalf("Summarize: total=%d, %v", s.Total, err)
	}
}

func TestTracedStoreHasAndStats(t *testing.T) {
	inner := kv.NewMemStore()
	sink := &SliceSink{}
	ts := WrapStore(inner, sink)
	defer ts.Close()
	ts.Put([]byte("k"), []byte("v"))
	ok, err := ts.Has([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	// Has is traced as a zero-size read.
	last := sink.Ops[len(sink.Ops)-1]
	if last.Type != OpRead || last.ValueSize != 0 {
		t.Fatalf("Has op: %+v", last)
	}
	if ts.Inner() != inner {
		t.Fatal("Inner")
	}
	// MemStore does not provide stats: zero value returned.
	if st := ts.Stats(); st.Puts != 0 {
		t.Fatalf("Stats over plain store: %+v", st)
	}
	if !IsNotFound(kv.ErrNotFound) || IsNotFound(nil) {
		t.Fatal("IsNotFound")
	}
}

func TestTracedBatchValueSizeResetReplay(t *testing.T) {
	ts := WrapStore(kv.NewMemStore(), &SliceSink{})
	defer ts.Close()
	b := ts.NewBatch()
	b.Put([]byte("abc"), []byte("defg"))
	b.Delete([]byte("xy"))
	if b.ValueSize() != 9 {
		t.Fatalf("ValueSize = %d", b.ValueSize())
	}
	mirror := kv.NewMemStore()
	defer mirror.Close()
	if err := b.Replay(mirror); err != nil {
		t.Fatal(err)
	}
	if v, _ := mirror.Get([]byte("abc")); string(v) != "defg" {
		t.Fatal("replay lost put")
	}
	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset")
	}
}

func TestOpTypeString(t *testing.T) {
	want := map[OpType]string{
		OpRead: "read", OpWrite: "write", OpUpdate: "update",
		OpDelete: "delete", OpScan: "scan",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if OpType(99).String() != "op(99)" {
		t.Errorf("unknown op string: %q", OpType(99).String())
	}
}

// failingWriter errors after n bytes, for error-path coverage.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, fmt.Errorf("disk full")
	}
	return n, nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	w := NewWriter(&failingWriter{left: 4})
	var err error
	// The bufio layer absorbs writes until it flushes; push enough data.
	for i := 0; i < 100000 && err == nil; i++ {
		err = w.Append(Op{Type: OpRead, Class: rawdb.ClassCode, Key: make([]byte, 64)})
	}
	if err == nil {
		err = w.Close()
	}
	if err == nil {
		t.Fatal("io error never surfaced")
	}
}

func TestReaderRejectsImplausibleKeyLength(t *testing.T) {
	// head(3) + uvarint keyLen=2^30.
	data := []byte{0, 1, 0, 0x80, 0x80, 0x80, 0x80, 0x04}
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); err == nil {
		t.Fatal("implausible key length accepted")
	}
}
