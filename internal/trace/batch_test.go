package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

// writeTestTrace writes n synthetic ops to a trace file and returns both
// the path and the ops as appended.
func writeTestTrace(t *testing.T, n int) (string, []Op) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	ops := make([]Op, n)
	for i := range ops {
		key := make([]byte, rng.Intn(80))
		rng.Read(key)
		ops[i] = Op{
			Seq:       uint64(i),
			Type:      OpType(rng.Intn(5)),
			Class:     rawdb.Class(rng.Intn(29) + 1),
			Key:       key,
			ValueSize: uint32(rng.Intn(4096)),
			Hit:       rng.Intn(3) == 0,
		}
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ops
}

func requireOpEqual(t *testing.T, i int, got, want Op) {
	t.Helper()
	if got.Seq != want.Seq || got.Type != want.Type || got.Class != want.Class ||
		!bytes.Equal(got.Key, want.Key) || got.ValueSize != want.ValueSize ||
		got.Hit != want.Hit {
		t.Fatalf("op %d mismatch:\ngot  %+v\nwant %+v", i, got, want)
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	const n = 2003
	path, want := writeTestTrace(t, n)
	// Batch sizes chosen to land mid-record, exactly at EOF, and past it.
	for _, bs := range []int{1, 7, 100, n, n + 50} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			r, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			dst := make([]Op, bs)
			total := 0
			for {
				m, err := r.NextBatch(dst)
				for i := 0; i < m; i++ {
					requireOpEqual(t, total, dst[i], want[total])
					total++
				}
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if m == 0 {
					t.Fatal("NextBatch returned (0, nil)")
				}
			}
			if total != n {
				t.Fatalf("read %d ops, want %d", total, n)
			}
		})
	}
}

func TestNextBatchKeysStayValid(t *testing.T) {
	// Keys from earlier batches must survive later NextBatch calls: each
	// batch gets its own arena.
	path, want := writeTestTrace(t, 500)
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []Op
	dst := make([]Op, 64)
	for {
		m, err := r.NextBatch(dst)
		got = append(got, dst[:m]...)
		if err != nil {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read %d ops, want %d", len(got), len(want))
	}
	for i := range got {
		requireOpEqual(t, i, got[i], want[i])
	}
}

func TestNextBatchEOFSemantics(t *testing.T) {
	path, _ := writeTestTrace(t, 10)
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := make([]Op, 64)
	// Short batch ending exactly at EOF: (10, nil) first.
	n, err := r.NextBatch(dst)
	if n != 10 || err != nil {
		t.Fatalf("first NextBatch = (%d, %v), want (10, nil)", n, err)
	}
	n, err = r.NextBatch(dst)
	if n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("second NextBatch = (%d, %v), want (0, EOF)", n, err)
	}
	// Zero-length dst is a no-op, not EOF.
	if n, err := r.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = (%d, %v)", n, err)
	}
}

func TestNextBatchTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Op{Type: OpRead, Class: rawdb.ClassCode, Key: []byte("abcd")})
	w.Close()
	// Chop the final record mid-key: a truncated head reads as EOF, and a
	// batch holding prior complete records still returns them.
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	dst := make([]Op, 4)
	n, err := r.NextBatch(dst)
	if n != 0 || err == nil {
		t.Fatalf("NextBatch on truncated record = (%d, %v), want (0, error)", n, err)
	}
}

func TestSliceSinkAppendBatchAndGrow(t *testing.T) {
	s := &SliceSink{}
	s.Grow(100)
	if cap(s.Ops) < 100 {
		t.Fatalf("Grow(100): cap = %d", cap(s.Ops))
	}
	batch := []Op{{Seq: 0, Type: OpRead}, {Seq: 1, Type: OpWrite}}
	if err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Op{Seq: 2, Type: OpDelete}); err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 3 || s.Ops[1].Type != OpWrite || s.Ops[2].Type != OpDelete {
		t.Fatalf("ops = %+v", s.Ops)
	}
}

func TestBufferedStoreFlushSemantics(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStoreBuffered(kv.NewMemStore(), sink, 4)
	for i := 0; i < 6; i++ {
		if err := ts.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// 6 ops with flushEvery=4: one threshold flush has happened, 2 pending.
	if len(sink.Ops) != 4 {
		t.Fatalf("before Flush: %d ops delivered, want 4", len(sink.Ops))
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Ops) != 6 {
		t.Fatalf("after Flush: %d ops delivered, want 6", len(sink.Ops))
	}
	// Sequence order survives buffering.
	for i, op := range sink.Ops {
		if op.Seq != uint64(i) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
		if op.Type != OpWrite {
			t.Fatalf("op %d is %v, want write", i, op.Type)
		}
	}
	// Keys emitted through the arena are private copies.
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedStoreCloseFlushes(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStoreBuffered(kv.NewMemStore(), sink, 100)
	for i := 0; i < 5; i++ {
		if err := ts.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.Ops) != 0 {
		t.Fatalf("ops delivered before Close: %d", len(sink.Ops))
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Ops) != 5 {
		t.Fatalf("after Close: %d ops delivered, want 5", len(sink.Ops))
	}
}

func TestBufferedStoreNonBatchSink(t *testing.T) {
	// A Sink without AppendBatch still receives every op, in order.
	sink := &appendOnlySink{}
	ts := WrapStoreBuffered(kv.NewMemStore(), sink, 3)
	for i := 0; i < 7; i++ {
		if err := ts.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.ops) != 7 {
		t.Fatalf("delivered %d ops, want 7", len(sink.ops))
	}
	for i, op := range sink.ops {
		if op.Seq != uint64(i) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
	}
}

// appendOnlySink implements Sink but not BatchSink.
type appendOnlySink struct{ ops []Op }

func (s *appendOnlySink) Append(op Op) error {
	s.ops = append(s.ops, op)
	return nil
}

// failingSink errors on every delivery.
type failingSink struct{ calls int }

var errSinkBroken = errors.New("sink broken")

func (s *failingSink) Append(Op) error { s.calls++; return errSinkBroken }

func TestBufferedStoreSinkErrorLatched(t *testing.T) {
	ts := WrapStoreBuffered(kv.NewMemStore(), &failingSink{}, 2)
	for i := 0; i < 4; i++ {
		if err := ts.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Flush(); !errors.Is(err, errSinkBroken) {
		t.Fatalf("Flush = %v, want sink error", err)
	}
}

// hasErrStore wraps a store and fails Has, exercising the put
// classification error path.
type hasErrStore struct{ kv.Store }

var errHasBroken = errors.New("has broken")

func (s hasErrStore) Has([]byte) (bool, error) { return false, errHasBroken }

func TestPutClassificationErrorPropagates(t *testing.T) {
	sink := &SliceSink{}
	ts := WrapStore(hasErrStore{kv.NewMemStore()}, sink)
	err := ts.Put([]byte("key"), []byte("v"))
	if !errors.Is(err, errHasBroken) {
		t.Fatalf("Put = %v, want wrapped Has error", err)
	}
	// The op was neither applied nor traced.
	if len(sink.Ops) != 0 {
		t.Fatalf("traced %d ops after failed classification", len(sink.Ops))
	}
	// A key already in the known set skips the probe and succeeds.
	ts2 := WrapStore(kv.NewMemStore(), sink)
	if err := ts2.Put([]byte("key"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
