// Package trace captures KV operation streams at the store interface — the
// instrumentation point the paper uses in its modified Geth client — and
// persists them in a compact binary format suitable for billions of ops.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"ethkv/internal/rawdb"
)

// OpType enumerates the five operation kinds the paper distinguishes.
type OpType uint8

// Operation kinds. A write to an existing key is recorded as OpUpdate,
// matching the paper's write/update split ("we classify a write as an
// update if it is issued to an existing key").
const (
	OpRead OpType = iota
	OpWrite
	OpUpdate
	OpDelete
	OpScan
)

// opNames renders OpType for reports.
var opNames = [...]string{"read", "write", "update", "delete", "scan"}

func (t OpType) String() string {
	if int(t) < len(opNames) {
		return opNames[t]
	}
	return fmt.Sprintf("op(%d)", uint8(t))
}

// Op is one traced KV operation.
type Op struct {
	Seq       uint64      // position in the trace
	Type      OpType      // operation kind
	Class     rawdb.Class // storage class of the key
	Key       []byte      // full key
	ValueSize uint32      // value bytes moved (0 for deletes/misses)
	Hit       bool        // read served without reaching the store (cache)
}

// Writer streams ops to an io.Writer in the binary trace format:
//
//	type u8 | class u8 | flags u8 | keyLen uvarint | key | valueSize uvarint
//
// Seq is implicit (record ordinal).
type Writer struct {
	w     *bufio.Writer
	c     io.Closer
	count uint64
}

// NewWriter wraps w; if w is also an io.Closer, Close closes it.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<20)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Create opens a trace file for writing.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewWriter(f), nil
}

// Append records one operation.
func (w *Writer) Append(op Op) error {
	var head [3]byte
	head[0] = byte(op.Type)
	head[1] = byte(op.Class)
	if op.Hit {
		head[2] = 1
	}
	if _, err := w.w.Write(head[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(op.Key)))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(op.Key); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(op.ValueSize))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// AppendBatch records a run of operations under one call — the batched
// counterpart Sink consumers use to amortize per-op overhead.
func (w *Writer) AppendBatch(ops []Op) error {
	for i := range ops {
		if err := w.Append(ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of ops appended so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered records and closes the underlying file if owned.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Reader streams ops back from a trace.
type Reader struct {
	r   *bufio.Reader
	c   io.Closer
	seq uint64
	// batchOffs is NextBatch's reusable key-offset scratch.
	batchOffs []int
}

// NewReader wraps r; if r is also an io.Closer, Close closes it.
func NewReader(r io.Reader) *Reader {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<20)}
	if c, ok := r.(io.Closer); ok {
		tr.c = c
	}
	return tr
}

// OpenFile opens a trace file for reading.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return NewReader(f), nil
}

// Next returns the next op, or io.EOF at the end of the trace.
func (r *Reader) Next() (Op, error) {
	var head [3]byte
	if _, err := io.ReadFull(r.r, head[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Op{}, io.EOF
		}
		return Op{}, err
	}
	keyLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Op{}, err
	}
	if keyLen > 1<<20 {
		return Op{}, fmt.Errorf("trace: implausible key length %d", keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r.r, key); err != nil {
		return Op{}, err
	}
	valSize, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Op{}, err
	}
	op := Op{
		Seq:       r.seq,
		Type:      OpType(head[0]),
		Class:     rawdb.Class(head[1]),
		Key:       key,
		ValueSize: uint32(valSize),
		Hit:       head[2]&1 != 0,
	}
	r.seq++
	return op, nil
}

// NextBatch fills dst with up to len(dst) ops and returns how many were
// read. All key slices point into one arena allocated per call — one
// allocation per batch rather than one per op — and remain valid after
// subsequent calls. At the end of the trace it returns (0, io.EOF); a
// short batch ending exactly at EOF returns (n, nil) first.
//
// NextBatch is the preferred bulk-read path; ForEach and Next remain for
// per-op consumers.
func (r *Reader) NextBatch(dst []Op) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	// Decode records with key offsets first: the arena may move while it
	// grows, so keys are re-sliced only once its final size is known.
	if cap(r.batchOffs) < len(dst)+1 {
		r.batchOffs = make([]int, 0, len(dst)+1)
	}
	offs := r.batchOffs[:0]
	arena := make([]byte, 0, len(dst)*48)
	n := 0
	var err error
	for n < len(dst) {
		var head [3]byte
		if _, herr := io.ReadFull(r.r, head[:]); herr != nil {
			if errors.Is(herr, io.EOF) || errors.Is(herr, io.ErrUnexpectedEOF) {
				err = io.EOF
			} else {
				err = herr
			}
			break
		}
		keyLen, kerr := binary.ReadUvarint(r.r)
		if kerr != nil {
			err = kerr
			break
		}
		if keyLen > 1<<20 {
			err = fmt.Errorf("trace: implausible key length %d", keyLen)
			break
		}
		off := len(arena)
		need := off + int(keyLen)
		if need > cap(arena) {
			bigger := make([]byte, off, max(need, 2*cap(arena)))
			copy(bigger, arena)
			arena = bigger
		}
		arena = arena[:need]
		if _, rerr := io.ReadFull(r.r, arena[off:]); rerr != nil {
			err = rerr
			break
		}
		valSize, verr := binary.ReadUvarint(r.r)
		if verr != nil {
			err = verr
			break
		}
		offs = append(offs, off)
		dst[n] = Op{
			Seq:       r.seq,
			Type:      OpType(head[0]),
			Class:     rawdb.Class(head[1]),
			ValueSize: uint32(valSize),
			Hit:       head[2]&1 != 0,
		}
		r.seq++
		n++
	}
	offs = append(offs, len(arena))
	r.batchOffs = offs
	for i := 0; i < n; i++ {
		dst[i].Key = arena[offs[i]:offs[i+1]:offs[i+1]]
	}
	if n > 0 && errors.Is(err, io.EOF) {
		return n, nil
	}
	return n, err
}

// ForEach streams every op in the trace through fn.
func (r *Reader) ForEach(fn func(Op) error) error {
	for {
		op, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(op); err != nil {
			return err
		}
	}
}

// Close closes the underlying file if owned.
func (r *Reader) Close() error {
	if r.c != nil {
		return r.c.Close()
	}
	return nil
}
