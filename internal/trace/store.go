package trace

import (
	"errors"
	"fmt"
	"sync"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

// Sink receives traced operations. Writer satisfies it; tests use in-memory
// collectors.
type Sink interface {
	Append(Op) error
}

// BatchSink is a Sink that also accepts batched appends. The buffered
// store emit path uses it to amortize per-op sink overhead; sinks without
// it receive the batch as individual Appends.
type BatchSink interface {
	Sink
	AppendBatch([]Op) error
}

// SliceSink collects ops in memory, for tests and small experiments.
type SliceSink struct {
	mu  sync.Mutex
	Ops []Op
}

// Append implements Sink.
func (s *SliceSink) Append(op Op) error {
	s.mu.Lock()
	s.Ops = append(s.Ops, op)
	s.mu.Unlock()
	return nil
}

// AppendBatch implements BatchSink: one lock acquisition per batch.
func (s *SliceSink) AppendBatch(ops []Op) error {
	s.mu.Lock()
	s.Ops = append(s.Ops, ops...)
	s.mu.Unlock()
	return nil
}

// Grow preallocates capacity for n more ops.
func (s *SliceSink) Grow(n int) {
	s.mu.Lock()
	if need := len(s.Ops) + n; need > cap(s.Ops) {
		bigger := make([]Op, len(s.Ops), need)
		copy(bigger, s.Ops)
		s.Ops = bigger
	}
	s.mu.Unlock()
}

// Store wraps a kv.Store, logging every operation that crosses the
// interface — the same observation point as the paper's modified Geth. It
// also tracks key existence to split writes from updates the way the paper
// does, and records cache hits when a CacheResult is reported.
type Store struct {
	mu    sync.Mutex
	inner kv.Store
	sink  Sink
	seq   uint64
	// known tracks which keys currently exist, to classify write vs update
	// and delete-of-absent. Seeded from the store at wrap time if requested.
	known map[string]struct{}
	// arena backs emitted key copies in grow-only chunks: one allocation
	// per ~64 KiB of keys instead of one per op. Chunks are never reused,
	// so emitted keys stay valid for the lifetime of the sink.
	arena []byte
	// flushEvery batches sink delivery: ops buffer in pending (in sequence
	// order) and flush as one AppendBatch. <=1 delivers per-op.
	flushEvery int
	pending    []Op
	// sinkErr latches the first sink delivery failure; Flush reports it.
	sinkErr error
}

var _ kv.Store = (*Store)(nil)

// arenaChunk is the key-arena allocation granularity.
const arenaChunk = 64 << 10

// WrapStore instruments inner, delivering every op to sink as it happens.
func WrapStore(inner kv.Store, sink Sink) *Store {
	return WrapStoreBuffered(inner, sink, 0)
}

// WrapStoreBuffered instruments inner, buffering up to flushEvery ops and
// delivering them to sink in sequence-ordered batches — the hot-path
// configuration for trace collection. Call Flush (or Close) before reading
// the sink. flushEvery <= 1 delivers per-op, exactly like WrapStore.
func WrapStoreBuffered(inner kv.Store, sink Sink, flushEvery int) *Store {
	s := &Store{
		inner:      inner,
		sink:       sink,
		known:      make(map[string]struct{}),
		flushEvery: flushEvery,
	}
	if flushEvery > 1 {
		s.pending = make([]Op, 0, flushEvery)
	}
	return s
}

// emit appends one op with the next sequence number.
func (s *Store) emit(t OpType, key []byte, valueSize int, hit bool) {
	op := Op{
		Seq:       s.seq,
		Type:      t,
		Class:     rawdb.Classify(key),
		Key:       s.copyKey(key),
		ValueSize: uint32(valueSize),
		Hit:       hit,
	}
	s.seq++
	if s.sink == nil {
		return
	}
	if s.flushEvery <= 1 {
		if err := s.sink.Append(op); err != nil && s.sinkErr == nil {
			s.sinkErr = err
		}
		return
	}
	s.pending = append(s.pending, op)
	if len(s.pending) >= s.flushEvery {
		s.flushLocked()
	}
}

// copyKey stores a private copy of key in the arena.
func (s *Store) copyKey(key []byte) []byte {
	if cap(s.arena)-len(s.arena) < len(key) {
		s.arena = make([]byte, 0, max(arenaChunk, len(key)))
	}
	n := len(s.arena)
	s.arena = append(s.arena, key...)
	return s.arena[n:len(s.arena):len(s.arena)]
}

// flushLocked delivers pending ops to the sink in order.
func (s *Store) flushLocked() {
	if len(s.pending) == 0 {
		return
	}
	var err error
	if bs, ok := s.sink.(BatchSink); ok {
		err = bs.AppendBatch(s.pending)
	} else {
		for i := range s.pending {
			if err = s.sink.Append(s.pending[i]); err != nil {
				break
			}
		}
	}
	if err != nil && s.sinkErr == nil {
		s.sinkErr = err
	}
	s.pending = s.pending[:0]
}

// Flush delivers any buffered ops to the sink and reports the first sink
// delivery error seen so far.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.sinkErr
}

// Get implements kv.Reader, tracing a read.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.inner.Get(key)
	size := 0
	if err == nil {
		size = len(v)
	}
	s.emit(OpRead, key, size, false)
	return v, err
}

// RecordCacheHit traces a read that a cache layer served without touching
// the store. The paper's CacheTrace still sees these ops at the interface
// boundary it instruments inside Geth's accessor layer.
func (s *Store) RecordCacheHit(key []byte, valueSize int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(OpRead, key, valueSize, true)
}

// Has implements kv.Reader (traced as a read of size zero).
func (s *Store) Has(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, err := s.inner.Has(key)
	s.emit(OpRead, key, 0, false)
	return ok, err
}

// Put implements kv.Writer, tracing a write or an update depending on
// whether the key already exists.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value)
}

func (s *Store) putLocked(key, value []byte) error {
	t := OpWrite
	if _, exists := s.known[string(key)]; exists {
		t = OpUpdate
	} else {
		ok, err := s.inner.Has(key)
		if err != nil {
			// Without the existence probe the write/update split — the
			// paper's core classification — would be a guess, so fail the
			// put rather than mislabel the op.
			return fmt.Errorf("trace: classifying put: %w", err)
		}
		if ok {
			// Key predates the trace (written during earlier sync).
			t = OpUpdate
		}
	}
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	s.known[string(key)] = struct{}{}
	s.emit(t, key, len(value), false)
	return nil
}

// Delete implements kv.Writer, tracing a delete.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(key)
}

func (s *Store) deleteLocked(key []byte) error {
	if err := s.inner.Delete(key); err != nil {
		return err
	}
	delete(s.known, string(key))
	s.emit(OpDelete, key, 0, false)
	return nil
}

// NewIterator implements kv.Iterable, tracing a scan against the class of
// its prefix.
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	s.mu.Lock()
	s.emit(OpScan, prefix, 0, false)
	s.mu.Unlock()
	return s.inner.NewIterator(prefix, start)
}

// NewBatch implements kv.Batcher. Batched ops are traced when the batch
// commits, in batch order — matching Geth, which flushes batched writes at
// the end of block verification.
func (s *Store) NewBatch() kv.Batch {
	return &tracedBatch{store: s, inner: s.inner.NewBatch()}
}

// Close implements kv.Store, flushing buffered ops first.
func (s *Store) Close() error {
	flushErr := s.Flush()
	if err := s.inner.Close(); err != nil {
		return err
	}
	return flushErr
}

// Stats surfaces the inner store's counters when available.
func (s *Store) Stats() kv.Stats {
	if sp, ok := s.inner.(kv.StatsProvider); ok {
		return sp.Stats()
	}
	return kv.Stats{}
}

// Inner returns the wrapped store.
func (s *Store) Inner() kv.Store { return s.inner }

// Seq returns the number of ops traced so far.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// tracedBatch defers tracing to commit time.
type tracedBatch struct {
	store *Store
	inner kv.Batch
	ops   []batchedOp
}

type batchedOp struct {
	key, value []byte
	delete     bool
}

func (b *tracedBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchedOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	return nil
}

func (b *tracedBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchedOp{key: append([]byte(nil), key...), delete: true})
	return nil
}

func (b *tracedBatch) ValueSize() int {
	total := 0
	for _, op := range b.ops {
		total += len(op.key) + len(op.value)
	}
	return total
}

// Write applies and traces the batched ops in order.
func (b *tracedBatch) Write() error {
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = b.store.deleteLocked(op.key)
		} else {
			err = b.store.putLocked(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *tracedBatch) Reset() { b.ops = b.ops[:0] }

func (b *tracedBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrNotFound re-exports kv.ErrNotFound for trace-level callers.
var ErrNotFound = kv.ErrNotFound

// IsNotFound reports whether err is the store's not-found error.
func IsNotFound(err error) bool { return errors.Is(err, kv.ErrNotFound) }
