package trace

import (
	"errors"
	"sync"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

// Sink receives traced operations. Writer satisfies it; tests use in-memory
// collectors.
type Sink interface {
	Append(Op) error
}

// SliceSink collects ops in memory, for tests and small experiments.
type SliceSink struct {
	mu  sync.Mutex
	Ops []Op
}

// Append implements Sink.
func (s *SliceSink) Append(op Op) error {
	s.mu.Lock()
	s.Ops = append(s.Ops, op)
	s.mu.Unlock()
	return nil
}

// Store wraps a kv.Store, logging every operation that crosses the
// interface — the same observation point as the paper's modified Geth. It
// also tracks key existence to split writes from updates the way the paper
// does, and records cache hits when a CacheResult is reported.
type Store struct {
	mu    sync.Mutex
	inner kv.Store
	sink  Sink
	seq   uint64
	// known tracks which keys currently exist, to classify write vs update
	// and delete-of-absent. Seeded from the store at wrap time if requested.
	known map[string]struct{}
}

var _ kv.Store = (*Store)(nil)

// WrapStore instruments inner, sending every op to sink.
func WrapStore(inner kv.Store, sink Sink) *Store {
	return &Store{
		inner: inner,
		sink:  sink,
		known: make(map[string]struct{}),
	}
}

// emit appends one op with the next sequence number.
func (s *Store) emit(t OpType, key []byte, valueSize int, hit bool) {
	op := Op{
		Seq:       s.seq,
		Type:      t,
		Class:     rawdb.Classify(key),
		Key:       append([]byte(nil), key...),
		ValueSize: uint32(valueSize),
		Hit:       hit,
	}
	s.seq++
	if s.sink != nil {
		_ = s.sink.Append(op)
	}
}

// Get implements kv.Reader, tracing a read.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.inner.Get(key)
	size := 0
	if err == nil {
		size = len(v)
	}
	s.emit(OpRead, key, size, false)
	return v, err
}

// RecordCacheHit traces a read that a cache layer served without touching
// the store. The paper's CacheTrace still sees these ops at the interface
// boundary it instruments inside Geth's accessor layer.
func (s *Store) RecordCacheHit(key []byte, valueSize int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(OpRead, key, valueSize, true)
}

// Has implements kv.Reader (traced as a read of size zero).
func (s *Store) Has(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, err := s.inner.Has(key)
	s.emit(OpRead, key, 0, false)
	return ok, err
}

// Put implements kv.Writer, tracing a write or an update depending on
// whether the key already exists.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value)
}

func (s *Store) putLocked(key, value []byte) error {
	t := OpWrite
	if _, exists := s.known[string(key)]; exists {
		t = OpUpdate
	} else if ok, _ := s.inner.Has(key); ok {
		// Key predates the trace (written during earlier sync).
		t = OpUpdate
	}
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	s.known[string(key)] = struct{}{}
	s.emit(t, key, len(value), false)
	return nil
}

// Delete implements kv.Writer, tracing a delete.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(key)
}

func (s *Store) deleteLocked(key []byte) error {
	if err := s.inner.Delete(key); err != nil {
		return err
	}
	delete(s.known, string(key))
	s.emit(OpDelete, key, 0, false)
	return nil
}

// NewIterator implements kv.Iterable, tracing a scan against the class of
// its prefix.
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	s.mu.Lock()
	s.emit(OpScan, prefix, 0, false)
	s.mu.Unlock()
	return s.inner.NewIterator(prefix, start)
}

// NewBatch implements kv.Batcher. Batched ops are traced when the batch
// commits, in batch order — matching Geth, which flushes batched writes at
// the end of block verification.
func (s *Store) NewBatch() kv.Batch {
	return &tracedBatch{store: s, inner: s.inner.NewBatch()}
}

// Close implements kv.Store.
func (s *Store) Close() error { return s.inner.Close() }

// Stats surfaces the inner store's counters when available.
func (s *Store) Stats() kv.Stats {
	if sp, ok := s.inner.(kv.StatsProvider); ok {
		return sp.Stats()
	}
	return kv.Stats{}
}

// Inner returns the wrapped store.
func (s *Store) Inner() kv.Store { return s.inner }

// Seq returns the number of ops traced so far.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// tracedBatch defers tracing to commit time.
type tracedBatch struct {
	store *Store
	inner kv.Batch
	ops   []batchedOp
}

type batchedOp struct {
	key, value []byte
	delete     bool
}

func (b *tracedBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchedOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	return nil
}

func (b *tracedBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchedOp{key: append([]byte(nil), key...), delete: true})
	return nil
}

func (b *tracedBatch) ValueSize() int {
	total := 0
	for _, op := range b.ops {
		total += len(op.key) + len(op.value)
	}
	return total
}

// Write applies and traces the batched ops in order.
func (b *tracedBatch) Write() error {
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = b.store.deleteLocked(op.key)
		} else {
			err = b.store.putLocked(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *tracedBatch) Reset() { b.ops = b.ops[:0] }

func (b *tracedBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrNotFound re-exports kv.ErrNotFound for trace-level callers.
var ErrNotFound = kv.ErrNotFound

// IsNotFound reports whether err is the store's not-found error.
func IsNotFound(err error) bool { return errors.Is(err, kv.ErrNotFound) }
