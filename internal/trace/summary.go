package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"ethkv/internal/rawdb"
)

// Summary is a cheap single-pass digest of a trace: per-class op counts and
// byte volumes, without the per-key state the full analyses keep. Suitable
// for a first look at very large trace files.
type Summary struct {
	Total     uint64
	Hits      uint64 // cache-hit reads (excluded from the paper's censuses)
	ByClass   map[rawdb.Class]*SummaryRow
	KeyBytes  uint64
	ValueData uint64
}

// SummaryRow is one class's counters.
type SummaryRow struct {
	Reads, Writes, Updates, Deletes, Scans uint64
	ValueBytes                             uint64
}

// Total returns the row's op count.
func (r *SummaryRow) Total() uint64 {
	return r.Reads + r.Writes + r.Updates + r.Deletes + r.Scans
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{ByClass: make(map[rawdb.Class]*SummaryRow)}
}

// Observe folds one op into the summary.
func (s *Summary) Observe(op Op) {
	if op.Hit {
		s.Hits++
		return
	}
	row := s.ByClass[op.Class]
	if row == nil {
		row = &SummaryRow{}
		s.ByClass[op.Class] = row
	}
	switch op.Type {
	case OpRead:
		row.Reads++
	case OpWrite:
		row.Writes++
	case OpUpdate:
		row.Updates++
	case OpDelete:
		row.Deletes++
	case OpScan:
		row.Scans++
	}
	row.ValueBytes += uint64(op.ValueSize)
	s.KeyBytes += uint64(len(op.Key))
	s.ValueData += uint64(op.ValueSize)
	s.Total++
}

// Summarize streams a whole trace reader into a summary via the batched
// read path.
func Summarize(r *Reader) (*Summary, error) {
	s := NewSummary()
	batch := make([]Op, 4096)
	for {
		n, err := r.NextBatch(batch)
		for i := 0; i < n; i++ {
			s.Observe(batch[i])
		}
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Render writes the summary as an aligned table.
func (s *Summary) Render(w io.Writer) {
	classes := make([]rawdb.Class, 0, len(s.ByClass))
	for c := range s.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		return s.ByClass[classes[i]].Total() > s.ByClass[classes[j]].Total()
	})
	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s %8s %12s\n",
		"Class", "Reads", "Writes", "Updates", "Deletes", "Scans", "ValueBytes")
	for _, c := range classes {
		row := s.ByClass[c]
		fmt.Fprintf(w, "%-22s %10d %10d %10d %10d %8d %12d\n",
			c, row.Reads, row.Writes, row.Updates, row.Deletes, row.Scans, row.ValueBytes)
	}
	fmt.Fprintf(w, "total ops: %d   data: %.1f MiB keys + %.1f MiB values\n",
		s.Total, float64(s.KeyBytes)/(1<<20), float64(s.ValueData)/(1<<20))
}
