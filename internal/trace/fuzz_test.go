package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader: arbitrary bytes must never panic the trace reader; it either
// yields ops or errors out.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Op{Type: OpRead, Class: 3, Key: []byte("some-key"), ValueSize: 99})
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
	})
}
