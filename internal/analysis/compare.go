package analysis

import "ethkv/internal/rawdb"

// TraceComparison quantifies the effect of caching + snapshot acceleration
// by contrasting the two traces — the evidence behind Findings 6 and 7.
type TraceComparison struct {
	// Read/write totals from the op censuses.
	BareReads, CacheReads             uint64
	BareWorldReads, CacheWorldReads   uint64
	BareWorldWrites, CacheWorldWrites uint64
	BareTrieReads, CacheTrieReads     uint64

	// Store pair counts after each run.
	BarePairs, CachePairs uint64
}

// Compare builds the comparison from the two op censuses and store
// censuses.
func Compare(bare, cached *OpDist, bareStore, cachedStore *SizeDist) *TraceComparison {
	trieReads := func(d *OpDist) uint64 {
		var total uint64
		for _, class := range []rawdb.Class{rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage} {
			if co := d.PerClass[class]; co != nil {
				total += co.Reads
			}
		}
		return total
	}
	return &TraceComparison{
		BareReads:        bare.TotalReads(),
		CacheReads:       cached.TotalReads(),
		BareWorldReads:   bare.WorldStateReads(),
		CacheWorldReads:  cached.WorldStateReads(),
		BareWorldWrites:  bare.WorldStateWrites(),
		CacheWorldWrites: cached.WorldStateWrites(),
		BareTrieReads:    trieReads(bare),
		CacheTrieReads:   trieReads(cached),
		BarePairs:        bareStore.Total,
		CachePairs:       cachedStore.Total,
	}
}

// reduction computes 1 - after/before, clamped to [0, 1]; 0 when before=0.
func reduction(before, after uint64) float64 {
	if before == 0 {
		return 0
	}
	r := 1 - float64(after)/float64(before)
	if r < 0 {
		return 0
	}
	return r
}

// ReadReduction is the total-read reduction from caching+snapshot
// (the paper: 4.65B -> 0.96B, a 79% cut).
func (c *TraceComparison) ReadReduction() float64 {
	return reduction(c.BareReads, c.CacheReads)
}

// WorldStateReadReduction covers the four world-state classes
// (the paper reports 79.7%).
func (c *TraceComparison) WorldStateReadReduction() float64 {
	return reduction(c.BareWorldReads, c.CacheWorldReads)
}

// TrieReadReduction covers TrieNodeAccount+TrieNodeStorage only
// (the paper reports 82.7% and 87.5% respectively).
func (c *TraceComparison) TrieReadReduction() float64 {
	return reduction(c.BareTrieReads, c.CacheTrieReads)
}

// WorldStateWriteReduction covers world-state writes+updates
// (the paper reports 64.2%: 4.11B -> 1.47B).
func (c *TraceComparison) WorldStateWriteReduction() float64 {
	return reduction(c.BareWorldWrites, c.CacheWorldWrites)
}

// StorageOverhead is the pair-count increase from snapshot acceleration
// (the paper reports +61.5%: 2.44B -> 3.94B).
func (c *TraceComparison) StorageOverhead() float64 {
	if c.BarePairs == 0 {
		return 0
	}
	return float64(c.CachePairs)/float64(c.BarePairs) - 1
}
