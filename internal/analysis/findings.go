package analysis

import (
	"fmt"
	"sort"
	"sync"

	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// Finding is one checked claim from the paper with measured evidence.
type Finding struct {
	ID       int
	Title    string
	Holds    bool
	Evidence string
}

// FindingsInput bundles everything the checker consumes: both traces'
// censuses, both store censuses, and the four correlation passes.
type FindingsInput struct {
	CachedOps   *OpDist
	BareOps     *OpDist
	CachedStore *SizeDist
	BareStore   *SizeDist

	CachedReadCorr   *Correlator
	BareReadCorr     *Correlator
	CachedUpdateCorr *Correlator
	BareUpdateCorr   *Correlator
}

// CheckFindings evaluates all 11 findings against the measured data and
// returns them in paper order. A finding "holds" when the qualitative
// claim reproduces; the evidence string reports the measured quantities.
func CheckFindings(in *FindingsInput) []Finding {
	var out []Finding
	out = append(out, checkFinding1(in))
	out = append(out, checkFinding2(in))
	out = append(out, checkFinding3(in))
	out = append(out, checkFinding4(in))
	out = append(out, checkFinding5(in))
	out = append(out, checkFinding6(in))
	out = append(out, checkFinding7(in))
	out = append(out, checkFinding8(in))
	out = append(out, checkFinding9(in))
	out = append(out, checkFinding10(in))
	out = append(out, checkFinding11(in))
	return out
}

// Finding 1: five classes dominate KV storage (>99% of pairs); 15 classes
// are singletons.
func checkFinding1(in *FindingsInput) Finding {
	share := in.CachedStore.DominantShare()
	singletons := in.CachedStore.SingletonClasses()
	return Finding{
		ID:    1,
		Title: "Five classes of KV pairs dominate KV storage",
		Holds: share > 0.95 && singletons >= 10,
		Evidence: fmt.Sprintf("dominant-5 share %.2f%% (paper: >99.2%%); %d singleton classes (paper: 15)",
			share*100, singletons),
	}
}

// Finding 2: KV sizes vary across classes; dominant classes are small.
func checkFinding2(in *FindingsInput) Finding {
	mean := in.CachedStore.DominantMeanKVSize()
	large := in.CachedStore.LargePairShare()
	// Code/BlockBody/BlockReceipts must be much larger than the mean.
	bigClasses := 0
	for _, class := range []rawdb.Class{rawdb.ClassCode, rawdb.ClassBlockBody, rawdb.ClassBlockReceipts} {
		if cs := in.CachedStore.PerClass[class]; cs != nil && cs.MeanValueSize() > 4*mean {
			bigClasses++
		}
	}
	return Finding{
		ID:    2,
		Title: "KV sizes (per KV pair) vary across classes",
		// The large-pair share threshold is looser than the paper's 0.04%:
		// at laptop scale block/code pairs are proportionally more common
		// (fewer world-state pairs to dilute them); the claim is that
		// large pairs are a small minority.
		Holds: mean < 256 && large < 0.05 && bigClasses >= 2,
		Evidence: fmt.Sprintf("dominant-class mean KV size %.1f B (paper: 79.1 B); >1KiB pair share %.4f%% (paper: 0.04%%); %d/3 block/code classes >4x larger",
			mean, large*100, bigClasses),
	}
}

// Finding 3: most KV pairs are rarely or never read; read-once dominates.
func checkFinding3(in *FindingsInput) Finding {
	ratios := make(map[rawdb.Class]float64)
	for _, class := range DefaultTrackedClasses() {
		var pairs uint64
		if cs := in.CachedStore.PerClass[class]; cs != nil {
			pairs = cs.Pairs
		}
		ratios[class] = in.CachedOps.ReadRatio(class, pairs)
	}
	var onceShares []float64
	for _, class := range DefaultTrackedClasses() {
		if co := in.CachedOps.PerClass[class]; co != nil {
			onceShares = append(onceShares, ReadOnceShare(co.ReadFreq))
		}
	}
	lowRatios := 0
	for _, r := range ratios {
		// Below 60%: a majority-unread class. The paper sees <=15% at
		// mainnet scale; small synthetic populations read-touch more of
		// their (much smaller) key space.
		if r < 0.6 {
			lowRatios++
		}
	}
	highOnce := 0
	for _, s := range onceShares {
		if s > 0.3 {
			highOnce++
		}
	}
	return Finding{
		ID:    3,
		Title: "Most KV pairs are rarely or never read",
		Holds: lowRatios >= 3 && highOnce >= 2,
		Evidence: fmt.Sprintf("read ratios TA=%.1f%% TS=%.1f%% SA=%.1f%% SS=%.1f%% (paper: 6.6-14.7%%); read-once shares %v",
			ratios[rawdb.ClassTrieNodeAccount]*100, ratios[rawdb.ClassTrieNodeStorage]*100,
			ratios[rawdb.ClassSnapshotAccount]*100, ratios[rawdb.ClassSnapshotStorage]*100,
			fmtShares(onceShares)),
	}
}

// Finding 4: scans are rare, confined to SnapshotAccount, SnapshotStorage
// and BlockHeader.
func checkFinding4(in *FindingsInput) Finding {
	scanClasses := in.CachedOps.ScanningClasses()
	allowed := map[rawdb.Class]bool{
		rawdb.ClassSnapshotAccount: true,
		rawdb.ClassSnapshotStorage: true,
		rawdb.ClassBlockHeader:     true,
	}
	confined := true
	for _, class := range scanClasses {
		if !allowed[class] {
			confined = false
		}
	}
	var scans, total uint64
	for _, co := range in.CachedOps.PerClass {
		scans += co.Scans
		total += co.Total()
	}
	return Finding{
		ID:    4,
		Title: "Scans are rare in Ethereum",
		Holds: confined && total > 0 && float64(scans)/float64(total) < 0.01,
		Evidence: fmt.Sprintf("scanning classes: %v (paper: SA, SS, BH); scan share %.4f%% of all ops",
			classNames(scanClasses), pct(scans, total)),
	}
}

// Finding 5: deletions are significant; TxLookup and BlockHeader delete
// heavily; some world-state keys are deleted repeatedly.
func checkFinding5(in *FindingsInput) Finding {
	deleteShare := func(class rawdb.Class) float64 {
		co := in.CachedOps.PerClass[class]
		if co == nil || co.Total() == 0 {
			return 0
		}
		return float64(co.Deletes) / float64(co.Total())
	}
	tx := deleteShare(rawdb.ClassTxLookup)
	bh := deleteShare(rawdb.ClassBlockHeader)
	// Multi-deleted world-state keys can appear in either trace (bare mode
	// surfaces more of them: no write coalescing hides delete/re-add
	// cycles inside the dirty buffer).
	var multiDeleted uint64
	for _, class := range DefaultTrackedClasses() {
		if co := in.CachedOps.PerClass[class]; co != nil {
			multiDeleted += MultiDeleteKeys(co.DeleteFreq)
		}
		if co := in.BareOps.PerClass[class]; co != nil {
			multiDeleted += MultiDeleteKeys(co.DeleteFreq)
		}
	}
	return Finding{
		ID:    5,
		Title: "Deletions are significant, with some keys repeatedly deleted and reinserted",
		Holds: tx > 0.2 && bh > 0.05 && multiDeleted > 0,
		Evidence: fmt.Sprintf("delete shares: TxLookup %.1f%% (paper: 48.0%%), BlockHeader %.1f%% (paper: 16.9%%); %d world-state keys deleted >1x",
			tx*100, bh*100, multiDeleted),
	}
}

// Finding 6: caching reduces total reads strongly, but medium-frequency
// keys benefit less than the hottest keys.
func checkFinding6(in *FindingsInput) Finding {
	cmp := Compare(in.BareOps, in.CachedOps, in.BareStore, in.CachedStore)
	// Top-key read reduction vs medium-frequency reduction for the trie
	// classes: compare the reduction of reads to the top 0.1% most-read
	// keys against keys read 10-100 times.
	topRed, medRed := readReductionByBand(in.BareOps, in.CachedOps, rawdb.ClassTrieNodeAccount)
	return Finding{
		ID:    6,
		Title: "Caching has limited effectiveness for medium-frequency KV pairs",
		Holds: cmp.ReadReduction() > 0.3 && topRed >= medRed,
		Evidence: fmt.Sprintf("total reads %d -> %d (-%.1f%%; paper: 4.65B -> 0.96B); TrieNodeAccount top-band reduction %.1f%% vs medium-band %.1f%% (paper: 99.97%% vs 50-64%%)",
			cmp.BareReads, cmp.CacheReads, cmp.ReadReduction()*100, topRed*100, medRed*100),
	}
}

// Finding 7: snapshot acceleration cuts world-state reads and writes but
// inflates stored pairs.
func checkFinding7(in *FindingsInput) Finding {
	cmp := Compare(in.BareOps, in.CachedOps, in.BareStore, in.CachedStore)
	return Finding{
		ID:    7,
		Title: "Snapshot acceleration reduces reads and writes to the world state, but incurs high storage overhead",
		Holds: cmp.WorldStateReadReduction() > 0.3 &&
			cmp.WorldStateWriteReduction() > 0.2 &&
			cmp.StorageOverhead() > 0.1,
		Evidence: fmt.Sprintf("world-state read reduction %.1f%% (paper: 79.7%%); write reduction %.1f%% (paper: 64.2%%); stored pairs +%.1f%% (paper: +61.5%%)",
			cmp.WorldStateReadReduction()*100, cmp.WorldStateWriteReduction()*100,
			cmp.StorageOverhead()*100),
	}
}

// Finding 8: correlated reads cluster at small distances; intra-class
// counts exceed cross-class counts at distance zero.
func checkFinding8(in *FindingsInput) Finding {
	c := in.BareReadCorr
	intraTop := c.TopPairs(0, 1, true)
	crossTop := c.TopPairs(0, 1, false)
	var intra0, cross0, intraFar uint64
	if len(intraTop) > 0 {
		intra0 = intraTop[0].Counts[0]
		intraFar = intraTop[0].Counts[1024]
	}
	if len(crossTop) > 0 {
		cross0 = crossTop[0].Counts[0]
	}
	return Finding{
		ID:    8,
		Title: "Correlated reads are clustered in small regions",
		Holds: intra0 > 0 && intra0 > cross0 && intra0 > intraFar,
		Evidence: fmt.Sprintf("top intra-class pair at d=0: %d; at d=1024: %d; top cross-class at d=0: %d (paper: intra ~2 orders above cross at d=0, decaying with distance)",
			intra0, intraFar, cross0),
	}
}

// Finding 9: correlated-read frequencies are skewed; d=0 frequencies far
// exceed d=1024; caching reduces the skew.
func checkFinding9(in *FindingsInput) Finding {
	topBare := maxIntraFrequency(in.BareReadCorr)
	topCached := maxIntraFrequency(in.CachedReadCorr)
	farBare := maxIntraFrequencyAt(in.BareReadCorr, 1024)
	return Finding{
		ID:    9,
		Title: "Correlated reads are skewed in frequency",
		Holds: topBare > farBare && topBare >= topCached,
		Evidence: fmt.Sprintf("max intra-pair frequency: bare d=0 %d vs d=1024 %d; cached d=0 %d (paper: TA-TA 1.95M bare vs 405 cached)",
			topBare, farBare, topCached),
	}
}

// Finding 10: correlated updates cluster even tighter than reads; the
// head-marker singletons peak at distance zero.
func checkFinding10(in *FindingsInput) Finding {
	c := in.CachedUpdateCorr
	metaPair := MakeClassPair(rawdb.ClassLastFast, rawdb.ClassLastHeader)
	meta0 := c.Counts(0, metaPair)
	meta4 := c.Counts(4, metaPair)
	intraTop := c.TopPairs(0, 1, true)
	var intra0 uint64
	if len(intraTop) > 0 {
		intra0 = intraTop[0].Counts[0]
	}
	return Finding{
		ID:    10,
		Title: "Correlated updates are clustered in small regions",
		Holds: meta0 > 0 && meta0 > meta4 && intra0 > 0,
		Evidence: fmt.Sprintf("LastFast-LastHeader: %d at d=0, %d at d=4 (paper: 1M at d=0, 0 by d=4); top intra-class update pair at d=0: %d",
			meta0, meta4, intra0),
	}
}

// Finding 11: intra-class correlated-update frequency distributions are
// class-specific; TrieNodeStorage peaks highest at d=0 and collapses by
// d=1024.
func checkFinding11(in *FindingsInput) Finding {
	tsPair := MakeClassPair(rawdb.ClassTrieNodeStorage, rawdb.ClassTrieNodeStorage)
	// The paper reports the structure in both traces; at reduced scale the
	// cached trace's coalesced flushes can thin it, so take the stronger
	// of the two measurements.
	ts0 := in.CachedUpdateCorr.MaxPairFrequency(0, tsPair)
	if f := in.BareUpdateCorr.MaxPairFrequency(0, tsPair); f > ts0 {
		ts0 = f
	}
	ts1024 := in.CachedUpdateCorr.MaxPairFrequency(1024, tsPair)
	if f := in.BareUpdateCorr.MaxPairFrequency(1024, tsPair); f > ts1024 {
		ts1024 = f
	}
	c := in.CachedUpdateCorr
	_ = c
	return Finding{
		ID:    11,
		Title: "Correlated updates have unique frequency distribution",
		Holds: ts0 > 0 && ts0 > ts1024,
		Evidence: fmt.Sprintf("TrieNodeStorage intra max frequency: %d at d=0 vs %d at d=1024 (paper: ~1M vs 10)",
			ts0, ts1024),
	}
}

// readReductionByBand computes read-count reductions for the hottest 0.1%
// of keys vs medium-frequency keys (read 10-100 times in the bare trace).
func readReductionByBand(bare, cached *OpDist, class rawdb.Class) (top, medium float64) {
	bco := bare.PerClass[class]
	cco := cached.PerClass[class]
	if bco == nil || bco.ReadFreq == nil {
		return 0, 0
	}
	cachedFreq := map[string]uint32{}
	if cco != nil && cco.ReadFreq != nil {
		cachedFreq = cco.ReadFreq
	}
	// Rank bare keys by read count to find the top 0.1% band.
	ranked := make([]keyFreq, 0, len(bco.ReadFreq))
	for k, f := range bco.ReadFreq {
		ranked = append(ranked, keyFreq{k, f})
	}
	if len(ranked) == 0 {
		return 0, 0
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].freq > ranked[j].freq })
	topN := len(ranked) / 1000
	if topN < 1 {
		topN = 1
	}
	var topBare, topCached, medBare, medCached uint64
	for i, e := range ranked {
		if i < topN {
			topBare += uint64(e.freq)
			topCached += uint64(cachedFreq[e.key])
		}
		if e.freq >= 10 && e.freq <= 100 {
			medBare += uint64(e.freq)
			medCached += uint64(cachedFreq[e.key])
		}
	}
	return reduction(topBare, topCached), reduction(medBare, medCached)
}

// keyFreq pairs a key with its read count for ranking.
type keyFreq struct {
	key  string
	freq uint32
}

// maxIntraFrequency returns the highest per-key-pair frequency at d=0 over
// all intra-class pairs.
func maxIntraFrequency(c *Correlator) uint64 {
	return maxIntraFrequencyAt(c, 0)
}

func maxIntraFrequencyAt(c *Correlator, d int) uint64 {
	var max uint64
	for _, series := range c.TopPairs(d, 3, true) {
		if f := c.MaxPairFrequency(d, series.Pair); f > max {
			max = f
		}
	}
	return max
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}

func fmtShares(shares []float64) []string {
	out := make([]string, len(shares))
	for i, s := range shares {
		out[i] = fmt.Sprintf("%.0f%%", s*100)
	}
	return out
}

func classNames(classes []rawdb.Class) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.String()
	}
	return out
}

// BuildFindingsInput assembles the checker input from in-memory traces.
// Each trace is scanned exactly once: a single-pass engine fans the op
// stream out to the census and both correlation passes, and the two traces
// run concurrently. Intended for tests and examples; large runs stream
// from trace files instead.
func BuildFindingsInput(cachedOps, bareOps []trace.Op,
	cachedStore, bareStore *SizeDist) *FindingsInput {
	readCfg := CorrConfig{Op: trace.OpRead}
	updCfg := CorrConfig{Op: trace.OpUpdate, IncludeWrites: false}
	in := &FindingsInput{CachedStore: cachedStore, BareStore: bareStore}

	var wg sync.WaitGroup
	scan := func(ops []trace.Op, dist **OpDist, readCorr, updCorr **Correlator) {
		defer wg.Done()
		e := NewEngine(EngineConfig{})
		hd := e.AddOpDist(nil)
		hr := e.AddCorrelator(readCfg)
		hu := e.AddCorrelator(updCfg)
		if err := e.RunSlice(ops); err != nil {
			// RunSlice cannot fail: no I/O is involved.
			panic(err)
		}
		*dist, *readCorr, *updCorr = hd.Result(), hr.Result(), hu.Result()
	}
	wg.Add(2)
	go scan(cachedOps, &in.CachedOps, &in.CachedReadCorr, &in.CachedUpdateCorr)
	go scan(bareOps, &in.BareOps, &in.BareReadCorr, &in.BareUpdateCorr)
	wg.Wait()
	return in
}
