package analysis

import (
	"sort"

	"ethkv/internal/keccak"
	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// The paper's correlation metric (§IV-C): two operations of the tracked
// type are correlated at distance d when exactly d other tracked operations
// separate them (d=0 means adjacent). For each distance the analysis counts
// occurrences of unordered key pairs, keeping only pairs observed at least
// twice, and aggregates the surviving occurrences per unordered CLASS pair.
// Frequency distributions (Figures 5 and 7) histogram the per-key-pair
// occurrence counts at selected distances.

// ClassPair is an unordered pair of classes (A <= B).
type ClassPair struct {
	A, B rawdb.Class
}

// MakeClassPair normalizes the order.
func MakeClassPair(a, b rawdb.Class) ClassPair {
	if a > b {
		a, b = b, a
	}
	return ClassPair{a, b}
}

// Intra reports whether the pair is within one class.
func (p ClassPair) Intra() bool { return p.A == p.B }

// String renders the pair with the paper's abbreviation style.
func (p ClassPair) String() string {
	return p.A.String() + "-" + p.B.String()
}

// DefaultDistances are the log-spaced distances of Figures 4 and 6.
func DefaultDistances() []int {
	return []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// CorrConfig tunes a correlation pass.
type CorrConfig struct {
	// Op selects the tracked operation: trace.OpRead for Figures 4-5,
	// trace.OpUpdate for Figures 6-7.
	Op trace.OpType
	// IncludeWrites folds OpWrite into an OpUpdate pass (Geth batches both
	// kinds at block boundaries; the paper's update analysis covers the
	// batched write stream).
	IncludeWrites bool
	// Distances are the separations to count (nil = DefaultDistances).
	Distances []int
	// TrackPairsAt lists the distances (subset of Distances) where exact
	// per-key-pair counts are kept for the frequency distributions; at
	// other distances a fixed-size counting sketch enforces the
	// at-least-twice rule with bounded memory. Nil = {0, 1024}.
	TrackPairsAt []int
}

// Correlator consumes a trace and produces the correlation statistics.
// The hot-path state is indexed by distance position (not distance value)
// so Observe touches slices, not nested maps; corrState carries the
// counters themselves so the parallel engine can shard them.
type Correlator struct {
	cfg       CorrConfig
	distances []int
	maxDist   int

	// ring holds the last maxDist+1 tracked ops as (keyHash, class).
	ring []ringEntry
	pos  uint64 // total tracked ops so far

	corrState

	// pairCountsByDist aliases corrState.pairCounts by distance value for
	// the accessor methods (FrequencyDistribution, MaxPairFrequency).
	pairCountsByDist map[int]map[pairKey]*pairStat

	// hashCache memoizes hashKey for repeated keys; keccak dominates the
	// sequential pass otherwise. Bounded to keep paper-scale traces safe.
	hashCache map[string]uint64
}

// corrState is the shardable counter state of one correlation pass. Each
// parallel shard owns one (with a sketch partition); the sequential path
// owns exactly one covering everything.
type corrState struct {
	// counts[i][pair] accumulates occurrences at distances[i] that passed
	// the min-2 rule.
	counts []map[ClassPair]uint64
	// pairCounts[i] holds exact per-key-pair occurrence counts when
	// distances[i] is tracked; nil otherwise (sketch path).
	pairCounts []map[pairKey]*pairStat
	// sketch approximates per-(pair,distance) occurrence counts for the
	// min-2 rule at non-tracked distances. sketchOff is the partition
	// offset (0 and full size for the sequential path).
	sketch    []uint8
	sketchOff uint64
}

// ringEntry is one remembered op.
type ringEntry struct {
	keyHash uint64
	class   rawdb.Class
}

// pairKey identifies an unordered key pair by two 64-bit key hashes.
type pairKey struct {
	lo, hi uint64
}

// pairStat tracks one key pair's occurrences and classes.
type pairStat struct {
	count uint64
	pair  ClassPair
}

// sketchBits sizes the counting sketch (2^24 counters = 16 MiB).
const sketchBits = 24

// maxHashCacheKeys bounds the key-hash memo; beyond it new keys are hashed
// directly (values stay identical either way).
const maxHashCacheKeys = 1 << 20

// newCorrState builds counter maps for the distance layout. sketchLo and
// sketchHi bound the owned sketch partition.
func newCorrState(distances []int, trackExact []bool, sketchLo, sketchHi uint64) corrState {
	st := corrState{
		counts:     make([]map[ClassPair]uint64, len(distances)),
		pairCounts: make([]map[pairKey]*pairStat, len(distances)),
		sketch:     make([]uint8, sketchHi-sketchLo),
		sketchOff:  sketchLo,
	}
	for i := range distances {
		st.counts[i] = make(map[ClassPair]uint64)
		if trackExact[i] {
			st.pairCounts[i] = make(map[pairKey]*pairStat)
		}
	}
	return st
}

// apply folds one correlated-pair observation into the counters. i is the
// distance index, d the distance value (the sketch hash keys on it).
func (st *corrState) apply(i, d int, pk pairKey, cp ClassPair) {
	if stats := st.pairCounts[i]; stats != nil {
		s := stats[pk]
		if s == nil {
			s = &pairStat{pair: cp}
			stats[pk] = s
		}
		s.count++
		switch s.count {
		case 1:
			// Not yet correlated (needs at least two occurrences).
		case 2:
			st.counts[i][cp] += 2
		default:
			st.counts[i][cp]++
		}
		return
	}
	// Sketch path: approximate occurrence count for the min-2 rule.
	switch st.bumpSketch(sketchIndex(pk, d)) {
	case 1:
		// First sighting: defer.
	case 2:
		st.counts[i][cp] += 2
	default:
		st.counts[i][cp]++
	}
}

// bumpSketch increments the saturating counter at the global sketch index
// and returns the new value (saturates at 255).
func (st *corrState) bumpSketch(idx uint64) uint8 {
	v := st.sketch[idx-st.sketchOff]
	if v < 255 {
		v++
		st.sketch[idx-st.sketchOff] = v
	}
	return v
}

// sketchIndex hashes (pair, distance) into the counting sketch.
func sketchIndex(pk pairKey, d int) uint64 {
	return (pk.lo*0x9e3779b97f4a7c15 + pk.hi*0xc2b2ae3d27d4eb4f + uint64(d)*0x165667b19e3779f9) & (1<<sketchBits - 1)
}

// NewCorrelator builds a correlator for the config.
func NewCorrelator(cfg CorrConfig) *Correlator {
	if cfg.Distances == nil {
		cfg.Distances = DefaultDistances()
	}
	if cfg.TrackPairsAt == nil {
		cfg.TrackPairsAt = []int{0, 1024}
	}
	c := &Correlator{
		cfg:              cfg,
		distances:        append([]int(nil), cfg.Distances...),
		pairCountsByDist: make(map[int]map[pairKey]*pairStat),
		hashCache:        make(map[string]uint64),
	}
	sort.Ints(c.distances)
	c.maxDist = c.distances[len(c.distances)-1]
	c.ring = make([]ringEntry, c.maxDist+1)
	c.corrState = newCorrState(c.distances, c.trackExactByIndex(), 0, 1<<sketchBits)
	for i, d := range c.distances {
		if c.pairCounts[i] != nil {
			c.pairCountsByDist[d] = c.pairCounts[i]
		}
	}
	// TrackPairsAt entries outside Distances never receive observations but
	// stay addressable, matching the historical accessor behavior.
	for _, d := range cfg.TrackPairsAt {
		if _, ok := c.pairCountsByDist[d]; !ok {
			c.pairCountsByDist[d] = make(map[pairKey]*pairStat)
		}
	}
	return c
}

// trackExactByIndex expands cfg.TrackPairsAt into a per-distance-index
// bitmap.
func (c *Correlator) trackExactByIndex() []bool {
	exact := make([]bool, len(c.distances))
	for i, d := range c.distances {
		for _, t := range c.cfg.TrackPairsAt {
			if t == d {
				exact[i] = true
			}
		}
	}
	return exact
}

// tracks reports whether the op belongs to the tracked stream.
func (c *Correlator) tracks(op trace.Op) bool {
	if op.Hit {
		return false // cache hits never reach the traced interface
	}
	if op.Type == c.cfg.Op {
		return true
	}
	return c.cfg.IncludeWrites && c.cfg.Op == trace.OpUpdate && op.Type == trace.OpWrite
}

// Observe feeds one op into the correlator.
func (c *Correlator) Observe(op trace.Op) {
	if !c.tracks(op) {
		return
	}
	// Same loop as observeHash with fold = c.apply, kept direct: the
	// sequential hot path pays for an indirect call per (op, distance)
	// tuple otherwise.
	h := c.hashKeyCached(op.Key)
	class := op.Class
	for i, d := range c.distances {
		if uint64(d+1) > c.pos {
			break
		}
		partner := c.ring[(c.pos-uint64(d)-1)%uint64(len(c.ring))]
		if partner.keyHash == h {
			continue
		}
		c.apply(i, d, makePairKey(h, partner.keyHash), MakeClassPair(class, partner.class))
	}
	c.ring[c.pos%uint64(len(c.ring))] = ringEntry{keyHash: h, class: class}
	c.pos++
}

// observeHash advances the ring with one tracked op, feeding every
// correlated pair it forms to fold. Factored out so the parallel engine can
// route pairs to shards while keeping the exact sequential semantics.
func (c *Correlator) observeHash(h uint64, class rawdb.Class, fold func(i, d int, pk pairKey, cp ClassPair)) {
	for i, d := range c.distances {
		if uint64(d+1) > c.pos {
			break // not enough history yet
		}
		partner := c.ring[(c.pos-uint64(d)-1)%uint64(len(c.ring))]
		if partner.keyHash == h {
			continue // same key is not a pair
		}
		fold(i, d, makePairKey(h, partner.keyHash), MakeClassPair(class, partner.class))
	}
	c.ring[c.pos%uint64(len(c.ring))] = ringEntry{keyHash: h, class: class}
	c.pos++
}

// hashKeyCached memoizes hashKey for hot keys.
func (c *Correlator) hashKeyCached(key []byte) uint64 {
	if h, ok := c.hashCache[string(key)]; ok {
		return h
	}
	h := hashKey(key)
	if len(c.hashCache) < maxHashCacheKeys {
		c.hashCache[string(key)] = h
	}
	return h
}

// hashKey derives a 64-bit key fingerprint.
func hashKey(key []byte) uint64 {
	h := keccak.Hash256(key)
	return uint64(h[0]) | uint64(h[1])<<8 | uint64(h[2])<<16 | uint64(h[3])<<24 |
		uint64(h[4])<<32 | uint64(h[5])<<40 | uint64(h[6])<<48 | uint64(h[7])<<56
}

// makePairKey orders the two key hashes.
func makePairKey(a, b uint64) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// distIndex maps a distance value to its index, or -1.
func (c *Correlator) distIndex(d int) int {
	for i, dd := range c.distances {
		if dd == d {
			return i
		}
	}
	return -1
}

// Counts returns the correlated-op count for a class pair at a distance.
func (c *Correlator) Counts(d int, pair ClassPair) uint64 {
	i := c.distIndex(d)
	if i < 0 {
		return 0
	}
	return c.counts[i][pair]
}

// PairSeries is one class pair's counts across distances — one line of
// Figure 4 or 6.
type PairSeries struct {
	Pair   ClassPair
	Counts map[int]uint64
	Total  uint64
}

// TopPairs returns the n class pairs with the highest correlated count at
// the given distance, optionally restricted to intra- or cross-class pairs.
func (c *Correlator) TopPairs(d, n int, intra bool) []PairSeries {
	di := c.distIndex(d)
	if di < 0 {
		return nil
	}
	type row struct {
		pair  ClassPair
		count uint64
	}
	var rows []row
	for pair, count := range c.counts[di] {
		if pair.Intra() != intra {
			continue
		}
		rows = append(rows, row{pair, count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].pair.String() < rows[j].pair.String()
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]PairSeries, 0, len(rows))
	for _, r := range rows {
		series := PairSeries{Pair: r.pair, Counts: make(map[int]uint64)}
		for i, dist := range c.distances {
			cnt := c.counts[i][r.pair]
			series.Counts[dist] = cnt
			series.Total += cnt
		}
		out = append(out, series)
	}
	return out
}

// FrequencyDistribution histograms per-key-pair occurrence counts for one
// class pair at a tracked distance: Figure 5 / Figure 7 panels. Only pairs
// meeting the at-least-twice rule appear.
func (c *Correlator) FrequencyDistribution(d int, pair ClassPair) []FreqPoint {
	stats, ok := c.pairCountsByDist[d]
	if !ok {
		return nil
	}
	hist := make(map[uint32]uint64)
	for _, st := range stats {
		if st.pair == pair && st.count >= 2 {
			hist[uint32(st.count)]++
		}
	}
	points := make([]FreqPoint, 0, len(hist))
	for f, keys := range hist {
		points = append(points, FreqPoint{f, keys})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Freq < points[j].Freq })
	return points
}

// MaxPairFrequency returns the highest per-key-pair occurrence count for a
// class pair at a tracked distance.
func (c *Correlator) MaxPairFrequency(d int, pair ClassPair) uint64 {
	stats, ok := c.pairCountsByDist[d]
	if !ok {
		return 0
	}
	var max uint64
	for _, st := range stats {
		if st.pair == pair && st.count >= 2 && st.count > max {
			max = st.count
		}
	}
	return max
}

// Distances returns the configured distances (sorted ascending).
func (c *Correlator) Distances() []int {
	return append([]int(nil), c.distances...)
}

// TrackedOps reports how many ops entered the correlation stream.
func (c *Correlator) TrackedOps() uint64 { return c.pos }

// CollectCorrelations streams a trace through a new correlator. The pass
// runs on the parallel engine (DefaultWorkers shards; set
// ETHKV_ANALYSIS_WORKERS to override).
func CollectCorrelations(r *trace.Reader, cfg CorrConfig) (*Correlator, error) {
	e := NewEngine(EngineConfig{})
	h := e.AddCorrelator(cfg)
	if err := e.RunReader(r); err != nil {
		return nil, err
	}
	return h.Result(), nil
}

// CollectCorrelationsSlice runs a correlation pass over in-memory ops,
// sharded across DefaultWorkers when more than one CPU is available.
func CollectCorrelationsSlice(ops []trace.Op, cfg CorrConfig) *Correlator {
	if DefaultWorkers() <= 1 {
		c := NewCorrelator(cfg)
		for _, op := range ops {
			c.Observe(op)
		}
		return c
	}
	e := NewEngine(EngineConfig{})
	h := e.AddCorrelator(cfg)
	if err := e.RunSlice(ops); err != nil {
		// RunSlice cannot fail: no I/O is involved.
		panic(err)
	}
	return h.Result()
}
