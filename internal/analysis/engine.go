// The concurrent single-pass analysis engine: one trace scan fans batched
// op slices out to every registered collector, each running on its own
// goroutine. Collectors that keep hot per-key maps (Correlator, OpDist)
// shard those maps across a worker pool and merge deterministically, so
// results are identical to the sequential collectors at any worker count.
//
// Determinism notes:
//
//   - Correlator: the ring scan stays sequential (correlation distances
//     depend on stream order); only the counter updates are sharded. Exact
//     per-key-pair counters shard by key-pair hash, so each pair lives in
//     exactly one shard. Sketch counters shard by sketch index, so every
//     colliding (pair, distance) tuple lands in the same shard in stream
//     order — the saturating-counter sequence, and therefore the min-2
//     accounting, replays exactly.
//   - OpDist: ops shard by storage class, so each class's per-key frequency
//     map (and its tracked-key cap) sees its ops in stream order.
//   - Merges iterate shards in index order and only sum or union disjoint
//     state.
package analysis

import (
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// EngineConfig tunes a single-pass run.
type EngineConfig struct {
	// Workers is the shard/hash worker count per parallel collector.
	// 0 = DefaultWorkers().
	Workers int
	// BatchSize is the fan-out granularity in ops. 0 = DefaultBatchSize.
	BatchSize int
}

// DefaultBatchSize amortizes channel traffic without hurting locality.
const DefaultBatchSize = 4096

// tupleBatchSize is the correlator's shard-routing granularity.
const tupleBatchSize = 512

// parallelHashMin is the tracked-op count below which a batch is hashed
// inline rather than striped across goroutines.
const parallelHashMin = 256

// DefaultWorkers returns the analysis worker count: ETHKV_ANALYSIS_WORKERS
// when set to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv("ETHKV_ANALYSIS_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// engineCollector is one fan-out target. process is called with batches in
// stream order from a single goroutine; ops (and their keys) are only valid
// until process returns. finish is called after the last batch, once, from
// the engine's goroutine.
type engineCollector interface {
	process(ops []trace.Op)
	finish()
}

// Engine runs one pass over a trace, feeding every collector.
type Engine struct {
	cfg        EngineConfig
	collectors []engineCollector
	started    bool
}

// NewEngine builds an empty engine.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	return &Engine{cfg: cfg}
}

// AddOpDist registers an operation census (nil = DefaultTrackedClasses).
// The handle's Result is valid after Run returns.
func (e *Engine) AddOpDist(trackClasses []rawdb.Class) *OpDistHandle {
	return e.AddOpDistLimited(trackClasses, 0)
}

// AddOpDistLimited is AddOpDist with a per-class tracked-key cap.
func (e *Engine) AddOpDistLimited(trackClasses []rawdb.Class, maxTrackedKeys int) *OpDistHandle {
	c := newParOpDist(trackClasses, maxTrackedKeys, e.cfg.Workers)
	e.collectors = append(e.collectors, c)
	return &OpDistHandle{c: c}
}

// AddCorrelator registers a correlation pass. The handle's Result is valid
// after Run returns.
func (e *Engine) AddCorrelator(cfg CorrConfig) *CorrelatorHandle {
	c := newParCorr(cfg, e.cfg.Workers)
	e.collectors = append(e.collectors, c)
	return &CorrelatorHandle{c: c}
}

// OpDistHandle is the deferred result of an engine census.
type OpDistHandle struct{ c *parOpDist }

// Result returns the census; call only after the engine run completes.
func (h *OpDistHandle) Result() *OpDist { return h.c.result }

// CorrelatorHandle is the deferred result of an engine correlation pass.
type CorrelatorHandle struct{ c *parCorr }

// Result returns the correlator; call only after the engine run completes.
func (h *CorrelatorHandle) Result() *Correlator { return h.c.result }

// batchMsg is one fan-out unit. release (when set) recycles the batch once
// the receiving collector is done with it.
type batchMsg struct {
	ops     []trace.Op
	release func()
}

// RunSlice feeds in-memory ops through every collector in one pass.
func (e *Engine) RunSlice(ops []trace.Op) error {
	chans, wg := e.start()
	bs := e.cfg.BatchSize
	for off := 0; off < len(ops); off += bs {
		end := off + bs
		if end > len(ops) {
			end = len(ops)
		}
		m := batchMsg{ops: ops[off:end]}
		for _, ch := range chans {
			ch <- m
		}
	}
	e.stop(chans, wg)
	return nil
}

// RunReader streams a trace file through every collector in one pass,
// recycling batch buffers once every collector has consumed them.
func (e *Engine) RunReader(r *trace.Reader) error {
	chans, wg := e.start()
	pool := sync.Pool{New: func() any {
		buf := make([]trace.Op, e.cfg.BatchSize)
		return &buf
	}}
	for {
		bufp := pool.Get().(*[]trace.Op)
		n, err := r.NextBatch((*bufp)[:e.cfg.BatchSize])
		if n > 0 {
			refs := atomic.Int32{}
			refs.Store(int32(len(chans)))
			m := batchMsg{ops: (*bufp)[:n], release: func() {
				if refs.Add(-1) == 0 {
					pool.Put(bufp)
				}
			}}
			for _, ch := range chans {
				ch <- m
			}
		} else {
			pool.Put(bufp)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			e.stop(chans, wg)
			return err
		}
	}
	e.stop(chans, wg)
	return nil
}

// start spawns one goroutine per collector.
func (e *Engine) start() ([]chan batchMsg, *sync.WaitGroup) {
	if e.started {
		panic("analysis: engine reused; build a new Engine per run")
	}
	e.started = true
	chans := make([]chan batchMsg, len(e.collectors))
	wg := &sync.WaitGroup{}
	for i, c := range e.collectors {
		ch := make(chan batchMsg, 4)
		chans[i] = ch
		wg.Add(1)
		go func(c engineCollector, ch chan batchMsg) {
			defer wg.Done()
			for m := range ch {
				c.process(m.ops)
				if m.release != nil {
					m.release()
				}
			}
		}(c, ch)
	}
	return chans, wg
}

// stop closes the fan-out, waits for drain, and merges shard state.
func (e *Engine) stop(chans []chan batchMsg, wg *sync.WaitGroup) {
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, c := range e.collectors {
		c.finish()
	}
}

// ---------------------------------------------------------------------------
// Sharded correlator

// corrTuple is one routed pair observation: distance index + key pair +
// class pair. The owning shard re-derives the sketch index when needed.
type corrTuple struct {
	pk pairKey
	cp ClassPair
	di uint16
}

// corrShard owns a disjoint slice of the correlation counters.
type corrShard struct {
	st corrState
	ch chan []corrTuple
}

// parCorr is the engine-side parallel correlator. The ring scan runs on the
// collector goroutine; counter updates are sharded by pair / sketch index.
// With workers <= 1 it degenerates to the sequential Observe loop.
type parCorr struct {
	result  *Correlator
	workers int

	shards []*corrShard
	wg     sync.WaitGroup
	// bufs accumulate tuples per shard between flushes.
	bufs [][]corrTuple
	pool sync.Pool // *[]corrTuple
	// route is the prebuilt fold callback (avoids a closure alloc per op).
	route func(i, d int, pk pairKey, cp ClassPair)
	// scratch for per-batch hashing.
	trackedIdx []int
	hashes     []uint64
}

func newParCorr(cfg CorrConfig, workers int) *parCorr {
	pc := &parCorr{result: NewCorrelator(cfg), workers: workers}
	if workers <= 1 {
		return pc
	}
	pc.route = pc.routeTuple
	pc.pool.New = func() any {
		buf := make([]corrTuple, 0, tupleBatchSize)
		return &buf
	}
	trackExact := pc.result.trackExactByIndex()
	pc.shards = make([]*corrShard, workers)
	pc.bufs = make([][]corrTuple, workers)
	for s := 0; s < workers; s++ {
		lo, hi := sketchShardBounds(s, workers)
		shard := &corrShard{
			st: newCorrState(pc.result.distances, trackExact, lo, hi),
			ch: make(chan []corrTuple, 8),
		}
		pc.shards[s] = shard
		pc.bufs[s] = (*pc.pool.Get().(*[]corrTuple))[:0]
		pc.wg.Add(1)
		go func(sh *corrShard) {
			defer pc.wg.Done()
			for buf := range sh.ch {
				for _, t := range buf {
					sh.st.apply(int(t.di), pc.result.distances[t.di], t.pk, t.cp)
				}
				buf = buf[:0]
				pc.pool.Put(&buf)
			}
		}(shard)
	}
	return pc
}

// sketchShardBounds partitions the sketch index space [0, 2^sketchBits)
// into w contiguous ranges consistent with sketchShard.
func sketchShardBounds(s, w int) (lo, hi uint64) {
	const n = uint64(1) << sketchBits
	lo = (uint64(s)*n + uint64(w) - 1) / uint64(w)
	hi = (uint64(s+1)*n + uint64(w) - 1) / uint64(w)
	return lo, hi
}

// sketchShard maps a sketch index to its owning shard: floor(idx*w / 2^24).
func sketchShard(idx uint64, w int) int {
	return int(idx * uint64(w) >> sketchBits)
}

// pairShard maps a key pair to its owning shard for exact counting.
func pairShard(pk pairKey, w int) int {
	h := pk.lo*0x9e3779b97f4a7c15 ^ pk.hi*0xc2b2ae3d27d4eb4f
	return int((h >> 32) * uint64(w) >> 32)
}

// routeTuple sends one pair observation to its shard, preserving per-shard
// stream order.
func (pc *parCorr) routeTuple(i, d int, pk pairKey, cp ClassPair) {
	var s int
	if pc.result.pairCounts[i] != nil {
		s = pairShard(pk, pc.workers)
	} else {
		s = sketchShard(sketchIndex(pk, d), pc.workers)
	}
	pc.bufs[s] = append(pc.bufs[s], corrTuple{pk: pk, cp: cp, di: uint16(i)})
	if len(pc.bufs[s]) == tupleBatchSize {
		pc.flushShard(s)
	}
}

func (pc *parCorr) flushShard(s int) {
	pc.shards[s].ch <- pc.bufs[s]
	pc.bufs[s] = (*pc.pool.Get().(*[]corrTuple))[:0]
}

// process consumes one batch: pick tracked ops, hash their keys (striped
// across goroutines when the batch is big enough), then walk the ring in
// stream order routing pair observations to shards.
func (pc *parCorr) process(ops []trace.Op) {
	c := pc.result
	if pc.workers <= 1 {
		for i := range ops {
			c.Observe(ops[i])
		}
		return
	}
	idxs := pc.trackedIdx[:0]
	for i := range ops {
		if c.tracks(ops[i]) {
			idxs = append(idxs, i)
		}
	}
	pc.trackedIdx = idxs
	if len(idxs) == 0 {
		return
	}
	if cap(pc.hashes) < len(idxs) {
		pc.hashes = make([]uint64, len(idxs))
	}
	hashes := pc.hashes[:len(idxs)]
	if len(idxs) >= parallelHashMin {
		var wg sync.WaitGroup
		chunk := (len(idxs) + pc.workers - 1) / pc.workers
		for lo := 0; lo < len(idxs); lo += chunk {
			hi := lo + chunk
			if hi > len(idxs) {
				hi = len(idxs)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for j := lo; j < hi; j++ {
					hashes[j] = hashKey(ops[idxs[j]].Key)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for j, oi := range idxs {
			hashes[j] = c.hashKeyCached(ops[oi].Key)
		}
	}
	for j, oi := range idxs {
		c.observeHash(hashes[j], ops[oi].Class, pc.route)
	}
}

// finish flushes pending tuples, drains the shards, and merges their
// counters into the result correlator.
func (pc *parCorr) finish() {
	if pc.workers <= 1 {
		return
	}
	for s := range pc.shards {
		if len(pc.bufs[s]) > 0 {
			pc.shards[s].ch <- pc.bufs[s]
		}
		close(pc.shards[s].ch)
	}
	pc.wg.Wait()
	c := pc.result
	for _, sh := range pc.shards {
		for i := range c.counts {
			for cp, n := range sh.st.counts[i] {
				c.counts[i][cp] += n
			}
		}
		for i := range c.pairCounts {
			if c.pairCounts[i] == nil {
				continue
			}
			for pk, st := range sh.st.pairCounts[i] {
				c.pairCounts[i][pk] = st
			}
		}
		copy(c.sketch[sh.st.sketchOff:], sh.st.sketch)
	}
	pc.shards = nil
}

// ---------------------------------------------------------------------------
// Sharded operation census

// opDistBatch is one broadcast batch plus the barrier the collector waits
// on: batches reference engine-owned key memory, so the collector cannot
// release them until every shard has consumed the batch.
type opDistBatch struct {
	ops []trace.Op
	wg  *sync.WaitGroup
}

// parOpDist shards the census by storage class: shard s owns every class
// with int(class) % workers == s, so per-class counters and frequency maps
// (including the tracked-key cap) see their ops in stream order.
type parOpDist struct {
	result  *OpDist
	workers int

	shards []chan opDistBatch
	dists  []*OpDist
	wg     sync.WaitGroup
}

func newParOpDist(trackClasses []rawdb.Class, maxTrackedKeys int, workers int) *parOpDist {
	pd := &parOpDist{
		result:  NewOpDistLimited(trackClasses, maxTrackedKeys),
		workers: workers,
	}
	if workers <= 1 {
		return pd
	}
	pd.shards = make([]chan opDistBatch, workers)
	pd.dists = make([]*OpDist, workers)
	for s := 0; s < workers; s++ {
		pd.dists[s] = NewOpDistLimited(trackClasses, maxTrackedKeys)
		pd.shards[s] = make(chan opDistBatch, 4)
		pd.wg.Add(1)
		go func(me int, ch chan opDistBatch, dist *OpDist) {
			defer pd.wg.Done()
			for b := range ch {
				for i := range b.ops {
					if int(b.ops[i].Class)%pd.workers == me {
						dist.Observe(b.ops[i])
					}
				}
				b.wg.Done()
			}
		}(s, pd.shards[s], pd.dists[s])
	}
	return pd
}

func (pd *parOpDist) process(ops []trace.Op) {
	if pd.workers <= 1 {
		for i := range ops {
			pd.result.Observe(ops[i])
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(pd.workers)
	b := opDistBatch{ops: ops, wg: &wg}
	for _, ch := range pd.shards {
		ch <- b
	}
	wg.Wait()
}

func (pd *parOpDist) finish() {
	if pd.workers <= 1 {
		return
	}
	for _, ch := range pd.shards {
		close(ch)
	}
	pd.wg.Wait()
	for _, d := range pd.dists {
		for class, co := range d.PerClass {
			pd.result.PerClass[class] = co
		}
		pd.result.Total += d.Total
		if d.Truncated {
			pd.result.Truncated = true
		}
	}
	pd.shards = nil
	pd.dists = nil
}
