package analysis

import (
	"sort"

	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// ClassOps aggregates one class's operation counts (one row of Table II or
// Table III) plus, for the world-state classes, the per-key frequency
// distributions behind Figure 3.
type ClassOps struct {
	Class   rawdb.Class
	Reads   uint64
	Writes  uint64
	Updates uint64
	Deletes uint64
	Scans   uint64

	// Per-key operation frequency (key -> times op'd). Populated only for
	// tracked classes to bound memory; nil otherwise.
	ReadFreq   map[string]uint32
	WriteFreq  map[string]uint32 // writes + updates
	DeleteFreq map[string]uint32
}

// Total returns the class's total op count.
func (c *ClassOps) Total() uint64 {
	return c.Reads + c.Writes + c.Updates + c.Deletes + c.Scans
}

// OpDist is a full trace's operation census.
type OpDist struct {
	PerClass map[rawdb.Class]*ClassOps
	Total    uint64
	// tracked marks classes with per-key frequency maps.
	tracked map[rawdb.Class]bool
	// maxTrackedKeys bounds each per-key frequency map; 0 = unlimited.
	// Once a map is full, counts for already-tracked keys keep updating
	// but new keys are dropped and Truncated is set — the memory guard
	// for paper-scale traces (billions of ops over ~10^8 keys).
	maxTrackedKeys int
	// Truncated reports that at least one frequency map hit the cap.
	Truncated bool
}

// DefaultTrackedClasses are the world-state classes whose per-key
// frequencies Figure 3 plots.
func DefaultTrackedClasses() []rawdb.Class {
	return []rawdb.Class{
		rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage,
		rawdb.ClassSnapshotAccount, rawdb.ClassSnapshotStorage,
	}
}

// NewOpDistLimited is NewOpDist with a per-class cap on tracked keys.
func NewOpDistLimited(trackClasses []rawdb.Class, maxTrackedKeys int) *OpDist {
	d := NewOpDist(trackClasses)
	d.maxTrackedKeys = maxTrackedKeys
	return d
}

// NewOpDist creates an empty census tracking per-key frequencies for the
// given classes (nil = DefaultTrackedClasses).
func NewOpDist(trackClasses []rawdb.Class) *OpDist {
	if trackClasses == nil {
		trackClasses = DefaultTrackedClasses()
	}
	d := &OpDist{
		PerClass: make(map[rawdb.Class]*ClassOps),
		tracked:  make(map[rawdb.Class]bool),
	}
	for _, c := range trackClasses {
		d.tracked[c] = true
	}
	return d
}

// Observe folds one traced op into the census. Cache hits (op.Hit) are
// skipped: the paper's traces capture only ops that reach the KV store.
func (d *OpDist) Observe(op trace.Op) {
	if op.Hit {
		return
	}
	co := d.PerClass[op.Class]
	if co == nil {
		co = &ClassOps{Class: op.Class}
		if d.tracked[op.Class] {
			co.ReadFreq = make(map[string]uint32)
			co.WriteFreq = make(map[string]uint32)
			co.DeleteFreq = make(map[string]uint32)
		}
		d.PerClass[op.Class] = co
	}
	switch op.Type {
	case trace.OpRead:
		co.Reads++
		d.bump(co.ReadFreq, op.Key)
	case trace.OpWrite:
		co.Writes++
		d.bump(co.WriteFreq, op.Key)
	case trace.OpUpdate:
		co.Updates++
		d.bump(co.WriteFreq, op.Key)
	case trace.OpDelete:
		co.Deletes++
		d.bump(co.DeleteFreq, op.Key)
	case trace.OpScan:
		co.Scans++
	}
	d.Total++
}

// bump increments a per-key counter, honoring the tracked-key cap.
func (d *OpDist) bump(freq map[string]uint32, key []byte) {
	if freq == nil {
		return
	}
	if _, exists := freq[string(key)]; !exists &&
		d.maxTrackedKeys > 0 && len(freq) >= d.maxTrackedKeys {
		d.Truncated = true
		return
	}
	freq[string(key)]++
}

// CollectOpDist streams a trace reader through a new census in batched
// reads, sharding the per-class counters across DefaultWorkers (set
// ETHKV_ANALYSIS_WORKERS to override).
func CollectOpDist(r *trace.Reader, trackClasses []rawdb.Class) (*OpDist, error) {
	e := NewEngine(EngineConfig{})
	h := e.AddOpDist(trackClasses)
	if err := e.RunReader(r); err != nil {
		return nil, err
	}
	return h.Result(), nil
}

// CollectOpDistSlice builds a census from in-memory ops, sharded across
// DefaultWorkers when more than one CPU is available.
func CollectOpDistSlice(ops []trace.Op, trackClasses []rawdb.Class) *OpDist {
	if DefaultWorkers() <= 1 {
		d := NewOpDist(trackClasses)
		for _, op := range ops {
			d.Observe(op)
		}
		return d
	}
	e := NewEngine(EngineConfig{})
	h := e.AddOpDist(trackClasses)
	if err := e.RunSlice(ops); err != nil {
		// RunSlice cannot fail: no I/O is involved.
		panic(err)
	}
	return h.Result()
}

// Share returns a class's fraction of all ops (Table II/III column 2).
func (d *OpDist) Share(class rawdb.Class) float64 {
	if d.Total == 0 {
		return 0
	}
	co := d.PerClass[class]
	if co == nil {
		return 0
	}
	return float64(co.Total()) / float64(d.Total)
}

// ScanningClasses returns the classes with at least one scan (Finding 4
// expects exactly three: SnapshotAccount, SnapshotStorage, BlockHeader).
func (d *OpDist) ScanningClasses() []rawdb.Class {
	var out []rawdb.Class
	for class, co := range d.PerClass {
		if co.Scans > 0 {
			out = append(out, class)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalReads sums reads across classes.
func (d *OpDist) TotalReads() uint64 {
	var total uint64
	for _, co := range d.PerClass {
		total += co.Reads
	}
	return total
}

// TotalWritesAndUpdates sums writes+updates across classes.
func (d *OpDist) TotalWritesAndUpdates() uint64 {
	var total uint64
	for _, co := range d.PerClass {
		total += co.Writes + co.Updates
	}
	return total
}

// WorldStateReads sums reads of the four world-state classes.
func (d *OpDist) WorldStateReads() uint64 {
	var total uint64
	for class, co := range d.PerClass {
		if class.IsWorldState() {
			total += co.Reads
		}
	}
	return total
}

// WorldStateWrites sums writes+updates of the four world-state classes.
func (d *OpDist) WorldStateWrites() uint64 {
	var total uint64
	for class, co := range d.PerClass {
		if class.IsWorldState() {
			total += co.Writes + co.Updates
		}
	}
	return total
}

// ReadRatio computes Table IV's metric: the fraction of a class's stored
// pairs that were read at least once during the trace. classPairs is the
// class's pair count from the store census.
func (d *OpDist) ReadRatio(class rawdb.Class, classPairs uint64) float64 {
	co := d.PerClass[class]
	if co == nil || co.ReadFreq == nil || classPairs == 0 {
		return 0
	}
	return float64(len(co.ReadFreq)) / float64(classPairs)
}

// FreqPoint is one (frequency, keyCount) sample: "keyCount keys were
// operated on exactly frequency times".
type FreqPoint struct {
	Freq uint32
	Keys uint64
}

// FrequencyDistribution converts a per-key frequency map into sorted
// (frequency, keys) points — one Figure 3 panel.
func FrequencyDistribution(freq map[string]uint32) []FreqPoint {
	hist := make(map[uint32]uint64)
	for _, f := range freq {
		hist[f]++
	}
	points := make([]FreqPoint, 0, len(hist))
	for f, keys := range hist {
		points = append(points, FreqPoint{f, keys})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Freq < points[j].Freq })
	return points
}

// ReadOnceShare returns the fraction of read keys that were read exactly
// once (Finding 3's headline metric).
func ReadOnceShare(freq map[string]uint32) float64 {
	if len(freq) == 0 {
		return 0
	}
	var once int
	for _, f := range freq {
		if f == 1 {
			once++
		}
	}
	return float64(once) / float64(len(freq))
}

// MultiDeleteKeys counts keys deleted more than once — the repeatedly
// deleted-and-reinserted keys of Finding 5.
func MultiDeleteKeys(freq map[string]uint32) uint64 {
	var n uint64
	for _, f := range freq {
		if f > 1 {
			n++
		}
	}
	return n
}

// Classes returns the observed classes in descending op-count order.
func (d *OpDist) Classes() []rawdb.Class {
	out := make([]rawdb.Class, 0, len(d.PerClass))
	for class := range d.PerClass {
		out = append(out, class)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := d.PerClass[out[i]], d.PerClass[out[j]]
		if a.Total() != b.Total() {
			return a.Total() > b.Total()
		}
		return out[i] < out[j]
	})
	return out
}
