package analysis

import (
	"fmt"
	"testing"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

func hash(b byte) rawdb.Hash {
	var h rawdb.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

func TestCollectSizeDist(t *testing.T) {
	store := kv.NewMemStore()
	defer store.Close()
	// Three classes of known sizes.
	for i := 0; i < 10; i++ {
		rawdb.WriteSnapshotAccount(store, hash(byte(i)), make([]byte, 16))
	}
	for i := 0; i < 5; i++ {
		rawdb.WriteTxLookup(store, hash(byte(i+100)), 20500000)
	}
	store.Put(rawdb.LastBlockKey(), make([]byte, 32))
	store.Put([]byte("not-a-schema-key"), []byte("x"))

	dist := CollectSizeDist(store)
	if dist.Total != 16 {
		t.Fatalf("Total = %d, want 16", dist.Total)
	}
	if dist.Unknown != 1 {
		t.Fatalf("Unknown = %d, want 1", dist.Unknown)
	}
	sa := dist.PerClass[rawdb.ClassSnapshotAccount]
	if sa.Pairs != 10 || sa.MeanKeySize() != 33 || sa.MeanValueSize() != 16 {
		t.Fatalf("SnapshotAccount: %+v", sa)
	}
	tx := dist.PerClass[rawdb.ClassTxLookup]
	if tx.Pairs != 5 || tx.MeanValueSize() != 4 {
		t.Fatalf("TxLookup: pairs=%d mean=%f", tx.Pairs, tx.MeanValueSize())
	}
	if dist.SingletonClasses() != 1 {
		t.Fatalf("singletons = %d", dist.SingletonClasses())
	}
	if got := dist.Share(rawdb.ClassSnapshotAccount); got != 10.0/16 {
		t.Fatalf("Share = %v", got)
	}
	// Classes ordered by pair count.
	classes := dist.Classes()
	if classes[0] != rawdb.ClassSnapshotAccount {
		t.Fatalf("first class = %v", classes[0])
	}
	// Value size series is sorted.
	series := dist.ValueSizeSeries(rawdb.ClassSnapshotAccount)
	if len(series) != 1 || series[0].Size != 16 || series[0].Count != 10 {
		t.Fatalf("series = %+v", series)
	}
}

func mkOp(t trace.OpType, class rawdb.Class, key string) trace.Op {
	return trace.Op{Type: t, Class: class, Key: []byte(key)}
}

func TestOpDistCounts(t *testing.T) {
	ops := []trace.Op{
		mkOp(trace.OpWrite, rawdb.ClassTxLookup, "t1"),
		mkOp(trace.OpDelete, rawdb.ClassTxLookup, "t1"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a1"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a1"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a2"),
		mkOp(trace.OpUpdate, rawdb.ClassTrieNodeAccount, "a1"),
		mkOp(trace.OpScan, rawdb.ClassSnapshotStorage, "o"),
		{Type: trace.OpRead, Class: rawdb.ClassCode, Key: []byte("c1"), Hit: true}, // cache hit: skipped
	}
	d := CollectOpDistSlice(ops, nil)
	if d.Total != 7 {
		t.Fatalf("Total = %d, want 7 (hit excluded)", d.Total)
	}
	tx := d.PerClass[rawdb.ClassTxLookup]
	if tx.Writes != 1 || tx.Deletes != 1 {
		t.Fatalf("TxLookup: %+v", tx)
	}
	ta := d.PerClass[rawdb.ClassTrieNodeAccount]
	if ta.Reads != 3 || ta.Updates != 1 {
		t.Fatalf("TrieNodeAccount: %+v", ta)
	}
	if ta.ReadFreq["a1"] != 2 || ta.ReadFreq["a2"] != 1 {
		t.Fatalf("ReadFreq: %+v", ta.ReadFreq)
	}
	if got := d.Share(rawdb.ClassTrieNodeAccount); got != 4.0/7 {
		t.Fatalf("Share = %v", got)
	}
	scans := d.ScanningClasses()
	if len(scans) != 1 || scans[0] != rawdb.ClassSnapshotStorage {
		t.Fatalf("ScanningClasses = %v", scans)
	}
}

func TestFrequencyHelpers(t *testing.T) {
	freq := map[string]uint32{"a": 1, "b": 1, "c": 3, "d": 1}
	points := FrequencyDistribution(freq)
	if len(points) != 2 || points[0].Freq != 1 || points[0].Keys != 3 ||
		points[1].Freq != 3 || points[1].Keys != 1 {
		t.Fatalf("points = %+v", points)
	}
	if got := ReadOnceShare(freq); got != 0.75 {
		t.Fatalf("ReadOnceShare = %v", got)
	}
	if got := MultiDeleteKeys(map[string]uint32{"x": 2, "y": 1}); got != 1 {
		t.Fatalf("MultiDeleteKeys = %d", got)
	}
	if ReadOnceShare(nil) != 0 {
		t.Fatal("empty ReadOnceShare")
	}
}

func TestReadRatio(t *testing.T) {
	ops := []trace.Op{
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a1"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a1"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a2"),
	}
	d := CollectOpDistSlice(ops, nil)
	// 2 distinct keys read out of a 20-pair class: 10%.
	if got := d.ReadRatio(rawdb.ClassTrieNodeAccount, 20); got != 0.1 {
		t.Fatalf("ReadRatio = %v", got)
	}
	if d.ReadRatio(rawdb.ClassCode, 100) != 0 {
		t.Fatal("untracked class should have zero ratio")
	}
}

// TestCorrelatorAdjacent verifies distance-zero counting with the
// at-least-twice rule.
func TestCorrelatorAdjacent(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0, 2}, TrackPairsAt: []int{0, 2}})
	// Stream: A B A B A B -> pair (A,B) adjacent 5 times.
	for i := 0; i < 3; i++ {
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "A"))
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "B"))
	}
	pair := MakeClassPair(rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage)
	if got := c.Counts(0, pair); got != 5 {
		t.Fatalf("d=0 count = %d, want 5", got)
	}
	// At distance 2 (two ops between): pairs (0,3), (1,4), (2,5) — index
	// separation 3 is odd, so partners alternate A-B again: 3 occurrences.
	if got := c.Counts(2, pair); got != 3 {
		t.Fatalf("d=2 count = %d, want 3", got)
	}
	if c.TrackedOps() != 6 {
		t.Fatalf("TrackedOps = %d", c.TrackedOps())
	}
}

// TestCorrelatorMinTwoRule: a pair seen once must not count.
func TestCorrelatorMinTwoRule(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0}, TrackPairsAt: []int{0}})
	c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "X"))
	c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "Y"))
	pair := MakeClassPair(rawdb.ClassCode, rawdb.ClassCode)
	if got := c.Counts(0, pair); got != 0 {
		t.Fatalf("single occurrence counted: %d", got)
	}
	// Second occurrence of the same key pair: both retroactively count.
	c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "X"))
	c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "Y"))
	// Stream X Y X Y: adjacent pairs (X,Y), (Y,X), (X,Y) -> all same
	// unordered pair, count 3 >= 2 -> all 3 count.
	if got := c.Counts(0, pair); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

// TestCorrelatorSketchPath exercises the sketch-based distances.
func TestCorrelatorSketchPath(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0, 1}, TrackPairsAt: []int{0}})
	// d=1 uses the sketch. Stream A _ B pattern repeated: A z B z A z B...
	for i := 0; i < 4; i++ {
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "A"))
		c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "z"))
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "B"))
	}
	pair := MakeClassPair(rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage)
	// (A at i, B at i+2): separation d=1 (one op between).
	if got := c.Counts(1, pair); got < 3 {
		t.Fatalf("sketch-path d=1 count = %d, want >=3", got)
	}
}

func TestCorrelatorSameKeyExcluded(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0}, TrackPairsAt: []int{0}})
	for i := 0; i < 10; i++ {
		c.Observe(mkOp(trace.OpRead, rawdb.ClassCode, "same"))
	}
	pair := MakeClassPair(rawdb.ClassCode, rawdb.ClassCode)
	if got := c.Counts(0, pair); got != 0 {
		t.Fatalf("same-key repeats counted as pairs: %d", got)
	}
}

func TestCorrelatorUpdateFilter(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpUpdate, Distances: []int{0}, TrackPairsAt: []int{0}})
	// Reads must be ignored entirely.
	for i := 0; i < 4; i++ {
		c.Observe(mkOp(trace.OpRead, rawdb.ClassLastFast, "LF"))
		c.Observe(mkOp(trace.OpUpdate, rawdb.ClassLastFast, "LF"))
		c.Observe(mkOp(trace.OpUpdate, rawdb.ClassLastHeader, "LH"))
	}
	if c.TrackedOps() != 8 {
		t.Fatalf("TrackedOps = %d, want 8", c.TrackedOps())
	}
	pair := MakeClassPair(rawdb.ClassLastFast, rawdb.ClassLastHeader)
	if got := c.Counts(0, pair); got == 0 {
		t.Fatal("meta-singleton update pair not counted")
	}
}

func TestTopPairsAndFrequency(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0}, TrackPairsAt: []int{0}})
	// Hot intra pair: A1-A2 x10; weak cross pair: A1-B1 x2.
	for i := 0; i < 10; i++ {
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "A1"))
		c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "A2"))
	}
	c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "B1"))
	c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "A1"))
	c.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "B1"))

	intra := c.TopPairs(0, 3, true)
	if len(intra) == 0 || intra[0].Pair != MakeClassPair(rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeAccount) {
		t.Fatalf("top intra = %+v", intra)
	}
	cross := c.TopPairs(0, 3, false)
	if len(cross) == 0 || cross[0].Pair.Intra() {
		t.Fatalf("top cross = %+v", cross)
	}
	// Frequency distribution for the intra pair.
	points := c.FrequencyDistribution(0, intra[0].Pair)
	if len(points) == 0 {
		t.Fatal("no frequency points for hot pair")
	}
	if f := c.MaxPairFrequency(0, intra[0].Pair); f < 10 {
		t.Fatalf("max frequency = %d, want >=10", f)
	}
}

func TestCompare(t *testing.T) {
	bare := CollectOpDistSlice([]trace.Op{
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "a"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "b"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "c"),
		mkOp(trace.OpRead, rawdb.ClassTrieNodeStorage, "d"),
		mkOp(trace.OpUpdate, rawdb.ClassTrieNodeAccount, "a"),
		mkOp(trace.OpUpdate, rawdb.ClassTrieNodeAccount, "b"),
	}, nil)
	cached := CollectOpDistSlice([]trace.Op{
		mkOp(trace.OpRead, rawdb.ClassSnapshotAccount, "s"),
		mkOp(trace.OpUpdate, rawdb.ClassTrieNodeAccount, "a"),
	}, nil)
	bareStore := &SizeDist{Total: 100}
	cachedStore := &SizeDist{Total: 160}
	cmp := Compare(bare, cached, bareStore, cachedStore)
	if got := cmp.ReadReduction(); got != 0.75 {
		t.Fatalf("ReadReduction = %v, want 0.75", got)
	}
	if got := cmp.WorldStateWriteReduction(); got != 0.5 {
		t.Fatalf("WorldStateWriteReduction = %v", got)
	}
	if got := cmp.StorageOverhead(); got < 0.59 || got > 0.61 {
		t.Fatalf("StorageOverhead = %v, want 0.6", got)
	}
	if got := cmp.TrieReadReduction(); got != 1.0 {
		t.Fatalf("TrieReadReduction = %v", got)
	}
}

func TestClassPair(t *testing.T) {
	p := MakeClassPair(rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage)
	q := MakeClassPair(rawdb.ClassTrieNodeStorage, rawdb.ClassTrieNodeAccount)
	if p != q || p.A > p.B {
		t.Fatal("pair not normalized")
	}
	if !MakeClassPair(rawdb.ClassCode, rawdb.ClassCode).Intra() {
		t.Fatal("Intra")
	}
	if p.Intra() {
		t.Fatal("cross pair reported intra")
	}
	if p.String() == "" {
		t.Fatal("String")
	}
}

func TestCorrelatorDistanceSemantics(t *testing.T) {
	// Stream of distinct keys k0..k9; partner of k5 at d=3 must be k1.
	c := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{3}, TrackPairsAt: []int{3}})
	for i := 0; i < 10; i++ {
		class := rawdb.ClassCode
		if i%4 == 1 { // k1, k5, k9 are TrieNodeAccount
			class = rawdb.ClassTrieNodeAccount
		}
		c.Observe(mkOp(trace.OpRead, class, fmt.Sprintf("k%d", i)))
	}
	// Pairs at d=3: (k0,k4),(k1,k5),(k2,k6),... (k1,k5) and (k5,k9) are
	// TA-TA pairs but each unordered pair occurs once -> min-2 excludes.
	pair := MakeClassPair(rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeAccount)
	if got := c.Counts(3, pair); got != 0 {
		t.Fatalf("once-seen pairs counted: %d", got)
	}
	// Repeat the stream: every pair now occurs twice... except the seam
	// pairs; (k1,k5) reaches 2 -> contributes 2, (k5,k9) reaches 2.
	for i := 0; i < 10; i++ {
		class := rawdb.ClassCode
		if i%4 == 1 {
			class = rawdb.ClassTrieNodeAccount
		}
		c.Observe(mkOp(trace.OpRead, class, fmt.Sprintf("k%d", i)))
	}
	if got := c.Counts(3, pair); got < 4 {
		t.Fatalf("repeated pairs undercounted: %d, want >=4", got)
	}
}

// TestCollectFromTraceFile exercises the file-streaming entry points end to
// end (the path the command-line tools take).
func TestCollectFromTraceFile(t *testing.T) {
	path := t.TempDir() + "/trace.bin"
	w, err := trace.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		w.Append(trace.Op{
			Type:  trace.OpType(i % 5),
			Class: rawdb.Class(i%5 + 1),
			Key:   []byte(fmt.Sprintf("key-%d", i%97)),
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := CollectOpDist(r, nil)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dist.Total != 2000 {
		t.Fatalf("streamed census total = %d", dist.Total)
	}

	r2, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CollectCorrelations(r2, CorrConfig{Op: trace.OpRead})
	r2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if corr.TrackedOps() != 400 { // every 5th op is a read
		t.Fatalf("tracked %d reads", corr.TrackedOps())
	}
}

// TestSketchMatchesExactOnSmallStream: for streams far below sketch
// collision territory, the sketch path must agree with the exact path.
func TestSketchMatchesExactOnSmallStream(t *testing.T) {
	mkStream := func() []trace.Op {
		var ops []trace.Op
		for round := 0; round < 20; round++ {
			for i := 0; i < 10; i++ {
				ops = append(ops, mkOp(trace.OpRead, rawdb.ClassCode, fmt.Sprintf("k%d", i)))
			}
		}
		return ops
	}
	// d=1 exact.
	exact := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{1}, TrackPairsAt: []int{1}})
	// d=1 via sketch (track only d=0 exactly).
	sketched := NewCorrelator(CorrConfig{Op: trace.OpRead, Distances: []int{0, 1}, TrackPairsAt: []int{0}})
	for _, op := range mkStream() {
		exact.Observe(op)
		sketched.Observe(op)
	}
	pair := MakeClassPair(rawdb.ClassCode, rawdb.ClassCode)
	if e, s := exact.Counts(1, pair), sketched.Counts(1, pair); e != s {
		t.Fatalf("sketch diverged from exact: %d vs %d", s, e)
	}
}

// TestCheckFindingsSyntheticInput: the checker runs over handcrafted
// censuses without panicking and reports all 11 findings.
func TestCheckFindingsSyntheticInput(t *testing.T) {
	mk := func(n int) []trace.Op {
		var ops []trace.Op
		for i := 0; i < n; i++ {
			ops = append(ops, mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, fmt.Sprintf("a%d", i%7)))
			ops = append(ops, mkOp(trace.OpUpdate, rawdb.ClassTrieNodeStorage, fmt.Sprintf("s%d", i%5)))
		}
		return ops
	}
	emptyStore := &SizeDist{PerClass: map[rawdb.Class]*ClassSize{}, Total: 1}
	input := BuildFindingsInput(mk(50), mk(200), emptyStore, emptyStore)
	findings := CheckFindings(input)
	if len(findings) != 11 {
		t.Fatalf("%d findings", len(findings))
	}
	for i, f := range findings {
		if f.ID != i+1 {
			t.Fatalf("finding %d has ID %d", i, f.ID)
		}
		if f.Title == "" || f.Evidence == "" {
			t.Fatalf("finding %d missing text", f.ID)
		}
	}
}

func TestOpDistTrackedKeyCap(t *testing.T) {
	d := NewOpDistLimited(nil, 5)
	for i := 0; i < 20; i++ {
		d.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, fmt.Sprintf("k%02d", i)))
	}
	// Repeats of tracked keys still count.
	d.Observe(mkOp(trace.OpRead, rawdb.ClassTrieNodeAccount, "k00"))
	co := d.PerClass[rawdb.ClassTrieNodeAccount]
	if len(co.ReadFreq) != 5 {
		t.Fatalf("tracked %d keys, cap 5", len(co.ReadFreq))
	}
	if co.ReadFreq["k00"] != 2 {
		t.Fatalf("tracked key stopped counting: %d", co.ReadFreq["k00"])
	}
	if !d.Truncated {
		t.Fatal("Truncated not set")
	}
	// Aggregate counters remain exact regardless of the cap.
	if co.Reads != 21 {
		t.Fatalf("Reads = %d, want 21", co.Reads)
	}
}

func TestTopPairsEdgeCases(t *testing.T) {
	c := NewCorrelator(CorrConfig{Op: trace.OpRead})
	if got := c.TopPairs(0, 0, true); len(got) != 0 {
		t.Fatalf("TopPairs(n=0) = %v", got)
	}
	if got := c.TopPairs(0, 5, false); len(got) != 0 {
		t.Fatalf("TopPairs on empty correlator = %v", got)
	}
	// FrequencyDistribution at an untracked distance returns nil.
	if got := c.FrequencyDistribution(8, MakeClassPair(rawdb.ClassCode, rawdb.ClassCode)); got != nil {
		t.Fatalf("untracked distance returned %v", got)
	}
	if got := c.MaxPairFrequency(8, MakeClassPair(rawdb.ClassCode, rawdb.ClassCode)); got != 0 {
		t.Fatalf("untracked MaxPairFrequency = %d", got)
	}
}

func TestSizeDistCI(t *testing.T) {
	store := kv.NewMemStore()
	defer store.Close()
	// Two distinct value sizes -> nonzero CI.
	rawdb.WriteSnapshotAccount(store, hash(1), make([]byte, 10))
	rawdb.WriteSnapshotAccount(store, hash(2), make([]byte, 30))
	dist := CollectSizeDist(store)
	cs := dist.PerClass[rawdb.ClassSnapshotAccount]
	if ci := cs.ValueSizeCI95(); ci <= 0 {
		t.Fatalf("value CI = %v, want > 0", ci)
	}
	// Constant key size -> zero CI.
	if ci := cs.KeySizeCI95(); ci != 0 {
		t.Fatalf("key CI = %v, want 0", ci)
	}
	// Single pair -> zero CI by definition.
	one := &ClassSize{Pairs: 1, ValueBytes: 100, ValueSquares: 10000}
	if one.ValueSizeCI95() != 0 {
		t.Fatal("single-sample CI should be 0")
	}
}
