// Package analysis implements the paper's trace-analysis suite: per-class
// KV size distributions (Findings 1-2), operation distributions and read
// ratios (Findings 3-7), and distance-based read/update correlation
// analysis (Findings 8-11). It is the repository's core contribution,
// mirroring the artifact's countKVSizeDistribution,
// kvOpDistributionAnalysis, readCorrelationAnalysis and
// updateCorrelationAnalysis tools.
package analysis

import (
	"math"
	"sort"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

// ClassSize aggregates the stored pairs of one class.
type ClassSize struct {
	Class      rawdb.Class
	Pairs      uint64
	KeyBytes   uint64
	ValueBytes uint64
	// Sums of squares, for the 95% confidence intervals Table I reports.
	KeySquares   float64
	ValueSquares float64
	// KeySizes / ValueSizes are exact size histograms (size -> count),
	// the raw data behind Figure 2's scatter plots.
	KeySizes   map[int]uint64
	ValueSizes map[int]uint64
}

// KeySizeCI95 returns the 95%% confidence half-width of the mean key size
// under the paper's normality assumption (1.96 * stderr).
func (c *ClassSize) KeySizeCI95() float64 {
	return ci95(c.KeySquares, float64(c.KeyBytes), c.Pairs)
}

// ValueSizeCI95 returns the 95%% confidence half-width of the mean value
// size.
func (c *ClassSize) ValueSizeCI95() float64 {
	return ci95(c.ValueSquares, float64(c.ValueBytes), c.Pairs)
}

// ci95 computes 1.96 * sqrt(variance/n) from raw moments.
func ci95(sumSquares, sum float64, n uint64) float64 {
	if n < 2 {
		return 0
	}
	mean := sum / float64(n)
	variance := sumSquares/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return 1.96 * math.Sqrt(variance/float64(n))
}

// MeanKeySize returns the average key size in bytes.
func (c *ClassSize) MeanKeySize() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.KeyBytes) / float64(c.Pairs)
}

// MeanValueSize returns the average value size in bytes.
func (c *ClassSize) MeanValueSize() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.ValueBytes) / float64(c.Pairs)
}

// MeanKVSize returns the average key+value size.
func (c *ClassSize) MeanKVSize() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.KeyBytes+c.ValueBytes) / float64(c.Pairs)
}

// SizeDist is the per-class size census of a store (Table I's raw data).
type SizeDist struct {
	PerClass map[rawdb.Class]*ClassSize
	Total    uint64 // total pairs
	Unknown  uint64 // pairs outside the schema
}

// CollectSizeDist scans every pair in the store and buckets it by class —
// the equivalent of running countKVSizeDistribution over the post-sync
// database.
func CollectSizeDist(store kv.Iterable) *SizeDist {
	dist := &SizeDist{PerClass: make(map[rawdb.Class]*ClassSize)}
	it := store.NewIterator(nil, nil)
	defer it.Release()
	for it.Next() {
		key, value := it.Key(), it.Value()
		class := rawdb.Classify(key)
		if class == rawdb.ClassUnknown {
			dist.Unknown++
			continue
		}
		cs := dist.PerClass[class]
		if cs == nil {
			cs = &ClassSize{
				Class:      class,
				KeySizes:   make(map[int]uint64),
				ValueSizes: make(map[int]uint64),
			}
			dist.PerClass[class] = cs
		}
		cs.Pairs++
		cs.KeyBytes += uint64(len(key))
		cs.ValueBytes += uint64(len(value))
		cs.KeySquares += float64(len(key)) * float64(len(key))
		cs.ValueSquares += float64(len(value)) * float64(len(value))
		cs.KeySizes[len(key)]++
		cs.ValueSizes[len(value)]++
		dist.Total++
	}
	return dist
}

// Share returns a class's fraction of all pairs.
func (d *SizeDist) Share(class rawdb.Class) float64 {
	if d.Total == 0 {
		return 0
	}
	cs := d.PerClass[class]
	if cs == nil {
		return 0
	}
	return float64(cs.Pairs) / float64(d.Total)
}

// DominantShare sums the share of the five dominant classes of Finding 1.
func (d *SizeDist) DominantShare() float64 {
	return d.Share(rawdb.ClassTrieNodeStorage) +
		d.Share(rawdb.ClassSnapshotStorage) +
		d.Share(rawdb.ClassTxLookup) +
		d.Share(rawdb.ClassTrieNodeAccount) +
		d.Share(rawdb.ClassSnapshotAccount)
}

// SingletonClasses counts classes holding exactly one pair.
func (d *SizeDist) SingletonClasses() int {
	n := 0
	for _, cs := range d.PerClass {
		if cs.Pairs == 1 {
			n++
		}
	}
	return n
}

// DominantMeanKVSize is the pair-weighted mean KV size across the five
// dominant classes (the paper reports 79.1 bytes).
func (d *SizeDist) DominantMeanKVSize() float64 {
	var pairs, bytes uint64
	for _, class := range []rawdb.Class{
		rawdb.ClassTrieNodeStorage, rawdb.ClassSnapshotStorage,
		rawdb.ClassTxLookup, rawdb.ClassTrieNodeAccount,
		rawdb.ClassSnapshotAccount,
	} {
		if cs := d.PerClass[class]; cs != nil {
			pairs += cs.Pairs
			bytes += cs.KeyBytes + cs.ValueBytes
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(bytes) / float64(pairs)
}

// LargePairShare is the fraction of pairs whose key+value exceeds 1 KiB
// (the paper reports 0.04%).
func (d *SizeDist) LargePairShare() float64 {
	if d.Total == 0 {
		return 0
	}
	var large uint64
	for _, cs := range d.PerClass {
		// Approximate per-pair size by the value histogram plus mean key
		// size (keys are small and near-constant within a class).
		meanKey := int(cs.MeanKeySize())
		for size, count := range cs.ValueSizes {
			if size+meanKey > 1024 {
				large += count
			}
		}
	}
	return float64(large) / float64(d.Total)
}

// SizePoint is one (size, count) sample of a distribution.
type SizePoint struct {
	Size  int
	Count uint64
}

// ValueSizeSeries returns a class's value-size distribution as sorted
// scatter points — one Figure 2 panel.
func (d *SizeDist) ValueSizeSeries(class rawdb.Class) []SizePoint {
	cs := d.PerClass[class]
	if cs == nil {
		return nil
	}
	points := make([]SizePoint, 0, len(cs.ValueSizes))
	for size, count := range cs.ValueSizes {
		points = append(points, SizePoint{size, count})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Size < points[j].Size })
	return points
}

// Classes returns the classes present, ordered by pair count descending —
// Table I's row order.
func (d *SizeDist) Classes() []rawdb.Class {
	out := make([]rawdb.Class, 0, len(d.PerClass))
	for class := range d.PerClass {
		out = append(out, class)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := d.PerClass[out[i]], d.PerClass[out[j]]
		if a.Pairs != b.Pairs {
			return a.Pairs > b.Pairs
		}
		return out[i] < out[j]
	})
	return out
}
