package analysis

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"ethkv/internal/rawdb"
	"ethkv/internal/trace"
)

// genOps synthesizes a deterministic op stream with hot keys, mixed
// classes, every op type, and a sprinkle of cache hits — the shapes the
// collectors care about.
func genOps(n int, seed int64) []trace.Op {
	rng := rand.New(rand.NewSource(seed))
	classes := []rawdb.Class{
		rawdb.ClassTrieNodeAccount, rawdb.ClassTrieNodeStorage,
		rawdb.ClassSnapshotAccount, rawdb.ClassSnapshotStorage,
		rawdb.ClassTxLookup, rawdb.ClassBlockHeader, rawdb.ClassCode,
	}
	types := []trace.OpType{
		trace.OpRead, trace.OpRead, trace.OpRead, trace.OpRead,
		trace.OpWrite, trace.OpUpdate, trace.OpUpdate, trace.OpDelete,
		trace.OpScan,
	}
	keys := make([][]byte, 1+n/8)
	for i := range keys {
		k := make([]byte, 8+rng.Intn(57))
		rng.Read(k)
		keys[i] = k
	}
	ops := make([]trace.Op, n)
	for i := range ops {
		// Quadratic skew: low indexes repeat often, giving the correlator
		// real pair repetition.
		ki := rng.Intn(len(keys))
		ki = ki * rng.Intn(len(keys)) / len(keys)
		ops[i] = trace.Op{
			Seq:       uint64(i),
			Type:      types[rng.Intn(len(types))],
			Class:     classes[rng.Intn(len(classes))],
			Key:       keys[ki],
			ValueSize: uint32(rng.Intn(512)),
			Hit:       rng.Intn(10) == 0,
		}
	}
	return ops
}

// seqOpDist is the sequential reference census.
func seqOpDist(ops []trace.Op, track []rawdb.Class, maxKeys int) *OpDist {
	d := NewOpDistLimited(track, maxKeys)
	for _, op := range ops {
		d.Observe(op)
	}
	return d
}

// seqCorrelator is the sequential reference correlation pass.
func seqCorrelator(ops []trace.Op, cfg CorrConfig) *Correlator {
	c := NewCorrelator(cfg)
	for _, op := range ops {
		c.Observe(op)
	}
	return c
}

// requireSameOpDist asserts byte-identical census output.
func requireSameOpDist(t *testing.T, want, got *OpDist) {
	t.Helper()
	if want.Total != got.Total {
		t.Fatalf("Total = %d, want %d", got.Total, want.Total)
	}
	if want.Truncated != got.Truncated {
		t.Fatalf("Truncated = %v, want %v", got.Truncated, want.Truncated)
	}
	if !reflect.DeepEqual(want.PerClass, got.PerClass) {
		t.Fatalf("PerClass diverged:\nwant %+v\ngot  %+v", want.PerClass, got.PerClass)
	}
}

// requireSameCorrelator asserts byte-identical correlation state: the
// aggregate counts, the exact per-pair counters, the ring, and the full
// 16 MiB sketch.
func requireSameCorrelator(t *testing.T, want, got *Correlator) {
	t.Helper()
	if want.pos != got.pos {
		t.Fatalf("tracked ops = %d, want %d", got.pos, want.pos)
	}
	if !reflect.DeepEqual(want.ring, got.ring) {
		t.Fatal("ring state diverged")
	}
	if !reflect.DeepEqual(want.counts, got.counts) {
		t.Fatalf("counts diverged:\nwant %v\ngot  %v", want.counts, got.counts)
	}
	if !reflect.DeepEqual(want.pairCounts, got.pairCounts) {
		t.Fatal("exact pair counts diverged")
	}
	if !bytes.Equal(want.sketch, got.sketch) {
		t.Fatal("sketch diverged")
	}
	// Spot-check the public accessors the reports consume.
	for _, d := range want.distances {
		for _, intra := range []bool{true, false} {
			if !reflect.DeepEqual(want.TopPairs(d, 5, intra), got.TopPairs(d, 5, intra)) {
				t.Fatalf("TopPairs(%d, 5, %v) diverged", d, intra)
			}
		}
	}
	for d, stats := range want.pairCountsByDist {
		classPairs := map[ClassPair]bool{}
		for _, st := range stats {
			classPairs[st.pair] = true
		}
		for cp := range classPairs {
			if !reflect.DeepEqual(want.FrequencyDistribution(d, cp), got.FrequencyDistribution(d, cp)) {
				t.Fatalf("FrequencyDistribution(%d, %v) diverged", d, cp)
			}
			if want.MaxPairFrequency(d, cp) != got.MaxPairFrequency(d, cp) {
				t.Fatalf("MaxPairFrequency(%d, %v) diverged", d, cp)
			}
		}
	}
}

// engineWorkerCounts are the shard counts every equivalence test runs at.
func engineWorkerCounts() []int {
	counts := []int{1, 2, 3, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestEngineEquivalenceSlice(t *testing.T) {
	ops := genOps(30000, 1)
	cfgs := []CorrConfig{
		{Op: trace.OpRead},
		{Op: trace.OpUpdate},
		{Op: trace.OpUpdate, IncludeWrites: true},
		{Op: trace.OpRead, Distances: []int{0, 3, 7, 50}, TrackPairsAt: []int{3, 2048}},
	}
	wantDist := seqOpDist(ops, nil, 0)
	wantCorrs := make([]*Correlator, len(cfgs))
	for i, cfg := range cfgs {
		wantCorrs[i] = seqCorrelator(ops, cfg)
	}
	for _, w := range engineWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			e := NewEngine(EngineConfig{Workers: w, BatchSize: 1009})
			hd := e.AddOpDist(nil)
			hcs := make([]*CorrelatorHandle, len(cfgs))
			for i, cfg := range cfgs {
				hcs[i] = e.AddCorrelator(cfg)
			}
			if err := e.RunSlice(ops); err != nil {
				t.Fatal(err)
			}
			requireSameOpDist(t, wantDist, hd.Result())
			for i := range cfgs {
				requireSameCorrelator(t, wantCorrs[i], hcs[i].Result())
			}
		})
	}
}

func TestEngineEquivalenceReader(t *testing.T) {
	ops := genOps(20000, 2)
	path := filepath.Join(t.TempDir(), "trace.bin")
	w, err := trace.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := CorrConfig{Op: trace.OpRead}
	wantDist := seqOpDist(ops, nil, 0)
	wantCorr := seqCorrelator(ops, cfg)
	for _, workers := range engineWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r, err := trace.OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			e := NewEngine(EngineConfig{Workers: workers, BatchSize: 513})
			hd := e.AddOpDist(nil)
			hc := e.AddCorrelator(cfg)
			if err := e.RunReader(r); err != nil {
				t.Fatal(err)
			}
			requireSameOpDist(t, wantDist, hd.Result())
			requireSameCorrelator(t, wantCorr, hc.Result())
		})
	}
}

func TestEngineOpDistTrackedKeyCap(t *testing.T) {
	ops := genOps(20000, 3)
	const cap = 7
	want := seqOpDist(ops, nil, cap)
	if !want.Truncated {
		t.Fatal("test needs a workload that overflows the cap")
	}
	for _, w := range engineWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			e := NewEngine(EngineConfig{Workers: w, BatchSize: 777})
			h := e.AddOpDistLimited(nil, cap)
			if err := e.RunSlice(ops); err != nil {
				t.Fatal(err)
			}
			requireSameOpDist(t, want, h.Result())
		})
	}
}

func TestEngineFindingsEquivalence(t *testing.T) {
	// The findings path fans each trace out to three collectors; the
	// checker output must match a fully sequential build.
	cachedOps := genOps(15000, 4)
	bareOps := genOps(15000, 5)
	store := &SizeDist{PerClass: map[rawdb.Class]*ClassSize{}}

	readCfg := CorrConfig{Op: trace.OpRead}
	updCfg := CorrConfig{Op: trace.OpUpdate}
	want := CheckFindings(&FindingsInput{
		CachedOps: seqOpDist(cachedOps, nil, 0), BareOps: seqOpDist(bareOps, nil, 0),
		CachedStore: store, BareStore: store,
		CachedReadCorr: seqCorrelator(cachedOps, readCfg), BareReadCorr: seqCorrelator(bareOps, readCfg),
		CachedUpdateCorr: seqCorrelator(cachedOps, updCfg), BareUpdateCorr: seqCorrelator(bareOps, updCfg),
	})
	got := CheckFindings(BuildFindingsInput(cachedOps, bareOps, store, store))
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("findings diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCollectWrappersMatchSequential(t *testing.T) {
	// The public Collect* entry points shard by DefaultWorkers; pin the
	// worker count above 1 so the engine path runs even on 1-CPU machines.
	t.Setenv("ETHKV_ANALYSIS_WORKERS", "4")
	if DefaultWorkers() != 4 {
		t.Fatalf("DefaultWorkers = %d with override", DefaultWorkers())
	}
	ops := genOps(10000, 6)
	requireSameOpDist(t, seqOpDist(ops, nil, 0), CollectOpDistSlice(ops, nil))
	cfg := CorrConfig{Op: trace.OpUpdate, IncludeWrites: true}
	requireSameCorrelator(t, seqCorrelator(ops, cfg), CollectCorrelationsSlice(ops, cfg))
}

func TestEngineEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		ops := genOps(n, int64(10+n))
		e := NewEngine(EngineConfig{Workers: 4, BatchSize: 2})
		hd := e.AddOpDist(nil)
		hc := e.AddCorrelator(CorrConfig{Op: trace.OpRead})
		if err := e.RunSlice(ops); err != nil {
			t.Fatal(err)
		}
		requireSameOpDist(t, seqOpDist(ops, nil, 0), hd.Result())
		requireSameCorrelator(t, seqCorrelator(ops, CorrConfig{Op: trace.OpRead}), hc.Result())
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv("ETHKV_ANALYSIS_WORKERS", "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", got)
	}
	t.Setenv("ETHKV_ANALYSIS_WORKERS", "junk")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers = %d, want GOMAXPROCS", got)
	}
	os.Unsetenv("ETHKV_ANALYSIS_WORKERS")
}
