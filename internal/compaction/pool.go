// Package compaction provides a process-wide worker pool that budgets
// background LSM work (memtable flushes and compactions) across every store
// instance that shares it. Without a shared pool, a sharded or policy-routed
// deployment spawns an independent worker set per LSM instance and the
// aggregate background parallelism is unbounded; with one, `-shards 8` on a
// 4-worker pool still runs at most 4 merges at a time, and the pool picks
// which store goes next by compaction debt, so the store furthest behind
// drains first.
package compaction

import (
	"container/heap"
	"sync"
)

// Job is a unit of background work. It runs on a pool goroutine and must not
// block forever: the pool dedicates no goroutines of its own, so a stuck job
// permanently consumes one slot of the budget.
type Job func()

// DefaultWorkers is the budget used when a pool is created with a
// non-positive size.
const DefaultWorkers = 4

type pendingJob struct {
	debt uint64 // priority: bytes of compaction debt behind this job
	seq  uint64 // FIFO tiebreak so equal-debt jobs keep submit order
	run  Job
}

// pendingHeap is a max-heap on debt (ties broken by submission order).
type pendingHeap []pendingJob

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].debt != h[j].debt {
		return h[i].debt > h[j].debt
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pendingJob)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = pendingJob{}
	*h = old[:n-1]
	return x
}

// Pool runs submitted jobs with at most `budget` running concurrently.
// Excess submissions queue in debt order. The pool has no lifecycle: it
// spawns a goroutine per running job and holds none while idle, so it never
// needs closing and can be shared by stores with independent lifetimes.
type Pool struct {
	mu      sync.Mutex
	budget  int
	running int
	seq     uint64
	pending pendingHeap
}

// NewPool returns a pool that runs at most workers jobs concurrently.
// workers <= 0 selects DefaultWorkers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	return &Pool{budget: workers}
}

// Workers reports the pool's concurrency budget.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// Submit schedules run, starting it immediately when a slot is free and
// queueing it behind higher-debt work otherwise. debt is the submitter's
// compaction-debt estimate at submit time; flushes should pass a large
// value so rotation never queues behind merges. Submit never blocks.
func (p *Pool) Submit(debt uint64, run Job) {
	p.mu.Lock()
	if p.running >= p.budget {
		p.seq++
		heap.Push(&p.pending, pendingJob{debt: debt, seq: p.seq, run: run})
		p.mu.Unlock()
		return
	}
	p.running++
	p.mu.Unlock()
	go p.work(run)
}

// work runs job, then drains queued work on the same goroutine until the
// queue is empty, at which point the slot is released.
func (p *Pool) work(job Job) {
	for {
		job()
		p.mu.Lock()
		if len(p.pending) == 0 {
			p.running--
			p.mu.Unlock()
			return
		}
		job = heap.Pop(&p.pending).(pendingJob).run
		p.mu.Unlock()
	}
}

// Stats reports the pool's instantaneous occupancy.
func (p *Pool) Stats() (running, queued int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running, len(p.pending)
}
