package compaction

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBudget proves the pool never runs more jobs concurrently than its
// budget, even when far more are submitted at once.
func TestPoolBudget(t *testing.T) {
	const budget = 3
	p := NewPool(budget)
	var running, peak, done int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		p.Submit(uint64(i), func() {
			defer wg.Done()
			n := atomic.AddInt32(&running, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&running, -1)
			atomic.AddInt32(&done, 1)
		})
	}
	wg.Wait()
	if got := atomic.LoadInt32(&done); got != 32 {
		t.Fatalf("ran %d jobs, want 32", got)
	}
	if got := atomic.LoadInt32(&peak); got > budget {
		t.Fatalf("peak concurrency %d exceeds budget %d", got, budget)
	}
}

// TestPoolDebtPriority proves that queued jobs drain highest-debt first.
func TestPoolDebtPriority(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(0, func() { // occupy the only slot
		defer wg.Done()
		<-gate
	})
	debts := []uint64{5, 90, 20, 90, 1}
	for _, d := range debts {
		d := d
		wg.Add(1)
		p.Submit(d, func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, d)
			mu.Unlock()
		})
	}
	close(gate)
	wg.Wait()
	want := []uint64{90, 90, 20, 5, 1}
	for i, d := range want {
		if order[i] != d {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

// TestPoolIdleNoGoroutines checks the pool releases its slot when the queue
// empties: a fresh submission after idling still runs.
func TestPoolIdleNoGoroutines(t *testing.T) {
	p := NewPool(2)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		wg.Add(4)
		for i := 0; i < 4; i++ {
			p.Submit(1, wg.Done)
		}
		wg.Wait()
		// The slot releases just after the last job returns; poll briefly.
		deadline := time.Now().Add(2 * time.Second)
		for {
			running, queued := p.Stats()
			if running == 0 && queued == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: running=%d queued=%d after drain", round, running, queued)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	if NewPool(0).Workers() != DefaultWorkers {
		t.Fatal("NewPool(0) should use DefaultWorkers")
	}
}
