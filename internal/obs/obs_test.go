package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("Counter not get-or-create")
	}
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("answer", func() float64 { return 42 })
	r.GaugeFunc("bogus", func() float64 { return math.NaN() })

	snap := r.Snapshot()
	if snap.Counters["ops_total"] != 5 || snap.Gauges["queue_depth"] != 5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if snap.Gauges["answer"] != 42 {
		t.Fatalf("gauge func = %v, want 42", snap.Gauges["answer"])
	}
	if snap.Gauges["bogus"] != 0 {
		t.Fatalf("NaN gauge func = %v, want 0", snap.Gauges["bogus"])
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1024)
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1030 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// 0 → bucket 0, 1 → bucket 1, {2,3} → bucket 2, 1024 → bucket 11.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 11: 1} {
		if s.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 samples uniform in [1, 1000].
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	// Log2 buckets bound the estimate within a factor of two of the truth.
	checks := []struct {
		q    float64
		true float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0.999, 999}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.true/2 || got > c.true*2 {
			t.Errorf("q%.3f = %.1f, want within [%.1f, %.1f]", c.q, got, c.true/2, c.true*2)
		}
	}
	if m := s.Mean(); math.Abs(m-500.5) > 0.01 {
		t.Errorf("mean = %v, want 500.5", m)
	}
	// Degenerate cases.
	var empty Histogram
	if q := empty.snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if s.Quantile(-1) > s.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Name("lat", "op", "get"))
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestNameAndSplit(t *testing.T) {
	n := Name("op_latency_ns", "op", "get", "store", "lsm")
	if n != `op_latency_ns{op="get",store="lsm"}` {
		t.Fatalf("Name = %s", n)
	}
	base, labels := splitName(n)
	if base != "op_latency_ns" || labels != `op="get",store="lsm"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
	base, labels = splitName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("splitName(plain) = %q, %q", base, labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("reqs_total", "op", "get")).Add(3)
	r.Gauge("depth").Set(2)
	h := r.Histogram(Name("lat_ns", "op", "get"))
	h.Observe(5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{op="get"} 3`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{op="get",le="7"} 1`,
		`lat_ns_bucket{op="get",le="+Inf"} 2`,
		`lat_ns_sum{op="get"} 105`,
		`lat_ns_count{op="get"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("ethkv_op_latency_ns", "op", "get")).Observe(1234)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "ethkv_op_latency_ns_bucket") {
		t.Fatalf("/metrics missing histogram series:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestFormatQuantiles(t *testing.T) {
	var h Histogram
	if got := FormatQuantiles(h.snapshot()); got != "no samples" {
		t.Fatalf("empty = %q", got)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(2000) // ~2µs
	}
	got := FormatQuantiles(h.snapshot())
	if !strings.Contains(got, "p50=") || !strings.Contains(got, "p999=") {
		t.Fatalf("quantile summary = %q", got)
	}
	if !strings.Contains(got, "µs") {
		t.Fatalf("expected microsecond unit in %q", got)
	}
}

// BenchmarkHistogramObserve pins the hot-path cost: two atomic adds, no
// allocation.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func ExampleName() {
	fmt.Println(Name("op_latency_ns", "op", "get"))
	// Output: op_latency_ns{op="get"}
}
