// Package obs is the storage stack's observability layer: lock-free
// counters, gauges, and log₂-bucketed latency histograms collected behind a
// Registry, exported three ways — a Snapshot API for benchmark harnesses, a
// Prometheus text endpoint (with net/http/pprof alongside), and whatever
// periodic progress lines a long-running tool wants to print.
//
// The paper's whole method is measuring the KV stream from outside the
// store; this package turns the same lens inward so the repo's own storage
// stack stops being a black box at runtime. Hot-path cost is one atomic add
// per event (two for histograms); when a component is handed a nil
// *Registry everything compiles down to untaken branches.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of a log₂ histogram: bucket i holds
// values v with bits.Len64(v) == i, i.e. bucket 0 holds zero and bucket i>0
// holds [2^(i-1), 2^i). 64-bit values need 65 buckets.
const histBuckets = 65

// Histogram is a lock-free log₂-bucketed histogram. One Observe costs two
// atomic adds; there is no lock, no allocation, and no bucket search — the
// bucket index is the bit length of the value. Resolution is a factor of
// two, which is exactly what latency percentiles need (the difference
// between 1.1µs and 1.4µs is noise; the difference between 1µs and 1ms is
// the finding).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (typically nanoseconds).
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// snapshot copies the histogram's counters. Concurrent Observes may land
// between bucket reads; the snapshot is consistent to within in-flight
// events, which is all a percentile readout needs.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1)<<i - 1)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) by linear
// interpolation inside the owning log₂ bucket. With factor-of-two buckets
// the estimate is within 2x of the true value, and typically much closer.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank < next || i == histBuckets-1 {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return 0
}

// Mean returns the arithmetic mean of observed values.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry holds named metrics. Metric constructors are get-or-create and
// safe for concurrent use; the returned handles are the hot-path objects —
// look them up once, not per event.
//
// Series names follow the Prometheus data model: a bare name
// ("lsm_flush_queue") or a name with labels (`op_latency_ns{op="get"}`).
// The exposition layer splits the label block when it needs to inject the
// histogram "le" label.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// Name composes a series name from a base and alternating label key/value
// pairs: Name("op_latency_ns", "op", "get") → `op_latency_ns{op="get"}`.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a series name into its base and label block (without
// braces). A name without labels returns an empty label block.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: f is invoked at snapshot/export
// time. f must be safe to call from any goroutine. Re-registering a name
// replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric. Callback gauges are evaluated; a callback
// returning NaN is recorded as 0.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	// Values are read outside the registry lock: callback gauges may take
	// component locks of their own (the LSM level gauges take db.mu).
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		snap.Gauges[k] = float64(g.Load())
	}
	for k, f := range funcs {
		v := f()
		if math.IsNaN(v) {
			v = 0
		}
		snap.Gauges[k] = v
	}
	for k, h := range hists {
		snap.Histograms[k] = h.snapshot()
	}
	return snap
}

// sortedKeys returns map keys in lexical order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
