package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket series with power-of-two "le" bounds plus _sum and
// _count. Output is sorted by series name so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	typed := map[string]bool{} // base names whose # TYPE line was emitted

	emitType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range sortedKeys(snap.Counters) {
		base, _ := splitName(name)
		if err := emitType(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		base, _ := splitName(name)
		if err := emitType(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name,
			strconv.FormatFloat(snap.Gauges[name], 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		base, labels := splitName(name)
		if err := emitType(base, "histogram"); err != nil {
			return err
		}
		if err := writeHistogram(w, base, labels, snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram's _bucket/_sum/_count series. Buckets
// are cumulative per the exposition format; empty high buckets past the
// last populated one collapse into +Inf.
func writeHistogram(w io.Writer, base, labels string, h HistogramSnapshot) error {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le=%q}`, base, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le=%q}`, base, labels, le)
	}
	suffix := func(s string) string {
		if labels == "" {
			return base + s
		}
		return base + s + "{" + labels + "}"
	}
	top := 0
	for i, n := range h.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		_, hi := bucketBounds(i)
		if _, err := fmt.Fprintf(w, "%s %d\n",
			withLE(strconv.FormatFloat(hi, 'f', -1, 64)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", suffix("_sum"), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffix("_count"), h.Count)
	return err
}

// Handler returns an http.Handler serving the registry at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns the full diagnostics mux: Prometheus text at /metrics and the
// standard net/http/pprof surface at /debug/pprof/.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the diagnostics server on addr in a background goroutine and
// returns the bound listener address (useful with a ":0" port). The server
// lives until the process exits; tools expose it behind a -metrics-addr
// flag, so its lifetime is the tool's lifetime by design.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Mux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// FormatQuantiles renders a compact "p50=… p90=… p99=… p999=…" summary of a
// histogram snapshot, for progress lines and run summaries.
func FormatQuantiles(h HistogramSnapshot) string {
	if h.Count == 0 {
		return "no samples"
	}
	var b strings.Builder
	for _, q := range []struct {
		label string
		q     float64
	}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999}} {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", q.label, formatNanos(h.Quantile(q.q)))
	}
	return b.String()
}

// formatNanos renders a nanosecond quantity with a human unit.
func formatNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
