// Package rawdb defines Geth's key-value storage schema: the prefix layout
// that assigns every stored pair to one of the 29 classes the paper
// analyzes, typed accessors over a kv.Store, and the freezer database for
// finalized block segments.
package rawdb

import "encoding/binary"

// Class identifies the storage class of a KV pair, mirroring Table I of the
// paper. Classification is a pure function of the key (Classify).
type Class int

// The 29 classes observed in Geth's workload, plus ClassUnknown for keys
// outside the schema.
const (
	ClassUnknown Class = iota

	// Dominant classes (>99% of pairs).
	ClassTrieNodeStorage // storage-trie nodes, path-based keys
	ClassSnapshotStorage // flat contract storage snapshot
	ClassTxLookup        // transaction hash -> block number index
	ClassTrieNodeAccount // account-trie nodes, path-based keys
	ClassSnapshotAccount // flat account snapshot

	// Blockchain-related classes.
	ClassHeaderNumber   // block hash -> number
	ClassBloomBits      // log-search bloom filter sections
	ClassCode           // contract bytecode by code hash
	ClassSkeletonHeader // skeleton sync headers
	ClassBlockHeader    // headers + canonical-hash keys
	ClassBlockReceipts  // per-block receipt lists
	ClassBlockBody      // per-block transaction lists
	ClassStateID        // state root -> state id
	ClassBloomBitsIndex // chain-indexer progress rows

	// Singleton system-maintenance classes.
	ClassEthereumGenesis
	ClassSnapshotJournal
	ClassEthereumConfig
	ClassLastStateID
	ClassUncleanShutdown
	ClassSnapshotGenerator
	ClassTrieJournal
	ClassDatabaseVersion
	ClassLastBlock
	ClassSnapshotRoot
	ClassSkeletonSyncStatus
	ClassLastHeader
	ClassSnapshotRecovery
	ClassTransactionIndexTail
	ClassLastFast

	// NumClasses is the count of real classes (excluding ClassUnknown).
	NumClasses = int(ClassLastFast)
)

// classNames maps classes to the names used in the paper's tables.
var classNames = [...]string{
	ClassUnknown:              "Unknown",
	ClassTrieNodeStorage:      "TrieNodeStorage",
	ClassSnapshotStorage:      "SnapshotStorage",
	ClassTxLookup:             "TxLookup",
	ClassTrieNodeAccount:      "TrieNodeAccount",
	ClassSnapshotAccount:      "SnapshotAccount",
	ClassHeaderNumber:         "HeaderNumber",
	ClassBloomBits:            "BloomBits",
	ClassCode:                 "Code",
	ClassSkeletonHeader:       "SkeletonHeader",
	ClassBlockHeader:          "BlockHeader",
	ClassBlockReceipts:        "BlockReceipts",
	ClassBlockBody:            "BlockBody",
	ClassStateID:              "StateID",
	ClassBloomBitsIndex:       "BloomBitsIndex",
	ClassEthereumGenesis:      "Ethereum-genesis",
	ClassSnapshotJournal:      "SnapshotJournal",
	ClassEthereumConfig:       "Ethereum-config",
	ClassLastStateID:          "LastStateID",
	ClassUncleanShutdown:      "Unclean-shutdown",
	ClassSnapshotGenerator:    "SnapshotGenerator",
	ClassTrieJournal:          "TrieJournal",
	ClassDatabaseVersion:      "DatabaseVersion",
	ClassLastBlock:            "LastBlock",
	ClassSnapshotRoot:         "SnapshotRoot",
	ClassSkeletonSyncStatus:   "SkeletonSyncStatus",
	ClassLastHeader:           "LastHeader",
	ClassSnapshotRecovery:     "SnapshotRecovery",
	ClassLastFast:             "LastFast",
	ClassTransactionIndexTail: "TransactionIndexTail",
}

// String returns the paper's name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "Invalid"
}

// AllClasses lists every real class in Table I order.
func AllClasses() []Class {
	out := make([]Class, 0, NumClasses)
	for c := ClassTrieNodeStorage; c <= ClassLastFast; c++ {
		out = append(out, c)
	}
	return out
}

// Key prefixes, following go-ethereum's core/rawdb/schema.go.
var (
	headerPrefix          = []byte("h")  // h + num + hash -> header
	headerHashSuffix      = []byte("n")  // h + num + n -> canonical hash
	headerNumberPrefix    = []byte("H")  // H + hash -> num
	blockBodyPrefix       = []byte("b")  // b + num + hash -> body
	blockReceiptsPrefix   = []byte("r")  // r + num + hash -> receipts
	txLookupPrefix        = []byte("l")  // l + txhash -> block number
	bloomBitsPrefix       = []byte("B")  // B + bit + section + hash -> bits
	codePrefix            = []byte("c")  // c + codehash -> bytecode
	skeletonHeaderPrefix  = []byte("S")  // S + num -> header
	trieNodeAccountPrefix = []byte("A")  // A + path -> account trie node
	trieNodeStoragePrefix = []byte("O")  // O + owner + path -> storage trie node
	snapshotAccountPrefix = []byte("a")  // a + accounthash -> flat account
	snapshotStoragePrefix = []byte("o")  // o + accounthash + slothash -> flat slot
	stateIDPrefix         = []byte("L")  // L + stateroot -> state id
	bloomBitsIndexPrefix  = []byte("iB") // iB + row -> indexer progress

	// Singleton keys (sizes chosen to match Table I exactly).
	genesisPrefix           = []byte("ethereum-genesis-") // + hash (49 bytes)
	configPrefix            = []byte("ethereum-config-")  // + hash (48 bytes)
	snapshotJournalKey      = []byte("SnapshotJournal")
	lastStateIDKey          = []byte("LastStateID")
	uncleanShutdownKey      = []byte("unclean-shutdown")
	snapshotGeneratorKey    = []byte("SnapshotGenerator")
	trieJournalKey          = []byte("TrieJournal")
	databaseVersionKey      = []byte("DatabaseVersion")
	lastBlockKey            = []byte("LastBlock")
	snapshotRootKey         = []byte("SnapshotRoot")
	skeletonSyncStatusKey   = []byte("SkeletonSyncStatus")
	lastHeaderKey           = []byte("LastHeader")
	snapshotRecoveryKey     = []byte("SnapshotRecovery")
	transactionIndexTailKey = []byte("TransactionIndexTail")
	lastFastKey             = []byte("LastFast")
)

// Hash is the 32-byte hash type used throughout the schema.
type Hash = [32]byte

// encodeNumber renders a block number big-endian, as Geth does, so numeric
// key order matches lexicographic order.
func encodeNumber(number uint64) []byte {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], number)
	return enc[:]
}

// HeaderKey = h + num + hash.
func HeaderKey(number uint64, hash Hash) []byte {
	return append(append(append([]byte{}, headerPrefix...), encodeNumber(number)...), hash[:]...)
}

// CanonicalHashKey = h + num + 'n'. Classified as BlockHeader (this mix is
// why the paper reports a 31-byte average key for that class).
func CanonicalHashKey(number uint64) []byte {
	return append(append(append([]byte{}, headerPrefix...), encodeNumber(number)...), headerHashSuffix...)
}

// HeaderNumberKey = H + hash.
func HeaderNumberKey(hash Hash) []byte {
	return append(append([]byte{}, headerNumberPrefix...), hash[:]...)
}

// BlockBodyKey = b + num + hash.
func BlockBodyKey(number uint64, hash Hash) []byte {
	return append(append(append([]byte{}, blockBodyPrefix...), encodeNumber(number)...), hash[:]...)
}

// BlockReceiptsKey = r + num + hash.
func BlockReceiptsKey(number uint64, hash Hash) []byte {
	return append(append(append([]byte{}, blockReceiptsPrefix...), encodeNumber(number)...), hash[:]...)
}

// TxLookupKey = l + txhash.
func TxLookupKey(txHash Hash) []byte {
	return append(append([]byte{}, txLookupPrefix...), txHash[:]...)
}

// BloomBitsKey = B + bit(2) + section(8) + headHash.
func BloomBitsKey(bit uint16, section uint64, head Hash) []byte {
	key := make([]byte, 0, 43)
	key = append(key, bloomBitsPrefix...)
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], bit)
	key = append(key, b2[:]...)
	key = append(key, encodeNumber(section)...)
	return append(key, head[:]...)
}

// CodeKey = c + codehash.
func CodeKey(codeHash Hash) []byte {
	return append(append([]byte{}, codePrefix...), codeHash[:]...)
}

// SkeletonHeaderKey = S + num.
func SkeletonHeaderKey(number uint64) []byte {
	return append(append([]byte{}, skeletonHeaderPrefix...), encodeNumber(number)...)
}

// AccountTrieNodeKey = A + path.
func AccountTrieNodeKey(path []byte) []byte {
	return append(append([]byte{}, trieNodeAccountPrefix...), path...)
}

// StorageTrieNodeKey = O + owner + path.
func StorageTrieNodeKey(owner Hash, path []byte) []byte {
	return append(append(append([]byte{}, trieNodeStoragePrefix...), owner[:]...), path...)
}

// SnapshotAccountKey = a + accountHash.
func SnapshotAccountKey(accountHash Hash) []byte {
	return append(append([]byte{}, snapshotAccountPrefix...), accountHash[:]...)
}

// SnapshotStorageKey = o + accountHash + slotHash.
func SnapshotStorageKey(accountHash, slotHash Hash) []byte {
	return append(append(append([]byte{}, snapshotStoragePrefix...), accountHash[:]...), slotHash[:]...)
}

// SnapshotStoragePrefix = o + accountHash, the scan prefix for one
// account's slots.
func SnapshotStoragePrefix(accountHash Hash) []byte {
	return append(append([]byte{}, snapshotStoragePrefix...), accountHash[:]...)
}

// StateIDKey = L + root.
func StateIDKey(root Hash) []byte {
	return append(append([]byte{}, stateIDPrefix...), root[:]...)
}

// BloomBitsIndexKey = iB + row. Row names vary ("count", "shead", section
// markers), giving the class its variable key size.
func BloomBitsIndexKey(row []byte) []byte {
	return append(append([]byte{}, bloomBitsIndexPrefix...), row...)
}

// GenesisKey = ethereum-genesis- + hash.
func GenesisKey(hash Hash) []byte {
	return append(append([]byte{}, genesisPrefix...), hash[:]...)
}

// ConfigKey = ethereum-config- + hash.
func ConfigKey(hash Hash) []byte {
	return append(append([]byte{}, configPrefix...), hash[:]...)
}

// Singleton key accessors.
func SnapshotJournalKey() []byte      { return append([]byte{}, snapshotJournalKey...) }
func LastStateIDKey() []byte          { return append([]byte{}, lastStateIDKey...) }
func UncleanShutdownKey() []byte      { return append([]byte{}, uncleanShutdownKey...) }
func SnapshotGeneratorKey() []byte    { return append([]byte{}, snapshotGeneratorKey...) }
func TrieJournalKey() []byte          { return append([]byte{}, trieJournalKey...) }
func DatabaseVersionKey() []byte      { return append([]byte{}, databaseVersionKey...) }
func LastBlockKey() []byte            { return append([]byte{}, lastBlockKey...) }
func SnapshotRootKey() []byte         { return append([]byte{}, snapshotRootKey...) }
func SkeletonSyncStatusKey() []byte   { return append([]byte{}, skeletonSyncStatusKey...) }
func LastHeaderKey() []byte           { return append([]byte{}, lastHeaderKey...) }
func SnapshotRecoveryKey() []byte     { return append([]byte{}, snapshotRecoveryKey...) }
func TransactionIndexTailKey() []byte { return append([]byte{}, transactionIndexTailKey...) }
func LastFastKey() []byte             { return append([]byte{}, lastFastKey...) }
