package rawdb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ethkv/internal/kv"
)

func h(b byte) Hash {
	var out Hash
	for i := range out {
		out[i] = b
	}
	return out
}

func TestClassifyAllKeyConstructors(t *testing.T) {
	hash := h(0xaa)
	owner := h(0xbb)
	tests := []struct {
		key  []byte
		want Class
	}{
		{HeaderKey(123, hash), ClassBlockHeader},
		{CanonicalHashKey(123), ClassBlockHeader},
		{HeaderNumberKey(hash), ClassHeaderNumber},
		{BlockBodyKey(123, hash), ClassBlockBody},
		{BlockReceiptsKey(123, hash), ClassBlockReceipts},
		{TxLookupKey(hash), ClassTxLookup},
		{BloomBitsKey(7, 3, hash), ClassBloomBits},
		{CodeKey(hash), ClassCode},
		{SkeletonHeaderKey(9), ClassSkeletonHeader},
		{AccountTrieNodeKey([]byte{1, 2, 3}), ClassTrieNodeAccount},
		{AccountTrieNodeKey(nil), ClassTrieNodeAccount},
		{StorageTrieNodeKey(owner, []byte{4, 5}), ClassTrieNodeStorage},
		{SnapshotAccountKey(hash), ClassSnapshotAccount},
		{SnapshotStorageKey(hash, owner), ClassSnapshotStorage},
		{StateIDKey(hash), ClassStateID},
		{BloomBitsIndexKey([]byte("count")), ClassBloomBitsIndex},
		{GenesisKey(hash), ClassEthereumGenesis},
		{ConfigKey(hash), ClassEthereumConfig},
		{SnapshotJournalKey(), ClassSnapshotJournal},
		{LastStateIDKey(), ClassLastStateID},
		{UncleanShutdownKey(), ClassUncleanShutdown},
		{SnapshotGeneratorKey(), ClassSnapshotGenerator},
		{TrieJournalKey(), ClassTrieJournal},
		{DatabaseVersionKey(), ClassDatabaseVersion},
		{LastBlockKey(), ClassLastBlock},
		{SnapshotRootKey(), ClassSnapshotRoot},
		{SkeletonSyncStatusKey(), ClassSkeletonSyncStatus},
		{LastHeaderKey(), ClassLastHeader},
		{SnapshotRecoveryKey(), ClassSnapshotRecovery},
		{TransactionIndexTailKey(), ClassTransactionIndexTail},
		{LastFastKey(), ClassLastFast},
	}
	for _, tc := range tests {
		if got := Classify(tc.key); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
}

// TestClassifyKeySizesMatchPaper pins the key sizes Table I reports for the
// fixed-size classes.
func TestClassifyKeySizesMatchPaper(t *testing.T) {
	hash := h(1)
	sizes := []struct {
		name string
		key  []byte
		want int
	}{
		{"SnapshotStorage", SnapshotStorageKey(hash, hash), 65},
		{"TxLookup", TxLookupKey(hash), 33},
		{"SnapshotAccount", SnapshotAccountKey(hash), 33},
		{"HeaderNumber", HeaderNumberKey(hash), 33},
		{"BloomBits", BloomBitsKey(0, 0, hash), 43},
		{"Code", CodeKey(hash), 33},
		{"SkeletonHeader", SkeletonHeaderKey(1), 9},
		{"BlockReceipts", BlockReceiptsKey(1, hash), 41},
		{"BlockBody", BlockBodyKey(1, hash), 41},
		{"StateID", StateIDKey(hash), 33},
		{"Ethereum-genesis", GenesisKey(hash), 49},
		{"SnapshotJournal", SnapshotJournalKey(), 15},
		{"Ethereum-config", ConfigKey(hash), 48},
		{"LastStateID", LastStateIDKey(), 11},
		{"Unclean-shutdown", UncleanShutdownKey(), 16},
		{"SnapshotGenerator", SnapshotGeneratorKey(), 17},
		{"TrieJournal", TrieJournalKey(), 11},
		{"DatabaseVersion", DatabaseVersionKey(), 15},
		{"LastBlock", LastBlockKey(), 9},
		{"SnapshotRoot", SnapshotRootKey(), 12},
		{"SkeletonSyncStatus", SkeletonSyncStatusKey(), 18},
		{"LastHeader", LastHeaderKey(), 10},
		{"SnapshotRecovery", SnapshotRecoveryKey(), 16},
		{"TransactionIndexTail", TransactionIndexTailKey(), 20},
		{"LastFast", LastFastKey(), 8},
	}
	for _, tc := range sizes {
		if len(tc.key) != tc.want {
			t.Errorf("%s key size = %d, want %d (Table I)", tc.name, len(tc.key), tc.want)
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	for _, key := range [][]byte{nil, []byte("x"), []byte("zzzz"), make([]byte, 100)} {
		if got := Classify(key); got != ClassUnknown {
			t.Errorf("Classify(%x) = %v, want Unknown", key, got)
		}
	}
	// Prefix bytes with wrong lengths must not misclassify.
	if got := Classify([]byte("H")); got != ClassUnknown {
		t.Errorf("bare H = %v", got)
	}
	if got := Classify(append([]byte("l"), make([]byte, 10)...)); got != ClassUnknown {
		t.Errorf("short l key = %v", got)
	}
}

func TestAllClassesCount(t *testing.T) {
	classes := AllClasses()
	if len(classes) != 29 {
		t.Fatalf("AllClasses returned %d classes, want 29 (Table I)", len(classes))
	}
	if NumClasses != 29 {
		t.Fatalf("NumClasses = %d, want 29", NumClasses)
	}
	seen := map[string]bool{}
	for _, c := range classes {
		name := c.String()
		if name == "Unknown" || name == "Invalid" {
			t.Errorf("class %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate class name %s", name)
		}
		seen[name] = true
	}
}

func TestClassPredicates(t *testing.T) {
	worldState := 0
	singletons := 0
	for _, c := range AllClasses() {
		if c.IsWorldState() {
			worldState++
		}
		if c.IsSingleton() {
			singletons++
		}
	}
	if worldState != 4 {
		t.Errorf("%d world-state classes, want 4", worldState)
	}
	if singletons != 15 {
		t.Errorf("%d singleton classes, want 15 (Finding 1)", singletons)
	}
	if !ClassSnapshotAccount.IsSnapshot() || ClassTrieNodeAccount.IsSnapshot() {
		t.Error("IsSnapshot misassigned")
	}
}

// TestClassifyTotalityProperty: Classify never panics and constructor keys
// always classify to a real class.
func TestClassifyTotalityProperty(t *testing.T) {
	f := func(key []byte) bool {
		_ = Classify(key) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsRoundTrip(t *testing.T) {
	store := kv.NewMemStore()
	defer store.Close()
	hash := h(3)

	if err := WriteHeader(store, 7, hash, []byte("header")); err != nil {
		t.Fatal(err)
	}
	if v, err := ReadHeader(store, 7, hash); err != nil || string(v) != "header" {
		t.Fatalf("header: %q, %v", v, err)
	}
	if err := DeleteHeader(store, 7, hash); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(store, 7, hash); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("header survived delete")
	}

	WriteCanonicalHash(store, 7, hash)
	if got, err := ReadCanonicalHash(store, 7); err != nil || got != hash {
		t.Fatalf("canonical hash: %x, %v", got, err)
	}

	WriteHeaderNumber(store, hash, 7)
	if n, err := ReadHeaderNumber(store, hash); err != nil || n != 7 {
		t.Fatalf("header number: %d, %v", n, err)
	}

	WriteBody(store, 7, hash, []byte("body"))
	if v, _ := ReadBody(store, 7, hash); string(v) != "body" {
		t.Fatal("body")
	}
	WriteReceipts(store, 7, hash, []byte("rcpts"))
	if v, _ := ReadReceipts(store, 7, hash); string(v) != "rcpts" {
		t.Fatal("receipts")
	}

	WriteTxLookup(store, hash, 20500000)
	if n, err := ReadTxLookup(store, hash); err != nil || n != 20500000 {
		t.Fatalf("tx lookup: %d, %v", n, err)
	}
	// Table I: TxLookup values are 4 bytes at current block heights.
	if v, _ := store.Get(TxLookupKey(hash)); len(v) != 4 {
		t.Fatalf("tx lookup value size = %d, want 4", len(v))
	}

	WriteCode(store, hash, []byte{0x60, 0x80})
	if v, _ := ReadCode(store, hash); !bytes.Equal(v, []byte{0x60, 0x80}) {
		t.Fatal("code")
	}

	WriteStateID(store, hash, 99)
	if id, err := ReadStateID(store, hash); err != nil || id != 99 {
		t.Fatalf("state id: %d, %v", id, err)
	}

	WriteSnapshotAccount(store, hash, []byte("acct"))
	if v, _ := ReadSnapshotAccount(store, hash); string(v) != "acct" {
		t.Fatal("snapshot account")
	}
	WriteSnapshotStorage(store, hash, h(4), []byte("slot"))
	if v, _ := ReadSnapshotStorage(store, hash, h(4)); string(v) != "slot" {
		t.Fatal("snapshot storage")
	}

	WriteAccountTrieNode(store, []byte{1, 2}, []byte("anode"))
	if v, _ := ReadAccountTrieNode(store, []byte{1, 2}); string(v) != "anode" {
		t.Fatal("account trie node")
	}
	WriteStorageTrieNode(store, hash, []byte{3}, []byte("snode"))
	if v, _ := ReadStorageTrieNode(store, hash, []byte{3}); string(v) != "snode" {
		t.Fatal("storage trie node")
	}

	WriteHeadBlockHash(store, hash)
	if got, _ := ReadHeadBlockHash(store); got != hash {
		t.Fatal("head block hash")
	}
	WriteLastStateID(store, 12)
	if id, _ := ReadLastStateID(store); id != 12 {
		t.Fatal("last state id")
	}
	WriteTxIndexTail(store, 20000000)
	if n, _ := ReadTxIndexTail(store); n != 20000000 {
		t.Fatal("tx index tail")
	}
}

func TestFreezerAppendRead(t *testing.T) {
	f, err := OpenFreezer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := uint64(0); i < 100; i++ {
		blob := []byte(fmt.Sprintf("header-%d", i))
		if err := f.Append(FreezerHeaders, i, blob); err != nil {
			t.Fatal(err)
		}
	}
	if f.Ancients() != 100 {
		t.Fatalf("Ancients = %d", f.Ancients())
	}
	for i := uint64(0); i < 100; i++ {
		blob, err := f.Ancient(FreezerHeaders, i)
		if err != nil || string(blob) != fmt.Sprintf("header-%d", i) {
			t.Fatalf("Ancient(%d) = %q, %v", i, blob, err)
		}
	}
	if _, err := f.Ancient(FreezerHeaders, 100); !errors.Is(err, ErrAncientNotFound) {
		t.Fatalf("out-of-range read: %v", err)
	}
}

func TestFreezerOutOfOrder(t *testing.T) {
	f, err := OpenFreezer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Append(FreezerHeaders, 5, []byte("five"))
	if err := f.Append(FreezerHeaders, 7, []byte("seven")); err == nil {
		t.Fatal("non-contiguous append accepted")
	}
	if err := f.Append(FreezerHeaders, 6, []byte("six")); err != nil {
		t.Fatalf("contiguous append rejected: %v", err)
	}
	if f.Tail() != 5 {
		t.Fatalf("Tail = %d, want 5", f.Tail())
	}
}

func TestFreezerReopen(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFreezer(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(10); i < 20; i++ {
		f.Append(FreezerBodies, i, []byte(fmt.Sprintf("body-%d", i)))
		f.Append(FreezerHeaders, i, []byte(fmt.Sprintf("hdr-%d", i)))
	}
	f.Close()

	f2, err := OpenFreezer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Ancients() != 20 || f2.Tail() != 10 {
		t.Fatalf("Ancients = %d, Tail = %d", f2.Ancients(), f2.Tail())
	}
	blob, err := f2.Ancient(FreezerBodies, 15)
	if err != nil || string(blob) != "body-15" {
		t.Fatalf("reopen read: %q, %v", blob, err)
	}
	// Continue appending at the head.
	if err := f2.Append(FreezerBodies, 20, []byte("body-20")); err != nil {
		t.Fatal(err)
	}
	if f2.SizeBytes() == 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestFreezerUnknownKind(t *testing.T) {
	f, err := OpenFreezer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Append("nonsense", 0, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := f.Ancient("nonsense", 0); err == nil {
		t.Fatal("unknown kind read accepted")
	}
}

func TestFreezerTruncateTail(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFreezer(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(100); i < 200; i++ {
		for _, kind := range []string{FreezerHeaders, FreezerBodies, FreezerReceipts, FreezerHashes} {
			if err := f.Append(kind, i, []byte(fmt.Sprintf("%s-%d", kind, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Prune history below 150 (EIP-4444 style).
	if err := f.TruncateTail(150); err != nil {
		t.Fatal(err)
	}
	if f.Tail() != 150 || f.Ancients() != 200 {
		t.Fatalf("Tail=%d Ancients=%d", f.Tail(), f.Ancients())
	}
	if _, err := f.Ancient(FreezerHeaders, 149); !errors.Is(err, ErrAncientNotFound) {
		t.Fatalf("pruned item readable: %v", err)
	}
	for i := uint64(150); i < 200; i++ {
		blob, err := f.Ancient(FreezerBodies, i)
		if err != nil || string(blob) != fmt.Sprintf("bodies-%d", i) {
			t.Fatalf("survivor %d: %q, %v", i, blob, err)
		}
	}
	// Idempotent: truncating below the tail is a no-op.
	if err := f.TruncateTail(120); err != nil {
		t.Fatal(err)
	}
	if f.Tail() != 150 {
		t.Fatalf("tail moved backwards: %d", f.Tail())
	}
	// Appends continue at the head.
	if err := f.Append(FreezerHeaders, 200, []byte("headers-200")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Survives reopen.
	f2, err := OpenFreezer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Tail() != 150 {
		t.Fatalf("tail after reopen = %d", f2.Tail())
	}
	if blob, err := f2.Ancient(FreezerHeaders, 175); err != nil || string(blob) != "headers-175" {
		t.Fatalf("reopen read: %q, %v", blob, err)
	}
}

func TestFreezerTruncateTailAll(t *testing.T) {
	f, err := OpenFreezer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := uint64(0); i < 10; i++ {
		f.Append(FreezerHeaders, i, []byte("h"))
	}
	// Prune everything.
	if err := f.TruncateTail(10); err != nil {
		t.Fatal(err)
	}
	if f.Ancients() != 0 {
		t.Fatalf("Ancients = %d after full prune", f.Ancients())
	}
	// The table accepts a fresh history afterwards.
	if err := f.Append(FreezerHeaders, 10, []byte("h10")); err != nil {
		t.Fatal(err)
	}
	if blob, err := f.Ancient(FreezerHeaders, 10); err != nil || string(blob) != "h10" {
		t.Fatalf("append after full prune: %q, %v", blob, err)
	}
}
