package rawdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Freezer is the ancient-data store: once blocks pass the finality
// threshold, their headers, bodies, receipts, and canonical hashes migrate
// out of the KV store into immutable append-only flat files — the mechanism
// behind the high BlockHeader/TxLookup deletion rates in Finding 5.
//
// Each kind is one table: a data file of concatenated blobs plus an index
// of (offset, length) rows. Items are keyed by block number and must append
// in order, starting at the table's tail.
type Freezer struct {
	mu     sync.RWMutex
	dir    string
	tables map[string]*freezerTable
	closed bool
}

// The freezer table kinds, matching Geth's ancient store.
const (
	FreezerHeaders  = "headers"
	FreezerBodies   = "bodies"
	FreezerReceipts = "receipts"
	FreezerHashes   = "hashes"
)

// freezerKinds lists every table a Freezer maintains.
var freezerKinds = []string{FreezerHeaders, FreezerBodies, FreezerReceipts, FreezerHashes}

// ErrAncientNotFound is returned for out-of-range ancient reads.
var ErrAncientNotFound = errors.New("rawdb: ancient item not found")

// errOutOfOrder rejects non-contiguous appends.
var errOutOfOrder = errors.New("rawdb: ancient append out of order")

// freezerTable is one kind's data+index pair.
type freezerTable struct {
	data    *os.File
	index   *os.File
	items   uint64 // number of items stored
	first   uint64 // first item number (tail after pruning)
	dataLen int64
}

// OpenFreezer creates or reopens a freezer in dir.
func OpenFreezer(dir string) (*Freezer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f := &Freezer{dir: dir, tables: make(map[string]*freezerTable)}
	for _, kind := range freezerKinds {
		t, err := openFreezerTable(dir, kind)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.tables[kind] = t
	}
	return f, nil
}

// openFreezerTable opens one table, recovering item count from the index.
func openFreezerTable(dir, kind string) (*freezerTable, error) {
	data, err := os.OpenFile(filepath.Join(dir, kind+".dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	index, err := os.OpenFile(filepath.Join(dir, kind+".idx"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		data.Close()
		return nil, err
	}
	ist, err := index.Stat()
	if err != nil {
		data.Close()
		index.Close()
		return nil, err
	}
	dst, err := data.Stat()
	if err != nil {
		data.Close()
		index.Close()
		return nil, err
	}
	t := &freezerTable{data: data, index: index, dataLen: dst.Size()}
	// Index rows are 24 bytes: item number | offset | length. The first row
	// defines the tail.
	rows := ist.Size() / 24
	t.items = uint64(rows)
	if rows > 0 {
		var row [24]byte
		if _, err := index.ReadAt(row[:], 0); err != nil {
			data.Close()
			index.Close()
			return nil, err
		}
		t.first = binary.BigEndian.Uint64(row[0:])
	}
	return t, nil
}

// Append stores item number num of the given kind. Appends must be
// contiguous: num must equal the current head.
func (f *Freezer) Append(kind string, num uint64, blob []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("rawdb: freezer closed")
	}
	t, ok := f.tables[kind]
	if !ok {
		return fmt.Errorf("rawdb: unknown freezer kind %q", kind)
	}
	if t.items > 0 && num != t.first+t.items {
		return fmt.Errorf("%w: have head %d, appending %d", errOutOfOrder, t.first+t.items, num)
	}
	if t.items == 0 {
		t.first = num
	}
	if _, err := t.data.WriteAt(blob, t.dataLen); err != nil {
		return err
	}
	var row [24]byte
	binary.BigEndian.PutUint64(row[0:], num)
	binary.BigEndian.PutUint64(row[8:], uint64(t.dataLen))
	binary.BigEndian.PutUint64(row[16:], uint64(len(blob)))
	if _, err := t.index.WriteAt(row[:], int64(t.items)*24); err != nil {
		return err
	}
	t.dataLen += int64(len(blob))
	t.items++
	return nil
}

// Ancient retrieves item num of the given kind.
func (f *Freezer) Ancient(kind string, num uint64) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, errors.New("rawdb: freezer closed")
	}
	t, ok := f.tables[kind]
	if !ok {
		return nil, fmt.Errorf("rawdb: unknown freezer kind %q", kind)
	}
	if t.items == 0 || num < t.first || num >= t.first+t.items {
		return nil, ErrAncientNotFound
	}
	var row [24]byte
	if _, err := t.index.ReadAt(row[:], int64(num-t.first)*24); err != nil {
		return nil, err
	}
	offset := binary.BigEndian.Uint64(row[8:])
	length := binary.BigEndian.Uint64(row[16:])
	blob := make([]byte, length)
	if _, err := t.data.ReadAt(blob, int64(offset)); err != nil {
		return nil, err
	}
	return blob, nil
}

// Ancients returns the head item number+1 of the headers table (the
// freezer's logical length, matching Geth's semantics).
func (f *Freezer) Ancients() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t := f.tables[FreezerHeaders]
	if t == nil || t.items == 0 {
		return 0
	}
	return t.first + t.items
}

// Tail returns the first retained item number of the headers table.
func (f *Freezer) Tail() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t := f.tables[FreezerHeaders]
	if t == nil {
		return 0
	}
	return t.first
}

// SizeBytes reports the total data bytes across tables.
func (f *Freezer) SizeBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, t := range f.tables {
		total += t.dataLen
	}
	return total
}

// TruncateTail drops every item below newTail from all tables — the
// EIP-4444 history-expiry operation the paper cites as Geth's proposed (not
// yet implemented) next step for bounding historical data. Data files are
// rewritten without the pruned prefix; the operation is idempotent.
func (f *Freezer) TruncateTail(newTail uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("rawdb: freezer closed")
	}
	for kind, t := range f.tables {
		if t.items == 0 || newTail <= t.first {
			continue
		}
		head := t.first + t.items
		if newTail >= head {
			// Everything pruned: reset the table.
			if err := t.reset(); err != nil {
				return fmt.Errorf("rawdb: truncating %s: %w", kind, err)
			}
			continue
		}
		if err := t.truncateTail(newTail); err != nil {
			return fmt.Errorf("rawdb: truncating %s: %w", kind, err)
		}
	}
	return nil
}

// reset empties a table.
func (t *freezerTable) reset() error {
	if err := t.data.Truncate(0); err != nil {
		return err
	}
	if err := t.index.Truncate(0); err != nil {
		return err
	}
	t.items, t.first, t.dataLen = 0, 0, 0
	return nil
}

// truncateTail rewrites the table without items below newTail.
func (t *freezerTable) truncateTail(newTail uint64) error {
	drop := newTail - t.first
	keep := t.items - drop
	// Read the first surviving index row to find the data cut point.
	var row [24]byte
	if _, err := t.index.ReadAt(row[:], int64(drop)*24); err != nil {
		return err
	}
	cutOffset := binary.BigEndian.Uint64(row[8:])

	// Rewrite data: copy the surviving suffix to the front.
	surviving := make([]byte, t.dataLen-int64(cutOffset))
	if _, err := t.data.ReadAt(surviving, int64(cutOffset)); err != nil {
		return err
	}
	if _, err := t.data.WriteAt(surviving, 0); err != nil {
		return err
	}
	if err := t.data.Truncate(int64(len(surviving))); err != nil {
		return err
	}
	// Rewrite index rows with shifted offsets.
	newIndex := make([]byte, keep*24)
	for i := uint64(0); i < keep; i++ {
		if _, err := t.index.ReadAt(row[:], int64(drop+i)*24); err != nil {
			return err
		}
		num := binary.BigEndian.Uint64(row[0:])
		off := binary.BigEndian.Uint64(row[8:]) - cutOffset
		length := binary.BigEndian.Uint64(row[16:])
		binary.BigEndian.PutUint64(newIndex[i*24:], num)
		binary.BigEndian.PutUint64(newIndex[i*24+8:], off)
		binary.BigEndian.PutUint64(newIndex[i*24+16:], length)
	}
	if _, err := t.index.WriteAt(newIndex, 0); err != nil {
		return err
	}
	if err := t.index.Truncate(int64(len(newIndex))); err != nil {
		return err
	}
	t.first = newTail
	t.items = keep
	t.dataLen = int64(len(surviving))
	return nil
}

// Close releases the table files.
func (f *Freezer) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	var firstErr error
	for _, t := range f.tables {
		if t == nil {
			continue
		}
		if err := t.data.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := t.index.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
