package rawdb

import (
	"encoding/binary"
	"errors"

	"ethkv/internal/kv"
)

// Typed accessors over a kv.Writer/Reader, following Geth's rawdb style:
// one Write/Read/Delete triple per record kind. Accessors take the narrow
// interface they need so both the raw store and write batches work.

// WriteHeader stores an encoded block header.
func WriteHeader(w kv.Writer, number uint64, hash Hash, encoded []byte) error {
	return w.Put(HeaderKey(number, hash), encoded)
}

// ReadHeader retrieves an encoded block header.
func ReadHeader(r kv.Reader, number uint64, hash Hash) ([]byte, error) {
	return r.Get(HeaderKey(number, hash))
}

// DeleteHeader removes a block header.
func DeleteHeader(w kv.Writer, number uint64, hash Hash) error {
	return w.Delete(HeaderKey(number, hash))
}

// WriteCanonicalHash maps a block number to its canonical hash.
func WriteCanonicalHash(w kv.Writer, number uint64, hash Hash) error {
	return w.Put(CanonicalHashKey(number), hash[:])
}

// ReadCanonicalHash returns the canonical hash at the given height.
func ReadCanonicalHash(r kv.Reader, number uint64) (Hash, error) {
	var h Hash
	v, err := r.Get(CanonicalHashKey(number))
	if err != nil {
		return h, err
	}
	copy(h[:], v)
	return h, nil
}

// DeleteCanonicalHash removes a canonical-hash mapping.
func DeleteCanonicalHash(w kv.Writer, number uint64) error {
	return w.Delete(CanonicalHashKey(number))
}

// WriteHeaderNumber stores the hash -> number mapping.
func WriteHeaderNumber(w kv.Writer, hash Hash, number uint64) error {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], number)
	return w.Put(HeaderNumberKey(hash), enc[:])
}

// ReadHeaderNumber returns the block number for a header hash.
func ReadHeaderNumber(r kv.Reader, hash Hash) (uint64, error) {
	v, err := r.Get(HeaderNumberKey(hash))
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, errors.New("rawdb: malformed header number entry")
	}
	return binary.BigEndian.Uint64(v), nil
}

// WriteBody stores an encoded block body.
func WriteBody(w kv.Writer, number uint64, hash Hash, encoded []byte) error {
	return w.Put(BlockBodyKey(number, hash), encoded)
}

// ReadBody retrieves an encoded block body.
func ReadBody(r kv.Reader, number uint64, hash Hash) ([]byte, error) {
	return r.Get(BlockBodyKey(number, hash))
}

// DeleteBody removes a block body.
func DeleteBody(w kv.Writer, number uint64, hash Hash) error {
	return w.Delete(BlockBodyKey(number, hash))
}

// WriteReceipts stores encoded block receipts.
func WriteReceipts(w kv.Writer, number uint64, hash Hash, encoded []byte) error {
	return w.Put(BlockReceiptsKey(number, hash), encoded)
}

// ReadReceipts retrieves encoded block receipts.
func ReadReceipts(r kv.Reader, number uint64, hash Hash) ([]byte, error) {
	return r.Get(BlockReceiptsKey(number, hash))
}

// DeleteReceipts removes block receipts.
func DeleteReceipts(w kv.Writer, number uint64, hash Hash) error {
	return w.Delete(BlockReceiptsKey(number, hash))
}

// WriteTxLookup indexes a transaction hash to its block number.
func WriteTxLookup(w kv.Writer, txHash Hash, number uint64) error {
	// Geth stores the number in minimal big-endian form; the paper's
	// Table I reports the resulting 4-byte values at current heights.
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], number)
	i := 0
	for i < 7 && enc[i] == 0 {
		i++
	}
	return w.Put(TxLookupKey(txHash), enc[i:])
}

// ReadTxLookup returns the block number indexed for a transaction.
func ReadTxLookup(r kv.Reader, txHash Hash) (uint64, error) {
	v, err := r.Get(TxLookupKey(txHash))
	if err != nil {
		return 0, err
	}
	if len(v) > 8 {
		return 0, errors.New("rawdb: malformed tx lookup entry")
	}
	var num uint64
	for _, b := range v {
		num = num<<8 | uint64(b)
	}
	return num, nil
}

// DeleteTxLookup removes a transaction index entry.
func DeleteTxLookup(w kv.Writer, txHash Hash) error {
	return w.Delete(TxLookupKey(txHash))
}

// WriteCode stores contract bytecode by its hash.
func WriteCode(w kv.Writer, codeHash Hash, code []byte) error {
	return w.Put(CodeKey(codeHash), code)
}

// ReadCode retrieves contract bytecode.
func ReadCode(r kv.Reader, codeHash Hash) ([]byte, error) {
	return r.Get(CodeKey(codeHash))
}

// WriteBloomBits stores one bloom filter section.
func WriteBloomBits(w kv.Writer, bit uint16, section uint64, head Hash, bits []byte) error {
	return w.Put(BloomBitsKey(bit, section, head), bits)
}

// ReadBloomBits retrieves one bloom filter section.
func ReadBloomBits(r kv.Reader, bit uint16, section uint64, head Hash) ([]byte, error) {
	return r.Get(BloomBitsKey(bit, section, head))
}

// WriteSkeletonHeader stores a skeleton-sync header.
func WriteSkeletonHeader(w kv.Writer, number uint64, encoded []byte) error {
	return w.Put(SkeletonHeaderKey(number), encoded)
}

// ReadSkeletonHeader retrieves a skeleton-sync header.
func ReadSkeletonHeader(r kv.Reader, number uint64) ([]byte, error) {
	return r.Get(SkeletonHeaderKey(number))
}

// DeleteSkeletonHeader removes a skeleton-sync header.
func DeleteSkeletonHeader(w kv.Writer, number uint64) error {
	return w.Delete(SkeletonHeaderKey(number))
}

// WriteAccountTrieNode stores an account-trie node at a path.
func WriteAccountTrieNode(w kv.Writer, path []byte, blob []byte) error {
	return w.Put(AccountTrieNodeKey(path), blob)
}

// ReadAccountTrieNode retrieves an account-trie node.
func ReadAccountTrieNode(r kv.Reader, path []byte) ([]byte, error) {
	return r.Get(AccountTrieNodeKey(path))
}

// DeleteAccountTrieNode removes an account-trie node.
func DeleteAccountTrieNode(w kv.Writer, path []byte) error {
	return w.Delete(AccountTrieNodeKey(path))
}

// WriteStorageTrieNode stores a storage-trie node.
func WriteStorageTrieNode(w kv.Writer, owner Hash, path []byte, blob []byte) error {
	return w.Put(StorageTrieNodeKey(owner, path), blob)
}

// ReadStorageTrieNode retrieves a storage-trie node.
func ReadStorageTrieNode(r kv.Reader, owner Hash, path []byte) ([]byte, error) {
	return r.Get(StorageTrieNodeKey(owner, path))
}

// DeleteStorageTrieNode removes a storage-trie node.
func DeleteStorageTrieNode(w kv.Writer, owner Hash, path []byte) error {
	return w.Delete(StorageTrieNodeKey(owner, path))
}

// WriteSnapshotAccount stores a flat account snapshot entry.
func WriteSnapshotAccount(w kv.Writer, accountHash Hash, data []byte) error {
	return w.Put(SnapshotAccountKey(accountHash), data)
}

// ReadSnapshotAccount retrieves a flat account snapshot entry.
func ReadSnapshotAccount(r kv.Reader, accountHash Hash) ([]byte, error) {
	return r.Get(SnapshotAccountKey(accountHash))
}

// DeleteSnapshotAccount removes a flat account snapshot entry.
func DeleteSnapshotAccount(w kv.Writer, accountHash Hash) error {
	return w.Delete(SnapshotAccountKey(accountHash))
}

// WriteSnapshotStorage stores a flat storage-slot snapshot entry.
func WriteSnapshotStorage(w kv.Writer, accountHash, slotHash Hash, data []byte) error {
	return w.Put(SnapshotStorageKey(accountHash, slotHash), data)
}

// ReadSnapshotStorage retrieves a flat storage-slot snapshot entry.
func ReadSnapshotStorage(r kv.Reader, accountHash, slotHash Hash) ([]byte, error) {
	return r.Get(SnapshotStorageKey(accountHash, slotHash))
}

// DeleteSnapshotStorage removes a flat storage-slot snapshot entry.
func DeleteSnapshotStorage(w kv.Writer, accountHash, slotHash Hash) error {
	return w.Delete(SnapshotStorageKey(accountHash, slotHash))
}

// WriteStateID maps a state root to its sequential id.
func WriteStateID(w kv.Writer, root Hash, id uint64) error {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], id)
	return w.Put(StateIDKey(root), enc[:])
}

// ReadStateID returns the id of a state root.
func ReadStateID(r kv.Reader, root Hash) (uint64, error) {
	v, err := r.Get(StateIDKey(root))
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, errors.New("rawdb: malformed state id entry")
	}
	return binary.BigEndian.Uint64(v), nil
}

// DeleteStateID removes a state-root id mapping.
func DeleteStateID(w kv.Writer, root Hash) error {
	return w.Delete(StateIDKey(root))
}

// WriteHeadBlockHash updates the LastBlock singleton.
func WriteHeadBlockHash(w kv.Writer, hash Hash) error {
	return w.Put(LastBlockKey(), hash[:])
}

// ReadHeadBlockHash reads the LastBlock singleton.
func ReadHeadBlockHash(r kv.Reader) (Hash, error) {
	var h Hash
	v, err := r.Get(LastBlockKey())
	if err != nil {
		return h, err
	}
	copy(h[:], v)
	return h, nil
}

// WriteHeadHeaderHash updates the LastHeader singleton.
func WriteHeadHeaderHash(w kv.Writer, hash Hash) error {
	return w.Put(LastHeaderKey(), hash[:])
}

// WriteHeadFastBlockHash updates the LastFast singleton.
func WriteHeadFastBlockHash(w kv.Writer, hash Hash) error {
	return w.Put(LastFastKey(), hash[:])
}

// WriteLastStateID updates the LastStateID singleton.
func WriteLastStateID(w kv.Writer, id uint64) error {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], id)
	return w.Put(LastStateIDKey(), enc[:])
}

// ReadLastStateID reads the LastStateID singleton.
func ReadLastStateID(r kv.Reader) (uint64, error) {
	v, err := r.Get(LastStateIDKey())
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(v), nil
}

// WriteTxIndexTail records the oldest block whose transactions are indexed.
func WriteTxIndexTail(w kv.Writer, number uint64) error {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], number)
	return w.Put(TransactionIndexTailKey(), enc[:])
}

// ReadTxIndexTail returns the oldest indexed block.
func ReadTxIndexTail(r kv.Reader) (uint64, error) {
	v, err := r.Get(TransactionIndexTailKey())
	if errors.Is(err, kv.ErrNotFound) {
		return 0, err
	}
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(v), nil
}
