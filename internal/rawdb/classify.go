package rawdb

import "bytes"

// Classify assigns a database key to its storage class. The decision mirrors
// the schema's prefix layout. Classification runs on every dispatched op
// (hybrid routing, class sharding, tracing), so the whole decision is one
// switch on the first byte: exact-match singleton keys only need comparing
// inside their own first-byte case — "LastBlock" can only collide with the
// 'L'-prefixed StateID space, never with 'h' headers — which leaves the hot
// prefix bytes ('A', 'O', 'a', 'o', 'h', ...) at a length check and no byte
// comparisons at all.
func Classify(key []byte) Class {
	if len(key) == 0 {
		return ClassUnknown
	}
	switch key[0] {
	case 'h':
		// h+num+hash (41), h+num+'n' (10), or the h+num scan prefix (9).
		if len(key) == 41 || (len(key) == 10 && key[9] == 'n') || len(key) == 9 {
			return ClassBlockHeader
		}
	case 'H':
		if len(key) == 33 {
			return ClassHeaderNumber
		}
	case 'b':
		if len(key) == 41 {
			return ClassBlockBody
		}
	case 'r':
		if len(key) == 41 {
			return ClassBlockReceipts
		}
	case 'l':
		if len(key) == 33 {
			return ClassTxLookup
		}
	case 'B':
		if len(key) == 43 {
			return ClassBloomBits
		}
	case 'c':
		if len(key) == 33 {
			return ClassCode
		}
	case 'A':
		// A + path; paths are at most 64 nibbles + terminator.
		if len(key) >= 1 && len(key) <= 66 {
			return ClassTrieNodeAccount
		}
	case 'O':
		if len(key) >= 33 && len(key) <= 98 {
			return ClassTrieNodeStorage
		}
	case 'a':
		// Full key (33) or the bare 'a' scan prefix over all accounts.
		if len(key) == 33 || len(key) == 1 {
			return ClassSnapshotAccount
		}
	case 'o':
		// Full key (65) or the o+accountHash scan prefix (33).
		if len(key) == 65 || len(key) == 33 {
			return ClassSnapshotStorage
		}
	case 'S':
		// Singletons before the skeleton-header prefix space.
		switch {
		case bytes.Equal(key, snapshotJournalKey):
			return ClassSnapshotJournal
		case bytes.Equal(key, snapshotGeneratorKey):
			return ClassSnapshotGenerator
		case bytes.Equal(key, snapshotRootKey):
			return ClassSnapshotRoot
		case bytes.Equal(key, skeletonSyncStatusKey):
			return ClassSkeletonSyncStatus
		case bytes.Equal(key, snapshotRecoveryKey):
			return ClassSnapshotRecovery
		}
		if len(key) == 9 {
			return ClassSkeletonHeader
		}
	case 'L':
		// Singletons before the state-id prefix space.
		switch {
		case bytes.Equal(key, lastStateIDKey):
			return ClassLastStateID
		case bytes.Equal(key, lastBlockKey):
			return ClassLastBlock
		case bytes.Equal(key, lastHeaderKey):
			return ClassLastHeader
		case bytes.Equal(key, lastFastKey):
			return ClassLastFast
		}
		if len(key) == 33 {
			return ClassStateID
		}
	case 'T':
		switch {
		case bytes.Equal(key, trieJournalKey):
			return ClassTrieJournal
		case bytes.Equal(key, transactionIndexTailKey):
			return ClassTransactionIndexTail
		}
	case 'D':
		if bytes.Equal(key, databaseVersionKey) {
			return ClassDatabaseVersion
		}
	case 'u':
		if bytes.Equal(key, uncleanShutdownKey) {
			return ClassUncleanShutdown
		}
	case 'e':
		switch {
		case bytes.HasPrefix(key, genesisPrefix):
			return ClassEthereumGenesis
		case bytes.HasPrefix(key, configPrefix):
			return ClassEthereumConfig
		}
	case 'i':
		if bytes.HasPrefix(key, bloomBitsIndexPrefix) {
			return ClassBloomBitsIndex
		}
	}
	return ClassUnknown
}

// IsWorldState reports whether the class holds world-state data (the four
// classes Findings 3, 6 and 7 track).
func (c Class) IsWorldState() bool {
	switch c {
	case ClassTrieNodeAccount, ClassTrieNodeStorage,
		ClassSnapshotAccount, ClassSnapshotStorage:
		return true
	}
	return false
}

// IsSingleton reports whether the class holds exactly one KV pair.
func (c Class) IsSingleton() bool {
	switch c {
	case ClassEthereumGenesis, ClassSnapshotJournal, ClassEthereumConfig,
		ClassLastStateID, ClassUncleanShutdown, ClassSnapshotGenerator,
		ClassTrieJournal, ClassDatabaseVersion, ClassLastBlock,
		ClassSnapshotRoot, ClassSkeletonSyncStatus, ClassLastHeader,
		ClassSnapshotRecovery, ClassTransactionIndexTail, ClassLastFast:
		return true
	}
	return false
}

// IsSnapshot reports whether the class belongs to snapshot acceleration.
func (c Class) IsSnapshot() bool {
	return c == ClassSnapshotAccount || c == ClassSnapshotStorage
}
