package rawdb

import "bytes"

// classKeyPrefixes maps each class to the byte prefix all of its keys share.
// For prefix-schema classes this is the schema prefix; for singleton classes
// it is the exact key (a key is trivially a prefix of itself).
var classKeyPrefixes = map[Class][]byte{
	ClassTrieNodeStorage:      trieNodeStoragePrefix,
	ClassSnapshotStorage:      snapshotStoragePrefix,
	ClassTxLookup:             txLookupPrefix,
	ClassTrieNodeAccount:      trieNodeAccountPrefix,
	ClassSnapshotAccount:      snapshotAccountPrefix,
	ClassHeaderNumber:         headerNumberPrefix,
	ClassBloomBits:            bloomBitsPrefix,
	ClassCode:                 codePrefix,
	ClassSkeletonHeader:       skeletonHeaderPrefix,
	ClassBlockHeader:          headerPrefix,
	ClassBlockReceipts:        blockReceiptsPrefix,
	ClassBlockBody:            blockBodyPrefix,
	ClassStateID:              stateIDPrefix,
	ClassBloomBitsIndex:       bloomBitsIndexPrefix,
	ClassEthereumGenesis:      genesisPrefix,
	ClassSnapshotJournal:      snapshotJournalKey,
	ClassEthereumConfig:       configPrefix,
	ClassLastStateID:          lastStateIDKey,
	ClassUncleanShutdown:      uncleanShutdownKey,
	ClassSnapshotGenerator:    snapshotGeneratorKey,
	ClassTrieJournal:          trieJournalKey,
	ClassDatabaseVersion:      databaseVersionKey,
	ClassLastBlock:            lastBlockKey,
	ClassSnapshotRoot:         snapshotRootKey,
	ClassSkeletonSyncStatus:   skeletonSyncStatusKey,
	ClassLastHeader:           lastHeaderKey,
	ClassSnapshotRecovery:     snapshotRecoveryKey,
	ClassTransactionIndexTail: transactionIndexTailKey,
	ClassLastFast:             lastFastKey,
}

// KeyPrefix returns the byte prefix shared by every key of the class, or nil
// for ClassUnknown (whose keys have no common shape). Callers must not
// mutate the returned slice.
func (c Class) KeyPrefix() []byte { return classKeyPrefixes[c] }

// MatchesScanPrefix reports whether a key of this class could start with
// scan prefix p — i.e. whether an iterator over p may need to visit this
// class. True iff one of p and the class prefix is a byte-prefix of the
// other; ClassUnknown always matches, since unknown keys can look like
// anything. The test is deliberately conservative: over-inclusion only
// widens a scan, never corrupts it.
func (c Class) MatchesScanPrefix(p []byte) bool {
	kp, ok := classKeyPrefixes[c]
	if !ok {
		return true // ClassUnknown (or an invalid class): assume it matches
	}
	if len(p) <= len(kp) {
		return bytes.HasPrefix(kp, p)
	}
	return bytes.HasPrefix(p, kp)
}

// ParseClass resolves a paper-table class name (as produced by
// Class.String) back to its Class. The second result is false for names
// that do not match any real class; "Unknown" is not parseable.
func ParseClass(name string) (Class, bool) {
	for c := ClassTrieNodeStorage; c <= ClassLastFast; c++ {
		if classNames[c] == name {
			return c, true
		}
	}
	return ClassUnknown, false
}
