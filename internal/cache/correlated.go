package cache

// CorrelationCache augments an LRU with the correlation-aware policy from
// §V of the paper: it learns which keys are read adjacently (distance-zero
// correlated reads, Findings 8–9), prefetches a key's correlated companions
// on access, and evicts companions together.
//
// The learner keeps, per key, a small set of successor counts observed
// within a short window of the access stream. When a key is read and its
// strongest companion passes a confidence threshold, the companion is
// fetched from the backing loader into the cache ahead of demand.
type CorrelationCache struct {
	lru    *LRU
	loader func(key []byte) ([]byte, bool)

	// assoc maps key -> companion counts within the window.
	assoc map[string]map[string]uint32
	// window holds the most recent accessed keys, oldest first.
	window []string
	// windowSize bounds the adjacency distance treated as "correlated";
	// Finding 8 shows correlations concentrate within small distances.
	windowSize int
	// minCount is the occurrence threshold before acting on a pair
	// (the paper counts pairs only when seen at least twice).
	minCount uint32
	// maxCompanions bounds per-key learner state.
	maxCompanions int

	prefetches    uint64
	prefetchHits  uint64
	prefetchedHot map[string]bool // keys resident due to prefetch, not demand
}

// NewCorrelationCache builds a correlation-aware cache over a byte budget.
// loader fetches values for prefetching (returning ok=false when absent);
// it must be cheap to call relative to a real device read, as the whole
// point is converting future random reads into sequential prefetch batches.
func NewCorrelationCache(capacity int, loader func(key []byte) ([]byte, bool)) *CorrelationCache {
	return &CorrelationCache{
		lru:           NewLRU(capacity),
		loader:        loader,
		assoc:         make(map[string]map[string]uint32),
		windowSize:    4,
		minCount:      2,
		maxCompanions: 8,
		prefetchedHot: make(map[string]bool),
	}
}

// Get looks up key, learning adjacency from the access stream and
// prefetching learned companions on a hit or a successful miss-fill.
func (c *CorrelationCache) Get(key []byte) ([]byte, bool) {
	ks := string(key)
	value, ok := c.lru.Get(key)
	if ok && c.prefetchedHot[ks] {
		c.prefetchHits++
		delete(c.prefetchedHot, ks)
	}
	c.learn(ks)
	if ok {
		c.prefetchCompanions(ks)
	}
	return value, ok
}

// Add inserts a demand-loaded value and triggers companion prefetch.
func (c *CorrelationCache) Add(key, value []byte) {
	c.lru.Add(key, value)
	delete(c.prefetchedHot, string(key))
	c.prefetchCompanions(string(key))
}

// Remove drops key and its prefetched companions (co-eviction): correlated
// keys age together, so keeping companions of an evicted key wastes budget.
func (c *CorrelationCache) Remove(key []byte) {
	ks := string(key)
	c.lru.Remove(key)
	for comp, count := range c.assoc[ks] {
		if count >= c.minCount && c.prefetchedHot[comp] {
			c.lru.Remove([]byte(comp))
			delete(c.prefetchedHot, comp)
		}
	}
}

// learn records adjacency between the new access and the recent window.
func (c *CorrelationCache) learn(ks string) {
	for _, prev := range c.window {
		if prev == ks {
			continue
		}
		c.bump(prev, ks)
		c.bump(ks, prev)
	}
	c.window = append(c.window, ks)
	if len(c.window) > c.windowSize {
		c.window = c.window[1:]
	}
}

// bump increments the companion count for (a -> b), bounding state.
func (c *CorrelationCache) bump(a, b string) {
	m := c.assoc[a]
	if m == nil {
		m = make(map[string]uint32, 2)
		c.assoc[a] = m
	}
	if _, ok := m[b]; !ok && len(m) >= c.maxCompanions {
		// Evict the weakest companion to admit the new one.
		var weakest string
		var min uint32 = 1<<32 - 1
		for k, v := range m {
			if v < min {
				weakest, min = k, v
			}
		}
		delete(m, weakest)
	}
	m[b]++
}

// prefetchCompanions loads confident companions of ks into the cache.
func (c *CorrelationCache) prefetchCompanions(ks string) {
	if c.loader == nil {
		return
	}
	for comp, count := range c.assoc[ks] {
		if count < c.minCount || c.lru.Contains([]byte(comp)) {
			continue
		}
		if value, ok := c.loader([]byte(comp)); ok {
			c.lru.Add([]byte(comp), value)
			c.prefetchedHot[comp] = true
			c.prefetches++
		}
	}
}

// HitRate returns the demand hit rate of the underlying cache.
func (c *CorrelationCache) HitRate() float64 { return c.lru.HitRate() }

// Counters returns demand hits and misses.
func (c *CorrelationCache) Counters() (hits, misses uint64) { return c.lru.Counters() }

// PrefetchStats returns issued prefetches and how many were later hit.
func (c *CorrelationCache) PrefetchStats() (issued, hit uint64) {
	return c.prefetches, c.prefetchHits
}

// Len returns resident entries.
func (c *CorrelationCache) Len() int { return c.lru.Len() }
