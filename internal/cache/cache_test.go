package cache

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"ethkv/internal/rawdb"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(1024)
	if _, ok := c.Get([]byte("missing")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add([]byte("k"), []byte("v"))
	v, ok := c.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	c.Add([]byte("k"), []byte("v2"))
	if v, _ := c.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("overwrite: %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Remove([]byte("k"))
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("key survived Remove")
	}
	if c.Size() != 0 {
		t.Fatalf("Size = %d after removal", c.Size())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Budget for roughly 3 entries of 10 bytes each.
	c := NewLRU(33)
	c.Add([]byte("aaaaa"), []byte("11111")) // 10 bytes
	c.Add([]byte("bbbbb"), []byte("22222"))
	c.Add([]byte("ccccc"), []byte("33333"))
	// Touch a to make b the LRU victim.
	c.Get([]byte("aaaaa"))
	c.Add([]byte("ddddd"), []byte("44444"))
	if _, ok := c.Get([]byte("bbbbb")); ok {
		t.Fatal("LRU victim not evicted")
	}
	for _, k := range []string{"aaaaa", "ccccc", "ddddd"} {
		if !c.Contains([]byte(k)) {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
}

func TestLRUBudgetInvariant(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val []byte
	}) bool {
		c := NewLRU(512)
		for _, op := range ops {
			c.Add([]byte{op.Key}, op.Val)
			if c.Size() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUOversizedValueRejected(t *testing.T) {
	c := NewLRU(16)
	c.Add([]byte("k"), bytes.Repeat([]byte{1}, 100))
	if c.Len() != 0 {
		t.Fatal("oversized value admitted")
	}
}

func TestLRUHitRate(t *testing.T) {
	c := NewLRU(1024)
	c.Add([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	c.Get([]byte("k"))
	c.Get([]byte("absent"))
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %v, want 2/3", got)
	}
	c.Purge()
	if c.Len() != 0 || c.Size() != 0 {
		t.Fatal("Purge incomplete")
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Fatal("Purge kept counters")
	}
}

func TestManagerClassIsolation(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.Add(rawdb.ClassTrieNodeAccount, []byte("k"), []byte("account"))
	m.Add(rawdb.ClassTrieNodeStorage, []byte("k"), []byte("storage"))
	v, ok := m.Get(rawdb.ClassTrieNodeAccount, []byte("k"))
	if !ok || string(v) != "account" {
		t.Fatalf("account cache: %q, %v", v, ok)
	}
	v, ok = m.Get(rawdb.ClassTrieNodeStorage, []byte("k"))
	if !ok || string(v) != "storage" {
		t.Fatalf("storage cache: %q, %v", v, ok)
	}
	m.Remove(rawdb.ClassTrieNodeAccount, []byte("k"))
	if _, ok := m.Get(rawdb.ClassTrieNodeAccount, []byte("k")); ok {
		t.Fatal("Remove missed")
	}
	if _, ok := m.Get(rawdb.ClassTrieNodeStorage, []byte("k")); !ok {
		t.Fatal("Remove hit the wrong class")
	}
}

func TestManagerResidual(t *testing.T) {
	m := NewManager(1<<20, nil)
	// TxLookup has no dedicated share: lands in the residual cache.
	m.Add(rawdb.ClassTxLookup, []byte("tx"), []byte("1"))
	if _, ok := m.Get(rawdb.ClassTxLookup, []byte("tx")); !ok {
		t.Fatal("residual cache lost entry")
	}
	stats := m.Stats()
	if len(stats) != len(DefaultShares)+1 {
		t.Fatalf("Stats rows = %d", len(stats))
	}
	if m.TotalBudget() != 1<<20 {
		t.Fatal("TotalBudget")
	}
}

func TestManagerCustomShares(t *testing.T) {
	m := NewManager(1000, map[rawdb.Class]float64{rawdb.ClassCode: 0.5})
	m.Add(rawdb.ClassCode, []byte("c"), bytes.Repeat([]byte{1}, 400))
	if _, ok := m.Get(rawdb.ClassCode, []byte("c")); !ok {
		t.Fatal("custom share cache missing entry")
	}
}

// TestCorrelationCachePrefetch: after observing A,B adjacently twice, a
// read of A must prefetch B.
func TestCorrelationCachePrefetch(t *testing.T) {
	backing := map[string][]byte{
		"A": []byte("va"), "B": []byte("vb"), "C": []byte("vc"),
	}
	loads := 0
	cc := NewCorrelationCache(1<<16, func(key []byte) ([]byte, bool) {
		loads++
		v, ok := backing[string(key)]
		return v, ok
	})
	// Teach the correlation A->B by simulating the demand stream.
	for i := 0; i < 3; i++ {
		if _, ok := cc.Get([]byte("A")); !ok {
			cc.Add([]byte("A"), backing["A"])
		}
		if _, ok := cc.Get([]byte("B")); !ok {
			cc.Add([]byte("B"), backing["B"])
		}
	}
	// While both stay resident no prefetch is needed. Drop B, then a read
	// of A must pull B back in ahead of demand.
	cc.lru.Remove([]byte("B"))
	if _, ok := cc.Get([]byte("A")); !ok {
		t.Fatal("A should be resident")
	}
	issued, _ := cc.PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetches issued after learning A-B adjacency")
	}
	// The prefetched B must now be a cache hit, counted as a prefetch hit.
	if _, ok := cc.Get([]byte("B")); !ok {
		t.Fatal("prefetched companion B not resident")
	}
	if _, hit := cc.PrefetchStats(); hit == 0 {
		t.Fatal("prefetch hit not accounted")
	}
	if loads == 0 {
		t.Fatal("loader never invoked")
	}
}

// TestCorrelationCacheBeatsLRUOnCorrelatedStream: the headline design
// claim. A stream of correlated pairs under cache pressure must hit more
// often with prefetching than with plain LRU.
func TestCorrelationCacheBeatsLRUOnCorrelatedStream(t *testing.T) {
	// Working set larger than cache: every key pair (k, k') is accessed
	// adjacently, cycling through many pairs.
	backing := map[string][]byte{}
	npairs := 64
	val := bytes.Repeat([]byte{1}, 100)
	for i := 0; i < npairs; i++ {
		backing[fmt.Sprintf("x%03d", i)] = val
		backing[fmt.Sprintf("y%03d", i)] = val
	}
	capacity := 30 * 104 // ~30 entries: far below the 128-key working set

	runLRU := func() float64 {
		c := NewLRU(capacity)
		for round := 0; round < 20; round++ {
			for i := 0; i < npairs; i++ {
				for _, p := range []string{"x", "y"} {
					k := []byte(fmt.Sprintf("%s%03d", p, i))
					if _, ok := c.Get(k); !ok {
						c.Add(k, backing[string(k)])
					}
				}
			}
		}
		return c.HitRate()
	}
	runCorr := func() float64 {
		c := NewCorrelationCache(capacity, func(key []byte) ([]byte, bool) {
			v, ok := backing[string(key)]
			return v, ok
		})
		for round := 0; round < 20; round++ {
			for i := 0; i < npairs; i++ {
				for _, p := range []string{"x", "y"} {
					k := []byte(fmt.Sprintf("%s%03d", p, i))
					if _, ok := c.Get(k); !ok {
						c.Add(k, backing[string(k)])
					}
				}
			}
		}
		return c.HitRate()
	}
	lru, corr := runLRU(), runCorr()
	if corr <= lru {
		t.Fatalf("correlation cache (%.3f) did not beat LRU (%.3f) on a correlated stream", corr, lru)
	}
}

func TestCorrelationCacheCoEviction(t *testing.T) {
	backing := map[string][]byte{"A": []byte("va"), "B": []byte("vb")}
	cc := NewCorrelationCache(1<<16, func(key []byte) ([]byte, bool) {
		v, ok := backing[string(key)]
		return v, ok
	})
	for i := 0; i < 3; i++ {
		cc.Add([]byte("A"), backing["A"])
		cc.Get([]byte("A"))
		cc.Add([]byte("B"), backing["B"])
		cc.Get([]byte("B"))
	}
	// A read of A should have prefetched B by now (if B was evicted).
	cc.Remove([]byte("A"))
	// B must be gone too if it was resident only via prefetch. Demand-added
	// entries stay. We assert no panic and that A is gone.
	if _, ok := cc.Get([]byte("A")); ok {
		t.Fatal("A survived Remove")
	}
}

func TestCorrelationCacheNilLoader(t *testing.T) {
	cc := NewCorrelationCache(1024, nil)
	cc.Add([]byte("k"), []byte("v"))
	if v, ok := cc.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("basic get through nil-loader cache failed")
	}
	if cc.Len() != 1 {
		t.Fatal("Len")
	}
}

func BenchmarkLRUGetHit(b *testing.B) {
	c := NewLRU(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Add([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{1}, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get([]byte(fmt.Sprintf("key-%04d", i%1000)))
	}
}

func BenchmarkCorrelationCacheGet(b *testing.B) {
	backing := map[string][]byte{}
	for i := 0; i < 1000; i++ {
		backing[fmt.Sprintf("key-%04d", i)] = bytes.Repeat([]byte{1}, 64)
	}
	c := NewCorrelationCache(1<<20, func(key []byte) ([]byte, bool) {
		v, ok := backing[string(key)]
		return v, ok
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i%1000))
		if _, ok := c.Get(k); !ok {
			c.Add(k, backing[string(k)])
		}
	}
}

// TestCorrelationCacheCompanionBound: the per-key learner state must stay
// bounded, evicting the weakest companion when full.
func TestCorrelationCacheCompanionBound(t *testing.T) {
	cc := NewCorrelationCache(1<<16, nil)
	// Interleave "hub" with 20 distinct partners, twice each so all pass
	// the min-count rule.
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			cc.Get([]byte("hub"))
			cc.Get([]byte(fmt.Sprintf("partner-%02d", i)))
		}
	}
	if got := len(cc.assoc["hub"]); got > cc.maxCompanions {
		t.Fatalf("hub holds %d companions, cap %d", got, cc.maxCompanions)
	}
}
