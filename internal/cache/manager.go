package cache

import (
	"sort"

	"ethkv/internal/rawdb"
)

// Manager splits one byte budget across per-class LRU caches, the way Geth
// shares its --cache allowance between subsystem caches. Classes without an
// assigned share fall into a small shared residual cache.
type Manager struct {
	caches   map[rawdb.Class]*LRU
	residual *LRU
	total    int
}

// DefaultShares approximates Geth's budget split: the world-state caches
// take most of the space, block data takes the rest.
var DefaultShares = map[rawdb.Class]float64{
	rawdb.ClassTrieNodeAccount: 0.25,
	rawdb.ClassTrieNodeStorage: 0.30,
	rawdb.ClassSnapshotAccount: 0.10,
	rawdb.ClassSnapshotStorage: 0.15,
	rawdb.ClassCode:            0.05,
	rawdb.ClassBlockHeader:     0.04,
	rawdb.ClassBlockBody:       0.03,
	rawdb.ClassBlockReceipts:   0.03,
}

// NewManager builds per-class caches from the given byte budget and share
// table. Pass nil shares for DefaultShares.
func NewManager(totalBytes int, shares map[rawdb.Class]float64) *Manager {
	if shares == nil {
		shares = DefaultShares
	}
	m := &Manager{
		caches: make(map[rawdb.Class]*LRU),
		total:  totalBytes,
	}
	used := 0.0
	for class, share := range shares {
		m.caches[class] = NewLRU(int(float64(totalBytes) * share))
		used += share
	}
	residual := totalBytes - int(float64(totalBytes)*used)
	if residual < 1024 {
		residual = 1024
	}
	m.residual = NewLRU(residual)
	return m
}

// cacheFor returns the cache serving a class.
func (m *Manager) cacheFor(class rawdb.Class) *LRU {
	if c, ok := m.caches[class]; ok {
		return c
	}
	return m.residual
}

// Get looks up a key in its class cache.
func (m *Manager) Get(class rawdb.Class, key []byte) ([]byte, bool) {
	return m.cacheFor(class).Get(key)
}

// Add caches a value under its class.
func (m *Manager) Add(class rawdb.Class, key, value []byte) {
	m.cacheFor(class).Add(key, value)
}

// Remove drops a key from its class cache (on delete/overwrite).
func (m *Manager) Remove(class rawdb.Class, key []byte) {
	m.cacheFor(class).Remove(key)
}

// TotalBudget returns the configured byte budget.
func (m *Manager) TotalBudget() int { return m.total }

// ClassStats describes one class cache's effectiveness.
type ClassStats struct {
	Class   rawdb.Class
	Hits    uint64
	Misses  uint64
	HitRate float64
	Bytes   int
	Entries int
}

// Stats returns per-class cache statistics ordered by class.
func (m *Manager) Stats() []ClassStats {
	out := make([]ClassStats, 0, len(m.caches)+1)
	for class, c := range m.caches {
		hits, misses := c.Counters()
		out = append(out, ClassStats{
			Class: class, Hits: hits, Misses: misses,
			HitRate: c.HitRate(), Bytes: c.Size(), Entries: c.Len(),
		})
	}
	hits, misses := m.residual.Counters()
	out = append(out, ClassStats{
		Class: rawdb.ClassUnknown, Hits: hits, Misses: misses,
		HitRate: m.residual.HitRate(), Bytes: m.residual.Size(), Entries: m.residual.Len(),
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
