// Package cache provides the caching layer of the storage stack: a
// byte-budgeted LRU (Geth's per-class cache policy) and a correlation-aware
// cache implementing the prefetch/co-evict design §V of the paper proposes.
package cache

import "container/list"

// LRU is a byte-budgeted least-recently-used cache. Not safe for concurrent
// use; the simulator is single-threaded per store, matching Geth's
// per-subsystem caches guarded by their own locks.
type LRU struct {
	capacity int
	size     int
	order    *list.List // front = most recent
	items    map[string]*list.Element

	hits   uint64
	misses uint64
}

// lruEntry is one resident cache record.
type lruEntry struct {
	key   string
	value []byte
}

// NewLRU returns an LRU bounded to capacity bytes of key+value data.
func NewLRU(capacity int) *LRU {
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value and whether it was present.
func (c *LRU) Get(key []byte) ([]byte, bool) {
	el, ok := c.items[string(key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Contains reports presence without promoting or counting the entry.
func (c *LRU) Contains(key []byte) bool {
	_, ok := c.items[string(key)]
	return ok
}

// Add inserts or refreshes an entry, evicting from the tail to stay within
// budget. Values larger than the whole capacity are not admitted.
func (c *LRU) Add(key, value []byte) {
	entrySize := len(key) + len(value)
	if entrySize > c.capacity {
		return
	}
	if el, ok := c.items[string(key)]; ok {
		ent := el.Value.(*lruEntry)
		c.size += len(value) - len(ent.value)
		ent.value = append([]byte(nil), value...)
		c.order.MoveToFront(el)
	} else {
		ent := &lruEntry{key: string(key), value: append([]byte(nil), value...)}
		c.items[ent.key] = c.order.PushFront(ent)
		c.size += entrySize
	}
	for c.size > c.capacity {
		c.evictOldest()
	}
}

// Remove drops an entry if present.
func (c *LRU) Remove(key []byte) {
	if el, ok := c.items[string(key)]; ok {
		c.removeElement(el)
	}
}

// evictOldest removes the least-recently-used entry.
func (c *LRU) evictOldest() {
	if el := c.order.Back(); el != nil {
		c.removeElement(el)
	}
}

func (c *LRU) removeElement(el *list.Element) {
	ent := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.items, ent.key)
	c.size -= len(ent.key) + len(ent.value)
}

// Len returns the number of resident entries.
func (c *LRU) Len() int { return len(c.items) }

// Size returns the resident byte footprint.
func (c *LRU) Size() int { return c.size }

// Capacity returns the byte budget.
func (c *LRU) Capacity() int { return c.capacity }

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Counters returns the raw hit/miss counts.
func (c *LRU) Counters() (hits, misses uint64) { return c.hits, c.misses }

// Purge drops all entries and resets counters.
func (c *LRU) Purge() {
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.size = 0
	c.hits, c.misses = 0, 0
}
