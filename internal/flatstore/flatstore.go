// Package flatstore implements the single-seek flat backend the paper's
// Finding 3 motivates for world-state classes: an append-only entry file on
// disk plus a fully resident in-memory index mapping every live key to its
// record's file offset. A point read is index lookup + one ReadAt — no
// level walk, no block index, no bloom filters — trading memory (the whole
// key set stays resident) for the minimum possible read amplification.
//
// On-disk format: one entry file per generation, a flat sequence of
// records. Every record is
//
//	kind(1) | klen uvarint | vlen uvarint | key | value | crc32(4)
//
// with the IEEE crc32 covering every preceding byte of the record. kind 0
// is a put, kind 1 a tombstone (vlen 0), kind 2 a group: its "key" field
// holds concatenated sub-records, each a complete standalone record with
// its own crc, so the group commits a batch atomically while compaction
// can still copy any live sub-record extent verbatim.
//
// Durability is sync-on-batch, WAL-free: the entry file IS the log. Single
// puts and deletes append without syncing (un-acked until the next
// barrier); Batch.Write appends one group record and syncs, which durably
// covers the whole file prefix. Recovery replays the active file to the
// last valid record and truncates the torn tail in place; a group whose
// crc fails drops the whole batch — all-or-nothing.
//
// Compaction rewrites the live record extents, in sorted key order, into a
// fresh generation file and commits the swap by rewriting the CURRENT
// pointer file (tmp + sync + rename), mirroring the manifest discipline of
// the LSM. Orphan generations are swept on open.
//
// All I/O goes through faultfs with the repository's bounded
// retry-with-backoff policy for transient faults; a permanent failure
// latches the store into sticky read-only degraded mode (kv.ErrDegraded).
package flatstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

// Record kinds.
const (
	kindPut       byte = 0
	kindTombstone byte = 1
	kindGroup     byte = 2
)

const crcLen = 4

// errCorrupt marks a record whose framing or checksum failed verification.
var errCorrupt = errors.New("flatstore: corrupt record")

// Options configures a Store. The zero value selects the real filesystem
// and the repository's default retry and compaction policies.
type Options struct {
	// FS is the filesystem seam; nil selects faultfs.OS.
	FS faultfs.FS
	// RetryAttempts bounds the retry-with-backoff loop for transient I/O
	// faults. Zero selects the default (4).
	RetryAttempts int
	// RetryBackoff is the first retry's sleep; each subsequent retry
	// doubles it. Zero selects the default (200µs).
	RetryBackoff time.Duration
	// CompactAfterDeadBytes arms automatic compaction once the dead bytes
	// (overwritten records, deleted records, tombstones, group framing) in
	// the entry file reach it AND dead bytes exceed CompactDeadFraction of
	// the file. Zero selects the default (4 MiB); negative disables
	// automatic compaction (Compact can still be called explicitly).
	CompactAfterDeadBytes int64
	// CompactDeadFraction is the dead/total ratio that must also be
	// exceeded before automatic compaction fires. Zero selects 0.5.
	CompactDeadFraction float64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	if o.RetryAttempts == 0 {
		o.RetryAttempts = 4
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.CompactAfterDeadBytes == 0 {
		o.CompactAfterDeadBytes = 4 << 20
	}
	if o.CompactDeadFraction == 0 {
		o.CompactDeadFraction = 0.5
	}
	return o
}

// entryRef locates one live record in the active entry file.
type entryRef struct {
	off  int64  // absolute file offset of the standalone record
	n    uint32 // encoded record length, header through crc
	vlen uint32 // decoded value length
}

// flatStats mirrors the kv.Stats fields the store tracks, with atomic
// fields so read-path counters never take the store lock.
type flatStats struct {
	gets, puts, deletes, scans            atomic.Uint64
	logicalBytesRead, logicalBytesWritten atomic.Uint64
	physicalBytesRead, physicalBytesWrite atomic.Uint64
	physicalReadOps                       atomic.Uint64
	ioRetries                             atomic.Uint64
	compactionCount, compactionRewrites   atomic.Uint64
	degraded                              atomic.Uint64
}

// Store is the flat single-seek backend. It implements kv.Store,
// kv.StatsProvider, and kv.MetricsRegistrar.
type Store struct {
	opts Options
	fs   faultfs.FS
	dir  string

	mu          sync.RWMutex
	index       map[string]entryRef
	gen         uint64
	size        int64        // logical end of the active entry file
	live        int64        // sum of indexed record lengths (live bytes)
	tombstones  uint64       // tombstone records present in the active file
	w           faultfs.File // append handle; doubles as the Get ReadAt seam
	closed      bool
	degradedErr error

	stats flatStats
}

var (
	_ kv.Store            = (*Store)(nil)
	_ kv.StatsProvider    = (*Store)(nil)
	_ kv.MetricsRegistrar = (*Store)(nil)
)

// Open opens (creating if needed) the flat store in dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		opts:  opts,
		fs:    opts.FS,
		dir:   dir,
		index: make(map[string]entryRef),
	}
	if err := s.retryIO(func() error { return s.fs.MkdirAll(dir) }); err != nil {
		return nil, fmt.Errorf("flatstore: mkdir %s: %w", dir, err)
	}

	// Resolve the active generation from the CURRENT pointer file;
	// bootstrap generation 1 on a fresh directory.
	gen, err := s.readCurrent()
	if errors.Is(err, fs.ErrNotExist) {
		gen = 1
		if err := s.bootstrap(gen); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, fmt.Errorf("flatstore: read CURRENT: %w", err)
	}
	s.gen = gen

	// Sweep generations a crashed compaction left behind: everything but
	// the file CURRENT points at is garbage.
	if err := s.sweepOrphans(); err != nil {
		return nil, err
	}

	// Replay the active file to the last valid record.
	data, err := s.readFileRetrying(s.genPath(gen))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("flatstore: read %s: %w", s.genPath(gen), err)
	}
	if len(data) > 0 {
		s.stats.physicalReadOps.Add(1)
		s.stats.physicalBytesRead.Add(uint64(len(data)))
	}
	ops, valid := replayData(data, 0, true)
	for _, op := range ops {
		if op.kind == kindTombstone {
			s.applyDeleteLocked(op.key)
		} else {
			s.applyPutLocked(op.key, entryRef{off: op.off, n: uint32(op.n), vlen: uint32(len(op.value))})
		}
	}
	s.size = valid

	if err := s.retryIO(func() error {
		var err error
		s.w, err = s.fs.OpenAppend(s.genPath(gen))
		return err
	}); err != nil {
		return nil, fmt.Errorf("flatstore: open %s: %w", s.genPath(gen), err)
	}
	// Cut any torn tail in place so appended records land contiguously
	// after the valid prefix.
	if valid < int64(len(data)) {
		if err := s.retryIO(func() error { return s.w.Truncate(valid) }); err != nil {
			s.w.Close()
			return nil, fmt.Errorf("flatstore: truncate torn tail of %s: %w", s.genPath(gen), err)
		}
	}
	return s, nil
}

func genName(gen uint64) string { return fmt.Sprintf("flat-%06d.log", gen) }

func (s *Store) genPath(gen uint64) string { return filepath.Join(s.dir, genName(gen)) }
func (s *Store) currentPath() string       { return filepath.Join(s.dir, "CURRENT") }

// readCurrent parses the CURRENT pointer file into a generation number.
func (s *Store) readCurrent() (uint64, error) {
	data, err := s.readFileRetrying(s.currentPath())
	if err != nil {
		return 0, err
	}
	var gen uint64
	name := string(bytes.TrimSpace(data))
	if _, err := fmt.Sscanf(name, "flat-%d.log", &gen); err != nil || gen == 0 {
		return 0, fmt.Errorf("flatstore: CURRENT names %q: %w", name, errCorrupt)
	}
	return gen, nil
}

// bootstrap creates the first generation file and points CURRENT at it. A
// crash between the two steps leaves an orphan entry file that the next
// bootstrap's Create truncates.
func (s *Store) bootstrap(gen uint64) error {
	err := s.retryIO(func() error {
		f, err := s.fs.Create(s.genPath(gen))
		if err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if err != nil {
		return fmt.Errorf("flatstore: create %s: %w", s.genPath(gen), err)
	}
	if err := s.writeCurrent(gen); err != nil {
		return fmt.Errorf("flatstore: install CURRENT: %w", err)
	}
	return nil
}

// writeCurrent atomically points CURRENT at gen via tmp + sync + rename.
func (s *Store) writeCurrent(gen uint64) error {
	tmp := s.currentPath() + ".tmp"
	err := s.retryIO(func() error {
		f, err := s.fs.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(genName(gen) + "\n")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if err != nil {
		return err
	}
	return s.retryIO(func() error { return s.fs.Rename(tmp, s.currentPath()) })
}

// sweepOrphans removes entry files from interrupted compactions and any
// stale CURRENT.tmp.
func (s *Store) sweepOrphans() error {
	matches, err := s.fs.Glob(filepath.Join(s.dir, "flat-*.log"))
	if err != nil {
		return fmt.Errorf("flatstore: glob generations: %w", err)
	}
	current := s.genPath(s.gen)
	remove := func(path string) error {
		err := s.retryIO(func() error {
			if err := s.fs.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
			return nil
		})
		return err
	}
	for _, m := range matches {
		if m == current {
			continue
		}
		if err := remove(m); err != nil {
			return fmt.Errorf("flatstore: sweep orphan %s: %w", m, err)
		}
	}
	if err := remove(s.currentPath() + ".tmp"); err != nil {
		return fmt.Errorf("flatstore: sweep CURRENT.tmp: %w", err)
	}
	return nil
}

func (s *Store) readFileRetrying(path string) ([]byte, error) {
	var data []byte
	err := s.retryIO(func() error {
		var err error
		data, err = s.fs.ReadFile(path)
		return err
	})
	return data, err
}

// retryIO runs one I/O operation under the bounded retry-with-backoff
// policy: transient faults retry with doubling sleeps up to RetryAttempts;
// any other error — or a transient fault that exhausts the budget —
// returns to the caller, which treats it as permanent.
func (s *Store) retryIO(op func() error) error {
	backoff := s.opts.RetryBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !faultfs.IsTransient(err) || attempt >= s.opts.RetryAttempts {
			return err
		}
		s.stats.ioRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// setDegradedLocked latches read-only degraded mode after a permanent
// storage failure. Sticky: the first cause is kept.
func (s *Store) setDegradedLocked(err error) {
	if s.degradedErr != nil || err == nil {
		return
	}
	s.degradedErr = err
	s.stats.degraded.Store(1)
}

// writeGateLocked is the admission check shared by every mutation.
func (s *Store) writeGateLocked() error {
	if s.closed {
		return kv.ErrClosed
	}
	if s.degradedErr != nil {
		return kv.ErrDegraded
	}
	return nil
}

// appendLocked writes buf — one or more complete records — at the tail,
// with retries. An injected transient failure has no effect on the file,
// so retrying the whole buffer is safe; any terminal failure degrades the
// store. Returns the offset buf landed at.
func (s *Store) appendLocked(buf []byte) (int64, error) {
	off := s.size
	if err := s.retryIO(func() error {
		_, err := s.w.Write(buf)
		return err
	}); err != nil {
		s.setDegradedLocked(err)
		return 0, err
	}
	s.size += int64(len(buf))
	s.stats.physicalBytesWrite.Add(uint64(len(buf)))
	return off, nil
}

// applyPutLocked installs one live record in the index, retiring any
// record it shadows.
func (s *Store) applyPutLocked(key []byte, ref entryRef) {
	if old, ok := s.index[string(key)]; ok {
		s.live -= int64(old.n)
	}
	s.index[string(key)] = ref
	s.live += int64(ref.n)
}

// applyDeleteLocked retires key's record; the tombstone itself is dead
// weight the moment it is written.
func (s *Store) applyDeleteLocked(key []byte) {
	if old, ok := s.index[string(key)]; ok {
		delete(s.index, string(key))
		s.live -= int64(old.n)
	}
	s.tombstones++
}

// Put implements kv.Writer. The record is appended un-synced: it is acked
// only by the next durability barrier (a batch commit or Close).
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeGateLocked(); err != nil {
		return err
	}
	buf := appendRecord(nil, kindPut, key, value)
	off, err := s.appendLocked(buf)
	if err != nil {
		return err
	}
	s.applyPutLocked(key, entryRef{off: off, n: uint32(len(buf)), vlen: uint32(len(value))})
	s.stats.puts.Add(1)
	s.stats.logicalBytesWritten.Add(uint64(len(key) + len(value)))
	s.maybeCompactLocked()
	return nil
}

// Delete implements kv.Writer by appending a tombstone. Deleting an
// absent key still logs the tombstone: replay must observe the same
// sequence the live index did.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeGateLocked(); err != nil {
		return err
	}
	buf := appendRecord(nil, kindTombstone, key, nil)
	if _, err := s.appendLocked(buf); err != nil {
		return err
	}
	s.applyDeleteLocked(key)
	s.stats.deletes.Add(1)
	s.stats.logicalBytesWritten.Add(uint64(len(key)))
	s.maybeCompactLocked()
	return nil
}

// Has implements kv.Reader from the resident index alone — no disk read.
func (s *Store) Has(key []byte) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, kv.ErrClosed
	}
	_, ok := s.index[string(key)]
	return ok, nil
}

// Get implements kv.Reader: index lookup plus exactly one ReadAt of the
// record extent, whose crc is verified before the value is returned. A
// missing key costs zero disk reads.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	s.stats.gets.Add(1)
	ref, ok := s.index[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	buf := make([]byte, ref.n)
	if err := s.retryIO(func() error {
		s.stats.physicalReadOps.Add(1)
		_, err := s.w.ReadAt(buf, ref.off)
		return err
	}); err != nil {
		return nil, err
	}
	s.stats.physicalBytesRead.Add(uint64(ref.n))
	r, _, err := parseRecord(buf)
	if err != nil || r.kind != kindPut || !bytes.Equal(r.key, key) {
		return nil, fmt.Errorf("flatstore: record at offset %d for key %x: %w", ref.off, key, errCorrupt)
	}
	s.stats.logicalBytesRead.Add(uint64(len(r.value)))
	out := make([]byte, len(r.value))
	copy(out, r.value)
	return out, nil
}

// NewIterator implements kv.Iterable: a sorted snapshot of the matching
// index entries, read lazily record-by-record through a private handle
// pinned to the current generation (compaction may swap and delete the
// active file while the iterator walks). Each record's crc is verified; a
// damaged record latches the iterator's error — a scan never silently
// yields a subset.
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return &flatIterator{err: kv.ErrClosed, pos: -1}
	}
	s.stats.scans.Add(1)
	lower := string(prefix) + string(start)
	refs := make([]iterRef, 0)
	for k, ref := range s.index {
		if len(k) >= len(prefix) && k[:len(prefix)] == string(prefix) && k >= lower {
			refs = append(refs, iterRef{key: k, ref: ref})
		}
	}
	genPath := s.genPath(s.gen)
	var f faultfs.File
	err := s.retryIO(func() error {
		var e error
		f, e = s.fs.Open(genPath)
		return e
	})
	s.mu.RUnlock()
	if err != nil {
		return &flatIterator{err: err, pos: -1}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].key < refs[j].key })
	return &flatIterator{s: s, f: f, refs: refs, pos: -1}
}

type iterRef struct {
	key string
	ref entryRef
}

type flatIterator struct {
	s    *Store
	f    faultfs.File
	refs []iterRef
	pos  int
	key  []byte
	val  []byte
	err  error
}

func (it *flatIterator) Next() bool {
	if it.err != nil || it.pos+1 >= len(it.refs) {
		return false
	}
	it.pos++
	cur := it.refs[it.pos]
	buf := make([]byte, cur.ref.n)
	if err := it.s.retryIO(func() error {
		it.s.stats.physicalReadOps.Add(1)
		_, err := it.f.ReadAt(buf, cur.ref.off)
		return err
	}); err != nil {
		it.err = err
		return false
	}
	it.s.stats.physicalBytesRead.Add(uint64(cur.ref.n))
	r, _, err := parseRecord(buf)
	if err != nil || r.kind != kindPut || string(r.key) != cur.key {
		it.err = fmt.Errorf("flatstore: scan hit damaged record for key %x at offset %d: %w",
			cur.key, cur.ref.off, errCorrupt)
		return false
	}
	it.key = []byte(cur.key)
	it.val = append([]byte(nil), r.value...)
	it.s.stats.logicalBytesRead.Add(uint64(len(r.value)))
	return true
}

func (it *flatIterator) Key() []byte {
	if it.pos < 0 || it.pos >= len(it.refs) || it.err != nil {
		return nil
	}
	return it.key
}

func (it *flatIterator) Value() []byte {
	if it.pos < 0 || it.pos >= len(it.refs) || it.err != nil {
		return nil
	}
	return it.val
}

func (it *flatIterator) Release() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
	it.refs = nil
}

func (it *flatIterator) Error() error { return it.err }

// NewBatch implements kv.Batcher.
func (s *Store) NewBatch() kv.Batch { return &flatBatch{s: s} }

type flatOp struct {
	key, value []byte
	delete     bool
}

type flatBatch struct {
	s    *Store
	ops  []flatOp
	size int
}

func (b *flatBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, flatOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *flatBatch) Delete(key []byte) error {
	b.ops = append(b.ops, flatOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *flatBatch) ValueSize() int { return b.size }

// Write commits the batch as one group record followed by a Sync — the
// durability barrier that acks this batch and every record before it. A
// torn group fails its crc on replay, so the batch is all-or-nothing.
func (b *flatBatch) Write() error {
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeGateLocked(); err != nil {
		return err
	}
	if len(b.ops) == 0 {
		return nil
	}
	var payload []byte
	rel := make([]int, len(b.ops))
	for i, op := range b.ops {
		rel[i] = len(payload)
		if op.delete {
			payload = appendRecord(payload, kindTombstone, op.key, nil)
		} else {
			payload = appendRecord(payload, kindPut, op.key, op.value)
		}
	}
	group := appendRecord(nil, kindGroup, payload, nil)
	payloadStart := len(group) - crcLen - len(payload)

	off, err := s.appendLocked(group)
	if err != nil {
		return err
	}
	if err := s.retryIO(s.w.Sync); err != nil {
		// The group reached the file but was never acked; the index stays
		// as if the batch never happened, matching what a reopen may find.
		s.setDegradedLocked(err)
		return err
	}
	for i, op := range b.ops {
		if op.delete {
			s.applyDeleteLocked(op.key)
			s.stats.deletes.Add(1)
			s.stats.logicalBytesWritten.Add(uint64(len(op.key)))
			continue
		}
		subOff := off + int64(payloadStart) + int64(rel[i])
		var subLen int
		if i+1 < len(b.ops) {
			subLen = rel[i+1] - rel[i]
		} else {
			subLen = len(payload) - rel[i]
		}
		s.applyPutLocked(op.key, entryRef{off: subOff, n: uint32(subLen), vlen: uint32(len(op.value))})
		s.stats.puts.Add(1)
		s.stats.logicalBytesWritten.Add(uint64(len(op.key) + len(op.value)))
	}
	s.maybeCompactLocked()
	return nil
}

func (b *flatBatch) Reset() { b.ops, b.size = b.ops[:0], 0 }

func (b *flatBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// maybeCompactLocked fires compaction when the dead-byte debt crosses both
// the absolute and fractional thresholds. Errors are latched by the
// degraded-mode machinery, not returned: the triggering write already
// succeeded.
func (s *Store) maybeCompactLocked() {
	if s.opts.CompactAfterDeadBytes < 0 {
		return
	}
	dead := s.size - s.live
	if dead < s.opts.CompactAfterDeadBytes {
		return
	}
	if float64(dead) < s.opts.CompactDeadFraction*float64(s.size) {
		return
	}
	_ = s.compactLocked()
}

// Compact rewrites the live records into a fresh generation immediately,
// regardless of thresholds.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeGateLocked(); err != nil {
		return err
	}
	return s.compactLocked()
}

// compactLocked copies every live record extent, in sorted key order (map
// order would make the injected-fault write schedule non-deterministic),
// into generation gen+1, syncs it, commits the swap through CURRENT, and
// retargets the open handles. On any failure the old generation remains
// authoritative and the store degrades.
func (s *Store) compactLocked() error {
	newGen := s.gen + 1
	newPath := s.genPath(newGen)

	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	buf := make([]byte, 0, s.live)
	newIndex := make(map[string]entryRef, len(s.index))
	for _, k := range keys {
		ref := s.index[k]
		rec := make([]byte, ref.n)
		if err := s.retryIO(func() error {
			s.stats.physicalReadOps.Add(1)
			_, err := s.w.ReadAt(rec, ref.off)
			return err
		}); err != nil {
			s.setDegradedLocked(err)
			return err
		}
		s.stats.physicalBytesRead.Add(uint64(ref.n))
		// Verify before copying: compaction must never launder damage
		// into a fresh generation.
		r, _, err := parseRecord(rec)
		if err != nil || r.kind != kindPut || string(r.key) != k {
			cerr := fmt.Errorf("flatstore: compaction read damaged record for key %x at offset %d: %w",
				k, ref.off, errCorrupt)
			s.setDegradedLocked(cerr)
			return cerr
		}
		newIndex[k] = entryRef{off: int64(len(buf)), n: ref.n, vlen: ref.vlen}
		buf = append(buf, rec...)
	}

	if err := s.retryIO(func() error {
		f, err := s.fs.Create(newPath)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}); err != nil {
		s.setDegradedLocked(err)
		return err
	}
	s.stats.physicalBytesWrite.Add(uint64(len(buf)))

	// Commit point: CURRENT now names the new generation.
	if err := s.writeCurrent(newGen); err != nil {
		s.setDegradedLocked(err)
		return err
	}
	var w faultfs.File
	if err := s.retryIO(func() error {
		var e error
		w, e = s.fs.OpenAppend(newPath)
		return e
	}); err != nil {
		// CURRENT already points at the (complete, synced) new
		// generation; a reopen recovers cleanly. This handle cannot
		// follow, so it degrades with the old generation still mapped.
		s.setDegradedLocked(err)
		return err
	}

	oldPath := s.genPath(s.gen)
	s.w.Close()
	s.w = w
	s.gen = newGen
	s.size = int64(len(buf))
	s.live = int64(len(buf))
	s.index = newIndex
	s.tombstones = 0
	s.stats.compactionCount.Add(1)
	s.stats.compactionRewrites.Add(uint64(len(keys)))
	// Old generation is garbage; failure to remove it now is handled by
	// the orphan sweep on the next open.
	_ = s.fs.Remove(oldPath)
	return nil
}

// Close syncs (acking any trailing un-synced records) and releases the
// append handle. A degraded store skips the sync: nothing more can be
// promised durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.w != nil {
		if s.degradedErr == nil {
			err = s.retryIO(s.w.Sync)
		}
		if cerr := s.w.Close(); err == nil {
			err = cerr
		}
		s.w = nil
	}
	return err
}

// Stats implements kv.StatsProvider.
func (s *Store) Stats() kv.Stats {
	s.mu.RLock()
	live, size, tombs := s.live, s.size, s.tombstones
	s.mu.RUnlock()
	return kv.Stats{
		Gets:                s.stats.gets.Load(),
		Puts:                s.stats.puts.Load(),
		Deletes:             s.stats.deletes.Load(),
		Scans:               s.stats.scans.Load(),
		LogicalBytesRead:    s.stats.logicalBytesRead.Load(),
		LogicalBytesWritten: s.stats.logicalBytesWritten.Load(),
		PhysicalBytesRead:   s.stats.physicalBytesRead.Load(),
		PhysicalBytesWrite:  s.stats.physicalBytesWrite.Load(),
		PhysicalReadOps:     s.stats.physicalReadOps.Load(),
		IORetries:           s.stats.ioRetries.Load(),
		Degraded:            s.stats.degraded.Load(),
		CompactionCount:     s.stats.compactionCount.Load(),
		CompactionRewrites:  s.stats.compactionRewrites.Load(),
		TombstonesLive:      tombs,
		LiveDataBytes:       uint64(live),
		DeadDataBytes:       uint64(size - live),
	}
}

// IndexLen reports the number of resident index entries (live keys).
func (s *Store) IndexLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Generation reports the active entry-file generation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// RegisterMetrics implements kv.MetricsRegistrar: the full kv.Stats gauge
// set plus the flat-specific internals — resident index size, entry-file
// footprint, generation, and the dead fraction that drives compaction.
func (s *Store) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	kv.RegisterStatsMetrics(r, s, labels...)
	r.GaugeFunc(obs.Name("ethkv_flat_index_keys", labels...), func() float64 {
		return float64(s.IndexLen())
	})
	r.GaugeFunc(obs.Name("ethkv_flat_file_bytes", labels...), func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(s.size)
	})
	r.GaugeFunc(obs.Name("ethkv_flat_generation", labels...), func() float64 {
		return float64(s.Generation())
	})
	r.GaugeFunc(obs.Name("ethkv_flat_dead_fraction", labels...), func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.size == 0 {
			return 0
		}
		return float64(s.size-s.live) / float64(s.size)
	})
}

// --- record encoding ---

// appendRecord appends one encoded record to buf:
// kind | klen uvarint | vlen uvarint | key | value | crc32.
func appendRecord(buf []byte, kind byte, key, value []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// rec is one decoded record; key and value alias the input buffer.
type rec struct {
	kind       byte
	key, value []byte
	n          int // total encoded length
}

// parseRecord decodes the record at the head of b, verifying framing and
// crc. keyOff is the offset of the key (= group payload) within b.
func parseRecord(b []byte) (r rec, keyOff int, err error) {
	if len(b) < 1+2+crcLen {
		return rec{}, 0, errCorrupt
	}
	kind := b[0]
	if kind > kindGroup {
		return rec{}, 0, errCorrupt
	}
	i := 1
	klen, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return rec{}, 0, errCorrupt
	}
	i += n
	vlen, un := binary.Uvarint(b[i:])
	if un <= 0 {
		return rec{}, 0, errCorrupt
	}
	i += un
	if klen > uint64(len(b)) || vlen > uint64(len(b)) ||
		uint64(i)+klen+vlen+crcLen > uint64(len(b)) {
		return rec{}, 0, errCorrupt
	}
	end := i + int(klen) + int(vlen)
	if crc32.ChecksumIEEE(b[:end]) != binary.BigEndian.Uint32(b[end:end+crcLen]) {
		return rec{}, 0, errCorrupt
	}
	return rec{
		kind:  kind,
		key:   b[i : i+int(klen)],
		value: b[i+int(klen) : end],
		n:     end + crcLen,
	}, i, nil
}

// replayOp is one index effect recovered by replay.
type replayOp struct {
	kind  byte
	key   []byte
	value []byte
	off   int64 // absolute offset of the standalone record
	n     int   // encoded length of the standalone record
}

// replayData walks a record sequence, returning the recovered ops and the
// length of the longest valid prefix; bytes past the prefix are the torn
// tail. base is the absolute file offset data starts at. Groups are
// unwrapped one level (allowGroup); a group whose payload does not parse
// completely is rejected whole — batches are all-or-nothing.
func replayData(data []byte, base int64, allowGroup bool) (ops []replayOp, valid int64) {
	off := 0
	for off < len(data) {
		r, keyOff, err := parseRecord(data[off:])
		if err != nil {
			break
		}
		if r.kind == kindGroup {
			if !allowGroup {
				break
			}
			subOps, subValid := replayData(r.key, base+int64(off)+int64(keyOff), false)
			if subValid != int64(len(r.key)) {
				break
			}
			ops = append(ops, subOps...)
		} else {
			ops = append(ops, replayOp{
				kind:  r.kind,
				key:   r.key,
				value: r.value,
				off:   base + int64(off),
				n:     r.n,
			})
		}
		off += r.n
	}
	return ops, int64(off)
}
