package flatstore

// Fuzz coverage for the entry-file replay path — the decoder crash
// recovery feeds with whatever bytes survived. The invariant is the one
// torn-tail truncation relies on: replay recovers a valid prefix or stops
// clean, and every op it reports must read back identically through the
// same extents a Get would use. It must never panic and never fabricate
// data.

import (
	"bytes"
	"fmt"
	"testing"
)

// canonicalFile builds a well-formed entry file mixing singles, groups,
// and tombstones, returning the bytes and the op sequence they encode.
func canonicalFile() ([]byte, []replayOp) {
	var data []byte
	record := func(kind byte, key, value string) {
		data = appendRecord(data, kind, []byte(key), []byte(value))
	}
	record(kindPut, "alpha", "one")
	record(kindPut, "beta", string(bytes.Repeat([]byte{0x42}, 100)))
	record(kindTombstone, "alpha", "")
	var payload []byte
	payload = appendRecord(payload, kindPut, []byte("gamma"), []byte("batched-1"))
	payload = appendRecord(payload, kindTombstone, []byte("beta"), nil)
	payload = appendRecord(payload, kindPut, []byte("delta"), []byte(""))
	data = appendRecord(data, kindGroup, payload, nil)
	record(kindPut, "epsilon", "tail")
	ops, valid := replayData(data, 0, true)
	if valid != int64(len(data)) {
		panic("canonical file does not replay whole")
	}
	return data, ops
}

func sameOps(a, b []replayOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind ||
			!bytes.Equal(a[i].key, b[i].key) ||
			!bytes.Equal(a[i].value, b[i].value) ||
			a[i].off != b[i].off || a[i].n != b[i].n {
			return false
		}
	}
	return true
}

func FuzzFlatEntryReplay(f *testing.F) {
	data, _ := canonicalFile()
	f.Add([]byte{})
	f.Add(data)
	f.Add(data[:len(data)/2]) // torn mid-record
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/3] ^= 0x04
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, in []byte) {
		ops, valid := replayData(in, 0, true)
		if valid < 0 || valid > int64(len(in)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(in))
		}
		// Truncation fixpoint: recovery truncates to the valid prefix and
		// would replay again on the next open; that second replay must see
		// the whole prefix as valid and recover the identical ops.
		again, validAgain := replayData(in[:valid], 0, true)
		if validAgain != valid || !sameOps(ops, again) {
			t.Fatalf("replay of truncated prefix diverged: valid %d→%d, %d→%d ops",
				valid, validAgain, len(ops), len(again))
		}
		// Every reported op must be readable back through its extent —
		// exactly the ReadAt a Get would issue against the resident index.
		for _, op := range ops {
			if op.off < 0 || op.off+int64(op.n) > valid {
				t.Fatalf("op extent [%d,+%d) escapes the valid prefix %d", op.off, op.n, valid)
			}
			r, _, err := parseRecord(in[op.off : op.off+int64(op.n)])
			if err != nil {
				t.Fatalf("indexed extent at %d does not re-parse: %v", op.off, err)
			}
			if r.kind != op.kind || !bytes.Equal(r.key, op.key) || !bytes.Equal(r.value, op.value) {
				t.Fatalf("extent at %d reads back different data: %q/%q vs %q/%q",
					op.off, r.key, r.value, op.key, op.value)
			}
		}
	})
}

// TestFlatReplayBitFlips flips every bit of the canonical entry file, one
// at a time, and requires replay to recover a strict prefix of the
// original op sequence — never altered data, never reordered ops, never a
// fabricated record. This is the deterministic core of the fuzz property:
// a single flipped bit anywhere must cost at most the suffix from the
// damaged record onward.
func TestFlatReplayBitFlips(t *testing.T) {
	data, canonical := canonicalFile()
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			damaged := append([]byte(nil), data...)
			damaged[pos] ^= 1 << bit
			ops, valid := replayData(damaged, 0, true)
			if valid > int64(len(data)) {
				t.Fatalf("flip %d.%d: valid %d beyond input", pos, bit, valid)
			}
			if len(ops) > len(canonical) {
				t.Fatalf("flip %d.%d: %d ops from a file encoding %d", pos, bit, len(ops), len(canonical))
			}
			if !sameOps(ops, canonical[:len(ops)]) {
				t.Fatalf("flip %d.%d: recovered ops are not a prefix of the original sequence\ngot %s\nwant prefix of %s",
					pos, bit, fmtOps(ops), fmtOps(canonical))
			}
		}
	}
}

func fmtOps(ops []replayOp) string {
	var sb bytes.Buffer
	for _, op := range ops {
		fmt.Fprintf(&sb, "[%d %q=%q @%d+%d]", op.kind, op.key, op.value, op.off, op.n)
	}
	return sb.String()
}
