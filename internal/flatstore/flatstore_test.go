package flatstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

func openMem(t *testing.T, fs faultfs.FS, opts Options) *Store {
	t.Helper()
	opts.FS = fs
	s, err := Open("db", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestBasicRoundTrip(t *testing.T) {
	s := openMem(t, faultfs.NewMemFS(), Options{})
	defer s.Close()

	if _, err := s.Get([]byte("missing")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get missing: want ErrNotFound, got %v", err)
	}
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("a"))
	if err != nil || string(v) != "2" {
		t.Fatalf("Get a = %q, %v; want 2", v, err)
	}
	// Empty value is present, not absent.
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, err = s.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("Get empty = %q, %v; want empty value", v, err)
	}
	ok, err := s.Has([]byte("empty"))
	if err != nil || !ok {
		t.Fatalf("Has empty = %v, %v; want true", ok, err)
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get deleted: want ErrNotFound, got %v", err)
	}
	// Deleting an absent key is not an error.
	if err := s.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
}

func TestValueIsolation(t *testing.T) {
	s := openMem(t, faultfs.NewMemFS(), Options{})
	defer s.Close()
	val := []byte("original")
	if err := s.Put([]byte("k"), val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller scribbles on its buffer after Put
	got, err := s.Get([]byte("k"))
	if err != nil || string(got) != "original" {
		t.Fatalf("Get = %q, %v; want original", got, err)
	}
	got[0] = 'Y' // caller scribbles on the returned value
	again, err := s.Get([]byte("k"))
	if err != nil || string(again) != "original" {
		t.Fatalf("Get after scribble = %q, %v; want original", again, err)
	}
}

func TestOrderedIteration(t *testing.T) {
	s := openMem(t, faultfs.NewMemFS(), Options{})
	defer s.Close()
	keys := []string{"b/2", "a/1", "b/1", "c/9", "b/3"}
	for _, k := range keys {
		if err := s.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	it := s.NewIterator([]byte("b/"), nil)
	defer it.Release()
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
		if want := "v-" + string(it.Key()); string(it.Value()) != want {
			t.Fatalf("value for %s = %q, want %q", it.Key(), it.Value(), want)
		}
	}
	if it.Error() != nil {
		t.Fatalf("iterator error: %v", it.Error())
	}
	want := []string{"b/1", "b/2", "b/3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan order = %v, want %v", got, want)
	}
	// start positions within the prefix.
	it2 := s.NewIterator([]byte("b/"), []byte("2"))
	defer it2.Release()
	got = nil
	for it2.Next() {
		got = append(got, string(it2.Key()))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"b/2", "b/3"}) {
		t.Fatalf("scan from start = %v", got)
	}
}

func TestReopenRecovers(t *testing.T) {
	mem := faultfs.NewMemFS()
	s := openMem(t, mem, Options{})
	b := s.NewBatch()
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("key-010")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openMem(t, mem, Options{})
	defer s2.Close()
	if _, err := s2.Get([]byte("key-010")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key survived reopen: %v", err)
	}
	for i := 0; i < 50; i++ {
		if i == 10 {
			continue
		}
		k := fmt.Sprintf("key-%03d", i)
		v, err := s2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("Get %s after reopen = %q, %v", k, v, err)
		}
	}
}

// TestSinglePhysicalReadPerGet pins the backend's core promise: after a
// cold reopen, each point read costs exactly one storage-layer read
// operation (the acceptance criterion "≤ 1 physical read per Get").
func TestSinglePhysicalReadPerGet(t *testing.T) {
	mem := faultfs.NewMemFS()
	s := openMem(t, mem, Options{})
	b := s.NewBatch()
	const n = 200
	for i := 0; i < n; i++ {
		b.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{byte(i)}, 64))
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openMem(t, mem, Options{})
	defer s2.Close()
	base := s2.Stats().PhysicalReadOps
	for i := 0; i < n; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ops := s2.Stats().PhysicalReadOps - base
	if ops != n {
		t.Fatalf("%d Gets cost %d physical read ops; want exactly %d (one per Get)", n, ops, n)
	}
	// A miss costs zero physical reads: the resident index answers it.
	preMiss := s2.Stats().PhysicalReadOps
	if _, err := s2.Get([]byte("absent")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal(err)
	}
	if got := s2.Stats().PhysicalReadOps - preMiss; got != 0 {
		t.Fatalf("missing-key Get cost %d physical reads; want 0", got)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	mem := faultfs.NewMemFS()
	s := openMem(t, mem, Options{})
	b := s.NewBatch()
	b.Put([]byte("durable-1"), []byte("v1"))
	b.Put([]byte("durable-2"), []byte("v2"))
	if err := b.Write(); err != nil { // synced: acked
		t.Fatal(err)
	}
	// Un-synced singles: may be lost, wholly or partially, at crash.
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("volatile-%02d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash keeping a torn prefix of the volatile tail, with a flipped
	// byte modelling mid-write sector damage.
	mem.Crash(func(path string, volatile []byte) []byte {
		kept := append([]byte(nil), volatile[:len(volatile)/2]...)
		if len(kept) > 4 {
			kept[len(kept)-3] ^= 0x41
		}
		return kept
	})

	s2 := openMem(t, mem, Options{})
	defer s2.Close()
	for _, k := range []string{"durable-1", "durable-2"} {
		if _, err := s2.Get([]byte(k)); err != nil {
			t.Fatalf("acked key %s lost: %v", k, err)
		}
	}
	// Whatever volatile prefix survived must read back correctly; the
	// torn region must be gone, and new writes must land cleanly.
	it := s2.NewIterator(nil, nil)
	for it.Next() {
	}
	if it.Error() != nil {
		t.Fatalf("post-recovery scan error: %v", it.Error())
	}
	it.Release()
	if err := s2.Put([]byte("after-crash"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, err := s2.Get([]byte("after-crash")); err != nil || string(v) != "ok" {
		t.Fatalf("post-recovery write: %q, %v", v, err)
	}
}

func TestCompactionReclaimsAndPreservesData(t *testing.T) {
	mem := faultfs.NewMemFS()
	s := openMem(t, mem, Options{CompactAfterDeadBytes: -1})
	const n = 30
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("key-%02d", i))
			if err := s.Put(k, []byte(fmt.Sprintf("round-%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("key-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pre := s.Stats()
	if pre.DeadDataBytes == 0 {
		t.Fatal("overwrites produced no dead bytes")
	}

	// Pin an iterator across the compaction: its generation snapshot must
	// keep reading cleanly after the swap deletes the old file.
	it := s.NewIterator(nil, nil)

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	post := s.Stats()
	if post.DeadDataBytes != 0 {
		t.Fatalf("DeadDataBytes after compaction = %d, want 0", post.DeadDataBytes)
	}
	if post.CompactionRewrites != n-5 {
		t.Fatalf("CompactionRewrites = %d, want %d", post.CompactionRewrites, n-5)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}

	var iterated int
	for it.Next() {
		iterated++
	}
	if it.Error() != nil {
		t.Fatalf("iterator across compaction: %v", it.Error())
	}
	it.Release()
	if iterated != n-5 {
		t.Fatalf("iterator across compaction saw %d keys, want %d", iterated, n-5)
	}

	for i := 5; i < n; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != "round-3" {
			t.Fatalf("Get %s after compaction = %q, %v", k, v, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The swap is durable: reopen lands on generation 2 with the same data,
	// and the old generation file is gone.
	s2 := openMem(t, mem, Options{})
	defer s2.Close()
	if s2.Generation() != 2 {
		t.Fatalf("generation after reopen = %d, want 2", s2.Generation())
	}
	if got, err := s2.fs.Glob(filepath.Join("db", "flat-*.log")); err != nil || len(got) != 1 {
		t.Fatalf("generation files after compaction = %v, %v; want exactly one", got, err)
	}
	for i := 5; i < n; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("key-%02d", i))); err != nil {
			t.Fatalf("key-%02d lost across compaction+reopen: %v", i, err)
		}
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	s := openMem(t, faultfs.NewMemFS(), Options{CompactAfterDeadBytes: 1 << 10})
	defer s.Close()
	v := bytes.Repeat([]byte{0xAB}, 128)
	for round := 0; round < 40; round++ {
		if err := s.Put([]byte("hot"), v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().CompactionCount == 0 {
		t.Fatalf("40 overwrites of a 128B value never triggered compaction (dead=%d)",
			s.Stats().DeadDataBytes)
	}
	got, err := s.Get([]byte("hot"))
	if err != nil || !bytes.Equal(got, v) {
		t.Fatalf("hot key after auto-compaction: %v", err)
	}
}

func TestDegradedAfterPermanentFault(t *testing.T) {
	mem := faultfs.NewMemFS()
	plan := faultfs.NewPlan(1)
	s := openMem(t, faultfs.Inject(mem, plan), Options{})
	defer s.Close()
	if err := s.Put([]byte("before"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	plan.SetFailWritesAfter(plan.Writes() + 1)
	err := s.Put([]byte("doomed"), []byte("v"))
	if err == nil {
		t.Fatal("write after permanent fault succeeded")
	}
	if !errors.Is(s.Put([]byte("later"), []byte("v")), kv.ErrDegraded) {
		t.Fatal("store did not latch degraded mode")
	}
	if s.Stats().Degraded != 1 {
		t.Fatal("Stats.Degraded != 1")
	}
	// Reads keep working; the failed write is invisible.
	if v, gerr := s.Get([]byte("before")); gerr != nil || string(v) != "v" {
		t.Fatalf("read in degraded mode: %q, %v", v, gerr)
	}
	if _, gerr := s.Get([]byte("doomed")); !errors.Is(gerr, kv.ErrNotFound) {
		t.Fatalf("failed write visible: %v", gerr)
	}
}

func TestTransientFaultsRetried(t *testing.T) {
	mem := faultfs.NewMemFS()
	plan := faultfs.NewPlan(7)
	plan.TransientProb = 0.3
	s := openMem(t, faultfs.Inject(mem, plan), Options{})
	defer s.Close()
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatalf("Put under transient faults: %v", err)
		}
	}
	if s.Stats().IORetries == 0 {
		t.Fatal("30% transient fault rate produced zero retries")
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("Get after retried writes: %v", err)
		}
	}
}

// TestGroupAtomicity exercises the all-or-nothing replay rule at the
// encoding level: a group record cut anywhere inside its extent must
// contribute none of its sub-records.
func TestGroupAtomicity(t *testing.T) {
	var payload []byte
	payload = appendRecord(payload, kindPut, []byte("aa"), []byte("11"))
	payload = appendRecord(payload, kindPut, []byte("bb"), []byte("22"))
	group := appendRecord(nil, kindGroup, payload, nil)

	full, valid := replayData(group, 0, true)
	if len(full) != 2 || valid != int64(len(group)) {
		t.Fatalf("intact group: %d ops, valid=%d", len(full), valid)
	}
	for cut := 1; cut < len(group); cut++ {
		ops, valid := replayData(group[:cut], 0, true)
		if len(ops) != 0 || valid != 0 {
			t.Fatalf("group cut at %d leaked %d ops (valid=%d); batches must be all-or-nothing",
				cut, len(ops), valid)
		}
	}
	// A single flipped bit anywhere must reject the group too.
	for i := 0; i < len(group); i++ {
		damaged := append([]byte(nil), group...)
		damaged[i] ^= 0x10
		ops, _ := replayData(damaged, 0, true)
		for _, op := range ops {
			if string(op.key) != "aa" && string(op.key) != "bb" {
				t.Fatalf("bit flip at %d produced fabricated key %q", i, op.key)
			}
			if string(op.value) != "11" && string(op.value) != "22" {
				t.Fatalf("bit flip at %d produced fabricated value %q", i, op.value)
			}
		}
	}
}

// TestScanLatchesCorruption damages a record in place and requires the
// iterator to surface the damage through Error() rather than silently
// skipping or truncating the scan.
func TestScanLatchesCorruption(t *testing.T) {
	mem := faultfs.NewMemFS()
	s := openMem(t, mem, Options{})
	defer s.Close()
	b := s.NewBatch()
	for i := 0; i < 20; i++ {
		b.Put([]byte(fmt.Sprintf("key-%02d", i)), bytes.Repeat([]byte{'v'}, 32))
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	// Stomp bytes in the middle of the entry file, inside record extents.
	path := s.genPath(s.Generation())
	data, err := mem.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := mem.Create(path + ".tmp")
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	for i := mid; i < mid+16 && i < len(data); i++ {
		data[i] = 0xFF
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	if err := mem.Rename(path+".tmp", path); err != nil {
		t.Fatal(err)
	}
	// The resident index still points at the damaged extents; a fresh
	// iterator (its handle snapshots the damaged file) must latch.
	it := s.NewIterator(nil, nil)
	defer it.Release()
	n := 0
	for it.Next() {
		n++
	}
	if it.Error() == nil {
		t.Fatalf("scan over damaged file yielded %d entries with nil Error", n)
	}
	if n >= 20 {
		t.Fatalf("scan yielded all %d entries despite damage", n)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openMem(t, faultfs.NewMemFS(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get on closed store: %v", err)
	}
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put on closed store: %v", err)
	}
	it := s.NewIterator(nil, nil)
	if it.Next() || !errors.Is(it.Error(), kv.ErrClosed) {
		t.Fatalf("iterator on closed store: %v", it.Error())
	}
}

func TestRegisterMetricsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s := openMem(t, faultfs.NewMemFS(), Options{})
	defer s.Close()
	s.RegisterMetrics(reg, "store", "flat")
	if err := s.Put([]byte("k"), bytes.Repeat([]byte{'v'}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("short")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]func(v float64) bool{
		`ethkv_flat_index_keys{store="flat"}`:           func(v float64) bool { return v == 1 },
		`ethkv_flat_generation{store="flat"}`:           func(v float64) bool { return v == 1 },
		`ethkv_flat_file_bytes{store="flat"}`:           func(v float64) bool { return v > 0 },
		`ethkv_flat_dead_fraction{store="flat"}`:        func(v float64) bool { return v > 0 && v < 1 },
		`ethkv_store_live_data_bytes{store="flat"}`:     func(v float64) bool { return v > 0 },
		`ethkv_store_dead_data_bytes{store="flat"}`:     func(v float64) bool { return v > 0 },
		`ethkv_store_physical_read_ops{store="flat"}`:   func(v float64) bool { return v >= 0 },
		`ethkv_store_compaction_rewrites{store="flat"}`: func(v float64) bool { return v == 0 },
	}
	for name, ok := range want {
		v, present := snap.Gauges[name]
		if !present {
			t.Errorf("gauge %s missing (have %d gauges)", name, len(snap.Gauges))
			continue
		}
		if !ok(v) {
			t.Errorf("gauge %s = %v fails its predicate", name, v)
		}
	}
}
