package kv

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMemStoreBasic(t *testing.T) {
	s := NewMemStore()
	defer s.Close()

	if _, err := s.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: want ErrNotFound, got %v", err)
	}
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get a = %q, %v", v, err)
	}
	ok, err := s.Has([]byte("a"))
	if err != nil || !ok {
		t.Fatalf("Has a = %v, %v", ok, err)
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("a")); ok {
		t.Fatal("key survived Delete")
	}
	// Deleting absent keys is not an error.
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestMemStoreValueIsolation(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	val := []byte("mutable")
	s.Put([]byte("k"), val)
	val[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "mutable" {
		t.Fatalf("Get returned aliased buffer: %q", got2)
	}
}

func TestMemStoreIterator(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	for _, k := range []string{"b1", "a2", "a1", "c3", "a3"} {
		s.Put([]byte(k), []byte("v"+k))
	}
	it := s.NewIterator([]byte("a"), nil)
	defer it.Release()
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
		if want := "v" + string(it.Key()); string(it.Value()) != want {
			t.Errorf("value for %s = %q, want %q", it.Key(), it.Value(), want)
		}
	}
	want := []string{"a1", "a2", "a3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("prefix scan = %v, want %v", got, want)
	}
	if it.Error() != nil {
		t.Fatal(it.Error())
	}
}

func TestMemStoreIteratorStart(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("p%d", i)), []byte{byte(i)})
	}
	it := s.NewIterator([]byte("p"), []byte("5"))
	defer it.Release()
	var n int
	for it.Next() {
		if bytes.Compare(it.Key(), []byte("p5")) < 0 {
			t.Errorf("iterator returned key %q below start", it.Key())
		}
		n++
	}
	if n != 5 {
		t.Fatalf("got %d keys from start, want 5", n)
	}
}

func TestMemStoreIteratorBeforeNext(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	s.Put([]byte("k"), []byte("v"))
	it := s.NewIterator(nil, nil)
	defer it.Release()
	if it.Key() != nil || it.Value() != nil {
		t.Fatal("Key/Value before Next must be nil")
	}
}

func TestBatchWrite(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	s.Put([]byte("stale"), []byte("x"))

	b := s.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	b.Delete([]byte("stale"))
	if b.ValueSize() == 0 {
		t.Fatal("ValueSize should grow with pending ops")
	}
	// Nothing applied before Write.
	if ok, _ := s.Has([]byte("k1")); ok {
		t.Fatal("batch applied before Write")
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get([]byte("k1")); string(v) != "v1" {
		t.Fatalf("k1 = %q", v)
	}
	if ok, _ := s.Has([]byte("stale")); ok {
		t.Fatal("stale survived batch delete")
	}

	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset did not clear size")
	}
}

func TestBatchReplay(t *testing.T) {
	src := NewMemStore()
	defer src.Close()
	b := src.NewBatch()
	b.Put([]byte("k"), []byte("v"))
	b.Delete([]byte("gone"))

	dst := NewMemStore()
	defer dst.Close()
	dst.Put([]byte("gone"), []byte("x"))
	if err := b.Replay(dst); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Get([]byte("k")); string(v) != "v" {
		t.Fatalf("replayed k = %q", v)
	}
	if ok, _ := dst.Has([]byte("gone")); ok {
		t.Fatal("replay did not delete")
	}
}

func TestClosedStore(t *testing.T) {
	s := NewMemStore()
	s.Close()
	if _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
	if err := s.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if err := s.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close: %v", err)
	}
	b := s.NewBatch()
	b.Put([]byte("k"), []byte("v"))
	if err := b.Write(); !errors.Is(err, ErrClosed) {
		t.Errorf("batch Write after close: %v", err)
	}
}

func TestStatsAmplification(t *testing.T) {
	s := Stats{LogicalBytesWritten: 100, PhysicalBytesWrite: 450,
		LogicalBytesRead: 10, PhysicalBytesRead: 25}
	if got := s.WriteAmplification(); got != 4.5 {
		t.Errorf("WriteAmplification = %v, want 4.5", got)
	}
	if got := s.ReadAmplification(); got != 2.5 {
		t.Errorf("ReadAmplification = %v, want 2.5", got)
	}
	var zero Stats
	if zero.WriteAmplification() != 0 || zero.ReadAmplification() != 0 {
		t.Error("zero stats must yield zero amplification")
	}
}

// TestMemStoreModelProperty drives the store with random op sequences and
// compares against a plain map model.
func TestMemStoreModelProperty(t *testing.T) {
	type op struct {
		Key    uint8
		Value  []byte
		Delete bool
	}
	f := func(ops []op) bool {
		s := NewMemStore()
		defer s.Close()
		model := map[string][]byte{}
		for _, o := range ops {
			k := []byte{o.Key}
			if o.Delete {
				s.Delete(k)
				delete(model, string(k))
			} else {
				s.Put(k, o.Value)
				model[string(k)] = append([]byte{}, o.Value...)
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := s.Get([]byte(k))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("g%d-%d", g, i))
				s.Put(k, k)
				s.Get(k)
				it := s.NewIterator([]byte("g"), nil)
				it.Next()
				it.Release()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// TestStatsMergeCoversEveryField walks kv.Stats with reflection and proves
// Merge carries every counter — the regression guard for the bug class
// where a new Stats field is silently dropped by aggregating wrappers
// (hybrid, lazystore) because a hand-written merge never learned about it.
func TestStatsMergeCoversEveryField(t *testing.T) {
	var src Stats
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetUint(1)
	}
	var dst Stats
	dst.Merge(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		if dv.Field(i).Uint() != 1 {
			t.Errorf("Stats.Merge drops field %s", dv.Type().Field(i).Name)
		}
	}
	// MergePhysical must cover exactly the fields Merge covers minus the
	// logical client-side counters.
	logical := map[string]bool{
		"Gets": true, "Puts": true, "Deletes": true, "Scans": true,
		"LogicalBytesRead": true, "LogicalBytesWritten": true,
	}
	var phys Stats
	phys.MergePhysical(src)
	pv := reflect.ValueOf(phys)
	for i := 0; i < pv.NumField(); i++ {
		name := pv.Type().Field(i).Name
		want := uint64(1)
		if logical[name] {
			want = 0
		}
		if pv.Field(i).Uint() != want {
			t.Errorf("Stats.MergePhysical field %s = %d, want %d", name, pv.Field(i).Uint(), want)
		}
	}
}
