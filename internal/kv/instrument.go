package kv

import (
	"time"

	"ethkv/internal/obs"
)

// MetricsRegistrar is implemented by stores that can export their internal
// state (level shapes, compaction debt, cache hit rates, …) into an obs
// registry. Wrappers delegate to the store they wrap.
type MetricsRegistrar interface {
	RegisterMetrics(r *obs.Registry, labels ...string)
}

// Instrument wraps store so every operation records latency and byte-count
// metrics into r. Series are labelled with op="get|put|delete|has|scan|batch"
// plus any extra label pairs (e.g. store="lsm", trace="cached"):
//
//	ethkv_op_latency_ns{op="get",...}   histogram, nanoseconds per call
//	ethkv_op_total{op="get",...}        counter, calls
//	ethkv_op_errors_total{op="get",...} counter, calls returning an error
//	                                    (ErrNotFound is a result, not an error)
//	ethkv_op_bytes_total{op="get",...}  counter, key+value bytes through the op
//
// A nil registry returns store unchanged: the decorator costs nothing when
// observability is off. If store implements StatsProvider or
// MetricsRegistrar, the wrapper forwards both.
func Instrument(store Store, r *obs.Registry, labels ...string) Store {
	if r == nil {
		return store
	}
	is := &instrumentedStore{store: store}
	for i, op := range opNames {
		l := append([]string{"op", op}, labels...)
		is.ops[i] = opMetrics{
			latency: r.Histogram(obs.Name("ethkv_op_latency_ns", l...)),
			calls:   r.Counter(obs.Name("ethkv_op_total", l...)),
			errors:  r.Counter(obs.Name("ethkv_op_errors_total", l...)),
			bytes:   r.Counter(obs.Name("ethkv_op_bytes_total", l...)),
		}
	}
	if reg, ok := store.(MetricsRegistrar); ok {
		reg.RegisterMetrics(r, labels...)
	}
	return is
}

// op indices into instrumentedStore.ops.
const (
	opGet = iota
	opPut
	opDelete
	opHas
	opScan
	opBatch
	opCount
)

var opNames = [opCount]string{"get", "put", "delete", "has", "scan", "batch"}

// opMetrics is the per-operation handle bundle, resolved once at wrap time so
// the hot path never touches the registry lock.
type opMetrics struct {
	latency *obs.Histogram
	calls   *obs.Counter
	errors  *obs.Counter
	bytes   *obs.Counter
}

// observe records one completed call. ErrNotFound and ErrClosed-free results
// count as successes; absence is an answer, not a failure.
func (m *opMetrics) observe(start time.Time, nbytes int, err error) {
	m.latency.Observe(uint64(time.Since(start)))
	m.calls.Inc()
	if nbytes > 0 {
		m.bytes.Add(uint64(nbytes))
	}
	if err != nil && err != ErrNotFound {
		m.errors.Inc()
	}
}

// instrumentedStore decorates a Store with per-op metrics.
type instrumentedStore struct {
	store Store
	ops   [opCount]opMetrics
}

var _ Store = (*instrumentedStore)(nil)
var _ StatsProvider = (*instrumentedStore)(nil)

func (s *instrumentedStore) Get(key []byte) ([]byte, error) {
	start := time.Now()
	v, err := s.store.Get(key)
	s.ops[opGet].observe(start, len(key)+len(v), err)
	return v, err
}

func (s *instrumentedStore) Has(key []byte) (bool, error) {
	start := time.Now()
	ok, err := s.store.Has(key)
	s.ops[opHas].observe(start, len(key), err)
	return ok, err
}

func (s *instrumentedStore) Put(key, value []byte) error {
	start := time.Now()
	err := s.store.Put(key, value)
	s.ops[opPut].observe(start, len(key)+len(value), err)
	return err
}

func (s *instrumentedStore) Delete(key []byte) error {
	start := time.Now()
	err := s.store.Delete(key)
	s.ops[opDelete].observe(start, len(key), err)
	return err
}

// NewIterator records one scan event covering iterator construction; the
// per-entry walk is the caller's loop and is deliberately not intercepted
// (wrapping Next would put a timer call on every entry of every scan).
func (s *instrumentedStore) NewIterator(prefix, start []byte) Iterator {
	t0 := time.Now()
	it := s.store.NewIterator(prefix, start)
	s.ops[opScan].observe(t0, len(prefix)+len(start), it.Error())
	return it
}

// NewBatch returns a batch whose Write is timed as one "batch" op sized at
// the batch's ValueSize.
func (s *instrumentedStore) NewBatch() Batch {
	return &instrumentedBatch{Batch: s.store.NewBatch(), m: &s.ops[opBatch]}
}

func (s *instrumentedStore) Close() error { return s.store.Close() }

// Stats forwards to the wrapped store when it tracks stats.
func (s *instrumentedStore) Stats() Stats {
	if sp, ok := s.store.(StatsProvider); ok {
		return sp.Stats()
	}
	return Stats{}
}

// Drain forwards to the wrapped store when it supports draining.
func (s *instrumentedStore) Drain() error { return Drain(s.store) }

// Unwrap exposes the underlying store (tests, and callers needing
// backend-specific APIs).
func (s *instrumentedStore) Unwrap() Store { return s.store }

// RegisterStatsMetrics exports every kv.Stats counter of sp as callback
// gauges named ethkv_store_<field>{...labels}, evaluated at scrape/snapshot
// time. Stats() implementations take their own locks, so the callbacks are
// safe from any goroutine.
func RegisterStatsMetrics(r *obs.Registry, sp StatsProvider, labels ...string) {
	if r == nil || sp == nil {
		return
	}
	fields := []struct {
		name string
		get  func(Stats) float64
	}{
		{"gets", func(s Stats) float64 { return float64(s.Gets) }},
		{"puts", func(s Stats) float64 { return float64(s.Puts) }},
		{"deletes", func(s Stats) float64 { return float64(s.Deletes) }},
		{"scans", func(s Stats) float64 { return float64(s.Scans) }},
		{"logical_bytes_read", func(s Stats) float64 { return float64(s.LogicalBytesRead) }},
		{"logical_bytes_written", func(s Stats) float64 { return float64(s.LogicalBytesWritten) }},
		{"physical_bytes_read", func(s Stats) float64 { return float64(s.PhysicalBytesRead) }},
		{"physical_bytes_written", func(s Stats) float64 { return float64(s.PhysicalBytesWrite) }},
		{"compactions", func(s Stats) float64 { return float64(s.CompactionCount) }},
		{"tombstones_live", func(s Stats) float64 { return float64(s.TombstonesLive) }},
		{"flushes", func(s Stats) float64 { return float64(s.FlushCount) }},
		{"write_stalls", func(s Stats) float64 { return float64(s.WriteStalls) }},
		{"write_stall_nanos", func(s Stats) float64 { return float64(s.WriteStallNanos) }},
		{"io_retries", func(s Stats) float64 { return float64(s.IORetries) }},
		{"degraded", func(s Stats) float64 { return float64(s.Degraded) }},
		{"block_cache_hits", func(s Stats) float64 { return float64(s.BlockCacheHits) }},
		{"block_cache_misses", func(s Stats) float64 { return float64(s.BlockCacheMisses) }},
		{"block_cache_evictions", func(s Stats) float64 { return float64(s.BlockCacheEvictions) }},
		{"block_cache_pinned_bytes", func(s Stats) float64 { return float64(s.BlockCachePinnedBytes) }},
		{"bloom_negatives", func(s Stats) float64 { return float64(s.BloomNegatives) }},
		{"bloom_false_positives", func(s Stats) float64 { return float64(s.BloomFalsePositives) }},
		{"physical_read_ops", func(s Stats) float64 { return float64(s.PhysicalReadOps) }},
		{"live_data_bytes", func(s Stats) float64 { return float64(s.LiveDataBytes) }},
		{"dead_data_bytes", func(s Stats) float64 { return float64(s.DeadDataBytes) }},
		{"compaction_rewrites", func(s Stats) float64 { return float64(s.CompactionRewrites) }},
		{"sub_compactions", func(s Stats) float64 { return float64(s.SubCompactions) }},
		{"compaction_parallel_nanos", func(s Stats) float64 { return float64(s.CompactionParallelNanos) }},
		{"max_concurrent_compactions", func(s Stats) float64 { return float64(s.MaxConcurrentCompactions) }},
		{"compaction_debt_peak_bytes", func(s Stats) float64 { return float64(s.CompactionDebtPeak) }},
		{"write_amplification", Stats.WriteAmplification},
		{"read_amplification", Stats.ReadAmplification},
		{"block_cache_hit_rate", Stats.BlockCacheHitRate},
	}
	for _, f := range fields {
		get := f.get
		r.GaugeFunc(obs.Name("ethkv_store_"+f.name, labels...), func() float64 {
			return get(sp.Stats())
		})
	}
}

// instrumentedBatch times the commit, not the staging: Put/Delete on a batch
// are memory appends, Write is the real storage operation.
type instrumentedBatch struct {
	Batch
	m *opMetrics
}

func (b *instrumentedBatch) Write() error {
	start := time.Now()
	size := b.ValueSize()
	err := b.Batch.Write()
	b.m.observe(start, size, err)
	return err
}
