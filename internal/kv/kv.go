// Package kv defines the key-value store interfaces shared by every storage
// backend in this repository, mirroring the surface Geth expects from its
// database (Pebble): point reads, writes, deletes, ordered scans, and
// atomic batches.
package kv

import (
	"bytes"
	"errors"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("kv: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kv: store closed")

// ErrDegraded is returned by write operations once a store has latched
// into read-only degraded mode after a permanent storage failure: reads
// keep being served from whatever state survives, but no write can be made
// durable, so none is accepted. The condition is sticky for the life of
// the store handle; Stats.Degraded reports it.
var ErrDegraded = errors.New("kv: store degraded to read-only after storage failure")

// Reader provides read access to a store.
type Reader interface {
	// Has reports whether the key exists.
	Has(key []byte) (bool, error)
	// Get returns the value for key, or ErrNotFound.
	Get(key []byte) ([]byte, error)
}

// Writer provides write access to a store.
type Writer interface {
	// Put inserts or overwrites a key.
	Put(key, value []byte) error
	// Delete removes a key. Deleting an absent key is not an error.
	Delete(key []byte) error
}

// Iterator walks a key range in ascending key order. The caller must call
// Release when done. Key/Value are only valid until the next call to Next.
type Iterator interface {
	// Next advances the iterator and reports whether an entry is available.
	Next() bool
	// Key returns the current key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Release frees resources held by the iterator.
	Release()
	// Error returns any accumulated error.
	Error() error
}

// Iterable provides ordered range scans.
type Iterable interface {
	// NewIterator returns an iterator over keys with the given prefix,
	// starting at prefix+start. Both may be nil.
	NewIterator(prefix, start []byte) Iterator
}

// Batcher creates write batches.
type Batcher interface {
	// NewBatch returns an empty write batch.
	NewBatch() Batch
}

// Batch accumulates writes and deletes for an atomic commit.
type Batch interface {
	Writer
	// ValueSize returns the byte size of pending data, for flush heuristics.
	ValueSize() int
	// Write atomically applies the batch to the store.
	Write() error
	// Reset clears the batch for reuse.
	Reset()
	// Replay applies the batch contents to the given writer.
	Replay(w Writer) error
}

// Store is the full database interface.
type Store interface {
	Reader
	Writer
	Iterable
	Batcher
	// Close releases all resources.
	Close() error
}

// StatsProvider is implemented by stores that track I/O statistics.
type StatsProvider interface {
	// Stats returns a snapshot of cumulative I/O counters.
	Stats() Stats
}

// Drainer is implemented by stores that run background work (compactions).
// Drain stops scheduling new background work and waits for what is already
// in flight, so a subsequent Close is bounded by running jobs rather than
// the store's full compaction debt. Wrappers forward it to every child.
type Drainer interface {
	Drain() error
}

// Drain winds down s's background work if it supports draining; stores
// without background work drain trivially.
func Drain(s Store) error {
	if d, ok := s.(Drainer); ok {
		return d.Drain()
	}
	return nil
}

// Stats holds cumulative I/O counters for a store. Logical counters track
// the operations issued by the client; physical counters track the bytes the
// backend actually moved (including compaction), which exposes write
// amplification.
type Stats struct {
	Gets    uint64 // point lookups served
	Puts    uint64 // keys written
	Deletes uint64 // keys deleted (tombstones for LSM backends)
	Scans   uint64 // iterators opened

	LogicalBytesRead    uint64 // value bytes returned to clients
	LogicalBytesWritten uint64 // key+value bytes accepted from clients
	PhysicalBytesRead   uint64 // bytes read from the storage layer
	PhysicalBytesWrite  uint64 // bytes written to the storage layer

	CompactionCount uint64 // background compactions run
	TombstonesLive  uint64 // tombstones not yet purged by compaction

	FlushCount      uint64 // memtable flushes to the storage layer
	WriteStalls     uint64 // writes that blocked on backpressure (full flush queue)
	WriteStallNanos uint64 // total nanoseconds writers spent stalled

	IORetries uint64 // transient I/O faults absorbed by retry-with-backoff
	Degraded  uint64 // 1 once the store latched into read-only degraded mode

	BlockCacheHits        uint64 // demand-paged block reads served from the cache
	BlockCacheMisses      uint64 // block reads that went to the storage layer
	BlockCacheEvictions   uint64 // blocks pushed out by the cache byte budget
	BlockCachePinnedBytes uint64 // index+bloom bytes pinned by open tables

	BloomNegatives      uint64 // point lookups short-circuited by a bloom filter
	BloomFalsePositives uint64 // bloom passes whose block probe found no match

	PhysicalReadOps uint64 // discrete storage-layer read operations (ReadAt calls / block fetches)

	LiveDataBytes      uint64 // bytes of live records resident in value-log backends
	DeadDataBytes      uint64 // bytes of dead records awaiting compaction (compaction debt)
	CompactionRewrites uint64 // live records rewritten into a fresh generation by compaction

	SubCompactions          uint64 // key-range sub-compaction units run by split merges
	CompactionParallelNanos uint64 // wall nanoseconds with >= 2 compactions in flight
	// High-water marks (merged by max across stores, not summed: the
	// aggregate "most concurrent compactions" of a shard set is the worst
	// single store, and a process-wide pool makes sums meaningless).
	MaxConcurrentCompactions uint64 // peak compactions in flight at once
	CompactionDebtPeak       uint64 // peak compaction debt bytes observed
}

// Merge adds every counter of o into s. Wrappers that aggregate multiple
// backends (hybrid routing, shard routers) use this instead of hand-listing
// fields, so a counter added to Stats can never be silently dropped from a
// merged view.
func (s *Stats) Merge(o Stats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.Deletes += o.Deletes
	s.Scans += o.Scans
	s.LogicalBytesRead += o.LogicalBytesRead
	s.LogicalBytesWritten += o.LogicalBytesWritten
	s.MergePhysical(o)
}

// MergePhysical adds only the storage-side counters of o into s, leaving
// the logical op/byte counters alone. Tiered wrappers that count logical
// traffic themselves (lazystore) use it to fold in the inner backend's
// physical costs without double-counting client ops.
func (s *Stats) MergePhysical(o Stats) {
	s.PhysicalBytesRead += o.PhysicalBytesRead
	s.PhysicalBytesWrite += o.PhysicalBytesWrite
	s.CompactionCount += o.CompactionCount
	s.TombstonesLive += o.TombstonesLive
	s.FlushCount += o.FlushCount
	s.WriteStalls += o.WriteStalls
	s.WriteStallNanos += o.WriteStallNanos
	s.IORetries += o.IORetries
	s.Degraded += o.Degraded
	s.BlockCacheHits += o.BlockCacheHits
	s.BlockCacheMisses += o.BlockCacheMisses
	s.BlockCacheEvictions += o.BlockCacheEvictions
	s.BlockCachePinnedBytes += o.BlockCachePinnedBytes
	s.BloomNegatives += o.BloomNegatives
	s.BloomFalsePositives += o.BloomFalsePositives
	s.PhysicalReadOps += o.PhysicalReadOps
	s.LiveDataBytes += o.LiveDataBytes
	s.DeadDataBytes += o.DeadDataBytes
	s.CompactionRewrites += o.CompactionRewrites
	s.SubCompactions += o.SubCompactions
	s.CompactionParallelNanos += o.CompactionParallelNanos
	if o.MaxConcurrentCompactions > s.MaxConcurrentCompactions {
		s.MaxConcurrentCompactions = o.MaxConcurrentCompactions
	}
	if o.CompactionDebtPeak > s.CompactionDebtPeak {
		s.CompactionDebtPeak = o.CompactionDebtPeak
	}
}

// WriteAmplification returns physical/logical write ratio, or 0 if no
// logical writes occurred.
func (s Stats) WriteAmplification() float64 {
	if s.LogicalBytesWritten == 0 {
		return 0
	}
	return float64(s.PhysicalBytesWrite) / float64(s.LogicalBytesWritten)
}

// ReadAmplification returns physical/logical read ratio, or 0 if no logical
// reads occurred.
func (s Stats) ReadAmplification() float64 {
	if s.LogicalBytesRead == 0 {
		return 0
	}
	return float64(s.PhysicalBytesRead) / float64(s.LogicalBytesRead)
}

// BlockCacheHitRate returns hits/(hits+misses), or 0 when the cache saw no
// traffic (disabled, or a store that never read a block).
func (s Stats) BlockCacheHitRate() float64 {
	total := s.BlockCacheHits + s.BlockCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.BlockCacheHits) / float64(total)
}

// MemStore is a sorted in-memory Store used as the reference implementation
// in tests and as the backing for small metadata databases. It is safe for
// concurrent use.
type MemStore struct {
	mu     sync.RWMutex
	data   map[string][]byte
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Has implements Reader.
func (m *MemStore) Has(key []byte) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false, ErrClosed
	}
	_, ok := m.data[string(key)]
	return ok, nil
}

// Get implements Reader.
func (m *MemStore) Get(key []byte) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	v, ok := m.data[string(key)]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Put implements Writer.
func (m *MemStore) Put(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	v := make([]byte, len(value))
	copy(v, value)
	m.data[string(key)] = v
	return nil
}

// Delete implements Writer.
func (m *MemStore) Delete(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.data, string(key))
	return nil
}

// Len returns the number of stored keys.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// NewIterator implements Iterable. The iterator operates on a snapshot of
// the matching keys taken at creation time.
func (m *MemStore) NewIterator(prefix, start []byte) Iterator {
	m.mu.RLock()
	defer m.mu.RUnlock()
	lower := append(append([]byte{}, prefix...), start...)
	var keys []string
	for k := range m.data {
		if bytes.HasPrefix([]byte(k), prefix) && bytes.Compare([]byte(k), lower) >= 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	values := make([][]byte, len(keys))
	for i, k := range keys {
		v := m.data[k]
		values[i] = make([]byte, len(v))
		copy(values[i], v)
	}
	return &sliceIterator{keys: keys, values: values, pos: -1}
}

// NewBatch implements Batcher.
func (m *MemStore) NewBatch() Batch {
	return &memBatch{store: m}
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// sliceIterator iterates a materialized key/value snapshot.
type sliceIterator struct {
	keys   []string
	values [][]byte
	pos    int
}

func (it *sliceIterator) Next() bool {
	if it.pos+1 >= len(it.keys) {
		return false
	}
	it.pos++
	return true
}

func (it *sliceIterator) Key() []byte {
	if it.pos < 0 || it.pos >= len(it.keys) {
		return nil
	}
	return []byte(it.keys[it.pos])
}

func (it *sliceIterator) Value() []byte {
	if it.pos < 0 || it.pos >= len(it.values) {
		return nil
	}
	return it.values[it.pos]
}

func (it *sliceIterator) Release()     { it.keys, it.values = nil, nil }
func (it *sliceIterator) Error() error { return nil }

// batchOp is one pending batch operation.
type batchOp struct {
	key    []byte
	value  []byte
	delete bool
}

// memBatch is the Batch implementation shared by MemStore.
type memBatch struct {
	store *MemStore
	ops   []batchOp
	size  int
}

func (b *memBatch) Put(key, value []byte) error {
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	b.ops = append(b.ops, batchOp{key: k, value: v})
	b.size += len(k) + len(v)
	return nil
}

func (b *memBatch) Delete(key []byte) error {
	k := make([]byte, len(key))
	copy(k, key)
	b.ops = append(b.ops, batchOp{key: k, delete: true})
	b.size += len(k)
	return nil
}

func (b *memBatch) ValueSize() int { return b.size }

func (b *memBatch) Write() error {
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	if b.store.closed {
		return ErrClosed
	}
	for _, op := range b.ops {
		if op.delete {
			delete(b.store.data, string(op.key))
		} else {
			b.store.data[string(op.key)] = op.value
		}
	}
	return nil
}

func (b *memBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

func (b *memBatch) Replay(w Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
