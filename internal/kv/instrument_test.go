package kv

import (
	"strings"
	"testing"

	"ethkv/internal/obs"
)

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if got := Instrument(s, nil); got != Store(s) {
		t.Fatal("nil registry must return the store unchanged")
	}
}

func TestInstrumentRecordsPerOp(t *testing.T) {
	r := obs.NewRegistry()
	s := Instrument(NewMemStore(), r, "store", "mem")
	defer s.Close()

	if err := s.Put([]byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("Get absent = %v", err)
	}
	if _, err := s.Has([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	it := s.NewIterator(nil, nil)
	for it.Next() {
	}
	it.Release()
	b := s.NewBatch()
	b.Put([]byte("b"), []byte("v"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}

	snap := r.Snapshot()
	wantCalls := map[string]uint64{
		"get": 2, "put": 1, "delete": 1, "has": 1, "scan": 1, "batch": 1,
	}
	for op, want := range wantCalls {
		name := obs.Name("ethkv_op_total", "op", op, "store", "mem")
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
		hname := obs.Name("ethkv_op_latency_ns", "op", op, "store", "mem")
		h, ok := snap.Histograms[hname]
		if !ok || h.Count != want {
			t.Errorf("%s count = %d (present=%v), want %d", hname, h.Count, ok, want)
		}
	}
	// ErrNotFound is an answer, not an error.
	errName := obs.Name("ethkv_op_errors_total", "op", "get", "store", "mem")
	if got := snap.Counters[errName]; got != 0 {
		t.Errorf("%s = %d, want 0 (ErrNotFound must not count)", errName, got)
	}
	// Put moved key+value bytes.
	bytesName := obs.Name("ethkv_op_bytes_total", "op", "put", "store", "mem")
	if got := snap.Counters[bytesName]; got != uint64(len("k")+len("value")) {
		t.Errorf("%s = %d", bytesName, got)
	}
}

func TestInstrumentCountsRealErrors(t *testing.T) {
	r := obs.NewRegistry()
	s := Instrument(NewMemStore(), r)
	s.Close()
	if _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get on closed = %v", err)
	}
	snap := r.Snapshot()
	if got := snap.Counters[obs.Name("ethkv_op_errors_total", "op", "get")]; got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
}

func TestInstrumentForwardsStatsAndUnwrap(t *testing.T) {
	r := obs.NewRegistry()
	inner := NewMemStore()
	s := Instrument(inner, r)
	defer s.Close()
	if _, ok := s.(StatsProvider); !ok {
		t.Fatal("instrumented store lost StatsProvider")
	}
	u, ok := s.(interface{ Unwrap() Store })
	if !ok || u.Unwrap() != Store(inner) {
		t.Fatal("Unwrap does not expose the inner store")
	}
}

func TestRegisterStatsMetrics(t *testing.T) {
	r := obs.NewRegistry()
	s := NewMemStore() // no StatsProvider: registration must be a no-op
	defer s.Close()
	RegisterStatsMetrics(r, nil)

	fake := fakeStats{Stats{Gets: 7, PhysicalBytesWrite: 100, LogicalBytesWritten: 50}}
	RegisterStatsMetrics(r, fake, "store", "fake")
	snap := r.Snapshot()
	if got := snap.Gauges[obs.Name("ethkv_store_gets", "store", "fake")]; got != 7 {
		t.Fatalf("gets gauge = %v", got)
	}
	if got := snap.Gauges[obs.Name("ethkv_store_write_amplification", "store", "fake")]; got != 2 {
		t.Fatalf("write amp gauge = %v", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ethkv_store_gets{store="fake"} 7`) {
		t.Fatalf("exposition missing stats gauge:\n%s", b.String())
	}
}

type fakeStats struct{ s Stats }

func (f fakeStats) Stats() Stats { return f.s }
