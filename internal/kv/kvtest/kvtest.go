// Package kvtest provides a conformance suite for kv.Store
// implementations. Every backend in this repository (memory, LSM, hash,
// log, hybrid, lazy) runs the same contract checks, so behavioural
// divergence between store designs — the thing the ablations measure on
// purpose — never includes accidental semantic differences.
package kvtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ethkv/internal/kv"
)

// Options tunes the suite for backends with relaxed guarantees.
type Options struct {
	// OrderedScans asserts iterators yield ascending keys. Hash- and
	// log-structured stores intentionally do not maintain order.
	OrderedScans bool
}

// Factory builds a fresh empty store for one subtest.
type Factory func(t *testing.T) kv.Store

// Run executes the full conformance suite against stores built by factory.
func Run(t *testing.T, factory Factory, opts Options) {
	t.Run("PutGetDelete", func(t *testing.T) { testPutGetDelete(t, factory) })
	t.Run("EmptyAndAbsent", func(t *testing.T) { testEmptyAndAbsent(t, factory) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, factory) })
	t.Run("ValueIsolation", func(t *testing.T) { testValueIsolation(t, factory) })
	t.Run("Batch", func(t *testing.T) { testBatch(t, factory) })
	t.Run("BatchReset", func(t *testing.T) { testBatchReset(t, factory) })
	t.Run("IteratorPrefix", func(t *testing.T) { testIteratorPrefix(t, factory, opts) })
	t.Run("RandomizedModel", func(t *testing.T) { testRandomizedModel(t, factory) })
}

func testPutGetDelete(t *testing.T, factory Factory) {
	s := factory(t)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	ok, err := s.Has([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	// Deleting an absent key must not error.
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func testEmptyAndAbsent(t *testing.T, factory Factory) {
	s := factory(t)
	if _, err := s.Get([]byte("absent")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("absent Get: %v", err)
	}
	if ok, err := s.Has([]byte("absent")); err != nil || ok {
		t.Fatalf("absent Has: %v, %v", ok, err)
	}
	// Empty values are legal and distinct from absence.
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatalf("Put empty: %v", err)
	}
	v, err := s.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("Get empty = %q, %v", v, err)
	}
	if ok, _ := s.Has([]byte("empty")); !ok {
		t.Fatal("empty value reported absent")
	}
}

func testOverwrite(t *testing.T, factory Factory) {
	s := factory(t)
	s.Put([]byte("k"), []byte("first"))
	s.Put([]byte("k"), []byte("second"))
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "second" {
		t.Fatalf("overwrite: %q, %v", v, err)
	}
	// Shrinking overwrite.
	s.Put([]byte("k"), []byte("x"))
	if v, _ := s.Get([]byte("k")); string(v) != "x" {
		t.Fatalf("shrinking overwrite: %q", v)
	}
}

func testValueIsolation(t *testing.T, factory Factory) {
	s := factory(t)
	buf := []byte("mutable")
	s.Put([]byte("k"), buf)
	buf[0] = 'X'
	v, _ := s.Get([]byte("k"))
	if string(v) != "mutable" {
		t.Fatalf("store aliased caller's buffer: %q", v)
	}
}

func testBatch(t *testing.T, factory Factory) {
	s := factory(t)
	s.Put([]byte("victim"), []byte("x"))
	b := s.NewBatch()
	b.Put([]byte("b1"), []byte("v1"))
	b.Put([]byte("b2"), []byte("v2"))
	b.Delete([]byte("victim"))
	if b.ValueSize() <= 0 {
		t.Fatal("ValueSize not accumulating")
	}
	if err := b.Write(); err != nil {
		t.Fatalf("batch Write: %v", err)
	}
	for _, k := range []string{"b1", "b2"} {
		if _, err := s.Get([]byte(k)); err != nil {
			t.Fatalf("batched %s missing: %v", k, err)
		}
	}
	if ok, _ := s.Has([]byte("victim")); ok {
		t.Fatal("batched delete lost")
	}
	// Replay must mirror the batch into any writer.
	mirror := kv.NewMemStore()
	defer mirror.Close()
	if err := b.Replay(mirror); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if v, _ := mirror.Get([]byte("b1")); string(v) != "v1" {
		t.Fatal("replay diverged")
	}
}

func testBatchReset(t *testing.T, factory Factory) {
	s := factory(t)
	b := s.NewBatch()
	b.Put([]byte("gone"), []byte("1"))
	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset kept size")
	}
	b.Put([]byte("kept"), []byte("2"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("gone")); ok {
		t.Fatal("reset op applied")
	}
	if ok, _ := s.Has([]byte("kept")); !ok {
		t.Fatal("post-reset op lost")
	}
}

func testIteratorPrefix(t *testing.T, factory Factory, opts Options) {
	s := factory(t)
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("p/%02d", i)), []byte{byte(i)})
	}
	s.Put([]byte("q/other"), []byte("x"))

	it := s.NewIterator([]byte("p/"), nil)
	defer it.Release()
	seen := map[string]bool{}
	var last []byte
	for it.Next() {
		key := it.Key()
		if !bytes.HasPrefix(key, []byte("p/")) {
			t.Fatalf("iterator escaped prefix: %q", key)
		}
		if opts.OrderedScans && last != nil && bytes.Compare(key, last) <= 0 {
			t.Fatalf("keys not strictly ascending: %q after %q", key, last)
		}
		last = append(last[:0], key...)
		seen[string(key)] = true
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if len(seen) != 20 {
		t.Fatalf("iterator saw %d keys, want 20", len(seen))
	}
}

func testRandomizedModel(t *testing.T, factory Factory) {
	s := factory(t)
	rng := rand.New(rand.NewSource(77))
	model := map[string][]byte{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(250))
		switch rng.Intn(10) {
		case 0, 1:
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 2:
			v, err := s.Get([]byte(k))
			want, present := model[k]
			if present && (err != nil || !bytes.Equal(v, want)) {
				t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
			}
			if !present && !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Get(absent %s): %v", k, err)
			}
		default:
			v := []byte(fmt.Sprintf("val-%d", i))
			if err := s.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("final Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
}
