// Package kvtest provides a conformance suite for kv.Store
// implementations. Every backend in this repository (memory, LSM, hash,
// log, hybrid, lazy) runs the same contract checks, so behavioural
// divergence between store designs — the thing the ablations measure on
// purpose — never includes accidental semantic differences.
package kvtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ethkv/internal/kv"
)

// Options tunes the suite for backends with relaxed guarantees.
type Options struct {
	// OrderedScans asserts iterators yield ascending keys. Hash- and
	// log-structured stores intentionally do not maintain order.
	OrderedScans bool
	// Reopen closes a store and reopens it on the same underlying state.
	// Persistent backends set it to unlock the reopen-persistence check;
	// purely in-memory backends leave it nil.
	Reopen func(t *testing.T, s kv.Store) kv.Store
	// CorruptScan injects corruption into the store's durable state and
	// returns the store to scan (usually a reopen over the damaged files).
	// Backends that set it unlock the scan-surfaces-corruption check: a
	// scan over the returned store must report a non-nil Error() rather
	// than a silently truncated result. Pure in-memory backends, which
	// have no durable state to damage, leave it nil.
	CorruptScan func(t *testing.T, s kv.Store) kv.Store
}

// Factory builds a fresh empty store for one subtest.
type Factory func(t *testing.T) kv.Store

// Run executes the full conformance suite against stores built by factory.
func Run(t *testing.T, factory Factory, opts Options) {
	t.Run("PutGetDelete", func(t *testing.T) { testPutGetDelete(t, factory) })
	t.Run("EmptyAndAbsent", func(t *testing.T) { testEmptyAndAbsent(t, factory) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, factory) })
	t.Run("ValueIsolation", func(t *testing.T) { testValueIsolation(t, factory) })
	t.Run("Batch", func(t *testing.T) { testBatch(t, factory) })
	t.Run("BatchReset", func(t *testing.T) { testBatchReset(t, factory) })
	t.Run("IteratorPrefix", func(t *testing.T) { testIteratorPrefix(t, factory, opts) })
	t.Run("ScanAfterMixedOps", func(t *testing.T) { testScanAfterMixedOps(t, factory, opts) })
	t.Run("EmptyValueRoundTrip", func(t *testing.T) { testEmptyValueRoundTrip(t, factory) })
	t.Run("ConcurrentReaders", func(t *testing.T) { testConcurrentReaders(t, factory) })
	t.Run("RandomizedModel", func(t *testing.T) { testRandomizedModel(t, factory) })
	if opts.Reopen != nil {
		t.Run("ReopenPersistence", func(t *testing.T) { testReopenPersistence(t, factory, opts) })
	}
	if opts.CorruptScan != nil {
		t.Run("CorruptScanError", func(t *testing.T) { testCorruptScanError(t, factory, opts) })
	}
}

func testPutGetDelete(t *testing.T, factory Factory) {
	s := factory(t)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	ok, err := s.Has([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	// Deleting an absent key must not error.
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func testEmptyAndAbsent(t *testing.T, factory Factory) {
	s := factory(t)
	if _, err := s.Get([]byte("absent")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("absent Get: %v", err)
	}
	if ok, err := s.Has([]byte("absent")); err != nil || ok {
		t.Fatalf("absent Has: %v, %v", ok, err)
	}
	// Empty values are legal and distinct from absence.
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatalf("Put empty: %v", err)
	}
	v, err := s.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("Get empty = %q, %v", v, err)
	}
	if ok, _ := s.Has([]byte("empty")); !ok {
		t.Fatal("empty value reported absent")
	}
}

func testOverwrite(t *testing.T, factory Factory) {
	s := factory(t)
	s.Put([]byte("k"), []byte("first"))
	s.Put([]byte("k"), []byte("second"))
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "second" {
		t.Fatalf("overwrite: %q, %v", v, err)
	}
	// Shrinking overwrite.
	s.Put([]byte("k"), []byte("x"))
	if v, _ := s.Get([]byte("k")); string(v) != "x" {
		t.Fatalf("shrinking overwrite: %q", v)
	}
}

func testValueIsolation(t *testing.T, factory Factory) {
	s := factory(t)
	buf := []byte("mutable")
	s.Put([]byte("k"), buf)
	buf[0] = 'X'
	v, _ := s.Get([]byte("k"))
	if string(v) != "mutable" {
		t.Fatalf("store aliased caller's buffer: %q", v)
	}
}

func testBatch(t *testing.T, factory Factory) {
	s := factory(t)
	s.Put([]byte("victim"), []byte("x"))
	b := s.NewBatch()
	b.Put([]byte("b1"), []byte("v1"))
	b.Put([]byte("b2"), []byte("v2"))
	b.Delete([]byte("victim"))
	if b.ValueSize() <= 0 {
		t.Fatal("ValueSize not accumulating")
	}
	if err := b.Write(); err != nil {
		t.Fatalf("batch Write: %v", err)
	}
	for _, k := range []string{"b1", "b2"} {
		if _, err := s.Get([]byte(k)); err != nil {
			t.Fatalf("batched %s missing: %v", k, err)
		}
	}
	if ok, _ := s.Has([]byte("victim")); ok {
		t.Fatal("batched delete lost")
	}
	// Replay must mirror the batch into any writer.
	mirror := kv.NewMemStore()
	defer mirror.Close()
	if err := b.Replay(mirror); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if v, _ := mirror.Get([]byte("b1")); string(v) != "v1" {
		t.Fatal("replay diverged")
	}
}

func testBatchReset(t *testing.T, factory Factory) {
	s := factory(t)
	b := s.NewBatch()
	b.Put([]byte("gone"), []byte("1"))
	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset kept size")
	}
	b.Put([]byte("kept"), []byte("2"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("gone")); ok {
		t.Fatal("reset op applied")
	}
	if ok, _ := s.Has([]byte("kept")); !ok {
		t.Fatal("post-reset op lost")
	}
}

func testIteratorPrefix(t *testing.T, factory Factory, opts Options) {
	s := factory(t)
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("p/%02d", i)), []byte{byte(i)})
	}
	s.Put([]byte("q/other"), []byte("x"))

	it := s.NewIterator([]byte("p/"), nil)
	defer it.Release()
	seen := map[string]bool{}
	var last []byte
	for it.Next() {
		key := it.Key()
		if !bytes.HasPrefix(key, []byte("p/")) {
			t.Fatalf("iterator escaped prefix: %q", key)
		}
		if opts.OrderedScans && last != nil && bytes.Compare(key, last) <= 0 {
			t.Fatalf("keys not strictly ascending: %q after %q", key, last)
		}
		last = append(last[:0], key...)
		seen[string(key)] = true
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if len(seen) != 20 {
		t.Fatalf("iterator saw %d keys, want 20", len(seen))
	}
}

// testScanAfterMixedOps interleaves puts, overwrites, and deletes, then
// checks a full scan returns exactly the live keys — in ascending order for
// ordered backends. Deleted keys reappearing in a scan is the classic
// tombstone-handling bug in merged iterators.
func testScanAfterMixedOps(t *testing.T, factory Factory, opts Options) {
	s := factory(t)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("m/%03d", rng.Intn(120))
		if rng.Intn(3) == 0 {
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := []byte(fmt.Sprintf("v%d", i))
			if err := s.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	it := s.NewIterator([]byte("m/"), nil)
	defer it.Release()
	seen := map[string][]byte{}
	var last []byte
	for it.Next() {
		k := append([]byte(nil), it.Key()...)
		if opts.OrderedScans && last != nil && bytes.Compare(k, last) <= 0 {
			t.Fatalf("scan not strictly ascending: %q after %q", k, last)
		}
		last = k
		if _, dup := seen[string(k)]; dup {
			t.Fatalf("scan yielded %q twice", k)
		}
		seen[string(k)] = append([]byte(nil), it.Value()...)
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(model) {
		t.Fatalf("scan saw %d keys, model has %d", len(seen), len(model))
	}
	for k, want := range model {
		if got, ok := seen[k]; !ok || !bytes.Equal(got, want) {
			t.Fatalf("scan[%q] = %q (%v), want %q", k, got, ok, want)
		}
	}
}

// testEmptyValueRoundTrip pins the empty-value-vs-absent-key distinction
// through every surface: point reads, batches, and scans.
func testEmptyValueRoundTrip(t *testing.T, factory Factory) {
	s := factory(t)
	b := s.NewBatch()
	b.Put([]byte("e/batch"), nil)
	b.Put([]byte("e/full"), []byte("data"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("e/direct"), []byte{}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"e/batch", "e/direct"} {
		v, err := s.Get([]byte(k))
		if err != nil || len(v) != 0 {
			t.Fatalf("Get(%s) = %q, %v; want empty, nil", k, v, err)
		}
		if ok, err := s.Has([]byte(k)); err != nil || !ok {
			t.Fatalf("Has(%s) = %v, %v; empty value reported absent", k, ok, err)
		}
	}
	it := s.NewIterator([]byte("e/"), nil)
	defer it.Release()
	got := map[string]int{}
	for it.Next() {
		got[string(it.Key())] = len(it.Value())
	}
	if len(got) != 3 {
		t.Fatalf("scan saw %d keys, want 3 (empty values must scan)", len(got))
	}
	if got["e/batch"] != 0 || got["e/direct"] != 0 || got["e/full"] != 4 {
		t.Fatalf("scan value lengths: %v", got)
	}
	// An empty value deleted is absent again.
	if err := s.Delete([]byte("e/batch")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("e/batch")); ok {
		t.Fatal("deleted empty-value key still present")
	}
}

// testConcurrentReaders hammers point reads while a writer mutates disjoint
// and overlapping keys. Run under -race this is the suite's data-race
// detector for the read path; semantically, readers must only ever observe
// a version some Put actually wrote.
func testConcurrentReaders(t *testing.T, factory Factory) {
	s := factory(t)
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := s.Put(conKey(i), []byte("gen-0")); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 5)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				k := conKey(rng.Intn(keys))
				v, err := s.Get(k)
				if err != nil {
					errc <- fmt.Errorf("concurrent Get(%s): %w", k, err)
					return
				}
				if !bytes.HasPrefix(v, []byte("gen-")) {
					errc <- fmt.Errorf("Get(%s) observed torn value %q", k, v)
					return
				}
				if _, err := s.Has(k); err != nil {
					errc <- fmt.Errorf("concurrent Has(%s): %w", k, err)
					return
				}
			}
		}(r)
	}
	for gen := 1; gen <= 30; gen++ {
		for i := 0; i < keys; i++ {
			if err := s.Put(conKey(i), []byte(fmt.Sprintf("gen-%d", gen))); err != nil {
				t.Fatalf("writer gen %d: %v", gen, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func conKey(i int) []byte { return []byte(fmt.Sprintf("c/%03d", i)) }

// testReopenPersistence checks that state — including deletes and empty
// values — survives a close/reopen cycle on persistent backends.
func testReopenPersistence(t *testing.T, factory Factory, opts Options) {
	s := factory(t)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("r/%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 3 {
		if err := s.Delete([]byte(fmt.Sprintf("r/%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put([]byte("r/empty"), nil); err != nil {
		t.Fatal(err)
	}

	s = opts.Reopen(t, s)

	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("r/%03d", i))
		v, err := s.Get(k)
		if i%3 == 0 {
			if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("deleted key %s resurrected after reopen: %q, %v", k, v, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s lost across reopen: %q, %v", k, v, err)
		}
	}
	if v, err := s.Get([]byte("r/empty")); err != nil || len(v) != 0 {
		t.Fatalf("empty value across reopen = %q, %v", v, err)
	}
}

// testCorruptScanError writes enough data to reach durable storage, lets the
// backend damage it (CorruptScan), and asserts a full scan over the damaged
// store reports the corruption through Error(). The silent alternative — a
// clean-looking scan that stops early — is the bug class this check pins:
// callers like state sync and pruning treat a short scan as "no more keys".
func testCorruptScanError(t *testing.T, factory Factory, opts Options) {
	s := factory(t)
	const total = 2000
	for i := 0; i < total; i++ {
		k := []byte(fmt.Sprintf("cs/%05d", i))
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}

	s = opts.CorruptScan(t, s)

	it := s.NewIterator([]byte("cs/"), nil)
	defer it.Release()
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Error(); err == nil {
		t.Fatalf("scan over corrupted store: %d/%d keys and Error() == nil; corruption was swallowed", n, total)
	} else {
		t.Logf("scan surfaced corruption after %d/%d keys: %v", n, total, err)
	}
	if n >= total {
		t.Fatalf("scan returned all %d keys from a corrupted store", n)
	}
}

func testRandomizedModel(t *testing.T, factory Factory) {
	s := factory(t)
	rng := rand.New(rand.NewSource(77))
	model := map[string][]byte{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(250))
		switch rng.Intn(10) {
		case 0, 1:
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 2:
			v, err := s.Get([]byte(k))
			want, present := model[k]
			if present && (err != nil || !bytes.Equal(v, want)) {
				t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
			}
			if !present && !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Get(absent %s): %v", k, err)
			}
		default:
			v := []byte(fmt.Sprintf("val-%d", i))
			if err := s.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("final Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
}
