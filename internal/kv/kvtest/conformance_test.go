package kvtest

import (
	"os"
	"path/filepath"
	"testing"

	"ethkv/internal/flatstore"
	"ethkv/internal/hashstore"
	"ethkv/internal/hybrid"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
	"ethkv/internal/obs"
	"ethkv/internal/trace"
)

// stompBytes overwrites n bytes of the file at off with 0xFF — a run of
// continuation bytes that no uvarint-framed record decodes through.
func stompBytes(t *testing.T, path string, off, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off+n > len(raw) {
		t.Fatalf("file %s too short to corrupt (%d bytes)", path, len(raw))
	}
	for i := 0; i < n; i++ {
		raw[off+i] = 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Every store backend in the repository passes the same contract.

func TestMemStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := kv.NewMemStore()
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}

func TestLSMConformance(t *testing.T) {
	lsmOpts := lsm.Options{
		MemtableBytes:       8 << 10, // force flushes mid-suite
		L0CompactionTrigger: 2,
		LevelBaseBytes:      32 << 10,
	}
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		db, err := lsm.Open(lastDir, lsmOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}, Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			db, err := lsm.Open(lastDir, lsmOpts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		},
		CorruptScan: func(t *testing.T, s kv.Store) kv.Store {
			// Push everything into SSTables, then break the entry framing
			// of each table's first data block (it starts at file offset 0;
			// byte 0 is the entry's flags, bytes 1+ its key-length varint).
			// Footers stay valid, so reopening accepts the tables.
			if err := s.(*lsm.DB).Flush(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			tables, err := filepath.Glob(filepath.Join(lastDir, "*.sst"))
			if err != nil || len(tables) == 0 {
				t.Fatalf("no tables to corrupt (err=%v)", err)
			}
			for _, p := range tables {
				stompBytes(t, p, 1, 10)
			}
			db, err := lsm.Open(lastDir, lsmOpts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		},
	})
}

// TestLSMTinyBlockCacheConformance reruns the LSM contract with a block
// cache far smaller than the working set (256 B/shard — under one 4 KiB
// block), so every scan and point read churns the cache and evicts blocks
// mid-iteration. Behaviour must be indistinguishable from the default cache.
func TestLSMTinyBlockCacheConformance(t *testing.T) {
	lsmOpts := lsm.Options{
		MemtableBytes:       8 << 10,
		L0CompactionTrigger: 2,
		LevelBaseBytes:      32 << 10,
		BlockCacheBytes:     4 << 10,
	}
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		db, err := lsm.Open(lastDir, lsmOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}, Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			db, err := lsm.Open(lastDir, lsmOpts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		},
	})
}

// TestLSMNoBlockCacheConformance covers the cache-disabled path: every block
// read goes straight to the filesystem.
func TestLSMNoBlockCacheConformance(t *testing.T) {
	lsmOpts := lsm.Options{
		MemtableBytes:       8 << 10,
		L0CompactionTrigger: 2,
		LevelBaseBytes:      32 << 10,
		BlockCacheBytes:     -1,
	}
	Run(t, func(t *testing.T) kv.Store {
		db, err := lsm.Open(t.TempDir(), lsmOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}, Options{OrderedScans: true})
}

func TestHashStoreConformance(t *testing.T) {
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s, err := hashstore.Open(lastDir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		OrderedScans: false,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			hs, err := hashstore.Open(lastDir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { hs.Close() })
			return hs
		},
		CorruptScan: func(t *testing.T, s kv.Store) kv.Store {
			// Close persists the active segment plus an INDEX snapshot whose
			// locations are only extent-checked on load — record interiors
			// are trusted until read. A 64-byte 0xFF run is longer than any
			// record this suite writes, so at least one record's length
			// varints are destroyed.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(lastDir, "seg-*.dat"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments to corrupt (err=%v)", err)
			}
			stompBytes(t, segs[0], 1000, 64)
			hs, err := hashstore.Open(lastDir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { hs.Close() })
			return hs
		},
	})
}

func TestFlatStoreConformance(t *testing.T) {
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s, err := flatstore.Open(lastDir, flatstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			fs, err := flatstore.Open(lastDir, flatstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fs.Close() })
			return fs
		},
		CorruptScan: func(t *testing.T, s kv.Store) kv.Store {
			// Damage the entry file in place and return the SAME store: a
			// reopen would truncate the file at the first bad record, but a
			// live store's resident index still points at the damaged
			// extents, so the per-record crc check on the lazy read path
			// must latch the iterator error. 64 bytes of 0xFF spans more
			// than one 48-byte record, so at least one record the scan
			// visits is destroyed.
			logs, err := filepath.Glob(filepath.Join(lastDir, "flat-*.log"))
			if err != nil || len(logs) == 0 {
				t.Fatalf("no entry file to corrupt (err=%v)", err)
			}
			stompBytes(t, logs[0], 1000, 64)
			return s
		},
	})
}

// TestFlatStoreTinyCompactionConformance reruns the flat contract with a
// compaction threshold small enough that generation rewrites fire
// constantly mid-suite; behaviour must be indistinguishable.
func TestFlatStoreTinyCompactionConformance(t *testing.T) {
	flatOpts := flatstore.Options{CompactAfterDeadBytes: 1 << 10}
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s, err := flatstore.Open(lastDir, flatOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			fs, err := flatstore.Open(lastDir, flatOpts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fs.Close() })
			return fs
		},
	})
}

func TestLogStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := logstore.New()
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: false})
}

func TestHybridConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		hs, err := hashstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s := hybrid.New(kv.NewMemStore(), logstore.New(), hs, nil)
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		// Conformance keys are schema-unknown and route to the ordered
		// backend, so ordered scans hold.
		OrderedScans: true,
	})
}

func TestLazyStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := hybrid.NewLazyStore(kv.NewMemStore())
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}

func TestInstrumentedStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := kv.Instrument(kv.NewMemStore(), obs.NewRegistry(), "store", "mem")
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}

func TestTracedStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := trace.WrapStore(kv.NewMemStore(), &trace.SliceSink{})
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}
