package kvtest

import (
	"testing"

	"ethkv/internal/hashstore"
	"ethkv/internal/hybrid"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
	"ethkv/internal/trace"
)

// Every store backend in the repository passes the same contract.

func TestMemStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := kv.NewMemStore()
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}

func TestLSMConformance(t *testing.T) {
	lsmOpts := lsm.Options{
		MemtableBytes:       8 << 10, // force flushes mid-suite
		L0CompactionTrigger: 2,
		LevelBaseBytes:      32 << 10,
	}
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		db, err := lsm.Open(lastDir, lsmOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}, Options{
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			db, err := lsm.Open(lastDir, lsmOpts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		},
	})
}

func TestHashStoreConformance(t *testing.T) {
	var lastDir string
	Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s, err := hashstore.Open(lastDir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		OrderedScans: false,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			hs, err := hashstore.Open(lastDir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { hs.Close() })
			return hs
		},
	})
}

func TestLogStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := logstore.New()
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: false})
}

func TestHybridConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		hs, err := hashstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s := hybrid.New(kv.NewMemStore(), logstore.New(), hs, nil)
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{
		// Conformance keys are schema-unknown and route to the ordered
		// backend, so ordered scans hold.
		OrderedScans: true,
	})
}

func TestLazyStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := hybrid.NewLazyStore(kv.NewMemStore())
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}

func TestTracedStoreConformance(t *testing.T) {
	Run(t, func(t *testing.T) kv.Store {
		s := trace.WrapStore(kv.NewMemStore(), &trace.SliceSink{})
		t.Cleanup(func() { s.Close() })
		return s
	}, Options{OrderedScans: true})
}
