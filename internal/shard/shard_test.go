package shard_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ethkv/internal/backends"
	"ethkv/internal/kv"
	"ethkv/internal/kv/kvtest"
	"ethkv/internal/lsm"
	"ethkv/internal/shard"
)

// stompBytes overwrites n bytes of the file at off with 0xFF.
func stompBytes(t *testing.T, path string, off, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off+n > len(raw) {
		t.Fatalf("file %s too short to corrupt (%d bytes)", path, len(raw))
	}
	for i := 0; i < n; i++ {
		raw[off+i] = 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reopenRouter closes a sharded store and reopens it from the same
// directory tree — the persistence path a sharded database restart takes.
func reopenRouter(t *testing.T, s kv.Store, kind, dir string, shards int) kv.Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := backends.Open(kind, dir, backends.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

// TestShardRouterLSMConformance runs the full kv.Store contract —
// including ConcurrentReaders, RandomizedModel, ReopenPersistence, and
// CorruptScan — against the router at shard counts 1, 2, and 7 over LSM
// children built by the backends factory. CorruptScan damages exactly ONE
// shard's tables: the merged iterator must latch that shard's corruption,
// never serve the surviving shards' keys as a clean short scan.
func TestShardRouterLSMConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var lastDir string
			kvtest.Run(t, func(t *testing.T) kv.Store {
				lastDir = t.TempDir()
				s, err := backends.Open("lsm", lastDir, backends.Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			}, kvtest.Options{
				OrderedScans: true,
				Reopen: func(t *testing.T, s kv.Store) kv.Store {
					return reopenRouter(t, s, "lsm", lastDir, shards)
				},
				CorruptScan: func(t *testing.T, s kv.Store) kv.Store {
					// Settle the memtables into tables, then break the
					// entry framing of one shard's first data block. The
					// other shards stay pristine.
					if err := s.(interface{ Flush() error }).Flush(); err != nil {
						t.Fatal(err)
					}
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					glob := filepath.Join(lastDir, "lsm", "*.sst")
					if shards > 1 {
						glob = filepath.Join(lastDir, "shard-00", "lsm", "*.sst")
					}
					tables, err := filepath.Glob(glob)
					if err != nil || len(tables) == 0 {
						t.Fatalf("no tables to corrupt in %s (err=%v)", glob, err)
					}
					for _, p := range tables {
						stompBytes(t, p, 1, 10)
					}
					re, err := backends.Open("lsm", lastDir, backends.Options{Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { re.Close() })
					return re
				},
			})
		})
	}
}

// TestShardRouterFlatConformance runs the same contract over flat
// single-seek children. CorruptScan damages one shard's value log in
// place: the live router's resident index still points at the damaged
// extents, so the per-record crc on the lazy read path must latch the
// merged iterator's error.
func TestShardRouterFlatConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var lastDir string
			kvtest.Run(t, func(t *testing.T) kv.Store {
				lastDir = t.TempDir()
				s, err := backends.Open("flat", lastDir, backends.Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			}, kvtest.Options{
				OrderedScans: true,
				Reopen: func(t *testing.T, s kv.Store) kv.Store {
					return reopenRouter(t, s, "flat", lastDir, shards)
				},
				CorruptScan: func(t *testing.T, s kv.Store) kv.Store {
					glob := filepath.Join(lastDir, "flat", "flat-*.log")
					if shards > 1 {
						glob = filepath.Join(lastDir, "shard-00", "flat", "flat-*.log")
					}
					logs, err := filepath.Glob(glob)
					if err != nil || len(logs) == 0 {
						t.Fatalf("no entry file to corrupt in %s (err=%v)", glob, err)
					}
					stompBytes(t, logs[0], 1000, 64)
					return s
				},
			})
		})
	}
}

// TestShardRouterClassModeConformance reruns the contract in class mode.
// The conformance keys carry no Ethereum schema, so they ride the hash
// fallback — proving the fallback alone satisfies the full contract.
func TestShardRouterClassModeConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) kv.Store {
		s, err := backends.Open("lsm", t.TempDir(), backends.Options{
			Shards: 5, ShardMode: "class",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, kvtest.Options{OrderedScans: true})
}

// applyWorkload drives a seeded mixed workload — single puts and deletes,
// atomic batches, overwrites — against a store. The op stream depends only
// on the seed, never on the store, so any two stores fed the same seed
// must end up byte-identical.
func applyWorkload(t *testing.T, s kv.Store, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1: // atomic batch spanning many shards
			b := s.NewBatch()
			for j, m := 0, 1+rng.Intn(8); j < m; j++ {
				k := []byte(fmt.Sprintf("eq/%04d", rng.Intn(800)))
				if rng.Intn(4) == 0 {
					b.Delete(k)
				} else {
					b.Put(k, []byte(fmt.Sprintf("bv-%d-%d", i, j)))
				}
			}
			if err := b.Write(); err != nil {
				t.Fatal(err)
			}
		case 2: // single delete
			if err := s.Delete([]byte(fmt.Sprintf("eq/%04d", rng.Intn(800)))); err != nil {
				t.Fatal(err)
			}
		default:
			k := []byte(fmt.Sprintf("eq/%04d", rng.Intn(800)))
			if err := s.Put(k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// stateDigest fingerprints a store's full contents order-independently
// (same construction as replaybench's census digest): XOR of per-pair
// SHA-256, so shard interleaving cannot affect the fingerprint.
func stateDigest(t *testing.T, s kv.Store) ([sha256.Size]byte, int) {
	t.Helper()
	var digest [sha256.Size]byte
	pairs := 0
	it := s.NewIterator(nil, nil)
	defer it.Release()
	var lenBuf [8]byte
	for it.Next() {
		h := sha256.New()
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(it.Key())))
		h.Write(lenBuf[:])
		h.Write(it.Key())
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(it.Value())))
		h.Write(lenBuf[:])
		h.Write(it.Value())
		for i, b := range h.Sum(nil) {
			digest[i] ^= b
		}
		pairs++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	return digest, pairs
}

// TestShardEquivalence replays the identical seeded workload through a
// 1-shard and an 8-shard router (hash and class modes, memory and LSM
// children) and requires byte-identical final state: sharding must change
// performance, never results.
func TestShardEquivalence(t *testing.T) {
	build := func(t *testing.T, kind string, shards int, mode string) kv.Store {
		if kind == "mem" {
			children := make([]kv.Store, shards)
			for i := range children {
				children[i] = kv.NewMemStore()
			}
			m, err := shard.ParseMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			r, err := shard.New(children, shard.Options{Mode: m})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			return r
		}
		s, err := backends.Open(kind, t.TempDir(), backends.Options{Shards: shards, ShardMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	for _, tc := range []struct {
		kind, mode string
	}{
		{"mem", "hash"}, {"mem", "class"}, {"lsm", "hash"},
	} {
		tc := tc
		t.Run(tc.kind+"/"+tc.mode, func(t *testing.T) {
			one := build(t, tc.kind, 1, tc.mode)
			eight := build(t, tc.kind, 8, tc.mode)
			applyWorkload(t, one, 99, 3000)
			applyWorkload(t, eight, 99, 3000)
			d1, n1 := stateDigest(t, one)
			d8, n8 := stateDigest(t, eight)
			if n1 != n8 || d1 != d8 {
				t.Fatalf("1-shard and 8-shard state diverged: %d pairs %x vs %d pairs %x",
					n1, d1, n8, d8)
			}
			if n1 == 0 {
				t.Fatal("workload produced an empty store; equivalence is vacuous")
			}
		})
	}
}

// TestShardRoutingDeterministic pins the routing function: two router
// instances with the same configuration must agree on every key, and
// every key must land in exactly one shard of a total partition.
func TestShardRoutingDeterministic(t *testing.T) {
	for _, mode := range []shard.Mode{shard.ModeHash, shard.ModeClass} {
		for _, n := range []int{1, 2, 7, 16} {
			a := newMemRouter(t, n, mode)
			b := newMemRouter(t, n, mode)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 2000; i++ {
				key := make([]byte, 1+rng.Intn(64))
				rng.Read(key)
				sa, sb := a.ShardOf(key), b.ShardOf(key)
				if sa != sb {
					t.Fatalf("mode=%v n=%d: instances disagree on %x: %d vs %d", mode, n, key, sa, sb)
				}
				if sa < 0 || sa >= n {
					t.Fatalf("mode=%v n=%d: shard %d out of range for %x", mode, n, sa, key)
				}
			}
		}
	}
}

func newMemRouter(t *testing.T, n int, mode shard.Mode) *shard.Router {
	t.Helper()
	children := make([]kv.Store, n)
	for i := range children {
		children[i] = kv.NewMemStore()
	}
	r, err := shard.New(children, shard.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestShardClassModeColocatesClasses checks the point of class mode: every
// key of one storage class routes to the same shard, so a class-confined
// range scan reads from exactly one child.
func TestShardClassModeColocatesClasses(t *testing.T) {
	r := newMemRouter(t, 7, shard.ModeClass)
	classKey := func(class byte, n, length int) []byte {
		k := make([]byte, length)
		k[0] = class
		binary.BigEndian.PutUint64(k[1:9], uint64(n))
		return k
	}
	// Snapshot accounts ('a' + 32-byte hash) and storage trie nodes
	// ('O' + >=32 bytes) are distinct classes with many keys each.
	for _, tc := range []struct {
		name   string
		class  byte
		length int
	}{
		{"SnapshotAccount", 'a', 33},
		{"TrieNodeStorage", 'O', 65},
		{"Code", 'c', 33},
	} {
		want := r.ShardOf(classKey(tc.class, 0, tc.length))
		for i := 1; i < 200; i++ {
			if got := r.ShardOf(classKey(tc.class, i, tc.length)); got != want {
				t.Fatalf("%s key %d routed to shard %d, class lives on %d", tc.name, i, got, want)
			}
		}
	}
	// And a class scan is served from one shard: insert snapshot accounts,
	// then check only the owning child holds them.
	owner := r.ShardOf(classKey('a', 0, 33))
	for i := 0; i < 100; i++ {
		if err := r.Put(classKey('a', i, 33), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < r.Shards(); s++ {
		it := r.Child(s).NewIterator([]byte{'a'}, nil)
		n := 0
		for it.Next() {
			n++
		}
		it.Release()
		if s == owner && n != 100 {
			t.Fatalf("owning shard %d holds %d/100 snapshot accounts", s, n)
		}
		if s != owner && n != 0 {
			t.Fatalf("shard %d holds %d snapshot accounts that belong on shard %d", s, n, owner)
		}
	}
}

// TestShardStatsAggregation checks Stats() merges every child's counters
// and ShardStats exposes the per-shard distribution.
func TestShardStatsAggregation(t *testing.T) {
	s, err := backends.Open("lsm", t.TempDir(), backends.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.(*shard.Router)
	const puts = 400
	for i := 0; i < puts; i++ {
		if err := r.Put([]byte(fmt.Sprintf("st/%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < puts; i++ {
		if _, err := r.Get([]byte(fmt.Sprintf("st/%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	total := r.Stats()
	if total.Puts != puts || total.Gets != puts {
		t.Fatalf("aggregated stats: puts=%d gets=%d, want %d each", total.Puts, total.Gets, puts)
	}
	var sum uint64
	nonEmpty := 0
	for _, st := range r.ShardStats() {
		sum += st.Puts
		if st.Puts > 0 {
			nonEmpty++
		}
	}
	if sum != puts {
		t.Fatalf("per-shard puts sum to %d, want %d", sum, puts)
	}
	if nonEmpty < 2 {
		t.Fatalf("hash partition left %d/4 shards loaded; expected spread", nonEmpty)
	}
}

// failBatchStore wraps a store so its batches fail at Write — the
// instrument for pinning the cross-shard commit ordering discipline.
type failBatchStore struct {
	kv.Store
	err error
}

func (f *failBatchStore) NewBatch() kv.Batch { return &failBatch{err: f.err} }

type failBatch struct {
	err  error
	size int
}

func (b *failBatch) Put(k, v []byte) error  { b.size += len(k) + len(v); return nil }
func (b *failBatch) Delete(k []byte) error  { b.size += len(k); return nil }
func (b *failBatch) ValueSize() int         { return b.size }
func (b *failBatch) Write() error           { return b.err }
func (b *failBatch) Reset()                 { b.size = 0 }
func (b *failBatch) Replay(kv.Writer) error { return nil }

// TestShardBatchCommitOrdering pins the documented discipline: sub-batches
// commit in ascending shard order, so when shard i's commit fails, shards
// < i are committed and shards >= i are untouched — never an arbitrary
// subset.
func TestShardBatchCommitOrdering(t *testing.T) {
	boom := errors.New("injected commit failure")
	children := []kv.Store{
		kv.NewMemStore(),
		&failBatchStore{Store: kv.NewMemStore(), err: boom},
		kv.NewMemStore(),
	}
	r, err := shard.New(children, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Find one key per shard.
	keyFor := func(want int) []byte {
		for i := 0; ; i++ {
			k := []byte(fmt.Sprintf("ord/%d", i))
			if r.ShardOf(k) == want {
				return k
			}
		}
	}
	k0, k1, k2 := keyFor(0), keyFor(1), keyFor(2)

	b := r.NewBatch()
	b.Put(k0, []byte("zero"))
	b.Put(k1, []byte("one"))
	b.Put(k2, []byte("two"))
	if err := b.Write(); !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want injected failure", err)
	}
	if ok, _ := children[0].Has(k0); !ok {
		t.Fatal("shard 0 (before the failure) lost its committed sub-batch")
	}
	if ok, _ := children[2].Has(k2); ok {
		t.Fatal("shard 2 (after the failure) committed out of order")
	}
}

// TestShardBatchReplayOrder checks Replay preserves the caller's insertion
// order, not the per-shard commit grouping: a put-then-delete of the same
// key must replay as absent, whatever shards the neighbours map to.
func TestShardBatchReplayOrder(t *testing.T) {
	r := newMemRouter(t, 4, shard.ModeHash)
	b := r.NewBatch()
	for i := 0; i < 40; i++ {
		b.Put([]byte(fmt.Sprintf("rp/%02d", i)), []byte("first"))
	}
	b.Delete([]byte("rp/07"))
	b.Put([]byte("rp/07"), []byte("resurrected"))
	b.Put([]byte("rp/09"), []byte("second"))
	b.Delete([]byte("rp/09"))

	mirror := kv.NewMemStore()
	defer mirror.Close()
	if err := b.Replay(mirror); err != nil {
		t.Fatal(err)
	}
	if v, _ := mirror.Get([]byte("rp/07")); string(v) != "resurrected" {
		t.Fatalf("rp/07 replayed as %q, want delete-then-put order preserved", v)
	}
	if ok, _ := mirror.Has([]byte("rp/09")); ok {
		t.Fatal("rp/09 replayed present; put-then-delete order lost")
	}
}

// TestShardMergedScanOrdered checks the merged iterator yields a globally
// ascending stream over LSM children and honours prefix+start bounds.
func TestShardMergedScanOrdered(t *testing.T) {
	children := make([]kv.Store, 5)
	for i := range children {
		db, err := lsm.Open(t.TempDir(), lsm.Options{MemtableBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		children[i] = db
	}
	r, err := shard.New(children, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 500; i++ {
		if err := r.Put([]byte(fmt.Sprintf("so/%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it := r.NewIterator([]byte("so/"), []byte("100"))
	defer it.Release()
	var last []byte
	n := 0
	for it.Next() {
		if last != nil && bytes.Compare(it.Key(), last) <= 0 {
			t.Fatalf("merged scan not ascending: %q after %q", it.Key(), last)
		}
		last = append(last[:0], it.Key()...)
		n++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("scan from so/100 saw %d keys, want 400", n)
	}
}
