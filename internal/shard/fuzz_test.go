package shard_test

import (
	"bytes"
	"fmt"
	"testing"

	"ethkv/internal/kv"
	"ethkv/internal/shard"
)

// FuzzShardRouting feeds arbitrary key material through the router and
// checks the three properties sharding stands on:
//
//  1. Determinism: two router instances with the same configuration route
//     every key to the same shard.
//  2. Total, disjoint partition: after inserting through the router, each
//     key is present in exactly one child — the one ShardOf names.
//  3. Merge fidelity: a merged scan returns exactly the oracle's key set —
//     no drops, no duplicates — for full scans and for prefix scans.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte("hello\x00world\x01akey\x02Okey"), uint8(3), false)
	f.Add([]byte{'a', 1, 2, 3, 0xFF, 'O', 9, 9}, uint8(7), true)
	f.Add([]byte(""), uint8(1), false)
	f.Fuzz(func(t *testing.T, data []byte, nShards uint8, classMode bool) {
		n := int(nShards%16) + 1
		mode := shard.ModeHash
		if classMode {
			mode = shard.ModeClass
		}
		build := func() *shard.Router {
			children := make([]kv.Store, n)
			for i := range children {
				children[i] = kv.NewMemStore()
			}
			r, err := shard.New(children, shard.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		ra, rb := build(), build()
		defer ra.Close()
		defer rb.Close()

		// Chop the fuzz payload into variable-length keys: the byte at the
		// cursor picks the next key's length, so the corpus explores both
		// short schema-like keys and long hash-like ones.
		var keys [][]byte
		for off := 0; off < len(data); {
			kl := int(data[off])%40 + 1
			off++
			end := off + kl
			if end > len(data) {
				end = len(data)
			}
			if end > off {
				keys = append(keys, data[off:end])
			}
			off = end
		}

		oracle := kv.NewMemStore()
		defer oracle.Close()
		for i, k := range keys {
			sa, sb := ra.ShardOf(k), rb.ShardOf(k)
			if sa != sb {
				t.Fatalf("routing nondeterministic for %x: %d vs %d", k, sa, sb)
			}
			if sa < 0 || sa >= n {
				t.Fatalf("shard %d out of range [0,%d) for %x", sa, n, k)
			}
			v := []byte(fmt.Sprintf("v%d", i))
			if err := ra.Put(k, v); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}

		// Partition check: each distinct key lives in exactly one child.
		for _, k := range keys {
			owner := ra.ShardOf(k)
			holders := 0
			for s := 0; s < ra.Shards(); s++ {
				ok, err := ra.Child(s).Has(k)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					holders++
					if s != owner {
						t.Fatalf("key %x held by shard %d, routed to %d", k, s, owner)
					}
				}
			}
			if holders != 1 {
				t.Fatalf("key %x held by %d shards, want exactly 1", k, holders)
			}
		}

		// Merge fidelity versus the single-store oracle.
		checkScan := func(prefix []byte) {
			want := map[string]string{}
			oit := oracle.NewIterator(prefix, nil)
			for oit.Next() {
				want[string(oit.Key())] = string(oit.Value())
			}
			oit.Release()

			got := map[string]string{}
			it := ra.NewIterator(prefix, nil)
			var last []byte
			for it.Next() {
				if last != nil && bytes.Compare(it.Key(), last) <= 0 {
					t.Fatalf("merged scan(%x) not strictly ascending: %x after %x", prefix, it.Key(), last)
				}
				last = append(last[:0], it.Key()...)
				if _, dup := got[string(it.Key())]; dup {
					t.Fatalf("merged scan(%x) yielded %x twice", prefix, it.Key())
				}
				got[string(it.Key())] = string(it.Value())
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			it.Release()
			if len(got) != len(want) {
				t.Fatalf("merged scan(%x) saw %d keys, oracle has %d", prefix, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("merged scan(%x)[%x] = %q, oracle %q", prefix, k, got[k], v)
				}
			}
		}
		checkScan(nil)
		if len(keys) > 0 {
			checkScan(keys[0][:1])
		}
	})
}
