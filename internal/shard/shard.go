// Package shard partitions a keyspace horizontally across N child stores
// behind a router that implements the full kv.Store interface. Sharding is
// the single-node scaling move the paper's per-class census motivates: the
// workload's key classes are wildly skewed, so spreading keys across
// independent stores lets a multi-core node parallelize what one store's
// internal locks serialize — without changing any result.
//
// Two partition modes:
//
//   - ModeHash spreads every key by a 64-bit FNV-1a hash of the whole key.
//     Load balances near-uniformly; range scans touch every shard and are
//     served through a latching k-way merge.
//   - ModeClass routes by the key's storage class (rawdb.Classify), so all
//     keys of one class — and therefore every class-confined range scan the
//     workload issues (Finding 4) — live on a single shard. Keys of unknown
//     class fall back to the key hash.
//
// Routing is a pure function of (key, shard count, mode): two router
// instances over the same configuration always agree, which is what makes
// reopening a sharded database from its per-shard directories sound.
//
// Semantics, relative to a single store:
//
//   - Point ops route to exactly one child.
//   - Batches accumulate centrally and commit as per-shard sub-batches in
//     ascending shard order. Each sub-batch is atomic within its shard; the
//     cross-shard group is NOT atomic — a crash or error between commits
//     can leave lower-numbered shards committed and higher-numbered ones
//     not. Crash recovery therefore guarantees per-writer prefix
//     consistency per shard (see internal/lsm/crashtest).
//   - Scans merge the children's iterators exactly like the LSM's
//     mergeIterator merges its levels, including the PR 4 error discipline:
//     a child iterator that stops with a non-nil Error poisons the whole
//     merged scan, because yielding the surviving shards' keys would
//     present a silently incomplete view.
//   - Stats aggregates every child's counters via kv.Stats.Merge, so a
//     counter added to kv.Stats can never be silently dropped from the
//     sharded view.
package shard

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
)

// Mode selects the partition function.
type Mode int

const (
	// ModeHash partitions by FNV-1a hash of the whole key.
	ModeHash Mode = iota
	// ModeClass partitions by storage class, falling back to the key hash
	// for keys no class claims.
	ModeClass
)

func (m Mode) String() string {
	if m == ModeClass {
		return "class"
	}
	return "hash"
}

// ParseMode parses "hash" or "class" ("" defaults to hash).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "hash":
		return ModeHash, nil
	case "class":
		return ModeClass, nil
	default:
		return ModeHash, fmt.Errorf("shard: unknown mode %q (want hash or class)", s)
	}
}

// Options tunes a Router.
type Options struct {
	// Mode selects the partition function. Default ModeHash.
	Mode Mode
}

// Router implements kv.Store over N child stores by partitioning the
// keyspace. All methods are safe for concurrent use if the children are.
type Router struct {
	children []kv.Store
	mode     Mode
}

var _ kv.Store = (*Router)(nil)
var _ kv.StatsProvider = (*Router)(nil)

// New assembles a router over children. At least one child is required; a
// one-child router is a valid (if pointless) degenerate configuration that
// the equivalence tests lean on.
func New(children []kv.Store, opts Options) (*Router, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("shard: need at least one child store")
	}
	cs := make([]kv.Store, len(children))
	copy(cs, children)
	return &Router{children: cs, mode: opts.Mode}, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.children) }

// Mode returns the partition mode.
func (r *Router) Mode() Mode { return r.mode }

// Child returns shard i's store, for tests and per-shard reporting.
func (r *Router) Child(i int) kv.Store { return r.children[i] }

// ShardOf returns the shard index owning key — the routing function.
func (r *Router) ShardOf(key []byte) int {
	return shardOf(key, len(r.children), r.mode)
}

// shardOf is the pure partition function: total (every key maps to exactly
// one shard in [0, n)) and deterministic across router instances.
func shardOf(key []byte, n int, mode Mode) int {
	if n == 1 {
		return 0
	}
	if mode == ModeClass {
		if c := rawdb.Classify(key); c != rawdb.ClassUnknown {
			return int(uint(c) % uint(n))
		}
	}
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(n))
}

// Get implements kv.Reader.
func (r *Router) Get(key []byte) ([]byte, error) {
	return r.children[r.ShardOf(key)].Get(key)
}

// Has implements kv.Reader.
func (r *Router) Has(key []byte) (bool, error) {
	return r.children[r.ShardOf(key)].Has(key)
}

// Put implements kv.Writer.
func (r *Router) Put(key, value []byte) error {
	return r.children[r.ShardOf(key)].Put(key, value)
}

// Delete implements kv.Writer.
func (r *Router) Delete(key []byte) error {
	return r.children[r.ShardOf(key)].Delete(key)
}

// NewIterator implements kv.Iterable by merging every child's iterator.
// With ordered children the merged stream is globally ordered (partitions
// are disjoint, so no key appears twice); with unordered children the
// merge still yields every entry exactly once, just unordered — same
// contract as the child itself.
func (r *Router) NewIterator(prefix, start []byte) kv.Iterator {
	iters := make([]kv.Iterator, len(r.children))
	for i, c := range r.children {
		iters[i] = c.NewIterator(prefix, start)
	}
	return newMergedIterator(iters)
}

// NewBatch implements kv.Batcher.
func (r *Router) NewBatch() kv.Batch {
	return &shardBatch{router: r}
}

// Flush pushes buffered state down on every child that supports it (the
// LSM memtable, for one), so censuses and amplification counters settle.
func (r *Router) Flush() error {
	var first error
	for i, c := range r.children {
		if f, ok := c.(interface{ Flush() error }); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = fmt.Errorf("shard %d: flush: %w", i, err)
			}
		}
	}
	return first
}

// Drain implements kv.Drainer: every child stops scheduling new background
// work and settles what is in flight. The first error wins but every child
// drains regardless.
func (r *Router) Drain() error {
	var first error
	for i, c := range r.children {
		if err := kv.Drain(c); err != nil && first == nil {
			first = fmt.Errorf("shard %d: drain: %w", i, err)
		}
	}
	return first
}

// Close implements kv.Store, closing every child. The first error wins but
// every child is closed regardless.
func (r *Router) Close() error {
	var first error
	for i, c := range r.children {
		if err := c.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: close: %w", i, err)
		}
	}
	return first
}

// Stats implements kv.StatsProvider by merging every child's counters via
// kv.Stats.Merge. Children without stats contribute nothing.
func (r *Router) Stats() kv.Stats {
	var total kv.Stats
	for _, c := range r.children {
		if sp, ok := c.(kv.StatsProvider); ok {
			total.Merge(sp.Stats())
		}
	}
	return total
}

// ShardStats returns each child's own counters (zero for children without
// stats) — the per-shard load distribution the scale sweep reports.
func (r *Router) ShardStats() []kv.Stats {
	out := make([]kv.Stats, len(r.children))
	for i, c := range r.children {
		if sp, ok := c.(kv.StatsProvider); ok {
			out[i] = sp.Stats()
		}
	}
	return out
}

// shardBatch implements kv.Batch. Ops accumulate centrally (preserving
// insertion order for Replay); Write routes them into per-shard sub-batches
// and commits those in ascending shard order. See the package comment for
// the cross-shard atomicity discipline.
type shardBatch struct {
	router *Router
	ops    []batchOp
	size   int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *shardBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *shardBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *shardBatch) ValueSize() int { return b.size }

// Write commits the batch as per-shard sub-batches in ascending shard
// order. Within a shard the sub-batch is atomic (the child's guarantee);
// across shards commit order is deterministic so a failure at shard i
// means shards < i committed and shards >= i did not — never an arbitrary
// subset.
func (b *shardBatch) Write() error {
	r := b.router
	subs := make([]kv.Batch, len(r.children))
	for i := range b.ops {
		op := &b.ops[i]
		s := r.ShardOf(op.key)
		if subs[s] == nil {
			subs[s] = r.children[s].NewBatch()
		}
		var err error
		if op.delete {
			err = subs[s].Delete(op.key)
		} else {
			err = subs[s].Put(op.key, op.value)
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	for i, sub := range subs {
		if sub == nil {
			continue
		}
		if err := sub.Write(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

func (b *shardBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// Replay applies the ops to w in their original insertion order — not the
// per-shard commit grouping — so a replayed batch is indistinguishable
// from the caller's op sequence.
func (b *shardBatch) Replay(w kv.Writer) error {
	for i := range b.ops {
		op := &b.ops[i]
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// mergedIterator k-way-merges the children's iterators, modeled on the
// LSM's mergeIterator: smallest head key wins each round, and a child that
// stops with a non-nil Error latches the whole merge (m.failed) rather
// than truncating it. Unlike the LSM merge there is no shadowing — the
// partition is disjoint — but equal keys are still consumed together so a
// misbehaving child can never make the merge yield a key twice.
type mergedIterator struct {
	iters  []kv.Iterator
	heads  []mergeHead
	key    []byte
	value  []byte
	failed error
	live   bool // a current entry is loaded
}

// mergeHead caches one child's current entry. Key/value are copied out of
// the child because kv.Iterator buffers are only valid until its next
// Next, and heads outlive arbitrarily many merged-Next calls.
type mergeHead struct {
	key, value []byte
	valid      bool
	exhausted  bool
}

func newMergedIterator(iters []kv.Iterator) *mergedIterator {
	return &mergedIterator{iters: iters, heads: make([]mergeHead, len(iters))}
}

// MergeIterators k-way-merges arbitrary child iterators under the
// mergedIterator contract above (latched errors, equal keys consumed
// together). It exists so other routing layers — notably the hybrid
// class-routed store — can reuse the machinery instead of re-deriving it.
func MergeIterators(iters []kv.Iterator) kv.Iterator {
	return newMergedIterator(iters)
}

// fill advances child i to its next entry if its head is empty.
func (m *mergedIterator) fill(i int) {
	h := &m.heads[i]
	if h.valid || h.exhausted {
		return
	}
	it := m.iters[i]
	if it.Next() {
		h.key = append(h.key[:0], it.Key()...)
		h.value = append(h.value[:0], it.Value()...)
		h.valid = true
		return
	}
	h.exhausted = true
	if err := it.Error(); err != nil && m.failed == nil {
		// A failed child poisons the merge: its remaining keys are
		// unknowable, so the surviving shards' view would be silently
		// incomplete.
		m.failed = fmt.Errorf("shard %d: %w", i, err)
	}
}

func (m *mergedIterator) Next() bool {
	m.live = false
	if m.failed != nil {
		return false
	}
	best := -1
	for i := range m.heads {
		m.fill(i)
		if m.failed != nil {
			return false
		}
		h := &m.heads[i]
		if !h.valid {
			continue
		}
		if best == -1 || bytes.Compare(h.key, m.heads[best].key) < 0 {
			best = i
		}
	}
	if best == -1 {
		return false
	}
	m.key = m.heads[best].key
	m.value = m.heads[best].value
	// Consume the winner and any (anomalous) duplicates of the same key.
	for i := range m.heads {
		h := &m.heads[i]
		if h.valid && bytes.Equal(h.key, m.key) {
			h.valid = false
		}
	}
	m.live = true
	return true
}

func (m *mergedIterator) Key() []byte {
	if !m.live {
		return nil
	}
	return m.key
}

func (m *mergedIterator) Value() []byte {
	if !m.live {
		return nil
	}
	return m.value
}

// Error reports the latched merge failure, or any child error that
// surfaced after release.
func (m *mergedIterator) Error() error { return m.failed }

func (m *mergedIterator) Release() {
	for i, it := range m.iters {
		if it == nil {
			continue
		}
		it.Release()
		if err := it.Error(); err != nil && m.failed == nil {
			m.failed = fmt.Errorf("shard %d: %w", i, err)
		}
		m.iters[i] = nil
	}
	m.heads = nil
	m.live = false
}
