// Package state implements the Ethereum world state: accounts and contract
// storage over the account/storage Merkle Patricia Tries, the optional flat
// snapshot, and the contract code store. Its read paths interpose the
// per-class caches so that cached and bare configurations reproduce the
// paper's CacheTrace/BareTrace split.
package state

import (
	"errors"
	"math/big"

	"ethkv/internal/keccak"
	"ethkv/internal/rawdb"
	"ethkv/internal/rlp"
	"ethkv/internal/trie"
)

// Address is a 20-byte account address.
type Address = [20]byte

// EmptyCodeHash is keccak256 of empty bytecode.
var EmptyCodeHash = keccak.Hash256(nil)

// Account is the canonical four-field account record of the Yellow Paper.
type Account struct {
	Nonce    uint64
	Balance  *big.Int
	Root     rawdb.Hash // storage trie root
	CodeHash rawdb.Hash
}

// NewAccount returns an externally-owned account with the given balance.
func NewAccount(balance *big.Int) *Account {
	return &Account{
		Balance:  new(big.Int).Set(balance),
		Root:     trie.EmptyRoot,
		CodeHash: EmptyCodeHash,
	}
}

// IsContract reports whether the account carries code.
func (a *Account) IsContract() bool { return a.CodeHash != EmptyCodeHash }

// Copy returns a deep copy.
func (a *Account) Copy() *Account {
	return &Account{
		Nonce:    a.Nonce,
		Balance:  new(big.Int).Set(a.Balance),
		Root:     a.Root,
		CodeHash: a.CodeHash,
	}
}

// EncodeRLP produces the full account encoding stored in the account trie:
// [nonce, balance, storageRoot, codeHash].
func (a *Account) EncodeRLP() []byte {
	return rlp.EncodeList(
		rlp.EncodeUint(a.Nonce),
		rlp.AppendBig(nil, a.Balance),
		rlp.EncodeString(a.Root[:]),
		rlp.EncodeString(a.CodeHash[:]),
	)
}

// DecodeAccountRLP parses the full account encoding.
func DecodeAccountRLP(data []byte) (*Account, error) {
	items, err := rlp.SplitList(data)
	if err != nil || len(items) != 4 {
		return nil, errors.New("state: malformed account encoding")
	}
	nonce, err := rlp.DecodeUint(items[0])
	if err != nil {
		return nil, err
	}
	d := rlp.NewDecoder(items[1])
	balance, err := d.Big()
	if err != nil {
		return nil, err
	}
	rootBytes, err := rlp.DecodeString(items[2])
	if err != nil || len(rootBytes) != 32 {
		return nil, errors.New("state: malformed storage root")
	}
	codeBytes, err := rlp.DecodeString(items[3])
	if err != nil || len(codeBytes) != 32 {
		return nil, errors.New("state: malformed code hash")
	}
	acct := &Account{Nonce: nonce, Balance: balance}
	copy(acct.Root[:], rootBytes)
	copy(acct.CodeHash[:], codeBytes)
	return acct, nil
}

// EncodeSlim produces the snapshot ("slim") encoding: empty storage roots
// and code hashes encode as empty strings, which is why SnapshotAccount
// values cluster at a few small sizes (Figure 2(c)).
func (a *Account) EncodeSlim() []byte {
	root := a.Root[:]
	if a.Root == trie.EmptyRoot {
		root = nil
	}
	code := a.CodeHash[:]
	if a.CodeHash == EmptyCodeHash {
		code = nil
	}
	return rlp.EncodeList(
		rlp.EncodeUint(a.Nonce),
		rlp.AppendBig(nil, a.Balance),
		rlp.EncodeString(root),
		rlp.EncodeString(code),
	)
}

// DecodeSlim parses the snapshot encoding.
func DecodeSlim(data []byte) (*Account, error) {
	items, err := rlp.SplitList(data)
	if err != nil || len(items) != 4 {
		return nil, errors.New("state: malformed slim account")
	}
	nonce, err := rlp.DecodeUint(items[0])
	if err != nil {
		return nil, err
	}
	d := rlp.NewDecoder(items[1])
	balance, err := d.Big()
	if err != nil {
		return nil, err
	}
	rootBytes, err := rlp.DecodeString(items[2])
	if err != nil {
		return nil, err
	}
	codeBytes, err := rlp.DecodeString(items[3])
	if err != nil {
		return nil, err
	}
	acct := &Account{Nonce: nonce, Balance: balance, Root: trie.EmptyRoot, CodeHash: EmptyCodeHash}
	if len(rootBytes) == 32 {
		copy(acct.Root[:], rootBytes)
	}
	if len(codeBytes) == 32 {
		copy(acct.CodeHash[:], codeBytes)
	}
	return acct, nil
}

// AddressHash returns keccak256(addr), the account's key in the trie and
// the snapshot.
func AddressHash(addr Address) rawdb.Hash {
	return keccak.Hash256(addr[:])
}

// SlotHash returns keccak256(slot), a storage slot's snapshot key.
func SlotHash(slot rawdb.Hash) rawdb.Hash {
	return keccak.Hash256(slot[:])
}
