package state

import (
	"fmt"

	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
	"ethkv/internal/trie"
)

// GenerateSnapshot rebuilds the flat snapshot disk layer by walking the
// account trie (and every contract's storage trie) — Geth's snapshot
// generator, the process whose completion the SnapshotGenerator marker
// records. It is the recovery path when the snapshot is missing or marked
// unrecoverable, and the bulk producer of SnapshotAccount/SnapshotStorage
// writes during initial sync.
//
// Returns the number of account and slot entries written.
func GenerateSnapshot(backend *Backend, out kv.Writer) (accounts, slots uint64, err error) {
	accountTrie, err := trie.New(accountNodeReader{backend})
	if err != nil {
		return 0, 0, fmt.Errorf("state: opening account trie: %w", err)
	}
	var walkErr error
	err = accountTrie.Leaves(func(hexPath, value []byte) bool {
		acct, derr := DecodeAccountRLP(value)
		if derr != nil {
			walkErr = fmt.Errorf("state: undecodable account at %x: %w", hexPath, derr)
			return false
		}
		var acctHash rawdb.Hash
		copy(acctHash[:], hexNibblesToBytes(hexPath))
		if werr := rawdb.WriteSnapshotAccount(out, acctHash, acct.EncodeSlim()); werr != nil {
			walkErr = werr
			return false
		}
		accounts++
		// Contracts: walk the storage trie too.
		if acct.Root != trie.EmptyRoot {
			st, serr := trie.New(storageNodeReader{backend, acctHash})
			if serr != nil {
				walkErr = serr
				return false
			}
			serr = st.Leaves(func(slotPath, slotValue []byte) bool {
				var slotHash rawdb.Hash
				copy(slotHash[:], hexNibblesToBytes(slotPath))
				// Trie stores RLP-wrapped slot values; the snapshot stores
				// the trimmed raw bytes.
				raw, derr := rlpDecodeSlot(slotValue)
				if derr != nil {
					walkErr = derr
					return false
				}
				if werr := rawdb.WriteSnapshotStorage(out, acctHash, slotHash, raw); werr != nil {
					walkErr = werr
					return false
				}
				slots++
				return true
			})
			if serr != nil {
				walkErr = serr
			}
			if walkErr != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return accounts, slots, err
	}
	return accounts, slots, walkErr
}

// hexNibblesToBytes packs an even-length nibble path into bytes.
func hexNibblesToBytes(hexPath []byte) []byte {
	out := make([]byte, len(hexPath)/2)
	for i := range out {
		out[i] = hexPath[i*2]<<4 | hexPath[i*2+1]
	}
	return out
}
