package state

import (
	"math/big"
	"testing"

	"ethkv/internal/rawdb"
	"ethkv/internal/trie"
)

func TestRevertAccountUpdate(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(1)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(100)))
	commit, _ := sdb.Commit()
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	snap := sdb2.Snapshot()
	sdb2.UpdateAccount(a, NewAccount(big.NewInt(999)))
	if acct, _ := sdb2.GetAccount(a); acct.Balance.Int64() != 999 {
		t.Fatal("update not visible before revert")
	}
	sdb2.RevertToSnapshot(snap)
	acct, err := sdb2.GetAccount(a)
	if err != nil || acct == nil {
		t.Fatalf("revert lost the account: %v", err)
	}
	if acct.Balance.Int64() != 100 {
		t.Fatalf("balance after revert = %v, want 100", acct.Balance)
	}
	// A commit after revert must not change the root.
	commit2, _ := sdb2.Commit()
	if len(commit2.AccountNodes.Writes) != 0 {
		t.Fatalf("reverted tx still wrote %d trie nodes", len(commit2.AccountNodes.Writes))
	}
}

func TestRevertDestruct(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(2)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(50)))
	snap := sdb.Snapshot()
	sdb.DestructAccount(a)
	if acct, _ := sdb.GetAccount(a); acct != nil {
		t.Fatal("destruct not visible")
	}
	sdb.RevertToSnapshot(snap)
	if acct, _ := sdb.GetAccount(a); acct == nil || acct.Balance.Int64() != 50 {
		t.Fatal("destruct not reverted")
	}
}

func TestRevertStorage(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(3)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))
	var v1, v2 rawdb.Hash
	v1[31], v2[31] = 1, 2
	sdb.SetState(a, rawdb.Hash{9}, v1)

	snap := sdb.Snapshot()
	sdb.SetState(a, rawdb.Hash{9}, v2)
	sdb.SetState(a, rawdb.Hash{8}, v2)
	sdb.RevertToSnapshot(snap)

	if got, _ := sdb.GetState(a, rawdb.Hash{9}); got != v1 {
		t.Fatalf("slot 9 after revert = %x, want v1", got)
	}
	if got, _ := sdb.GetState(a, rawdb.Hash{8}); got != (rawdb.Hash{}) {
		t.Fatalf("slot 8 after revert = %x, want zero", got)
	}
}

func TestRevertCode(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	snap := sdb.Snapshot()
	hash := sdb.SetCode(addr(4), []byte{0x60, 0x60})
	sdb.RevertToSnapshot(snap)
	if _, err := sdb.GetCode(hash); err == nil {
		t.Fatal("reverted code still readable")
	}
	commit, _ := sdb.Commit()
	if len(commit.Code) != 0 {
		t.Fatal("reverted code committed")
	}
}

func TestNestedSnapshots(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(5)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))

	outer := sdb.Snapshot()
	sdb.UpdateAccount(a, NewAccount(big.NewInt(2)))
	inner := sdb.Snapshot()
	sdb.UpdateAccount(a, NewAccount(big.NewInt(3)))

	sdb.RevertToSnapshot(inner)
	if acct, _ := sdb.GetAccount(a); acct.Balance.Int64() != 2 {
		t.Fatalf("inner revert: %v", acct.Balance)
	}
	sdb.RevertToSnapshot(outer)
	if acct, _ := sdb.GetAccount(a); acct.Balance.Int64() != 1 {
		t.Fatalf("outer revert: %v", acct.Balance)
	}
}

func TestRevertDoesNotTouchCommittedState(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a, b := addr(6), addr(7)
	// Tx 1 succeeds.
	sdb.UpdateAccount(a, NewAccount(big.NewInt(10)))
	// Tx 2 fails and reverts.
	snap := sdb.Snapshot()
	sdb.UpdateAccount(b, NewAccount(big.NewInt(20)))
	sdb.RevertToSnapshot(snap)

	commit, err := sdb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	writeCommit(t, backend, commit)
	sdb2, _ := New(backend)
	if acct, _ := sdb2.GetAccount(a); acct == nil || acct.Balance.Int64() != 10 {
		t.Fatal("tx1's state lost")
	}
	if acct, _ := sdb2.GetAccount(b); acct != nil {
		t.Fatal("reverted tx2's state committed")
	}
}

func TestRevertInvalidSnapshotIgnored(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	sdb.UpdateAccount(addr(8), NewAccount(big.NewInt(1)))
	sdb.RevertToSnapshot(-1)  // ignored
	sdb.RevertToSnapshot(999) // ignored
	if acct, _ := sdb.GetAccount(addr(8)); acct == nil {
		t.Fatal("invalid revert ids disturbed state")
	}
}

func TestJournalClearedByCommit(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	sdb.UpdateAccount(addr(9), NewAccount(big.NewInt(1)))
	if sdb.Snapshot() == 0 {
		t.Fatal("journal empty after mutation")
	}
	if _, err := sdb.Commit(); err != nil {
		t.Fatal(err)
	}
	if sdb.Snapshot() != 0 {
		t.Fatal("journal survived commit")
	}
	// Root is re-derivable after commit.
	_ = trie.EmptyRoot
}
