package state

import (
	"bytes"
	"math/big"
	"testing"

	"ethkv/internal/cache"
	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
	"ethkv/internal/snapshot"
	"ethkv/internal/trie"
)

func addr(b byte) Address {
	var a Address
	for i := range a {
		a[i] = b
	}
	return a
}

func TestAccountRLPRoundTrip(t *testing.T) {
	acct := &Account{
		Nonce:    42,
		Balance:  big.NewInt(1_000_000_000),
		Root:     trie.EmptyRoot,
		CodeHash: EmptyCodeHash,
	}
	dec, err := DecodeAccountRLP(acct.EncodeRLP())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Nonce != 42 || dec.Balance.Cmp(acct.Balance) != 0 ||
		dec.Root != acct.Root || dec.CodeHash != acct.CodeHash {
		t.Fatalf("round-trip mismatch: %+v", dec)
	}
}

func TestSlimEncodingSmallerForEOA(t *testing.T) {
	eoa := NewAccount(big.NewInt(5e9))
	full := eoa.EncodeRLP()
	slim := eoa.EncodeSlim()
	if len(slim) >= len(full) {
		t.Fatalf("slim (%d) not smaller than full (%d) for EOA", len(slim), len(full))
	}
	dec, err := DecodeSlim(slim)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root != trie.EmptyRoot || dec.CodeHash != EmptyCodeHash {
		t.Fatal("slim decode lost empty markers")
	}
	if dec.Balance.Cmp(eoa.Balance) != 0 {
		t.Fatal("balance lost")
	}
}

func TestSlimEncodingContract(t *testing.T) {
	acct := NewAccount(big.NewInt(1))
	acct.Root = rawdb.Hash{1, 2, 3}
	acct.CodeHash = rawdb.Hash{4, 5, 6}
	dec, err := DecodeSlim(acct.EncodeSlim())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root != acct.Root || dec.CodeHash != acct.CodeHash {
		t.Fatal("contract slim round-trip lost hashes")
	}
	if !acct.IsContract() {
		t.Fatal("IsContract")
	}
	if NewAccount(big.NewInt(0)).IsContract() {
		t.Fatal("EOA misreported as contract")
	}
}

func TestDecodeAccountErrors(t *testing.T) {
	for _, blob := range [][]byte{nil, {0xc0}, {0x80}} {
		if _, err := DecodeAccountRLP(blob); err == nil {
			t.Errorf("DecodeAccountRLP(%x) accepted garbage", blob)
		}
		if _, err := DecodeSlim(blob); err == nil {
			t.Errorf("DecodeSlim(%x) accepted garbage", blob)
		}
	}
}

// bareBackend builds a BareTrace-style backend (no snapshot, no cache).
func bareBackend(t *testing.T) *Backend {
	t.Helper()
	db := kv.NewMemStore()
	t.Cleanup(func() { db.Close() })
	return &Backend{DB: db}
}

// cachedBackend builds a CacheTrace-style backend.
func cachedBackend(t *testing.T) *Backend {
	t.Helper()
	db := kv.NewMemStore()
	t.Cleanup(func() { db.Close() })
	return &Backend{
		DB:     db,
		Snaps:  snapshot.NewTree(db, 8),
		Caches: cache.NewManager(1<<20, nil),
	}
}

// writeCommit applies a state commit to the backing store the way the
// chain processor would.
func writeCommit(t *testing.T, b *Backend, c *Commit) {
	t.Helper()
	for path, blob := range c.AccountNodes.Writes {
		rawdb.WriteAccountTrieNode(b.DB, []byte(path), blob)
	}
	for _, path := range c.AccountNodes.Deletes {
		rawdb.DeleteAccountTrieNode(b.DB, []byte(path))
	}
	for owner, set := range c.StorageNodes {
		for path, blob := range set.Writes {
			rawdb.WriteStorageTrieNode(b.DB, owner, []byte(path), blob)
		}
		for _, path := range set.Deletes {
			rawdb.DeleteStorageTrieNode(b.DB, owner, []byte(path))
		}
	}
	for hash, code := range c.Code {
		rawdb.WriteCode(b.DB, hash, code)
	}
	if b.Snaps != nil {
		if err := b.Snaps.Update(c.Root, c.SnapAccounts, c.SnapStorage); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStateDBBareLifecycle(t *testing.T) {
	backend := bareBackend(t)
	sdb, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	a := addr(1)
	if acct, err := sdb.GetAccount(a); err != nil || acct != nil {
		t.Fatalf("fresh account: %+v, %v", acct, err)
	}
	sdb.UpdateAccount(a, NewAccount(big.NewInt(100)))
	commit, err := sdb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if commit.Root == trie.EmptyRoot {
		t.Fatal("root unchanged after account creation")
	}
	writeCommit(t, backend, commit)

	// A fresh StateDB must read the account back through the trie.
	sdb2, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := sdb2.GetAccount(a)
	if err != nil || acct == nil {
		t.Fatalf("reload account: %v", err)
	}
	if acct.Balance.Int64() != 100 {
		t.Fatalf("balance = %v", acct.Balance)
	}
}

func TestStateDBStorageBare(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(2)
	slot := rawdb.Hash{0x01}
	val := rawdb.Hash{}
	val[31] = 0x2a

	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))
	sdb.SetState(a, slot, val)
	// Dirty read before commit.
	got, err := sdb.GetState(a, slot)
	if err != nil || got != val {
		t.Fatalf("dirty GetState = %x, %v", got, err)
	}
	commit, err := sdb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	got, err = sdb2.GetState(a, slot)
	if err != nil || got != val {
		t.Fatalf("committed GetState = %x, %v", got, err)
	}
	// Absent slot reads as zero.
	if got, _ := sdb2.GetState(a, rawdb.Hash{0xff}); got != (rawdb.Hash{}) {
		t.Fatalf("absent slot = %x", got)
	}
	// Storage root must be folded into the account.
	acct, _ := sdb2.GetAccount(a)
	if acct.Root == trie.EmptyRoot {
		t.Fatal("storage root not propagated to account")
	}
}

func TestStateDBCachedReadsViaSnapshot(t *testing.T) {
	backend := cachedBackend(t)
	sdb, _ := New(backend)
	a := addr(3)
	slot := rawdb.Hash{0x05}
	var val rawdb.Hash
	val[31] = 9

	sdb.UpdateAccount(a, NewAccount(big.NewInt(777)))
	sdb.SetState(a, slot, val)
	commit, err := sdb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	base := sdb2.Resolves() // opening the trie loads the root once
	acct, err := sdb2.GetAccount(a)
	if err != nil || acct == nil || acct.Balance.Int64() != 777 {
		t.Fatalf("snapshot account read: %+v, %v", acct, err)
	}
	got, err := sdb2.GetState(a, slot)
	if err != nil || got != val {
		t.Fatalf("snapshot slot read = %x, %v", got, err)
	}
	// Snapshot reads must not traverse the trie.
	if sdb2.Resolves() != base {
		t.Fatalf("snapshot path resolved %d extra trie nodes", sdb2.Resolves()-base)
	}
	// Absent account answered authoritatively by the snapshot.
	if acct, err := sdb2.GetAccount(addr(0xEE)); err != nil || acct != nil {
		t.Fatalf("absent account via snapshot: %+v, %v", acct, err)
	}
}

func TestStateDBCodeRoundTrip(t *testing.T) {
	backend := cachedBackend(t)
	sdb, _ := New(backend)
	a := addr(4)
	code := bytes.Repeat([]byte{0x60, 0x80, 0x60, 0x40}, 500)
	hash := sdb.SetCode(a, code)

	acct := NewAccount(big.NewInt(0))
	acct.CodeHash = hash
	sdb.UpdateAccount(a, acct)
	// Dirty code readable pre-commit.
	if got, err := sdb.GetCode(hash); err != nil || !bytes.Equal(got, code) {
		t.Fatalf("dirty code: %v", err)
	}
	commit, _ := sdb.Commit()
	if !bytes.Equal(commit.Code[hash], code) {
		t.Fatal("commit lost code")
	}
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	got, err := sdb2.GetCode(hash)
	if err != nil || !bytes.Equal(got, code) {
		t.Fatalf("committed code: %v", err)
	}
	// Second read should hit the code cache (no new store read).
	if _, err := sdb2.GetCode(hash); err != nil {
		t.Fatal(err)
	}
}

func TestStateDBDestruct(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(5)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))
	commit, _ := sdb.Commit()
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	sdb2.DestructAccount(a)
	commit2, err := sdb2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if commit2.Root != trie.EmptyRoot {
		t.Fatal("destructing the only account must empty the trie")
	}
	if commit2.SnapAccounts[AddressHash(a)] != nil {
		t.Fatal("destruct must emit a nil snapshot entry")
	}
	writeCommit(t, backend, commit2)
	sdb3, _ := New(backend)
	if acct, _ := sdb3.GetAccount(a); acct != nil {
		t.Fatal("account survived destruction")
	}
}

func TestCommitSnapshotEncodings(t *testing.T) {
	backend := cachedBackend(t)
	sdb, _ := New(backend)
	a := addr(6)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(12345)))
	commit, _ := sdb.Commit()
	slim := commit.SnapAccounts[AddressHash(a)]
	if slim == nil {
		t.Fatal("no snapshot entry emitted")
	}
	dec, err := DecodeSlim(slim)
	if err != nil || dec.Balance.Int64() != 12345 {
		t.Fatalf("slim entry: %v", err)
	}
}

func TestSlotValueTrimming(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(7)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))
	// A slot value with 31 leading zeros stores as a single byte.
	var small rawdb.Hash
	small[31] = 0x7
	sdb.SetState(a, rawdb.Hash{1}, small)
	commit, _ := sdb.Commit()
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	got, err := sdb2.GetState(a, rawdb.Hash{1})
	if err != nil || got != small {
		t.Fatalf("trimmed slot = %x, %v", got, err)
	}
}

func TestZeroValueClearsSlot(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	a := addr(8)
	sdb.UpdateAccount(a, NewAccount(big.NewInt(1)))
	var v rawdb.Hash
	v[31] = 1
	sdb.SetState(a, rawdb.Hash{2}, v)
	commit, _ := sdb.Commit()
	writeCommit(t, backend, commit)

	sdb2, _ := New(backend)
	sdb2.SetState(a, rawdb.Hash{2}, rawdb.Hash{}) // zero = clear
	commit2, _ := sdb2.Commit()
	writeCommit(t, backend, commit2)

	sdb3, _ := New(backend)
	if got, _ := sdb3.GetState(a, rawdb.Hash{2}); got != (rawdb.Hash{}) {
		t.Fatalf("cleared slot reads %x", got)
	}
	// The snapshot delta must carry a nil marker for the cleared slot.
	slotHash := SlotHash(rawdb.Hash{2})
	if data, ok := commit2.SnapStorage[AddressHash(a)][slotHash]; !ok || data != nil {
		t.Fatal("clearing must emit nil snapshot slot entry")
	}
}

func TestAddressAndSlotHashing(t *testing.T) {
	a := addr(9)
	h1 := AddressHash(a)
	h2 := AddressHash(a)
	if h1 != h2 {
		t.Fatal("AddressHash not deterministic")
	}
	if AddressHash(addr(10)) == h1 {
		t.Fatal("distinct addresses collide")
	}
	if SlotHash(rawdb.Hash{1}) == SlotHash(rawdb.Hash{2}) {
		t.Fatal("distinct slots collide")
	}
}

// TestGenerateSnapshotMatchesCommitSeed: regenerating the flat snapshot
// from the tries must produce exactly the entries the commit path emitted.
func TestGenerateSnapshotMatchesCommitSeed(t *testing.T) {
	backend := bareBackend(t)
	sdb, _ := New(backend)
	// A mix of EOAs and a contract with storage.
	for i := 0; i < 40; i++ {
		sdb.UpdateAccount(addr(byte(i+1)), NewAccount(big.NewInt(int64(i)*7+1)))
	}
	contract := addr(200)
	code := []byte{0x60, 0x00}
	acct := NewAccount(big.NewInt(5))
	acct.CodeHash = sdb.SetCode(contract, code)
	sdb.UpdateAccount(contract, acct)
	for s := 0; s < 12; s++ {
		var v rawdb.Hash
		v[31] = byte(s + 1)
		sdb.SetState(contract, rawdb.Hash{byte(s)}, v)
	}
	commit, err := sdb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	writeCommit(t, backend, commit)

	// Generate into a fresh store and compare against the commit's
	// snapshot delta.
	out := kv.NewMemStore()
	defer out.Close()
	accounts, slots, err := GenerateSnapshot(backend, out)
	if err != nil {
		t.Fatal(err)
	}
	if accounts != 41 {
		t.Fatalf("generated %d accounts, want 41", accounts)
	}
	if slots != 12 {
		t.Fatalf("generated %d slots, want 12", slots)
	}
	for acctHash, want := range commit.SnapAccounts {
		got, err := rawdb.ReadSnapshotAccount(out, acctHash)
		if err != nil {
			t.Fatalf("generated snapshot missing account %x: %v", acctHash[:4], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("account %x: generated %x, commit %x", acctHash[:4], got, want)
		}
	}
	for acctHash, slotMap := range commit.SnapStorage {
		for slotHash, want := range slotMap {
			got, err := rawdb.ReadSnapshotStorage(out, acctHash, slotHash)
			if err != nil {
				t.Fatalf("generated snapshot missing slot: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("slot mismatch: generated %x, commit %x", got, want)
			}
		}
	}
}

func TestGenerateSnapshotEmptyState(t *testing.T) {
	backend := bareBackend(t)
	out := kv.NewMemStore()
	defer out.Close()
	accounts, slots, err := GenerateSnapshot(backend, out)
	if err != nil || accounts != 0 || slots != 0 {
		t.Fatalf("empty generate: %d, %d, %v", accounts, slots, err)
	}
}
