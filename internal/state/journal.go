package state

import "ethkv/internal/rawdb"

// Transaction-scoped journaling: the EVM can revert a failing transaction,
// undoing its state writes without disturbing earlier transactions in the
// block. The StateDB records an undo entry per mutation; Snapshot marks a
// journal height and RevertToSnapshot unwinds to it. This mirrors Geth's
// journal and keeps the traced write stream faithful: reverted writes never
// reach Commit, so they never appear at the KV interface — reads performed
// before the revert, however, already did (the paper's traces include reads
// by failed transactions too).

// journalEntry is one undoable mutation.
type journalEntry interface {
	revert(s *StateDB)
}

// accountChange restores a previous dirty-account binding.
type accountChange struct {
	addr     Address
	prev     *Account
	existed  bool
	prevLive *Account
	hadLive  bool
}

func (c accountChange) revert(s *StateDB) {
	if c.existed {
		s.dirtyAccounts[c.addr] = c.prev
	} else {
		delete(s.dirtyAccounts, c.addr)
	}
	if c.hadLive {
		s.liveAccounts[c.addr] = c.prevLive
	} else {
		delete(s.liveAccounts, c.addr)
	}
}

// storageChange restores a previous dirty-slot binding.
type storageChange struct {
	addr    Address
	slot    rawdb.Hash
	prev    rawdb.Hash
	existed bool
}

func (c storageChange) revert(s *StateDB) {
	slots := s.dirtyStorage[c.addr]
	if slots == nil {
		return
	}
	if c.existed {
		slots[c.slot] = c.prev
	} else {
		delete(slots, c.slot)
		if len(slots) == 0 {
			delete(s.dirtyStorage, c.addr)
		}
	}
}

// codeChange removes buffered code.
type codeChange struct {
	hash rawdb.Hash
}

func (c codeChange) revert(s *StateDB) {
	delete(s.dirtyCode, c.hash)
}

// Snapshot returns an identifier for the current journal height.
func (s *StateDB) Snapshot() int {
	return len(s.journal)
}

// RevertToSnapshot unwinds every mutation recorded after the snapshot.
func (s *StateDB) RevertToSnapshot(id int) {
	if id < 0 || id > len(s.journal) {
		return
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i].revert(s)
	}
	s.journal = s.journal[:id]
}

// journalAccount records the pre-state of an account binding.
func (s *StateDB) journalAccount(addr Address) {
	prev, existed := s.dirtyAccounts[addr]
	prevLive, hadLive := s.liveAccounts[addr]
	s.journal = append(s.journal, accountChange{
		addr: addr, prev: prev, existed: existed,
		prevLive: prevLive, hadLive: hadLive,
	})
}

// journalStorage records the pre-state of a slot binding.
func (s *StateDB) journalStorage(addr Address, slot rawdb.Hash) {
	var prev rawdb.Hash
	existed := false
	if slots, ok := s.dirtyStorage[addr]; ok {
		prev, existed = slots[slot]
	}
	s.journal = append(s.journal, storageChange{
		addr: addr, slot: slot, prev: prev, existed: existed,
	})
}

// journalCode records buffered code for removal on revert.
func (s *StateDB) journalCode(hash rawdb.Hash) {
	s.journal = append(s.journal, codeChange{hash: hash})
}
