package state

import (
	"bytes"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"testing"

	"ethkv/internal/cache"
	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
	"ethkv/internal/snapshot"
	"ethkv/internal/trace"
	"ethkv/internal/trie"
)

// applyCommitSorted persists a state commit in deterministic (sorted) key
// order, the way the chain processor's batched flush does — map-order
// writes would make op-stream comparison meaningless.
func applyCommitSorted(t *testing.T, b *Backend, c *Commit) {
	t.Helper()
	writeSet := func(write func(path []byte, blob []byte), del func(path []byte), set *trie.NodeSet) {
		paths := make([]string, 0, len(set.Writes))
		for p := range set.Writes {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			write([]byte(p), set.Writes[p])
		}
		dels := append([]string(nil), set.Deletes...)
		sort.Strings(dels)
		for _, p := range dels {
			del([]byte(p))
		}
	}
	writeSet(func(p, blob []byte) { rawdb.WriteAccountTrieNode(b.DB, p, blob) },
		func(p []byte) { rawdb.DeleteAccountTrieNode(b.DB, p) }, c.AccountNodes)
	owners := make([]rawdb.Hash, 0, len(c.StorageNodes))
	for o := range c.StorageNodes {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return bytes.Compare(owners[i][:], owners[j][:]) < 0 })
	for _, owner := range owners {
		owner := owner
		writeSet(func(p, blob []byte) { rawdb.WriteStorageTrieNode(b.DB, owner, p, blob) },
			func(p []byte) { rawdb.DeleteStorageTrieNode(b.DB, owner, p) }, c.StorageNodes[owner])
	}
	if b.Snaps != nil {
		if err := b.Snaps.Update(c.Root, c.SnapAccounts, c.SnapStorage); err != nil {
			t.Fatal(err)
		}
	}
}

// runStateCommit executes a fixed two-block mutation sequence against a
// fresh traced backend, committing with the given worker count, and returns
// the emitted op stream plus the second block's commit.
func runStateCommit(t *testing.T, workers int, cached bool) ([]trace.Op, *Commit) {
	t.Helper()
	inner := kv.NewMemStore()
	t.Cleanup(func() { inner.Close() })
	sink := &trace.SliceSink{}
	traced := trace.WrapStore(inner, sink)
	backend := &Backend{DB: traced}
	if cached {
		backend.Snaps = snapshot.NewTree(traced, 8)
		backend.Caches = cache.NewManager(1<<20, nil)
	}
	sdb, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	slot := func(j int) rawdb.Hash {
		var h rawdb.Hash
		h[31] = byte(j)
		h[0] = byte(j >> 8)
		return h
	}
	val := func(v int) rawdb.Hash {
		var h rawdb.Hash
		h[31] = byte(v)
		h[30] = byte(v >> 8)
		return h
	}
	// Block 1: create 40 accounts, 8 slots each.
	for i := 0; i < 40; i++ {
		a := addr(byte(i + 1))
		sdb.UpdateAccount(a, NewAccount(big.NewInt(int64(i+100))))
		for j := 0; j < 8; j++ {
			sdb.SetState(a, slot(j), val(i*100+j+1))
		}
	}
	c1, err := sdb.CommitParallel(workers)
	if err != nil {
		t.Fatal(err)
	}
	applyCommitSorted(t, backend, c1)
	// Block 2: overwrite slots, clear slots, destruct an account with dirty
	// storage, create a fresh account.
	for i := 0; i < 20; i++ {
		a := addr(byte(i + 1))
		sdb.SetState(a, slot(i%8), val(9000+i))
		sdb.SetState(a, slot((i+1)%8), rawdb.Hash{}) // zero clears
	}
	victim := addr(5)
	sdb.SetState(victim, slot(0), rawdb.Hash{})
	sdb.DestructAccount(victim)
	fresh := addr(200)
	sdb.UpdateAccount(fresh, NewAccount(big.NewInt(777)))
	sdb.SetState(fresh, slot(3), val(31337))
	c2, err := sdb.CommitParallel(workers)
	if err != nil {
		t.Fatal(err)
	}
	applyCommitSorted(t, backend, c2)
	return sink.Ops, c2
}

func nodeSetsEqual(t *testing.T, label string, a, b *trie.NodeSet) {
	t.Helper()
	if len(a.Writes) != len(b.Writes) {
		t.Fatalf("%s: %d vs %d writes", label, len(a.Writes), len(b.Writes))
	}
	for p, enc := range a.Writes {
		if !bytes.Equal(b.Writes[p], enc) {
			t.Fatalf("%s: write at %x differs", label, p)
		}
	}
	ad := append([]string(nil), a.Deletes...)
	bd := append([]string(nil), b.Deletes...)
	sort.Strings(ad)
	sort.Strings(bd)
	if fmt.Sprint(ad) != fmt.Sprint(bd) {
		t.Fatalf("%s: deletes differ: %x vs %x", label, ad, bd)
	}
}

// TestCommitParallelEquivalence: at every worker count, in both backend
// configurations, the parallel commit must produce the identical state
// root, node sets, snapshot deltas, AND the byte-identical KV-op stream as
// the sequential commit.
func TestCommitParallelEquivalence(t *testing.T) {
	counts := []int{2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, cached := range []bool{false, true} {
		name := "bare"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			seqOps, seqCommit := runStateCommit(t, 1, cached)
			for _, workers := range counts {
				parOps, parCommit := runStateCommit(t, workers, cached)
				if parCommit.Root != seqCommit.Root {
					t.Fatalf("workers=%d: root %x != %x", workers, parCommit.Root, seqCommit.Root)
				}
				nodeSetsEqual(t, fmt.Sprintf("workers=%d account nodes", workers),
					seqCommit.AccountNodes, parCommit.AccountNodes)
				if len(seqCommit.StorageNodes) != len(parCommit.StorageNodes) {
					t.Fatalf("workers=%d: storage owners %d vs %d", workers,
						len(seqCommit.StorageNodes), len(parCommit.StorageNodes))
				}
				for owner, set := range seqCommit.StorageNodes {
					got, ok := parCommit.StorageNodes[owner]
					if !ok {
						t.Fatalf("workers=%d: owner %x missing", workers, owner)
					}
					nodeSetsEqual(t, fmt.Sprintf("workers=%d owner %x", workers, owner), set, got)
				}
				for h, enc := range seqCommit.SnapAccounts {
					if !bytes.Equal(parCommit.SnapAccounts[h], enc) {
						t.Fatalf("workers=%d: snap account %x differs", workers, h)
					}
				}
				// The op streams must match byte for byte.
				if len(parOps) != len(seqOps) {
					t.Fatalf("workers=%d: %d ops vs %d sequential", workers, len(parOps), len(seqOps))
				}
				for i := range seqOps {
					a, b := seqOps[i], parOps[i]
					if a.Type != b.Type || !bytes.Equal(a.Key, b.Key) ||
						a.ValueSize != b.ValueSize || a.Hit != b.Hit || a.Class != b.Class {
						t.Fatalf("workers=%d: op %d differs:\nseq %+v\npar %+v", workers, i, a, b)
					}
				}
			}
		})
	}
}
