package state

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"ethkv/internal/cache"
	"ethkv/internal/keccak"
	"ethkv/internal/kv"
	"ethkv/internal/rawdb"
	"ethkv/internal/rlp"
	"ethkv/internal/snapshot"
	"ethkv/internal/trie"
)

// Backend bundles the storage facilities a StateDB reads through. Snaps and
// Caches are optional: both nil reproduces the BareTrace configuration,
// both set reproduces CacheTrace (snapshot acceleration is coupled to
// caching in Geth, §III-A).
type Backend struct {
	DB     kv.Store
	Snaps  *snapshot.Tree
	Caches *cache.Manager
	// DirtyNodes, when set, serves trie nodes that have been committed but
	// not yet flushed to the database (Geth's in-memory dirty node cache).
	// Lookups hit it before the clean cache and the store.
	DirtyNodes NodeBuffer
	// AdmitOnWrite mirrors Geth: trie nodes and snapshot entries written
	// during commit are admitted to the cache. Finding 6 argues against
	// this; the ablation benches flip it.
	AdmitOnWrite bool
}

// NodeBuffer serves unflushed trie nodes from memory. A found entry with a
// nil blob is a pending deletion.
type NodeBuffer interface {
	GetNode(key []byte) (blob []byte, found bool)
}

// cachedGet reads key through the class cache, falling back to the store.
func (b *Backend) cachedGet(class rawdb.Class, key []byte) ([]byte, error) {
	if b.Caches != nil {
		if v, ok := b.Caches.Get(class, key); ok {
			return v, nil
		}
	}
	v, err := b.DB.Get(key)
	if err != nil {
		return nil, err
	}
	if b.Caches != nil {
		b.Caches.Add(class, key, v)
	}
	return v, nil
}

// accountNodeReader adapts the backend to trie.NodeReader for the account
// trie.
type accountNodeReader struct{ b *Backend }

func (r accountNodeReader) ReadNode(path []byte) ([]byte, error) {
	key := rawdb.AccountTrieNodeKey(path)
	if r.b.DirtyNodes != nil {
		if blob, found := r.b.DirtyNodes.GetNode(key); found {
			if blob == nil {
				return nil, trie.ErrNodeNotFound
			}
			return blob, nil
		}
	}
	v, err := r.b.cachedGet(rawdb.ClassTrieNodeAccount, key)
	if errors.Is(err, kv.ErrNotFound) {
		return nil, trie.ErrNodeNotFound
	}
	return v, err
}

// storageNodeReader adapts the backend for one account's storage trie.
type storageNodeReader struct {
	b     *Backend
	owner rawdb.Hash
}

func (r storageNodeReader) ReadNode(path []byte) ([]byte, error) {
	key := rawdb.StorageTrieNodeKey(r.owner, path)
	if r.b.DirtyNodes != nil {
		if blob, found := r.b.DirtyNodes.GetNode(key); found {
			if blob == nil {
				return nil, trie.ErrNodeNotFound
			}
			return blob, nil
		}
	}
	v, err := r.b.cachedGet(rawdb.ClassTrieNodeStorage, key)
	if errors.Is(err, kv.ErrNotFound) {
		return nil, trie.ErrNodeNotFound
	}
	return v, err
}

// StateDB is the mutable world state for one block's execution. Reads go
// through snapshot acceleration when available; writes buffer in memory and
// land in tries at Commit, reproducing Geth's read-during-execution /
// write-after-verification pattern (§IV-C).
type StateDB struct {
	backend *Backend

	accountTrie  *trie.Trie
	storageTries map[rawdb.Hash]*trie.Trie

	// Buffered mutations for the current block.
	dirtyAccounts map[Address]*Account // nil *Account marks destruction
	dirtyStorage  map[Address]map[rawdb.Hash]rawdb.Hash
	dirtyCode     map[rawdb.Hash][]byte

	// liveAccounts caches accounts read or written this block.
	liveAccounts map[Address]*Account

	// journal records undo entries for transaction-scoped reverts.
	journal []journalEntry
}

// New opens the world state at the current head.
func New(backend *Backend) (*StateDB, error) {
	accountTrie, err := trie.New(accountNodeReader{backend})
	if err != nil {
		return nil, fmt.Errorf("state: opening account trie: %w", err)
	}
	return &StateDB{
		backend:       backend,
		accountTrie:   accountTrie,
		storageTries:  make(map[rawdb.Hash]*trie.Trie),
		dirtyAccounts: make(map[Address]*Account),
		dirtyStorage:  make(map[Address]map[rawdb.Hash]rawdb.Hash),
		dirtyCode:     make(map[rawdb.Hash][]byte),
		liveAccounts:  make(map[Address]*Account),
	}, nil
}

// GetAccount returns the account at addr, or nil if absent. The read takes
// the snapshot fast path when acceleration is on (one flat read instead of
// an MPT traversal), exactly the mechanism behind Finding 7.
func (s *StateDB) GetAccount(addr Address) (*Account, error) {
	if acct, ok := s.liveAccounts[addr]; ok {
		return acct, nil
	}
	if acct, ok := s.dirtyAccounts[addr]; ok {
		return acct, nil
	}
	acctHash := AddressHash(addr)
	if s.backend.Snaps != nil {
		data, err := s.snapAccount(acctHash)
		if err == nil {
			acct, derr := DecodeSlim(data)
			if derr != nil {
				return nil, derr
			}
			s.liveAccounts[addr] = acct
			return acct, nil
		}
		if !errors.Is(err, kv.ErrNotFound) {
			return nil, err
		}
		return nil, nil // snapshot authoritative: account absent
	}
	// Bare path: full trie traversal.
	data, err := s.accountTrie.Get(addr[:])
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, nil
	}
	acct, err := DecodeAccountRLP(data)
	if err != nil {
		return nil, err
	}
	s.liveAccounts[addr] = acct
	return acct, nil
}

// snapAccount reads the flat account entry. The snapshot tree caches its
// own disk layer; fronting the tree with a cache here would let stale
// entries shadow newer diff layers.
func (s *StateDB) snapAccount(acctHash rawdb.Hash) ([]byte, error) {
	return s.backend.Snaps.Account(acctHash)
}

// UpdateAccount buffers a mutation of addr's account.
func (s *StateDB) UpdateAccount(addr Address, acct *Account) {
	s.journalAccount(addr)
	s.dirtyAccounts[addr] = acct
	s.liveAccounts[addr] = acct
}

// DestructAccount buffers the removal of addr's account.
func (s *StateDB) DestructAccount(addr Address) {
	s.journalAccount(addr)
	s.dirtyAccounts[addr] = nil
	delete(s.liveAccounts, addr)
}

// GetState reads one storage slot of addr.
func (s *StateDB) GetState(addr Address, slot rawdb.Hash) (rawdb.Hash, error) {
	if slots, ok := s.dirtyStorage[addr]; ok {
		if v, ok := slots[slot]; ok {
			return v, nil
		}
	}
	var out rawdb.Hash
	acctHash := AddressHash(addr)
	if s.backend.Snaps != nil {
		data, err := s.snapStorage(acctHash, SlotHash(slot))
		if errors.Is(err, kv.ErrNotFound) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		copy(out[32-len(data):], data)
		return out, nil
	}
	// Bare path: traverse the storage trie.
	st, err := s.storageTrie(addr, acctHash)
	if err != nil {
		return out, err
	}
	data, err := st.Get(slot[:])
	if err != nil {
		return out, err
	}
	if len(data) > 0 {
		// Stored values are RLP-encoded with leading zeros trimmed.
		dec, err := rlpDecodeSlot(data)
		if err != nil {
			return out, err
		}
		copy(out[32-len(dec):], dec)
	}
	return out, nil
}

// snapStorage reads a flat slot entry (disk-layer caching lives inside the
// snapshot tree; see snapAccount).
func (s *StateDB) snapStorage(acctHash, slotHash rawdb.Hash) ([]byte, error) {
	return s.backend.Snaps.Storage(acctHash, slotHash)
}

// SetState buffers a slot write. A zero value clears the slot.
func (s *StateDB) SetState(addr Address, slot, value rawdb.Hash) {
	s.journalStorage(addr, slot)
	slots := s.dirtyStorage[addr]
	if slots == nil {
		slots = make(map[rawdb.Hash]rawdb.Hash)
		s.dirtyStorage[addr] = slots
	}
	slots[slot] = value
}

// SetCode buffers contract code deployment and returns its hash.
func (s *StateDB) SetCode(addr Address, code []byte) rawdb.Hash {
	hash := codeHash(code)
	s.journalCode(hash)
	s.dirtyCode[hash] = append([]byte(nil), code...)
	return hash
}

// GetCode reads contract code by hash through the code cache.
func (s *StateDB) GetCode(hash rawdb.Hash) ([]byte, error) {
	if code, ok := s.dirtyCode[hash]; ok {
		return code, nil
	}
	return s.backend.cachedGet(rawdb.ClassCode, rawdb.CodeKey(hash))
}

// storageTrie lazily opens addr's storage trie.
func (s *StateDB) storageTrie(addr Address, acctHash rawdb.Hash) (*trie.Trie, error) {
	if st, ok := s.storageTries[acctHash]; ok {
		return st, nil
	}
	st, err := trie.New(storageNodeReader{s.backend, acctHash})
	if err != nil {
		return nil, err
	}
	s.storageTries[acctHash] = st
	return st, nil
}

// Commit is the output of StateDB.Commit: every storage delta one block
// produces, ready for the chain processor to batch-write.
type Commit struct {
	Root         rawdb.Hash
	AccountNodes *trie.NodeSet
	StorageNodes map[rawdb.Hash]*trie.NodeSet
	SnapAccounts map[rawdb.Hash][]byte // slim encodings; nil = deleted
	SnapStorage  map[rawdb.Hash]map[rawdb.Hash][]byte
	Code         map[rawdb.Hash][]byte
}

// Commit folds the buffered mutations into the tries and returns the full
// delta. The StateDB remains usable for the next block.
func (s *StateDB) Commit() (*Commit, error) {
	return s.CommitParallel(1)
}

// pendingStorage carries one account's storage commit between the phases of
// CommitParallel.
type pendingStorage struct {
	addr       Address
	acctHash   rawdb.Hash
	st         *trie.Trie
	snapSlots  map[rawdb.Hash][]byte
	destructed bool
	acct       *Account // copy awaiting its storage root; nil if destructed
	set        *trie.NodeSet
	root       rawdb.Hash
}

// CommitParallel is Commit with the storage-trie hashing fanned across up
// to workers goroutines. The work splits into three phases: (A) a
// sequential phase applies slot mutations and account reads — everything
// that can reach the database, in the exact order the sequential commit
// issues it; (B) a parallel phase commits distinct accounts' storage tries,
// which is pure encoding/keccak work with zero database traffic (all node
// resolution happened in phase A); (C) a sequential phase propagates the
// storage roots and commits the account trie. The emitted KV-op stream is
// therefore byte-identical to Commit at every worker count.
func (s *StateDB) CommitParallel(workers int) (*Commit, error) {
	out := &Commit{
		StorageNodes: make(map[rawdb.Hash]*trie.NodeSet),
		SnapAccounts: make(map[rawdb.Hash][]byte),
		SnapStorage:  make(map[rawdb.Hash]map[rawdb.Hash][]byte),
		Code:         s.dirtyCode,
	}
	// Phase A — storage tries first: account roots depend on them. Iterate
	// in sorted address order: resolution reads during trie updates reach
	// the traced store, so commit order must be deterministic.
	pending := make([]*pendingStorage, 0, len(s.dirtyStorage))
	for _, addr := range sortedAddrs(s.dirtyStorage) {
		slots := s.dirtyStorage[addr]
		acctHash := AddressHash(addr)
		st, err := s.storageTrie(addr, acctHash)
		if err != nil {
			return nil, err
		}
		p := &pendingStorage{addr: addr, acctHash: acctHash, st: st,
			snapSlots: make(map[rawdb.Hash][]byte, len(slots))}
		for _, slot := range sortedSlots(slots) {
			value := slots[slot]
			trimmed := trimZeros(value)
			if len(trimmed) == 0 {
				if err := st.Delete(slot[:]); err != nil {
					return nil, err
				}
				p.snapSlots[SlotHash(slot)] = nil
			} else {
				enc := rlpEncodeSlot(trimmed)
				if err := st.Update(slot[:], enc); err != nil {
					return nil, err
				}
				p.snapSlots[SlotHash(slot)] = trimmed
			}
		}
		// Read the account now (possibly a database read) so phase B has no
		// database traffic left. If the account was destructed this block,
		// the slot clears just feed the storage-trie/snapshot delta and the
		// account itself stays dead.
		if dead, destructed := s.dirtyAccounts[addr]; destructed && dead == nil {
			p.destructed = true
		} else {
			acct, err := s.GetAccount(addr)
			if err != nil {
				return nil, err
			}
			if acct == nil {
				acct = NewAccount(bigZero())
			}
			p.acct = acct.Copy()
		}
		pending = append(pending, p)
	}
	// Phase B — hash distinct accounts' storage tries concurrently. The
	// tries share no nodes, and trie.Commit never touches the NodeReader.
	if workers > 1 && len(pending) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, p := range pending {
			wg.Add(1)
			sem <- struct{}{}
			go func(p *pendingStorage) {
				defer wg.Done()
				p.set, p.root = p.st.Commit()
				<-sem
			}(p)
		}
		wg.Wait()
	} else {
		for _, p := range pending {
			p.set, p.root = p.st.Commit()
		}
	}
	// Phase C — propagate storage roots in the original order.
	for _, p := range pending {
		if len(p.set.Writes) > 0 || len(p.set.Deletes) > 0 {
			out.StorageNodes[p.acctHash] = p.set
		}
		out.SnapStorage[p.acctHash] = p.snapSlots
		if p.destructed {
			continue
		}
		p.acct.Root = p.root
		s.dirtyAccounts[p.addr] = p.acct
		s.liveAccounts[p.addr] = p.acct
	}
	// Account trie, in sorted address order (same determinism argument).
	for _, addr := range sortedDirtyAccounts(s.dirtyAccounts) {
		acct := s.dirtyAccounts[addr]
		acctHash := AddressHash(addr)
		if acct == nil {
			if err := s.accountTrie.Delete(addr[:]); err != nil {
				return nil, err
			}
			out.SnapAccounts[acctHash] = nil
			continue
		}
		if err := s.accountTrie.Update(addr[:], acct.EncodeRLP()); err != nil {
			return nil, err
		}
		out.SnapAccounts[acctHash] = acct.EncodeSlim()
	}
	set, root := s.accountTrie.CommitParallel(workers)
	out.AccountNodes = set
	out.Root = root

	// Reset per-block buffers. The journal dies with them: commits are
	// block boundaries; reverts only happen within a block.
	s.dirtyAccounts = make(map[Address]*Account)
	s.dirtyStorage = make(map[Address]map[rawdb.Hash]rawdb.Hash)
	s.dirtyCode = make(map[rawdb.Hash][]byte)
	s.liveAccounts = make(map[Address]*Account)
	s.journal = nil
	return out, nil
}

// Resolves reports trie node loads so far (instrumentation).
func (s *StateDB) Resolves() int {
	total := s.accountTrie.Resolves()
	for _, st := range s.storageTries {
		total += st.Resolves()
	}
	return total
}

// trimZeros strips leading zero bytes of a 32-byte word.
func trimZeros(v rawdb.Hash) []byte {
	i := 0
	for i < 32 && v[i] == 0 {
		i++
	}
	return v[i:]
}

// rlpEncodeSlot encodes a trimmed slot value for trie storage.
func rlpEncodeSlot(trimmed []byte) []byte {
	return rlp.EncodeString(trimmed)
}

// rlpDecodeSlot decodes a trie-stored slot value.
func rlpDecodeSlot(data []byte) ([]byte, error) {
	return rlp.DecodeString(data)
}

// codeHash returns keccak256 of contract code.
func codeHash(code []byte) rawdb.Hash {
	return keccak.Hash256(code)
}

func bigZero() *big.Int { return new(big.Int) }

// sortedAddrs returns the storage map's addresses in ascending order.
func sortedAddrs(m map[Address]map[rawdb.Hash]rawdb.Hash) []Address {
	out := make([]Address, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// sortedDirtyAccounts returns the account map's addresses in ascending
// order.
func sortedDirtyAccounts(m map[Address]*Account) []Address {
	out := make([]Address, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// sortedSlots returns slot keys in ascending order.
func sortedSlots(m map[rawdb.Hash]rawdb.Hash) []rawdb.Hash {
	out := make([]rawdb.Hash, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}
