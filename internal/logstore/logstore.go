// Package logstore implements an append-only log store with batched
// deletion — the structure §V of the paper recommends for high-deletion
// classes (TxLookup) and immutable block data (BlockHeader/Body/Receipts).
//
// Records append to fixed-capacity chunks in arrival order; no key ordering
// is maintained (scans are rare, Finding 4) and no tombstones are written
// (deletions are common, Finding 5). Deletes drop the index entry and mark
// garbage; whole chunks retire at once when their live share drains — the
// "remove old KV pairs in batches" behaviour the paper asks for, matching
// blockchain lifecycle where deletions sweep contiguous old block ranges.
package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

// errCorruptRecord marks a chunk record whose framing does not decode. The
// store is in-memory, so this indicates index/chunk disagreement (a bug or a
// deliberately injected fault) rather than media damage; either way reads
// must report it, not panic or return a silently wrong extent.
var errCorruptRecord = errors.New("logstore: corrupt record")

// chunkCapacity is the record budget of one log chunk. Lifecycle deletions
// in blockchains sweep old data, so whole chunks drain together.
const chunkCapacity = 1 << 12

// chunk is one append-only run of records.
type chunk struct {
	id   uint64
	buf  []byte
	live int // live record count; retire at zero
}

// location addresses one record.
type location struct {
	chunk  uint64
	offset uint32
	length uint32
}

// Store is the append-only log store. Purely in-memory: it models I/O
// behaviour for experiments (counters track what a disk-backed variant
// would transfer); the durability story of its production shape is the
// freezer pattern in internal/rawdb.
type Store struct {
	mu     sync.RWMutex
	index  map[string]location
	chunks map[uint64]*chunk
	active *chunk
	nextID uint64
	closed bool
	// statsMu guards stats on paths that hold only mu.RLock (Get, scans):
	// concurrent readers must not race on the counters. Write paths hold
	// mu exclusively, which already excludes every RLock holder.
	statsMu sync.Mutex
	stats   kv.Stats

	retired uint64 // chunks dropped whole
}

var _ kv.Store = (*Store)(nil)
var _ kv.StatsProvider = (*Store)(nil)

// New returns an empty log store.
func New() *Store {
	s := &Store{
		index:  make(map[string]location),
		chunks: make(map[uint64]*chunk),
	}
	s.roll()
	return s
}

// roll starts a new active chunk.
func (s *Store) roll() {
	c := &chunk{id: s.nextID}
	s.nextID++
	s.chunks[c.id] = c
	s.active = c
}

// Put implements kv.Writer: append-only, O(1), no ordering work.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	var rec []byte
	rec = binary.AppendUvarint(rec, uint64(len(key)))
	rec = append(rec, key...)
	rec = binary.AppendUvarint(rec, uint64(len(value)))
	rec = append(rec, value...)

	if old, ok := s.index[string(key)]; ok {
		s.releaseRecord(old)
	}
	off := len(s.active.buf)
	s.active.buf = append(s.active.buf, rec...)
	s.active.live++
	s.index[string(key)] = location{chunk: s.active.id, offset: uint32(off), length: uint32(len(rec))}

	s.stats.Puts++
	s.stats.LogicalBytesWritten += uint64(len(key) + len(value))
	s.stats.PhysicalBytesWrite += uint64(len(rec))
	if s.active.live >= chunkCapacity {
		s.roll()
	}
	return nil
}

// Delete implements kv.Writer. No tombstone: the index entry vanishes and
// the chunk's live count drops; a drained chunk retires whole.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.stats.Deletes++
	loc, ok := s.index[string(key)]
	if !ok {
		return nil
	}
	delete(s.index, string(key))
	s.releaseRecord(loc)
	return nil
}

// releaseRecord decrements the owning chunk's live count and retires the
// chunk when it drains (batched reclamation — zero copy, zero compaction).
func (s *Store) releaseRecord(loc location) {
	c, ok := s.chunks[loc.chunk]
	if !ok {
		return
	}
	c.live--
	if c.live == 0 && c != s.active {
		delete(s.chunks, loc.chunk)
		s.retired++
	}
}

// Get implements kv.Reader.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	s.statsMu.Lock()
	s.stats.Gets++
	s.statsMu.Unlock()
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	v, err := s.readValue(loc)
	if err != nil {
		return nil, err
	}
	s.statsMu.Lock()
	s.stats.LogicalBytesRead += uint64(len(v))
	s.stats.PhysicalBytesRead += uint64(loc.length)
	s.statsMu.Unlock()
	return v, nil
}

// readValue decodes the value of the record at loc, bounds-checking every
// access against the owning chunk.
func (s *Store) readValue(loc location) ([]byte, error) {
	c, ok := s.chunks[loc.chunk]
	if !ok || uint64(loc.offset)+uint64(loc.length) > uint64(len(c.buf)) {
		return nil, fmt.Errorf("%w: location %d/%d+%d out of range", errCorruptRecord,
			loc.chunk, loc.offset, loc.length)
	}
	rec := c.buf[loc.offset : loc.offset+loc.length]
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return nil, fmt.Errorf("%w: key framing at %d/%d", errCorruptRecord, loc.chunk, loc.offset)
	}
	rec = rec[uint64(n)+klen:]
	vlen, m := binary.Uvarint(rec)
	if m <= 0 || uint64(len(rec)-m) < vlen {
		return nil, fmt.Errorf("%w: value framing at %d/%d", errCorruptRecord, loc.chunk, loc.offset)
	}
	return append([]byte(nil), rec[uint64(m):uint64(m)+vlen]...), nil
}

// Has implements kv.Reader.
func (s *Store) Has(key []byte) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, kv.ErrClosed
	}
	_, ok := s.index[string(key)]
	return ok, nil
}

// Len returns the live key count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// RetiredChunks reports how many chunks were reclaimed whole.
func (s *Store) RetiredChunks() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retired
}

// LiveChunks reports the number of resident chunks.
func (s *Store) LiveChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// RegisterMetrics implements kv.MetricsRegistrar: the shared kv.Stats gauges
// plus chunk lifecycle counters (batched reclamation is this structure's
// whole point — watching retirement is watching it work).
func (s *Store) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	kv.RegisterStatsMetrics(r, s, labels...)
	r.GaugeFunc(obs.Name("ethkv_log_live_chunks", labels...), func() float64 {
		return float64(s.LiveChunks())
	})
	r.GaugeFunc(obs.Name("ethkv_log_retired_chunks", labels...), func() float64 {
		return float64(s.RetiredChunks())
	})
	r.GaugeFunc(obs.Name("ethkv_log_live_keys", labels...), func() float64 {
		return float64(s.Len())
	})
}

// NewIterator implements kv.Iterable in UNSPECIFIED order (this structure
// deliberately maintains no key order; see Finding 4).
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statsMu.Lock()
	s.stats.Scans++
	s.statsMu.Unlock()
	var keys []string
	var values [][]byte
	var deferred error
	for keyStr, loc := range s.index {
		if len(prefix) > 0 {
			key := []byte(keyStr)
			if len(key) < len(prefix) {
				continue
			}
			match := true
			for i, p := range prefix {
				if key[i] != p {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		v, err := s.readValue(loc)
		if err != nil {
			// Stop collecting: surface the corruption through Error()
			// rather than returning a silent subset.
			deferred = err
			break
		}
		keys = append(keys, keyStr)
		values = append(values, v)
	}
	return &logIterator{keys: keys, values: values, pos: -1, err: deferred}
}

type logIterator struct {
	keys   []string
	values [][]byte
	pos    int
	err    error
}

func (it *logIterator) Next() bool {
	if it.pos+1 >= len(it.keys) {
		return false
	}
	it.pos++
	return true
}

func (it *logIterator) Key() []byte {
	if it.pos < 0 {
		return nil
	}
	return []byte(it.keys[it.pos])
}

func (it *logIterator) Value() []byte {
	if it.pos < 0 {
		return nil
	}
	return it.values[it.pos]
}

func (it *logIterator) Release() {}

// Error surfaces a record-decode failure hit while the snapshot was built.
func (it *logIterator) Error() error { return it.err }

// NewBatch implements kv.Batcher.
func (s *Store) NewBatch() kv.Batch { return &batch{store: s} }

type batchOp struct {
	key, value []byte
	delete     bool
}

type batch struct {
	store *Store
	ops   []batchOp
	size  int
}

func (b *batch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *batch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *batch) ValueSize() int { return b.size }

func (b *batch) Write() error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = b.store.Delete(op.key)
		} else {
			err = b.store.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *batch) Reset() { b.ops, b.size = b.ops[:0], 0 }

func (b *batch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements kv.StatsProvider.
func (s *Store) Stats() kv.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Close shuts the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
