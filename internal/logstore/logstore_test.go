package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ethkv/internal/kv"
)

func TestBasicOps(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	s.Put([]byte("k"), []byte("v2"))
	if v, _ := s.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("overwrite: %q", v)
	}
	s.Delete([]byte("k"))
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted: %v", err)
	}
	if s.Stats().TombstonesLive != 0 {
		t.Fatal("log store must never hold tombstones")
	}
}

// TestBatchedChunkRetirement is the core design claim: deleting an old
// contiguous range reclaims whole chunks with zero copying.
func TestBatchedChunkRetirement(t *testing.T) {
	s := New()
	defer s.Close()
	n := chunkCapacity * 4
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("payload"))
	}
	if got := s.LiveChunks(); got < 4 {
		t.Fatalf("expected >=4 chunks, got %d", got)
	}
	// Lifecycle deletion: sweep the oldest half in insertion order.
	for i := 0; i < n/2; i++ {
		s.Delete([]byte(fmt.Sprintf("key-%08d", i)))
	}
	if s.RetiredChunks() < 1 {
		t.Fatal("no chunks retired after draining the oldest half")
	}
	// Physical write bytes must not grow from deletion (no tombstones, no GC copying).
	st := s.Stats()
	var wantWrite uint64
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%08d", i)
		wantWrite += uint64(len(key) + len("payload"))
	}
	if st.LogicalBytesWritten != wantWrite {
		t.Fatalf("LogicalBytesWritten = %d, want %d", st.LogicalBytesWritten, wantWrite)
	}
	// Survivors intact.
	for i := n / 2; i < n; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%08d", i))); err != nil {
			t.Fatalf("survivor %d lost: %v", i, err)
		}
	}
}

func TestModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := New()
	defer s.Close()
	model := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(250))
		if rng.Intn(4) == 0 {
			s.Delete([]byte(k))
			delete(model, k)
		} else {
			v := fmt.Sprintf("val-%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestIterator(t *testing.T) {
	s := New()
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.Put([]byte(fmt.Sprintf("a%02d", i)), []byte("v"))
	}
	s.Put([]byte("b0"), []byte("other"))
	it := s.NewIterator([]byte("a"), nil)
	defer it.Release()
	n := 0
	for it.Next() {
		if it.Key()[0] != 'a' {
			t.Fatalf("prefix escape: %q", it.Key())
		}
		n++
	}
	if n != 30 {
		t.Fatalf("saw %d keys, want 30", n)
	}
}

func TestBatch(t *testing.T) {
	s := New()
	defer s.Close()
	b := s.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k1"))
	b.Put([]byte("k2"), []byte("v2"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("k1")); ok {
		t.Fatal("k1 should be deleted")
	}
	if v, _ := s.Get([]byte("k2")); string(v) != "v2" {
		t.Fatal("k2 lost")
	}
	ms := kv.NewMemStore()
	if err := b.Replay(ms); err != nil {
		t.Fatal(err)
	}
	if v, _ := ms.Get([]byte("k2")); string(v) != "v2" {
		t.Fatal("replay lost k2")
	}
}

func TestClosed(t *testing.T) {
	s := New()
	s.Close()
	if err := s.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Put: %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Get: %v", err)
	}
}

func TestEmptyAndLargeValues(t *testing.T) {
	s := New()
	defer s.Close()
	s.Put([]byte("empty"), nil)
	if v, err := s.Get([]byte("empty")); err != nil || len(v) != 0 {
		t.Fatalf("empty: %q, %v", v, err)
	}
	big := bytes.Repeat([]byte{0x5a}, 1<<20)
	s.Put([]byte("big"), big)
	v, err := s.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value round-trip failed: %v", err)
	}
}

func BenchmarkPutDelete(b *testing.B) {
	s := New()
	defer s.Close()
	val := bytes.Repeat([]byte{1}, 40)
	key := make([]byte, 33)
	b.SetBytes(73)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		s.Put(key, val)
		if i > chunkCapacity {
			for j := 0; j < 8; j++ {
				key[j] = byte((i - chunkCapacity) >> (8 * j))
			}
			s.Delete(key)
		}
	}
}
