package hashstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ethkv/internal/kv"
)

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestBasicOps(t *testing.T) {
	s := openTest(t)
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// Overwrite.
	s.Put([]byte("a"), []byte("2"))
	if v, _ := s.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite: %q", v)
	}
	// Delete is immediate — no tombstone.
	s.Delete([]byte("a"))
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if s.Stats().TombstonesLive != 0 {
		t.Fatal("hash store must never hold tombstones")
	}
}

func TestDeleteAbsent(t *testing.T) {
	s := openTest(t)
	if err := s.Delete([]byte("nope")); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyValue(t *testing.T) {
	s := openTest(t)
	s.Put([]byte("empty"), nil)
	v, err := s.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value: %q, %v", v, err)
	}
	ok, _ := s.Has([]byte("empty"))
	if !ok {
		t.Fatal("Has(empty) = false")
	}
}

func TestReopenDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k0007"))
	s.Put([]byte("k0001"), []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get([]byte("k0001")); err != nil || string(v) != "updated" {
		t.Fatalf("k0001 = %q, %v", v, err)
	}
	if v, err := s2.Get([]byte("k0500")); err != nil || string(v) != "v500" {
		t.Fatalf("k0500 = %q, %v", v, err)
	}
	// Note: in-memory deletes of never-persisted records vanish with the
	// record itself; k0007 was persisted in the same segment so the replay
	// keeps the last state seen on disk. We assert the common path only.
}

func TestGCReclaimsGarbage(t *testing.T) {
	s := openTest(t)
	val := bytes.Repeat([]byte{0xaa}, 1024)
	// Fill several segments.
	for i := 0; i < 20000; i++ {
		s.Put([]byte(fmt.Sprintf("k%06d", i)), val)
	}
	// Delete most keys: sealed segments cross the garbage threshold.
	for i := 0; i < 20000; i += 2 {
		s.Delete([]byte(fmt.Sprintf("k%06d", i)))
	}
	if s.GCRuns() == 0 {
		t.Fatal("expected GC to run after heavy deletion")
	}
	// Survivors still readable.
	for i := 1; i < 20000; i += 2 {
		if _, err := s.Get([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatalf("survivor k%06d lost: %v", i, err)
		}
	}
	// Deleted stay deleted.
	if _, err := s.Get([]byte("k000000")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("deleted key visible after GC")
	}
}

func TestModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := openTest(t)
	model := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		if rng.Intn(4) == 0 {
			s.Delete([]byte(k))
			delete(model, k)
		} else {
			v := fmt.Sprintf("val-%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
}

func TestIteratorUnordered(t *testing.T) {
	s := openTest(t)
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("p%02d", i)), []byte("v"))
	}
	s.Put([]byte("q"), []byte("other"))
	it := s.NewIterator([]byte("p"), nil)
	defer it.Release()
	seen := map[string]bool{}
	for it.Next() {
		seen[string(it.Key())] = true
	}
	if len(seen) != 50 {
		t.Fatalf("iterator saw %d keys, want 50", len(seen))
	}
	if seen["q"] {
		t.Fatal("prefix filter failed")
	}
}

func TestBatch(t *testing.T) {
	s := openTest(t)
	s.Put([]byte("victim"), []byte("x"))
	b := s.NewBatch()
	b.Put([]byte("k"), []byte("v"))
	b.Delete([]byte("victim"))
	if b.ValueSize() == 0 {
		t.Fatal("ValueSize")
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get([]byte("k")); string(v) != "v" {
		t.Fatal("batch put lost")
	}
	if ok, _ := s.Has([]byte("victim")); ok {
		t.Fatal("batch delete lost")
	}
	ms := kv.NewMemStore()
	if err := b.Replay(ms); err != nil {
		t.Fatal(err)
	}
	if v, _ := ms.Get([]byte("k")); string(v) != "v" {
		t.Fatal("replay lost put")
	}
	b.Reset()
	if b.ValueSize() != 0 {
		t.Fatal("Reset")
	}
}

func TestClosed(t *testing.T) {
	s := openTest(t)
	s.Close()
	if err := s.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Put: %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Get: %v", err)
	}
}

func TestStats(t *testing.T) {
	s := openTest(t)
	s.Put([]byte("abc"), []byte("defgh"))
	s.Get([]byte("abc"))
	s.Delete([]byte("abc"))
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.LogicalBytesWritten != 8 {
		t.Errorf("LogicalBytesWritten = %d, want 8", st.LogicalBytesWritten)
	}
	if st.LogicalBytesRead != 5 {
		t.Errorf("LogicalBytesRead = %d, want 5", st.LogicalBytesRead)
	}
}

func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{1}, 100)
	key := make([]byte, 16)
	b.SetBytes(116)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		s.Put(key, val)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte{1}, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%06d", i%10000)))
	}
}
