// Package hashstore implements a hash-indexed key-value store with in-place
// deletion — one of the alternatives the paper's Finding 5 recommends for
// classes where scans never happen and deletes are frequent.
//
// Layout: values live in append-only segment files; an in-memory hash index
// maps each key to (segment, offset, length). Deletes remove the index entry
// immediately (no tombstone) and account garbage; when a segment's garbage
// ratio passes a threshold it is rewritten, reclaiming space without the
// global ordering work an LSM compaction performs.
package hashstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ethkv/internal/kv"
	"ethkv/internal/obs"
)

// record layout within a segment:
//
//	keyLen uvarint | key | valueLen uvarint | value

// segmentTargetBytes is the roll-over size for the active segment.
const segmentTargetBytes = 4 << 20

// gcGarbageRatio triggers segment rewrite once dead bytes exceed this share.
const gcGarbageRatio = 0.5

// errCorruptRecord marks a segment record whose framing does not decode. The
// index locates records by (segment, offset, length); damage inside that
// extent is only noticed when the record is actually read.
var errCorruptRecord = errors.New("hashstore: corrupt record")

// location addresses one live record.
type location struct {
	segment uint32
	offset  uint32
	length  uint32
}

// segment is one append-only value file held in memory with its backing
// file (the file is the durability story; reads come from memory).
type segment struct {
	id      uint32
	buf     []byte
	garbage int // dead bytes from deleted/overwritten records
}

// Store is the hash-based KV store. It implements kv.Store except ordered
// iteration, which it refuses by design (scans require order maintenance —
// exactly the cost this structure avoids). NewIterator returns entries in
// unspecified order.
type Store struct {
	mu     sync.RWMutex
	dir    string
	index  map[string]location
	segs   map[uint32]*segment
	active *segment
	nextID uint32
	closed bool
	// statsMu guards stats on paths that hold only mu.RLock (Get, scans):
	// concurrent readers must not race on the counters. Write paths hold
	// mu exclusively, which already excludes every RLock holder.
	statsMu sync.Mutex
	stats   kv.Stats
	gcRuns  uint64
}

var _ kv.Store = (*Store)(nil)
var _ kv.StatsProvider = (*Store)(nil)

// Open creates or reopens a hash store in dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		index: make(map[string]location),
		segs:  make(map[uint32]*segment),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if s.active == nil {
		s.rollSegment()
	}
	return s, nil
}

// load reads the segment files and rebuilds the index — preferably from
// the INDEX snapshot a clean Close leaves behind (which is what makes
// deletes durable: records carry no tombstones, so replaying raw segments
// would resurrect deleted keys). A missing, stale, or inconsistent
// snapshot falls back to record replay, the store's pre-snapshot behavior.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.dat"))
	if err != nil {
		return err
	}
	for _, name := range names {
		var id uint32
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.dat", &id); err != nil {
			continue
		}
		buf, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		seg := &segment{id: id, buf: buf}
		s.segs[id] = seg
		if id >= s.nextID {
			s.nextID = id + 1
			s.active = seg
		}
	}
	if s.loadIndexSnapshot() {
		return nil
	}
	// Replay records in segment order, newest last so later records win.
	// Deletes made after the last snapshot are lost here — this store is
	// durable across clean shutdown, not crash-safe.
	ids := make([]uint32, 0, len(s.segs))
	for id := range s.segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		buf := s.segs[id].buf
		off := 0
		for off < len(buf) {
			rec := buf[off:]
			klen, n := binary.Uvarint(rec)
			if n <= 0 {
				break
			}
			rec = rec[n:]
			if uint64(len(rec)) < klen {
				break
			}
			key := rec[:klen]
			rec = rec[klen:]
			vlen, m := binary.Uvarint(rec)
			if m <= 0 || uint64(len(rec)-m) < vlen {
				break
			}
			total := n + int(klen) + m + int(vlen)
			if old, ok := s.index[string(key)]; ok {
				s.segs[old.segment].garbage += int(old.length)
			}
			s.index[string(key)] = location{segment: id, offset: uint32(off), length: uint32(total)}
			off += total
		}
	}
	return nil
}

// indexPath names the index snapshot a clean Close writes.
func (s *Store) indexPath() string { return filepath.Join(s.dir, "INDEX") }

// loadIndexSnapshot restores the index from the Close-time catalog. It
// reports false — demanding a replay fallback — on any inconsistency:
// missing file, unknown version, a segment newer than the snapshot (a
// crash happened after the last clean close), or a location outside its
// segment's bounds.
func (s *Store) loadIndexSnapshot() bool {
	raw, err := os.ReadFile(s.indexPath())
	if err != nil {
		return false
	}
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, false
		}
		raw = raw[n:]
		return v, true
	}
	version, ok := get()
	if !ok || version != 1 {
		return false
	}
	snapNext, ok := get()
	if !ok {
		return false
	}
	for id := range s.segs {
		if uint64(id) >= snapNext {
			return false // segment written after the snapshot: stale
		}
	}
	count, ok := get()
	if !ok {
		return false
	}
	idx := make(map[string]location, count)
	for i := uint64(0); i < count; i++ {
		klen, ok := get()
		if !ok || uint64(len(raw)) < klen {
			return false
		}
		key := string(raw[:klen])
		raw = raw[klen:]
		segID, ok1 := get()
		off, ok2 := get()
		length, ok3 := get()
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		seg, exists := s.segs[uint32(segID)]
		if !exists || off+length > uint64(len(seg.buf)) {
			return false
		}
		idx[key] = location{segment: uint32(segID), offset: uint32(off), length: uint32(length)}
	}
	s.index = idx
	// Everything not referenced by the snapshot is garbage.
	live := make(map[uint32]int)
	for _, loc := range idx {
		live[loc.segment] += int(loc.length)
	}
	for id, seg := range s.segs {
		seg.garbage = len(seg.buf) - live[id]
	}
	if snapNext > uint64(s.nextID) {
		s.nextID = uint32(snapNext)
	}
	return true
}

// persistIndex writes the key→location catalog atomically. This snapshot
// is the durability story for deletes: the record log never learns about
// them.
func (s *Store) persistIndex() error {
	var buf []byte
	buf = binary.AppendUvarint(buf, 1) // version
	buf = binary.AppendUvarint(buf, uint64(s.nextID))
	buf = binary.AppendUvarint(buf, uint64(len(s.index)))
	for keyStr, loc := range s.index {
		buf = binary.AppendUvarint(buf, uint64(len(keyStr)))
		buf = append(buf, keyStr...)
		buf = binary.AppendUvarint(buf, uint64(loc.segment))
		buf = binary.AppendUvarint(buf, uint64(loc.offset))
		buf = binary.AppendUvarint(buf, uint64(loc.length))
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.indexPath())
}

// rollSegment starts a fresh active segment.
func (s *Store) rollSegment() {
	seg := &segment{id: s.nextID}
	s.nextID++
	s.segs[seg.id] = seg
	s.active = seg
}

// segPath names a segment file.
func (s *Store) segPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.dat", id))
}

// Put implements kv.Writer.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	var rec []byte
	rec = binary.AppendUvarint(rec, uint64(len(key)))
	rec = append(rec, key...)
	rec = binary.AppendUvarint(rec, uint64(len(value)))
	rec = append(rec, value...)

	if old, ok := s.index[string(key)]; ok {
		s.segs[old.segment].garbage += int(old.length)
	}
	off := len(s.active.buf)
	s.active.buf = append(s.active.buf, rec...)
	s.index[string(key)] = location{segment: s.active.id, offset: uint32(off), length: uint32(len(rec))}

	s.stats.Puts++
	s.stats.LogicalBytesWritten += uint64(len(key) + len(value))
	s.stats.PhysicalBytesWrite += uint64(len(rec))
	if len(s.active.buf) >= segmentTargetBytes {
		if err := s.persistSegment(s.active); err != nil {
			return err
		}
		s.rollSegment()
	}
	return s.maybeGC()
}

// Delete implements kv.Writer: the index entry vanishes immediately and the
// record bytes become garbage — no tombstone is ever written.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.stats.Deletes++
	loc, ok := s.index[string(key)]
	if !ok {
		return nil
	}
	delete(s.index, string(key))
	s.segs[loc.segment].garbage += int(loc.length)
	return s.maybeGC()
}

// Get implements kv.Reader: a single index probe and one record read.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	s.statsMu.Lock()
	s.stats.Gets++
	s.statsMu.Unlock()
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	value, err := s.readValue(loc)
	if err != nil {
		return nil, err
	}
	s.statsMu.Lock()
	s.stats.LogicalBytesRead += uint64(len(value))
	s.stats.PhysicalBytesRead += uint64(loc.length)
	s.statsMu.Unlock()
	return value, nil
}

// readValue decodes the value portion of the record at loc. Every access is
// bounds-checked against the segment: a record whose interior was damaged
// surfaces errCorruptRecord instead of panicking or returning garbage of the
// wrong extent.
func (s *Store) readValue(loc location) ([]byte, error) {
	seg, ok := s.segs[loc.segment]
	if !ok || uint64(loc.offset)+uint64(loc.length) > uint64(len(seg.buf)) {
		return nil, fmt.Errorf("%w: location %d/%d+%d out of range", errCorruptRecord,
			loc.segment, loc.offset, loc.length)
	}
	rec := seg.buf[loc.offset : loc.offset+loc.length]
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return nil, fmt.Errorf("%w: key framing at %d/%d", errCorruptRecord, loc.segment, loc.offset)
	}
	rec = rec[uint64(n)+klen:]
	vlen, m := binary.Uvarint(rec)
	if m <= 0 || uint64(len(rec)-m) < vlen {
		return nil, fmt.Errorf("%w: value framing at %d/%d", errCorruptRecord, loc.segment, loc.offset)
	}
	return append([]byte(nil), rec[uint64(m):uint64(m)+vlen]...), nil
}

// Has implements kv.Reader.
func (s *Store) Has(key []byte) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, kv.ErrClosed
	}
	_, ok := s.index[string(key)]
	return ok, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// maybeGC rewrites sealed segments whose garbage share exceeds the
// threshold. Called with s.mu held.
func (s *Store) maybeGC() error {
	for id, seg := range s.segs {
		if seg == s.active || len(seg.buf) == 0 {
			continue
		}
		if float64(seg.garbage)/float64(len(seg.buf)) < gcGarbageRatio {
			continue
		}
		if err := s.rewriteSegment(id, seg); err != nil {
			return err
		}
	}
	return nil
}

// rewriteSegment copies the live records of seg into the active segment and
// drops the old file. Only records in this one segment move — this is the
// "limited GC range" property §V calls out.
func (s *Store) rewriteSegment(id uint32, seg *segment) error {
	for keyStr, loc := range s.index {
		if loc.segment != id {
			continue
		}
		rec := seg.buf[loc.offset : loc.offset+loc.length]
		off := len(s.active.buf)
		s.active.buf = append(s.active.buf, rec...)
		s.index[keyStr] = location{segment: s.active.id, offset: uint32(off), length: loc.length}
		s.stats.PhysicalBytesWrite += uint64(len(rec))
		s.stats.PhysicalBytesRead += uint64(len(rec))
	}
	delete(s.segs, id)
	s.gcRuns++
	if err := os.Remove(s.segPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if len(s.active.buf) >= segmentTargetBytes {
		if err := s.persistSegment(s.active); err != nil {
			return err
		}
		s.rollSegment()
	}
	return nil
}

// persistSegment writes a sealed segment to disk.
func (s *Store) persistSegment(seg *segment) error {
	return os.WriteFile(s.segPath(seg.id), seg.buf, 0o644)
}

// GCRuns reports how many segment rewrites have occurred.
func (s *Store) GCRuns() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gcRuns
}

// RegisterMetrics implements kv.MetricsRegistrar: the shared kv.Stats gauges
// plus this structure's own shape — segment count, live keys, GC activity.
func (s *Store) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	kv.RegisterStatsMetrics(r, s, labels...)
	r.GaugeFunc(obs.Name("ethkv_hash_segments", labels...), func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.segs))
	})
	r.GaugeFunc(obs.Name("ethkv_hash_live_keys", labels...), func() float64 {
		return float64(s.Len())
	})
	r.GaugeFunc(obs.Name("ethkv_hash_gc_runs", labels...), func() float64 {
		return float64(s.GCRuns())
	})
}

// NewIterator implements kv.Iterable. Order is UNSPECIFIED (hash order):
// this structure intentionally does not maintain key order. Callers that
// need ordered scans must use an ordered store.
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statsMu.Lock()
	s.stats.Scans++
	s.statsMu.Unlock()
	var keys []string
	var values [][]byte
	var deferred error
	for keyStr, loc := range s.index {
		key := []byte(keyStr)
		if len(prefix) > 0 && !hasPrefix(key, prefix) {
			continue
		}
		v, err := s.readValue(loc)
		if err != nil {
			// Stop collecting: the iterator yields what decoded cleanly and
			// reports the corruption through Error(), never a silent subset.
			deferred = err
			break
		}
		keys = append(keys, keyStr)
		values = append(values, v)
	}
	return &unorderedIterator{keys: keys, values: values, pos: -1, err: deferred}
}

func hasPrefix(b, prefix []byte) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i, p := range prefix {
		if b[i] != p {
			return false
		}
	}
	return true
}

type unorderedIterator struct {
	keys   []string
	values [][]byte
	pos    int
	err    error
}

func (it *unorderedIterator) Next() bool {
	if it.pos+1 >= len(it.keys) {
		return false
	}
	it.pos++
	return true
}

func (it *unorderedIterator) Key() []byte {
	if it.pos < 0 {
		return nil
	}
	return []byte(it.keys[it.pos])
}

func (it *unorderedIterator) Value() []byte {
	if it.pos < 0 {
		return nil
	}
	return it.values[it.pos]
}

func (it *unorderedIterator) Release() {}

// Error surfaces a record-decode failure hit while the snapshot was built; a
// scan that stopped early because of corruption must not look like a
// complete result.
func (it *unorderedIterator) Error() error { return it.err }

// NewBatch implements kv.Batcher.
func (s *Store) NewBatch() kv.Batch { return &batch{store: s} }

type batchOp struct {
	key, value []byte
	delete     bool
}

type batch struct {
	store *Store
	ops   []batchOp
	size  int
}

func (b *batch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *batch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *batch) ValueSize() int { return b.size }

func (b *batch) Write() error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = b.store.Delete(op.key)
		} else {
			err = b.store.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *batch) Reset() { b.ops, b.size = b.ops[:0], 0 }

func (b *batch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements kv.StatsProvider.
func (s *Store) Stats() kv.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Close seals the active segment and the index snapshot to disk and shuts
// the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.active.buf) > 0 {
		if err := s.persistSegment(s.active); err != nil {
			return err
		}
	}
	return s.persistIndex()
}
