package rlp

import (
	"bytes"
	"errors"
	"testing"
)

// TestAdversarialLengthOverflow covers 8-byte lengths that would wrap
// uintptr arithmetic (regression: head+n overflow).
func TestAdversarialLengthOverflow(t *testing.T) {
	for _, in := range [][]byte{
		append([]byte{0xbf}, bytes.Repeat([]byte{0xff}, 8)...), // string, len 2^64-1
		append([]byte{0xff}, bytes.Repeat([]byte{0xff}, 8)...), // list, len 2^64-1
	} {
		if _, err := DecodeString(in); err == nil {
			t.Errorf("decode of %x should fail", in)
		}
		if _, err := SplitList(in); !errors.Is(err, ErrUnexpectedEOF) && err == nil {
			t.Errorf("SplitList of %x should fail", in)
		}
	}
}
