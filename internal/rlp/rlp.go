// Package rlp implements Ethereum's Recursive Length Prefix serialization.
//
// RLP encodes two kinds of items: byte strings and lists of items. The
// package exposes an explicit, reflection-free API: callers build encodings
// with AppendString/AppendUint/EncodeList and take them apart with the
// streaming Decoder. This mirrors how Geth's hot paths (trie nodes, headers)
// hand-roll their RLP to avoid reflection costs.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

// Encoding constants per the Ethereum Yellow Paper, Appendix B.
const (
	singleByteMax  = 0x7f // values below this encode as themselves
	shortStringTag = 0x80 // 0x80 + len for strings of 0-55 bytes
	longStringTag  = 0xb7 // 0xb7 + len-of-len for longer strings
	shortListTag   = 0xc0 // 0xc0 + len for list payloads of 0-55 bytes
	longListTag    = 0xf7 // 0xf7 + len-of-len for longer payloads
	maxShortLen    = 55
)

// Common decoding errors.
var (
	ErrUnexpectedEOF = errors.New("rlp: unexpected end of input")
	ErrNotString     = errors.New("rlp: item is a list, expected string")
	ErrNotList       = errors.New("rlp: item is a string, expected list")
	ErrCanonical     = errors.New("rlp: non-canonical encoding")
	ErrTrailing      = errors.New("rlp: trailing bytes after item")
	ErrUintOverflow  = errors.New("rlp: uint overflow")
)

// AppendString appends the RLP encoding of the byte string s to dst.
func AppendString(dst, s []byte) []byte {
	switch {
	case len(s) == 1 && s[0] <= singleByteMax:
		return append(dst, s[0])
	case len(s) <= maxShortLen:
		dst = append(dst, shortStringTag+byte(len(s)))
		return append(dst, s...)
	default:
		dst = appendLongLength(dst, longStringTag, uint64(len(s)))
		return append(dst, s...)
	}
}

// AppendUint appends the RLP encoding of v (big-endian, no leading zeros).
func AppendUint(dst []byte, v uint64) []byte {
	switch {
	case v == 0:
		return append(dst, shortStringTag) // empty string
	case v <= singleByteMax:
		return append(dst, byte(v))
	default:
		var buf [8]byte
		n := putUintBE(buf[:], v)
		return AppendString(dst, buf[8-n:])
	}
}

// AppendBig appends the RLP encoding of a non-negative big integer.
// A nil value encodes like zero.
func AppendBig(dst []byte, v *big.Int) []byte {
	if v == nil || v.Sign() == 0 {
		return append(dst, shortStringTag)
	}
	return AppendString(dst, v.Bytes())
}

// AppendList appends a list header for a payload of the given length,
// followed by the payload itself. The payload must already be a
// concatenation of valid RLP items.
func AppendList(dst, payload []byte) []byte {
	if len(payload) <= maxShortLen {
		dst = append(dst, shortListTag+byte(len(payload)))
	} else {
		dst = appendLongLength(dst, longListTag, uint64(len(payload)))
	}
	return append(dst, payload...)
}

// EncodeList encodes the given pre-encoded items as a list.
func EncodeList(items ...[]byte) []byte {
	total := 0
	for _, it := range items {
		total += len(it)
	}
	payload := make([]byte, 0, total)
	for _, it := range items {
		payload = append(payload, it...)
	}
	return AppendList(nil, payload)
}

// EncodeString returns the RLP encoding of the byte string s.
func EncodeString(s []byte) []byte { return AppendString(nil, s) }

// EncodeUint returns the RLP encoding of v.
func EncodeUint(v uint64) []byte { return AppendUint(nil, v) }

// appendLongLength writes tag+lenOfLen followed by the big-endian length.
func appendLongLength(dst []byte, tag byte, length uint64) []byte {
	var buf [8]byte
	n := putUintBE(buf[:], length)
	dst = append(dst, tag+byte(n))
	return append(dst, buf[8-n:]...)
}

// putUintBE writes v big-endian into the tail of an 8-byte buffer and
// returns the number of significant bytes.
func putUintBE(buf []byte, v uint64) int {
	n := 0
	for x := v; x > 0; x >>= 8 {
		n++
	}
	for i := 0; i < n; i++ {
		buf[7-i] = byte(v >> (8 * i))
	}
	return n
}

// Kind identifies the type of an RLP item.
type Kind int

// The two RLP item kinds.
const (
	KindString Kind = iota
	KindList
)

func (k Kind) String() string {
	if k == KindString {
		return "string"
	}
	return "list"
}

// item describes one decoded item header.
type item struct {
	kind    Kind
	payload []byte // content bytes (string data or list payload)
	size    int    // total encoded size including header
}

// decodeItem parses the item starting at in[0].
func decodeItem(in []byte) (item, error) {
	if len(in) == 0 {
		return item{}, ErrUnexpectedEOF
	}
	b := in[0]
	switch {
	case b <= singleByteMax:
		return item{kind: KindString, payload: in[0:1], size: 1}, nil

	case b <= longStringTag: // short string
		n := int(b - shortStringTag)
		if len(in) < 1+n {
			return item{}, ErrUnexpectedEOF
		}
		if n == 1 && in[1] <= singleByteMax {
			return item{}, fmt.Errorf("%w: single byte below 0x80 must be self-encoded", ErrCanonical)
		}
		return item{kind: KindString, payload: in[1 : 1+n], size: 1 + n}, nil

	case b < shortListTag: // long string
		lenOfLen := int(b - longStringTag)
		n, err := readLength(in[1:], lenOfLen)
		if err != nil {
			return item{}, err
		}
		if n <= maxShortLen {
			return item{}, fmt.Errorf("%w: long form used for short string", ErrCanonical)
		}
		head := 1 + lenOfLen
		// Compare against the remaining bytes (subtraction side avoids
		// overflow for adversarial 8-byte lengths).
		if n > uint64(len(in)-head) {
			return item{}, ErrUnexpectedEOF
		}
		return item{kind: KindString, payload: in[head : uint64(head)+n], size: head + int(n)}, nil

	case b <= longListTag: // short list
		n := int(b - shortListTag)
		if len(in) < 1+n {
			return item{}, ErrUnexpectedEOF
		}
		return item{kind: KindList, payload: in[1 : 1+n], size: 1 + n}, nil

	default: // long list
		lenOfLen := int(b - longListTag)
		n, err := readLength(in[1:], lenOfLen)
		if err != nil {
			return item{}, err
		}
		if n <= maxShortLen {
			return item{}, fmt.Errorf("%w: long form used for short list", ErrCanonical)
		}
		head := 1 + lenOfLen
		if n > uint64(len(in)-head) {
			return item{}, ErrUnexpectedEOF
		}
		return item{kind: KindList, payload: in[head : uint64(head)+n], size: head + int(n)}, nil
	}
}

// readLength reads an n-byte big-endian length and validates canonicality.
func readLength(in []byte, n int) (uint64, error) {
	if len(in) < n {
		return 0, ErrUnexpectedEOF
	}
	if n == 0 || n > 8 {
		return 0, fmt.Errorf("%w: length-of-length %d", ErrCanonical, n)
	}
	if in[0] == 0 {
		return 0, fmt.Errorf("%w: leading zero in length", ErrCanonical)
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(in[i])
	}
	return v, nil
}

// Decoder walks a sequence of RLP items within a buffer.
type Decoder struct {
	rest []byte
}

// NewDecoder returns a Decoder over the given encoded bytes.
func NewDecoder(data []byte) *Decoder { return &Decoder{rest: data} }

// More reports whether undecoded items remain.
func (d *Decoder) More() bool { return len(d.rest) > 0 }

// Kind peeks at the kind of the next item without consuming it.
func (d *Decoder) Kind() (Kind, error) {
	it, err := decodeItem(d.rest)
	if err != nil {
		return 0, err
	}
	return it.kind, nil
}

// Bytes decodes the next item as a byte string.
func (d *Decoder) Bytes() ([]byte, error) {
	it, err := decodeItem(d.rest)
	if err != nil {
		return nil, err
	}
	if it.kind != KindString {
		return nil, ErrNotString
	}
	d.rest = d.rest[it.size:]
	return it.payload, nil
}

// Uint decodes the next item as a canonical unsigned integer.
func (d *Decoder) Uint() (uint64, error) {
	s, err := d.Bytes()
	if err != nil {
		return 0, err
	}
	if len(s) > 8 {
		return 0, ErrUintOverflow
	}
	if len(s) > 0 && s[0] == 0 {
		return 0, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	var v uint64
	for _, b := range s {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// Big decodes the next item as a non-negative big integer.
func (d *Decoder) Big() (*big.Int, error) {
	s, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if len(s) > 0 && s[0] == 0 {
		return nil, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	return new(big.Int).SetBytes(s), nil
}

// List decodes the next item as a list and returns a Decoder over its
// payload items.
func (d *Decoder) List() (*Decoder, error) {
	it, err := decodeItem(d.rest)
	if err != nil {
		return nil, err
	}
	if it.kind != KindList {
		return nil, ErrNotList
	}
	d.rest = d.rest[it.size:]
	return &Decoder{rest: it.payload}, nil
}

// Raw consumes the next item and returns its full encoding (header+payload).
func (d *Decoder) Raw() ([]byte, error) {
	it, err := decodeItem(d.rest)
	if err != nil {
		return nil, err
	}
	raw := d.rest[:it.size]
	d.rest = d.rest[it.size:]
	return raw, nil
}

// End verifies that no items remain.
func (d *Decoder) End() error {
	if len(d.rest) != 0 {
		return ErrTrailing
	}
	return nil
}

// SplitList decodes data as a single list and returns its item payloads as
// raw encodings. It errors on trailing bytes.
func SplitList(data []byte) ([][]byte, error) {
	d := NewDecoder(data)
	inner, err := d.List()
	if err != nil {
		return nil, err
	}
	if err := d.End(); err != nil {
		return nil, err
	}
	var items [][]byte
	for inner.More() {
		raw, err := inner.Raw()
		if err != nil {
			return nil, err
		}
		items = append(items, raw)
	}
	return items, nil
}

// DecodeString decodes data as a single byte string item.
func DecodeString(data []byte) ([]byte, error) {
	d := NewDecoder(data)
	s, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.End(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeUint decodes data as a single unsigned integer item.
func DecodeUint(data []byte) (uint64, error) {
	d := NewDecoder(data)
	v, err := d.Uint()
	if err != nil {
		return 0, err
	}
	if err := d.End(); err != nil {
		return 0, err
	}
	return v, nil
}
