package rlp

import (
	"bytes"
	"testing"
)

// FuzzDecodeString: the decoder must never panic and must round-trip
// whatever it accepts.
func FuzzDecodeString(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0x83, 'd', 'o', 'g'})
	f.Add(EncodeString(bytes.Repeat([]byte{0xaa}, 100)))
	f.Add([]byte{0xbf, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeString(data)
		if err != nil {
			return
		}
		// Accepted inputs must re-encode to the same bytes (canonicality).
		if !bytes.Equal(EncodeString(s), data) {
			t.Fatalf("non-canonical encoding accepted: %x", data)
		}
	})
}

// FuzzSplitList: list traversal must terminate without panicking.
func FuzzSplitList(f *testing.F) {
	f.Add([]byte{0xc0})
	f.Add(EncodeList(EncodeUint(7), EncodeString([]byte("x"))))
	f.Add([]byte{0xf8, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := SplitList(data)
		if err != nil {
			return
		}
		// Accepted lists must re-assemble to the same bytes.
		var payload []byte
		for _, item := range items {
			payload = append(payload, item...)
		}
		if !bytes.Equal(AppendList(nil, payload), data) {
			t.Fatalf("list did not round-trip: %x", data)
		}
	})
}
