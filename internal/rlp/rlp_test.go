package rlp

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// Classic RLP test vectors from the Ethereum wiki / yellow paper appendix.
func TestEncodeKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		got  []byte
		want []byte
	}{
		{"empty string", EncodeString(nil), []byte{0x80}},
		{"single low byte", EncodeString([]byte{0x0f}), []byte{0x0f}},
		{"byte 0x00", EncodeString([]byte{0x00}), []byte{0x00}},
		{"byte 0x80", EncodeString([]byte{0x80}), []byte{0x81, 0x80}},
		{"dog", EncodeString([]byte("dog")), []byte{0x83, 'd', 'o', 'g'}},
		{"55-byte string", EncodeString(bytes.Repeat([]byte{'a'}, 55)),
			append([]byte{0xb7}, bytes.Repeat([]byte{'a'}, 55)...)},
		{"56-byte string", EncodeString(bytes.Repeat([]byte{'a'}, 56)),
			append([]byte{0xb8, 56}, bytes.Repeat([]byte{'a'}, 56)...)},
		{"uint 0", EncodeUint(0), []byte{0x80}},
		{"uint 15", EncodeUint(15), []byte{0x0f}},
		{"uint 1024", EncodeUint(1024), []byte{0x82, 0x04, 0x00}},
		{"empty list", EncodeList(), []byte{0xc0}},
		{"cat-dog list", EncodeList(EncodeString([]byte("cat")), EncodeString([]byte("dog"))),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}},
	}
	for _, tc := range tests {
		if !bytes.Equal(tc.got, tc.want) {
			t.Errorf("%s: got %x, want %x", tc.name, tc.got, tc.want)
		}
	}
}

func TestNestedListVector(t *testing.T) {
	// [ [], [[]], [ [], [[]] ] ] — the canonical "set theoretic" vector.
	empty := EncodeList()
	one := EncodeList(empty)
	two := EncodeList(empty, one)
	got := EncodeList(empty, one, two)
	want := []byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}
	if !bytes.Equal(got, want) {
		t.Fatalf("nested list: got %x, want %x", got, want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		dec, err := DecodeString(EncodeString(s))
		return err == nil && bytes.Equal(dec, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		dec, err := DecodeUint(EncodeUint(v))
		return err == nil && dec == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Edge values.
	for _, v := range []uint64{0, 1, 0x7f, 0x80, 0xff, 0x100, 1<<56 - 1, 1 << 63, ^uint64(0)} {
		dec, err := DecodeUint(EncodeUint(v))
		if err != nil || dec != v {
			t.Errorf("uint %d round-trip failed: got %d, err %v", v, dec, err)
		}
	}
}

func TestBigRoundTrip(t *testing.T) {
	values := []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(127),
		big.NewInt(128),
		new(big.Int).Lsh(big.NewInt(1), 255),
	}
	for _, v := range values {
		enc := AppendBig(nil, v)
		d := NewDecoder(enc)
		dec, err := d.Big()
		if err != nil {
			t.Fatalf("Big decode of %v: %v", v, err)
		}
		want := v
		if want == nil {
			want = big.NewInt(0)
		}
		if dec.Cmp(want) != 0 {
			t.Errorf("big %v round-trip: got %v", v, dec)
		}
	}
}

func TestListRoundTrip(t *testing.T) {
	f := func(a, b []byte, v uint64) bool {
		enc := EncodeList(EncodeString(a), EncodeUint(v), EncodeString(b))
		inner, err := NewDecoder(enc).List()
		if err != nil {
			return false
		}
		da, err1 := inner.Bytes()
		dv, err2 := inner.Uint()
		db, err3 := inner.Bytes()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return bytes.Equal(da, a) && dv == v && bytes.Equal(db, b) && inner.End() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitList(t *testing.T) {
	enc := EncodeList(EncodeString([]byte("cat")), EncodeString([]byte("dog")))
	items, err := SplitList(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("want 2 items, got %d", len(items))
	}
	if s, _ := DecodeString(items[0]); string(s) != "cat" {
		t.Errorf("first item = %q", s)
	}
	if s, _ := DecodeString(items[1]); string(s) != "dog" {
		t.Errorf("second item = %q", s)
	}
}

func TestLargePayloads(t *testing.T) {
	// Payload requiring 2-byte length.
	big := bytes.Repeat([]byte{0xcd}, 70000)
	dec, err := DecodeString(EncodeString(big))
	if err != nil || !bytes.Equal(dec, big) {
		t.Fatalf("70000-byte string round-trip failed: %v", err)
	}
	// Long list.
	items := make([][]byte, 100)
	for i := range items {
		items[i] = EncodeString(bytes.Repeat([]byte{byte(i)}, 10))
	}
	enc := EncodeList(items...)
	got, err := SplitList(enc)
	if err != nil || len(got) != 100 {
		t.Fatalf("long list round-trip: %d items, err %v", len(got), err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty input", nil, ErrUnexpectedEOF},
		{"truncated string", []byte{0x83, 'd', 'o'}, ErrUnexpectedEOF},
		{"truncated long string", []byte{0xb8, 56, 'x'}, ErrUnexpectedEOF},
		{"truncated list", []byte{0xc8, 0x83}, ErrUnexpectedEOF},
		{"non-canonical single byte", []byte{0x81, 0x05}, ErrCanonical},
		{"non-canonical long form", append([]byte{0xb8, 10}, bytes.Repeat([]byte{'x'}, 10)...), ErrCanonical},
		{"leading zero length", []byte{0xb9, 0x00, 0x40}, ErrCanonical},
	}
	for _, tc := range tests {
		_, err := DecodeString(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeTrailing(t *testing.T) {
	in := append(EncodeString([]byte("dog")), 0x01)
	if _, err := DecodeString(in); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
}

func TestKindMismatch(t *testing.T) {
	if _, err := NewDecoder(EncodeList()).Bytes(); !errors.Is(err, ErrNotString) {
		t.Errorf("Bytes on list: %v", err)
	}
	if _, err := NewDecoder(EncodeString([]byte("x"))).List(); !errors.Is(err, ErrNotList) {
		t.Errorf("List on string: %v", err)
	}
}

func TestUintLeadingZeroRejected(t *testing.T) {
	// 0x82 0x00 0x01 is a 2-byte string with a leading zero: invalid integer.
	if _, err := DecodeUint([]byte{0x82, 0x00, 0x01}); !errors.Is(err, ErrCanonical) {
		t.Fatalf("want ErrCanonical, got %v", err)
	}
}

func TestUintOverflow(t *testing.T) {
	in := EncodeString(bytes.Repeat([]byte{0xff}, 9))
	if _, err := DecodeUint(in); !errors.Is(err, ErrUintOverflow) {
		t.Fatalf("want ErrUintOverflow, got %v", err)
	}
}

func TestKindPeek(t *testing.T) {
	d := NewDecoder(EncodeList())
	k, err := d.Kind()
	if err != nil || k != KindList {
		t.Fatalf("Kind = %v, %v", k, err)
	}
	// Peeking must not consume.
	if _, err := d.List(); err != nil {
		t.Fatal("Kind consumed the item")
	}
	if KindString.String() != "string" || KindList.String() != "list" {
		t.Error("Kind.String mismatch")
	}
}

// TestDecodeArbitraryNoPanics feeds random bytes; the decoder must return
// errors, never panic or loop.
func TestDecodeArbitraryNoPanics(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		for d.More() {
			if _, err := d.Raw(); err != nil {
				return true // error is fine
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeString256(b *testing.B) {
	data := bytes.Repeat([]byte{0xab}, 256)
	buf := make([]byte, 0, 300)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		buf = AppendString(buf[:0], data)
	}
}

func BenchmarkDecodeList(b *testing.B) {
	enc := EncodeList(EncodeUint(12345), EncodeString(bytes.Repeat([]byte{1}, 64)), EncodeUint(99))
	for i := 0; i < b.N; i++ {
		inner, _ := NewDecoder(enc).List()
		inner.Uint()
		inner.Bytes()
		inner.Uint()
	}
}
