package backends

import (
	"testing"

	"ethkv/internal/kv"
	"ethkv/internal/kv/kvtest"
	"ethkv/internal/policy"
	"ethkv/internal/rawdb"
)

// TestHybridConformance runs the contract suite against the factory's
// hybrid kind — including ReopenPersistence, the check that would have
// caught the in-memory log route (log-routed classes vanishing on
// reopen).
func TestHybridConformance(t *testing.T) {
	var lastDir string
	kvtest.Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s, err := Open("hybrid", lastDir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}, kvtest.Options{
		// Conformance scan prefixes either stay on the ordered default
		// route or merge in ordered/empty children, so order holds.
		OrderedScans: true,
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open("hybrid", lastDir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			return re
		},
	})
}

// testPolicy is a derived-shaped policy with every route on an ordered,
// durable kind, exercising policy instantiation end to end.
func testPolicy() *policy.Policy {
	return &policy.Policy{
		Default: "ordered",
		Routes: map[string]policy.Spec{
			"ordered": {Kind: "lsm"},
			"lsm-compact": {Kind: "lsm", Options: map[string]int64{
				"memtable_kb": 64, "l0_compaction_trigger": 2, "level_base_kb": 256,
			}},
			"flat": {Kind: "flat"},
		},
		Classes: map[string]string{
			"TxLookup":      "lsm-compact",
			"BlockBody":     "flat",
			"BlockReceipts": "flat",
			"Code":          "flat",
		},
	}
}

func TestPolicyHybridConformance(t *testing.T) {
	var lastDir string
	open := func(t *testing.T, dir string) kv.Store {
		s, err := Open("hybrid", dir, Options{Policy: testPolicy()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	kvtest.Run(t, func(t *testing.T) kv.Store {
		lastDir = t.TempDir()
		s := open(t, lastDir)
		t.Cleanup(func() { s.Close() })
		return s
	}, kvtest.Options{
		OrderedScans: true, // every route kind here scans in order
		Reopen: func(t *testing.T, s kv.Store) kv.Store {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			return open(t, lastDir)
		},
	})
}

// TestHybridClassKeysSurviveReopen is the targeted regression for the
// durability bug: log-routed classes (TxLookup, BlockBody, BlockReceipts)
// must survive a close/reopen cycle of the factory's hybrid kind, exactly
// like ordered- and hash-routed classes.
func TestHybridClassKeysSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("hybrid", dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var h rawdb.Hash
	h[0] = 7
	keys := map[string][]byte{
		"TxLookup (log route)":      rawdb.TxLookupKey(h),
		"BlockBody (log route)":     rawdb.BlockBodyKey(1, h),
		"BlockReceipts (log route)": rawdb.BlockReceiptsKey(1, h),
		"Code (hash route)":         rawdb.CodeKey(h),
		"TrieNodeAccount (hash)":    rawdb.AccountTrieNodeKey([]byte{1, 2}),
		"SnapshotAccount (ordered)": rawdb.SnapshotAccountKey(h),
		"LastHeader (singleton)":    rawdb.LastHeaderKey(),
	}
	for name, key := range keys {
		if err := s.Put(key, []byte(name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("hybrid", dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for name, key := range keys {
		v, err := re.Get(key)
		if err != nil {
			t.Errorf("%s vanished on reopen: %v", name, err)
			continue
		}
		if string(v) != name {
			t.Errorf("%s corrupted on reopen: %q", name, v)
		}
	}
}

func TestPolicyUnknownOptionRejected(t *testing.T) {
	p := &policy.Policy{
		Default: "o",
		Routes: map[string]policy.Spec{
			"o": {Kind: "lsm", Options: map[string]int64{"memtable_gb": 1}},
		},
		Classes: map[string]string{},
	}
	if _, err := Open("hybrid", t.TempDir(), Options{Policy: p}); err == nil {
		t.Fatal("unknown lsm option accepted")
	}
}

// TestShardedPolicyHybrid checks the hybrid kind composes with -shards:
// each shard is its own policy-instantiated hybrid.
func TestShardedPolicyHybrid(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("hybrid", dir, Options{Policy: testPolicy(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var h rawdb.Hash
	for i := 0; i < 50; i++ {
		h[0], h[1] = byte(i), 0xEE
		if err := s.Put(rawdb.TxLookupKey(h), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open("hybrid", dir, Options{Policy: testPolicy(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 50; i++ {
		h[0], h[1] = byte(i), 0xEE
		v, err := re.Get(rawdb.TxLookupKey(h))
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("key %d after sharded reopen: %q, %v", i, v, err)
		}
	}
}
