// Package backends constructs the repo's storage backends by name. It is
// the shared factory behind the replaybench load generator, the ethkvlab
// pipeline, and the kvserver network front end, so a backend added here
// becomes replayable and servable at once. The hybrid kind is
// policy-driven: Options.Policy (or a built-in default mirroring
// hybrid.DefaultRouting) names the routes, picks each route's backend kind
// and tuning, and assigns classes to routes.
package backends

import (
	"fmt"
	"path/filepath"
	"sort"

	"ethkv/internal/compaction"
	"ethkv/internal/flatstore"
	"ethkv/internal/hashstore"
	"ethkv/internal/hybrid"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
	"ethkv/internal/policy"
	"ethkv/internal/rawdb"
	"ethkv/internal/shard"
)

// Options tunes backend construction.
type Options struct {
	// BlockCacheBytes sets the LSM block-cache budget (0 = store default,
	// negative disables; lsm/lazy/hybrid backends). With sharding, each
	// shard gets the full budget.
	BlockCacheBytes int64
	// Shards partitions the keyspace across this many child stores of the
	// requested kind behind a shard.Router (0 or 1 = unsharded). Each
	// child lives under dir/shard-NN, so a sharded database reopens from
	// the same dir and shard count.
	Shards int
	// ShardMode selects the partition function: "hash" (default) or
	// "class" (key-class routing that keeps a class's range scans
	// shard-local).
	ShardMode string
	// Policy configures the hybrid kind's routes (nil = built-in default:
	// ordered LSM + durable flat log + hash store, hybrid.DefaultRouting).
	// Ignored by other kinds.
	Policy *policy.Policy
	// CompactionWorkers is the process-wide background concurrency budget
	// for LSM-backed kinds (0 = default). One compaction.Pool of this size
	// is shared by every LSM instance the Open call creates — all shards
	// and all policy routes — so `-shards 8` contends for these workers
	// instead of spawning 8 uncoordinated sets; the pool prefers the
	// instance with the highest compaction debt. It is also each
	// instance's own concurrency cap (a policy route can lower its cap
	// with the compaction_workers option).
	CompactionWorkers int
}

// Kinds lists the recognised backend names, for usage strings.
func Kinds() string { return "lsm, flat, hash, log, mem, lazy, or hybrid" }

// Open constructs the requested store under dir. With opts.Shards > 1 the
// store is a shard.Router over that many children of the same kind. Every
// LSM instance the call creates — across shards and policy routes — shares
// one compaction.Pool sized at opts.CompactionWorkers, so background
// concurrency is budgeted process-wide rather than per instance.
func Open(kind, dir string, opts Options) (kv.Store, error) {
	pool := compaction.NewPool(opts.CompactionWorkers)
	if opts.Shards > 1 {
		mode, err := shard.ParseMode(opts.ShardMode)
		if err != nil {
			return nil, err
		}
		children := make([]kv.Store, opts.Shards)
		for i := range children {
			child, err := openOne(kind, filepath.Join(dir, fmt.Sprintf("shard-%02d", i)), opts, pool)
			if err != nil {
				for _, c := range children[:i] {
					c.Close()
				}
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			children[i] = child
		}
		return shard.New(children, shard.Options{Mode: mode})
	}
	return openOne(kind, dir, opts, pool)
}

// openOne constructs a single (unsharded) store of the requested kind.
func openOne(kind, dir string, opts Options, pool *compaction.Pool) (kv.Store, error) {
	lsmOpts := lsm.Options{
		DisableWAL:          true,
		MemtableBytes:       256 << 10,
		L0CompactionTrigger: 4,
		LevelBaseBytes:      1 << 20,
		BlockCacheBytes:     opts.BlockCacheBytes,
		CompactionWorkers:   opts.CompactionWorkers,
		Pool:                pool,
	}
	switch kind {
	case "lsm":
		return lsm.Open(filepath.Join(dir, "lsm"), lsmOpts)
	case "flat":
		return flatstore.Open(filepath.Join(dir, "flat"), flatstore.Options{})
	case "hash":
		return hashstore.Open(filepath.Join(dir, "hash"))
	case "log":
		return logstore.New(), nil
	case "mem":
		return kv.NewMemStore(), nil
	case "lazy":
		inner, err := lsm.Open(filepath.Join(dir, "lazy-lsm"), lsmOpts)
		if err != nil {
			return nil, err
		}
		return hybrid.NewLazyStore(inner), nil
	case "hybrid":
		p := opts.Policy
		if p == nil {
			p = DefaultHybridPolicy()
		}
		return openPolicyStore(dir, opts, p, pool)
	default:
		return nil, fmt.Errorf("unknown backend %q (want %s)", kind, Kinds())
	}
}

// DefaultHybridPolicy mirrors hybrid.DefaultRouting as a policy: ordered
// LSM default, a durable flat store on the log route (append-only value
// log — Finding 5's shape, but persistent across reopen), and the hash
// store for point-read world state.
func DefaultHybridPolicy() *policy.Policy {
	p := &policy.Policy{
		Default: "ordered",
		Routes: map[string]policy.Spec{
			"ordered": {Kind: "lsm"},
			"log":     {Kind: "flat"},
			"hash":    {Kind: "hash"},
		},
		Classes: make(map[string]string),
	}
	for c, r := range hybrid.DefaultRouting() {
		p.Classes[c.String()] = r.String()
	}
	return p
}

// openPolicyStore instantiates a policy as a hybrid.Store: one physical
// backend per route, each under dir/<route>. Route names are sorted so the
// backend (and therefore batch commit) order is deterministic across runs
// and reopens.
func openPolicyStore(dir string, opts Options, p *policy.Policy, pool *compaction.Pool) (kv.Store, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(p.Routes))
	for name := range p.Routes {
		names = append(names, name)
	}
	sort.Strings(names)

	idx := make(map[string]int, len(names))
	bks := make([]hybrid.Backend, 0, len(names))
	closeAll := func() {
		for _, b := range bks {
			b.Store.Close()
		}
	}
	for _, name := range names {
		st, err := openRoute(p.Routes[name], filepath.Join(dir, name), opts, pool)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("route %s: %w", name, err)
		}
		idx[name] = len(bks)
		bks = append(bks, hybrid.Backend{Name: name, Store: st})
	}

	routing := make(map[rawdb.Class]int, len(p.Classes))
	for c, route := range p.Routing() {
		routing[c] = idx[route]
	}
	s, err := hybrid.NewRouted(bks, routing, idx[p.Default])
	if err != nil {
		closeAll()
		return nil, err
	}
	return s, nil
}

// openRoute opens one route's physical backend at dir, applying the
// spec's option knobs. Unknown knobs are errors so a typo in a policy file
// cannot silently fall back to defaults.
func openRoute(spec policy.Spec, dir string, opts Options, pool *compaction.Pool) (kv.Store, error) {
	switch spec.Kind {
	case "lsm":
		o := lsm.Options{
			DisableWAL:          true,
			MemtableBytes:       256 << 10,
			L0CompactionTrigger: 4,
			LevelBaseBytes:      1 << 20,
			BlockCacheBytes:     opts.BlockCacheBytes,
			CompactionWorkers:   opts.CompactionWorkers,
			Pool:                pool,
		}
		for k, v := range spec.Options {
			switch k {
			case "memtable_kb":
				o.MemtableBytes = int(v) << 10
			case "l0_compaction_trigger":
				o.L0CompactionTrigger = int(v)
			case "level_base_kb":
				o.LevelBaseBytes = v << 10
			case "block_cache_mb":
				o.BlockCacheBytes = v << 20
			case "compaction_table_kb":
				o.CompactionTableBytes = int(v) << 10
			case "compaction_workers":
				// Per-route cap on concurrent compactions; the shared
				// pool still bounds the process-wide total.
				o.CompactionWorkers = int(v)
			default:
				return nil, fmt.Errorf("unknown lsm option %q", k)
			}
		}
		return lsm.Open(dir, o)
	case "flat":
		o := flatstore.Options{}
		for k, v := range spec.Options {
			switch k {
			case "compact_after_dead_kb":
				o.CompactAfterDeadBytes = v << 10
			default:
				return nil, fmt.Errorf("unknown flat option %q", k)
			}
		}
		return flatstore.Open(dir, o)
	case "hash":
		if len(spec.Options) != 0 {
			return nil, fmt.Errorf("hash backend takes no options")
		}
		return hashstore.Open(dir)
	case "log":
		if len(spec.Options) != 0 {
			return nil, fmt.Errorf("log backend takes no options")
		}
		return logstore.New(), nil
	case "mem":
		if len(spec.Options) != 0 {
			return nil, fmt.Errorf("mem backend takes no options")
		}
		return kv.NewMemStore(), nil
	default:
		return nil, fmt.Errorf("unknown backend kind %q", spec.Kind)
	}
}
