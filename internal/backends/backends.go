// Package backends constructs the repo's storage backends by name. It is
// the shared factory behind the replaybench load generator and the kvserver
// network front end, so a backend added here becomes replayable and
// servable at once.
package backends

import (
	"fmt"
	"path/filepath"

	"ethkv/internal/flatstore"
	"ethkv/internal/hashstore"
	"ethkv/internal/hybrid"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
	"ethkv/internal/shard"
)

// Options tunes backend construction.
type Options struct {
	// BlockCacheBytes sets the LSM block-cache budget (0 = store default,
	// negative disables; lsm/lazy/hybrid backends). With sharding, each
	// shard gets the full budget.
	BlockCacheBytes int64
	// Shards partitions the keyspace across this many child stores of the
	// requested kind behind a shard.Router (0 or 1 = unsharded). Each
	// child lives under dir/shard-NN, so a sharded database reopens from
	// the same dir and shard count.
	Shards int
	// ShardMode selects the partition function: "hash" (default) or
	// "class" (key-class routing that keeps a class's range scans
	// shard-local).
	ShardMode string
}

// Kinds lists the recognised backend names, for usage strings.
func Kinds() string { return "lsm, flat, hash, log, lazy, or hybrid" }

// Open constructs the requested store under dir. With opts.Shards > 1 the
// store is a shard.Router over that many children of the same kind.
func Open(kind, dir string, opts Options) (kv.Store, error) {
	if opts.Shards > 1 {
		mode, err := shard.ParseMode(opts.ShardMode)
		if err != nil {
			return nil, err
		}
		children := make([]kv.Store, opts.Shards)
		for i := range children {
			child, err := openOne(kind, filepath.Join(dir, fmt.Sprintf("shard-%02d", i)), opts)
			if err != nil {
				for _, c := range children[:i] {
					c.Close()
				}
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			children[i] = child
		}
		return shard.New(children, shard.Options{Mode: mode})
	}
	return openOne(kind, dir, opts)
}

// openOne constructs a single (unsharded) store of the requested kind.
func openOne(kind, dir string, opts Options) (kv.Store, error) {
	lsmOpts := lsm.Options{
		DisableWAL:          true,
		MemtableBytes:       256 << 10,
		L0CompactionTrigger: 4,
		LevelBaseBytes:      1 << 20,
		BlockCacheBytes:     opts.BlockCacheBytes,
	}
	switch kind {
	case "lsm":
		return lsm.Open(filepath.Join(dir, "lsm"), lsmOpts)
	case "flat":
		return flatstore.Open(filepath.Join(dir, "flat"), flatstore.Options{})
	case "hash":
		return hashstore.Open(filepath.Join(dir, "hash"))
	case "log":
		return logstore.New(), nil
	case "lazy":
		inner, err := lsm.Open(filepath.Join(dir, "lazy-lsm"), lsmOpts)
		if err != nil {
			return nil, err
		}
		return hybrid.NewLazyStore(inner), nil
	case "hybrid":
		ordered, err := lsm.Open(filepath.Join(dir, "ordered"), lsmOpts)
		if err != nil {
			return nil, err
		}
		hash, err := hashstore.Open(filepath.Join(dir, "hash"))
		if err != nil {
			ordered.Close()
			return nil, err
		}
		return hybrid.New(ordered, logstore.New(), hash, nil), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want %s)", kind, Kinds())
	}
}
