// Package backends constructs the repo's storage backends by name. It is
// the shared factory behind the replaybench load generator and the kvserver
// network front end, so a backend added here becomes replayable and
// servable at once.
package backends

import (
	"fmt"
	"path/filepath"

	"ethkv/internal/flatstore"
	"ethkv/internal/hashstore"
	"ethkv/internal/hybrid"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
)

// Options tunes backend construction.
type Options struct {
	// BlockCacheBytes sets the LSM block-cache budget (0 = store default,
	// negative disables; lsm/lazy/hybrid backends).
	BlockCacheBytes int64
}

// Kinds lists the recognised backend names, for usage strings.
func Kinds() string { return "lsm, flat, hash, log, lazy, or hybrid" }

// Open constructs the requested store under dir.
func Open(kind, dir string, opts Options) (kv.Store, error) {
	lsmOpts := lsm.Options{
		DisableWAL:          true,
		MemtableBytes:       256 << 10,
		L0CompactionTrigger: 4,
		LevelBaseBytes:      1 << 20,
		BlockCacheBytes:     opts.BlockCacheBytes,
	}
	switch kind {
	case "lsm":
		return lsm.Open(filepath.Join(dir, "lsm"), lsmOpts)
	case "flat":
		return flatstore.Open(filepath.Join(dir, "flat"), flatstore.Options{})
	case "hash":
		return hashstore.Open(filepath.Join(dir, "hash"))
	case "log":
		return logstore.New(), nil
	case "lazy":
		inner, err := lsm.Open(filepath.Join(dir, "lazy-lsm"), lsmOpts)
		if err != nil {
			return nil, err
		}
		return hybrid.NewLazyStore(inner), nil
	case "hybrid":
		ordered, err := lsm.Open(filepath.Join(dir, "ordered"), lsmOpts)
		if err != nil {
			return nil, err
		}
		hash, err := hashstore.Open(filepath.Join(dir, "hash"))
		if err != nil {
			ordered.Close()
			return nil, err
		}
		return hybrid.New(ordered, logstore.New(), hash, nil), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want %s)", kind, Kinds())
	}
}
