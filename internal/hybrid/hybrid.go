// Package hybrid implements §V's conceptual design: a class-routed key-value
// store that picks the data structure by the class's measured access
// pattern, plus the correlation-aware cache wiring. It exists to evaluate
// the paper's design recommendations against the single-LSM baseline
// (ablation experiments E12/E13 in DESIGN.md).
//
// Routing, justified by the findings:
//
//   - Scan classes (SnapshotAccount, SnapshotStorage, BlockHeader) need key
//     order: they stay on an ordered store (the LSM) — Finding 4.
//   - High-deletion lifecycle classes (TxLookup, BlockBody, BlockReceipts)
//     go to the append-only log store with batched chunk retirement —
//     Finding 5.
//   - World-state point-read classes (TrieNodeAccount, TrieNodeStorage,
//     Code) go to the hash store with in-place deletes — Findings 3-5.
//   - Everything else (small classes, singletons) stays on the LSM.
package hybrid

import (
	"ethkv/internal/kv"
	"ethkv/internal/obs"
	"ethkv/internal/rawdb"
)

// Route identifies the backing structure for a class.
type Route int

// The three routes.
const (
	RouteOrdered Route = iota // LSM/B+-tree style ordered store
	RouteLog                  // append-only log with batched deletion
	RouteHash                 // hash store with in-place deletes
)

func (r Route) String() string {
	switch r {
	case RouteLog:
		return "log"
	case RouteHash:
		return "hash"
	default:
		return "ordered"
	}
}

// DefaultRouting maps every class per the package comment.
func DefaultRouting() map[rawdb.Class]Route {
	return map[rawdb.Class]Route{
		// Scan classes stay ordered (Finding 4).
		rawdb.ClassSnapshotAccount: RouteOrdered,
		rawdb.ClassSnapshotStorage: RouteOrdered,
		rawdb.ClassBlockHeader:     RouteOrdered,
		// Lifecycle-deleted classes ride the log (Finding 5).
		rawdb.ClassTxLookup:      RouteLog,
		rawdb.ClassBlockBody:     RouteLog,
		rawdb.ClassBlockReceipts: RouteLog,
		// Point-read world state rides the hash store (Finding 3).
		rawdb.ClassTrieNodeAccount: RouteHash,
		rawdb.ClassTrieNodeStorage: RouteHash,
		rawdb.ClassCode:            RouteHash,
	}
}

// Store is the class-routed hybrid store. It implements kv.Store: every
// operation classifies its key and dispatches to the route's backend.
type Store struct {
	routing map[rawdb.Class]Route
	ordered kv.Store
	log     kv.Store
	hash    kv.Store
}

var _ kv.Store = (*Store)(nil)

// New assembles a hybrid store from the three backends. routing may be nil
// for DefaultRouting.
func New(ordered, log, hash kv.Store, routing map[rawdb.Class]Route) *Store {
	if routing == nil {
		routing = DefaultRouting()
	}
	return &Store{routing: routing, ordered: ordered, log: log, hash: hash}
}

// backend picks the store for a key.
func (s *Store) backend(key []byte) kv.Store {
	switch s.routing[rawdb.Classify(key)] {
	case RouteLog:
		return s.log
	case RouteHash:
		return s.hash
	default:
		return s.ordered
	}
}

// Get implements kv.Reader.
func (s *Store) Get(key []byte) ([]byte, error) { return s.backend(key).Get(key) }

// Has implements kv.Reader.
func (s *Store) Has(key []byte) (bool, error) { return s.backend(key).Has(key) }

// Put implements kv.Writer.
func (s *Store) Put(key, value []byte) error { return s.backend(key).Put(key, value) }

// Delete implements kv.Writer.
func (s *Store) Delete(key []byte) error { return s.backend(key).Delete(key) }

// NewIterator implements kv.Iterable. Ordered iteration is only meaningful
// for classes routed to the ordered store; other routes return their
// backend's (unordered) iterator, which the workload never uses (Finding 4:
// scans are confined to ordered classes).
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	return s.backend(prefix).NewIterator(prefix, start)
}

// NewBatch implements kv.Batcher with a routing batch.
func (s *Store) NewBatch() kv.Batch {
	return &routedBatch{store: s}
}

// Close closes all three backends.
func (s *Store) Close() error {
	err1 := s.ordered.Close()
	err2 := s.log.Close()
	err3 := s.hash.Close()
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	return err3
}

// Stats merges the backends' counters. kv.Stats.Merge carries every field —
// including counters only some backends track (live/dead value-log bytes,
// compaction rewrites, physical read ops) — so a new counter added to
// kv.Stats can never be silently dropped from the merged view.
func (s *Store) Stats() kv.Stats {
	var out kv.Stats
	for _, b := range []kv.Store{s.ordered, s.log, s.hash} {
		if sp, ok := b.(kv.StatsProvider); ok {
			out.Merge(sp.Stats())
		}
	}
	return out
}

// RegisterMetrics implements kv.MetricsRegistrar by delegating to each
// backend that can export internals, labelling series with route=ordered/
// log/hash so the three backends stay distinguishable on one registry.
func (s *Store) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	for route, b := range map[string]kv.Store{
		"ordered": s.ordered, "log": s.log, "hash": s.hash,
	} {
		rl := append([]string{"route", route}, labels...)
		if reg, ok := b.(kv.MetricsRegistrar); ok {
			reg.RegisterMetrics(r, rl...)
		} else if sp, ok := b.(kv.StatsProvider); ok {
			kv.RegisterStatsMetrics(r, sp, rl...)
		}
	}
}

// BackendStats returns per-route counters for ablation reporting.
func (s *Store) BackendStats() map[Route]kv.Stats {
	out := make(map[Route]kv.Stats, 3)
	if sp, ok := s.ordered.(kv.StatsProvider); ok {
		out[RouteOrdered] = sp.Stats()
	}
	if sp, ok := s.log.(kv.StatsProvider); ok {
		out[RouteLog] = sp.Stats()
	}
	if sp, ok := s.hash.(kv.StatsProvider); ok {
		out[RouteHash] = sp.Stats()
	}
	return out
}

// routedBatch groups batched ops per backend and commits each backend's
// batch.
type routedBatch struct {
	store *Store
	ops   []batchOp
	size  int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *routedBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *routedBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *routedBatch) ValueSize() int { return b.size }

func (b *routedBatch) Write() error {
	for _, op := range b.ops {
		backend := b.store.backend(op.key)
		var err error
		if op.delete {
			err = backend.Delete(op.key)
		} else {
			err = backend.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *routedBatch) Reset() { b.ops, b.size = b.ops[:0], 0 }

func (b *routedBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
