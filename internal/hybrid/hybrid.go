// Package hybrid implements §V's conceptual design: a class-routed key-value
// store that picks the data structure by the class's measured access
// pattern, plus the correlation-aware cache wiring. It exists to evaluate
// the paper's design recommendations against the single-LSM baseline
// (ablation experiments E12/E13 in DESIGN.md).
//
// The store is a generic dispatcher over N named backends: a routing table
// maps each rawdb.Class to a backend index, and every operation classifies
// its key and dispatches to the class's route. Keys of unrouted classes
// (including ClassUnknown) go to the default route. internal/policy derives
// routing tables plus per-backend configurations from a workload census;
// the classic three-route layout of the paper (ordered LSM, append-only
// log, hash store — Findings 3-5) remains available through New.
//
// Two cross-backend invariants the dispatcher maintains:
//
//   - Batches are split into one sub-batch per target backend and the
//     sub-batches commit in backend order, so each backend sees a single
//     atomic (group-committed) batch rather than a stream of single ops.
//   - Scans merge every backend whose classes could match the requested
//     prefix (rawdb.Class.MatchesScanPrefix), via the shard package's
//     latching k-way merge, so a short or empty prefix cannot silently
//     confine the scan to one route.
package hybrid

import (
	"fmt"

	"ethkv/internal/kv"
	"ethkv/internal/obs"
	"ethkv/internal/rawdb"
	"ethkv/internal/shard"
)

// Route identifies one of the classic three routes (kept for the paper's
// fixed layout and as indices into New's backend order).
type Route int

// The three classic routes. Their numeric values double as backend indices
// in stores assembled by New.
const (
	RouteOrdered Route = iota // LSM/B+-tree style ordered store
	RouteLog                  // append-only log with batched deletion
	RouteHash                 // hash store with in-place deletes
)

func (r Route) String() string {
	switch r {
	case RouteLog:
		return "log"
	case RouteHash:
		return "hash"
	default:
		return "ordered"
	}
}

// DefaultRouting maps every class per the paper's findings: scan classes
// stay ordered (Finding 4), lifecycle-deleted classes ride the log
// (Finding 5), point-read world state rides the hash store (Finding 3).
func DefaultRouting() map[rawdb.Class]Route {
	return map[rawdb.Class]Route{
		// Scan classes stay ordered (Finding 4).
		rawdb.ClassSnapshotAccount: RouteOrdered,
		rawdb.ClassSnapshotStorage: RouteOrdered,
		rawdb.ClassBlockHeader:     RouteOrdered,
		// Lifecycle-deleted classes ride the log (Finding 5).
		rawdb.ClassTxLookup:      RouteLog,
		rawdb.ClassBlockBody:     RouteLog,
		rawdb.ClassBlockReceipts: RouteLog,
		// Point-read world state rides the hash store (Finding 3).
		rawdb.ClassTrieNodeAccount: RouteHash,
		rawdb.ClassTrieNodeStorage: RouteHash,
		rawdb.ClassCode:            RouteHash,
	}
}

// Backend is one named route of a hybrid store.
type Backend struct {
	Name  string
	Store kv.Store
}

// Store is the class-routed hybrid store. It implements kv.Store: every
// operation classifies its key and dispatches to the route's backend.
type Store struct {
	backends []Backend
	// routes is indexed by rawdb.Class: dispatch runs on every op, so the
	// class -> backend map is flattened to an array lookup. Unrouted
	// classes (and ClassUnknown) hold def.
	routes [rawdb.NumClasses + 1]int
	def    int                 // backends index for unrouted classes
	routed map[rawdb.Class]int // the explicit routing, for scan planning
}

var _ kv.Store = (*Store)(nil)

// NewRouted assembles a hybrid store over arbitrary named backends.
// routing maps classes to indices into backends; classes absent from the
// map (and ClassUnknown, which can never be routed) fall through to
// backends[def].
func NewRouted(backends []Backend, routing map[rawdb.Class]int, def int) (*Store, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("hybrid: no backends")
	}
	seen := make(map[string]bool, len(backends))
	for i, b := range backends {
		if b.Name == "" {
			return nil, fmt.Errorf("hybrid: backend %d has no name", i)
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("hybrid: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Store == nil {
			return nil, fmt.Errorf("hybrid: backend %q has nil store", b.Name)
		}
	}
	if def < 0 || def >= len(backends) {
		return nil, fmt.Errorf("hybrid: default backend index %d out of range", def)
	}
	r := make(map[rawdb.Class]int, len(routing))
	s := &Store{backends: backends, def: def, routed: r}
	for i := range s.routes {
		s.routes[i] = def
	}
	for c, i := range routing {
		if i < 0 || i >= len(backends) {
			return nil, fmt.Errorf("hybrid: class %s routed to backend index %d out of range", c, i)
		}
		if c <= rawdb.ClassUnknown || int(c) > rawdb.NumClasses {
			return nil, fmt.Errorf("hybrid: cannot route class %s", c)
		}
		r[c] = i
		s.routes[c] = i
	}
	return s, nil
}

// New assembles the classic three-route hybrid store (ordered/log/hash
// backend order, ordered as the default route). routing may be nil for
// DefaultRouting.
func New(ordered, log, hash kv.Store, routing map[rawdb.Class]Route) *Store {
	if routing == nil {
		routing = DefaultRouting()
	}
	idx := make(map[rawdb.Class]int, len(routing))
	for c, r := range routing {
		idx[c] = int(r)
	}
	s, err := NewRouted([]Backend{
		{Name: RouteOrdered.String(), Store: ordered},
		{Name: RouteLog.String(), Store: log},
		{Name: RouteHash.String(), Store: hash},
	}, idx, int(RouteOrdered))
	if err != nil {
		// The three-route shape is valid by construction unless a backend
		// is nil, which was always a caller bug.
		panic(err)
	}
	return s
}

// Backends returns the route names in backend order.
func (s *Store) Backends() []string {
	names := make([]string, len(s.backends))
	for i, b := range s.backends {
		names[i] = b.Name
	}
	return names
}

// routeIndex picks the backend index for a key.
func (s *Store) routeIndex(key []byte) int {
	return s.routes[rawdb.Classify(key)]
}

// backend picks the store for a key.
func (s *Store) backend(key []byte) kv.Store {
	return s.backends[s.routeIndex(key)].Store
}

// Get implements kv.Reader.
func (s *Store) Get(key []byte) ([]byte, error) { return s.backend(key).Get(key) }

// Has implements kv.Reader.
func (s *Store) Has(key []byte) (bool, error) { return s.backend(key).Has(key) }

// Put implements kv.Writer.
func (s *Store) Put(key, value []byte) error { return s.backend(key).Put(key, value) }

// Delete implements kv.Writer.
func (s *Store) Delete(key []byte) error { return s.backend(key).Delete(key) }

// scanBackends returns, in backend order, the indices of every backend a
// scan over prefix may need to visit: the default route (unrouted and
// unknown-class keys can match any prefix) plus each route owning a class
// whose keys could start with the prefix. Classifying the prefix itself
// would be wrong — a one-byte prefix like "l" is ClassUnknown, yet every
// TxLookup key starts with it.
func (s *Store) scanBackends(prefix []byte) []int {
	include := make([]bool, len(s.backends))
	include[s.def] = true
	for c, i := range s.routed {
		if !include[i] && c.MatchesScanPrefix(prefix) {
			include[i] = true
		}
	}
	out := make([]int, 0, len(s.backends))
	for i, in := range include {
		if in {
			out = append(out, i)
		}
	}
	return out
}

// NewIterator implements kv.Iterable with a merged scan over every backend
// whose classes can match the prefix (see scanBackends). With a single
// candidate backend the child iterator is returned directly; otherwise the
// children are k-way-merged with latched errors (shard.MergeIterators).
// Order is only meaningful when every merged child is ordered; the
// measured workload's scans are confined to ordered classes (Finding 4),
// so class-specific prefixes keep their single ordered child and full-range
// scans trade order for completeness.
func (s *Store) NewIterator(prefix, start []byte) kv.Iterator {
	idxs := s.scanBackends(prefix)
	if len(idxs) == 1 {
		return s.backends[idxs[0]].Store.NewIterator(prefix, start)
	}
	iters := make([]kv.Iterator, len(idxs))
	for i, bi := range idxs {
		iters[i] = s.backends[bi].Store.NewIterator(prefix, start)
	}
	return shard.MergeIterators(iters)
}

// NewBatch implements kv.Batcher with a routing batch.
func (s *Store) NewBatch() kv.Batch {
	return &routedBatch{store: s}
}

// Flush forces buffered writes down on every backend that supports it.
func (s *Store) Flush() error {
	for _, b := range s.backends {
		if f, ok := b.Store.(interface{ Flush() error }); ok {
			if err := f.Flush(); err != nil {
				return fmt.Errorf("route %s: %w", b.Name, err)
			}
		}
	}
	return nil
}

// Drain implements kv.Drainer by draining every backend that supports it,
// returning the first error after attempting all.
func (s *Store) Drain() error {
	var first error
	for _, b := range s.backends {
		if err := kv.Drain(b.Store); err != nil && first == nil {
			first = fmt.Errorf("route %s: drain: %w", b.Name, err)
		}
	}
	return first
}

// Close closes every backend, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, b := range s.backends {
		if err := b.Store.Close(); err != nil && first == nil {
			first = fmt.Errorf("route %s: %w", b.Name, err)
		}
	}
	return first
}

// Stats merges the backends' counters. kv.Stats.Merge carries every field —
// including counters only some backends track (live/dead value-log bytes,
// compaction rewrites, physical read ops) — so a new counter added to
// kv.Stats can never be silently dropped from the merged view.
func (s *Store) Stats() kv.Stats {
	var out kv.Stats
	for _, b := range s.backends {
		if sp, ok := b.Store.(kv.StatsProvider); ok {
			out.Merge(sp.Stats())
		}
	}
	return out
}

// RegisterMetrics implements kv.MetricsRegistrar by delegating to each
// backend that can export internals, labelling series with route=<name> so
// the backends stay distinguishable on one registry.
func (s *Store) RegisterMetrics(r *obs.Registry, labels ...string) {
	if r == nil {
		return
	}
	for _, b := range s.backends {
		rl := append([]string{"route", b.Name}, labels...)
		if reg, ok := b.Store.(kv.MetricsRegistrar); ok {
			reg.RegisterMetrics(r, rl...)
		} else if sp, ok := b.Store.(kv.StatsProvider); ok {
			kv.RegisterStatsMetrics(r, sp, rl...)
		}
	}
}

// BackendStats returns per-route counters for ablation reporting, keyed by
// route name.
func (s *Store) BackendStats() map[string]kv.Stats {
	out := make(map[string]kv.Stats, len(s.backends))
	for _, b := range s.backends {
		if sp, ok := b.Store.(kv.StatsProvider); ok {
			out[b.Name] = sp.Stats()
		}
	}
	return out
}

// routedBatch groups batched ops into one sub-batch per target backend and
// commits the sub-batches in backend (fixed route) order, mirroring
// shard.Router's batch. Each backend therefore receives its share of the
// hybrid batch as a single Batch.Write — one WAL group-commit record on an
// LSM route, one atomic group record on a flat route — instead of the
// per-op Put/Delete replay that would lose batch atomicity.
type routedBatch struct {
	store *Store
	ops   []batchOp
	size  int
}

type batchOp struct {
	key, value []byte
	delete     bool
}

func (b *routedBatch) Put(key, value []byte) error {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
	return nil
}

func (b *routedBatch) Delete(key []byte) error {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
	b.size += len(key)
	return nil
}

func (b *routedBatch) ValueSize() int { return b.size }

func (b *routedBatch) Write() error {
	s := b.store
	subs := make([]kv.Batch, len(s.backends))
	for _, op := range b.ops {
		i := s.routeIndex(op.key)
		if subs[i] == nil {
			subs[i] = s.backends[i].Store.NewBatch()
		}
		var err error
		if op.delete {
			err = subs[i].Delete(op.key)
		} else {
			err = subs[i].Put(op.key, op.value)
		}
		if err != nil {
			return fmt.Errorf("route %s: %w", s.backends[i].Name, err)
		}
	}
	for i, sub := range subs {
		if sub == nil {
			continue
		}
		if err := sub.Write(); err != nil {
			return fmt.Errorf("route %s: %w", s.backends[i].Name, err)
		}
	}
	return nil
}

func (b *routedBatch) Reset() { b.ops, b.size = b.ops[:0], 0 }

func (b *routedBatch) Replay(w kv.Writer) error {
	for _, op := range b.ops {
		var err error
		if op.delete {
			err = w.Delete(op.key)
		} else {
			err = w.Put(op.key, op.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
