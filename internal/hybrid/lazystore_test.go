package hybrid

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ethkv/internal/kv"
)

func newLazy(t *testing.T) (*LazyStore, *kv.MemStore) {
	t.Helper()
	indexed := kv.NewMemStore()
	s := NewLazyStore(indexed)
	t.Cleanup(func() { s.Close() })
	return s, indexed
}

func TestLazyWriteStaysStaged(t *testing.T) {
	s, indexed := newLazy(t)
	s.Put([]byte("never-read"), []byte("v"))
	if s.StagedCount() != 1 {
		t.Fatalf("StagedCount = %d", s.StagedCount())
	}
	// The indexed store must not have paid for the write.
	if ok, _ := indexed.Has([]byte("never-read")); ok {
		t.Fatal("unread key reached the indexed store")
	}
	if s.Promotions() != 0 {
		t.Fatal("promotion without a read")
	}
}

func TestLazyReadPromotes(t *testing.T) {
	s, indexed := newLazy(t)
	s.Put([]byte("hot"), []byte("value"))
	v, err := s.Get([]byte("hot"))
	if err != nil || string(v) != "value" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if s.Promotions() != 1 || s.StagedCount() != 0 {
		t.Fatalf("promotions=%d staged=%d", s.Promotions(), s.StagedCount())
	}
	if ok, _ := indexed.Has([]byte("hot")); !ok {
		t.Fatal("read key not promoted to the indexed store")
	}
	// Second read comes from the indexed store.
	v, err = s.Get([]byte("hot"))
	if err != nil || string(v) != "value" {
		t.Fatalf("second Get = %q, %v", v, err)
	}
	if s.Promotions() != 1 {
		t.Fatal("double promotion")
	}
}

func TestLazyOverwriteShadowsPromoted(t *testing.T) {
	s, _ := newLazy(t)
	s.Put([]byte("k"), []byte("v1"))
	s.Get([]byte("k")) // promote v1
	s.Put([]byte("k"), []byte("v2"))
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("stale promoted value served: %q, %v", v, err)
	}
}

func TestLazyDelete(t *testing.T) {
	s, _ := newLazy(t)
	s.Put([]byte("staged"), []byte("1"))
	s.Put([]byte("promoted"), []byte("2"))
	s.Get([]byte("promoted"))
	s.Delete([]byte("staged"))
	s.Delete([]byte("promoted"))
	for _, k := range []string{"staged", "promoted"} {
		if _, err := s.Get([]byte(k)); !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("%s survived delete: %v", k, err)
		}
	}
}

func TestLazyHasDoesNotPromote(t *testing.T) {
	s, _ := newLazy(t)
	s.Put([]byte("k"), []byte("v"))
	ok, err := s.Has([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if s.Promotions() != 0 {
		t.Fatal("Has promoted")
	}
}

func TestLazyIteratorPromotesPrefix(t *testing.T) {
	s, _ := newLazy(t)
	for i := 0; i < 5; i++ {
		s.Put([]byte(fmt.Sprintf("p%d", i)), []byte("v"))
	}
	s.Put([]byte("q0"), []byte("other"))
	it := s.NewIterator([]byte("p"), nil)
	defer it.Release()
	n := 0
	for it.Next() {
		n++
	}
	if n != 5 {
		t.Fatalf("scan saw %d keys, want 5", n)
	}
	// q0 must remain staged.
	if s.StagedCount() != 1 {
		t.Fatalf("staged = %d after prefix scan", s.StagedCount())
	}
}

func TestLazyBatch(t *testing.T) {
	s, _ := newLazy(t)
	b := s.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	b.Delete([]byte("k1"))
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Has([]byte("k1")); ok {
		t.Fatal("batched delete lost")
	}
	if v, _ := s.Get([]byte("k2")); string(v) != "v2" {
		t.Fatal("batched put lost")
	}
	ms := kv.NewMemStore()
	if err := b.Replay(ms); err != nil {
		t.Fatal(err)
	}
}

func TestLazyModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s, _ := newLazy(t)
	model := map[string]string{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(200))
		switch rng.Intn(10) {
		case 0, 1:
			s.Delete([]byte(k))
			delete(model, k)
		case 2, 3, 4:
			// Read path (promotes).
			v, err := s.Get([]byte(k))
			want, present := model[k]
			if present && (err != nil || string(v) != want) {
				t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
			}
			if !present && !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Get(absent %s) = %v", k, err)
			}
		default:
			v := fmt.Sprintf("val-%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("final Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
}

// TestLazySavesIndexWorkOnWriteOnlyWorkload is Finding 3's claim: a
// write-heavy, rarely-read workload should leave most pairs unindexed.
func TestLazySavesIndexWorkOnWriteOnlyWorkload(t *testing.T) {
	s, indexed := newLazy(t)
	for i := 0; i < 10000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("payload"))
	}
	// Read only 5%.
	for i := 0; i < 10000; i += 20 {
		s.Get([]byte(fmt.Sprintf("key-%05d", i)))
	}
	if got := indexed.Len(); got != 500 {
		t.Fatalf("indexed store holds %d keys; only the 500 read keys should promote", got)
	}
	if s.StagedCount() != 9500 {
		t.Fatalf("staged = %d, want 9500", s.StagedCount())
	}
	if s.Promotions() != 500 {
		t.Fatalf("promotions = %d", s.Promotions())
	}
}

func TestLazyStats(t *testing.T) {
	s, _ := newLazy(t)
	s.Put([]byte("abc"), []byte("defgh"))
	s.Get([]byte("abc"))
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LogicalBytesWritten != 8 || st.LogicalBytesRead != 5 {
		t.Fatalf("byte accounting: %+v", st)
	}
}
