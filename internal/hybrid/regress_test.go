package hybrid

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"ethkv/internal/faultfs"
	"ethkv/internal/kv"
	"ethkv/internal/logstore"
	"ethkv/internal/lsm"
	"ethkv/internal/rawdb"
)

// recordingStore wraps a MemStore and logs every write-path entry point, so
// tests can assert how the hybrid dispatcher reaches its backends.
type recordingStore struct {
	kv.Store
	name   string
	events *[]string
}

func (r *recordingStore) Put(key, value []byte) error {
	*r.events = append(*r.events, "direct-put:"+r.name)
	return r.Store.Put(key, value)
}

func (r *recordingStore) Delete(key []byte) error {
	*r.events = append(*r.events, "direct-delete:"+r.name)
	return r.Store.Delete(key)
}

func (r *recordingStore) NewBatch() kv.Batch {
	*r.events = append(*r.events, "newbatch:"+r.name)
	return &recordingBatch{Batch: r.Store.NewBatch(), name: r.name, events: r.events}
}

type recordingBatch struct {
	kv.Batch
	name   string
	events *[]string
}

func (b *recordingBatch) Write() error {
	*b.events = append(*b.events, "commit:"+b.name)
	return b.Batch.Write()
}

// TestBatchUsesPerBackendSubBatches is the regression test for the batch
// routing bug: Write must group ops into one sub-batch per target backend
// and commit the sub-batches in backend order — never replay ops one-by-one
// through the backends' Put/Delete (which loses batch atomicity and WAL
// group commit).
func TestBatchUsesPerBackendSubBatches(t *testing.T) {
	var events []string
	mk := func(name string) kv.Store {
		return &recordingStore{Store: kv.NewMemStore(), name: name, events: &events}
	}
	s := New(mk("ordered"), mk("log"), mk("hash"), nil)
	defer s.Close()

	b := s.NewBatch()
	// Interleave routes so grouping (not op order) determines the commits.
	b.Put(rawdb.CodeKey(hash(1)), []byte("h1"))            // hash
	b.Put(rawdb.TxLookupKey(hash(2)), []byte("l1"))        // log
	b.Put(rawdb.SnapshotAccountKey(hash(3)), []byte("o1")) // ordered
	b.Put(rawdb.TxLookupKey(hash(4)), []byte("l2"))        // log
	b.Delete(rawdb.CodeKey(hash(5)))                       // hash
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}

	var commits []string
	for _, e := range events {
		switch {
		case strings.HasPrefix(e, "direct-"):
			t.Fatalf("batch reached a backend through %s instead of a sub-batch", e)
		case strings.HasPrefix(e, "commit:"):
			commits = append(commits, strings.TrimPrefix(e, "commit:"))
		}
	}
	// One commit per touched backend, in backend (fixed route) order.
	want := []string{"ordered", "log", "hash"}
	if len(commits) != len(want) {
		t.Fatalf("commits = %v, want one per backend %v", commits, want)
	}
	for i := range want {
		if commits[i] != want[i] {
			t.Fatalf("commit order = %v, want %v", commits, want)
		}
	}

	// And the data must have landed.
	if v, _ := s.Get(rawdb.SnapshotAccountKey(hash(3))); string(v) != "o1" {
		t.Fatal("ordered put lost")
	}
	if v, _ := s.Get(rawdb.TxLookupKey(hash(4))); string(v) != "l2" {
		t.Fatal("log put lost")
	}
}

// countingFS counts writes and syncs against WAL files, through the
// lsm.Options.FS seam.
type countingFS struct {
	faultfs.FS
	walWrites, walSyncs atomic.Int64
}

func (c *countingFS) OpenAppend(path string) (faultfs.File, error) {
	f, err := c.FS.OpenAppend(path)
	if err != nil || !strings.HasPrefix(filepath.Base(path), "wal-") {
		return f, err
	}
	return &countingFile{File: f, fs: c}, nil
}

type countingFile struct {
	faultfs.File
	fs *countingFS
}

func (f *countingFile) Write(p []byte) (int, error) {
	f.fs.walWrites.Add(1)
	return f.File.Write(p)
}

func (f *countingFile) Sync() error {
	f.fs.walSyncs.Add(1)
	return f.File.Sync()
}

// TestBatchSingleWALGroupCommit pins the WAL-level consequence of the
// batch fix: a hybrid batch whose ops target an LSM route must reach that
// LSM as one Batch.Write, producing exactly one WAL emission and one
// durability barrier (group commit) — not a stream of buffered,
// un-synced per-op records.
func TestBatchSingleWALGroupCommit(t *testing.T) {
	cfs := &countingFS{FS: faultfs.NewMemFS()}
	db, err := lsm.Open("waldb", lsm.Options{FS: cfs, MemtableBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, logstore.New(), kv.NewMemStore(), nil)
	defer s.Close()

	b := s.NewBatch()
	for i := 0; i < 8; i++ {
		b.Put(rawdb.SnapshotAccountKey(hash(byte(i+1))), []byte("v"))
	}
	w0, s0 := cfs.walWrites.Load(), cfs.walSyncs.Load()
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if dw, ds := cfs.walWrites.Load()-w0, cfs.walSyncs.Load()-s0; dw != 1 || ds != 1 {
		t.Fatalf("hybrid batch produced %d WAL writes and %d syncs, want 1 group-commit write and 1 sync", dw, ds)
	}
}

// TestCrashBatchAtomicity holds the crashtest contract at batch
// granularity across the hybrid dispatcher: after a seeded mid-run crash,
// every acknowledged hybrid batch must be fully recovered on its LSM
// route, and the in-flight batch must be all-or-nothing. Pre-fix, batch
// ops became buffered un-synced WAL records, so acked batches could
// vanish — or recover partially — after power loss.
func TestCrashBatchAtomicity(t *testing.T) {
	crashed := false
	for seed := int64(1); seed <= 6; seed++ {
		mem := faultfs.NewMemFS()
		plan := faultfs.NewPlan(seed)
		plan.CrashAfterWrites = 10 + seed*13

		db, err := lsm.Open("crashdb", lsm.Options{
			FS:            faultfs.Inject(mem, plan),
			MemtableBytes: 1 << 20,
		})
		if err != nil {
			if plan.Crashed() || faultfs.IsTransient(err) {
				continue // crash point landed inside Open; nothing acked
			}
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		s := New(db, logstore.New(), kv.NewMemStore(), nil)

		key := func(batch, j int) []byte {
			var h rawdb.Hash
			h[0], h[1], h[2] = byte(batch), byte(batch>>8), byte(j)
			return rawdb.SnapshotAccountKey(h)
		}
		acked, failed := 0, -1
		for i := 0; i < 400; i++ {
			b := s.NewBatch()
			for j := 0; j < 3; j++ {
				b.Put(key(i, j), []byte(fmt.Sprintf("batch-%d", i)))
			}
			if err := b.Write(); err != nil {
				failed = i
				break
			}
			acked++
		}
		plan.TripCrash()
		s.Close() // the "dead" process's close attempts all fail

		mem.Crash(plan.TornTail())
		re, err := lsm.Open("crashdb", lsm.Options{FS: mem})
		if err != nil {
			t.Fatalf("seed %d: reopen after crash: %v", seed, err)
		}
		for i := 0; i < acked; i++ {
			for j := 0; j < 3; j++ {
				if ok, _ := re.Has(key(i, j)); !ok {
					t.Fatalf("seed %d: acked batch %d lost key %d after crash", seed, i, j)
				}
			}
		}
		if failed >= 0 {
			crashed = true
			present := 0
			for j := 0; j < 3; j++ {
				if ok, _ := re.Has(key(failed, j)); ok {
					present++
				}
			}
			if present != 0 && present != 3 {
				t.Fatalf("seed %d: in-flight batch %d recovered partially (%d/3 keys)", seed, failed, present)
			}
		}
		re.Close()
	}
	if !crashed {
		t.Fatal("no seed tripped a mid-run crash; the test exercised nothing")
	}
}

// TestScanTruncatedPrefixSeesAllRoutes is the regression test for the
// iterator routing bug: a scan prefix shorter than any class prefix (or
// empty) classifies as Unknown, and the old code therefore scanned only
// the default backend. The merged iterator must surface log- and
// hash-routed keys too.
func TestScanTruncatedPrefixSeesAllRoutes(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 5; i++ {
		s.Put(rawdb.TxLookupKey(hash(byte(i+1))), []byte("l")) // log route, keys start 'l'
	}
	for i := 0; i < 3; i++ {
		s.Put(rawdb.SnapshotAccountKey(hash(byte(i+1))), []byte("a")) // ordered, 'a'
	}
	for i := 0; i < 2; i++ {
		s.Put(rawdb.CodeKey(hash(byte(i+1))), []byte("c")) // hash route, 'c'
	}

	count := func(prefix []byte) int {
		it := s.NewIterator(prefix, nil)
		defer it.Release()
		n := 0
		for it.Next() {
			n++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	// One-byte prefix "l": shorter than the 33-byte TxLookup keys, so it
	// classifies as Unknown — yet every TxLookup key starts with it.
	if n := count([]byte("l")); n != 5 {
		t.Fatalf("scan(%q) saw %d keys, want 5 log-routed keys", "l", n)
	}
	// Empty prefix: the full store, across all three routes.
	if n := count(nil); n != 10 {
		t.Fatalf("scan(nil) saw %d keys, want all 10", n)
	}
	// A class-qualified prefix still sees its class.
	if n := count([]byte("c")); n != 2 {
		t.Fatalf("scan(%q) saw %d keys, want 2 hash-routed keys", "c", n)
	}
}
